//! Ground-truth numbers published in the GauRast paper.
//!
//! These are used (a) to calibrate the baseline GPU model and (b) as the
//! "paper" column of every table/figure reproduction in `EXPERIMENTS.md`.

/// Scene order used by every per-scene array below (the paper's order):
/// bicycle, stump, garden, room, counter, kitchen, bonsai.
pub const SCENE_NAMES: [&str; 7] = [
    "bicycle", "stump", "garden", "room", "counter", "kitchen", "bonsai",
];

/// Table III — absolute Gaussian-rasterization runtime of the CUDA baseline
/// on the Jetson Orin NX (original 3DGS algorithm), milliseconds.
pub const TABLE3_BASELINE_MS: [f64; 7] = [321.0, 149.0, 232.0, 236.0, 216.0, 269.0, 147.0];

/// Table III — absolute Gaussian-rasterization runtime with GauRast,
/// milliseconds.
pub const TABLE3_GAURAST_MS: [f64; 7] = [15.0, 6.0, 9.6, 10.5, 9.8, 12.2, 5.5];

/// Fig. 10 — average rasterization speedup, original 3DGS algorithm.
pub const FIG10_AVG_SPEEDUP_ORIGINAL: f64 = 23.0;

/// Fig. 10 — average energy-efficiency improvement, original 3DGS.
pub const FIG10_AVG_ENERGY_ORIGINAL: f64 = 24.0;

/// Fig. 10 — average rasterization speedup, efficiency-optimized pipeline.
pub const FIG10_AVG_SPEEDUP_OPTIMIZED: f64 = 20.0;

/// Fig. 10 — average energy-efficiency improvement, optimized pipeline.
pub const FIG10_AVG_ENERGY_OPTIMIZED: f64 = 22.0;

/// Fig. 11 — average end-to-end FPS with GauRast, original 3DGS.
pub const FIG11_AVG_FPS_ORIGINAL: f64 = 24.0;

/// Fig. 11 — average end-to-end FPS with GauRast, optimized pipeline.
pub const FIG11_AVG_FPS_OPTIMIZED: f64 = 46.0;

/// Fig. 11 — end-to-end speedup factors (original / optimized).
pub const FIG11_E2E_SPEEDUP: (f64, f64) = (6.0, 4.0);

/// Fig. 4 — baseline FPS band on the Orin NX across the seven scenes.
pub const FIG4_BASELINE_FPS_RANGE: (f64, f64) = (2.0, 5.0);

/// Fig. 5 — minimum Stage-3 (rasterization) share of baseline frame time.
pub const FIG5_MIN_RASTER_SHARE: f64 = 0.80;

/// §V-A — prototype typical power, W (16-PE module, 28 nm).
pub const PROTOTYPE_POWER_W: f64 = 1.7;

/// §V-C — GSCore envelope: dedicated area (mm², FP16) and its speedup on
/// the Xavier NX.
pub const GSCORE_AREA_MM2: f64 = 3.95;
/// §V-C — GSCore rasterization speedup on the Xavier NX.
pub const GSCORE_SPEEDUP_XAVIER: f64 = 20.0;
/// §V-C — GauRast-FP16 vs GSCore area-efficiency ratio.
pub const GSCORE_AREA_EFFICIENCY_RATIO: f64 = 24.7;

/// §V-D — M2 Pro FP32 capability relative to the Orin NX GPU.
pub const M2_PRO_FP32_RATIO: f64 = 2.6;
/// §V-D — GauRast rasterization speedup over the M2 Pro (bicycle scene).
pub const M2_PRO_SPEEDUP_BICYCLE: f64 = 11.2;

/// Per-scene baseline→GauRast speedups implied by Table III.
pub fn table3_speedups() -> [f64; 7] {
    let mut out = [0.0; 7];
    for i in 0..7 {
        out[i] = TABLE3_BASELINE_MS[i] / TABLE3_GAURAST_MS[i];
    }
    out
}

/// Geometric-free average of the Table III speedups (arithmetic mean, as
/// papers typically report).
pub fn table3_mean_speedup() -> f64 {
    table3_speedups().iter().sum::<f64>() / 7.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_speedups_in_expected_band() {
        for (i, s) in table3_speedups().iter().enumerate() {
            assert!((20.0..28.0).contains(s), "{}: {s}", SCENE_NAMES[i]);
        }
    }

    #[test]
    fn mean_speedup_matches_headline() {
        let mean = table3_mean_speedup();
        assert!(
            (mean - FIG10_AVG_SPEEDUP_ORIGINAL).abs() < 1.0,
            "mean {mean}"
        );
    }

    #[test]
    fn arrays_are_consistent() {
        assert_eq!(SCENE_NAMES.len(), TABLE3_BASELINE_MS.len());
        assert_eq!(SCENE_NAMES.len(), TABLE3_GAURAST_MS.len());
    }
}
