//! Energy accounting and baseline-vs-GauRast comparisons.

/// Energy comparison of one rasterization workload on two executors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyComparison {
    /// Baseline time, s.
    pub baseline_s: f64,
    /// Baseline average power, W.
    pub baseline_w: f64,
    /// Accelerated time, s.
    pub accelerated_s: f64,
    /// Accelerated average power, W.
    pub accelerated_w: f64,
}

impl EnergyComparison {
    /// Runtime speedup (baseline / accelerated).
    ///
    /// # Panics
    /// Panics in debug builds for non-positive accelerated time.
    pub fn speedup(&self) -> f64 {
        debug_assert!(self.accelerated_s > 0.0);
        self.baseline_s / self.accelerated_s
    }

    /// Energy-efficiency improvement (baseline energy / accelerated
    /// energy) — the paper's Fig. 10 right-hand metric.
    pub fn energy_improvement(&self) -> f64 {
        (self.baseline_w * self.baseline_s) / (self.accelerated_w * self.accelerated_s)
    }

    /// Baseline energy, J.
    pub fn baseline_j(&self) -> f64 {
        self.baseline_w * self.baseline_s
    }

    /// Accelerated energy, J.
    pub fn accelerated_j(&self) -> f64 {
        self.accelerated_w * self.accelerated_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmp() -> EnergyComparison {
        EnergyComparison {
            baseline_s: 0.321,
            baseline_w: 10.0,
            accelerated_s: 0.015,
            accelerated_w: 9.5,
        }
    }

    #[test]
    fn speedup_and_energy_track_paper_shape() {
        let c = cmp();
        let s = c.speedup();
        let e = c.energy_improvement();
        assert!((s - 21.4).abs() < 0.1);
        // With near-equal power, the energy ratio slightly exceeds the
        // speedup — exactly the paper's 23× vs 24× relationship.
        assert!(e > s);
        assert!((e - s * 10.0 / 9.5).abs() < 0.1);
    }

    #[test]
    fn energies_consistent() {
        let c = cmp();
        assert!((c.baseline_j() - 3.21).abs() < 1e-9);
        assert!((c.accelerated_j() - 0.1425).abs() < 1e-9);
        assert!((c.energy_improvement() - c.baseline_j() / c.accelerated_j()).abs() < 1e-12);
    }
}
