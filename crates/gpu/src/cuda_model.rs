//! SM-level analytical model of CUDA 3DGS execution.
//!
//! The Gaussian-rasterization kernel (Stage 3) is modelled as
//! `time = blends / (peak_rate × efficiency)`, where `peak_rate` comes from
//! the device's FP32 datapath (one blend costs ~40 FP lane-operations) and
//! `efficiency` captures occupancy and divergence losses that grow as tile
//! lists shorten (warps idle at list tails and during per-pixel early
//! exits). Stages 1–2 are bandwidth-bound streaming passes.
//!
//! All constants are calibrated against the paper's Table III and validated
//! against Figs. 4–5 (see `tests` and the `gaurast` experiment harness).

use gaurast_render::RasterWorkload;

/// FP lane-operations per Gaussian-pixel blend on CUDA (arithmetic plus
/// address/predicate overhead).
pub const LANE_OPS_PER_BLEND: f64 = 40.0;

/// Bytes streamed per Gaussian in Stage 1 (parameters + SH coefficients +
/// written splat record).
pub const BYTES_PER_GAUSSIAN_PREPROCESS: f64 = 250.0;

/// Scatter passes of the Stage-2 LSD radix sort: 8-bit digits over the 32
/// significant bits of the packed `tile << 32 | depth_bits` key (the tile
/// half fits a handful of active digits; uniform digits are skipped). This
/// is the sort the software reference now runs verbatim
/// (`gaurast_render::sort::RadixSorter`), so the billed model and the
/// measured pass agree on the algorithm — not a comparison sort.
pub const SORT_RADIX_PASSES: f64 = 4.0;

/// Bytes moved per (splat, tile) pair per radix pass (8-byte key/value
/// record, read + write).
pub const BYTES_PER_PAIR_SORT_PASS: f64 = 16.0;

/// Bytes moved per (splat, tile) pair by the whole Stage-2 radix sort.
pub const BYTES_PER_PAIR_SORT: f64 = SORT_RADIX_PASSES * BYTES_PER_PAIR_SORT_PASS;

/// Analytical model of one CUDA device running the 3DGS pipeline.
#[derive(Clone, Debug, PartialEq)]
pub struct CudaGpuModel {
    /// Device name (for reports).
    pub name: String,
    /// CUDA cores (FP32 lanes).
    pub cuda_cores: u32,
    /// Sustained clock under the power limit, Hz.
    pub clock_hz: f64,
    /// Sustained DRAM bandwidth, bytes/s.
    pub mem_bw_bytes_per_s: f64,
    /// Peak efficiency of the rasterization kernel (asymptote for very long
    /// tile lists).
    pub base_efficiency: f64,
    /// Tile-list length at which efficiency halves relative to the
    /// asymptote's knee (occupancy/divergence knee).
    pub efficiency_knee: f64,
    /// Device power while rasterizing, W (edge SoCs run at their cap).
    pub raster_power_w: f64,
}

/// Per-stage times of one frame, seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageTimes {
    /// Stage 1 — preprocessing.
    pub preprocess_s: f64,
    /// Stage 2 — sorting/binning.
    pub sort_s: f64,
    /// Stage 3 — Gaussian rasterization.
    pub raster_s: f64,
}

impl StageTimes {
    /// Total frame time.
    pub fn total_s(&self) -> f64 {
        self.preprocess_s + self.sort_s + self.raster_s
    }

    /// Stage-3 share of the frame (the paper's Fig. 5 metric).
    pub fn raster_share(&self) -> f64 {
        let t = self.total_s();
        if t > 0.0 {
            self.raster_s / t
        } else {
            0.0
        }
    }

    /// Frames per second.
    pub fn fps(&self) -> f64 {
        1.0 / self.total_s()
    }

    /// Combined Stages 1–2 time (what stays on CUDA under the
    /// CUDA-collaborative schedule).
    pub fn stages_12_s(&self) -> f64 {
        self.preprocess_s + self.sort_s
    }
}

impl CudaGpuModel {
    /// Peak blend throughput (pairs/s) ignoring efficiency losses.
    pub fn peak_blend_rate(&self) -> f64 {
        f64::from(self.cuda_cores) * self.clock_hz / LANE_OPS_PER_BLEND
    }

    /// Kernel efficiency for a mean tile-list length `l` (the depth of the
    /// per-tile sorted queues — short queues leave warps idle at list
    /// tails and per-pixel early exits).
    pub fn efficiency(&self, l: f64) -> f64 {
        if l <= 0.0 {
            return 0.0;
        }
        self.base_efficiency * l / (l + self.efficiency_knee)
    }

    /// Effective blend throughput (pairs/s) at list length `l`.
    pub fn blend_rate(&self, l: f64) -> f64 {
        self.peak_blend_rate() * self.efficiency(l)
    }

    /// Stage-3 time for an explicit work amount (used for paper-scale
    /// extrapolation).
    ///
    /// # Panics
    /// Panics in debug builds for non-positive work with positive list
    /// length inconsistencies.
    pub fn raster_time_for_work(&self, blends: f64, mean_list_len: f64) -> f64 {
        debug_assert!(blends >= 0.0);
        if blends == 0.0 {
            return 0.0;
        }
        blends / self.blend_rate(mean_list_len.max(1.0))
    }

    /// Stage-3 time for a concrete workload at its own scale.
    pub fn raster_time(&self, w: &RasterWorkload) -> f64 {
        self.raster_time_for_work(w.blend_work() as f64, w.mean_list_len())
    }

    /// Stage-1 time for `visible` Gaussians (bandwidth-bound stream).
    pub fn preprocess_time(&self, visible: u64) -> f64 {
        visible as f64 * BYTES_PER_GAUSSIAN_PREPROCESS / self.mem_bw_bytes_per_s
    }

    /// Stage-2 time for `pairs` (splat, tile) sort keys, billed against
    /// the bandwidth-bound radix model ([`SORT_RADIX_PASSES`] scatter
    /// passes at [`BYTES_PER_PAIR_SORT_PASS`] bytes per pair each).
    pub fn sort_time(&self, pairs: u64) -> f64 {
        pairs as f64 * BYTES_PER_PAIR_SORT / self.mem_bw_bytes_per_s
    }

    /// Key-scatter operations the Stage-2 radix sort issues for `pairs`
    /// keys: one per pair per pass (the histogram reads ride along).
    pub fn sort_ops(&self, pairs: u64) -> u64 {
        pairs * SORT_RADIX_PASSES as u64
    }

    /// All three stage times for a workload at its own scale.
    pub fn stage_times(&self, w: &RasterWorkload) -> StageTimes {
        StageTimes {
            preprocess_s: self.preprocess_time(w.splats().len() as u64),
            sort_s: self.sort_time(w.total_pairs()),
            raster_s: self.raster_time(w),
        }
    }

    /// Energy spent rasterizing for `t` seconds, J.
    pub fn raster_energy_j(&self, t: f64) -> f64 {
        self.raster_power_w * t
    }
}

/// Mean processed list length across non-empty tiles (the efficiency
/// model's argument).
pub fn mean_processed_len(w: &RasterWorkload) -> f64 {
    let mut sum = 0u64;
    let mut tiles = 0u64;
    for tile in w.tiles() {
        if tile.processed > 0 {
            sum += u64::from(tile.processed);
            tiles += 1;
        }
    }
    if tiles == 0 {
        0.0
    } else {
        sum as f64 / tiles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device;
    use crate::paper;

    #[test]
    fn efficiency_monotonic_and_bounded() {
        let m = device::orin_nx();
        let mut prev = 0.0;
        for &l in &[1.0, 10.0, 100.0, 1000.0, 10000.0] {
            let e = m.efficiency(l);
            assert!(e > prev && e < m.base_efficiency);
            prev = e;
        }
        assert_eq!(m.efficiency(0.0), 0.0);
    }

    #[test]
    fn paper_scale_baseline_raster_times_match_table3() {
        // The calibrated work constants (scene descriptors) divided by the
        // model's rate must land near Table III for every scene.
        use gaurast_scene::nerf360::Nerf360Scene;
        let m = device::orin_nx();
        for (i, scene) in Nerf360Scene::ALL.iter().enumerate() {
            let d = scene.descriptor();
            let tiles = f64::from(d.width.div_ceil(16) * d.height.div_ceil(16));
            let mean_len = d.sort_pairs_per_frame / tiles;
            let t = m.raster_time_for_work(d.raster_work_per_frame, mean_len);
            let expected = paper::TABLE3_BASELINE_MS[i] / 1e3;
            let err = (t - expected).abs() / expected;
            assert!(
                err < 0.10,
                "{}: model {t:.3} s vs paper {expected:.3} s",
                scene.name()
            );
        }
    }

    #[test]
    fn stage3_dominates_at_paper_scale() {
        // Fig. 5: rasterization is >80 % of baseline frame time.
        use gaurast_scene::nerf360::Nerf360Scene;
        let m = device::orin_nx();
        for scene in Nerf360Scene::ALL {
            let d = scene.descriptor();
            let tiles = f64::from(d.width.div_ceil(16) * d.height.div_ceil(16));
            let mean_len = d.sort_pairs_per_frame / tiles;
            let raster = m.raster_time_for_work(d.raster_work_per_frame, mean_len);
            // Visible fraction ~85 % (measured on the synthetic scenes).
            let visible = d.full_gaussians as f64 * 0.85;
            let pre = m.preprocess_time(visible as u64);
            let sort = m.sort_time(d.sort_pairs_per_frame as u64);
            let share = raster / (raster + pre + sort);
            assert!(
                share > paper::FIG5_MIN_RASTER_SHARE,
                "{}: share {share:.2}",
                scene.name()
            );
        }
    }

    #[test]
    fn sort_model_is_radix_passes_times_pairs() {
        let m = device::orin_nx();
        assert_eq!(m.sort_ops(1000), 1000 * SORT_RADIX_PASSES as u64);
        assert_eq!(m.sort_ops(0), 0);
        // The per-pair byte total is exactly passes × bytes-per-pass.
        assert!((BYTES_PER_PAIR_SORT - SORT_RADIX_PASSES * BYTES_PER_PAIR_SORT_PASS).abs() < 1e-12);
        // sort_time bills the same bandwidth-bound total.
        let t = m.sort_time(1_000_000);
        assert!((t - 1e6 * BYTES_PER_PAIR_SORT / m.mem_bw_bytes_per_s).abs() < 1e-18);
    }

    #[test]
    fn raster_time_scales_linearly_with_work() {
        let m = device::orin_nx();
        let t1 = m.raster_time_for_work(1e9, 500.0);
        let t2 = m.raster_time_for_work(2e9, 500.0);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_work_is_free() {
        let m = device::orin_nx();
        assert_eq!(m.raster_time_for_work(0.0, 100.0), 0.0);
    }

    #[test]
    fn workload_raster_time_positive() {
        use gaurast_math::Vec3;
        use gaurast_render::pipeline::{render, RenderConfig};
        use gaurast_scene::generator::SceneParams;
        use gaurast_scene::Camera;
        let scene = SceneParams::new(500).generate().unwrap();
        let cam = Camera::look_at(
            Vec3::new(0.0, 5.0, -25.0),
            Vec3::zero(),
            Vec3::new(0.0, 1.0, 0.0),
            64,
            64,
            1.0,
        )
        .unwrap();
        let out = render(&scene, &cam, &RenderConfig::default());
        let m = device::orin_nx();
        let st = m.stage_times(&out.workload);
        assert!(st.raster_s > 0.0 && st.preprocess_s > 0.0 && st.sort_s > 0.0);
        assert!(st.total_s() > st.raster_s);
        assert!((st.fps() - 1.0 / st.total_s()).abs() < 1e-9);
    }

    #[test]
    fn mean_processed_len_ignores_empty_tiles() {
        let w = gaurast_render::tile::bin_splats(vec![], 64, 64, 16);
        assert_eq!(mean_processed_len(&w), 0.0);
    }
}
