//! Analytical baseline GPU models for the GauRast evaluation.
//!
//! The paper measures the CUDA 3DGS pipeline on a Jetson Orin NX (10 W) and
//! compares against GauRast; §V-C compares against the GSCore accelerator
//! (hosted on a Xavier NX) and §V-D against an Apple M2 Pro running
//! OpenSplat. None of those devices are available offline, so this crate
//! provides calibrated analytical models:
//!
//! * [`CudaGpuModel`] — an SM-level throughput/efficiency model of CUDA
//!   Gaussian rasterization plus bandwidth models of Stages 1–2, with
//!   presets for the three devices ([`device`]);
//! * [`gscore`] — the published GSCore envelope;
//! * [`energy`] — stage energy accounting;
//! * [`paper`] — the ground-truth numbers published in the paper (Table
//!   III, the figure averages), used for calibration and for the
//!   paper-vs-measured comparison in `EXPERIMENTS.md`.
//!
//! Calibration philosophy (DESIGN.md §2): the baseline cannot be
//! re-measured, so the model is *fit* to the paper's published per-scene
//! runtimes and then *validated* on derived quantities it was not directly
//! fit to (FPS bands, stage breakdown shares, cross-device ratios).
//!
//! # Example
//!
//! ```
//! use gaurast_gpu::device;
//!
//! let orin = device::orin_nx();
//! // Paper-scale bicycle rasterization: ~3.1e9 blends at ~3000-splat tiles.
//! let t = orin.raster_time_for_work(3.06e9, 3000.0);
//! assert!(t > 0.2 && t < 0.45, "bicycle raster {t} s");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod cuda_model;
pub mod device;
pub mod energy;
pub mod gscore;
pub mod paper;

pub use cuda_model::{
    mean_processed_len, CudaGpuModel, StageTimes, BYTES_PER_PAIR_SORT, BYTES_PER_PAIR_SORT_PASS,
    SORT_RADIX_PASSES,
};
