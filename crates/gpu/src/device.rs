//! Device presets for the baseline GPU model.

use crate::cuda_model::CudaGpuModel;

/// NVIDIA Jetson Orin NX under a 10 W power limit — the paper's baseline
/// edge SoC.
///
/// 1024 CUDA cores at a sustained ~625 MHz under the cap, ~60 GB/s
/// effective LPDDR5 bandwidth. `base_efficiency` and `efficiency_knee` are
/// calibrated against Table III (fit error < 8 % on every scene — see the
/// `cuda_model` tests).
pub fn orin_nx() -> CudaGpuModel {
    CudaGpuModel {
        name: "jetson-orin-nx-10w".into(),
        cuda_cores: 1024,
        clock_hz: 625.0e6,
        mem_bw_bytes_per_s: 60.0e9,
        base_efficiency: 0.75,
        efficiency_knee: 2171.0,
        raster_power_w: 10.0,
    }
}

/// NVIDIA Jetson Xavier NX — the edge SoC hosting the GSCore comparison
/// (§V-C). Older Volta-class GPU: 384 CUDA cores, lower sustained clock,
/// and a less efficient 3DGS kernel (the GSCore paper's baseline).
pub fn xavier_nx() -> CudaGpuModel {
    CudaGpuModel {
        name: "jetson-xavier-nx".into(),
        cuda_cores: 384,
        clock_hz: 800.0e6,
        mem_bw_bytes_per_s: 45.0e9,
        base_efficiency: 0.62,
        efficiency_knee: 2171.0,
        raster_power_w: 15.0,
    }
}

/// NVIDIA RTX A6000 — the ≥200 W desktop GPU class the paper's
/// introduction contrasts against (3DGS is real-time there and only there).
/// 10752 CUDA cores at boost clocks with GDDR6 bandwidth; the kernel
/// efficiency matches the tuned reference implementation on big GPUs.
pub fn rtx_a6000() -> CudaGpuModel {
    CudaGpuModel {
        name: "rtx-a6000-300w".into(),
        cuda_cores: 10_752,
        clock_hz: 1.62e9,
        mem_bw_bytes_per_s: 700.0e9,
        base_efficiency: 0.70,
        efficiency_knee: 2171.0,
        raster_power_w: 300.0,
    }
}

/// Apple M2 Pro GPU running OpenSplat (§V-D). The paper states 2.6× the
/// FP32 capability of the Orin NX GPU; OpenSplat's Metal port is less
/// tuned than the CUDA reference, which the lower base efficiency captures
/// (calibrated to the reported 11.2× bicycle-scene speedup).
pub fn m2_pro() -> CudaGpuModel {
    CudaGpuModel {
        name: "apple-m2-pro-opensplat".into(),
        // Express the 2.6× FP32 ratio in CUDA-lane-equivalent terms.
        cuda_cores: 2048,
        clock_hz: 812.5e6,
        mem_bw_bytes_per_s: 200.0e9,
        base_efficiency: 0.574,
        efficiency_knee: 2171.0,
        raster_power_w: 30.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn m2_pro_is_2_6x_orin_fp32() {
        let ratio = m2_pro().peak_blend_rate() / orin_nx().peak_blend_rate();
        assert!(
            (ratio - paper::M2_PRO_FP32_RATIO).abs() < 0.01,
            "ratio {ratio}"
        );
    }

    #[test]
    fn xavier_is_slower_than_orin() {
        assert!(xavier_nx().peak_blend_rate() < 0.6 * orin_nx().peak_blend_rate());
    }

    #[test]
    fn orin_runs_at_power_cap() {
        assert_eq!(orin_nx().raster_power_w, 10.0);
    }

    #[test]
    fn m2_pro_less_efficient_kernel() {
        // OpenSplat vs the tuned CUDA reference.
        assert!(m2_pro().base_efficiency < orin_nx().base_efficiency);
    }

    #[test]
    fn desktop_gpu_is_realtime_at_paper_scale() {
        // The introduction's premise: 3DGS is real-time (>= 30 FPS) on
        // >= 200 W desktop GPUs but not on the edge SoC. Validate on the
        // heaviest scene (bicycle).
        use gaurast_scene::nerf360::Nerf360Scene;
        let d = Nerf360Scene::Bicycle.descriptor();
        let tiles = f64::from(d.width.div_ceil(16) * d.height.div_ceil(16));
        let mean_len = d.sort_pairs_per_frame / tiles;
        let a6000 = rtx_a6000();
        let raster = a6000.raster_time_for_work(d.raster_work_per_frame, mean_len);
        let pre = a6000.preprocess_time((d.full_gaussians as f64 * 0.85) as u64);
        let sort = a6000.sort_time(d.sort_pairs_per_frame as u64);
        let fps = 1.0 / (raster + pre + sort);
        assert!(fps >= 30.0, "desktop bicycle fps {fps}");
        // And the edge SoC is ~2-5 FPS on the same scene (Fig. 4).
        let edge = orin_nx();
        let edge_fps = 1.0
            / (edge.raster_time_for_work(d.raster_work_per_frame, mean_len)
                + edge.preprocess_time((d.full_gaussians as f64 * 0.85) as u64)
                + edge.sort_time(d.sort_pairs_per_frame as u64));
        assert!(edge_fps < 5.0, "edge bicycle fps {edge_fps}");
        assert!(
            fps / edge_fps > 10.0,
            "the intro's gap must be an order of magnitude"
        );
    }
}
