//! GSCore envelope model (§V-C).
//!
//! GSCore (Lee et al., ASPLOS 2024) is the only previously published
//! dedicated 3DGS accelerator. As in the paper, the comparison uses
//! GSCore's *published* envelope — 3.95 mm² of dedicated FP16 silicon
//! achieving a 20× rasterization speedup over its Jetson Xavier NX host —
//! rather than a re-implementation. GauRast's cost at the iso-performance
//! point is only the Gaussian *enhancement* of an existing 16-PE triangle
//! rasterizer, re-synthesized in FP16.

use gaurast_hw::area::AreaModel;
use gaurast_hw::{Precision, RasterizerConfig};

/// Published GSCore data.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GscoreEnvelope {
    /// Dedicated accelerator area, mm² (FP16, 28 nm-class).
    pub area_mm2: f64,
    /// Rasterization speedup over the Xavier NX host.
    pub speedup_vs_host: f64,
}

impl GscoreEnvelope {
    /// The published envelope.
    pub const PUBLISHED: GscoreEnvelope = GscoreEnvelope {
        area_mm2: crate::paper::GSCORE_AREA_MM2,
        speedup_vs_host: crate::paper::GSCORE_SPEEDUP_XAVIER,
    };
}

/// Result of the §V-C comparison.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AreaEfficiencyComparison {
    /// GauRast's added silicon at the iso-performance point, mm² (FP16).
    pub gaurast_added_mm2: f64,
    /// GSCore's dedicated area, mm².
    pub gscore_mm2: f64,
    /// Area-efficiency ratio (GSCore / GauRast) at iso-performance.
    pub ratio: f64,
}

/// Computes the comparison: a 16-PE FP16 GauRast module matches GSCore's
/// published throughput envelope while adding only the Gaussian datapath
/// (2 ADD + 1 MUL + 1 EXP per PE) to silicon that already exists.
pub fn compare() -> AreaEfficiencyComparison {
    let config = RasterizerConfig {
        precision: Precision::Fp16,
        ..RasterizerConfig::prototype()
    };
    let added = AreaModel::new(Precision::Fp16).enhancement_mm2(&config);
    AreaEfficiencyComparison {
        gaurast_added_mm2: added,
        gscore_mm2: GscoreEnvelope::PUBLISHED.area_mm2,
        ratio: GscoreEnvelope::PUBLISHED.area_mm2 / added,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn ratio_matches_paper() {
        let c = compare();
        assert!(
            (c.gaurast_added_mm2 - 0.16).abs() < 0.01,
            "added {}",
            c.gaurast_added_mm2
        );
        assert!(
            (c.ratio - paper::GSCORE_AREA_EFFICIENCY_RATIO).abs() < 1.5,
            "ratio {}",
            c.ratio
        );
    }

    #[test]
    fn envelope_is_published_values() {
        let e = GscoreEnvelope::PUBLISHED;
        assert_eq!(e.area_mm2, 3.95);
        assert_eq!(e.speedup_vs_host, 20.0);
    }
}
