//! Property-based tests for the math substrate.

use gaurast_math::fp::{round_to_f16, F16};
use gaurast_math::{approx_eq, look_at, Aabb2, Mat2, Mat3, Quat, Vec2, Vec3};
use proptest::prelude::*;

fn finite_f32(range: std::ops::RangeInclusive<f32>) -> impl Strategy<Value = f32> {
    let (lo, hi) = (*range.start(), *range.end());
    // proptest's f64 range strategy, narrowed to f32, avoids NaN/Inf.
    (lo as f64..=hi as f64).prop_map(|v| v as f32)
}

fn vec3_strategy() -> impl Strategy<Value = Vec3> {
    (
        finite_f32(-100.0..=100.0),
        finite_f32(-100.0..=100.0),
        finite_f32(-100.0..=100.0),
    )
        .prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn quat_strategy() -> impl Strategy<Value = Quat> {
    (
        finite_f32(-1.0..=1.0),
        finite_f32(-1.0..=1.0),
        finite_f32(-1.0..=1.0),
        finite_f32(-1.0..=1.0),
    )
        .prop_filter_map("nonzero quat", |(w, x, y, z)| {
            let q = Quat::new(w, x, y, z);
            (q.norm() > 1e-3).then(|| q.normalized())
        })
}

proptest! {
    #[test]
    fn dot_is_commutative(a in vec3_strategy(), b in vec3_strategy()) {
        prop_assert!(approx_eq(a.dot(b), b.dot(a), 1e-4));
    }

    #[test]
    fn cross_is_anticommutative(a in vec3_strategy(), b in vec3_strategy()) {
        let lhs = a.cross(b);
        let rhs = -(b.cross(a));
        prop_assert!((lhs - rhs).length() <= 1e-3 * (1.0 + lhs.length()));
    }

    #[test]
    fn cross_orthogonal_to_inputs(a in vec3_strategy(), b in vec3_strategy()) {
        let c = a.cross(b);
        let scale = (a.length() * b.length()).max(1.0);
        prop_assert!(c.dot(a).abs() <= 1e-2 * scale * scale.max(1.0));
    }

    #[test]
    fn quat_rotation_preserves_length(q in quat_strategy(), v in vec3_strategy()) {
        let rotated = q.rotate(v);
        prop_assert!(approx_eq(rotated.length(), v.length(), 1e-3));
    }

    #[test]
    fn quat_to_mat3_det_one(q in quat_strategy()) {
        prop_assert!(approx_eq(q.to_mat3().determinant(), 1.0, 1e-4));
    }

    #[test]
    fn mat2_inverse_composes_to_identity(
        a in finite_f32(-10.0..=10.0),
        b in finite_f32(-10.0..=10.0),
        c in finite_f32(-10.0..=10.0),
        d in finite_f32(-10.0..=10.0),
    ) {
        let m = Mat2::from_rows(a, b, c, d);
        prop_assume!(m.determinant().abs() > 1e-3);
        let inv = m.inverse().unwrap();
        let id = m * inv;
        prop_assert!(approx_eq(id.at(0, 0), 1.0, 1e-3));
        prop_assert!(approx_eq(id.at(1, 1), 1.0, 1e-3));
        prop_assert!(id.at(0, 1).abs() < 1e-2);
        prop_assert!(id.at(1, 0).abs() < 1e-2);
    }

    #[test]
    fn symmetric_eigenvalues_bound_quadratic_form(
        a in finite_f32(0.1..=50.0),
        b in finite_f32(-5.0..=5.0),
        c in finite_f32(0.1..=50.0),
        vx in finite_f32(-1.0..=1.0),
        vy in finite_f32(-1.0..=1.0),
    ) {
        // Symmetric PSD-ish matrix; eigenvalues bound v^T M v / |v|^2.
        let m = Mat2::from_rows(a, b, b, c);
        let (l1, l2) = m.symmetric_eigenvalues();
        let v = Vec2::new(vx, vy);
        prop_assume!(v.length_squared() > 1e-6);
        let rayleigh = v.dot(m * v) / v.length_squared();
        prop_assert!(rayleigh <= l1 + 1e-2 * l1.abs().max(1.0));
        prop_assert!(rayleigh >= l2 - 1e-2 * l2.abs().max(1.0));
    }

    #[test]
    fn mat3_inverse_roundtrip(q in quat_strategy(), s in finite_f32(0.1..=10.0)) {
        let m = q.to_mat3() * s;
        let inv = m.inverse().unwrap();
        let id = m * inv;
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                prop_assert!(approx_eq(id.at(i, j), expected, 1e-3), "({i},{j})");
            }
        }
    }

    #[test]
    fn f16_roundtrip_is_idempotent(v in prop::num::f32::NORMAL) {
        // Rounding twice must equal rounding once (fp16 is a projection).
        let once = round_to_f16(v);
        let twice = round_to_f16(once);
        if once.is_nan() {
            prop_assert!(twice.is_nan());
        } else {
            prop_assert_eq!(once, twice);
        }
    }

    #[test]
    fn f16_rounding_error_is_bounded(v in finite_f32(-60000.0..=60000.0)) {
        let r = round_to_f16(v);
        // Relative error of RNE to fp16 is at most 2^-11 for normal range.
        if v.abs() > 6.2e-5 {
            prop_assert!((r - v).abs() <= v.abs() * (1.0 / 2048.0) + 1e-7, "v = {v}, r = {r}");
        }
    }

    #[test]
    fn f16_order_preserving(a in finite_f32(-1000.0..=1000.0), b in finite_f32(-1000.0..=1000.0)) {
        let (ra, rb) = (F16::from_f32(a).to_f32(), F16::from_f32(b).to_f32());
        if a <= b {
            prop_assert!(ra <= rb);
        }
    }

    #[test]
    fn aabb_union_contains_both(
        ax in finite_f32(-10.0..=10.0), ay in finite_f32(-10.0..=10.0),
        bx in finite_f32(-10.0..=10.0), by in finite_f32(-10.0..=10.0),
        r1 in finite_f32(0.0..=5.0), r2 in finite_f32(0.0..=5.0),
    ) {
        let a = Aabb2::from_center_radius(Vec2::new(ax, ay), r1);
        let b = Aabb2::from_center_radius(Vec2::new(bx, by), r2);
        let u = a.union(&b);
        prop_assert!(u.contains(a.min) && u.contains(a.max));
        prop_assert!(u.contains(b.min) && u.contains(b.max));
    }

    #[test]
    fn look_at_preserves_distances(eye in vec3_strategy(), p in vec3_strategy(), q in vec3_strategy()) {
        let target = Vec3::zero();
        prop_assume!((eye - target).length() > 1e-2);
        // Avoid up parallel to the view direction.
        let dir = (target - eye).normalized();
        prop_assume!(dir.cross(Vec3::new(0.0, 1.0, 0.0)).length() > 1e-3);
        let view = look_at(eye, target, Vec3::new(0.0, 1.0, 0.0));
        let pc = view.transform_point(p).truncate();
        let qc = view.transform_point(q).truncate();
        let d_world = (p - q).length();
        let d_cam = (pc - qc).length();
        prop_assert!(approx_eq(d_world, d_cam, 1e-2));
    }

    #[test]
    fn mat3_det_product_rule(q1 in quat_strategy(), q2 in quat_strategy(), s in finite_f32(0.2..=5.0)) {
        let a = q1.to_mat3() * s;
        let b: Mat3 = q2.to_mat3();
        let lhs = (a * b).determinant();
        let rhs = a.determinant() * b.determinant();
        prop_assert!(approx_eq(lhs, rhs, 1e-3));
    }
}
