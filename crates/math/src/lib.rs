//! Linear-algebra and graphics math substrate for the GauRast reproduction.
//!
//! The GauRast paper evaluates a hardware rasterizer for 3D Gaussian
//! Splatting. Every other crate in the workspace builds on the small,
//! dependency-free math library defined here:
//!
//! * [`Vec2`], [`Vec3`], [`Vec4`] — `f32` column vectors,
//! * [`Mat2`], [`Mat3`], [`Mat4`] — column-major matrices with inverses,
//! * [`Quat`] — unit quaternions for Gaussian orientations,
//! * [`sh`] — spherical-harmonics color evaluation (degrees 0–3) exactly as
//!   used by the 3DGS preprocessing stage,
//! * [`Aabb2`] / [`Aabb3`] — bounding boxes for tile binning,
//! * [`Frustum`] — conservative view-frustum culling tests for the
//!   visible-set subsystem,
//! * [`fp`] — FP16 bit-level conversion used by the hardware precision model.
//!
//! # Example
//!
//! ```
//! use gaurast_math::{Vec3, Mat3, Quat};
//!
//! let q = Quat::from_axis_angle(Vec3::new(0.0, 0.0, 1.0), std::f32::consts::FRAC_PI_2);
//! let r: Mat3 = q.to_mat3();
//! let v = r * Vec3::new(1.0, 0.0, 0.0);
//! assert!((v.y - 1.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod aabb;
pub mod fp;
mod frustum;
mod mat;
mod quat;
pub mod sh;
mod transform;
mod vec;

pub use aabb::{Aabb2, Aabb3};
pub use frustum::{Frustum, Visibility, MARGIN_PX};
pub use mat::{Mat2, Mat3, Mat4};
pub use quat::Quat;
pub use transform::{focal_from_fov, fov_from_focal, look_at, perspective};
pub use vec::{Vec2, Vec3, Vec4};

/// Relative/absolute tolerance comparison for `f32` used across the test
/// suites of the workspace.
///
/// Returns `true` when `a` and `b` differ by less than `tol` absolutely or
/// by less than `tol` relative to the larger magnitude.
///
/// # Example
/// ```
/// assert!(gaurast_math::approx_eq(1.0, 1.0 + 1e-7, 1e-5));
/// assert!(!gaurast_math::approx_eq(1.0, 1.1, 1e-5));
/// ```
#[inline]
pub fn approx_eq(a: f32, b: f32, tol: f32) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let largest = a.abs().max(b.abs());
    diff <= largest * tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(0.0, 1e-9, 1e-6));
        assert!(!approx_eq(0.0, 1e-3, 1e-6));
    }

    #[test]
    fn approx_eq_relative() {
        assert!(approx_eq(1.0e6, 1.0e6 + 1.0, 1e-5));
        assert!(!approx_eq(1.0e6, 1.1e6, 1e-5));
    }
}
