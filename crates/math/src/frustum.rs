//! Conservative view-frustum culling tests for splat pipelines.
//!
//! A [`Frustum`] answers one question about a world-space sphere (a
//! Gaussian center plus its conservative 3σ radius): *is it certain that
//! the rasterizer's Stage-1 preprocessing would cull this primitive?* The
//! tests are **conservative by construction** — they may answer
//! [`Visibility::Visible`] for a primitive Stage 1 goes on to cull, but
//! they must never cull a primitive Stage 1 would keep. That one-sided
//! contract is what lets a visible-set prefilter skip Stage-1 work while
//! leaving the rendered image, splat order, and statistics bit-identical
//! to the unfiltered pipeline (see `gaurast_scene::visibility`).
//!
//! Two cull classes are distinguished because they correspond to Stage-1
//! cull branches with different operation costs:
//!
//! * [`Visibility::CulledDepth`] — the center's camera-space depth lies
//!   outside `[near, far]`. Stage 1 culls such Gaussians before any
//!   tallied arithmetic.
//! * [`Visibility::CulledLateral`] — the depth is certainly in range but
//!   the projected 3σ footprint is certainly outside the image bounds (or
//!   smaller than a pixel). Stage 1 only discovers this after projecting
//!   the full covariance, so these culls carry a fixed op bundle.
//!
//! # Why the lateral test is safe
//!
//! Stage 1 culls a splat laterally when its projected mean `m` and ceiled
//! 3σ pixel radius `ρ` satisfy e.g. `m.x + ρ < 0`. For a Gaussian with
//! world 3σ radius `r = 3·σ_max` at camera-space position `p` (depth
//! `z ≥ near`), the EWA-projected radius is bounded by
//!
//! ```text
//! ρ ≤ 3·sqrt(λ_max(J Σ Jᵀ) + 0.3) + 1 ≤ (C/z)·r + 3·sqrt(0.3) + 1
//! ```
//!
//! where `C = sqrt(fx² + fy² + (0.65·w)² + (0.65·h)²)` bounds the
//! Frobenius norm of `z·J` under the reference Jacobian clamp
//! (`|t_x/z| ≤ 1.3·tan(fov_x/2)`, so the off-diagonal terms are at most
//! `1.3·w/2 / z`), and the `+1` absorbs the `ceil`. Hence
//! `3·sqrt(0.3) + 1 < 2.65 <` [`MARGIN_PX`], and multiplying the pixel
//! inequality `m.x + ρ < 0` through by `z > 0` turns each image edge into
//! a camera-space half-space test through the origin with an effective
//! radius `C·r`:
//!
//! ```text
//! fx·p.x + (cx + MARGIN_PX)·p.z + C·r < 0   ⇒   Stage 1 culls.
//! ```
//!
//! An additional absolute [`Frustum::with_slack`] widens every comparison
//! to absorb camera-pose quantization (for cached visible sets reused
//! across nearby cameras); a magnitude-scaled float-error padding is
//! always applied on top, so even a zero-slack frustum never culls a
//! sphere whose Stage-1 evaluation rounds the other way. Lateral
//! certification additionally demands overflow headroom (see
//! `lateral_overflow_safe`): when the projection could overflow into
//! Stage 1's degenerate-conic or non-finite branches — whose op
//! accounting differs from the off-screen bundle — the sphere is kept.
//! All comparisons are ordered so that NaN or infinite intermediate
//! values fall through to `Visible` — overflow can only make the filter
//! keep more, never cull more.

use crate::aabb::Aabb3;
use crate::mat::Mat4;
use crate::vec::{Vec2, Vec3};

/// Extra pixel margin added to the image bounds in the lateral tests.
/// Must exceed the `3·sqrt(0.3) + 1 ≈ 2.65` slop between the projected
/// covariance bound and Stage 1's low-pass-filtered, ceiled pixel radius
/// (see the module-level documentation on [`Frustum`]'s source module).
pub const MARGIN_PX: f32 = 4.0;

/// Answer of a frustum query for a sphere or a cell of spheres.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Visibility {
    /// Possibly visible — Stage 1 must process it. This is the
    /// conservative default: every uncertain case lands here.
    Visible,
    /// Certainly culled by the depth test (`z < near` or `z > far`), the
    /// zero-cost Stage-1 cull branch.
    CulledDepth,
    /// Depth certainly in range, footprint certainly off-image — the
    /// Stage-1 cull branch reached after full covariance projection.
    CulledLateral,
    /// (Cell queries only.) Members fall in different classes; test each
    /// sphere individually. [`Frustum::classify`] never returns this.
    Mixed,
}

/// A camera-space lateral half-space through the origin: a sphere is
/// certainly outside the image edge when `n·p_cam + C·r < -slack`.
#[derive(Clone, Copy, Debug, PartialEq)]
struct LateralPlane {
    n: Vec3,
    /// L1 norm of `n`, scaling the absolute slack for this plane (an
    /// ∞-norm position error of `s` moves the dot product by at most
    /// `|n|₁·s`).
    n_l1: f32,
}

/// A conservative view frustum for one pinhole camera. It answers "is it
/// certain Stage 1 would cull this sphere?" — it may keep a primitive
/// Stage 1 goes on to cull, but never culls one Stage 1 would keep (the
/// contract and the safety argument live in this module's source-level
/// documentation, `crates/math/src/frustum.rs`).
#[derive(Clone, Debug, PartialEq)]
pub struct Frustum {
    view: Mat4,
    near: f32,
    far: f32,
    lateral: [LateralPlane; 4],
    /// `C`: multiplies world radii into camera-space lateral slack.
    radius_scale: f32,
    /// Absolute ∞-norm bound on camera-space position error (float
    /// evaluation plus pose quantization); 0 for an exact camera.
    slack: f32,
    /// World-space affine forms `(w, d)` with `w·p + d` equal to the
    /// camera-space z and the four lateral dot products — used for cheap
    /// interval tests over AABBs.
    forms: [(Vec3, f32); 5],
}

impl Frustum {
    /// Builds the frustum of a pinhole camera: `view` maps world to
    /// camera space (+Z forward), `focal`/`principal` are in pixels, and
    /// `near`/`far` bound the kept depth range. Slack starts at zero; use
    /// [`Frustum::with_slack`] when the view matrix is approximate.
    pub fn new(
        view: Mat4,
        width: u32,
        height: u32,
        focal: Vec2,
        principal: Vec2,
        near: f32,
        far: f32,
    ) -> Self {
        let (w, h) = (width as f32, height as f32);
        let radius_scale = (focal.x * focal.x
            + focal.y * focal.y
            + (0.65 * w) * (0.65 * w)
            + (0.65 * h) * (0.65 * h))
            .sqrt();
        // Stage 1 keeps a splat only if its pixel box touches [0,w]x[0,h];
        // each edge becomes one camera-space half-space (module docs).
        let normals = [
            Vec3::new(focal.x, 0.0, principal.x + MARGIN_PX),
            Vec3::new(-focal.x, 0.0, w + MARGIN_PX - principal.x),
            Vec3::new(0.0, focal.y, principal.y + MARGIN_PX),
            Vec3::new(0.0, -focal.y, h + MARGIN_PX - principal.y),
        ];
        let lateral = normals.map(|n| LateralPlane {
            n,
            n_l1: n.x.abs() + n.y.abs() + n.z.abs(),
        });
        let rot = view.upper_left_3x3();
        let t = view.translation();
        let compose = |n: Vec3| (rot.transposed() * n, n.dot(t));
        let forms = [
            compose(Vec3::new(0.0, 0.0, 1.0)),
            compose(normals[0]),
            compose(normals[1]),
            compose(normals[2]),
            compose(normals[3]),
        ];
        Self {
            view,
            near,
            far,
            lateral,
            radius_scale,
            slack: 0.0,
            forms,
        }
    }

    /// Returns the frustum with an absolute conservative slack: an upper
    /// bound on the ∞-norm error of camera-space positions computed
    /// through this frustum's view matrix relative to the exact camera the
    /// caller will render with (floating-point evaluation differences plus
    /// any pose quantization). Every cull decision is widened by it.
    pub fn with_slack(mut self, slack: f32) -> Self {
        self.slack = slack.max(0.0);
        self
    }

    /// The effective-radius scale `C` (world radii are multiplied by it in
    /// the lateral tests).
    #[inline]
    pub fn radius_scale(&self) -> f32 {
        self.radius_scale
    }

    /// The configured conservative slack.
    #[inline]
    pub fn slack(&self) -> f32 {
        self.slack
    }

    /// Classifies one sphere (center `p`, conservative world radius `r`).
    /// Never returns [`Visibility::Mixed`]; any NaN/∞ intermediate yields
    /// `Visible` (the safe answer).
    pub fn classify(&self, p: Vec3, r: f32) -> Visibility {
        let pc = self.view.transform_point(p).truncate();
        // Self-computed float slack: even a zero-slack frustum must not
        // cull a sphere whose Stage-1 evaluation rounds the other way.
        let eps = FLOAT_EPS * (1.0 + pc.x.abs() + pc.y.abs() + pc.z.abs());
        let z_slack = self.slack + eps;
        if pc.z < self.near - z_slack || pc.z > self.far + z_slack {
            return Visibility::CulledDepth;
        }
        // Lateral culls bill Stage 1's off-screen op bundle, which is only
        // correct when the depth test certainly passes and the projection
        // certainly stays finite (see `lateral_overflow_safe`).
        if pc.z >= self.near + z_slack && pc.z <= self.far - z_slack {
            let rr = self.radius_scale * r;
            let dots = self.lateral.map(|plane| plane.n.dot(pc));
            if lateral_overflow_safe(rr, pc.z, dots.iter().fold(0.0f32, |m, d| m.max(d.abs()))) {
                for (dot, plane) in dots.iter().zip(&self.lateral) {
                    let plane_slack = plane.n_l1 * z_slack + FLOAT_EPS * rr;
                    if dot + rr < -plane_slack {
                        return Visibility::CulledLateral;
                    }
                }
            }
        }
        Visibility::Visible
    }

    /// Classifies a whole cell: an AABB of sphere centers whose radii are
    /// all at most `max_radius`. `CulledDepth`/`CulledLateral` certify
    /// *every* member sphere is in that class; `Visible` certifies no
    /// member would be culled by [`Frustum::classify`]; `Mixed` means the
    /// members must be tested individually.
    pub fn classify_aabb(&self, aabb: &Aabb3, max_radius: f32) -> Visibility {
        if aabb.is_empty() {
            return Visibility::Mixed;
        }
        let (z_lo, z_hi, z_mag) = interval(self.forms[0], aabb);
        // The interval evaluation rounds differently from the per-point
        // transform; pad every certification by its magnitude-scaled
        // float error (independent of the caller's slack).
        let z_slack = self.slack + FLOAT_EPS * (1.0 + z_mag);
        if z_hi < self.near - z_slack || z_lo > self.far + z_slack {
            return Visibility::CulledDepth;
        }
        let depth_certain = z_lo >= self.near + z_slack && z_hi <= self.far - z_slack;
        let mut all_inside = z_lo > self.near - z_slack && z_hi < self.far + z_slack;
        let rr = self.radius_scale * max_radius;
        let mut max_abs_dot = 0.0f32;
        let mut bounds = [(0.0f32, 0.0f32); 4];
        for (slot, form) in bounds.iter_mut().zip(&self.forms[1..]) {
            let (lo, hi, mag) = interval(*form, aabb);
            max_abs_dot = max_abs_dot.max(lo.abs()).max(hi.abs()).max(mag);
            *slot = (lo, hi);
        }
        // `z_lo` lower-bounds every member depth in the depth-certain
        // branch, which is the only place the guard is consulted.
        let overflow_safe = lateral_overflow_safe(rr, z_lo, max_abs_dot);
        for (plane, &(lo, hi)) in self.lateral.iter().zip(&bounds) {
            let plane_slack = plane.n_l1 * z_slack + FLOAT_EPS * rr;
            if depth_certain && overflow_safe && hi + rr < -plane_slack {
                return Visibility::CulledLateral;
            }
            // `Visible` needs every member to pass the per-sphere test,
            // which holds when even the radius-0 lower bound clears it
            // (NaN bounds fail the comparison and demote to Mixed).
            all_inside = all_inside && lo >= -plane_slack;
        }
        if all_inside {
            Visibility::Visible
        } else {
            Visibility::Mixed
        }
    }
}

/// Whether a lateral cull certification has enough overflow headroom.
///
/// The off-screen op bundle billed for a lateral cull assumes Stage 1
/// reaches its `radius < 1` / screen-bounds branch — which requires the
/// projected mean and radius to stay *finite*. Far outside these bounds
/// the projection can overflow into the degenerate-conic or non-finite
/// branches, whose accounting differs, so the frustum must keep such
/// spheres and let Stage 1 decide:
///
/// * `rr / z ≤ 1e9` keeps the projected variance bound `(C·r / (3z))²`
///   and its squared eigenvalue midpoint far below `f32::MAX`;
/// * `rr ≤ 1e16` keeps the 3×3 covariance intermediates finite even at
///   extreme depths;
/// * `|dot| / z ≤ 1e12` keeps the projected mean
///   (`|fx·x/z| ≤ |dot|/z + cx + margin`) far below `f32::MAX`.
///
/// NaN inputs fail every comparison, vetoing the certification.
#[inline]
fn lateral_overflow_safe(rr: f32, z_floor: f32, max_abs_dot: f32) -> bool {
    rr <= z_floor * 1.0e9 && rr <= 1.0e16 && max_abs_dot <= z_floor * 1.0e12
}

/// Relative float-error budget for conservative comparisons: a generous
/// bound on the rounding difference between the frustum's evaluations and
/// Stage 1's (both accumulate a handful of products, so a few ulps —
/// `FLOAT_EPS` leaves two orders of magnitude of headroom).
const FLOAT_EPS: f32 = 1e-5;

/// Range of the affine form `w·p + d` over an AABB (exact per-axis
/// min/max), plus the magnitude sum the caller scales its float-error
/// padding by.
#[inline]
fn interval((w, d): (Vec3, f32), aabb: &Aabb3) -> (f32, f32, f32) {
    let mut lo = d;
    let mut hi = d;
    let mut mag = d.abs();
    for axis in 0..3 {
        let (wa, a, b) = (w[axis], aabb.min[axis], aabb.max[axis]);
        let (x, y) = (wa * a, wa * b);
        lo += x.min(y);
        hi += x.max(y);
        mag += x.abs().max(y.abs());
    }
    (lo, hi, mag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::look_at;

    fn frustum() -> Frustum {
        // Camera at -5z looking at the origin, 128x128, f = 106.5 px
        // (fov_y = 1.0), near 0.01, far 1e4 — mirrors Camera::look_at.
        let view = look_at(
            Vec3::new(0.0, 0.0, -5.0),
            Vec3::zero(),
            Vec3::new(0.0, 1.0, 0.0),
        );
        let f = 128.0 / (2.0 * (0.5f32).tan());
        Frustum::new(
            view,
            128,
            128,
            Vec2::new(f, f),
            Vec2::new(64.0, 64.0),
            0.01,
            1.0e4,
        )
    }

    #[test]
    fn center_sphere_is_visible() {
        assert_eq!(frustum().classify(Vec3::zero(), 0.5), Visibility::Visible);
    }

    #[test]
    fn behind_camera_is_depth_culled() {
        assert_eq!(
            frustum().classify(Vec3::new(0.0, 0.0, -10.0), 0.5),
            Visibility::CulledDepth
        );
    }

    #[test]
    fn beyond_far_is_depth_culled() {
        assert_eq!(
            frustum().classify(Vec3::new(0.0, 0.0, 2.0e4), 0.5),
            Visibility::CulledDepth
        );
    }

    #[test]
    fn far_off_axis_is_laterally_culled() {
        // Well to the side at moderate depth: depth passes, footprint
        // cannot reach the image.
        assert_eq!(
            frustum().classify(Vec3::new(100.0, 0.0, 0.0), 0.1),
            Visibility::CulledLateral
        );
    }

    #[test]
    fn huge_radius_is_kept() {
        // The 3σ sphere of a huge Gaussian could project anywhere: keep.
        assert_eq!(
            frustum().classify(Vec3::new(100.0, 0.0, 0.0), 1000.0),
            Visibility::Visible
        );
    }

    #[test]
    fn non_finite_inputs_fall_through_to_visible() {
        let fr = frustum();
        assert_eq!(
            fr.classify(Vec3::new(f32::MAX, f32::MAX, 0.0), f32::INFINITY),
            Visibility::Visible
        );
        assert_eq!(
            fr.classify(Vec3::new(100.0, 0.0, 0.0), f32::NAN),
            Visibility::Visible
        );
    }

    #[test]
    fn slack_makes_borderline_spheres_visible() {
        let p = Vec3::new(0.0, 0.0, -4.995); // depth 0.005 < near
        assert_eq!(frustum().classify(p, 0.001), Visibility::CulledDepth);
        assert_eq!(
            frustum().with_slack(0.1).classify(p, 0.001),
            Visibility::Visible
        );
    }

    #[test]
    fn overflow_guard_vetoes_unsafe_certifications() {
        // Within headroom: certifiable.
        assert!(lateral_overflow_safe(1.0e6, 50.0, 1.0e8));
        // Projected variance may overflow (rr/z too big).
        assert!(!lateral_overflow_safe(1.0e12, 50.0, 1.0e8));
        // Covariance intermediates may overflow (absolute rr too big).
        assert!(!lateral_overflow_safe(1.0e17, 1.0e9, 1.0e8));
        // Projected mean may overflow (|dot|/z too big).
        assert!(!lateral_overflow_safe(1.0e6, 50.0, 1.0e15));
        // NaN anywhere vetoes.
        assert!(!lateral_overflow_safe(f32::NAN, 50.0, 1.0e8));
        assert!(!lateral_overflow_safe(1.0e6, f32::NAN, 1.0e8));
        assert!(!lateral_overflow_safe(1.0e6, 50.0, f32::NAN));
    }

    #[test]
    fn aabb_classes_match_member_classes() {
        let fr = frustum();
        // Fully in front and on-axis.
        let inside = Aabb3::new(Vec3::splat(-0.5), Vec3::splat(0.5));
        assert_eq!(fr.classify_aabb(&inside, 0.1), Visibility::Visible);
        // Entirely behind the camera.
        let behind = Aabb3::new(Vec3::new(-1.0, -1.0, -20.0), Vec3::new(1.0, 1.0, -10.0));
        assert_eq!(fr.classify_aabb(&behind, 0.1), Visibility::CulledDepth);
        // Entirely far off to the side at valid depth.
        let side = Aabb3::new(Vec3::new(90.0, -1.0, -1.0), Vec3::new(110.0, 1.0, 1.0));
        assert_eq!(fr.classify_aabb(&side, 0.1), Visibility::CulledLateral);
        // Straddling the image edge: must come back Mixed.
        let straddle = Aabb3::new(Vec3::new(-40.0, -0.5, -0.5), Vec3::new(0.0, 0.5, 0.5));
        assert_eq!(fr.classify_aabb(&straddle, 0.1), Visibility::Mixed);
        // Empty cells cannot be certified.
        assert_eq!(fr.classify_aabb(&Aabb3::empty(), 0.1), Visibility::Mixed);
    }

    #[test]
    fn aabb_interval_brackets_member_evaluations() {
        let fr = frustum();
        let aabb = Aabb3::new(Vec3::new(-3.0, -2.0, -1.0), Vec3::new(4.0, 5.0, 6.0));
        let (lo, hi, _mag) = interval(fr.forms[0], &aabb);
        for corner in 0..8 {
            let p = Vec3::new(
                if corner & 1 == 0 {
                    aabb.min.x
                } else {
                    aabb.max.x
                },
                if corner & 2 == 0 {
                    aabb.min.y
                } else {
                    aabb.max.y
                },
                if corner & 4 == 0 {
                    aabb.min.z
                } else {
                    aabb.max.z
                },
            );
            let z = fr.view.transform_point(p).truncate().z;
            assert!(
                z >= lo - 1e-4 && z <= hi + 1e-4,
                "z {z} outside [{lo}, {hi}]"
            );
        }
    }
}
