//! Camera transform helpers: look-at view matrices and pinhole projection.

use crate::mat::{Mat3, Mat4};
use crate::vec::Vec3;

/// Builds a right-handed world-to-camera view matrix.
///
/// The camera looks from `eye` toward `target` with `up` approximating the
/// up direction. The returned matrix maps world points into a camera frame
/// with +X right, +Y down, and **+Z forward** (the convention of the 3DGS
/// rasterizer, where depth is the camera-space z).
///
/// # Panics
/// Panics in debug builds when `eye == target` or `up` is parallel to the
/// view direction.
pub fn look_at(eye: Vec3, target: Vec3, up: Vec3) -> Mat4 {
    let forward = (target - eye)
        .try_normalized()
        .expect("look_at: eye and target coincide");
    let right = forward
        .cross(up)
        .try_normalized()
        .expect("look_at: up parallel to view direction");
    // In a +Y-down camera frame the down vector completes the basis.
    let down = forward.cross(right);

    // Rows of the rotation are the camera basis vectors.
    let r = Mat3::from_rows(
        right.x, right.y, right.z, down.x, down.y, down.z, forward.x, forward.y, forward.z,
    );
    let t = -(r * eye);
    Mat4::from_rotation_translation(r, t)
}

/// Focal length in pixels from a field of view and an image dimension.
///
/// `focal = dim / (2 tan(fov/2))` — the standard pinhole relation used by
/// the 3DGS preprocessing stage.
///
/// # Panics
/// Panics in debug builds for non-positive dimensions or `fov` outside
/// `(0, π)`.
#[inline]
pub fn focal_from_fov(fov_radians: f32, dim_pixels: f32) -> f32 {
    debug_assert!(dim_pixels > 0.0);
    debug_assert!(fov_radians > 0.0 && fov_radians < std::f32::consts::PI);
    dim_pixels / (2.0 * (0.5 * fov_radians).tan())
}

/// Inverse of [`focal_from_fov`].
#[inline]
pub fn fov_from_focal(focal_pixels: f32, dim_pixels: f32) -> f32 {
    debug_assert!(focal_pixels > 0.0 && dim_pixels > 0.0);
    2.0 * (0.5 * dim_pixels / focal_pixels).atan()
}

/// Right-handed perspective projection matrix (OpenGL-style clip space,
/// depth mapped to `[0, 1]`), used only by the triangle path; the Gaussian
/// path projects analytically in [`look_at`] camera space.
///
/// # Panics
/// Panics in debug builds for degenerate parameters (`near >= far`,
/// non-positive `near` or `aspect`).
pub fn perspective(fov_y_radians: f32, aspect: f32, near: f32, far: f32) -> Mat4 {
    debug_assert!(near > 0.0 && far > near && aspect > 0.0);
    let f = 1.0 / (0.5 * fov_y_radians).tan();
    Mat4::from_cols(
        crate::Vec4::new(f / aspect, 0.0, 0.0, 0.0),
        crate::Vec4::new(0.0, f, 0.0, 0.0),
        crate::Vec4::new(0.0, 0.0, far / (far - near), 1.0),
        crate::Vec4::new(0.0, 0.0, -far * near / (far - near), 0.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use std::f32::consts::FRAC_PI_2;

    #[test]
    fn look_at_puts_target_on_axis() {
        let eye = Vec3::new(0.0, 0.0, -5.0);
        let target = Vec3::zero();
        let view = look_at(eye, target, Vec3::new(0.0, 1.0, 0.0));
        let p = view.transform_point(target).truncate();
        assert!(approx_eq(p.x, 0.0, 1e-5));
        assert!(approx_eq(p.y, 0.0, 1e-5));
        assert!(approx_eq(p.z, 5.0, 1e-5)); // depth = distance
    }

    #[test]
    fn look_at_depth_increases_away() {
        let view = look_at(
            Vec3::zero(),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(0.0, 1.0, 0.0),
        );
        let near = view.transform_point(Vec3::new(0.0, 0.0, 1.0)).truncate();
        let far = view.transform_point(Vec3::new(0.0, 0.0, 10.0)).truncate();
        assert!(far.z > near.z && near.z > 0.0);
    }

    #[test]
    fn look_at_right_is_positive_x() {
        // Camera at +Z looking back at the origin (the intuitive, mirror-free
        // configuration): world +X lands on camera +X.
        let view = look_at(
            Vec3::new(0.0, 0.0, 5.0),
            Vec3::zero(),
            Vec3::new(0.0, 1.0, 0.0),
        );
        let p = view.transform_point(Vec3::new(1.0, 0.0, 0.0)).truncate();
        assert!(p.x > 0.0);
    }

    #[test]
    fn look_at_up_is_negative_y() {
        // +Y-down camera: a world point above the axis maps to negative y.
        let view = look_at(
            Vec3::new(0.0, 0.0, 5.0),
            Vec3::zero(),
            Vec3::new(0.0, 1.0, 0.0),
        );
        let p = view.transform_point(Vec3::new(0.0, 1.0, 0.0)).truncate();
        assert!(p.y < 0.0);
    }

    #[test]
    fn look_at_is_proper_rotation() {
        // The linear part must be a det = +1 rotation for any eye/target.
        let view = look_at(
            Vec3::new(2.0, 1.0, -4.0),
            Vec3::new(0.5, -0.5, 1.0),
            Vec3::new(0.0, 1.0, 0.0),
        );
        let r = view.upper_left_3x3();
        assert!(approx_eq(r.determinant(), 1.0, 1e-5));
    }

    #[test]
    fn focal_fov_roundtrip() {
        let w = 1280.0;
        for &fov in &[0.5f32, 1.0, FRAC_PI_2, 2.0] {
            let f = focal_from_fov(fov, w);
            assert!(approx_eq(fov_from_focal(f, w), fov, 1e-5), "fov = {fov}");
        }
    }

    #[test]
    fn perspective_maps_near_far() {
        let m = perspective(FRAC_PI_2, 1.0, 0.1, 100.0);
        let near = m.transform_point(Vec3::new(0.0, 0.0, 0.1)).project();
        let far = m.transform_point(Vec3::new(0.0, 0.0, 100.0)).project();
        assert!(approx_eq(near.z, 0.0, 1e-4));
        assert!(approx_eq(far.z, 1.0, 1e-4));
    }
}
