//! Axis-aligned bounding boxes for tile binning and scene extents.

use crate::vec::{Vec2, Vec3};

/// 2D axis-aligned bounding box (screen-space Gaussian extents, tile
/// rectangles).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aabb2 {
    /// Minimum corner.
    pub min: Vec2,
    /// Maximum corner.
    pub max: Vec2,
}

/// 3D axis-aligned bounding box (scene extents).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aabb3 {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb2 {
    /// Box from corners. Components of `min` must not exceed `max`.
    ///
    /// # Panics
    /// Panics in debug builds when `min > max` on any axis.
    #[inline]
    pub fn new(min: Vec2, max: Vec2) -> Self {
        debug_assert!(min.x <= max.x && min.y <= max.y, "inverted Aabb2");
        Self { min, max }
    }

    /// Empty box (inverted infinities); the identity for [`Self::union`].
    #[inline]
    pub fn empty() -> Self {
        Self {
            min: Vec2::splat(f32::INFINITY),
            max: Vec2::splat(f32::NEG_INFINITY),
        }
    }

    /// Box centered at `c` with half-extent `r` on both axes (the 3σ square
    /// around a projected Gaussian).
    #[inline]
    pub fn from_center_radius(c: Vec2, r: f32) -> Self {
        debug_assert!(r >= 0.0);
        Self::new(c - Vec2::splat(r), c + Vec2::splat(r))
    }

    /// `true` when the box contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Smallest box containing both.
    #[inline]
    pub fn union(&self, other: &Self) -> Self {
        Self {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Grows to include a point.
    #[inline]
    pub fn expand(&mut self, p: Vec2) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Intersection, or an empty box when disjoint.
    #[inline]
    pub fn intersection(&self, other: &Self) -> Self {
        Self {
            min: self.min.max(other.min),
            max: self.max.min(other.max),
        }
    }

    /// `true` when the boxes overlap (closed intervals).
    #[inline]
    pub fn intersects(&self, other: &Self) -> bool {
        !self.intersection(other).is_empty()
    }

    /// `true` when the point lies inside (closed).
    #[inline]
    pub fn contains(&self, p: Vec2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Width and height. Zero for empty boxes.
    #[inline]
    pub fn size(&self) -> Vec2 {
        if self.is_empty() {
            Vec2::zero()
        } else {
            self.max - self.min
        }
    }

    /// Area. Zero for empty boxes.
    #[inline]
    pub fn area(&self) -> f32 {
        let s = self.size();
        s.x * s.y
    }
}

impl Aabb3 {
    /// Box from corners.
    ///
    /// # Panics
    /// Panics in debug builds when `min > max` on any axis.
    #[inline]
    pub fn new(min: Vec3, max: Vec3) -> Self {
        debug_assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "inverted Aabb3"
        );
        Self { min, max }
    }

    /// Empty box; the identity for [`Self::union`].
    #[inline]
    pub fn empty() -> Self {
        Self {
            min: Vec3::splat(f32::INFINITY),
            max: Vec3::splat(f32::NEG_INFINITY),
        }
    }

    /// `true` when the box contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// Smallest box containing both.
    #[inline]
    pub fn union(&self, other: &Self) -> Self {
        Self {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Grows to include a point.
    #[inline]
    pub fn expand(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// `true` when the point lies inside (closed).
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Center point.
    ///
    /// # Panics
    /// Panics in debug builds when the box is empty.
    #[inline]
    pub fn center(&self) -> Vec3 {
        debug_assert!(!self.is_empty(), "center of empty Aabb3");
        (self.min + self.max) * 0.5
    }

    /// Edge lengths. Zero for empty boxes.
    #[inline]
    pub fn size(&self) -> Vec3 {
        if self.is_empty() {
            Vec3::zero()
        } else {
            self.max - self.min
        }
    }

    /// Length of the diagonal (scene extent measure used by the generators).
    #[inline]
    pub fn diagonal(&self) -> f32 {
        self.size().length()
    }
}

impl Default for Aabb2 {
    fn default() -> Self {
        Self::empty()
    }
}

impl Default for Aabb3 {
    fn default() -> Self {
        Self::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_union_identity() {
        let b = Aabb2::new(Vec2::new(1.0, 2.0), Vec2::new(3.0, 4.0));
        assert_eq!(Aabb2::empty().union(&b), b);
    }

    #[test]
    fn expand_builds_hull() {
        let mut b = Aabb2::empty();
        b.expand(Vec2::new(1.0, 5.0));
        b.expand(Vec2::new(-2.0, 3.0));
        assert_eq!(b.min, Vec2::new(-2.0, 3.0));
        assert_eq!(b.max, Vec2::new(1.0, 5.0));
    }

    #[test]
    fn disjoint_boxes_do_not_intersect() {
        let a = Aabb2::new(Vec2::zero(), Vec2::one());
        let b = Aabb2::new(Vec2::splat(2.0), Vec2::splat(3.0));
        assert!(!a.intersects(&b));
        assert!(a.intersection(&b).is_empty());
    }

    #[test]
    fn touching_boxes_intersect() {
        let a = Aabb2::new(Vec2::zero(), Vec2::one());
        let b = Aabb2::new(Vec2::new(1.0, 0.0), Vec2::new(2.0, 1.0));
        assert!(a.intersects(&b));
    }

    #[test]
    fn from_center_radius_contains_center() {
        let b = Aabb2::from_center_radius(Vec2::new(5.0, -3.0), 2.0);
        assert!(b.contains(Vec2::new(5.0, -3.0)));
        assert!(b.contains(Vec2::new(7.0, -1.0)));
        assert!(!b.contains(Vec2::new(7.1, -1.0)));
    }

    #[test]
    fn aabb3_center_and_diagonal() {
        let b = Aabb3::new(Vec3::zero(), Vec3::new(2.0, 2.0, 1.0));
        assert_eq!(b.center(), Vec3::new(1.0, 1.0, 0.5));
        assert!((b.diagonal() - 3.0) < 1e-6);
    }

    #[test]
    fn empty_area_is_zero() {
        assert_eq!(Aabb2::empty().area(), 0.0);
        assert_eq!(Aabb3::empty().size(), Vec3::zero());
    }
}
