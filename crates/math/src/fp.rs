//! Floating-point precision utilities for the hardware model.
//!
//! The GauRast prototype computes in FP32; §V-C re-implements the datapath
//! in FP16 for the iso-precision comparison against GSCore. This module
//! provides bit-exact IEEE 754 binary16 conversion (round-to-nearest-even)
//! so the simulator can model the FP16 datapath without an external half
//! crate.

/// IEEE 754 binary16 value stored as raw bits.
///
/// # Example
/// ```
/// use gaurast_math::fp::F16;
/// let h = F16::from_f32(1.5);
/// assert_eq!(h.to_f32(), 1.5);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct F16(pub u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7BFF);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);

    /// Converts from `f32` with round-to-nearest-even, matching hardware
    /// FP32→FP16 down-conversion.
    pub fn from_f32(v: f32) -> Self {
        let bits = v.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let frac = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf / NaN. Preserve NaN-ness with a quiet bit.
            let mant = if frac != 0 { 0x0200 } else { 0 };
            return F16(sign | 0x7C00 | mant);
        }

        // Unbiased exponent.
        let e = exp - 127;
        if e > 15 {
            // Overflow to infinity.
            return F16(sign | 0x7C00);
        }
        if e >= -14 {
            // Normal range. 10-bit mantissa with RNE on the dropped 13 bits.
            let mant13 = frac >> 13;
            let round_bits = frac & 0x1FFF;
            let mut mant = mant13 as u16;
            let mut exp16 = (e + 15) as u16;
            let halfway = 0x1000;
            if round_bits > halfway || (round_bits == halfway && (mant & 1) == 1) {
                mant += 1;
                if mant == 0x400 {
                    mant = 0;
                    exp16 += 1;
                    if exp16 >= 31 {
                        return F16(sign | 0x7C00);
                    }
                }
            }
            return F16(sign | (exp16 << 10) | mant);
        }
        if e >= -24 {
            // Subnormal range: implicit leading 1 becomes explicit.
            let full = frac | 0x0080_0000;
            let shift = (-14 - e) as u32 + 13;
            let mant = (full >> shift) as u16;
            let rem = full & ((1u32 << shift) - 1);
            let halfway = 1u32 << (shift - 1);
            let mut mant = mant;
            if rem > halfway || (rem == halfway && (mant & 1) == 1) {
                mant += 1; // may carry into the exponent — that is correct
            }
            return F16(sign | mant);
        }
        // Underflow to zero.
        F16(sign)
    }

    /// Converts to `f32` exactly (every binary16 value is representable).
    pub fn to_f32(self) -> f32 {
        let bits = self.0 as u32;
        let sign = (bits & 0x8000) << 16;
        let exp = (bits >> 10) & 0x1F;
        let mant = bits & 0x3FF;

        let out = if exp == 0 {
            if mant == 0 {
                sign
            } else {
                // Subnormal: value = mant * 2^-24. Normalize so the implicit
                // bit (bit 10) is set; each shift lowers the exponent by one
                // from the -14 of the largest subnormals.
                let mut shifts = 0u32;
                let mut m = mant;
                while m & 0x400 == 0 {
                    m <<= 1;
                    shifts += 1;
                }
                m &= 0x3FF;
                let exp32 = 127 - 14 - shifts;
                sign | (exp32 << 23) | (m << 13)
            }
        } else if exp == 31 {
            sign | 0x7F80_0000 | (mant << 13)
        } else {
            let exp32 = exp + (127 - 15);
            sign | (exp32 << 23) | (mant << 13)
        };
        f32::from_bits(out)
    }

    /// `true` for NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }
}

/// Rounds an `f32` through binary16 and back — the value a pure-FP16
/// datapath would carry between operations.
///
/// # Example
/// ```
/// use gaurast_math::fp::round_to_f16;
/// // 0.1 is inexact in fp16; rounding through fp16 changes it.
/// assert_ne!(round_to_f16(0.1), 0.1);
/// assert!((round_to_f16(0.1) - 0.1).abs() < 1e-3);
/// ```
#[inline]
pub fn round_to_f16(v: f32) -> f32 {
    F16::from_f32(v).to_f32()
}

/// Units-in-last-place distance between two finite `f32` values; large for
/// values of different signs. Used by the RTL-vs-reference validation tests.
pub fn ulp_distance(a: f32, b: f32) -> u32 {
    if a == b {
        return 0;
    }
    if !a.is_finite() || !b.is_finite() {
        return u32::MAX;
    }
    let to_ordered = |f: f32| -> i64 {
        let bits = f.to_bits() as i64;
        if bits < 0 {
            // Map negative floats below the positives, preserving order.
            i64::from(i32::MIN) - (bits - 0x8000_0000_i64) - 1
        } else {
            bits
        }
    };
    let d = (to_ordered(a) - to_ordered(b)).unsigned_abs();
    u32::try_from(d).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_roundtrip() {
        for i in -2048..=2048 {
            let v = i as f32;
            assert_eq!(round_to_f16(v), v, "integer {i} must be exact in fp16");
        }
    }

    #[test]
    fn one_and_constants() {
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::from_f32(1.0), F16::ONE);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::from_f32(f32::INFINITY), F16::INFINITY);
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(F16::from_f32(1e6), F16::INFINITY);
        assert_eq!(F16::from_f32(-1e6).to_f32(), f32::NEG_INFINITY);
    }

    #[test]
    fn underflow_to_zero() {
        assert_eq!(round_to_f16(1e-10), 0.0);
        assert_eq!(round_to_f16(-1e-10), -0.0);
    }

    #[test]
    fn subnormal_roundtrip() {
        // Smallest positive subnormal: 2^-24.
        let tiny = 2.0_f32.powi(-24);
        assert_eq!(round_to_f16(tiny), tiny);
        // Largest subnormal: (1023/1024) * 2^-14.
        let sub = 1023.0 / 1024.0 * 2.0_f32.powi(-14);
        assert_eq!(round_to_f16(sub), sub);
    }

    #[test]
    fn nan_propagates() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10; RNE keeps 1.0.
        let halfway = 1.0 + 2.0_f32.powi(-11);
        assert_eq!(round_to_f16(halfway), 1.0);
        // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; RNE rounds up to even.
        let halfway_up = 1.0 + 3.0 * 2.0_f32.powi(-11);
        assert_eq!(round_to_f16(halfway_up), 1.0 + 2.0 * 2.0_f32.powi(-10));
    }

    #[test]
    fn all_f16_bit_patterns_roundtrip() {
        // Exhaustive: every finite f16 converts to f32 and back unchanged.
        for bits in 0..=u16::MAX {
            let h = F16(bits);
            if h.is_nan() {
                continue;
            }
            let back = F16::from_f32(h.to_f32());
            // -0.0 and 0.0 have distinct bit patterns; both must roundtrip.
            assert_eq!(back, h, "bits {bits:#06x}");
        }
    }

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(1.0, f32::from_bits(1.0_f32.to_bits() + 1)), 1);
        assert!(ulp_distance(-1.0, 1.0) > 1_000_000);
        assert_eq!(ulp_distance(f32::NAN, 1.0), u32::MAX);
    }
}
