//! Unit quaternions for Gaussian orientations.
//!
//! 3DGS parameterizes each Gaussian's covariance as `R S Sᵀ Rᵀ` where `R`
//! comes from a unit quaternion. This module provides exactly the quaternion
//! operations the pipeline needs.

use crate::mat::Mat3;
use crate::vec::Vec3;

/// Unit quaternion `w + xi + yj + zk`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Quat {
    /// Scalar part.
    pub w: f32,
    /// i component.
    pub x: f32,
    /// j component.
    pub y: f32,
    /// k component.
    pub z: f32,
}

impl Quat {
    /// Quaternion from raw components (not normalized).
    #[inline]
    pub const fn new(w: f32, x: f32, y: f32, z: f32) -> Self {
        Self { w, x, y, z }
    }

    /// Identity rotation.
    #[inline]
    pub const fn identity() -> Self {
        Self::new(1.0, 0.0, 0.0, 0.0)
    }

    /// Rotation of `angle` radians about the (unit) `axis`.
    ///
    /// # Panics
    /// Panics in debug builds when `axis` is not unit length.
    pub fn from_axis_angle(axis: Vec3, angle: f32) -> Self {
        debug_assert!(
            (axis.length() - 1.0).abs() < 1e-4,
            "axis must be unit length"
        );
        let half = 0.5 * angle;
        let s = half.sin();
        Self::new(half.cos(), axis.x * s, axis.y * s, axis.z * s)
    }

    /// Squared norm.
    #[inline]
    pub fn norm_squared(self) -> f32 {
        self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z
    }

    /// Norm.
    #[inline]
    pub fn norm(self) -> f32 {
        self.norm_squared().sqrt()
    }

    /// Returns the normalized quaternion, or the identity when degenerate.
    pub fn normalized(self) -> Self {
        let n = self.norm();
        if !n.is_finite() || n < 1e-12 {
            return Self::identity();
        }
        Self::new(self.w / n, self.x / n, self.y / n, self.z / n)
    }

    /// Conjugate (inverse for unit quaternions).
    #[inline]
    pub fn conjugate(self) -> Self {
        Self::new(self.w, -self.x, -self.y, -self.z)
    }

    /// Rotation matrix of the normalized quaternion.
    ///
    /// This is the exact formula from the 3DGS reference implementation's
    /// `computeCov3D`.
    pub fn to_mat3(self) -> Mat3 {
        let q = self.normalized();
        let (w, x, y, z) = (q.w, q.x, q.y, q.z);
        Mat3::from_rows(
            1.0 - 2.0 * (y * y + z * z),
            2.0 * (x * y - w * z),
            2.0 * (x * z + w * y),
            2.0 * (x * y + w * z),
            1.0 - 2.0 * (x * x + z * z),
            2.0 * (y * z - w * x),
            2.0 * (x * z - w * y),
            2.0 * (y * z + w * x),
            1.0 - 2.0 * (x * x + y * y),
        )
    }

    /// Rotates a vector.
    #[inline]
    pub fn rotate(self, v: Vec3) -> Vec3 {
        self.to_mat3() * v
    }
}

impl Default for Quat {
    fn default() -> Self {
        Self::identity()
    }
}

impl std::ops::Mul for Quat {
    type Output = Quat;

    /// Hamilton product `self * rhs` (applies `rhs` first).
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.w * rhs.w - self.x * rhs.x - self.y * rhs.y - self.z * rhs.z,
            self.w * rhs.x + self.x * rhs.w + self.y * rhs.z - self.z * rhs.y,
            self.w * rhs.y - self.x * rhs.z + self.y * rhs.w + self.z * rhs.x,
            self.w * rhs.z + self.x * rhs.y - self.y * rhs.x + self.z * rhs.w,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use std::f32::consts::{FRAC_PI_2, PI};

    #[test]
    fn identity_rotation_is_noop() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(Quat::identity().rotate(v), v);
    }

    #[test]
    fn quarter_turn_about_z() {
        let q = Quat::from_axis_angle(Vec3::new(0.0, 0.0, 1.0), FRAC_PI_2);
        let v = q.rotate(Vec3::new(1.0, 0.0, 0.0));
        assert!((v - Vec3::new(0.0, 1.0, 0.0)).length() < 1e-6);
    }

    #[test]
    fn half_turn_flips() {
        let q = Quat::from_axis_angle(Vec3::new(0.0, 1.0, 0.0), PI);
        let v = q.rotate(Vec3::new(1.0, 0.0, 0.0));
        assert!((v - Vec3::new(-1.0, 0.0, 0.0)).length() < 1e-6);
    }

    #[test]
    fn rotation_matrix_is_orthonormal() {
        let q = Quat::new(0.3, -0.5, 0.7, 0.4);
        let r = q.to_mat3();
        let rt_r = r.transposed() * r;
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!(approx_eq(rt_r.at(i, j), expected, 1e-5), "({i},{j})");
            }
        }
        assert!(approx_eq(r.determinant(), 1.0, 1e-5));
    }

    #[test]
    fn composition_matches_matrix_product() {
        let a = Quat::from_axis_angle(Vec3::new(1.0, 0.0, 0.0), 0.7);
        let b = Quat::from_axis_angle(Vec3::new(0.0, 1.0, 0.0), -1.2);
        let v = Vec3::new(0.2, -0.4, 0.9);
        let via_quat = (a * b).rotate(v);
        let via_mats = a.to_mat3() * (b.to_mat3() * v);
        assert!((via_quat - via_mats).length() < 1e-5);
    }

    #[test]
    fn conjugate_inverts_unit_rotation() {
        let q = Quat::from_axis_angle(Vec3::new(0.6, 0.8, 0.0), 0.9);
        let v = Vec3::new(1.0, 2.0, 3.0);
        let roundtrip = q.conjugate().rotate(q.rotate(v));
        assert!((roundtrip - v).length() < 1e-5);
    }

    #[test]
    fn degenerate_normalizes_to_identity() {
        assert_eq!(Quat::new(0.0, 0.0, 0.0, 0.0).normalized(), Quat::identity());
    }
}
