//! Column-major `f32` matrices.
//!
//! All matrices store columns contiguously (`cols[j][i]` is row `i`,
//! column `j`), matching the convention of the original 3DGS CUDA code so
//! formulas transfer verbatim.

use crate::vec::{Vec2, Vec3, Vec4};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// 2×2 matrix — covariance of a projected 2D Gaussian.
#[derive(Clone, Copy, PartialEq)]
pub struct Mat2 {
    /// Columns.
    pub cols: [Vec2; 2],
}

/// 3×3 matrix — rotations, 3D covariances, Jacobians.
#[derive(Clone, Copy, PartialEq)]
pub struct Mat3 {
    /// Columns.
    pub cols: [Vec3; 3],
}

/// 4×4 matrix — homogeneous camera/projection transforms.
#[derive(Clone, Copy, PartialEq)]
pub struct Mat4 {
    /// Columns.
    pub cols: [Vec4; 4],
}

impl Mat2 {
    /// Matrix from columns.
    #[inline]
    pub const fn from_cols(c0: Vec2, c1: Vec2) -> Self {
        Self { cols: [c0, c1] }
    }

    /// Matrix from row-major scalars `[[a, b], [c, d]]`.
    #[inline]
    pub const fn from_rows(a: f32, b: f32, c: f32, d: f32) -> Self {
        Self::from_cols(Vec2::new(a, c), Vec2::new(b, d))
    }

    /// Identity matrix.
    #[inline]
    pub const fn identity() -> Self {
        Self::from_rows(1.0, 0.0, 0.0, 1.0)
    }

    /// Element at `(row, col)`.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> f32 {
        self.cols[col][row]
    }

    /// Determinant.
    #[inline]
    pub fn determinant(&self) -> f32 {
        self.at(0, 0) * self.at(1, 1) - self.at(0, 1) * self.at(1, 0)
    }

    /// Matrix inverse, or `None` when the determinant magnitude is below
    /// `1e-20` (degenerate 2D Gaussian).
    #[inline]
    pub fn inverse(&self) -> Option<Self> {
        let det = self.determinant();
        if !det.is_finite() || det.abs() < 1e-20 {
            return None;
        }
        let inv_det = 1.0 / det;
        Some(Self::from_rows(
            self.at(1, 1) * inv_det,
            -self.at(0, 1) * inv_det,
            -self.at(1, 0) * inv_det,
            self.at(0, 0) * inv_det,
        ))
    }

    /// Transpose.
    #[inline]
    pub fn transposed(&self) -> Self {
        Self::from_rows(self.at(0, 0), self.at(1, 0), self.at(0, 1), self.at(1, 1))
    }

    /// `true` when symmetric within `tol`.
    #[inline]
    pub fn is_symmetric(&self, tol: f32) -> bool {
        (self.at(0, 1) - self.at(1, 0)).abs() <= tol
    }

    /// Eigenvalues of a symmetric 2×2 matrix, largest first.
    ///
    /// Used to compute the screen-space extent (3σ radius) of a projected
    /// Gaussian. For non-symmetric inputs the result is meaningless.
    #[inline]
    pub fn symmetric_eigenvalues(&self) -> (f32, f32) {
        let mid = 0.5 * (self.at(0, 0) + self.at(1, 1));
        let det = self.determinant();
        let disc = (mid * mid - det).max(0.0).sqrt();
        (mid + disc, mid - disc)
    }
}

impl Mat3 {
    /// Matrix from columns.
    #[inline]
    pub const fn from_cols(c0: Vec3, c1: Vec3, c2: Vec3) -> Self {
        Self { cols: [c0, c1, c2] }
    }

    /// Matrix from row-major scalars.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub const fn from_rows(
        m00: f32,
        m01: f32,
        m02: f32,
        m10: f32,
        m11: f32,
        m12: f32,
        m20: f32,
        m21: f32,
        m22: f32,
    ) -> Self {
        Self::from_cols(
            Vec3::new(m00, m10, m20),
            Vec3::new(m01, m11, m21),
            Vec3::new(m02, m12, m22),
        )
    }

    /// Identity matrix.
    #[inline]
    pub const fn identity() -> Self {
        Self::from_rows(1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0)
    }

    /// Diagonal matrix.
    #[inline]
    pub const fn from_diagonal(d: Vec3) -> Self {
        Self::from_rows(d.x, 0.0, 0.0, 0.0, d.y, 0.0, 0.0, 0.0, d.z)
    }

    /// Element at `(row, col)`.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> f32 {
        self.cols[col][row]
    }

    /// Transpose.
    pub fn transposed(&self) -> Self {
        Self::from_rows(
            self.at(0, 0),
            self.at(1, 0),
            self.at(2, 0),
            self.at(0, 1),
            self.at(1, 1),
            self.at(2, 1),
            self.at(0, 2),
            self.at(1, 2),
            self.at(2, 2),
        )
    }

    /// Determinant.
    pub fn determinant(&self) -> f32 {
        let [a, b, c] = self.cols;
        a.dot(b.cross(c))
    }

    /// Matrix inverse, or `None` when singular.
    pub fn inverse(&self) -> Option<Self> {
        let [a, b, c] = self.cols;
        let r0 = b.cross(c);
        let r1 = c.cross(a);
        let r2 = a.cross(b);
        let det = a.dot(r0);
        if !det.is_finite() || det.abs() < 1e-30 {
            return None;
        }
        let inv_det = 1.0 / det;
        // Rows of the inverse are the scaled cross products.
        Some(Self::from_rows(
            r0.x * inv_det,
            r0.y * inv_det,
            r0.z * inv_det,
            r1.x * inv_det,
            r1.y * inv_det,
            r1.z * inv_det,
            r2.x * inv_det,
            r2.y * inv_det,
            r2.z * inv_det,
        ))
    }

    /// Extracts the upper-left 2×2 block — the projected covariance after
    /// the EWA Jacobian transform.
    #[inline]
    pub fn upper_left_2x2(&self) -> Mat2 {
        Mat2::from_rows(self.at(0, 0), self.at(0, 1), self.at(1, 0), self.at(1, 1))
    }
}

impl Mat4 {
    /// Matrix from columns.
    #[inline]
    pub const fn from_cols(c0: Vec4, c1: Vec4, c2: Vec4, c3: Vec4) -> Self {
        Self {
            cols: [c0, c1, c2, c3],
        }
    }

    /// Identity matrix.
    #[inline]
    pub const fn identity() -> Self {
        Self::from_cols(
            Vec4::new(1.0, 0.0, 0.0, 0.0),
            Vec4::new(0.0, 1.0, 0.0, 0.0),
            Vec4::new(0.0, 0.0, 1.0, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Element at `(row, col)`.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> f32 {
        self.cols[col][row]
    }

    /// Builds a rigid transform from a rotation and a translation.
    #[inline]
    pub fn from_rotation_translation(r: Mat3, t: Vec3) -> Self {
        Self::from_cols(
            r.cols[0].extend(0.0),
            r.cols[1].extend(0.0),
            r.cols[2].extend(0.0),
            t.extend(1.0),
        )
    }

    /// Upper-left 3×3 block (the rotation/linear part).
    #[inline]
    pub fn upper_left_3x3(&self) -> Mat3 {
        Mat3::from_cols(
            self.cols[0].truncate(),
            self.cols[1].truncate(),
            self.cols[2].truncate(),
        )
    }

    /// Translation column.
    #[inline]
    pub fn translation(&self) -> Vec3 {
        self.cols[3].truncate()
    }

    /// Transpose.
    pub fn transposed(&self) -> Self {
        let mut out = Self::identity();
        for r in 0..4 {
            for c in 0..4 {
                out.cols[r][c] = self.at(r, c);
            }
        }
        out
    }

    /// Transforms a point (w = 1) without perspective division.
    #[inline]
    pub fn transform_point(&self, p: Vec3) -> Vec4 {
        *self * p.extend(1.0)
    }

    /// Inverse of a rigid transform (rotation + translation only).
    ///
    /// Much cheaper and more accurate than a general inverse; the caller
    /// must guarantee the matrix is rigid (orthonormal linear part, bottom
    /// row `0 0 0 1`).
    pub fn rigid_inverse(&self) -> Self {
        let r_t = self.upper_left_3x3().transposed();
        let t = self.translation();
        let new_t = -(r_t * t);
        Self::from_rotation_translation(r_t, new_t)
    }
}

impl Mul<Vec2> for Mat2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, v: Vec2) -> Vec2 {
        self.cols[0] * v.x + self.cols[1] * v.y
    }
}

impl Mul for Mat2 {
    type Output = Mat2;
    #[inline]
    fn mul(self, rhs: Mat2) -> Mat2 {
        Mat2::from_cols(self * rhs.cols[0], self * rhs.cols[1])
    }
}

impl Add for Mat2 {
    type Output = Mat2;
    #[inline]
    fn add(self, rhs: Mat2) -> Mat2 {
        Mat2::from_cols(self.cols[0] + rhs.cols[0], self.cols[1] + rhs.cols[1])
    }
}

impl Sub for Mat2 {
    type Output = Mat2;
    #[inline]
    fn sub(self, rhs: Mat2) -> Mat2 {
        Mat2::from_cols(self.cols[0] - rhs.cols[0], self.cols[1] - rhs.cols[1])
    }
}

impl Mul<f32> for Mat2 {
    type Output = Mat2;
    #[inline]
    fn mul(self, s: f32) -> Mat2 {
        Mat2::from_cols(self.cols[0] * s, self.cols[1] * s)
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        self.cols[0] * v.x + self.cols[1] * v.y + self.cols[2] * v.z
    }
}

impl Mul for Mat3 {
    type Output = Mat3;
    #[inline]
    fn mul(self, rhs: Mat3) -> Mat3 {
        Mat3::from_cols(self * rhs.cols[0], self * rhs.cols[1], self * rhs.cols[2])
    }
}

impl Add for Mat3 {
    type Output = Mat3;
    #[inline]
    fn add(self, rhs: Mat3) -> Mat3 {
        Mat3::from_cols(
            self.cols[0] + rhs.cols[0],
            self.cols[1] + rhs.cols[1],
            self.cols[2] + rhs.cols[2],
        )
    }
}

impl Mul<f32> for Mat3 {
    type Output = Mat3;
    #[inline]
    fn mul(self, s: f32) -> Mat3 {
        Mat3::from_cols(self.cols[0] * s, self.cols[1] * s, self.cols[2] * s)
    }
}

impl Mul<Vec4> for Mat4 {
    type Output = Vec4;
    #[inline]
    fn mul(self, v: Vec4) -> Vec4 {
        self.cols[0] * v.x + self.cols[1] * v.y + self.cols[2] * v.z + self.cols[3] * v.w
    }
}

impl Mul for Mat4 {
    type Output = Mat4;
    #[inline]
    fn mul(self, rhs: Mat4) -> Mat4 {
        Mat4::from_cols(
            self * rhs.cols[0],
            self * rhs.cols[1],
            self * rhs.cols[2],
            self * rhs.cols[3],
        )
    }
}

macro_rules! impl_mat_fmt {
    ($name:ident, $n:expr) => {
        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                writeln!(f, concat!(stringify!($name), " ["))?;
                for r in 0..$n {
                    write!(f, "  [")?;
                    for c in 0..$n {
                        if c > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{:>12.6}", self.at(r, c))?;
                    }
                    writeln!(f, "]")?;
                }
                write!(f, "]")
            }
        }
        impl Default for $name {
            fn default() -> Self {
                Self::identity()
            }
        }
    };
}

impl_mat_fmt!(Mat2, 2);
impl_mat_fmt!(Mat3, 3);
impl_mat_fmt!(Mat4, 4);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn mat3_approx_eq(a: &Mat3, b: &Mat3, tol: f32) -> bool {
        (0..3).all(|r| (0..3).all(|c| approx_eq(a.at(r, c), b.at(r, c), tol)))
    }

    #[test]
    fn mat2_inverse_roundtrip() {
        let m = Mat2::from_rows(3.0, 1.0, 2.0, 4.0);
        let inv = m.inverse().expect("invertible");
        let id = m * inv;
        assert!(approx_eq(id.at(0, 0), 1.0, 1e-5));
        assert!(approx_eq(id.at(1, 1), 1.0, 1e-5));
        assert!(approx_eq(id.at(0, 1), 0.0, 1e-5));
        assert!(approx_eq(id.at(1, 0), 0.0, 1e-5));
    }

    #[test]
    fn mat2_singular_has_no_inverse() {
        let m = Mat2::from_rows(1.0, 2.0, 2.0, 4.0);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn mat2_symmetric_eigenvalues_diag() {
        let m = Mat2::from_rows(5.0, 0.0, 0.0, 2.0);
        let (l1, l2) = m.symmetric_eigenvalues();
        assert!(approx_eq(l1, 5.0, 1e-6));
        assert!(approx_eq(l2, 2.0, 1e-6));
    }

    #[test]
    fn mat2_eigenvalues_trace_det_invariants() {
        let m = Mat2::from_rows(4.0, 1.5, 1.5, 3.0);
        let (l1, l2) = m.symmetric_eigenvalues();
        assert!(approx_eq(l1 + l2, 7.0, 1e-5));
        assert!(approx_eq(l1 * l2, m.determinant(), 1e-4));
    }

    #[test]
    fn mat3_inverse_roundtrip() {
        let m = Mat3::from_rows(2.0, 0.5, 1.0, -1.0, 3.0, 0.0, 0.0, 1.0, 4.0);
        let inv = m.inverse().expect("invertible");
        assert!(mat3_approx_eq(&(m * inv), &Mat3::identity(), 1e-4));
    }

    #[test]
    fn mat3_determinant_of_identity() {
        assert!(approx_eq(Mat3::identity().determinant(), 1.0, 1e-6));
    }

    #[test]
    fn mat3_transpose_involution() {
        let m = Mat3::from_rows(1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0);
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn mat4_rigid_inverse() {
        let r = crate::Quat::from_axis_angle(Vec3::new(0.3, 0.4, 0.5).normalized(), 1.1).to_mat3();
        let t = Vec3::new(1.0, -2.0, 3.0);
        let m = Mat4::from_rotation_translation(r, t);
        let inv = m.rigid_inverse();
        let p = Vec3::new(0.7, 0.1, -0.9);
        let roundtrip = inv
            .transform_point(m.transform_point(p).truncate())
            .truncate();
        assert!((roundtrip - p).length() < 1e-5);
    }

    #[test]
    fn mat4_mul_identity() {
        let m = Mat4::from_rotation_translation(Mat3::identity(), Vec3::new(1.0, 2.0, 3.0));
        let v = Vec4::new(1.0, 1.0, 1.0, 1.0);
        assert_eq!((Mat4::identity() * m) * v, m * v);
    }

    #[test]
    fn mat3_upper_left_of_product() {
        let a = Mat3::from_diagonal(Vec3::new(2.0, 3.0, 4.0));
        let ul = a.upper_left_2x2();
        assert_eq!(ul.at(0, 0), 2.0);
        assert_eq!(ul.at(1, 1), 3.0);
    }
}
