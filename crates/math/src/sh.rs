//! Spherical-harmonics color evaluation.
//!
//! 3DGS stores view-dependent color as SH coefficients (up to degree 3,
//! 16 coefficients per channel). Stage 1 of the pipeline converts them to an
//! RGB color for the current view direction. The constants below are the
//! real SH basis constants used by the reference CUDA implementation.

use crate::vec::Vec3;

/// Number of SH coefficients for a given degree (`(deg+1)²`).
///
/// # Example
/// ```
/// assert_eq!(gaurast_math::sh::coeff_count(3), 16);
/// ```
#[inline]
pub const fn coeff_count(degree: u8) -> usize {
    let d = degree as usize;
    (d + 1) * (d + 1)
}

/// Maximum supported SH degree.
pub const MAX_DEGREE: u8 = 3;

const SH_C0: f32 = 0.282_094_79;
const SH_C1: f32 = 0.488_602_51;
const SH_C2: [f32; 5] = [
    1.092_548_4,
    -1.092_548_4,
    0.315_391_57,
    -1.092_548_4,
    0.546_274_2,
];
const SH_C3: [f32; 7] = [
    -0.590_043_6,
    2.890_611_4,
    -0.457_045_8,
    0.373_176_33,
    -0.457_045_8,
    1.445_305_7,
    -0.590_043_6,
];

/// Evaluates the SH color for a view direction.
///
/// `coeffs` holds one [`Vec3`] (RGB) per SH basis function, ordered exactly
/// like the 3DGS checkpoints (`DC, l1m-1, l1m0, l1m1, l2m-2, ...`). `dir`
/// must be a unit vector pointing from the camera to the Gaussian.
///
/// The returned value has the conventional `+0.5` offset applied and is
/// clamped to be non-negative, matching `computeColorFromSH` in the 3DGS
/// reference rasterizer.
///
/// # Panics
/// Panics when `degree > 3` or `coeffs` has fewer than
/// [`coeff_count`]`(degree)` entries.
///
/// # Example
/// ```
/// use gaurast_math::{sh, Vec3};
/// let coeffs = [Vec3::new(1.0, 0.5, 0.25)];
/// let rgb = sh::eval(0, &coeffs, Vec3::new(0.0, 0.0, 1.0));
/// assert!(rgb.x > rgb.y && rgb.y > rgb.z);
/// ```
pub fn eval(degree: u8, coeffs: &[Vec3], dir: Vec3) -> Vec3 {
    assert!(degree <= MAX_DEGREE, "SH degree {degree} > {MAX_DEGREE}");
    let needed = coeff_count(degree);
    assert!(
        coeffs.len() >= needed,
        "need {needed} SH coefficients for degree {degree}, got {}",
        coeffs.len()
    );

    let mut result = coeffs[0] * SH_C0;

    if degree >= 1 {
        let (x, y, z) = (dir.x, dir.y, dir.z);
        result =
            result - coeffs[1] * (SH_C1 * y) + coeffs[2] * (SH_C1 * z) - coeffs[3] * (SH_C1 * x);

        if degree >= 2 {
            let (xx, yy, zz) = (x * x, y * y, z * z);
            let (xy, yz, xz) = (x * y, y * z, x * z);
            result = result
                + coeffs[4] * (SH_C2[0] * xy)
                + coeffs[5] * (SH_C2[1] * yz)
                + coeffs[6] * (SH_C2[2] * (2.0 * zz - xx - yy))
                + coeffs[7] * (SH_C2[3] * xz)
                + coeffs[8] * (SH_C2[4] * (xx - yy));

            if degree >= 3 {
                result = result
                    + coeffs[9] * (SH_C3[0] * y * (3.0 * xx - yy))
                    + coeffs[10] * (SH_C3[1] * xy * z)
                    + coeffs[11] * (SH_C3[2] * y * (4.0 * zz - xx - yy))
                    + coeffs[12] * (SH_C3[3] * z * (2.0 * zz - 3.0 * xx - 3.0 * yy))
                    + coeffs[13] * (SH_C3[4] * x * (4.0 * zz - xx - yy))
                    + coeffs[14] * (SH_C3[5] * z * (xx - yy))
                    + coeffs[15] * (SH_C3[6] * x * (xx - 3.0 * yy));
            }
        }
    }

    (result + Vec3::splat(0.5)).max(Vec3::zero())
}

/// Converts a plain RGB color in `[0, 1]` into the degree-0 SH DC
/// coefficient that [`eval`] maps back to that color.
///
/// # Example
/// ```
/// use gaurast_math::{sh, Vec3};
/// let rgb = Vec3::new(0.8, 0.2, 0.4);
/// let dc = sh::dc_from_rgb(rgb);
/// let back = sh::eval(0, &[dc], Vec3::new(0.0, 0.0, 1.0));
/// assert!((back - rgb).length() < 1e-5);
/// ```
#[inline]
pub fn dc_from_rgb(rgb: Vec3) -> Vec3 {
    (rgb - Vec3::splat(0.5)) * (1.0 / SH_C0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coeff_counts() {
        assert_eq!(coeff_count(0), 1);
        assert_eq!(coeff_count(1), 4);
        assert_eq!(coeff_count(2), 9);
        assert_eq!(coeff_count(3), 16);
    }

    #[test]
    fn degree0_is_view_independent() {
        let coeffs = [Vec3::new(0.3, -0.1, 0.9)];
        let a = eval(0, &coeffs, Vec3::new(0.0, 0.0, 1.0));
        let b = eval(0, &coeffs, Vec3::new(1.0, 0.0, 0.0).normalized());
        assert_eq!(a, b);
    }

    #[test]
    fn dc_roundtrip() {
        for &c in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            let rgb = Vec3::splat(c);
            let back = eval(0, &[dc_from_rgb(rgb)], Vec3::new(0.0, 1.0, 0.0));
            assert!((back - rgb).length() < 1e-5, "c = {c}");
        }
    }

    #[test]
    fn higher_degrees_are_view_dependent() {
        let mut coeffs = vec![Vec3::zero(); 16];
        coeffs[0] = dc_from_rgb(Vec3::splat(0.5));
        coeffs[2] = Vec3::splat(0.5); // l=1, m=0 term, varies with z
        let front = eval(3, &coeffs, Vec3::new(0.0, 0.0, 1.0));
        let back = eval(3, &coeffs, Vec3::new(0.0, 0.0, -1.0));
        assert!((front - back).length() > 0.1);
    }

    #[test]
    fn output_is_clamped_non_negative() {
        let coeffs = [Vec3::splat(-100.0)];
        let c = eval(0, &coeffs, Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(c, Vec3::zero());
    }

    #[test]
    #[should_panic(expected = "SH degree")]
    fn degree_too_high_panics() {
        let _ = eval(4, &[Vec3::zero(); 25], Vec3::new(0.0, 0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "SH coefficients")]
    fn too_few_coeffs_panics() {
        let _ = eval(2, &[Vec3::zero(); 4], Vec3::new(0.0, 0.0, 1.0));
    }
}
