//! Fixed-size `f32` vectors.

use std::fmt;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

macro_rules! impl_vec_common {
    ($name:ident, $($field:ident),+) => {
        impl $name {
            /// Vector with every component set to `v`.
            #[inline]
            pub const fn splat(v: f32) -> Self {
                Self { $($field: v),+ }
            }

            /// Zero vector.
            #[inline]
            pub const fn zero() -> Self {
                Self::splat(0.0)
            }

            /// Vector of ones.
            #[inline]
            pub const fn one() -> Self {
                Self::splat(1.0)
            }

            /// Dot product.
            #[inline]
            pub fn dot(self, rhs: Self) -> f32 {
                0.0 $(+ self.$field * rhs.$field)+
            }

            /// Squared Euclidean length. Cheaper than [`Self::length`] when
            /// only comparisons are needed.
            #[inline]
            pub fn length_squared(self) -> f32 {
                self.dot(self)
            }

            /// Euclidean length.
            #[inline]
            pub fn length(self) -> f32 {
                self.length_squared().sqrt()
            }

            /// Unit vector in the same direction.
            ///
            /// # Panics
            /// Panics in debug builds when the length is zero or non-finite.
            #[inline]
            pub fn normalized(self) -> Self {
                let len = self.length();
                debug_assert!(len.is_finite() && len > 0.0, "normalizing degenerate vector");
                self / len
            }

            /// Unit vector, or `None` when the length is below `1e-12`.
            #[inline]
            pub fn try_normalized(self) -> Option<Self> {
                let len = self.length();
                if len.is_finite() && len > 1e-12 { Some(self / len) } else { None }
            }

            /// Component-wise minimum.
            #[inline]
            pub fn min(self, rhs: Self) -> Self {
                Self { $($field: self.$field.min(rhs.$field)),+ }
            }

            /// Component-wise maximum.
            #[inline]
            pub fn max(self, rhs: Self) -> Self {
                Self { $($field: self.$field.max(rhs.$field)),+ }
            }

            /// Component-wise product (Hadamard product).
            #[inline]
            pub fn hadamard(self, rhs: Self) -> Self {
                Self { $($field: self.$field * rhs.$field),+ }
            }

            /// Component-wise absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self { $($field: self.$field.abs()),+ }
            }

            /// Largest component.
            #[inline]
            pub fn max_component(self) -> f32 {
                f32::NEG_INFINITY $(.max(self.$field))+
            }

            /// Smallest component.
            #[inline]
            pub fn min_component(self) -> f32 {
                f32::INFINITY $(.min(self.$field))+
            }

            /// Linear interpolation: `self * (1 - t) + rhs * t`.
            #[inline]
            pub fn lerp(self, rhs: Self, t: f32) -> Self {
                self * (1.0 - t) + rhs * t
            }

            /// `true` when every component is finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                true $(&& self.$field.is_finite())+
            }

            /// Component-wise clamp to `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: f32, hi: f32) -> Self {
                Self { $($field: self.$field.clamp(lo, hi)),+ }
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self { $($field: self.$field + rhs.$field),+ }
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                *self = *self + rhs;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self { $($field: self.$field - rhs.$field),+ }
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                *self = *self - rhs;
            }
        }

        impl Mul<f32> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f32) -> Self {
                Self { $($field: self.$field * rhs),+ }
            }
        }

        impl Mul<$name> for f32 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                rhs * self
            }
        }

        impl MulAssign<f32> for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: f32) {
                *self = *self * rhs;
            }
        }

        impl Div<f32> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f32) -> Self {
                Self { $($field: self.$field / rhs),+ }
            }
        }

        impl DivAssign<f32> for $name {
            #[inline]
            fn div_assign(&mut self, rhs: f32) {
                *self = *self / rhs;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self { $($field: -self.$field),+ }
            }
        }

        impl Default for $name {
            #[inline]
            fn default() -> Self {
                Self::zero()
            }
        }
    };
}

/// 2-component `f32` vector (pixel coordinates, 2D Gaussian centers).
#[derive(Clone, Copy, PartialEq)]
pub struct Vec2 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
}

/// 3-component `f32` vector (world positions, RGB colors, scales).
#[derive(Clone, Copy, PartialEq)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

/// 4-component `f32` vector (homogeneous coordinates, RGBA).
#[derive(Clone, Copy, PartialEq)]
pub struct Vec4 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
    /// W component.
    pub w: f32,
}

impl_vec_common!(Vec2, x, y);
impl_vec_common!(Vec3, x, y, z);
impl_vec_common!(Vec4, x, y, z, w);

impl Vec2 {
    /// Constructs a vector from components.
    #[inline]
    pub const fn new(x: f32, y: f32) -> Self {
        Self { x, y }
    }

    /// 2D cross product (z-component of the 3D cross product). Positive when
    /// `rhs` is counter-clockwise from `self` — the edge-function primitive
    /// used by the triangle rasterizer.
    #[inline]
    pub fn perp_dot(self, rhs: Self) -> f32 {
        self.x * rhs.y - self.y * rhs.x
    }

    /// Extends to a [`Vec3`] with the given z.
    #[inline]
    pub const fn extend(self, z: f32) -> Vec3 {
        Vec3::new(self.x, self.y, z)
    }
}

impl Vec3 {
    /// Constructs a vector from components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Self { x, y, z }
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Self) -> Self {
        Self::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Drops the z component.
    #[inline]
    pub const fn truncate(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }

    /// Extends to a [`Vec4`] with the given w.
    #[inline]
    pub const fn extend(self, w: f32) -> Vec4 {
        Vec4::new(self.x, self.y, self.z, w)
    }
}

impl Vec4 {
    /// Constructs a vector from components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32, w: f32) -> Self {
        Self { x, y, z, w }
    }

    /// Drops the w component.
    #[inline]
    pub const fn truncate(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }

    /// Perspective division: `(x/w, y/w, z/w)`.
    ///
    /// # Panics
    /// Panics in debug builds when `w` is zero.
    #[inline]
    pub fn project(self) -> Vec3 {
        debug_assert!(self.w != 0.0, "perspective division by zero w");
        Vec3::new(self.x / self.w, self.y / self.w, self.z / self.w)
    }
}

macro_rules! impl_index {
    ($name:ident, $n:expr, $($idx:expr => $field:ident),+) => {
        impl Index<usize> for $name {
            type Output = f32;
            #[inline]
            fn index(&self, i: usize) -> &f32 {
                match i {
                    $($idx => &self.$field,)+
                    _ => panic!(concat!("index out of bounds for ", stringify!($name), ": {}"), i),
                }
            }
        }
        impl IndexMut<usize> for $name {
            #[inline]
            fn index_mut(&mut self, i: usize) -> &mut f32 {
                match i {
                    $($idx => &mut self.$field,)+
                    _ => panic!(concat!("index out of bounds for ", stringify!($name), ": {}"), i),
                }
            }
        }
        impl From<[f32; $n]> for $name {
            #[inline]
            fn from(a: [f32; $n]) -> Self {
                Self { $($field: a[$idx]),+ }
            }
        }
        impl From<$name> for [f32; $n] {
            #[inline]
            fn from(v: $name) -> [f32; $n] {
                [$(v.$field),+]
            }
        }
        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.debug_tuple(stringify!($name))$(.field(&self.$field))+.finish()
            }
        }
        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "(")?;
                let parts: [f32; $n] = (*self).into();
                for (k, p) in parts.iter().enumerate() {
                    if k > 0 { write!(f, ", ")?; }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
        }
    };
}

impl_index!(Vec2, 2, 0 => x, 1 => y);
impl_index!(Vec3, 3, 0 => x, 1 => y, 2 => z);
impl_index!(Vec4, 4, 0 => x, 1 => y, 2 => z, 3 => w);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn vec3_cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        let c = a.cross(b);
        assert!(approx_eq(c.dot(a), 0.0, 1e-5));
        assert!(approx_eq(c.dot(b), 0.0, 1e-5));
    }

    #[test]
    fn vec3_cross_right_handed() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(x.cross(y), Vec3::new(0.0, 0.0, 1.0));
    }

    #[test]
    fn normalize_unit_length() {
        let v = Vec3::new(3.0, -4.0, 12.0);
        assert!(approx_eq(v.normalized().length(), 1.0, 1e-6));
    }

    #[test]
    fn try_normalized_zero_is_none() {
        assert!(Vec3::zero().try_normalized().is_none());
        assert!(Vec2::zero().try_normalized().is_none());
    }

    #[test]
    fn perp_dot_sign() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert!(a.perp_dot(b) > 0.0);
        assert!(b.perp_dot(a) < 0.0);
    }

    #[test]
    fn project_divides_by_w() {
        let v = Vec4::new(2.0, 4.0, 6.0, 2.0);
        assert_eq!(v.project(), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn index_roundtrip() {
        let mut v = Vec4::new(1.0, 2.0, 3.0, 4.0);
        for i in 0..4 {
            v[i] += 1.0;
        }
        assert_eq!(v, Vec4::new(2.0, 3.0, 4.0, 5.0));
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn index_out_of_bounds_panics() {
        let v = Vec2::new(1.0, 2.0);
        let _ = v[2];
    }

    #[test]
    fn array_conversion_roundtrip() {
        let v = Vec3::new(0.5, -1.5, 2.5);
        let a: [f32; 3] = v.into();
        assert_eq!(Vec3::from(a), v);
    }

    #[test]
    fn min_max_components() {
        let v = Vec3::new(-1.0, 5.0, 2.0);
        assert_eq!(v.max_component(), 5.0);
        assert_eq!(v.min_component(), -1.0);
    }

    #[test]
    fn hadamard_product() {
        let a = Vec2::new(2.0, 3.0);
        let b = Vec2::new(4.0, 5.0);
        assert_eq!(a.hadamard(b), Vec2::new(8.0, 15.0));
    }
}
