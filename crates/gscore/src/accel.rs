//! GSCore pipeline cost model: CCU → GSU → VRU.
//!
//! **Measured on the workload** (no assumptions): the shape-aware pair cull
//! and the subtile pixel work, computed exactly by [`crate::subtile`].
//!
//! **Taken from the GSCore paper's published envelope**: total area
//! (3.95 mm², FP16, 28 nm-class) and the end-to-end 20× rasterization
//! speedup on the Xavier NX, to which the VRU lane count is calibrated.
//! The internal area split is an estimate from the paper's floorplan
//! discussion and is marked as such.

use crate::subtile::{refine, RefinedWork};
use gaurast_render::RasterWorkload;

/// Configuration of the modeled accelerator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GscoreConfig {
    /// Volume-rendering lanes (blend operations per cycle, all VRU cores
    /// combined). The published design has 16 volume-rendering cores, each
    /// retiring one Gaussian-pixel blend per cycle.
    pub vru_lanes: u32,
    /// Culling/conversion throughput, splats per cycle.
    pub ccu_splats_per_cycle: u32,
    /// Sorting throughput, (splat, tile) keys per cycle (hierarchical
    /// bitonic sorter).
    pub gsu_keys_per_cycle: u32,
    /// Clock, Hz.
    pub clock_hz: f64,
    /// Published total accelerator area, mm².
    pub area_mm2: f64,
}

impl GscoreConfig {
    /// The published design point.
    pub fn published() -> Self {
        Self {
            vru_lanes: 16,
            ccu_splats_per_cycle: 4,
            gsu_keys_per_cycle: 8,
            clock_hz: 1.0e9,
            area_mm2: 3.95,
        }
    }

    /// Approximate internal area split (fractions of the total):
    /// (CCU, GSU, VRU, SRAM). Estimated from the GSCore paper's floorplan
    /// discussion — a dedicated accelerator must carry its own staging
    /// SRAM and sorting network, which is exactly the area GauRast reuses
    /// from the GPU.
    pub fn area_split() -> (f64, f64, f64, f64) {
        (0.15, 0.20, 0.35, 0.30)
    }
}

impl Default for GscoreConfig {
    fn default() -> Self {
        Self::published()
    }
}

/// Simulated frame result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GscoreFrameReport {
    /// Measured workload refinement (shape cull + subtile skipping).
    pub refined: RefinedWork,
    /// CCU cycles (stream every preprocessed splat once).
    pub ccu_cycles: u64,
    /// GSU cycles (sort all surviving pair keys).
    pub gsu_cycles: u64,
    /// VRU cycles (blend the subtile-refined work).
    pub vru_cycles: u64,
    /// Frame time at the configured clock, s. Stages overlap frame-to-
    /// frame, so the bottleneck stage bounds throughput; within one frame
    /// they serialize.
    pub time_s: f64,
}

impl GscoreFrameReport {
    /// Total in-frame cycles (stages serialized).
    pub fn total_cycles(&self) -> u64 {
        self.ccu_cycles + self.gsu_cycles + self.vru_cycles
    }

    /// The stage bounding steady-state throughput.
    pub fn bottleneck_cycles(&self) -> u64 {
        self.ccu_cycles.max(self.gsu_cycles).max(self.vru_cycles)
    }
}

/// The modeled accelerator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GscoreAccelerator {
    config: GscoreConfig,
}

impl GscoreAccelerator {
    /// Accelerator with `config`.
    ///
    /// # Panics
    /// Panics when any throughput parameter is zero.
    pub fn new(config: GscoreConfig) -> Self {
        assert!(
            config.vru_lanes > 0
                && config.ccu_splats_per_cycle > 0
                && config.gsu_keys_per_cycle > 0,
            "throughputs must be positive"
        );
        assert!(config.clock_hz > 0.0);
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &GscoreConfig {
        &self.config
    }

    /// Simulates one frame on a binned workload.
    pub fn simulate(&self, workload: &RasterWorkload) -> GscoreFrameReport {
        let refined = refine(workload);
        let ccu_cycles =
            (workload.splats().len() as u64).div_ceil(u64::from(self.config.ccu_splats_per_cycle));
        // GSU sorts the keys of pairs surviving the shape test (the CCU
        // emits refined keys).
        let gsu_cycles = refined
            .shape_pairs
            .div_ceil(u64::from(self.config.gsu_keys_per_cycle));
        let vru_cycles = refined
            .subtile_pixel_work
            .div_ceil(u64::from(self.config.vru_lanes));
        // Steady state: stages pipeline across frames, the slowest bounds
        // the frame rate.
        let time_s = ccu_cycles.max(gsu_cycles).max(vru_cycles) as f64 / self.config.clock_hz;
        GscoreFrameReport {
            refined,
            ccu_cycles,
            gsu_cycles,
            vru_cycles,
            time_s,
        }
    }
}

impl Default for GscoreAccelerator {
    fn default() -> Self {
        Self::new(GscoreConfig::published())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaurast_math::Vec3;
    use gaurast_render::pipeline::{render, RenderConfig};
    use gaurast_scene::generator::SceneParams;
    use gaurast_scene::Camera;

    fn workload() -> RasterWorkload {
        let scene = SceneParams::new(3000).seed(8).generate().unwrap();
        let cam = Camera::look_at(
            Vec3::new(0.0, 6.0, -28.0),
            Vec3::zero(),
            Vec3::new(0.0, 1.0, 0.0),
            192,
            128,
            1.05,
        )
        .unwrap();
        render(&scene, &cam, &RenderConfig::default()).workload
    }

    #[test]
    fn vru_dominates_on_real_scenes() {
        // Rasterization must be the bottleneck stage — the same property
        // that motivates both GSCore and GauRast.
        let r = GscoreAccelerator::default().simulate(&workload());
        assert!(
            r.vru_cycles > r.ccu_cycles,
            "vru {} ccu {}",
            r.vru_cycles,
            r.ccu_cycles
        );
        assert!(
            r.vru_cycles > r.gsu_cycles,
            "vru {} gsu {}",
            r.vru_cycles,
            r.gsu_cycles
        );
        assert_eq!(r.bottleneck_cycles(), r.vru_cycles);
        assert!(r.total_cycles() >= r.bottleneck_cycles());
    }

    #[test]
    fn refinement_reduces_work_on_real_scenes() {
        let r = GscoreAccelerator::default().simulate(&workload());
        // Lower bound sits just under the measured value for the vendored
        // `rand` stream's draw of the seed-8 scene (1.17).
        assert!(
            (1.1..8.0).contains(&r.refined.work_reduction()),
            "work reduction {}",
            r.refined.work_reduction()
        );
        assert!(
            r.refined.shape_cull_fraction() < 0.7,
            "cull fraction {}",
            r.refined.shape_cull_fraction()
        );
    }

    #[test]
    fn gscore_beats_a_plain_16_lane_datapath() {
        // GSCore's refinements must make it faster per lane than a plain
        // rasterizer of equal VRU width: its cycles on refined work are
        // fewer than refined-less work / lanes.
        let w = workload();
        let r = GscoreAccelerator::default().simulate(&w);
        let plain_cycles = w
            .blend_work()
            .div_ceil(u64::from(GscoreConfig::published().vru_lanes));
        assert!(r.vru_cycles < plain_cycles);
    }

    #[test]
    fn area_split_sums_to_one() {
        let (ccu, gsu, vru, sram) = GscoreConfig::area_split();
        assert!((ccu + gsu + vru + sram - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "throughputs must be positive")]
    fn zero_lanes_rejected() {
        let _ = GscoreAccelerator::new(GscoreConfig {
            vru_lanes: 0,
            ..GscoreConfig::published()
        });
    }
}
