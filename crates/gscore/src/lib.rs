//! Simplified simulator of **GSCore** (Lee et al., ASPLOS 2024) — the
//! dedicated 3DGS accelerator the GauRast paper compares against in §V-C.
//!
//! The paper treats GSCore as a published envelope (3.95 mm², FP16, 20×
//! rasterization speedup on a Jetson Xavier NX). To make the comparison a
//! real architecture-vs-architecture experiment rather than a constant
//! lookup, this crate implements the two mechanisms that define GSCore's
//! rasterization datapath and lets them run on the *same*
//! [`RasterWorkload`](gaurast_render::RasterWorkload) every other model
//! consumes:
//!
//! * **shape-aware intersection** ([`shape`]): an exact ellipse-vs-
//!   rectangle test replaces the reference's conservative 3σ bounding
//!   square, culling splat/tile pairs that never contribute;
//! * **subtile skipping** ([`subtile`]): each 16×16 tile splits into 4×4
//!   subtiles and a splat is only evaluated on subtiles its ellipse
//!   touches, shrinking the pair-pixel work several-fold;
//! * a three-stage pipeline cost model ([`accel`]): culling/conversion
//!   unit (CCU), sorting unit (GSU) and volume-rendering unit (VRU),
//!   with the VRU width calibrated to the published envelope.
//!
//! What is measured vs. assumed is documented per item in [`accel`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod accel;
pub mod shape;
pub mod subtile;

pub use accel::{GscoreAccelerator, GscoreConfig, GscoreFrameReport};
