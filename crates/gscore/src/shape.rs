//! Shape-aware splat/rectangle intersection.
//!
//! A splat contributes to a pixel only where
//! `α = o · exp(-½ dᵀ Q d) ≥ 1/255`, i.e. inside the ellipse
//! `q(d) = a·dx² + 2b·dx·dy + c·dy² ≤ 2·ln(255·o)` around its mean
//! (`Q = [[a, b], [b, c]]` is the conic). The reference rasterizer bins by
//! the circumscribed 3σ *square*, so many binned (splat, tile) pairs never
//! pass the alpha test. GSCore's shape-aware test evaluates the ellipse
//! against the tile rectangle exactly; this module implements that test as
//! a box-constrained minimization of the quadratic form (closed form per
//! edge), which is exact for positive-definite conics.

use gaurast_render::Splat2D;

/// Squared "radius" of the α ≥ 1/255 ellipse in quadratic-form units:
/// `2·ln(255·o)`. Non-positive when even the peak is below the cutoff.
pub fn alpha_bound(opacity: f32) -> f32 {
    2.0 * (255.0 * opacity).ln()
}

/// Minimum of `q(d) = a·dx² + 2b·dx·dy + c·dy²` over the rectangle
/// `[x0, x1] × [y0, y1]` (coordinates relative to the splat mean).
///
/// Exact for positive-semidefinite `q`: the unconstrained minimum is at the
/// origin, so if the origin lies in the box the minimum is 0; otherwise the
/// minimum lies on one of the four edges, where `q` restricted to the edge
/// is a 1-D quadratic minimized in closed form and clamped.
pub fn min_quadratic_on_rect(a: f32, b: f32, c: f32, x0: f32, x1: f32, y0: f32, y1: f32) -> f32 {
    debug_assert!(x0 <= x1 && y0 <= y1, "inverted rectangle");
    if x0 <= 0.0 && 0.0 <= x1 && y0 <= 0.0 && 0.0 <= y1 {
        return 0.0;
    }
    let q = |x: f32, y: f32| a * x * x + 2.0 * b * x * y + c * y * y;

    let mut best = f32::INFINITY;
    // Horizontal edges: y fixed, minimize over x: dq/dx = 2ax + 2by = 0.
    for y in [y0, y1] {
        let x_star = if a > 0.0 {
            (-b * y / a).clamp(x0, x1)
        } else {
            x0
        };
        best = best.min(q(x_star, y)).min(q(x0, y)).min(q(x1, y));
    }
    // Vertical edges: x fixed, minimize over y: dq/dy = 2cy + 2bx = 0.
    for x in [x0, x1] {
        let y_star = if c > 0.0 {
            (-b * x / c).clamp(y0, y1)
        } else {
            y0
        };
        best = best.min(q(x, y_star)).min(q(x, y0)).min(q(x, y1));
    }
    best
}

/// `true` when the splat's α ≥ 1/255 ellipse intersects the pixel
/// rectangle `[x0, x1) × [y0, y1)` (absolute pixel coordinates; the test
/// uses pixel centers, matching the rasterizer's sampling).
pub fn splat_touches_rect(s: &Splat2D, x0: u32, y0: u32, x1: u32, y1: u32) -> bool {
    let bound = alpha_bound(s.opacity);
    if bound <= 0.0 {
        return false; // even the peak is below the cutoff
    }
    // Pixel-center extents of the rectangle, relative to the mean.
    let rx0 = x0 as f32 + 0.5 - s.mean.x;
    let rx1 = (x1 - 1) as f32 + 0.5 - s.mean.x;
    let ry0 = y0 as f32 + 0.5 - s.mean.y;
    let ry1 = (y1 - 1) as f32 + 0.5 - s.mean.y;
    if rx0 > rx1 || ry0 > ry1 {
        return false; // degenerate rect
    }
    min_quadratic_on_rect(s.conic[0], s.conic[1], s.conic[2], rx0, rx1, ry0, ry1) <= bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaurast_math::{Vec2, Vec3};

    fn splat(mean: Vec2, conic: [f32; 3], opacity: f32) -> Splat2D {
        Splat2D {
            mean,
            conic,
            depth: 1.0,
            color: Vec3::one(),
            opacity,
            radius: 100.0,
            source: 0,
        }
    }

    #[test]
    fn origin_inside_box_gives_zero() {
        assert_eq!(
            min_quadratic_on_rect(1.0, 0.0, 1.0, -1.0, 1.0, -1.0, 1.0),
            0.0
        );
    }

    #[test]
    fn isotropic_min_is_distance_squared() {
        // q = x² + y², box at [3,5]×[0,2] (touches y=0): min at (3, 0) = 9.
        let m = min_quadratic_on_rect(1.0, 0.0, 1.0, 3.0, 5.0, 0.0, 2.0);
        assert!((m - 9.0).abs() < 1e-5, "got {m}");
    }

    #[test]
    fn cross_term_shifts_the_minimizer() {
        // q = x² - 2·0.9·x·y + y² along edge y=2: min at x = 0.9·2 = 1.8.
        let m = min_quadratic_on_rect(1.0, -0.9, 1.0, 0.5, 3.0, 2.0, 4.0);
        let q_at = |x: f32, y: f32| x * x - 1.8 * x * y + y * y;
        assert!((m - q_at(1.8, 2.0)).abs() < 1e-4, "got {m}");
    }

    #[test]
    fn min_matches_dense_sampling() {
        // Brute-force verification over a grid for several conics/boxes.
        let cases = [
            (0.3f32, 0.1f32, 0.5f32, 1.0f32, 4.0f32, -2.0f32, 1.5f32),
            (1.0, -0.4, 0.8, -5.0, -2.0, 3.0, 6.0),
            (0.05, 0.02, 0.07, 2.0, 9.0, 2.0, 9.0),
            (2.0, 0.0, 0.1, -3.0, 0.5, 0.25, 4.0),
        ];
        for (a, b, c, x0, x1, y0, y1) in cases {
            let exact = min_quadratic_on_rect(a, b, c, x0, x1, y0, y1);
            let mut sampled = f32::INFINITY;
            let n = 200;
            for i in 0..=n {
                for j in 0..=n {
                    let x = x0 + (x1 - x0) * i as f32 / n as f32;
                    let y = y0 + (y1 - y0) * j as f32 / n as f32;
                    sampled = sampled.min(a * x * x + 2.0 * b * x * y + c * y * y);
                }
            }
            assert!(
                exact <= sampled + 1e-4 && sampled <= exact + 0.05 * exact.abs() + 0.05,
                "a={a} b={b}: exact {exact} vs sampled {sampled}"
            );
        }
    }

    #[test]
    fn tiny_opacity_never_touches() {
        // o < 1/255: the alpha test can never pass anywhere.
        let s = splat(Vec2::new(8.0, 8.0), [0.1, 0.0, 0.1], 0.003);
        assert!(!splat_touches_rect(&s, 0, 0, 16, 16));
    }

    #[test]
    fn centered_splat_touches_its_tile() {
        let s = splat(Vec2::new(8.0, 8.0), [0.1, 0.0, 0.1], 0.9);
        assert!(splat_touches_rect(&s, 0, 0, 16, 16));
    }

    #[test]
    fn narrow_ellipse_misses_diagonal_tile() {
        // A very elongated splat along x at y=8: tiles far in y miss even
        // though the 3σ *square* would include them.
        let s = splat(Vec2::new(8.0, 8.0), [0.001, 0.0, 5.0], 0.9);
        assert!(
            splat_touches_rect(&s, 32, 0, 48, 16),
            "along the major axis"
        );
        assert!(!splat_touches_rect(&s, 0, 32, 16, 48), "off the minor axis");
    }

    #[test]
    fn touch_test_consistent_with_density() {
        // If a rect's best pixel passes the alpha test, the rect must be
        // reported as touched (no false negatives on pixel centers).
        let s = splat(Vec2::new(7.3, 9.1), [0.08, 0.02, 0.12], 0.6);
        for ty in 0..3u32 {
            for tx in 0..3u32 {
                let (x0, y0) = (tx * 16, ty * 16);
                let mut any_pass = false;
                for py in y0..y0 + 16 {
                    for px in x0..x0 + 16 {
                        let p = Vec2::new(px as f32 + 0.5, py as f32 + 0.5);
                        let alpha = s.opacity * s.density_at(p);
                        if alpha >= 1.0 / 255.0 {
                            any_pass = true;
                        }
                    }
                }
                let touched = splat_touches_rect(&s, x0, y0, x0 + 16, y0 + 16);
                if any_pass {
                    assert!(touched, "false negative at tile ({tx},{ty})");
                }
            }
        }
    }
}
