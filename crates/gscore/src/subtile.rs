//! Subtile skipping: GSCore evaluates a splat only on the 4×4-pixel
//! subtiles of a tile that its ellipse actually touches.

use crate::shape::splat_touches_rect;
use gaurast_render::{RasterWorkload, Splat2D};

/// Subtile edge in pixels (GSCore's granularity).
pub const SUBTILE: u32 = 4;

/// Number of subtiles of a tile rectangle a splat touches, and the pixel
/// count those subtiles cover (edge subtiles may be partial).
pub fn covered_subtiles(
    s: &Splat2D,
    tile_x0: u32,
    tile_y0: u32,
    tile_x1: u32,
    tile_y1: u32,
) -> (u32, u64) {
    let mut subtiles = 0u32;
    let mut pixels = 0u64;
    let mut y = tile_y0;
    while y < tile_y1 {
        let y_end = (y + SUBTILE).min(tile_y1);
        let mut x = tile_x0;
        while x < tile_x1 {
            let x_end = (x + SUBTILE).min(tile_x1);
            if splat_touches_rect(s, x, y, x_end, y_end) {
                subtiles += 1;
                pixels += u64::from(x_end - x) * u64::from(y_end - y);
            }
            x = x_end;
        }
        y = y_end;
    }
    (subtiles, pixels)
}

/// Workload statistics after GSCore's two refinements, measured exactly on
/// a binned workload.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RefinedWork {
    /// (splat, tile) pairs admitted by the reference AABB binning
    /// (saturation-truncated lists, i.e. the pairs anyone processes).
    pub aabb_pairs: u64,
    /// Pairs surviving the exact shape-aware tile test.
    pub shape_pairs: u64,
    /// Splat-pixel work of the reference (full tiles for every processed
    /// splat).
    pub full_pixel_work: u64,
    /// Splat-pixel work after subtile skipping.
    pub subtile_pixel_work: u64,
}

impl RefinedWork {
    /// Fraction of AABB pairs the shape test culls.
    pub fn shape_cull_fraction(&self) -> f64 {
        if self.aabb_pairs == 0 {
            return 0.0;
        }
        1.0 - self.shape_pairs as f64 / self.aabb_pairs as f64
    }

    /// Work-reduction factor of subtile skipping (≥ 1).
    pub fn work_reduction(&self) -> f64 {
        if self.subtile_pixel_work == 0 {
            return 1.0;
        }
        self.full_pixel_work as f64 / self.subtile_pixel_work as f64
    }
}

/// Measures the refined work of a workload (processed-list prefix per tile,
/// exactly the work the other models bill).
pub fn refine(workload: &RasterWorkload) -> RefinedWork {
    let mut out = RefinedWork::default();
    let splats = workload.splats();
    // One pass over the CSR tile ranges — the same traversal the other
    // architecture models share.
    for tile in workload.tiles() {
        let (x0, y0, x1, y1) = tile.rect;
        let tile_pixels = tile.pixels();
        for &si in &tile.list[..tile.processed as usize] {
            let s = &splats[si as usize];
            out.aabb_pairs += 1;
            out.full_pixel_work += tile_pixels;
            let (subtiles, pixels) = covered_subtiles(s, x0, y0, x1, y1);
            if subtiles > 0 {
                out.shape_pairs += 1;
                out.subtile_pixel_work += pixels;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaurast_math::{Vec2, Vec3};
    use gaurast_render::rasterize::rasterize;
    use gaurast_render::tile::bin_splats;

    fn small_splat(x: f32, y: f32) -> Splat2D {
        Splat2D {
            mean: Vec2::new(x, y),
            conic: [2.0, 0.0, 2.0], // ~2 px ellipse
            depth: 1.0,
            color: Vec3::one(),
            opacity: 0.9,
            radius: 8.0, // deliberately loose AABB (the reference's 3σ ceil)
            source: 0,
        }
    }

    #[test]
    fn tight_splat_covers_few_subtiles() {
        let s = small_splat(8.0, 8.0);
        let (subtiles, pixels) = covered_subtiles(&s, 0, 0, 16, 16);
        assert!((1..=4).contains(&subtiles), "subtiles {subtiles}");
        assert!(pixels < 256, "pixels {pixels}");
    }

    #[test]
    fn huge_splat_covers_all_subtiles() {
        let s = Splat2D {
            conic: [1e-4, 0.0, 1e-4],
            ..small_splat(8.0, 8.0)
        };
        let (subtiles, pixels) = covered_subtiles(&s, 0, 0, 16, 16);
        assert_eq!(subtiles, 16);
        assert_eq!(pixels, 256);
    }

    #[test]
    fn refine_reduces_work_on_small_splat_workloads() {
        let splats: Vec<Splat2D> = (0..60)
            .map(|i| small_splat((i * 7 % 64) as f32, (i * 11 % 64) as f32))
            .collect();
        let mut w = bin_splats(splats, 64, 64, 16);
        let _ = rasterize(&mut w);
        let r = refine(&w);
        assert!(r.aabb_pairs > 0);
        assert!(r.work_reduction() > 2.0, "reduction {}", r.work_reduction());
        assert!(r.shape_pairs <= r.aabb_pairs);
        assert!(r.subtile_pixel_work <= r.full_pixel_work);
    }

    #[test]
    fn shape_test_culls_loose_aabb_pairs() {
        // Elongated splats: AABB (square) binning admits tiles the ellipse
        // misses entirely.
        let splats: Vec<Splat2D> = (0..20)
            .map(|i| Splat2D {
                conic: [5.0, 0.0, 0.002],
                radius: 40.0,
                ..small_splat(32.0, (i * 13 % 64) as f32)
            })
            .collect();
        let mut w = bin_splats(splats, 64, 64, 16);
        let _ = rasterize(&mut w);
        let r = refine(&w);
        assert!(
            r.shape_cull_fraction() > 0.1,
            "cull {}",
            r.shape_cull_fraction()
        );
    }

    #[test]
    fn subtile_coverage_is_superset_of_committed_blends() {
        // Every pixel the reference actually blends must lie in a covered
        // subtile (no false culls).
        let splats: Vec<Splat2D> = (0..40)
            .map(|i| small_splat((i * 17 % 48) as f32, (i * 23 % 48) as f32))
            .collect();
        let mut w = bin_splats(splats.clone(), 48, 48, 16);
        let (img, _) = rasterize(&mut w);
        let r = refine(&w);
        // If anything rendered, the refined work cannot be zero.
        if img.coverage() > 0.0 {
            assert!(r.subtile_pixel_work > 0);
        }
    }

    #[test]
    fn empty_workload_is_empty_refinement() {
        let w = bin_splats(vec![], 32, 32, 16);
        let r = refine(&w);
        assert_eq!(r, RefinedWork::default());
        assert_eq!(r.work_reduction(), 1.0);
        assert_eq!(r.shape_cull_fraction(), 0.0);
    }
}
