//! Property tests for the exact ellipse/rectangle intersection.

use gaurast_gscore::shape::{alpha_bound, min_quadratic_on_rect, splat_touches_rect};
use gaurast_math::{Vec2, Vec3};
use gaurast_render::Splat2D;
use proptest::prelude::*;

fn pd_conic() -> impl Strategy<Value = (f32, f32, f32)> {
    // Positive-definite conics: a, c > 0 and b² < ac.
    (0.01f32..3.0, 0.01f32..3.0, -0.99f32..0.99)
        .prop_map(|(a, c, t)| (a, c, t * (a * c).sqrt() * 0.95))
        .prop_map(|(a, c, b)| (a, b, c))
}

fn rect() -> impl Strategy<Value = (f32, f32, f32, f32)> {
    (-30.0f32..30.0, 0.5f32..25.0, -30.0f32..30.0, 0.5f32..25.0)
        .prop_map(|(x0, w, y0, h)| (x0, x0 + w, y0, y0 + h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn min_is_lower_bound_of_samples((a, b, c) in pd_conic(), (x0, x1, y0, y1) in rect()) {
        let exact = min_quadratic_on_rect(a, b, c, x0, x1, y0, y1);
        let q = |x: f32, y: f32| a * x * x + 2.0 * b * x * y + c * y * y;
        for i in 0..=24 {
            for j in 0..=24 {
                let x = x0 + (x1 - x0) * i as f32 / 24.0;
                let y = y0 + (y1 - y0) * j as f32 / 24.0;
                let v = q(x, y);
                prop_assert!(exact <= v + 1e-3 * v.abs().max(1.0), "q({x},{y}) = {v} < min {exact}");
            }
        }
    }

    #[test]
    fn min_is_attained_on_grid_within_tolerance((a, b, c) in pd_conic(), (x0, x1, y0, y1) in rect()) {
        // A fine grid must come close to the reported minimum (soundness of
        // the closed form, not just the bound direction).
        let exact = min_quadratic_on_rect(a, b, c, x0, x1, y0, y1);
        let q = |x: f32, y: f32| a * x * x + 2.0 * b * x * y + c * y * y;
        let mut best = f32::INFINITY;
        for i in 0..=64 {
            for j in 0..=64 {
                let x = x0 + (x1 - x0) * i as f32 / 64.0;
                let y = y0 + (y1 - y0) * j as f32 / 64.0;
                best = best.min(q(x, y));
            }
        }
        prop_assert!(best <= exact + 0.15 * exact.abs() + 0.15, "grid {best} vs exact {exact}");
    }

    #[test]
    fn no_false_negatives_on_pixel_centers(
        (a, b, c) in pd_conic(),
        mx in 0.0f32..48.0,
        my in 0.0f32..48.0,
        opacity in 0.02f32..1.0,
    ) {
        let s = Splat2D {
            mean: Vec2::new(mx, my),
            conic: [a, b, c],
            depth: 1.0,
            color: Vec3::one(),
            opacity,
            radius: 1000.0,
            source: 0,
        };
        // For every 16x16 tile of a 48x48 region: if any pixel center
        // passes the alpha test, the shape test must report a touch.
        for ty in 0..3u32 {
            for tx in 0..3u32 {
                let (x0, y0) = (tx * 16, ty * 16);
                let mut any = false;
                for py in y0..y0 + 16 {
                    for px in x0..x0 + 16 {
                        let alpha = s.opacity * s.density_at(Vec2::new(px as f32 + 0.5, py as f32 + 0.5));
                        any |= alpha >= 1.0 / 255.0;
                    }
                }
                if any {
                    prop_assert!(
                        splat_touches_rect(&s, x0, y0, x0 + 16, y0 + 16),
                        "false negative at tile ({tx},{ty})"
                    );
                }
            }
        }
    }

    #[test]
    fn alpha_bound_monotone_in_opacity(o1 in 0.01f32..1.0, o2 in 0.01f32..1.0) {
        if o1 < o2 {
            prop_assert!(alpha_bound(o1) <= alpha_bound(o2));
        }
    }
}
