//! Good/bad fixture trees for the deep (call-graph) layer, one pair per
//! transitive rule, plus a deliberately-misresolved call proving the
//! resolver reports what it cannot map instead of dropping it.
//!
//! Each fixture is a miniature workspace tree under
//! `tests/fixtures/deep/<case>/crates/…/src/` (the real tree walk
//! excludes `tests/fixtures/`), analyzed through the same
//! [`gaurast_check::deep::analyze`] entry point the CLI uses. The bad
//! fixtures hide their effect *behind calls* — that is the whole point
//! of the deep layer over the line lint — and the assertions check the
//! full multi-hop witness path, not just the violation count.

use gaurast_check::deep::{analyze, DeepReport, RuleOutcome};
use std::path::PathBuf;

fn fixture_root(case: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/deep")
        .join(case)
}

fn run(case: &str) -> DeepReport {
    let root = fixture_root(case);
    assert!(root.is_dir(), "missing fixture tree {}", root.display());
    analyze(&root).expect("fixture analysis")
}

fn rule<'a>(report: &'a DeepReport, name: &str) -> &'a RuleOutcome {
    report
        .rules
        .iter()
        .find(|r| r.rule == name)
        .unwrap_or_else(|| panic!("rule {name} missing from report"))
}

#[test]
fn transitive_alloc_two_calls_deep_fails_purity_with_the_full_witness() {
    let report = run("bad_purity");
    let purity = rule(&report, "hot-path-purity");
    assert_eq!(
        purity.roots,
        vec!["hot::bin_splats_pooled"],
        "the hot marker roots the rule"
    );
    assert_eq!(purity.violations.len(), 1, "{purity:?}");
    let v = &purity.violations[0];
    assert_eq!(
        v.witness,
        vec!["hot::bin_splats_pooled", "hot::helper", "hot::deeper"],
        "witness must walk the whole chain, root first"
    );
    assert_eq!(v.token, "Vec::with_capacity");
    assert_eq!(v.file, "crates/hot/src/lib.rs");
    assert_eq!(v.line, 14);
    assert!(
        v.render().contains("→ hot::deeper → Vec::with_capacity"),
        "rendered witness reads as a story: {}",
        v.render()
    );
}

#[test]
fn allow_alloc_is_honored_two_calls_deep() {
    let report = run("good_purity");
    let purity = rule(&report, "hot-path-purity");
    assert!(purity.violations.is_empty(), "{purity:?}");
    assert_eq!(
        purity.suppressed, 1,
        "the justified allocation stays visible as a suppression count"
    );
}

#[test]
fn taint_through_a_helper_reaches_the_entry_point() {
    let report = run("bad_taint");
    let taint = rule(&report, "determinism-taint");
    assert_eq!(taint.roots, vec!["pipe::render_frame"]);
    assert_eq!(taint.violations.len(), 1, "{taint:?}");
    let v = &taint.violations[0];
    assert_eq!(
        v.witness,
        vec![
            "pipe::render_frame",
            "pipe::frame_stamp",
            "pipe::clock_bits"
        ]
    );
    assert_eq!(v.token, "Instant::now");
    assert_eq!(v.file, "crates/pipe/src/lib.rs");
}

#[test]
fn allow_nondet_at_the_source_clears_the_taint() {
    let report = run("good_taint");
    let taint = rule(&report, "determinism-taint");
    assert!(taint.violations.is_empty(), "{taint:?}");
    assert_eq!(taint.suppressed, 1);
}

#[test]
fn panic_behind_a_method_call_fails_serving_with_the_witness() {
    let report = run("bad_panics");
    let panics = rule(&report, "serving-panic-freedom");
    assert_eq!(panics.roots, vec!["core::service::RenderService::submit"]);
    // Two violations in `pick`: the `.unwrap(` and — because the file
    // sits under the enforced `crates/core/src/service/` prefix — the
    // unguarded `xs[0]`.
    assert_eq!(panics.violations.len(), 2, "{panics:?}");
    for v in &panics.violations {
        assert_eq!(
            v.witness,
            vec![
                "core::service::RenderService::submit",
                "core::service::RenderService::pick"
            ],
            "the panic hides one method call deep"
        );
        assert_eq!(v.file, "crates/core/src/service/mod.rs");
    }
    let tokens: Vec<&str> = panics.violations.iter().map(|v| v.token.as_str()).collect();
    assert!(tokens.contains(&".unwrap("), "{tokens:?}");
    assert!(
        tokens.contains(&"[…]"),
        "indexing enforced in-service: {tokens:?}"
    );
}

#[test]
fn guarded_access_and_a_justified_expect_pass_serving() {
    let report = run("good_panics");
    let panics = rule(&report, "serving-panic-freedom");
    assert!(panics.violations.is_empty(), "{panics:?}");
    assert_eq!(panics.suppressed, 1, "the justified expect is counted");
}

#[test]
fn an_uncovered_unsafe_write_two_calls_deep_fails_coverage_with_the_witness() {
    let report = run("bad_races");
    let races = rule(&report, "unsafe-instrumentation-coverage");
    assert_eq!(
        races.roots,
        vec!["scat::scatter_root"],
        "the hot marker roots the rule"
    );
    assert_eq!(races.violations.len(), 1, "{races:?}");
    let v = &races.violations[0];
    assert_eq!(
        v.witness,
        vec!["scat::scatter_root", "scat::stage", "scat::scatter"],
        "witness must walk the whole chain, root first"
    );
    assert_eq!(v.token, "*… = …");
    assert_eq!(v.file, "crates/scat/src/lib.rs");
    assert_eq!(v.line, 15);
}

#[test]
fn region_covered_and_allow_annotated_writes_pass_coverage() {
    let report = run("good_races");
    let races = rule(&report, "unsafe-instrumentation-coverage");
    assert!(races.violations.is_empty(), "{races:?}");
    assert_eq!(
        races.suppressed, 1,
        "the justified uncovered write stays visible as a suppression"
    );
}

#[test]
fn a_call_the_resolver_cannot_map_is_reported_not_dropped() {
    let report = run("misresolved");
    assert_eq!(report.unresolved.len(), 1, "{:?}", report.unresolved);
    let u = &report.unresolved[0];
    assert_eq!(u.caller, "maze::entry");
    assert_eq!(u.name, "frobnicate_quux");
    assert_eq!(u.file, "crates/maze/src/lib.rs");
    assert!(u.line >= 1);
    // The unresolved call must also surface in both report renderings.
    assert!(report.human().contains("frobnicate_quux"), "human report");
    assert!(report.json().contains("frobnicate_quux"), "json report");
    assert_eq!(
        report.total_violations(),
        0,
        "unresolved is not a violation"
    );
}

#[test]
fn fixture_reports_carry_consistent_graph_statistics() {
    let report = run("bad_purity");
    assert_eq!(report.files, 1);
    assert_eq!(report.nodes, 3);
    assert!(report.edges >= 2, "root→helper→deeper must both resolve");
    let json = report.json();
    assert!(
        json.contains("\"schema\": \"gaurast-check/deep/v2\""),
        "{json}"
    );
    assert!(json.contains("\"total_violations\": 1"), "{json}");
}
