//! The workspace must pass its own checks — the same `lint` and `deep`
//! commands CI runs via `cargo run -p gaurast-check`, wired into plain
//! `cargo test` so a violation is caught before it ever reaches CI.

use std::path::Path;

fn workspace_root() -> &'static Path {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/check sits two levels under the workspace root");
    assert!(
        root.join("Cargo.toml").exists(),
        "workspace root not found at {}",
        root.display()
    );
    root
}

#[test]
fn the_workspace_tree_is_lint_clean() {
    let root = workspace_root();
    let findings = gaurast_check::lint::lint_tree(root).expect("tree walk");
    assert!(
        findings.is_empty(),
        "the repository violates its own invariants:\n{}",
        findings
            .iter()
            .map(std::string::ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The deep layer's self-check: every transitive rule must hold on the
/// repository itself — zero violations, with the escape hatches and the
/// unresolved-call count visible rather than failing.
#[test]
fn the_workspace_passes_deep_analysis_clean() {
    let report = gaurast_check::deep::analyze(workspace_root()).expect("deep analysis");
    assert!(
        report.total_violations() == 0,
        "the repository fails its own deep rules:\n{}",
        report.human()
    );
    // The graph must actually cover the pipeline — an empty graph would
    // also be "clean". These floors are far below the real counts.
    assert!(
        report.files > 50,
        "graph covers the workspace: {}",
        report.files
    );
    assert!(
        report.nodes > 400,
        "graph covers the workspace: {}",
        report.nodes
    );
    assert_eq!(report.rules.len(), 4);
    for rule in &report.rules {
        assert!(
            !rule.roots.is_empty(),
            "rule {} found no roots — the markers or entry points moved",
            rule.rule
        );
    }
}
