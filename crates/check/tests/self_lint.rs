//! The workspace must pass its own lint — the same check CI runs via
//! `cargo run -p gaurast-check -- lint`, wired into plain `cargo test` so
//! a violation is caught before it ever reaches CI.

use std::path::Path;

#[test]
fn the_workspace_tree_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/check sits two levels under the workspace root");
    assert!(
        root.join("Cargo.toml").exists(),
        "workspace root not found at {}",
        root.display()
    );
    let findings = gaurast_check::lint::lint_tree(root).expect("tree walk");
    assert!(
        findings.is_empty(),
        "the repository violates its own invariants:\n{}",
        findings
            .iter()
            .map(std::string::ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
