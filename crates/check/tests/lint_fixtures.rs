//! Good/bad fixture pairs for every lint rule, plus a fake-tree test of
//! the tree-level `forbid-unsafe` rule.
//!
//! The fixtures live under `tests/fixtures/` (excluded from the real
//! tree walk) and are linted through [`gaurast_check::lint::lint_source`]
//! with *simulated* repository paths, since most rules are path-scoped.

use gaurast_check::lint::{lint_source, lint_tree, Finding};

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

/// Every bad fixture must produce exactly its intended rule; every good
/// twin must be clean — at the same simulated path.
#[test]
fn each_rule_fails_its_bad_fixture_and_passes_its_good_twin() {
    let cases: &[(&str, &str, &str, &[&str])] = &[
        (
            "crates/render/src/pool.rs",
            include_str!("fixtures/bad/unsafe_no_safety.rs"),
            include_str!("fixtures/good/unsafe_with_safety.rs"),
            &["unsafe-comment"],
        ),
        (
            "crates/render/src/rasterize.rs",
            include_str!("fixtures/bad/float_partial_cmp.rs"),
            include_str!("fixtures/good/float_total_cmp.rs"),
            &["float-ord"],
        ),
        (
            "crates/render/src/tile.rs",
            include_str!("fixtures/bad/hot_alloc.rs"),
            include_str!("fixtures/good/hot_alloc_escaped.rs"),
            &["hot-alloc"],
        ),
        (
            "crates/scene/src/nerf360.rs",
            include_str!("fixtures/bad/nondet_clock.rs"),
            include_str!("fixtures/good/nondet_escaped.rs"),
            &["determinism"],
        ),
        (
            "crates/render/src/sort.rs",
            include_str!("fixtures/bad/hot_full_scan_assert.rs"),
            include_str!("fixtures/good/hot_debug_assert.rs"),
            &["hot-assert"],
        ),
    ];

    for (path, bad, good, expected) in cases {
        let bad_findings = lint_source(path, bad);
        assert_eq!(
            &rules_of(&bad_findings),
            expected,
            "bad fixture at {path} must trip exactly {expected:?}: {bad_findings:?}"
        );
        for f in &bad_findings {
            assert!(f.line >= 1, "findings carry 1-based lines: {f:?}");
            assert_eq!(&f.path, path);
        }
        let good_findings = lint_source(path, good);
        assert!(
            good_findings.is_empty(),
            "good fixture at {path} must be clean: {good_findings:?}"
        );
    }
}

/// The hot-path marker is itself enforced: stripping it from a required
/// steady-state function is a finding.
#[test]
fn deleting_a_required_hot_marker_is_a_finding() {
    let unmarked =
        include_str!("fixtures/bad/hot_alloc.rs").replace("// gaurast-check: hot-path", "");
    let findings = lint_source("crates/render/src/tile.rs", &unmarked);
    assert!(
        rules_of(&findings).contains(&"hot-marker"),
        "unmarked bin_splats_pooled must be flagged: {findings:?}"
    );
}

/// Tree-level `forbid-unsafe` rule, exercised on a small synthetic
/// workspace built under `CARGO_TARGET_TMPDIR`.
#[test]
fn forbid_unsafe_rule_on_a_fake_tree() {
    let root = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("fake-ws");
    let math_src = root.join("crates/math/src");
    std::fs::create_dir_all(&math_src).unwrap();

    // Certified crate missing the attribute and using unsafe: two findings.
    std::fs::write(
        math_src.join("lib.rs"),
        "pub fn f(p: *const u32) -> u32 { unsafe { *p } }\n",
    )
    .unwrap();
    let findings = lint_tree(&root).unwrap();
    let forbid: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == "forbid-unsafe")
        .collect();
    assert!(
        forbid
            .iter()
            .any(|f| f.message.contains("forbid(unsafe_code)")),
        "missing attribute must be reported: {findings:?}"
    );
    assert!(
        forbid
            .iter()
            .any(|f| f.message.contains("certified unsafe-free")),
        "unsafe usage must be reported: {findings:?}"
    );

    // Fixed crate: attribute present, no unsafe anywhere.
    std::fs::write(
        math_src.join("lib.rs"),
        "#![forbid(unsafe_code)]\npub fn f(x: u32) -> u32 { x + 1 }\n",
    )
    .unwrap();
    let findings = lint_tree(&root).unwrap();
    assert!(
        findings
            .iter()
            .all(|f| f.rule != "forbid-unsafe" || f.path != "crates/math/src/lib.rs"),
        "fixed crate must be clean: {findings:?}"
    );
}
