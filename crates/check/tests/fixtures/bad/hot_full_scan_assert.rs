// Fixture: O(n) assertion scan that would run in release hot loops.
pub fn merge(keys: &[u64]) -> u64 {
    assert!(keys.windows(2).all(|w| w[0] <= w[1]), "keys must be sorted");
    keys.iter().sum()
}
