// Fixture: heap allocation inside a marked hot-path function.
// gaurast-check: hot-path
pub fn bin_splats_pooled(xs: &[u32]) -> usize {
    let doubled: Vec<u32> = xs.iter().map(|x| x * 2).collect();
    doubled.len()
}
