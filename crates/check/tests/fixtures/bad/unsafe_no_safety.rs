// Fixture: `unsafe` block with no SAFETY comment anywhere near it.
pub fn read_first(ptr: *const u32) -> u32 {
    unsafe { *ptr }
}
