// Fixture: wall-clock read inside deterministic pipeline code.
pub fn frame_seed() -> u64 {
    let t = std::time::Instant::now();
    let _ = t;
    0
}
