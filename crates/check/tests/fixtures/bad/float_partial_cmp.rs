// Fixture: non-total float ordering inside the renderer.
pub fn sort_depths(depths: &mut [f32]) {
    depths.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
