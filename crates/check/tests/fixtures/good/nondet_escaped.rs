// Fixture: config-time env read with a justified escape hatch; the frame
// path itself stays deterministic.
pub fn workers_override() -> Option<usize> {
    // gaurast-check: allow(nondet): config knob, read once at startup
    std::env::var("WORKERS").ok()?.parse().ok()
}
