// Fixture: hot-path function that reuses scratch (no allocation), plus a
// justified escape hatch.
// gaurast-check: hot-path
pub fn bin_splats_pooled(xs: &[u32], scratch: &mut Vec<u32>) -> usize {
    scratch.clear();
    scratch.extend(xs.iter().map(|x| x * 2));
    let header = vec![0u8; 4]; // gaurast-check: allow(alloc): one-time setup
    scratch.len() + header.len()
}

pub fn cold_setup(xs: &[u32]) -> Vec<u32> {
    // Outside any hot-path marker: allocation is fine.
    xs.iter().map(|x| x + 1).collect()
}
