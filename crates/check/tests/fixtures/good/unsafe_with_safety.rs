// Fixture: every unsafe site carries an adjacent SAFETY comment.
pub fn read_first(ptr: *const u32) -> u32 {
    // SAFETY: caller guarantees `ptr` is valid for reads and aligned.
    unsafe { *ptr }
}

pub struct Cell(*mut u32);
// SAFETY: handed out only as disjoint per-index slots.
unsafe impl Sync for Cell {}
