// Fixture: full-scan checks demoted to debug_assert!, O(1) asserts kept.
pub fn merge(keys: &[u64], values: &[u32]) -> u64 {
    assert_eq!(keys.len(), values.len(), "one value per key");
    debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    keys.iter().sum()
}
