// Fixture: total float ordering — radix-compatible, NaN-safe.
pub fn sort_depths(depths: &mut [f32]) {
    depths.sort_by(f32::total_cmp);
}
