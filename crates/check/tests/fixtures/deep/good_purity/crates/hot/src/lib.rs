//! Good twin: the same two-deep chain, but the allocation carries an
//! `allow(alloc)` justification — honored at depth, counted as
//! suppressed.

// gaurast-check: hot-path
pub fn bin_splats_pooled(n: usize) -> usize {
    helper(n)
}

fn helper(n: usize) -> usize {
    deeper(n) + 1
}

fn deeper(n: usize) -> usize {
    // gaurast-check: allow(alloc): fixture — buffer handed back to the
    // caller's arena, grown once at startup.
    let v: Vec<usize> = Vec::with_capacity(n);
    v.capacity()
}
