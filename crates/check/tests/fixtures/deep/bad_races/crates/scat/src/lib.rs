//! Bad fixture: the hot root reaches an unsafe write two calls deep
//! that no `race_region!` covers — only the transitive coverage rule
//! sees it, and the witness must name the whole chain.

// gaurast-check: hot-path
pub fn scatter_root(dst: &mut [u32]) {
    stage(dst);
}

fn stage(dst: &mut [u32]) {
    scatter(dst.as_mut_ptr(), dst.len());
}

fn scatter(dst: *mut u32, n: usize) {
    unsafe { *dst = n as u32 };
}
