//! Bad fixture: a panic hiding behind a method call from a serving
//! root, plus an unguarded index inside the enforced service tree.

pub struct RenderService;

impl RenderService {
    pub fn submit(&self, xs: &[u32]) -> u32 {
        self.pick(xs)
    }

    fn pick(&self, xs: &[u32]) -> u32 {
        let first = xs.first().copied().unwrap();
        first + xs[0]
    }
}
