//! Good twin: the same chain, but one write sits inside a
//! `race_region!` that registers the range and the other carries an
//! `allow(race)` justification — covered and suppressed, respectively.

// gaurast-check: hot-path
pub fn scatter_root(dst: &mut [u32]) {
    stage(dst);
}

fn stage(dst: &mut [u32]) {
    scatter(dst.as_mut_ptr(), dst.len());
}

fn scatter(dst: *mut u32, n: usize) {
    race_region!("fixture scatter", {
        unsafe { *dst = n as u32 };
    });
    // gaurast-check: allow(race): fixture — the caller registers this
    // range with the shadow detector before handing the pointer down.
    unsafe { *dst = 0 };
}
