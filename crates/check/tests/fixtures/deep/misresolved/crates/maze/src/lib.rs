//! Fixture with a call the resolver cannot map anywhere: no such free
//! function exists in the tree, the std vocabulary, or any impl block.
//! The deep report must *count and list* it, not silently drop it.

pub fn entry(n: u32) -> u32 {
    frobnicate_quux(n)
}
