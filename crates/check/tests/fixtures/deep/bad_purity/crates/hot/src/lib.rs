//! Bad fixture: the hot root is itself clean — the allocation hides two
//! calls deep, which only the transitive rule can see.

// gaurast-check: hot-path
pub fn bin_splats_pooled(n: usize) -> usize {
    helper(n)
}

fn helper(n: usize) -> usize {
    deeper(n) + 1
}

fn deeper(n: usize) -> usize {
    let v: Vec<usize> = Vec::with_capacity(n);
    v.capacity()
}
