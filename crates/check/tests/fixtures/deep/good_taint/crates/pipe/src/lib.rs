//! Good twin: the clock read is justified at the source line — the
//! measured duration is reported, never mixed into the output.

pub fn render_frame(seed: u64) -> u64 {
    frame_stamp(seed)
}

fn frame_stamp(seed: u64) -> u64 {
    seed.wrapping_add(clock_bits())
}

fn clock_bits() -> u64 {
    // gaurast-check: allow(nondet): fixture — timing measured alongside
    // the frame, not fed back into it.
    let t = std::time::Instant::now();
    let _ = t.elapsed();
    0
}
