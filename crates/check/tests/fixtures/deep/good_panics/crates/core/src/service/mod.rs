//! Good twin: the indexing is bounds-checked away and the one remaining
//! `expect` states its invariant through the escape hatch.

pub struct RenderService;

impl RenderService {
    pub fn submit(&self, xs: &[u32]) -> u32 {
        self.pick(xs)
    }

    fn pick(&self, xs: &[u32]) -> u32 {
        let first = xs.first().copied().unwrap_or(0);
        // gaurast-check: allow(panic): fixture — `xs` was length-checked
        // by the caller's request validation.
        let second = xs.get(1).copied().expect("validated: len >= 2");
        first + second
    }
}
