//! Bad fixture: determinism taint flowing through a helper — the entry
//! point never touches a clock directly.

pub fn render_frame(seed: u64) -> u64 {
    frame_stamp(seed)
}

fn frame_stamp(seed: u64) -> u64 {
    seed ^ clock_bits()
}

fn clock_bits() -> u64 {
    let t = std::time::Instant::now();
    u64::from(t.elapsed().subsec_nanos())
}
