//! Model-checked verification of the renderer's lock-free protocols.
//!
//! This suite only compiles under `--cfg gaurast_model_check` (set via
//! `RUSTFLAGS`), which switches `gaurast_render::sync` from `std`
//! re-exports to the shadow primitives of `gaurast_check::shadow`. The
//! tests then drive the *production* `WorkerPool` and `RadixSorter` code
//! through sequentially consistent interleavings of their atomic, park and
//! unpark operations and prove the protocol invariants the renderer's
//! determinism rests on:
//!
//! * **exactly-once claims** — the pool's `fetch_add` cursor hands every
//!   job index to exactly one worker;
//! * **no lost wakeup / clean shutdown** — the persistent pool's
//!   generation + park/unpark handoff always completes a dispatch and
//!   always joins its workers at drop (a lost wakeup shows up as a
//!   scheduler-detected deadlock);
//! * **disjoint scatter ranges** — the radix placement table gives every
//!   (chunk, bucket) an output range no other chunk writes.
//!
//! Single-dispatch pool lifecycles at width 2 (spawn → dispatch → drop)
//! are **exhaustively** enumerated — those reports assert `exhaustive`.
//! Wider pools and multi-dispatch reuse runs have state spaces in the
//! millions of schedules, so they run the depth-first prefix plus seeded
//! random sampling instead; the invariants are asserted on every explored
//! schedule either way.
//!
//! Each invariant is paired with a *mutant*: the classic broken variant
//! (load-then-store claim, missed generation bump, inclusive instead of
//! exclusive prefix) written against the same `gaurast_render::sync`
//! facade. The checker must produce a
//! [`gaurast_check::model::Violation`] for every mutant — that regression
//! is what CI runs, proving the checker actually has the power to reject
//! the bugs the real protocols avoid.
#![cfg(gaurast_model_check)]

use gaurast_check::model::Model;
use gaurast_render::pool::WorkerPool;
use gaurast_render::sort::RadixSorter;
use gaurast_render::sync::atomic::{AtomicUsize, Ordering};
use gaurast_render::sync::thread;
use std::sync::Arc;

// Verification counters use plain `std` atomics on purpose: the scheduler
// serializes shadow threads, so they are race-free, and keeping them out
// of the shadow layer means they add no yield points — the explored state
// space stays exactly the protocol's own operations.
use std::sync::atomic::AtomicUsize as StdAtomicUsize;
use std::sync::atomic::Ordering::Relaxed;

#[test]
fn pool_cursor_claims_each_job_exactly_once_2x3() {
    // Width 2, one dispatch of 3 jobs, full pool lifecycle (spawn, park,
    // wake, drain, shutdown): ~37k schedules — exhaustively enumerated.
    let report = Model::new()
        .max_schedules(80_000)
        .check(|| {
            let pool = WorkerPool::new(2);
            let claims: Vec<StdAtomicUsize> = (0..3).map(|_| StdAtomicUsize::new(0)).collect();
            pool.run(3, |i| {
                claims[i].fetch_add(1, Relaxed);
            });
            for (i, c) in claims.iter().enumerate() {
                assert_eq!(c.load(Relaxed), 1, "job {i} not claimed exactly once");
            }
        })
        .expect("the fetch_add cursor must claim every job exactly once");
    assert!(report.exhaustive, "this size must be fully enumerable");
    assert!(report.schedules > 1, "2 workers must actually interleave");
}

#[test]
fn pool_cursor_claims_each_job_exactly_once_3x3() {
    // Three workers racing one cursor: the state space tops 3M schedules
    // (two resident threads interleave through the whole dispatch), so
    // this runs the DFS prefix plus seeded sampling rather than proving
    // exhaustiveness — width-2 lifecycles are the exhaustive ones.
    let report = Model::new()
        .max_schedules(2_000)
        .samples(256)
        .check(|| {
            let pool = WorkerPool::new(3);
            let claims: Vec<StdAtomicUsize> = (0..3).map(|_| StdAtomicUsize::new(0)).collect();
            pool.run(3, |i| {
                claims[i].fetch_add(1, Relaxed);
            });
            for (i, c) in claims.iter().enumerate() {
                assert_eq!(c.load(Relaxed), 1, "job {i} not claimed exactly once");
            }
        })
        .expect("three workers racing one cursor still claim exactly once");
    assert!(report.schedules > 1);
}

/// Pool **reuse**: two dispatches on one long-lived pool, exercising the
/// generation handoff across park/unpark cycles — a lost wakeup between
/// the dispatches (a worker sleeping through the second generation bump)
/// would deadlock the run and the scheduler would flag it.
#[test]
fn pool_reuse_across_dispatches_loses_no_wakeup() {
    let report = Model::new()
        .max_schedules(4_000)
        .samples(256)
        .check(|| {
            let pool = WorkerPool::new(2);
            let claims: Vec<StdAtomicUsize> = (0..4).map(|_| StdAtomicUsize::new(0)).collect();
            pool.run(2, |i| {
                claims[i].fetch_add(1, Relaxed);
            });
            pool.run(2, |i| {
                claims[2 + i].fetch_add(1, Relaxed);
            });
            for (i, c) in claims.iter().enumerate() {
                assert_eq!(
                    c.load(Relaxed),
                    1,
                    "claim {i} not exactly once across reuse"
                );
            }
        })
        .expect("a reused pool must complete every dispatch exactly once");
    assert!(report.schedules > 1);
}

/// Clean shutdown on every schedule: the `Drop` bump-to-odd + unpark must
/// reach a worker no matter where it is in its loop (mid-drain, parked,
/// about to park with a stale token); a missed exit would hang the join
/// and surface as a scheduler deadlock.
#[test]
fn pool_shutdown_joins_cleanly_on_every_schedule() {
    let report = Model::new()
        .max_schedules(40_000)
        .check(|| {
            let pool = WorkerPool::new(2);
            let ran = StdAtomicUsize::new(0);
            pool.run(2, |_| {
                ran.fetch_add(1, Relaxed);
            });
            drop(pool); // the assertion: this join terminates on every schedule
            assert_eq!(ran.load(Relaxed), 2);
        })
        .expect("shutdown must join the resident workers on every schedule");
    assert!(report.exhaustive, "this size must be fully enumerable");
}

#[test]
fn pool_run_mut_hands_out_every_slot_exactly_once() {
    let report = Model::new()
        .max_schedules(80_000)
        .check(|| {
            let pool = WorkerPool::new(2);
            let mut slots = [0usize; 3];
            pool.run_mut(&mut slots, |i, slot| {
                // A second visit to the same slot would double this.
                *slot += i + 1;
            });
            assert_eq!(slots, [1, 2, 3], "each slot written by exactly one job");
        })
        .expect("run_mut's disjoint &mut handout holds on every schedule");
    assert!(report.exhaustive);
}

/// The deliberately broken cursor of the ISSUE's acceptance criterion: a
/// load-then-store claim loop written against the same facade the real
/// pool uses. Some interleaving makes two workers observe the same index —
/// the checker must find it.
#[test]
fn mutant_load_then_store_cursor_is_caught() {
    let violation = Model::new()
        .check(|| {
            let n_jobs = 3;
            let cursor = AtomicUsize::new(0);
            let claims: Vec<StdAtomicUsize> = (0..n_jobs).map(|_| StdAtomicUsize::new(0)).collect();
            thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| loop {
                        // BUG under test: claim is not atomic.
                        let i = cursor.load(Ordering::SeqCst);
                        cursor.store(i + 1, Ordering::SeqCst);
                        if i >= n_jobs {
                            break;
                        }
                        assert_eq!(claims[i].fetch_add(1, Relaxed), 0, "job claimed twice");
                    });
                }
            });
        })
        .expect_err("the checker must find the duplicate-claim schedule");
    assert!(
        violation.message.contains("claimed twice"),
        "unexpected violation: {violation}"
    );
    assert!(
        violation.schedule.contains('T'),
        "violation must carry a reproduction schedule: {violation}"
    );
}

/// The persistent-pool mutant of the ISSUE: a dispatcher that publishes
/// work and unparks its worker but **forgets the generation bump**. The
/// worker wakes, sees no new generation, parks again — and the dispatch
/// hangs with every thread parked. The checker must catch this as a
/// deadlock (this is exactly the failure a lost `fetch_add(2)` in
/// `WorkerPool`'s dispatch would cause).
#[test]
fn mutant_missed_generation_bump_is_caught() {
    let violation = Model::new()
        .check(|| {
            let generation = Arc::new(AtomicUsize::new(0));
            let remaining = Arc::new(AtomicUsize::new(0));
            let caller = thread::current();
            let worker = {
                let generation = Arc::clone(&generation);
                let remaining = Arc::clone(&remaining);
                thread::spawn(move || {
                    let mut last = 0usize;
                    loop {
                        let g = generation.load(Ordering::SeqCst);
                        if g & 1 == 1 {
                            return;
                        }
                        if g == last {
                            thread::park();
                            continue;
                        }
                        last = g;
                        if remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
                            caller.unpark();
                        }
                    }
                })
            };
            remaining.store(1, Ordering::SeqCst);
            // BUG under test: no `generation.fetch_add(2)` before the
            // wakeup — the worker has nothing to observe.
            worker.thread().unpark();
            while remaining.load(Ordering::SeqCst) != 0 {
                thread::park(); // hangs: the worker never drains
            }
            generation.fetch_add(1, Ordering::SeqCst);
            worker.thread().unpark();
            let _ = worker.join();
        })
        .expect_err("the checker must catch the lost dispatch as a deadlock");
    assert!(
        violation.message.contains("deadlock"),
        "expected a deadlock violation, got: {violation}"
    );
}

#[test]
fn radix_sort_is_correct_under_interleavings() {
    // 16 keys in 4 chunks of 4 on 2 workers; keys stay below 256 so only
    // digit 0 varies and the sort is a single histogram→prefix→scatter
    // round. Two dispatches on one persistent pool put the full state
    // space beyond enumeration, so this checks the DFS prefix plus seeded
    // samples of the production protocol.
    let keys: [u64; 16] = [9, 3, 200, 3, 17, 90, 4, 3, 250, 0, 64, 17, 9, 128, 2, 33];
    let report = Model::new()
        .max_schedules(3_000)
        .samples(192)
        .check(|| {
            let pool = WorkerPool::new(2);
            let mut k: Vec<u64> = keys.to_vec();
            let mut v: Vec<u32> = (0..16).collect();
            RadixSorter::new().sort_pairs_chunked(&mut k, &mut v, &pool, 4);
            let mut expected: Vec<(u64, u32)> = keys.iter().copied().zip(0..16).collect();
            expected.sort_by_key(|&(key, _)| key); // stable oracle
            let got: Vec<(u64, u32)> = k.into_iter().zip(v).collect();
            assert_eq!(got, expected, "sort must be correct and stable");
        })
        .expect("histogram/prefix/scatter holds on every explored schedule");
    assert!(report.schedules > 1);
}

/// Re-derivation of the scatter-disjointness argument with per-slot claim
/// counters: the exclusive (bucket, chunk) prefix gives every chunk output
/// ranges no other chunk touches, so every output index is written exactly
/// once per pass.
#[test]
fn scatter_ranges_are_disjoint_under_interleavings() {
    const BUCKETS: usize = 4; // 2-bit digit keeps the table small
    let keys: [usize; 8] = [3, 1, 0, 2, 1, 3, 0, 1];
    let report = Model::new()
        .max_schedules(3_000)
        .samples(192)
        .check(|| {
            let pool = WorkerPool::new(2);
            let chunks = 2;
            let chunk_len = keys.len() / chunks;
            // 1. Per-chunk histograms (each job owns its row).
            let hist: Vec<StdAtomicUsize> = (0..chunks * BUCKETS)
                .map(|_| StdAtomicUsize::new(0))
                .collect();
            pool.run(chunks, |c| {
                for &k in &keys[c * chunk_len..(c + 1) * chunk_len] {
                    hist[c * BUCKETS + k].fetch_add(1, Relaxed);
                }
            });
            // 2. Exclusive prefix over (bucket, chunk) on the controller.
            let mut place = vec![0usize; chunks * BUCKETS];
            let mut running = 0;
            for b in 0..BUCKETS {
                for c in 0..chunks {
                    place[c * BUCKETS + b] = running;
                    running += hist[c * BUCKETS + b].load(Relaxed);
                }
            }
            assert_eq!(running, keys.len(), "histogram counts every key once");
            // 3. Scatter, counting writes per output slot.
            let writes: Vec<StdAtomicUsize> =
                (0..keys.len()).map(|_| StdAtomicUsize::new(0)).collect();
            let place = &place;
            let writes = &writes;
            pool.run(chunks, move |c| {
                let mut cursor = [0usize; BUCKETS];
                cursor.copy_from_slice(&place[c * BUCKETS..(c + 1) * BUCKETS]);
                for &k in &keys[c * chunk_len..(c + 1) * chunk_len] {
                    let at = cursor[k];
                    cursor[k] += 1;
                    writes[at].fetch_add(1, Relaxed);
                }
            });
            for (at, w) in writes.iter().enumerate() {
                assert_eq!(
                    w.load(Relaxed),
                    1,
                    "output slot {at} not written exactly once"
                );
            }
        })
        .expect("the exclusive prefix yields disjoint scatter ranges");
    assert!(report.schedules > 1);
}

/// Mutant of the placement step: an *inclusive* prefix (the off-by-one the
/// exclusive scan exists to avoid) makes chunk ranges overlap; some slot is
/// written twice and some never. The checker must reject it.
#[test]
fn mutant_inclusive_prefix_overlapping_scatter_is_caught() {
    const BUCKETS: usize = 4;
    let keys: [usize; 8] = [3, 1, 0, 2, 1, 3, 0, 1];
    let violation = Model::new()
        .max_schedules(3_000)
        .samples(192)
        .check(|| {
            let pool = WorkerPool::new(2);
            let chunks = 2;
            let chunk_len = keys.len() / chunks;
            let hist: Vec<StdAtomicUsize> = (0..chunks * BUCKETS)
                .map(|_| StdAtomicUsize::new(0))
                .collect();
            pool.run(chunks, |c| {
                for &k in &keys[c * chunk_len..(c + 1) * chunk_len] {
                    hist[c * BUCKETS + k].fetch_add(1, Relaxed);
                }
            });
            // BUG under test: inclusive prefix — ranges start one count too
            // late and overlap the successor's range.
            let mut place = vec![0usize; chunks * BUCKETS];
            let mut running = 0;
            for b in 0..BUCKETS {
                for c in 0..chunks {
                    running += hist[c * BUCKETS + b].load(Relaxed);
                    place[c * BUCKETS + b] = running % keys.len();
                }
            }
            let writes: Vec<StdAtomicUsize> =
                (0..keys.len()).map(|_| StdAtomicUsize::new(0)).collect();
            let place = &place;
            let writes = &writes;
            pool.run(chunks, move |c| {
                let mut cursor = [0usize; BUCKETS];
                cursor.copy_from_slice(&place[c * BUCKETS..(c + 1) * BUCKETS]);
                for &k in &keys[c * chunk_len..(c + 1) * chunk_len] {
                    let at = cursor[k] % keys.len();
                    cursor[k] += 1;
                    writes[at].fetch_add(1, Relaxed);
                }
            });
            for (at, w) in writes.iter().enumerate() {
                assert_eq!(
                    w.load(Relaxed),
                    1,
                    "output slot {at} not written exactly once"
                );
            }
        })
        .expect_err("overlapping ranges must be rejected");
    assert!(
        violation.message.contains("not written exactly once"),
        "unexpected violation: {violation}"
    );
}

/// The sampling fallback must retain bug-finding power: cap enumeration at
/// one schedule and let seeded random sampling find the lost update.
#[test]
fn sampling_mode_still_catches_the_cursor_mutant() {
    let violation = Model::new()
        .max_schedules(1)
        .samples(128)
        .check(|| {
            let cursor = AtomicUsize::new(0);
            let claims: Vec<StdAtomicUsize> = (0..2).map(|_| StdAtomicUsize::new(0)).collect();
            thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| loop {
                        let i = cursor.load(Ordering::SeqCst);
                        cursor.store(i + 1, Ordering::SeqCst);
                        if i >= 2 {
                            break;
                        }
                        assert_eq!(claims[i].fetch_add(1, Relaxed), 0, "job claimed twice");
                    });
                }
            });
        })
        .expect_err("random sampling must hit a duplicate-claim schedule");
    assert!(violation.message.contains("claimed twice"), "{violation}");
}

/// A worker-side job panic under the model: the dispatch must still
/// converge on every schedule (the catch keeps the pool's protocol
/// draining) and surface the typed error — no deadlock, no teardown.
#[test]
fn pool_job_panic_still_converges_under_model() {
    let report = Model::new()
        .max_schedules(80_000)
        .check(|| {
            let pool = WorkerPool::new(2);
            let err = pool
                .try_run(2, |i| {
                    if i == 1 {
                        std::panic::panic_any("job 1 dies");
                    }
                })
                .expect_err("job 1 panics on every schedule");
            assert_eq!(err.job, 1, "typed error must name the job");
        })
        .expect("a panicking job must not break the dispatch protocol");
    assert!(report.exhaustive);
}

/// Outside `Model::check` the shadow primitives fall through to plain
/// `std`, so a `gaurast_model_check` build still runs the ordinary suites:
/// the real pool must work normally in this very test binary.
#[test]
fn facade_falls_through_to_std_outside_model_runs() {
    let pool = WorkerPool::new(4);
    let sum = StdAtomicUsize::new(0);
    pool.run(100, |i| {
        sum.fetch_add(i, Relaxed);
    });
    assert_eq!(sum.into_inner(), 99 * 100 / 2);

    let mut keys: Vec<u64> = (0..1000).rev().map(|i| i * 3 % 257).collect();
    let mut vals: Vec<u32> = (0..1000).collect();
    RadixSorter::new().sort_pairs(&mut keys, &mut vals, &pool);
    assert!(keys.windows(2).all(|w| w[0] <= w[1]));
}
