//! End-to-end tests of the happens-before race detector: mutant replicas
//! of the renderer's two classic instrumentation-visible bugs (an
//! off-by-one scatter placement that overlaps output ranges, and a
//! `Relaxed` generation handoff whose publication carries no release
//! edge), their correct twins, the synchronization edges the detector
//! must honor (spawn/join, park/unpark), and the static half of the
//! story — the repository's own `unsafe-instrumentation-coverage` rule
//! run as a plain `cargo test`.
//!
//! Everything here drives `gaurast_check`'s shadow primitives directly,
//! so no `--cfg gaurast_model_check` build is needed: the cfg only
//! switches `gaurast_render`'s facade; the detector itself is always
//! compiled. Detection is derived from vector clocks, not from the
//! particular interleaving, so a single explored schedule suffices to
//! expose each race — the asserts still check the report carries a
//! reproduction schedule.

use gaurast_check::model::Model;
use gaurast_check::races::{read_range, write_range};
use gaurast_check::shadow::{park, scope, spawn, AtomicUsize};
use std::path::Path;
use std::sync::atomic::Ordering;

/// The scatter mutant of the ISSUE: an off-by-one placement hands chunk 0
/// the range `[0, 5)` instead of `[0, 4)`, overlapping chunk 1's `[4, 8)`
/// by one byte. The two writes are unordered siblings, so the detector
/// must report a write-write race naming both sites, with a reproduction
/// schedule.
#[test]
fn mutant_off_by_one_scatter_overlap_races() {
    let violation = Model::new()
        .check(|| {
            let out = [0u8; 8];
            let base = out.as_ptr() as usize;
            scope(|s| {
                // BUG under test: chunk 0's range is one byte too long.
                s.spawn(move || write_range(base, 5, "scatter.rs:chunk0"));
                s.spawn(move || write_range(base + 4, 4, "scatter.rs:chunk1"));
            });
        })
        .expect_err("overlapping unordered scatter writes must race");
    assert!(
        violation.message.contains("data race"),
        "unexpected violation: {violation}"
    );
    assert!(
        violation.message.contains("scatter.rs:chunk0")
            && violation.message.contains("scatter.rs:chunk1"),
        "the report must name both access sites: {violation}"
    );
    assert!(
        violation.schedule.contains('T'),
        "violation must carry a reproduction schedule: {violation}"
    );
}

/// The correct twin: exclusive-prefix placement gives the chunks disjoint
/// ranges, and disjoint unordered writes are not a race.
#[test]
fn disjoint_scatter_ranges_are_clean() {
    let report = Model::new()
        .check(|| {
            let out = [0u8; 8];
            let base = out.as_ptr() as usize;
            scope(|s| {
                s.spawn(move || write_range(base, 4, "scatter.rs:chunk0"));
                s.spawn(move || write_range(base + 4, 4, "scatter.rs:chunk1"));
            });
        })
        .expect("disjoint ranges must pass on every schedule");
    assert!(report.schedules > 1, "two writers must actually interleave");
}

/// The generation-handoff mutant of the ISSUE: the dispatcher fills the
/// mailbox and bumps the generation with `Relaxed` — deleting the release
/// edge the protocol depends on. On any schedule where the worker
/// observes the bump and drains, its read of the mailbox is unordered
/// with the dispatcher's write: a read-write race.
#[test]
fn mutant_relaxed_generation_handoff_races() {
    let violation = Model::new()
        .check(|| {
            let generation = AtomicUsize::new(0);
            let mailbox = [0u64; 8];
            let base = mailbox.as_ptr() as usize;
            scope(|s| {
                s.spawn(|| {
                    if generation.load(Ordering::Acquire) != 0 {
                        read_range(base, 64, "worker.rs:drain");
                    }
                });
                write_range(base, 64, "dispatch.rs:publish");
                // BUG under test: the bump is Relaxed, so the worker's
                // acquire load synchronizes with nothing.
                generation.store(1, Ordering::Relaxed);
            });
        })
        .expect_err("an un-released publication must race with the drain");
    assert!(
        violation.message.contains("data race"),
        "unexpected violation: {violation}"
    );
    assert!(
        violation.message.contains("dispatch.rs:publish")
            && violation.message.contains("worker.rs:drain"),
        "the report must name both access sites: {violation}"
    );
    assert!(
        violation.schedule.contains('T'),
        "violation must carry a reproduction schedule: {violation}"
    );
}

/// The correct twin: a `Release` bump makes the worker's acquire load
/// synchronize with the publication, ordering write before read on every
/// schedule where the drain happens at all.
#[test]
fn release_acquire_generation_handoff_is_clean() {
    let report = Model::new()
        .check(|| {
            let generation = AtomicUsize::new(0);
            let mailbox = [0u64; 8];
            let base = mailbox.as_ptr() as usize;
            scope(|s| {
                s.spawn(|| {
                    if generation.load(Ordering::Acquire) != 0 {
                        read_range(base, 64, "worker.rs:drain");
                    }
                });
                write_range(base, 64, "dispatch.rs:publish");
                generation.store(1, Ordering::Release);
            });
        })
        .expect("release/acquire orders the handoff on every schedule");
    assert!(
        report.schedules > 1,
        "the worker must interleave with the dispatcher"
    );
}

/// Spawn and join are happens-before edges: a write before `spawn`, the
/// child's own write, and a write after `join` form a chain over the same
/// range with no two accesses unordered.
#[test]
fn spawn_and_join_edges_order_same_range_writes() {
    Model::new()
        .check(|| {
            let cell = [0u64; 1];
            let base = cell.as_ptr() as usize;
            write_range(base, 8, "parent.rs:before-spawn");
            let child = spawn(move || write_range(base, 8, "child.rs:body"));
            child.join().expect("child runs clean");
            write_range(base, 8, "parent.rs:after-join");
        })
        .expect("spawn/join edges must order the three writes");
}

/// Unpark publishes and a returning `park` acquires — the same edge the
/// real pool's wakeup protocol leans on — so a write made before `unpark`
/// is ordered before the woken thread's read on every schedule (including
/// the token path where `unpark` lands first and `park` returns
/// immediately).
#[test]
fn unpark_edge_orders_write_before_woken_read() {
    Model::new()
        .check(|| {
            let cell = [0u64; 1];
            let base = cell.as_ptr() as usize;
            let worker = spawn(move || {
                park();
                read_range(base, 8, "worker.rs:after-park");
            });
            write_range(base, 8, "dispatch.rs:before-unpark");
            worker.thread().unpark();
            worker.join().expect("worker runs clean");
        })
        .expect("the unpark→park edge must order the handoff");
}

/// The static half, wired into plain `cargo test` like the lint and deep
/// self-checks: every unsafe write reachable from the repository's hot
/// roots must sit inside a `race_region!` or carry an `allow(race)`
/// justification — the coverage that keeps the dynamic detector above
/// from being vacuous on the real renderer.
#[test]
fn the_workspace_has_no_uncovered_unsafe_writes() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/check sits two levels under the workspace root");
    let graph = gaurast_check::graph::CallGraph::build(root).expect("graph build");
    let deps = gaurast_check::resolve::CrateDeps::discover(root);
    let res = gaurast_check::resolve::resolve(&graph, &deps);
    let outcome = gaurast_check::deep::races::run(&graph, &res);
    assert!(
        !outcome.roots.is_empty(),
        "the hot markers moved — the rule found no roots"
    );
    assert!(
        outcome.violations.is_empty(),
        "uncovered unsafe writes reachable from hot roots:\n{}",
        outcome
            .violations
            .iter()
            .map(gaurast_check::deep::Violation::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
