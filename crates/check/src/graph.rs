//! Whole-workspace function/method call-graph extraction.
//!
//! This is the deep layer's front end: a lightweight, dependency-free
//! item parser built on the string/comment-aware line classifier of
//! [`crate::lint`] (no `syn` — the workspace builds offline). One pass
//! over each source file produces a [`FnNode`] per function or method
//! with:
//!
//! * its **identity** — file, module path derived from the file's place
//!   in the crate tree, the surrounding `impl`/`trait` type, and name;
//! * its **call sites** — plain calls (`helper(x)`), qualified calls
//!   (`RadixSorter::new(…)`, `sort::depth_key_bits(…)`), and method
//!   calls (`.bin_splats(…)`), each with the source line;
//! * its **effect events** — heap allocation, locking, I/O, determinism
//!   taint sources, panic constructs, slice-indexing sites, and
//!   *uninstrumented unsafe writes* (raw-pointer/shared-memory stores
//!   inside an `unsafe` block that no `race_region!` covers), matched
//!   token-wise against the comment-stripped, literal-blanked code, with
//!   `// gaurast-check: allow(…): reason` escape hatches honored per
//!   line (suppressed events are kept separately so reports can count
//!   them).
//!
//! The parser is deliberately *approximate but conservative*: it tracks
//! brace depth, `mod`/`impl`/`trait` scopes, and nested `fn` items, and
//! attributes every call and event to the innermost enclosing function.
//! Closure bodies therefore belong to the function that defines them —
//! exactly the attribution a transitive analysis wants. Constructs it
//! cannot see (function pointers, trait objects called through
//! `std` combinators) surface as *unresolved calls* in
//! [`crate::resolve`], which the report counts rather than silently
//! drops.
//!
//! `#[cfg(test)]` regions are skipped entirely (the workspace convention
//! puts them last in the file), and only library sources are parsed —
//! `src/` trees, not `tests/`, `examples/`, or `benches/` — so the graph
//! models the shipped pipeline, not its harnesses.

use crate::lint::{
    self, annotated, classify, Line, ALLOW_ALLOC, ALLOW_NONDET, ALLOW_PANIC, ALLOW_RACE, HOT_MARKER,
};
use std::path::Path;

/// Extra allocation tokens the deep layer matches beyond the line lint's
/// [`lint::ALLOC_TOKENS`]: capacity-carrying constructors and thread
/// spawns (a scoped spawn heap-allocates its stack bookkeeping — the
/// per-frame cost ROADMAP item 1 exists to remove).
pub const DEEP_ALLOC_TOKENS: &[&str] = &[
    "Vec::with_capacity",
    "String::with_capacity",
    "HashMap::with_capacity",
    "Arc::new",
    "Rc::new",
    "thread::scope",
    ".spawn(",
];

/// Lock-interaction tokens (the hot path must be lock-free).
pub const LOCK_TOKENS: &[&str] = &[".lock(", "Mutex::new", "RwLock", "Condvar"];

/// I/O tokens (the hot path must not touch files or the console).
pub const IO_TOKENS: &[&str] = &[
    "std::fs",
    "File::",
    "println!",
    "eprintln!",
    "print!(",
    "eprint!(",
    "stdout",
    "stderr",
    "stdin",
];

/// Determinism taint sources beyond the line lint's
/// [`lint::NONDET_TOKENS`]: the default hasher's ambient randomness and
/// thread-count queries (same binary, different machine, different
/// answer).
pub const DEEP_NONDET_TOKENS: &[&str] = &[
    "RandomState",
    "DefaultHasher",
    "HashMap::new",
    "HashSet::new",
    "available_parallelism",
];

/// Panic-construct tokens for the serving panic-freedom rule. Plain
/// `assert!` is deliberately absent: asserts are message-bearing input
/// guards (their hot-loop cost is policed by the line lint's
/// `hot-assert` rule), while these tokens abort on *data* the service
/// cannot validate up front.
pub const PANIC_TOKENS: &[&str] = &[
    ".unwrap(",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// Raw-write tokens the unsafe-instrumentation-coverage rule matches
/// inside `unsafe` blocks, beyond plain deref assignments (`*p = v`,
/// `*p += v`, …): mutable-view constructors and the `ptr` write family.
/// A matching line inside an `unsafe` block that no `race_region!`
/// covers becomes an [`EventKind::UnsafeWrite`] event.
pub const RAW_WRITE_TOKENS: &[&str] = &[
    "from_raw_parts_mut",
    "&mut *",
    "ptr::write",
    "write_volatile",
    "write_unaligned",
    "copy_nonoverlapping",
    "copy_from",
    "copy_to",
    "write_bytes",
];

/// What kind of effect an [`Event`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Heap allocation ([`lint::ALLOC_TOKENS`] + [`DEEP_ALLOC_TOKENS`]).
    Alloc,
    /// Lock interaction ([`LOCK_TOKENS`]).
    Lock,
    /// File/console I/O ([`IO_TOKENS`]).
    Io,
    /// Determinism taint source ([`lint::NONDET_TOKENS`] +
    /// [`DEEP_NONDET_TOKENS`]).
    Nondet,
    /// Panic construct ([`PANIC_TOKENS`]).
    Panic,
    /// Slice/array indexing (`xs[i]`) — panics when out of bounds.
    Index,
    /// A raw-pointer/shared-memory write inside an `unsafe` block that no
    /// `race_region!` lexically covers ([`RAW_WRITE_TOKENS`] + deref
    /// assignments). Covered writes produce no event — the shadow race
    /// detector sees their registered ranges instead.
    UnsafeWrite,
}

impl EventKind {
    /// Stable lowercase label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Alloc => "alloc",
            EventKind::Lock => "lock",
            EventKind::Io => "io",
            EventKind::Nondet => "nondet",
            EventKind::Panic => "panic",
            EventKind::Index => "index",
            EventKind::UnsafeWrite => "unsafe-write",
        }
    }
}

/// One effect occurrence inside a function body.
#[derive(Clone, Debug)]
pub struct Event {
    /// Effect class.
    pub kind: EventKind,
    /// The matched token (`Vec::new`, `Instant::now`, `.expect(`, …);
    /// `[…]` for indexing sites.
    pub token: String,
    /// 1-based source line.
    pub line: usize,
}

/// How a call site names its callee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `helper(…)` — a free function in scope.
    Plain,
    /// `Qualifier::name(…)` — the last path segment before the name.
    Qualified(String),
    /// `.name(…)` — a method on an inferred receiver.
    Method,
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct Call {
    /// Resolution shape of the site.
    pub kind: CallKind,
    /// Callee name as written.
    pub name: String,
    /// 1-based source line.
    pub line: usize,
}

/// One function or method in the workspace call graph.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Repo-relative path of the defining file.
    pub file: String,
    /// Crate key — the directory name under `crates/` (`render`, `core`,
    /// …) or `"."` for the workspace-root facade crate.
    pub krate: String,
    /// Module path derived from the file path (`render::tile`).
    pub module: String,
    /// Surrounding `impl`/`trait` type, when the item is a method.
    pub owner: Option<String>,
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` signature.
    pub line: usize,
    /// `true` when `// gaurast-check: hot-path` sits directly above the
    /// signature — the hot-purity analysis roots.
    pub hot_marker: bool,
    /// Names callable locally without naming a workspace function: the
    /// function's own parameters (callback invocations like `f(i)`),
    /// `let`-bound names (calling one is a value call through a closure
    /// or fn pointer), and the parameters of `let`-bound closure
    /// literals. The resolver treats a plain call to one of these as
    /// local — a closure's body events are already attributed to the
    /// node that defines it.
    pub locals: Vec<String>,
    /// Call sites in the body, innermost-function attribution.
    pub calls: Vec<Call>,
    /// Effect events in the body (escape-hatched lines excluded).
    pub events: Vec<Event>,
    /// Events suppressed by an adjacent `allow(…)` annotation — counted
    /// in reports so escapes stay visible.
    pub suppressed: Vec<Event>,
}

impl FnNode {
    /// Human-readable node id: `module::Type::name` / `module::name`.
    pub fn id(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{}::{}::{}", self.module, owner, self.name),
            None => format!("{}::{}", self.module, self.name),
        }
    }
}

/// The whole-workspace call graph: every function of every `src/` tree
/// (the checker's own crate excluded — it is host tooling, not pipeline
/// code, and `gaurast-render` depends on it only for the model-check
/// shadow primitives).
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    /// Every parsed function, in file order.
    pub nodes: Vec<FnNode>,
    /// Number of files parsed.
    pub files: usize,
}

impl CallGraph {
    /// Builds the graph from every library source under `root` in one
    /// pass, using the same tree walk as the lint layer.
    ///
    /// # Errors
    /// Propagates I/O errors from the tree walk; parse irregularities are
    /// not errors (they surface as unresolved calls downstream).
    pub fn build(root: &Path) -> std::io::Result<Self> {
        let sources = lint::workspace_sources(root)?;
        let mut graph = CallGraph::default();
        for (rel, content) in &sources {
            if !in_graph(rel) {
                continue;
            }
            graph.files += 1;
            parse_file(rel, content, &mut graph.nodes);
        }
        Ok(graph)
    }

    /// Indices of the nodes carrying the hot-path marker.
    pub fn hot_roots(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].hot_marker)
            .collect()
    }
}

/// `true` for files the graph models: `src/` trees of workspace crates
/// plus the root facade, excluding the checker itself.
fn in_graph(rel: &str) -> bool {
    if rel.starts_with("crates/check/") {
        return false;
    }
    rel.starts_with("src/") || (rel.starts_with("crates/") && rel.contains("/src/"))
}

/// Crate key and module path for a repo-relative file path.
fn module_of(rel: &str) -> (String, String) {
    let (krate, tail) = match rel.strip_prefix("crates/") {
        Some(rest) => {
            let (krate, tail) = rest.split_once('/').unwrap_or((rest, ""));
            (krate.to_string(), tail.strip_prefix("src/").unwrap_or(tail))
        }
        None => (".".to_string(), rel.strip_prefix("src/").unwrap_or(rel)),
    };
    let mut segments: Vec<&str> = vec![&krate];
    for seg in tail.split('/') {
        let seg = seg.strip_suffix(".rs").unwrap_or(seg);
        if !seg.is_empty() && seg != "lib" && seg != "mod" && seg != "main" {
            segments.push(seg);
        }
    }
    (krate.clone(), segments.join("::"))
}

/// A source token: an identifier or a single punctuation character.
#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Punct(char),
}

/// Tokenizes classified code lines into `(token, 0-based line)` pairs.
fn tokenize(lines: &[Line]) -> Vec<(Tok, usize)> {
    let mut toks = Vec::new();
    for (ln, line) in lines.iter().enumerate() {
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_alphanumeric() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push((Tok::Ident(chars[start..i].iter().collect()), ln));
            } else {
                if !c.is_whitespace() {
                    toks.push((Tok::Punct(c), ln));
                }
                i += 1;
            }
        }
    }
    toks
}

/// Keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "fn", "where", "impl",
    "let", "else", "unsafe", "dyn", "ref", "mut", "box", "await", "static", "Some", "None", "Ok",
    "Err",
];

/// Keywords that precede `[` without forming an indexing site.
const INDEX_KEYWORD_PREV: &[&str] = &["mut", "dyn", "in", "as", "return", "else"];

/// Parses one file's functions into `out`. Crate-visible so the resolver
/// and the deep rules can build graphs over fixture sources in tests.
pub(crate) fn parse_file(rel: &str, content: &str, out: &mut Vec<FnNode>) {
    let all_lines = classify(content);
    let end = lint::test_region_start(&all_lines);
    let lines = &all_lines[..end];
    let (krate, module) = module_of(rel);
    let toks = tokenize(lines);

    // Scope tracking: each entry is (brace depth *after* opening, kind).
    #[derive(Clone, Copy, Debug)]
    enum Scope {
        Mod,
        Owner,
        Fn { node: usize },
        Other,
    }
    let mut scopes: Vec<Scope> = Vec::new();
    let mut mods: Vec<String> = Vec::new();
    let mut owners: Vec<String> = Vec::new();
    let mut fn_stack: Vec<usize> = Vec::new();
    // Body line ranges, parallel to the nodes appended by this file, used
    // for innermost-function event attribution below.
    let mut ranges: Vec<(usize, usize, usize)> = Vec::new(); // (node, start, end)
                                                             // Lexical block spans (0-based inclusive line ranges) for the
                                                             // unsafe-write scan: `unsafe { … }` blocks, and the brace bodies of
                                                             // `race_region!(…, { … })` invocations. Open entries carry the scope
                                                             // depth at which their `{` pushed, so the matching `}` closes them.
    let mut pending_region = false;
    let mut unsafe_open: Vec<(usize, usize)> = Vec::new(); // (depth, open line)
    let mut region_open: Vec<(usize, usize)> = Vec::new();
    let mut unsafe_spans: Vec<(usize, usize)> = Vec::new();
    let mut region_spans: Vec<(usize, usize)> = Vec::new();

    let mut i = 0;
    while i < toks.len() {
        match &toks[i].0 {
            Tok::Ident(kw) if kw == "macro_rules" => {
                // Macro bodies are token soup, not items: parsing them
                // would mint phantom nodes (`impl Index for $name` →
                // owner "name"). Skip to the matching close brace.
                let mut j = i + 1;
                while j < toks.len() && toks[j].0 != Tok::Punct('{') {
                    j += 1;
                }
                let mut depth = 0i32;
                while j < toks.len() {
                    match toks[j].0 {
                        Tok::Punct('{') => depth += 1,
                        Tok::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = j + 1;
            }
            Tok::Ident(kw) if kw == "mod" => {
                // `mod name {` opens an inline module; `mod name;` is a
                // file module (its items are parsed from their own file).
                if let Some((Tok::Ident(name), _)) = toks.get(i + 1).map(|t| (&t.0, t.1)) {
                    if matches!(toks.get(i + 2).map(|t| &t.0), Some(Tok::Punct('{'))) {
                        scopes.push(Scope::Mod);
                        mods.push(name.clone());
                        i += 3;
                        continue;
                    }
                }
                i += 1;
            }
            Tok::Ident(kw) if kw == "impl" || kw == "trait" => {
                // Scan to the opening brace (or `;` for a bare
                // `trait X;`-like form), capturing the implemented-on type:
                // the last angle-depth-0 identifier before the brace, with
                // `for` resetting the capture and `where` ending it.
                let mut j = i + 1;
                let mut angle = 0i32;
                let mut ty: Option<String> = None;
                let mut capture = true;
                while j < toks.len() {
                    match &toks[j].0 {
                        Tok::Punct('<') => angle += 1,
                        Tok::Punct('>') => angle -= 1,
                        Tok::Punct('{') if angle <= 0 => break,
                        Tok::Punct(';') if angle <= 0 => break,
                        Tok::Ident(w) if angle <= 0 => {
                            if w == "where" {
                                capture = false;
                            } else if w == "for" {
                                ty = None;
                            } else if capture && w != "dyn" && w != "mut" && w != "const" {
                                ty = Some(w.clone());
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if j < toks.len() && toks[j].0 == Tok::Punct('{') {
                    scopes.push(Scope::Owner);
                    owners.push(ty.unwrap_or_default());
                }
                i = j + 1;
            }
            Tok::Ident(kw) if kw == "fn" => {
                let Some((Tok::Ident(name), sig_line)) = toks.get(i + 1).map(|t| (&t.0, t.1))
                else {
                    i += 1;
                    continue;
                };
                let name = name.clone();
                // Scan past the signature (parameters, return type, where
                // clause) to the body brace or a `;` declaration, capturing
                // parameter names (ident directly before `:` at the
                // top parameter depth) for callback-call resolution.
                let mut j = i + 2;
                let mut paren = 0i32;
                let mut bracket = 0i32;
                let mut params: Vec<String> = Vec::new();
                while j < toks.len() {
                    match &toks[j].0 {
                        Tok::Punct('(') => paren += 1,
                        Tok::Punct(')') => paren -= 1,
                        // Array types in the signature (`-> [f64; 7]`)
                        // carry a `;` that must not read as a
                        // declaration's end.
                        Tok::Punct('[') => bracket += 1,
                        Tok::Punct(']') => bracket -= 1,
                        Tok::Punct('{') if paren == 0 => break,
                        Tok::Punct(';') if paren == 0 && bracket == 0 => break,
                        // `name :` introduces a parameter; `a::b` path
                        // segments inside types are skipped (`:` on either
                        // side).
                        Tok::Ident(w)
                            if paren == 1
                                && w != "self"
                                && matches!(
                                    toks.get(j + 1).map(|t| &t.0),
                                    Some(Tok::Punct(':'))
                                )
                                && !matches!(
                                    toks.get(j + 2).map(|t| &t.0),
                                    Some(Tok::Punct(':'))
                                )
                                && !matches!(
                                    j.checked_sub(1).map(|p| &toks[p].0),
                                    Some(Tok::Punct(':'))
                                ) =>
                        {
                            params.push(w.clone());
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if j < toks.len() && toks[j].0 == Tok::Punct('{') {
                    let owner = owners.last().cloned().filter(|o| !o.is_empty());
                    let module = if mods.is_empty() {
                        module.clone()
                    } else {
                        format!("{module}::{}", mods.join("::"))
                    };
                    let node = out.len();
                    out.push(FnNode {
                        file: rel.to_string(),
                        krate: krate.clone(),
                        module,
                        owner,
                        name,
                        line: sig_line + 1,
                        hot_marker: annotated(lines, sig_line, HOT_MARKER),
                        locals: params,
                        calls: Vec::new(),
                        events: Vec::new(),
                        suppressed: Vec::new(),
                    });
                    scopes.push(Scope::Fn { node });
                    fn_stack.push(node);
                    ranges.push((node, toks[j].1, toks[j].1));
                    i = j + 1;
                } else {
                    i = j + 1;
                }
            }
            Tok::Ident(kw) if kw == "race_region" => {
                // `race_region!(label, { … })` — the next brace opens the
                // instrumented body (the label is a blanked string
                // literal, so no `{` intervenes).
                if matches!(toks.get(i + 1).map(|t| &t.0), Some(Tok::Punct('!'))) {
                    pending_region = true;
                }
                i += 1;
            }
            Tok::Punct('{') => {
                scopes.push(Scope::Other);
                let depth = scopes.len();
                if matches!(
                    i.checked_sub(1).map(|p| &toks[p].0),
                    Some(Tok::Ident(w)) if w == "unsafe"
                ) {
                    unsafe_open.push((depth, toks[i].1));
                }
                if pending_region {
                    region_open.push((depth, toks[i].1));
                    pending_region = false;
                }
                i += 1;
            }
            Tok::Punct('}') => {
                let depth = scopes.len();
                if unsafe_open.last().is_some_and(|&(d, _)| d == depth) {
                    let (_, start) = unsafe_open.pop().unwrap();
                    unsafe_spans.push((start, toks[i].1));
                }
                if region_open.last().is_some_and(|&(d, _)| d == depth) {
                    let (_, start) = region_open.pop().unwrap();
                    region_spans.push((start, toks[i].1));
                }
                match scopes.pop() {
                    Some(Scope::Mod) => {
                        mods.pop();
                    }
                    Some(Scope::Owner) => {
                        owners.pop();
                    }
                    Some(Scope::Fn { node }) => {
                        fn_stack.pop();
                        if let Some(r) = ranges.iter_mut().find(|r| r.0 == node) {
                            r.2 = toks[i].1;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            Tok::Punct('[') => {
                // Indexing site: `xs[…]`, `f(x)[…]`, `a[i][j]` — but not
                // attributes (`#[…]`), types (`&mut [T]`), array literals,
                // or macro brackets (`vec![…]`).
                if let Some(node) = fn_stack.last().copied() {
                    let is_ident_prev = matches!(
                        i.checked_sub(1).map(|p| &toks[p].0),
                        Some(Tok::Ident(w)) if !INDEX_KEYWORD_PREV.contains(&w.as_str())
                    );
                    let is_postfix_prev = matches!(
                        i.checked_sub(1).map(|p| &toks[p].0),
                        Some(Tok::Punct(')') | Tok::Punct(']'))
                    );
                    let macro_or_attr = i >= 2
                        && matches!(&toks[i - 1].0, Tok::Ident(_))
                        && matches!(toks[i - 2].0, Tok::Punct('#') | Tok::Punct('!'));
                    if (is_ident_prev && !macro_or_attr) || is_postfix_prev {
                        let ln = toks[i].1;
                        let ev = Event {
                            kind: EventKind::Index,
                            token: "[…]".to_string(),
                            line: ln + 1,
                        };
                        if annotated(lines, ln, ALLOW_PANIC) {
                            out[node].suppressed.push(ev);
                        } else {
                            out[node].events.push(ev);
                        }
                    }
                }
                i += 1;
            }
            Tok::Punct('(') => {
                // A call site: the token before `(` is an identifier that
                // is not a keyword, not a macro name (`name!(`), and not a
                // function definition (handled above).
                if let (Some(node), Some(prev)) = (fn_stack.last().copied(), i.checked_sub(1)) {
                    if let Tok::Ident(name) = &toks[prev].0 {
                        let is_macro = i >= 2 && toks[prev - 1].0 == Tok::Punct('!');
                        let is_def = i >= 2 && toks[prev - 1].0 == Tok::Ident("fn".to_string());
                        // `#[cfg(…)]` / `#![allow(…)]` heads are
                        // attributes, not calls.
                        let is_attr = prev >= 2
                            && toks[prev - 1].0 == Tok::Punct('[')
                            && (toks[prev - 2].0 == Tok::Punct('#')
                                || (prev >= 3
                                    && toks[prev - 2].0 == Tok::Punct('!')
                                    && toks[prev - 3].0 == Tok::Punct('#')));
                        if !CALL_KEYWORDS.contains(&name.as_str())
                            && !is_macro
                            && !is_def
                            && !is_attr
                        {
                            let kind = call_kind(&toks, prev);
                            out[node].calls.push(Call {
                                kind,
                                name: name.clone(),
                                line: toks[prev].1 + 1,
                            });
                        }
                    }
                }
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }

    // A parse irregularity that leaves an `unsafe` block open reads as
    // unsafe-to-EOF (conservative: more lines scanned, never fewer); an
    // unclosed region grants no coverage.
    for (_, start) in unsafe_open {
        unsafe_spans.push((start, lines.len().saturating_sub(1)));
    }

    // Effect events, attributed to the innermost function whose body
    // range contains the line (closures included; nested fns excluded
    // from their parent).
    for ln in 0..lines.len() {
        let Some(&(node, _, _)) = ranges
            .iter()
            .filter(|&&(_, s, e)| s <= ln && ln <= e)
            .min_by_key(|&&(_, s, e)| e - s)
        else {
            continue;
        };
        scan_line_events(lines, ln, node, out);
        let_bindings(&lines[ln].code, &mut out[node].locals);
        let in_unsafe = unsafe_spans.iter().any(|&(s, e)| s <= ln && ln <= e);
        let in_region = region_spans.iter().any(|&(s, e)| s <= ln && ln <= e);
        if in_unsafe && !in_region {
            if let Some(token) = raw_write_token(&lines[ln].code) {
                let ev = Event {
                    kind: EventKind::UnsafeWrite,
                    token: token.to_string(),
                    line: ln + 1,
                };
                if annotated(lines, ln, ALLOW_RACE) {
                    out[node].suppressed.push(ev);
                } else {
                    out[node].events.push(ev);
                }
            }
        }
    }
}

/// Collects locally-bound names from a `let` statement into `locals`:
/// every identifier on the pattern side (simple bindings and tuple
/// destructurings alike — a call through any of them is a value call, not
/// a workspace-function call), and, when the bound value is a closure
/// literal, the closure's own parameter names (its body's call sites
/// belong to the enclosing function, so `f(i)` inside it must resolve
/// locally too).
fn let_bindings(code: &str, locals: &mut Vec<String>) {
    let Some(at) = find_word(code, "let") else {
        return;
    };
    let rest = &code[at + 3..];
    // Pattern side: up to the `=` (assignment) or `:` (type ascription),
    // whichever comes first.
    let pat_end = rest.find(['=', ':']).unwrap_or(rest.len());
    push_idents(&rest[..pat_end], locals);
    // Closure value: `= |…|` or `= move |…|` — the first pipe pair holds
    // the parameter list (rustfmt keeps the head on one line).
    let Some(eq) = rest.find('=') else {
        return;
    };
    let value = rest[eq + 1..].trim_start();
    let value = value
        .strip_prefix("move")
        .map(str::trim_start)
        .unwrap_or(value);
    if let Some(head) = value.strip_prefix('|') {
        if let Some(close) = head.find('|') {
            // Only parameter-position identifiers: followed by `:`, `,`,
            // or the closing pipe — not type names inside annotations.
            let params = &head[..close];
            for (word, next) in words_with_next(params) {
                if matches!(next, Some(':' | ',') | None) {
                    locals.push(word.to_string());
                }
            }
        }
    }
}

/// Start of `word` in `code` with identifier boundaries on both sides.
fn find_word(code: &str, word: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = code[from..].find(word) {
        let at = from + rel;
        let ok_left = !code[..at]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let ok_right = !code[at + word.len()..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if ok_left && ok_right {
            return Some(at);
        }
        from = at + word.len();
    }
    None
}

/// Identifiers in `s` (keywords and `_` excluded), each paired with the
/// first non-whitespace character following it.
fn words_with_next(s: &str) -> Vec<(&str, Option<char>)> {
    let mut out = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_alphanumeric() || c == '_' {
            let start = i;
            while i < bytes.len() && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let word = &s[start..i];
            let next = s[i..].chars().find(|c| !c.is_whitespace());
            if word != "_" && word != "mut" && word != "ref" {
                out.push((word, next));
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Pushes each identifier in `pattern` (skipping `mut`/`ref`/`_`) onto
/// `locals`.
fn push_idents(pattern: &str, locals: &mut Vec<String>) {
    for (word, _) in words_with_next(pattern) {
        locals.push(word.to_string());
    }
}

/// Matches one classified code line against the raw-write vocabulary:
/// [`RAW_WRITE_TOKENS`], or a statement-leading deref assignment
/// (`*p = v` and the compound forms — rustfmt puts one statement per
/// line, so the leading `*` identifies the store).
fn raw_write_token(code: &str) -> Option<&'static str> {
    for &t in RAW_WRITE_TOKENS {
        if code.contains(t) {
            return Some(t);
        }
    }
    let trimmed = code.trim_start();
    let trimmed = trimmed
        .strip_prefix("unsafe {")
        .map(str::trim_start)
        .unwrap_or(trimmed);
    if trimmed.starts_with('*') {
        for op in [" = ", " += ", " -= ", " |= ", " &= ", " ^= "] {
            if trimmed.contains(op) {
                return Some("*… = …");
            }
        }
    }
    None
}

/// Classifies the call at token index `at` (the callee identifier).
fn call_kind(toks: &[(Tok, usize)], at: usize) -> CallKind {
    if at >= 1 {
        if toks[at - 1].0 == Tok::Punct('.') {
            return CallKind::Method;
        }
        if at >= 3 && toks[at - 1].0 == Tok::Punct(':') && toks[at - 2].0 == Tok::Punct(':') {
            if let Tok::Ident(q) = &toks[at - 3].0 {
                return CallKind::Qualified(q.clone());
            }
        }
    }
    CallKind::Plain
}

/// Matches one line's code against every effect-token table and pushes
/// the events (or suppressed events, per the line's annotations) onto
/// node `node`.
fn scan_line_events(lines: &[Line], ln: usize, node: usize, out: &mut [FnNode]) {
    let code = &lines[ln].code;
    let push = |kind: EventKind, token: &str, allow: &str, out: &mut [FnNode]| {
        let ev = Event {
            kind,
            token: token.to_string(),
            line: ln + 1,
        };
        if annotated(lines, ln, allow) {
            out[node].suppressed.push(ev);
        } else {
            out[node].events.push(ev);
        }
    };
    for &t in lint::ALLOC_TOKENS.iter().chain(DEEP_ALLOC_TOKENS) {
        if code.contains(t) {
            push(EventKind::Alloc, t, ALLOW_ALLOC, out);
        }
    }
    for &t in LOCK_TOKENS {
        if code.contains(t) {
            push(EventKind::Lock, t, ALLOW_ALLOC, out);
        }
    }
    for &t in IO_TOKENS {
        if code.contains(t) {
            push(EventKind::Io, t, ALLOW_ALLOC, out);
        }
    }
    for &t in lint::NONDET_TOKENS.iter().chain(DEEP_NONDET_TOKENS) {
        if code.contains(t) {
            push(EventKind::Nondet, t, ALLOW_NONDET, out);
        }
    }
    for &t in PANIC_TOKENS {
        if has_panic_token(code, t) {
            push(EventKind::Panic, t, ALLOW_PANIC, out);
        }
    }
}

/// `true` when `code` contains panic token `t`, with `debug_assert!`
/// variants of the bang macros excluded by the token list itself (none of
/// the tokens is a substring of a `debug_…` form).
fn has_panic_token(code: &str, t: &str) -> bool {
    if let Some(bare) = t.strip_suffix('!') {
        // Bang macros must not match a prefixed identifier
        // (`my_unreachable!`).
        let mut from = 0;
        while let Some(rel) = code[from..].find(t) {
            let at = from + rel;
            let prefixed = code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
            if !prefixed {
                return true;
            }
            from = at + bare.len();
        }
        false
    } else {
        code.contains(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Vec<FnNode> {
        let mut out = Vec::new();
        parse_file("crates/render/src/tile.rs", src, &mut out);
        out
    }

    #[test]
    fn functions_methods_and_modules_are_identified() {
        let src = "\
pub fn free() {}
impl Widget {
    pub fn method(&self) {}
}
impl Display for Gauge {
    fn fmt(&self, f: &mut Formatter<'_>) -> Result {}
}
mod inner {
    fn nested_mod_fn() {}
}
";
        let nodes = parse(src);
        let ids: Vec<String> = nodes.iter().map(FnNode::id).collect();
        assert_eq!(
            ids,
            [
                "render::tile::free",
                "render::tile::Widget::method",
                "render::tile::Gauge::fmt",
                "render::tile::inner::nested_mod_fn",
            ]
        );
        assert_eq!(nodes[0].krate, "render");
    }

    #[test]
    fn calls_are_classified_and_attributed() {
        let src = "\
fn caller() {
    helper(1);
    sort::depth_key_bits(d);
    RadixSorter::new();
    pool.run(3, |i| inner_in_closure(i));
}
fn helper(_x: u32) {}
";
        let nodes = parse(src);
        let calls = &nodes[0].calls;
        let shapes: Vec<(String, CallKind)> = calls
            .iter()
            .map(|c| (c.name.clone(), c.kind.clone()))
            .collect();
        assert!(shapes.contains(&("helper".into(), CallKind::Plain)));
        assert!(shapes.contains(&("depth_key_bits".into(), CallKind::Qualified("sort".into()))));
        assert!(shapes.contains(&("new".into(), CallKind::Qualified("RadixSorter".into()))));
        assert!(shapes.contains(&("run".into(), CallKind::Method)));
        // The closure body's call belongs to `caller`, not a phantom node.
        assert!(shapes.contains(&("inner_in_closure".into(), CallKind::Plain)));
        assert!(nodes[1].calls.is_empty());
    }

    #[test]
    fn events_are_detected_and_escape_hatched() {
        let src = "\
fn noisy() {
    let v = Vec::new();
    let t = Instant::now();
    let g = m.lock();
    x.unwrap();
    // gaurast-check: allow(alloc): fixture reason
    let w = Vec::new();
}
";
        let nodes = parse(src);
        let kinds: Vec<EventKind> = nodes[0].events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::Alloc));
        assert!(kinds.contains(&EventKind::Nondet));
        assert!(kinds.contains(&EventKind::Lock));
        assert!(kinds.contains(&EventKind::Panic));
        assert_eq!(
            nodes[0]
                .suppressed
                .iter()
                .filter(|e| e.kind == EventKind::Alloc)
                .count(),
            1
        );
    }

    #[test]
    fn indexing_sites_are_events_but_attributes_are_not() {
        let src = "\
#[derive(Debug)]
fn f(xs: &[u32], i: usize) -> u32 {
    let a: &mut [u32] = other;
    let v = vec![0; 4];
    xs[i]
}
";
        let nodes = parse(src);
        let idx: Vec<&Event> = nodes[0]
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Index)
            .collect();
        assert_eq!(idx.len(), 1, "{:?}", nodes[0].events);
        assert_eq!(idx[0].line, 5);
    }

    #[test]
    fn nested_fn_events_do_not_leak_to_parent() {
        let src = "\
fn outer() {
    fn inner() {
        let v = Vec::new();
    }
    inner();
}
";
        let nodes = parse(src);
        let outer = nodes.iter().find(|n| n.name == "outer").unwrap();
        let inner = nodes.iter().find(|n| n.name == "inner").unwrap();
        assert!(outer.events.iter().all(|e| e.kind != EventKind::Alloc));
        assert!(inner.events.iter().any(|e| e.kind == EventKind::Alloc));
        assert!(outer.calls.iter().any(|c| c.name == "inner"));
    }

    #[test]
    fn hot_marker_is_read_from_the_comment_block() {
        let src = "\
// gaurast-check: hot-path
pub fn hot() {}
pub fn cold() {}
";
        let nodes = parse(src);
        assert!(nodes[0].hot_marker);
        assert!(!nodes[1].hot_marker);
    }

    #[test]
    fn test_regions_are_skipped() {
        let src = "\
fn prod() {}
#[cfg(test)]
mod tests {
    fn t() { Vec::new(); }
}
";
        let nodes = parse(src);
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].name, "prod");
    }

    #[test]
    fn uncovered_unsafe_writes_are_events() {
        let src = "\
fn scatter(out: *mut u32, i: usize, v: u32) {
    unsafe {
        *out.add(i) = v;
    }
}
";
        let nodes = parse(src);
        let ev: Vec<&Event> = nodes[0]
            .events
            .iter()
            .filter(|e| e.kind == EventKind::UnsafeWrite)
            .collect();
        assert_eq!(ev.len(), 1, "{:?}", nodes[0].events);
        assert_eq!(ev[0].line, 3);
        assert_eq!(ev[0].token, "*… = …");
    }

    #[test]
    fn race_region_covers_unsafe_writes() {
        let src = "\
fn scatter(out: *mut u32, i: usize, v: u32) {
    crate::race_region!(\"slot\", {
        crate::race_write!(out.wrapping_add(i), 1);
        unsafe {
            *out.add(i) = v;
        }
    });
}
";
        let nodes = parse(src);
        assert!(
            nodes[0]
                .events
                .iter()
                .all(|e| e.kind != EventKind::UnsafeWrite),
            "{:?}",
            nodes[0].events
        );
    }

    #[test]
    fn allow_race_suppresses_but_is_counted() {
        let src = "\
fn handout(&self, i: usize) -> &mut u32 {
    // gaurast-check: allow(race): range registered at every call site
    unsafe { &mut *self.slots[i].get() }
}
";
        let nodes = parse(src);
        assert!(
            nodes[0]
                .events
                .iter()
                .all(|e| e.kind != EventKind::UnsafeWrite),
            "{:?}",
            nodes[0].events
        );
        assert_eq!(
            nodes[0]
                .suppressed
                .iter()
                .filter(|e| e.kind == EventKind::UnsafeWrite)
                .count(),
            1
        );
    }

    #[test]
    fn mutable_view_constructors_match_inside_unsafe() {
        let src = "\
fn rows(out: *mut u32, n: usize) {
    unsafe {
        let s = std::slice::from_raw_parts_mut(out, n);
        s.fill(0);
    }
}
";
        let nodes = parse(src);
        let ev: Vec<&Event> = nodes[0]
            .events
            .iter()
            .filter(|e| e.kind == EventKind::UnsafeWrite)
            .collect();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].token, "from_raw_parts_mut");
    }

    #[test]
    fn safe_code_and_unsafe_reads_are_not_write_events() {
        let src = "\
fn safe_assign(x: &mut u32, v: u32) {
    *x = v;
}
fn unsafe_read(p: *const u32) -> u32 {
    unsafe { *p }
}
";
        let nodes = parse(src);
        for n in &nodes {
            assert!(
                n.events.iter().all(|e| e.kind != EventKind::UnsafeWrite),
                "{}: {:?}",
                n.name,
                n.events
            );
        }
    }

    #[test]
    fn single_line_unsafe_deref_write_matches() {
        let src = "\
fn store(&self, c: usize, n: usize) {
    *unsafe { self.counts.slot(c) } = n;
}
";
        let nodes = parse(src);
        assert_eq!(
            nodes[0]
                .events
                .iter()
                .filter(|e| e.kind == EventKind::UnsafeWrite)
                .count(),
            1
        );
    }

    #[test]
    fn module_paths_from_file_layout() {
        assert_eq!(
            module_of("crates/render/src/tile.rs"),
            ("render".into(), "render::tile".into())
        );
        assert_eq!(
            module_of("crates/core/src/service/mod.rs"),
            ("core".into(), "core::service".into())
        );
        assert_eq!(module_of("src/lib.rs"), (".".into(), ".".into()));
    }
}
