//! Call-site resolution: from textual [`Call`]s to graph edges.
//!
//! The parser in [`crate::graph`] records *what a call site says*; this
//! module decides *which workspace functions it can mean*. Resolution is
//! deliberately conservative in both directions:
//!
//! * **Over-approximate where cheap** — a method call `.run(…)` with an
//!   unknown receiver type edges to *every visible* method named `run`,
//!   so a transitive analysis never misses a path because type inference
//!   was too hard for a dependency-free checker.
//! * **Count what it cannot see** — a plain call whose name matches no
//!   visible function (a function pointer, a re-exported std item, a
//!   macro-generated shim) becomes an [`Unresolved`] record. The deep
//!   rules report the count; nothing is silently dropped.
//!
//! Visibility follows the crate graph: each `crates/*/Cargo.toml` is
//! scanned for `gaurast-*` dependencies, and a call in crate `render` can
//! only resolve into `render` itself and the crates it depends on. That
//! keeps name collisions across unrelated crates (every crate has a
//! `new`) from wiring the graph into one blob.
//!
//! Method and qualified names that belong to `std`'s ubiquitous
//! vocabulary (`push`, `clone`, `len`, `lock`, …) resolve **external**:
//! their effects are already captured as line-level events at the call
//! site (`.lock(` is a lock event, `.clone(` an alloc token), so edging
//! them into same-named workspace methods would only manufacture false
//! paths. They are tallied in [`Resolution::external_calls`].

use crate::graph::{Call, CallGraph, CallKind};
use std::collections::HashMap;
use std::path::Path;

/// Qualifiers that always denote non-workspace items: `Vec::new`,
/// `f32::max`, `Ordering::Relaxed`-style constructor/method paths whose
/// effects (if any) are caught token-wise at the call site.
const STD_QUALIFIERS: &[&str] = &[
    "Vec",
    "String",
    "Box",
    "Arc",
    "Rc",
    "Cell",
    "RefCell",
    "Option",
    "Result",
    "Some",
    "None",
    "Ok",
    "Err",
    "Ordering",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "VecDeque",
    "Instant",
    "Duration",
    "SystemTime",
    "Mutex",
    "RwLock",
    "Condvar",
    "AtomicUsize",
    "AtomicU32",
    "AtomicU64",
    "AtomicBool",
    "AtomicPtr",
    "PhantomData",
    "Iterator",
    "IntoIterator",
    "Default",
    "Clone",
    "Copy",
    "Debug",
    "Display",
    "From",
    "Into",
    "TryFrom",
    "TryInto",
    "PartialOrd",
    "PartialEq",
    "Hash",
    "Drop",
    "f32",
    "f64",
    "u8",
    "u16",
    "u32",
    "u64",
    "usize",
    "i8",
    "i16",
    "i32",
    "i64",
    "isize",
    "bool",
    "char",
    "str",
    "mem",
    "ptr",
    "slice",
    "array",
    "iter",
    "fmt",
    "env",
    "fs",
    "io",
    "thread",
    "time",
    "cmp",
    "num",
    "ops",
    "process",
    "File",
    "Path",
    "PathBuf",
    "OsStr",
    "OsString",
    "NonZeroUsize",
    "NonZeroU32",
    "Write",
    "Read",
    "BufWriter",
    "BufReader",
    "Error",
    "Poll",
    "Wrapping",
    "Range",
    "Rev",
    "Reverse",
];

/// Method names so ubiquitous across `std` and the workspace that an
/// unknown-receiver edge to every same-named method would be noise, not
/// analysis. Their effects are line-level events at the call site.
const UBIQUITOUS_METHODS: &[&str] = &[
    "clone",
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "map",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok_or",
    "ok_or_else",
    "filter",
    "fold",
    "sum",
    "min",
    "max",
    "count",
    "collect",
    "extend",
    "clear",
    "resize",
    "truncate",
    "reserve",
    "as_ref",
    "as_mut",
    "as_slice",
    "as_str",
    "as_bytes",
    "to_vec",
    "to_string",
    "to_owned",
    "into",
    "try_into",
    "from",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "fmt",
    "display",
    "drain",
    "split_at",
    "split_at_mut",
    "chunks",
    "chunks_mut",
    "chunks_exact",
    "chunks_exact_mut",
    "get_or_init",
    "windows",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "binary_search",
    "binary_search_by",
    "swap",
    "fill",
    "copy_from_slice",
    "clone_from_slice",
    "first",
    "last",
    "take",
    "replace",
    "zip",
    "enumerate",
    "rev",
    "skip",
    "chain",
    "flat_map",
    "flatten",
    "any",
    "all",
    "find",
    "position",
    "retain",
    "entry",
    "or_insert",
    "or_insert_with",
    "keys",
    "values",
    "join",
    "spawn",
    "lock",
    "read",
    "write",
    "load",
    "store",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "compare_exchange",
    "compare_exchange_weak",
    "wait",
    "notify_all",
    "notify_one",
    "abs",
    "sqrt",
    "floor",
    "ceil",
    "round",
    "exp",
    "ln",
    "powi",
    "powf",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "to_bits",
    "from_bits",
    "is_finite",
    "is_nan",
    "clamp",
    "saturating_sub",
    "saturating_add",
    "wrapping_add",
    "wrapping_sub",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "unwrap",
    "expect",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "ok",
    "err",
    "starts_with",
    "ends_with",
    "trim",
    "split",
    "splitn",
    "split_once",
    "lines",
    "chars",
    "bytes",
    "parse",
    "push_str",
    "repeat",
    "finish",
    "write_all",
    "flush",
    "read_to_string",
    "read_to_end",
    "elapsed",
    "duration_since",
    "as_secs",
    "as_millis",
    "as_micros",
    "as_nanos",
    "as_secs_f64",
    "step_by",
    "take_while",
    "skip_while",
    "peekable",
    "peek",
    "cloned",
    "copied",
    "inspect",
    "then",
    "then_some",
    "map_or",
    "map_or_else",
    "is_some_and",
    "is_none_or",
    "exp2",
    "log2",
    "mul_add",
    "rem_euclid",
    "div_euclid",
    "to_le_bytes",
    "from_le_bytes",
    "leading_zeros",
    "trailing_zeros",
    "count_ones",
    "rotate_left",
    "rotate_right",
    "next_power_of_two",
    "map_err",
    "map_while",
    "and",
    "or",
    "xor",
    "rposition",
    "rfind",
    "rsplit",
    "trim_end",
    "trim_start",
    "write_str",
    "write_fmt",
    "div_ceil",
    "pow",
    "signum",
    "copysign",
    "fract",
    "trunc",
    "recip",
    "hypot",
    "atan2",
    "sin",
    "cos",
    "tan",
    "asin",
    "acos",
    "atan",
    "to_degrees",
    "to_radians",
    "get_or_insert_with",
    "push_back",
    "push_front",
    "pop_front",
    "pop_back",
    "front",
    "back",
    "find_map",
    "filter_map",
    "char_indices",
    "nth",
    "next_back",
    "last_mut",
    "first_mut",
    "strip_prefix",
    "strip_suffix",
    "as_deref",
    "as_mut_slice",
    "to_ascii_lowercase",
    "to_ascii_uppercase",
    "swap_remove",
    "dedup",
    "concat",
    "rsplitn",
    "scan",
    "by_ref",
    "fuse",
    "cycle",
    "product",
    "try_fold",
    "for_each",
    "partition",
    "unzip",
    "resize_with",
    "into_inner",
    "total_cmp",
    "unsigned_abs",
    "saturating_mul",
    "wrapping_mul",
    "log10",
    "cbrt",
    "extend_from_slice",
    "as_ptr",
    "as_mut_ptr",
    "as_deref_mut",
    "read_line",
    "read_exact",
    "canonicalize",
    "unpark",
    "park",
    "append",
    "into_bytes",
    "partition_point",
    "copy_within",
    "shrink_to_fit",
    "thread",
    "debug_struct",
    "debug_tuple",
    "field",
    "finish_non_exhaustive",
    // Vendored-rand vocabulary: the RNG is a workspace-vendored external
    // whose sources sit outside the graph's `src/` trees.
    "gen_range",
    "fill_bytes",
    "next_u32",
    "next_u64",
    "seed_from_u64",
];

/// Workspace methods and constructors defined *inside* `macro_rules!`
/// bodies (`impl_vec_common!` in `crates/math/src/vec.rs`): the parser
/// skips macro bodies (they are token soup), so these never become graph
/// nodes, and a call through them cannot edge anywhere. They are pure
/// value math — the math crate is `#![forbid(unsafe_code)]` and under the
/// full line-lint — so resolving them external loses no effects.
const MACRO_IMPL_METHODS: &[&str] = &[
    "splat",
    "zero",
    "one",
    "dot",
    "hadamard",
    "length",
    "length_squared",
    "lerp",
    "normalized",
    "try_normalized",
    "max_component",
    "min_component",
];

/// Free-function names resolved external when no workspace match exists
/// in the caller's visibility set (std preludes and well-known paths).
const STD_FREE_FNS: &[&str] = &[
    "drop",
    "min",
    "max",
    "swap",
    "take",
    "replace",
    "size_of",
    "align_of",
    "transmute",
    "from_fn",
    "once",
    "repeat",
    "empty",
    "available_parallelism",
    "var",
    "vars",
    "scope",
    "sleep",
    "yield_now",
    "current",
    "channel",
    "sync_channel",
    "black_box",
    "identity",
    "abs",
    "sqrt",
    // `#[cfg(not(...))]` predicates parse as plain calls; `not` is also
    // `std::ops::Not` — either way, no workspace body to edge to.
    "not",
];

/// Workspace kernels defined *inside* `macro_rules!` bodies
/// (`stage1_kernel!` in `crates/render/src/simd/stage1.rs`): like
/// [`MACRO_IMPL_METHODS`], the parser skips macro bodies, so these never
/// become graph nodes. Their bodies are straight-line per-lane register
/// math over `core::arch` intrinsics — no allocation, no panic path, no
/// ambient input — and the file sits in the line lint's `HOT_FILES` set,
/// which polices macro-body text too (the line rules are textual).
const MACRO_KERNEL_FNS: &[&str] = &["group_sse", "group_avx2"];

/// `core::arch::x86_64` vector intrinsics (`_mm_add_ps`,
/// `_mm256_blendv_ps`, …): per-lane register value math with no effects
/// the deep rules track — no allocation, no panics, deterministic. The
/// `unsafe` / `#[target_feature]` discipline around them is the line
/// lint's SAFETY-comment rule, not a call-graph property.
fn is_vector_intrinsic(name: &str) -> bool {
    name.starts_with("_mm_") || name.starts_with("_mm256_")
}

/// One call site the resolver could not map to any workspace function or
/// known-external vocabulary. Counted and reported, never dropped.
#[derive(Clone, Debug)]
pub struct Unresolved {
    /// Index of the calling node in the graph.
    pub caller: usize,
    /// Callee name as written at the site.
    pub name: String,
    /// 1-based source line of the site.
    pub line: usize,
}

/// The resolved call graph: adjacency over [`CallGraph`] node indices
/// plus the conservative remainder.
#[derive(Clone, Debug, Default)]
pub struct Resolution {
    /// `edges[i]` = indices of nodes that node `i` may call, deduplicated,
    /// paired with the source line of (one of) the call site(s).
    pub edges: Vec<Vec<(usize, usize)>>,
    /// Call sites mapped to the known-external vocabulary (std methods,
    /// std qualifiers, prelude free functions).
    pub external_calls: usize,
    /// Call sites that matched nothing — reported by every deep rule.
    pub unresolved: Vec<Unresolved>,
}

impl Resolution {
    /// Total number of graph edges.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }
}

/// Per-crate visibility: which crate keys a caller crate can see.
#[derive(Clone, Debug, Default)]
pub struct CrateDeps {
    deps: HashMap<String, Vec<String>>,
}

impl CrateDeps {
    /// Scans `crates/*/Cargo.toml` (and the workspace-root manifest)
    /// under `root`. Dependency lines are matched against the *package
    /// names* the manifests declare (`gaurast`, `gaurast-render`, …) and
    /// mapped back to directory keys (`core`, `render`, …) — the
    /// directory name and the package name differ for the facade crate.
    /// The relation is then closed transitively: the facade re-exports
    /// its dependencies wholesale, so depending on it effectively makes
    /// everything it sees visible. When no manifest is found at all —
    /// fixture trees in tests — every crate sees every other, which is
    /// the conservative direction.
    pub fn discover(root: &Path) -> Self {
        // Pass 1: (package name, directory key) for every crate.
        let mut manifests: Vec<(String, String)> = Vec::new(); // (key, manifest text)
        let crates_dir = root.join("crates");
        if let Ok(entries) = std::fs::read_dir(&crates_dir) {
            for entry in entries.flatten() {
                let key = entry.file_name().to_string_lossy().into_owned();
                if let Ok(manifest) = std::fs::read_to_string(entry.path().join("Cargo.toml")) {
                    manifests.push((key, manifest));
                }
            }
        }
        if let Ok(manifest) = std::fs::read_to_string(root.join("Cargo.toml")) {
            manifests.push((".".to_string(), manifest));
        }
        let names: Vec<(String, String)> = manifests
            .iter()
            .filter_map(|(key, manifest)| package_name(manifest).map(|pkg| (pkg, key.clone())))
            .collect();

        // Pass 2: dependency lines → directory keys.
        let mut deps: HashMap<String, Vec<String>> = HashMap::new();
        for (key, manifest) in &manifests {
            deps.insert(key.clone(), parse_workspace_deps(manifest, &names, key));
        }
        // Transitive closure (the graph is tiny; iterate to fixpoint).
        loop {
            let mut grew = false;
            let keys: Vec<String> = deps.keys().cloned().collect();
            for k in &keys {
                let reachable: Vec<String> = deps[k]
                    .iter()
                    .flat_map(|d| deps.get(d).cloned().unwrap_or_default())
                    .collect();
                let entry = deps.get_mut(k).expect("key enumerated above");
                for r in reachable {
                    if r != *k && !entry.contains(&r) {
                        entry.push(r);
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
        }
        CrateDeps { deps }
    }

    /// `true` when code in `from` may call into `to` (same crate, a
    /// declared dependency, or no manifest information at all).
    pub fn visible(&self, from: &str, to: &str) -> bool {
        if from == to || self.deps.is_empty() {
            return true;
        }
        self.deps
            .get(from)
            .is_some_and(|ds| ds.iter().any(|d| d == to))
    }
}

/// First `name = "…"` value in a manifest (the `[package]` name; every
/// workspace manifest puts `[package]` before any dependency tables).
fn package_name(manifest: &str) -> Option<String> {
    for line in manifest.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start().strip_prefix('=')?.trim_start();
            let rest = rest.strip_prefix('"')?;
            return rest.split('"').next().map(str::to_string);
        }
    }
    None
}

/// Extracts workspace-internal dependency keys from a manifest: every
/// line whose key (the token before `=`, `.`, or whitespace) equals a
/// known package name maps to that package's directory key. Covers both
/// `gaurast-math = { path = … }` and `gaurast-math.workspace = true`
/// spellings. A line scan is enough — the manifests are machine-regular.
fn parse_workspace_deps(manifest: &str, names: &[(String, String)], own_key: &str) -> Vec<String> {
    let mut out = Vec::new();
    for line in manifest.lines() {
        let line = line.trim();
        let dep: String = line
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == '-')
            .collect();
        if dep.is_empty() {
            continue;
        }
        if let Some((_, key)) = names.iter().find(|(pkg, _)| *pkg == dep) {
            if key != own_key && !out.contains(key) {
                out.push(key.clone());
            }
        }
    }
    out
}

/// Resolves every call site in `graph` against the crate-visibility map.
pub fn resolve(graph: &CallGraph, deps: &CrateDeps) -> Resolution {
    // Indexes: free functions by name, methods by name, methods by
    // (owner, name), and the set of owner type names per crate.
    let mut free_by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut methods_by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut by_owner: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
    let mut modules: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, n) in graph.nodes.iter().enumerate() {
        match &n.owner {
            Some(owner) => {
                methods_by_name.entry(&n.name).or_default().push(i);
                by_owner.entry((owner, &n.name)).or_default().push(i);
            }
            None => {
                free_by_name.entry(&n.name).or_default().push(i);
                if let Some(last) = n.module.rsplit("::").next() {
                    modules.entry(last).or_default().push(i);
                }
            }
        }
    }

    let mut res = Resolution {
        edges: vec![Vec::new(); graph.nodes.len()],
        ..Resolution::default()
    };

    for (caller, node) in graph.nodes.iter().enumerate() {
        for call in &node.calls {
            let targets = resolve_one(
                graph,
                deps,
                caller,
                call,
                &free_by_name,
                &methods_by_name,
                &by_owner,
                &modules,
            );
            match targets {
                Targets::Workspace(ts) => {
                    for t in ts {
                        if !res.edges[caller].iter().any(|&(e, _)| e == t) {
                            res.edges[caller].push((t, call.line));
                        }
                    }
                }
                Targets::External => res.external_calls += 1,
                Targets::Unresolved => res.unresolved.push(Unresolved {
                    caller,
                    name: call.name.clone(),
                    line: call.line,
                }),
            }
        }
    }
    res
}

/// Workspace functions are snake_case throughout; an uppercase-initial
/// callee is a tuple-struct/variant constructor or trait-bound sugar.
fn is_constructor(name: &str) -> bool {
    name.chars().next().is_some_and(char::is_uppercase)
}

enum Targets {
    Workspace(Vec<usize>),
    External,
    Unresolved,
}

#[allow(clippy::too_many_arguments)]
fn resolve_one(
    graph: &CallGraph,
    deps: &CrateDeps,
    caller: usize,
    call: &Call,
    free_by_name: &HashMap<&str, Vec<usize>>,
    methods_by_name: &HashMap<&str, Vec<usize>>,
    by_owner: &HashMap<(&str, &str), Vec<usize>>,
    modules: &HashMap<&str, Vec<usize>>,
) -> Targets {
    let node = &graph.nodes[caller];
    let vis = |i: &usize| deps.visible(&node.krate, &graph.nodes[*i].krate);
    match &call.kind {
        CallKind::Plain => {
            // Same file first (the overwhelmingly common shape), then any
            // visible free function of that name.
            if let Some(cands) = free_by_name.get(call.name.as_str()) {
                let same_file: Vec<usize> = cands
                    .iter()
                    .filter(|&&i| graph.nodes[i].file == node.file)
                    .copied()
                    .collect();
                if !same_file.is_empty() {
                    return Targets::Workspace(same_file);
                }
                let visible: Vec<usize> = cands.iter().filter(|i| vis(i)).copied().collect();
                if !visible.is_empty() {
                    return Targets::Workspace(visible);
                }
            }
            if node.locals.iter().any(|l| l == &call.name) {
                // A parameter or `let`-bound closure: the invocation runs
                // a body the graph attributes elsewhere (closure bodies
                // belong to the function that *defines* them), so the
                // call site itself adds no edge.
                return Targets::External;
            }
            if STD_FREE_FNS.contains(&call.name.as_str())
                || MACRO_KERNEL_FNS.contains(&call.name.as_str())
                || is_vector_intrinsic(&call.name)
                || is_constructor(&call.name)
            {
                // Uppercase-initial callees are tuple-struct or enum
                // variant constructors (`InvalidConfig(msg)`, `Cuda(id)`)
                // or trait-bound sugar (`Fn(…)`): data construction, not
                // calls into function bodies.
                Targets::External
            } else {
                Targets::Unresolved
            }
        }
        CallKind::Qualified(q) => {
            // `Self::name` → the caller's own impl block.
            let owner_key = if q == "Self" {
                node.owner.as_deref()
            } else {
                Some(q.as_str())
            };
            if let Some(owner) = owner_key {
                if let Some(cands) = by_owner.get(&(owner, call.name.as_str())) {
                    let visible: Vec<usize> = cands.iter().filter(|i| vis(i)).copied().collect();
                    if !visible.is_empty() {
                        return Targets::Workspace(visible);
                    }
                }
            }
            // `module::free_fn(…)` — qualifier is a module's last segment.
            if let Some(cands) = modules.get(q.as_str()) {
                let visible: Vec<usize> = cands
                    .iter()
                    .filter(|&&i| graph.nodes[i].name == call.name && vis(&i))
                    .copied()
                    .collect();
                if !visible.is_empty() {
                    return Targets::Workspace(visible);
                }
            }
            if STD_QUALIFIERS.contains(&q.as_str())
                || q.chars().next().is_some_and(char::is_lowercase)
            {
                // Unknown lowercase qualifiers are external modules
                // (`std`, `cmp`, `arch`); their effects are token events.
                Targets::External
            } else if UBIQUITOUS_METHODS.contains(&call.name.as_str())
                || MACRO_IMPL_METHODS.contains(&call.name.as_str())
                || call.name == "new"
                || call.name == "default"
                || call.name == "with_capacity"
                || is_constructor(&call.name)
            {
                // `SomeExternalType::new(…)` — constructor vocabulary on a
                // type the workspace does not define — or an enum variant
                // path (`ServiceError::InvalidConfig(…)`).
                Targets::External
            } else {
                Targets::Unresolved
            }
        }
        CallKind::Method => {
            if UBIQUITOUS_METHODS.contains(&call.name.as_str())
                || MACRO_IMPL_METHODS.contains(&call.name.as_str())
            {
                return Targets::External;
            }
            if let Some(cands) = methods_by_name.get(call.name.as_str()) {
                let visible: Vec<usize> = cands.iter().filter(|i| vis(i)).copied().collect();
                if !visible.is_empty() {
                    // Receiver type unknown: edge to every visible method
                    // of this name (conservative fan-out).
                    return Targets::Workspace(visible);
                }
            }
            Targets::Unresolved
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CallGraph;

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let mut g = CallGraph::default();
        for (rel, content) in files {
            g.files += 1;
            crate::graph::parse_file(rel, content, &mut g.nodes);
        }
        g
    }

    #[test]
    fn plain_calls_prefer_same_file_then_visible() {
        let g = graph_of(&[
            (
                "crates/render/src/tile.rs",
                "fn caller() { helper(); }\nfn helper() {}\n",
            ),
            ("crates/math/src/vec.rs", "pub fn helper() {}\n"),
        ]);
        let res = resolve(&g, &CrateDeps::default());
        let caller = g.nodes.iter().position(|n| n.name == "caller").unwrap();
        assert_eq!(res.edges[caller].len(), 1);
        let (t, _) = res.edges[caller][0];
        assert_eq!(g.nodes[t].file, "crates/render/src/tile.rs");
    }

    #[test]
    fn qualified_calls_resolve_by_owner_and_module() {
        let g = graph_of(&[
            (
                "crates/render/src/tile.rs",
                "fn caller() { sort::depth_key(1.0); RadixSorter::new(); }\n",
            ),
            (
                "crates/render/src/sort.rs",
                "pub fn depth_key(_d: f32) {}\nimpl RadixSorter { pub fn new() {} }\n",
            ),
        ]);
        let res = resolve(&g, &CrateDeps::default());
        let caller = g.nodes.iter().position(|n| n.name == "caller").unwrap();
        assert_eq!(res.edges[caller].len(), 2, "{:?}", res.edges[caller]);
    }

    #[test]
    fn self_calls_resolve_into_own_impl() {
        let g = graph_of(&[(
            "crates/render/src/pool.rs",
            "impl WorkerPool { fn a(&self) { Self::b(); } fn b() {} }\n",
        )]);
        let res = resolve(&g, &CrateDeps::default());
        let a = g.nodes.iter().position(|n| n.name == "a").unwrap();
        let b = g.nodes.iter().position(|n| n.name == "b").unwrap();
        assert_eq!(res.edges[a], vec![(b, 1)]);
    }

    #[test]
    fn ubiquitous_methods_are_external_not_edges() {
        let g = graph_of(&[(
            "crates/render/src/tile.rs",
            "fn caller(v: &mut Vec<u32>) { v.push(1); v.clone(); }\nimpl Thing { fn push(&self) {} }\n",
        )]);
        let res = resolve(&g, &CrateDeps::default());
        let caller = g.nodes.iter().position(|n| n.name == "caller").unwrap();
        assert!(res.edges[caller].is_empty());
        assert_eq!(res.external_calls, 2);
    }

    #[test]
    fn unknown_calls_are_counted_not_dropped() {
        let g = graph_of(&[(
            "crates/render/src/tile.rs",
            "fn caller() { mystery_fn(); thing.mystery_method(); }\n",
        )]);
        let res = resolve(&g, &CrateDeps::default());
        assert_eq!(res.unresolved.len(), 2, "{:?}", res.unresolved);
        assert!(res.unresolved.iter().any(|u| u.name == "mystery_fn"));
        assert!(res.unresolved.iter().any(|u| u.name == "mystery_method"));
    }

    #[test]
    fn crate_visibility_gates_cross_crate_edges() {
        let g = graph_of(&[
            ("crates/render/src/tile.rs", "fn caller() { shared(); }\n"),
            ("crates/math/src/vec.rs", "pub fn shared() {}\n"),
            ("crates/hw/src/unit.rs", "pub fn shared() {}\n"),
        ]);
        let mut deps = CrateDeps::default();
        deps.deps
            .insert("render".to_string(), vec!["math".to_string()]);
        deps.deps.insert("math".to_string(), Vec::new());
        deps.deps.insert("hw".to_string(), Vec::new());
        let res = resolve(&g, &deps);
        let caller = g.nodes.iter().position(|n| n.name == "caller").unwrap();
        assert_eq!(res.edges[caller].len(), 1);
        let (t, _) = res.edges[caller][0];
        assert_eq!(g.nodes[t].krate, "math");
    }

    #[test]
    fn manifest_dep_parsing_handles_both_spellings_and_facade_names() {
        let names = vec![
            ("gaurast-math".to_string(), "math".to_string()),
            ("gaurast-scene".to_string(), "scene".to_string()),
            ("gaurast".to_string(), "core".to_string()),
        ];
        let manifest = "\
[package]
name = \"gaurast-bench\"

[dependencies]
gaurast-math = { path = \"../math\" }
gaurast-scene.workspace = true
gaurast.workspace = true
serde = \"1\"
";
        let deps = parse_workspace_deps(manifest, &names, "bench");
        assert_eq!(deps, ["math", "scene", "core"]);
        assert_eq!(package_name(manifest).as_deref(), Some("gaurast-bench"));
    }
}
