//! The model-checking driver: exhaustive depth-first schedule enumeration
//! with a seeded random-sampling fallback for large interleavings.
//!
//! ```
//! use gaurast_check::model::Model;
//! use gaurast_check::shadow::{scope, AtomicUsize};
//! use std::sync::atomic::Ordering;
//!
//! let report = Model::new()
//!     .check(|| {
//!         let cursor = AtomicUsize::new(0);
//!         scope(|s| {
//!             for _ in 0..2 {
//!                 s.spawn(|| while cursor.fetch_add(1, Ordering::Relaxed) < 3 {});
//!             }
//!         });
//!         assert!(cursor.into_inner() >= 4);
//!     })
//!     .expect("protocol holds on every schedule");
//! assert!(report.schedules >= 1);
//! ```
//!
//! The closure runs once per schedule. It must be deterministic given the
//! schedule (no wall clock, no ambient randomness — the same discipline
//! the renderer's deterministic pipeline already follows), and it should
//! `assert!` its protocol invariants either inside the spawned jobs or
//! after the scope joins. Any panic on any shadow thread is caught,
//! attributed to the schedule that produced it, and returned as a
//! [`Violation`] carrying the reproduction trace.

use crate::rng::XorShift64;
use crate::sched::{self, format_schedule, Decision, Execution, Strategy, ABORT_MSG};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, Once, OnceLock};

/// A schedule-dependent failure found by [`Model::check`].
#[derive(Clone, Debug)]
pub struct Violation {
    /// The panic/assertion message of the first failing thread.
    pub message: String,
    /// The decision trace that produced the failure (`T0→T1→T1`).
    pub schedule: String,
    /// Schedules run before (and including) the failing one.
    pub schedules_explored: usize,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "schedule {} (after {} schedules): {}",
            self.schedule, self.schedules_explored, self.message
        )
    }
}

/// Summary of a completed (violation-free) check.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Total schedules executed (enumerated + sampled).
    pub schedules: usize,
    /// `true` when depth-first enumeration covered the *entire* decision
    /// tree — every sequentially consistent interleaving of the modeled
    /// operations was executed.
    pub exhaustive: bool,
    /// Longest decision sequence seen (a size measure of the state space).
    pub max_decisions: usize,
}

/// Configuration and entry point of the checker (see module docs).
#[derive(Clone, Copy, Debug)]
pub struct Model {
    max_schedules: usize,
    samples: usize,
    seed: u64,
    max_ops: u64,
}

impl Default for Model {
    fn default() -> Self {
        Self {
            max_schedules: 20_000,
            samples: 256,
            seed: 0x6761_7572_6173_7421, // "gaurast!"
            max_ops: 5_000_000,
        }
    }
}

/// Serializes model runs within the process: the scheduler uses
/// thread-local identity plus a filtering panic hook, and overlapping
/// checks from parallel `cargo test` threads would interleave their
/// schedule output.
static CHECK_LOCK: OnceLock<Mutex<()>> = OnceLock::new();

/// Installs (once) a panic hook that silences panics raised on shadow
/// threads — expected-panic noise from mutant detection and poisoned-run
/// unwinding — while delegating every other panic to the previous hook.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if sched::current().is_some() {
                return; // a model run: the driver reports the violation
            }
            previous(info);
        }));
    });
}

impl Model {
    /// The default configuration: exhaustive up to 20 000 schedules, then
    /// 256 seeded random samples.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap on depth-first enumeration before switching to sampling.
    pub fn max_schedules(mut self, n: usize) -> Self {
        self.max_schedules = n.max(1);
        self
    }

    /// Random schedules to sample when enumeration does not finish under
    /// the cap.
    pub fn samples(mut self, n: usize) -> Self {
        self.samples = n;
        self
    }

    /// Seed of the sampling PRNG (the same seed replays the same sampled
    /// schedule sequence).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Per-schedule yield-point budget (livelock guard).
    pub fn max_ops(mut self, n: u64) -> Self {
        self.max_ops = n.max(1);
        self
    }

    /// Runs `f` under every enumerated schedule (falling back to sampling
    /// past the cap). Returns the first [`Violation`] found, or a
    /// [`Report`] when every executed schedule upheld the invariants.
    pub fn check<F>(&self, f: F) -> Result<Report, Violation>
    where
        F: Fn(),
    {
        let _guard = CHECK_LOCK
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        install_quiet_hook();

        let mut schedules = 0usize;
        let mut max_decisions = 0usize;
        let mut prefix: Vec<usize> = Vec::new();
        while schedules < self.max_schedules {
            let strategy = Strategy::Replay {
                prefix: prefix.clone(),
            };
            let (decisions, failure) = self.run_once(strategy, &f);
            schedules += 1;
            max_decisions = max_decisions.max(decisions.len());
            if let Some(message) = failure {
                return Err(Violation {
                    message,
                    schedule: format_schedule(&decisions),
                    schedules_explored: schedules,
                });
            }
            match backtrack(decisions) {
                Some(next_prefix) => prefix = next_prefix,
                None => {
                    return Ok(Report {
                        schedules,
                        exhaustive: true,
                        max_decisions,
                    })
                }
            }
        }

        let mut rng = XorShift64::new(self.seed);
        for _ in 0..self.samples {
            let strategy = Strategy::Random {
                rng: XorShift64::new(rng.next_u64()),
            };
            let (decisions, failure) = self.run_once(strategy, &f);
            schedules += 1;
            max_decisions = max_decisions.max(decisions.len());
            if let Some(message) = failure {
                return Err(Violation {
                    message,
                    schedule: format_schedule(&decisions),
                    schedules_explored: schedules,
                });
            }
        }
        Ok(Report {
            schedules,
            exhaustive: false,
            max_decisions,
        })
    }

    /// One serialized run of `f` under `strategy` on the calling thread
    /// (shadow thread 0).
    fn run_once<F: Fn()>(&self, strategy: Strategy, f: &F) -> (Vec<Decision>, Option<String>) {
        let exec = Execution::new(strategy, self.max_ops);
        sched::set_current(std::sync::Arc::clone(&exec), 0);
        let result = catch_unwind(AssertUnwindSafe(f));
        sched::clear_current();
        let (decisions, poisoned) = exec.take_results();
        let failure = match result {
            Ok(()) => poisoned,
            Err(payload) => {
                let msg = crate::shadow::panic_message(payload.as_ref());
                // The controller unwinding with ABORT_MSG means a *child*
                // failed first and its message is in the poison slot.
                Some(poisoned.unwrap_or(msg).replace(ABORT_MSG, "aborted"))
            }
        };
        (decisions, failure)
    }
}

/// Depth-first backtracking: drop trailing decisions that took their last
/// option, advance the deepest one that has options left, and return the
/// forced prefix for the next run — or `None` when the tree is exhausted.
fn backtrack(mut decisions: Vec<Decision>) -> Option<Vec<usize>> {
    loop {
        let last = decisions.pop()?;
        if last.chosen + 1 < last.options {
            let mut prefix: Vec<usize> = decisions.iter().map(|d| d.chosen).collect();
            prefix.push(last.chosen + 1);
            return Some(prefix);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shadow::{scope, AtomicUsize};
    use std::sync::atomic::Ordering;

    #[test]
    fn single_threaded_closure_is_one_schedule() {
        let report = Model::new()
            .check(|| {
                let a = AtomicUsize::new(1);
                assert_eq!(a.load(Ordering::SeqCst), 1);
            })
            .expect("no violation");
        assert_eq!(report.schedules, 1);
        assert!(report.exhaustive);
        assert_eq!(report.max_decisions, 0);
    }

    #[test]
    fn two_racing_increments_explore_multiple_schedules() {
        let report = Model::new()
            .check(|| {
                let a = AtomicUsize::new(0);
                scope(|s| {
                    s.spawn(|| {
                        a.fetch_add(1, Ordering::Relaxed);
                    });
                    s.spawn(|| {
                        a.fetch_add(1, Ordering::Relaxed);
                    });
                });
                assert_eq!(a.into_inner(), 2, "fetch_add must never lose an update");
            })
            .expect("fetch_add is atomic");
        assert!(report.exhaustive);
        assert!(
            report.schedules >= 2,
            "two racing ops must yield at least two interleavings, got {}",
            report.schedules
        );
    }

    #[test]
    fn lost_update_mutant_is_caught_exhaustively() {
        // load-then-store is the classic lost-update bug: some schedule
        // interleaves the two loads before either store.
        let violation = Model::new()
            .check(|| {
                let a = AtomicUsize::new(0);
                scope(|s| {
                    for _ in 0..2 {
                        s.spawn(|| {
                            let v = a.load(Ordering::SeqCst);
                            a.store(v + 1, Ordering::SeqCst);
                        });
                    }
                });
                assert_eq!(a.into_inner(), 2, "lost update");
            })
            .expect_err("the checker must find the lost-update schedule");
        assert!(violation.message.contains("lost update"), "{violation}");
        assert!(violation.schedule.contains('T'), "{violation}");
    }

    #[test]
    fn sampling_mode_reports_non_exhaustive() {
        let report = Model::new()
            .max_schedules(2)
            .samples(8)
            .check(|| {
                let a = AtomicUsize::new(0);
                scope(|s| {
                    for _ in 0..2 {
                        s.spawn(|| {
                            a.fetch_add(1, Ordering::Relaxed);
                            a.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
                assert_eq!(a.into_inner(), 4);
            })
            .expect("protocol holds");
        assert!(!report.exhaustive);
        assert_eq!(report.schedules, 2 + 8);
    }

    #[test]
    fn sampled_runs_are_deterministic_per_seed() {
        let run = |seed: u64| {
            Model::new()
                .max_schedules(1)
                .samples(16)
                .seed(seed)
                .check(|| {
                    let a = AtomicUsize::new(0);
                    scope(|s| {
                        for _ in 0..3 {
                            s.spawn(|| {
                                let v = a.load(Ordering::SeqCst);
                                a.store(v + 1, Ordering::SeqCst);
                            });
                        }
                    });
                    assert_eq!(a.into_inner(), 3, "lost update");
                })
        };
        let (a, b) = (run(7), run(7));
        match (a, b) {
            (Ok(ra), Ok(rb)) => assert_eq!(ra.schedules, rb.schedules),
            (Err(va), Err(vb)) => {
                assert_eq!(va.schedule, vb.schedule);
                assert_eq!(va.schedules_explored, vb.schedules_explored);
            }
            (a, b) => panic!("seeded runs diverged: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn child_panic_is_attributed_not_hung() {
        let violation = Model::new()
            .check(|| {
                let a = AtomicUsize::new(0);
                scope(|s| {
                    s.spawn(|| {
                        a.fetch_add(1, Ordering::Relaxed);
                        panic!("in-flight invariant broke");
                    });
                    s.spawn(|| {
                        a.fetch_add(1, Ordering::Relaxed);
                    });
                });
            })
            .expect_err("child panic must surface");
        assert!(
            violation.message.contains("in-flight invariant broke"),
            "{violation}"
        );
    }
}
