//! `gaurast-check` CLI: `cargo run -p gaurast-check -- <lint|deep>`.
//!
//! `lint` walks the workspace tree, applies every repo-invariant line
//! lint rule, and exits non-zero when any finding is produced (the CI
//! contract). `deep` builds the whole-workspace call graph and runs the
//! transitive rules — hot-path purity, determinism taint, serving
//! panic-freedom — printing a witness path per violation and writing the
//! machine-readable `CHECK_report.json` at the workspace root. With no
//! `--root`, the workspace root is discovered by walking up from the
//! current directory to the first `Cargo.toml` containing `[workspace]`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("deep") => run_deep(&args[1..]),
        Some(other) => {
            eprintln!("gaurast-check: unknown command `{other}`");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: gaurast-check <command> [--root PATH]\n\n\
    lint   Lints the workspace tree for repo invariants (SAFETY comments, \n\
           float ordering, hot-path allocations, determinism, full-scan \n\
           asserts, crate-wide unsafe bans). Exits 1 on any finding.\n\
    deep   Builds the whole-workspace call graph and runs the transitive \n\
           rules (hot-path purity, determinism taint, serving panic-\n\
           freedom), printing a witness path per violation and writing \n\
           CHECK_report.json at the workspace root. Exits 1 on any \n\
           violation. `--json PATH` overrides the report location.";

fn run_lint(args: &[String]) -> ExitCode {
    let root = match parse_root(args) {
        Ok(Some(path)) => path,
        Ok(None) => match discover_workspace_root() {
            Some(path) => path,
            None => {
                eprintln!(
                    "gaurast-check: no workspace root found above the current directory \
                     (pass --root PATH)"
                );
                return ExitCode::from(2);
            }
        },
        Err(msg) => {
            eprintln!("gaurast-check: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    match gaurast_check::lint::lint_tree(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("gaurast-check lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for finding in &findings {
                println!("{finding}");
            }
            println!("gaurast-check lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("gaurast-check: i/o error while linting: {err}");
            ExitCode::from(2)
        }
    }
}

fn run_deep(args: &[String]) -> ExitCode {
    let (root_arg, json_arg) = match parse_deep_args(args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("gaurast-check: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let root = match root_arg {
        Some(path) => path,
        None => match discover_workspace_root() {
            Some(path) => path,
            None => {
                eprintln!(
                    "gaurast-check: no workspace root found above the current directory \
                     (pass --root PATH)"
                );
                return ExitCode::from(2);
            }
        },
    };

    let report = match gaurast_check::deep::analyze(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("gaurast-check: i/o error while building the call graph: {err}");
            return ExitCode::from(2);
        }
    };

    let json_path = json_arg.unwrap_or_else(|| root.join("CHECK_report.json"));
    if let Err(err) = std::fs::write(&json_path, report.json()) {
        eprintln!(
            "gaurast-check: cannot write report to {}: {err}",
            json_path.display()
        );
        return ExitCode::from(2);
    }

    print!("{}", report.human());
    let total = report.total_violations();
    if total == 0 {
        println!(
            "gaurast-check deep: clean ({}), report at {}",
            root.display(),
            json_path.display()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "gaurast-check deep: {total} violation(s), report at {}",
            json_path.display()
        );
        ExitCode::FAILURE
    }
}

fn parse_root(args: &[String]) -> Result<Option<PathBuf>, String> {
    match args {
        [] => Ok(None),
        [flag, path] if flag == "--root" => Ok(Some(PathBuf::from(path))),
        _ => Err(format!("unexpected arguments: {args:?}")),
    }
}

type DeepArgs = (Option<PathBuf>, Option<PathBuf>);

fn parse_deep_args(args: &[String]) -> Result<DeepArgs, String> {
    let mut root = None;
    let mut json = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" if i + 1 < args.len() => {
                root = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--json" if i + 1 < args.len() => {
                json = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok((root, json))
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`.
fn discover_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
