//! `gaurast-check` CLI: `cargo run -p gaurast-check -- <lint|deep|races>`.
//!
//! `lint` walks the workspace tree, applies every repo-invariant line
//! lint rule, and exits non-zero when any finding is produced (the CI
//! contract). `deep` builds the whole-workspace call graph and runs the
//! transitive rules — hot-path purity, determinism taint, serving
//! panic-freedom, unsafe-instrumentation-coverage — printing a witness
//! path per violation, writing the machine-readable `CHECK_report.json`
//! under `target/artifacts/`, and enforcing the ratchet budgets in
//! `crates/check/deep_budget.json` (unresolved calls, advisory indexing
//! sites). `races` runs just the static race rule and prints its
//! outcome — the focused entry point for the race-instrumentation story
//! (the dynamic half lives in the `--cfg gaurast_model_check` test
//! suites). With no `--root`, the workspace root is discovered by walking
//! up from the current directory to the first `Cargo.toml` containing
//! `[workspace]`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("deep") => run_deep(&args[1..]),
        Some("races") => run_races(&args[1..]),
        Some(other) => {
            eprintln!("gaurast-check: unknown command `{other}`");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: gaurast-check <command> [--root PATH]\n\n\
    lint   Lints the workspace tree for repo invariants (SAFETY comments, \n\
           float ordering, hot-path allocations, determinism, full-scan \n\
           asserts, crate-wide unsafe bans). Exits 1 on any finding.\n\
    deep   Builds the whole-workspace call graph and runs the transitive \n\
           rules (hot-path purity, determinism taint, serving panic-\n\
           freedom, unsafe-instrumentation-coverage), printing a witness \n\
           path per violation, writing CHECK_report.json under \n\
           target/artifacts/, and enforcing the ratchet budgets in \n\
           crates/check/deep_budget.json. Exits 1 on any violation or \n\
           budget breach. `--json PATH` overrides the report location.\n\
    races  Runs just the unsafe-instrumentation-coverage rule: every \n\
           unsafe write reachable from a hot root must sit inside a \n\
           race_region! (or carry an allow(race) annotation). Exits 1 on \n\
           any uncovered site. The dynamic race detector runs in the \n\
           `--cfg gaurast_model_check` test suites.";

fn run_lint(args: &[String]) -> ExitCode {
    let root = match parse_root(args) {
        Ok(Some(path)) => path,
        Ok(None) => match discover_workspace_root() {
            Some(path) => path,
            None => {
                eprintln!(
                    "gaurast-check: no workspace root found above the current directory \
                     (pass --root PATH)"
                );
                return ExitCode::from(2);
            }
        },
        Err(msg) => {
            eprintln!("gaurast-check: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    match gaurast_check::lint::lint_tree(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("gaurast-check lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for finding in &findings {
                println!("{finding}");
            }
            println!("gaurast-check lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("gaurast-check: i/o error while linting: {err}");
            ExitCode::from(2)
        }
    }
}

fn run_deep(args: &[String]) -> ExitCode {
    let (root_arg, json_arg) = match parse_deep_args(args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("gaurast-check: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let root = match root_arg {
        Some(path) => path,
        None => match discover_workspace_root() {
            Some(path) => path,
            None => {
                eprintln!(
                    "gaurast-check: no workspace root found above the current directory \
                     (pass --root PATH)"
                );
                return ExitCode::from(2);
            }
        },
    };

    let report = match gaurast_check::deep::analyze(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("gaurast-check: i/o error while building the call graph: {err}");
            return ExitCode::from(2);
        }
    };

    let json_path = json_arg.unwrap_or_else(|| root.join("target/artifacts/CHECK_report.json"));
    if let Some(parent) = json_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(err) = std::fs::write(&json_path, report.json()) {
        eprintln!(
            "gaurast-check: cannot write report to {}: {err}",
            json_path.display()
        );
        return ExitCode::from(2);
    }

    print!("{}", report.human());
    let breaches = budget_breaches(&root, &report);
    for breach in &breaches {
        println!("budget: {breach}");
    }
    let total = report.total_violations();
    if total == 0 && breaches.is_empty() {
        println!(
            "gaurast-check deep: clean ({}), report at {}",
            root.display(),
            json_path.display()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "gaurast-check deep: {total} violation(s), {} budget breach(es), report at {}",
            breaches.len(),
            json_path.display()
        );
        ExitCode::FAILURE
    }
}

/// Compares the report against the checked-in ratchet budgets in
/// `crates/check/deep_budget.json`, returning one message per breach.
/// The budgets only tighten: a growing unresolved-call or advisory-index
/// count is a regression the vocabulary or an annotation must absorb.
fn budget_breaches(
    root: &std::path::Path,
    report: &gaurast_check::deep::DeepReport,
) -> Vec<String> {
    let path = root.join("crates/check/deep_budget.json");
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(_) => {
            // Fixture trees have no budget file; the repo's CI always
            // runs from the workspace root where it exists.
            return Vec::new();
        }
    };
    let mut out = Vec::new();
    if let Some(max) = json_usize(&text, "unresolved_calls_max") {
        if report.unresolved.len() > max {
            out.push(format!(
                "unresolved calls grew to {} (budget {max}); extend the resolver \
                 vocabulary or fix the call shape",
                report.unresolved.len()
            ));
        }
    }
    if let Some(max) = json_usize(&text, "advisory_index_sites_max") {
        let advisory: usize = report.rules.iter().map(|r| r.advisory_index_sites).sum();
        if advisory > max {
            out.push(format!(
                "advisory indexing sites grew to {advisory} (budget {max}); replace \
                 new `xs[i]` sites with checked access or lower an existing one"
            ));
        }
    }
    out
}

/// First integer value following `"key":` in a flat JSON object (the
/// budget file is machine-regular; the workspace stays dependency-free).
fn json_usize(text: &str, key: &str) -> Option<usize> {
    let at = text.find(&format!("\"{key}\""))?;
    let rest = &text[at..];
    let colon = rest.find(':')?;
    let digits: String = rest[colon + 1..]
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn run_races(args: &[String]) -> ExitCode {
    let root = match parse_root(args) {
        Ok(Some(path)) => path,
        Ok(None) => match discover_workspace_root() {
            Some(path) => path,
            None => {
                eprintln!(
                    "gaurast-check: no workspace root found above the current directory \
                     (pass --root PATH)"
                );
                return ExitCode::from(2);
            }
        },
        Err(msg) => {
            eprintln!("gaurast-check: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let graph = match gaurast_check::graph::CallGraph::build(&root) {
        Ok(graph) => graph,
        Err(err) => {
            eprintln!("gaurast-check: i/o error while building the call graph: {err}");
            return ExitCode::from(2);
        }
    };
    let deps = gaurast_check::resolve::CrateDeps::discover(&root);
    let res = gaurast_check::resolve::resolve(&graph, &deps);
    let outcome = gaurast_check::deep::races::run(&graph, &res);

    println!(
        "rule {}: {} roots, {} violations, {} suppressed by allow(…)",
        outcome.rule,
        outcome.roots.len(),
        outcome.violations.len(),
        outcome.suppressed,
    );
    for v in &outcome.violations {
        println!("  {}", v.render());
    }
    if outcome.violations.is_empty() {
        println!("gaurast-check races: clean ({})", root.display());
        ExitCode::SUCCESS
    } else {
        println!(
            "gaurast-check races: {} uncovered unsafe write(s) — wrap each in a \
             race_region! that registers the access range, or annotate with \
             `// gaurast-check: allow(race): reason`",
            outcome.violations.len()
        );
        ExitCode::FAILURE
    }
}

fn parse_root(args: &[String]) -> Result<Option<PathBuf>, String> {
    match args {
        [] => Ok(None),
        [flag, path] if flag == "--root" => Ok(Some(PathBuf::from(path))),
        _ => Err(format!("unexpected arguments: {args:?}")),
    }
}

type DeepArgs = (Option<PathBuf>, Option<PathBuf>);

fn parse_deep_args(args: &[String]) -> Result<DeepArgs, String> {
    let mut root = None;
    let mut json = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" if i + 1 < args.len() => {
                root = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--json" if i + 1 < args.len() => {
                json = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok((root, json))
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`.
fn discover_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
