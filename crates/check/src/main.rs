//! `gaurast-check` CLI: `cargo run -p gaurast-check -- lint [--root PATH]`.
//!
//! Walks the workspace tree, applies every repo-invariant lint rule, and
//! exits non-zero when any finding is produced (the CI contract). With no
//! `--root`, the workspace root is discovered by walking up from the
//! current directory to the first `Cargo.toml` containing `[workspace]`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some(other) => {
            eprintln!("gaurast-check: unknown command `{other}`");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: gaurast-check lint [--root PATH]\n\n\
    Lints the workspace tree for repo invariants (SAFETY comments, float \n\
    ordering, hot-path allocations, determinism, full-scan asserts, \n\
    crate-wide unsafe bans). Exits 1 when any finding is produced.";

fn run_lint(args: &[String]) -> ExitCode {
    let root = match parse_root(args) {
        Ok(Some(path)) => path,
        Ok(None) => match discover_workspace_root() {
            Some(path) => path,
            None => {
                eprintln!(
                    "gaurast-check: no workspace root found above the current directory \
                     (pass --root PATH)"
                );
                return ExitCode::from(2);
            }
        },
        Err(msg) => {
            eprintln!("gaurast-check: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    match gaurast_check::lint::lint_tree(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("gaurast-check lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for finding in &findings {
                println!("{finding}");
            }
            println!("gaurast-check lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("gaurast-check: i/o error while linting: {err}");
            ExitCode::from(2)
        }
    }
}

fn parse_root(args: &[String]) -> Result<Option<PathBuf>, String> {
    match args {
        [] => Ok(None),
        [flag, path] if flag == "--root" => Ok(Some(PathBuf::from(path))),
        _ => Err(format!("unexpected arguments: {args:?}")),
    }
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`.
fn discover_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
