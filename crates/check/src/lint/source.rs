//! Lightweight line/token source model for the lint rules.
//!
//! Deliberately not a parser (no `syn` — the workspace builds offline and
//! dependency-free): each line is split into a *code* part — with string
//! and char literal contents blanked and comments removed — and a
//! *comment* part (line, block, and doc comments). Rules match tokens
//! against the code part and markers (`SAFETY:`, `gaurast-check: …`)
//! against the comment part, so a `"unsafe"` inside a string or a
//! commented-out `Instant::now()` never trips a rule.

/// One source line, classified.
#[derive(Clone, Debug, Default)]
pub struct Line {
    /// Code text with comments removed and literal contents blanked.
    pub code: String,
    /// Concatenated comment text of the line (`//`, `///`, `/* … */`).
    pub comment: String,
}

/// Splits `content` into classified [`Line`]s, tracking block comments,
/// (raw) string literals, and char literals across line boundaries.
pub fn classify(content: &str) -> Vec<Line> {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Code,
        /// Nested block comments (Rust block comments nest).
        Block(u32),
        Str,
        /// Raw string with this many `#`s in the delimiter.
        RawStr(u32),
    }

    let mut lines = Vec::new();
    let mut state = State::Code;
    for raw in content.lines() {
        let mut line = Line::default();
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                State::Block(depth) => {
                    if c == '*' && next == Some('/') {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::Block(depth - 1)
                        };
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        state = State::Block(depth + 1);
                        i += 2;
                    } else {
                        line.comment.push(c);
                        i += 1;
                    }
                }
                State::Str => {
                    if c == '\\' {
                        i += 2; // skip the escaped char (may be `"` or `\`)
                    } else if c == '"' {
                        line.code.push('"');
                        state = State::Code;
                        i += 1;
                    } else {
                        line.code.push(' '); // blank literal content
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if c == '"' {
                        let mut n = 0;
                        while n < hashes && chars.get(i + 1 + n as usize) == Some(&'#') {
                            n += 1;
                        }
                        if n == hashes {
                            line.code.push('"');
                            state = State::Code;
                            i += 1 + hashes as usize;
                            continue;
                        }
                    }
                    line.code.push(' ');
                    i += 1;
                }
                State::Code => {
                    if c == '/' && next == Some('/') {
                        // Line comment (incl. doc comments) to end of line.
                        line.comment.push_str(&raw[byte_offset(raw, i)..]);
                        i = chars.len();
                    } else if c == '/' && next == Some('*') {
                        state = State::Block(1);
                        i += 2;
                    } else if c == '"' {
                        line.code.push('"');
                        state = State::Str;
                        i += 1;
                    } else if let Some((hashes, after)) = raw_string_open(&chars, i) {
                        // Raw string r"…" / r#"…"# and the byte/C-string
                        // prefixed forms br"…", br#"…"#, cr#"…"# — raw
                        // strings have **no escapes**, so they must not fall
                        // into the `"`-with-escapes path (a trailing `\`
                        // would swallow the closing quote and blank the rest
                        // of the line, hiding real code from the rules).
                        line.code.push('"');
                        state = State::RawStr(hashes);
                        i = after;
                    } else if c == '\'' {
                        // Char literal vs lifetime: a lifetime is `'ident`
                        // not followed by a closing quote.
                        if next == Some('\\') {
                            // Escaped char literal: the char after the
                            // backslash is consumed by the escape; scan on
                            // to the closing quote.
                            line.code.push_str("' '");
                            let mut j = i + 3;
                            while j < chars.len() && chars[j] != '\'' {
                                j += 1;
                            }
                            i = j + 1;
                        } else if chars.get(i + 2) == Some(&'\'') {
                            line.code.push_str("' '");
                            i += 3;
                        } else {
                            line.code.push(c); // lifetime tick
                            i += 1;
                        }
                    } else {
                        line.code.push(c);
                        i += 1;
                    }
                }
            }
        }
        lines.push(line);
    }
    lines
}

/// Byte offset of char index `i` in `raw` (lines are short; linear is fine).
fn byte_offset(raw: &str, i: usize) -> usize {
    raw.char_indices()
        .nth(i)
        .map_or_else(|| raw.len(), |(b, _)| b)
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Detects a raw-string opener at `i`: `r`, `br`, or `cr`, then zero or
/// more `#`s, then `"`. Returns the delimiter hash count and the index of
/// the first content character, or `None` when `i` does not open a raw
/// string (e.g. `r` is the tail of an identifier, or a raw identifier like
/// `r#match` follows).
fn raw_string_open(chars: &[char], i: usize) -> Option<(u32, usize)> {
    let r_at = match chars[i] {
        'r' => i,
        // `br"…"` / `cr"…"` — the prefix letter must itself start the
        // token (not be the tail of an identifier like `abr"…`).
        'b' | 'c' if chars.get(i + 1) == Some(&'r') => i + 1,
        _ => return None,
    };
    if prev_is_ident(chars, i) {
        return None;
    }
    let mut hashes = 0;
    let mut j = r_at + 1;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some((hashes, j + 1))
}

/// `true` when `code` contains `word` delimited by non-identifier chars —
/// `unsafe` matches `unsafe impl` but not `overflow_unsafe_guard`.
pub fn has_word(code: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(at) = code[start..].find(word) {
        let at = start + at;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = code[at + word.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// Index of the first line whose code opens a `#[cfg(test)]` region, or
/// `lines.len()`. Rules do not apply to in-crate test modules (the
/// convention throughout the workspace puts them last in the file).
pub fn test_region_start(lines: &[Line]) -> usize {
    lines
        .iter()
        .position(|l| l.code.contains("#[cfg(test)]"))
        .unwrap_or(lines.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_separated_from_code() {
        let lines = classify("let x = 1; // unsafe in a comment\n/* block */ let y = 2;");
        assert!(lines[0].code.contains("let x = 1;"));
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].comment.contains("unsafe in a comment"));
        assert!(lines[1].code.contains("let y = 2;"));
        assert!(lines[1].comment.contains("block"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let lines = classify(r#"let s = "unsafe // not a comment"; call();"#);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].code.contains("call();"));
        assert!(lines[0].comment.is_empty());
    }

    #[test]
    fn raw_strings_and_escapes() {
        let src = "let a = r#\"unsafe \" quote\"#;\nlet b = \"esc \\\" unsafe\";\nnext();";
        let lines = classify(src);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(!lines[1].code.contains("unsafe"));
        assert!(lines[2].code.contains("next();"));
    }

    #[test]
    fn multi_line_block_comment_and_nesting() {
        let lines = classify("a(); /* one /* two */ still */ b();\nc();");
        assert!(lines[0].code.contains("a();"));
        assert!(lines[0].code.contains("b();"));
        assert!(lines[0].comment.contains("two"));
        assert!(lines[1].code.contains("c();"));
    }

    #[test]
    fn prefixed_raw_strings_do_not_swallow_code() {
        // Regression: `br"…"` used to be lexed as `b`+`r` code then a
        // *normal* string, so a trailing `\` (no escape in raw strings!)
        // consumed the closing quote and blanked the rest of the line —
        // hiding real calls from every rule.
        let lines = classify("let p = br\"dir\\\"; let t = Instant::now();");
        assert!(lines[0].code.contains("Instant::now()"), "{:?}", lines[0]);
        assert!(!lines[0].code.contains("dir"));
    }

    #[test]
    fn prefixed_raw_strings_blank_contents() {
        // Regression: `br#"…"#` contents used to leak into the code part.
        for src in [
            "let x = br#\"unsafe \"quoted\" u\"#; call();",
            "let x = cr#\"unsafe \"quoted\" u\"#; call();",
            "let x = r#\"unsafe \"quoted\" u\"#; call();",
        ] {
            let lines = classify(src);
            assert!(!lines[0].code.contains("unsafe"), "{src}: {:?}", lines[0]);
            assert!(!lines[0].code.contains("quoted"), "{src}: {:?}", lines[0]);
            assert!(lines[0].code.contains("call();"), "{src}: {:?}", lines[0]);
        }
    }

    #[test]
    fn multi_line_raw_strings_track_state() {
        let src = "let s = r##\"line \"# not the end\nInstant::now() still raw\nend\"##; after();";
        let lines = classify(src);
        assert!(!lines[0].code.contains("not the end"));
        assert!(!lines[1].code.contains("Instant::now"));
        assert!(lines[2].code.contains("after();"), "{:?}", lines[2]);
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let lines = classify("let r#match = r#try(); abr\"x\"; next();");
        assert!(lines[0].code.contains("r#match"));
        assert!(lines[0].code.contains("next();"));
    }

    #[test]
    fn nested_block_comments_across_lines() {
        let src = "a(); /* l1 /* l2\nstill /* deeper */ in */ comment */ b();\nc();";
        let lines = classify(src);
        assert!(lines[0].code.contains("a();"));
        assert!(lines[1].code.trim().starts_with("b();"), "{:?}", lines[1]);
        assert!(lines[1].comment.contains("deeper"));
        assert!(lines[2].code.contains("c();"));
    }

    #[test]
    fn raw_strings_and_comments_do_not_open_each_other() {
        // A block-comment opener inside a raw string is content; a
        // raw-string opener inside a block comment is comment text.
        let a = classify("let s = r\"/* not a comment */\"; tail();");
        assert!(a[0].code.contains("tail();"));
        assert!(a[0].comment.is_empty());
        let b = classify("/* r#\" */ code();");
        assert!(b[0].code.contains("code();"));
        assert!(b[0].comment.contains("r#"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let lines = classify("let c = 'u'; fn f<'a>(x: &'a str) {} let e = '\\n';");
        let code = &lines[0].code;
        assert!(code.contains("fn f<'a>"), "{code}");
        assert!(code.contains('\''));
    }

    #[test]
    fn word_boundaries() {
        assert!(has_word("unsafe impl Sync for X {}", "unsafe"));
        assert!(has_word("unsafe{", "unsafe"));
        assert!(!has_word(
            "fn overflow_guard_vetoes_unsafe_certifications()",
            "unsafe"
        ));
        assert!(!has_word("let unsafety = 1;", "unsafe"));
    }

    #[test]
    fn test_region_detection() {
        let lines = classify("fn a() {}\n#[cfg(test)]\nmod tests {}\n");
        assert_eq!(test_region_start(&lines), 1);
    }
}
