//! The repo-invariant rules.
//!
//! Every rule operates on the classified line model of
//! [`super::source`] — token matching on comment-stripped,
//! literal-blanked code — and is scoped by repository-relative path, so
//! fixtures can exercise a rule by simulating the path it guards. Rules
//! skip `#[cfg(test)]` regions (in-crate test modules may scan, allocate,
//! and assert freely).
//!
//! Escape hatches are explicit and greppable:
//!
//! * `// SAFETY: …` above (or on) an `unsafe` site — required, not an
//!   escape;
//! * `// gaurast-check: hot-path` marks a steady-state function whose body
//!   the allocation and full-scan-assert rules police;
//! * `// gaurast-check: allow(alloc): reason` / `allow(nondet): reason` on
//!   a line suppresses those rules for that line only, with a stated
//!   reason.

use super::source::{classify, has_word, test_region_start, Line};

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier (`unsafe-comment`, `float-ord`, …).
    pub rule: &'static str,
    /// Repository-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation with the expected fix.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Files whose steady-state functions the hot-path rules police.
pub const HOT_FILES: &[&str] = &[
    "crates/render/src/sort.rs",
    "crates/render/src/tile.rs",
    "crates/render/src/rasterize.rs",
    "crates/render/src/graph.rs",
    "crates/render/src/simd/stage1.rs",
    "crates/render/src/simd/stage3.rs",
];

/// Steady-state functions that **must** carry the
/// `// gaurast-check: hot-path` marker, per hot file — deleting the
/// marker (and thereby the policing) is itself a lint error. The
/// selection matches the `gaurast_bench::alloc_counter` zero-allocation
/// measurement: these are the bodies that run per frame in steady state.
pub const REQUIRED_HOT_FNS: &[(&str, &str)] = &[
    ("crates/render/src/sort.rs", "sort_pairs_chunked"),
    ("crates/render/src/tile.rs", "bin_splats_pooled"),
    ("crates/render/src/rasterize.rs", "rasterize_tile"),
    // The frame-graph executor: marking it puts the whole per-frame
    // execution subtree (every graph node body, the pool dispatch path)
    // under the deep no-alloc/no-spawn purity rule, so re-introducing a
    // per-frame thread spawn or allocation there fails CI.
    ("crates/render/src/graph.rs", "execute"),
    // The SIMD lane-group kernels: Stage 1's projection/conic groups and
    // Stage 3's per-row conic evaluation + blending run per frame in
    // steady state; marking them keeps fresh allocations (and, via the
    // deep layer, panics and nondeterminism) out of the vector path.
    ("crates/render/src/simd/stage1.rs", "preprocess_over_simd"),
    ("crates/render/src/simd/stage3.rs", "rasterize_tile_simd"),
];

/// Crates whose sources must stay deterministic: no wall clock, no
/// environment reads, no ambient randomness (the bit-identity contract —
/// same inputs, same bits, at every worker count). `gaurast-core` (timing,
/// service) and `gaurast-bench` (measurement) are intentionally absent.
pub const DETERMINISTIC_PREFIXES: &[&str] = &[
    "crates/math/src/",
    "crates/scene/src/",
    "crates/render/src/",
    "crates/hw/src/",
    "crates/gscore/src/",
    "crates/gpu/src/",
    "crates/sched/src/",
];

/// Crates the tree-level rule certifies unsafe-free: their `lib.rs` must
/// carry `#![forbid(unsafe_code)]` and no source may use the keyword.
/// `gaurast-render` (disjoint-slice writers) and `gaurast-bench`
/// (counting `GlobalAlloc`) are the only crates allowed `unsafe`. `"."` is
/// the workspace-root `gaurast-repro` facade crate.
pub const UNSAFE_FREE_CRATES: &[&str] = &[
    "crates/math",
    "crates/scene",
    "crates/gscore",
    "crates/gpu",
    "crates/sched",
    "crates/hw",
    "crates/core",
    "crates/check",
    ".",
];

/// Marker comment putting a function's body (and, for the deep layer, its
/// whole call subtree) under the hot-path rules.
pub const HOT_MARKER: &str = "gaurast-check: hot-path";
/// Escape hatch suppressing allocation findings on the annotated line.
pub const ALLOW_ALLOC: &str = "gaurast-check: allow(alloc)";
/// Escape hatch suppressing determinism findings on the annotated line.
pub const ALLOW_NONDET: &str = "gaurast-check: allow(nondet)";
/// Escape hatch suppressing panic-freedom findings on the annotated line
/// (deep layer only); the stated reason must carry the invariant proof.
pub const ALLOW_PANIC: &str = "gaurast-check: allow(panic)";
/// Escape hatch suppressing unsafe-instrumentation-coverage findings on
/// the annotated line (deep layer only); the stated reason must say where
/// the access range *is* registered (e.g. at every call site).
pub const ALLOW_RACE: &str = "gaurast-check: allow(race)";

/// Heap-allocating call tokens the hot-path rules match (fresh
/// allocations, not amortized growth of recycled arena buffers).
pub const ALLOC_TOKENS: &[&str] = &[
    "Vec::new",
    "vec!",
    ".to_vec(",
    ".collect(",
    ".clone(",
    "Box::new",
    "String::new",
    ".to_string(",
    ".to_owned(",
    "format!",
    "HashMap::new",
    "BTreeMap::new",
];

/// Wall-clock / environment / ambient-randomness tokens — the determinism
/// rule's line-level sources, shared with the deep taint analysis.
pub const NONDET_TOKENS: &[&str] = &[
    "Instant::now",
    "SystemTime",
    "env::var",
    "env::vars",
    "thread_rng",
    "random(",
];

const SCAN_TOKENS: &[&str] = &[
    ".all(",
    ".any(",
    ".iter(",
    "windows(",
    ".contains(",
    ".count(",
    ".position(",
    "is_depth_sorted",
    "is_sorted",
];

/// Lints one file's content against every path-applicable rule.
/// `rel_path` is the repository-relative path with `/` separators.
pub fn lint_source(rel_path: &str, content: &str) -> Vec<Finding> {
    let lines = classify(content);
    let end = test_region_start(&lines);
    let lines = &lines[..end];
    let mut findings = Vec::new();

    rule_unsafe_comment(rel_path, lines, &mut findings);
    if rel_path.starts_with("crates/render/src/") {
        rule_float_ord(rel_path, lines, &mut findings);
    }
    if DETERMINISTIC_PREFIXES
        .iter()
        .any(|p| rel_path.starts_with(p))
    {
        rule_determinism(rel_path, lines, &mut findings);
    }
    if HOT_FILES.contains(&rel_path) {
        let hot = hot_regions(lines);
        rule_hot_alloc(rel_path, lines, &hot, &mut findings);
        rule_hot_assert(rel_path, lines, &mut findings);
        rule_required_hot_markers(rel_path, lines, &hot, &mut findings);
    }
    findings
}

/// `true` when line `i` carries `needle` in its own comment or anywhere in
/// the contiguous block of comment/attribute/blank lines directly above it
/// (real code ends the block: the annotation must be *adjacent* to its
/// site, however many lines the comment itself spans).
pub fn annotated(lines: &[Line], i: usize, needle: &str) -> bool {
    if lines[i].comment.contains(needle) {
        return true;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let prev = &lines[j];
        if prev.comment.contains(needle) {
            return true;
        }
        let code = prev.code.trim();
        if !code.is_empty() && !code.starts_with("#[") {
            return false;
        }
    }
    false
}

/// `unsafe` (keyword, not substring) requires a `SAFETY:` comment on the
/// same line or in the comment block directly above.
fn rule_unsafe_comment(path: &str, lines: &[Line], out: &mut Vec<Finding>) {
    for (i, line) in lines.iter().enumerate() {
        if !has_word(&line.code, "unsafe") {
            continue;
        }
        if !annotated(lines, i, "SAFETY:") {
            out.push(Finding {
                rule: "unsafe-comment",
                path: path.to_string(),
                line: i + 1,
                message: "`unsafe` without an adjacent `// SAFETY:` comment; state the \
                          disjointness/validity argument right above the site"
                    .to_string(),
            });
        }
    }
}

/// `partial_cmp` in the renderer orders floats non-totally; depth and key
/// ordering must go through `f32::total_cmp` or `sort::depth_key_bits`
/// (which are bit-compatible — the radix/comparison equivalence the
/// pipeline's determinism rests on).
fn rule_float_ord(path: &str, lines: &[Line], out: &mut Vec<Finding>) {
    for (i, line) in lines.iter().enumerate() {
        if line.code.contains("partial_cmp") {
            out.push(Finding {
                rule: "float-ord",
                path: path.to_string(),
                line: i + 1,
                message: "float ordering via `partial_cmp` in the renderer; use \
                          `f32::total_cmp` (or `sort::depth_key_bits` for keys) so the \
                          order is total and radix-compatible"
                    .to_string(),
            });
        }
    }
}

/// No wall clock / environment / ambient randomness inside deterministic
/// pipeline crates.
fn rule_determinism(path: &str, lines: &[Line], out: &mut Vec<Finding>) {
    for (i, line) in lines.iter().enumerate() {
        if annotated(lines, i, ALLOW_NONDET) {
            continue;
        }
        for token in NONDET_TOKENS {
            if line.code.contains(token) {
                out.push(Finding {
                    rule: "determinism",
                    path: path.to_string(),
                    line: i + 1,
                    message: format!(
                        "`{token}` inside deterministic pipeline code; time/env/randomness \
                         belong in gaurast-core or gaurast-bench (or justify with \
                         `// {ALLOW_NONDET}: reason`)"
                    ),
                });
            }
        }
    }
}

/// Line ranges (0-based, inclusive) of function bodies marked
/// `// gaurast-check: hot-path`, with the function name.
fn hot_regions(lines: &[Line]) -> Vec<(String, usize, usize)> {
    let mut regions = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if !line.comment.contains(HOT_MARKER) {
            continue;
        }
        // The marker must sit directly above the `fn` (attributes and the
        // signature may span a few lines).
        let Some(fn_line) = (i..lines.len().min(i + 7)).find(|&j| has_word(&lines[j].code, "fn"))
        else {
            continue;
        };
        let name = fn_name(&lines[fn_line].code).unwrap_or_default();
        // Brace-track from the first `{` at or after the fn line.
        let mut depth = 0i32;
        let mut started = false;
        let mut end = fn_line;
        'scan: for (j, l) in lines.iter().enumerate().skip(fn_line) {
            for c in l.code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        started = true;
                    }
                    '}' => {
                        depth -= 1;
                        if started && depth == 0 {
                            end = j;
                            break 'scan;
                        }
                    }
                    _ => {}
                }
            }
            end = j;
        }
        regions.push((name, fn_line, end));
    }
    regions
}

/// The identifier following `fn ` in a signature line.
fn fn_name(code: &str) -> Option<String> {
    let at = code.find("fn ")?;
    let rest = code[at + 3..].trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// No heap-allocating calls inside hot-path function bodies (the
/// statically-enforced face of the `alloc_counter` zero-allocation
/// measurement).
fn rule_hot_alloc(
    path: &str,
    lines: &[Line],
    hot: &[(String, usize, usize)],
    out: &mut Vec<Finding>,
) {
    for (name, start, end) in hot {
        for (i, line) in lines.iter().enumerate().take(end + 1).skip(*start) {
            if annotated(lines, i, ALLOW_ALLOC) {
                continue;
            }
            for token in ALLOC_TOKENS {
                if line.code.contains(token) {
                    out.push(Finding {
                        rule: "hot-alloc",
                        path: path.to_string(),
                        line: i + 1,
                        message: format!(
                            "`{token}` inside hot-path fn `{name}`; steady-state frames \
                             must not allocate (measured by gaurast_bench::alloc_counter) \
                             — reuse arena scratch, or justify with \
                             `// {ALLOW_ALLOC}: reason`"
                        ),
                    });
                }
            }
        }
    }
}

/// Full-scan assertions in hot files must be `debug_assert!` — an O(n)
/// scan per frame is a measurement distortion in release and a hidden
/// hot-loop cost.
fn rule_hot_assert(path: &str, lines: &[Line], out: &mut Vec<Finding>) {
    for (i, line) in lines.iter().enumerate() {
        let Some(at) = find_plain_assert(&line.code) else {
            continue;
        };
        // Collect exactly the macro's argument span: from its opening paren
        // until parens balance (capped at a few lines), so an O(1) assert
        // is never blamed for a scan on a neighboring line.
        let mut arg = String::new();
        let mut depth = 0i32;
        let mut opened = false;
        'span: for (j, l) in lines
            .iter()
            .enumerate()
            .take(lines.len().min(i + 4))
            .skip(i)
        {
            let code = if j == i {
                &l.code[at..]
            } else {
                l.code.as_str()
            };
            for c in code.chars() {
                match c {
                    '(' => {
                        depth += 1;
                        opened = true;
                    }
                    ')' => depth -= 1,
                    _ => {}
                }
                arg.push(c);
                if opened && depth == 0 {
                    break 'span;
                }
            }
            arg.push('\n');
        }
        if SCAN_TOKENS.iter().any(|t| arg.contains(t)) {
            out.push(Finding {
                rule: "hot-assert",
                path: path.to_string(),
                line: i + 1,
                message: "full-scan `assert!` in a hot file; demote to `debug_assert!` \
                          (O(n) checks must not run in release hot loops)"
                    .to_string(),
            });
        }
    }
}

/// Position of a plain `assert!`/`assert_eq!`/`assert_ne!` invocation
/// (not `debug_assert…`).
fn find_plain_assert(code: &str) -> Option<usize> {
    for needle in ["assert!", "assert_eq!", "assert_ne!"] {
        let mut from = 0;
        while let Some(rel) = code[from..].find(needle) {
            let at = from + rel;
            let prefixed = code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
            if !prefixed {
                return Some(at);
            }
            from = at + needle.len();
        }
    }
    None
}

/// The functions in [`REQUIRED_HOT_FNS`] must exist *and* be marked: the
/// marker is what puts their bodies under the allocation rule, so deleting
/// it silently un-polices the hot path.
fn rule_required_hot_markers(
    path: &str,
    lines: &[Line],
    hot: &[(String, usize, usize)],
    out: &mut Vec<Finding>,
) {
    for (file, required) in REQUIRED_HOT_FNS {
        if *file != path {
            continue;
        }
        let defined = lines
            .iter()
            .position(|l| has_word(&l.code, "fn") && l.code.contains(&format!("fn {required}")));
        let Some(def_line) = defined else { continue };
        if !hot.iter().any(|(name, _, _)| name == required) {
            out.push(Finding {
                rule: "hot-marker",
                path: path.to_string(),
                line: def_line + 1,
                message: format!(
                    "steady-state fn `{required}` must carry `// {HOT_MARKER}` directly \
                     above its signature so the allocation rule polices its body"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn unsafe_without_safety_is_flagged_and_with_is_clean() {
        let bad = "fn f() {\n    let p = unsafe { *ptr };\n}\n";
        let f = lint_source("crates/hw/src/x.rs", bad);
        assert_eq!(rules_of(&f), ["unsafe-comment"]);
        let good = "fn f() {\n    // SAFETY: ptr is valid for reads, owned above.\n    let p = unsafe { *ptr };\n}\n";
        assert!(lint_source("crates/hw/src/x.rs", good).is_empty());
    }

    #[test]
    fn safety_on_same_line_counts() {
        let good = "unsafe impl Sync for X {} // SAFETY: only disjoint rows are handed out\n";
        assert!(lint_source("crates/render/src/pool.rs", good).is_empty());
    }

    #[test]
    fn unsafe_in_string_or_comment_is_ignored() {
        let src = "// unsafe in a comment\nlet s = \"unsafe in a string\";\n";
        assert!(lint_source("crates/hw/src/x.rs", src).is_empty());
    }

    #[test]
    fn partial_cmp_flagged_only_in_render() {
        let src = "fn f() { xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/render/src/x.rs", src)),
            ["float-ord"]
        );
        assert!(lint_source("crates/scene/src/x.rs", src).is_empty());
    }

    #[test]
    fn nondet_tokens_flagged_in_pipeline_crates_with_escape() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/render/src/x.rs", src)),
            ["determinism"]
        );
        assert!(lint_source("crates/bench/src/x.rs", src).is_empty());
        let escaped =
            "fn f() { let v = std::env::var(K); } // gaurast-check: allow(nondet): config knob\n";
        assert!(lint_source("crates/render/src/x.rs", escaped).is_empty());
    }

    #[test]
    fn hot_alloc_flagged_inside_marked_fn_only() {
        let src = "\
// gaurast-check: hot-path
fn hot() {
    let v: Vec<u32> = xs.collect();
}
fn cold() {
    let v: Vec<u32> = xs.collect();
}
";
        let f = lint_source("crates/render/src/sort.rs", src);
        assert_eq!(rules_of(&f), ["hot-alloc"]);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn hot_alloc_escape_hatch() {
        let src = "\
// gaurast-check: hot-path
fn hot() {
    let v = vec![0; n]; // gaurast-check: allow(alloc): tile-local buffer
}
";
        assert!(lint_source("crates/render/src/sort.rs", src).is_empty());
    }

    #[test]
    fn full_scan_assert_flagged_debug_assert_clean() {
        let src = "fn f() {\n    assert!(keys.windows(2).all(|w| w[0] <= w[1]));\n}\n";
        assert_eq!(
            rules_of(&lint_source("crates/render/src/sort.rs", src)),
            ["hot-assert"]
        );
        let good = "fn f() {\n    debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]));\n}\n";
        assert!(lint_source("crates/render/src/sort.rs", good).is_empty());
    }

    #[test]
    fn o1_asserts_in_hot_files_are_fine() {
        let src = "fn f() {\n    assert_eq!(keys.len(), values.len(), \"one value per key\");\n}\n";
        assert!(lint_source("crates/render/src/sort.rs", src).is_empty());
    }

    #[test]
    fn o1_assert_above_a_scan_line_is_not_blamed() {
        let src = "\
fn f() {
    assert_eq!(keys.len(), values.len());
    debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    let s: u64 = keys.iter().sum();
}
";
        assert!(lint_source("crates/render/src/sort.rs", src).is_empty());
    }

    #[test]
    fn multi_line_scan_assert_is_still_caught() {
        let src = "\
fn f() {
    assert!(
        keys.windows(2).all(|w| w[0] <= w[1]),
    );
}
";
        assert_eq!(
            rules_of(&lint_source("crates/render/src/sort.rs", src)),
            ["hot-assert"]
        );
    }

    #[test]
    fn missing_required_hot_marker_is_flagged() {
        let src = "pub fn sort_pairs_chunked() {}\n";
        assert_eq!(
            rules_of(&lint_source("crates/render/src/sort.rs", src)),
            ["hot-marker"]
        );
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "\
fn prod() {}
#[cfg(test)]
mod tests {
    fn t() {
        let t0 = Instant::now();
        let v: Vec<u32> = xs.collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }
}
";
        assert!(lint_source("crates/render/src/sort.rs", src).is_empty());
    }
}
