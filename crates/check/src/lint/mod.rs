//! Repo-invariant lints for the GauRast workspace.
//!
//! The renderer's correctness story rests on invariants no compiler
//! checks: `unsafe` disjoint-slice writers must document their argument,
//! float ordering must be total (radix-compatible), steady-state frames
//! must not allocate, deterministic pipeline code must not read clocks or
//! the environment, and hot loops must not hide O(n) assertion scans in
//! release builds. [`lint_source`] checks one file, [`lint_tree`] walks
//! the workspace and adds tree-level rules (crate-wide `unsafe` bans).
//!
//! Run against the repository with `cargo run -p gaurast-check -- lint`;
//! the binary exits non-zero when any finding is produced, which is how CI
//! enforces the invariants.

mod rules;
mod source;

pub use rules::{
    annotated, lint_source, Finding, ALLOC_TOKENS, ALLOW_ALLOC, ALLOW_NONDET, ALLOW_PANIC,
    ALLOW_RACE, DETERMINISTIC_PREFIXES, HOT_FILES, HOT_MARKER, NONDET_TOKENS, REQUIRED_HOT_FNS,
    UNSAFE_FREE_CRATES,
};
pub use source::{classify, has_word, test_region_start, Line};

use std::path::{Path, PathBuf};

/// Directories (repo-relative prefixes) the walker never descends into:
/// vendored dependencies, build output, VCS metadata, and the lint's own
/// deliberately-bad fixtures.
const EXCLUDED_PREFIXES: &[&str] = &[
    "vendor/",
    "target/",
    ".git/",
    "crates/check/tests/fixtures/",
];

/// Lints every `.rs` file under `root` (the workspace root) and applies
/// the tree-level rules. Findings are sorted by path then line for stable
/// output. I/O errors surface as `Err`; findings are not errors.
pub fn lint_tree(root: &Path) -> std::io::Result<Vec<Finding>> {
    let sources = workspace_sources(root)?;
    let mut findings = Vec::new();
    for (rel_str, content) in &sources {
        findings.extend(lint_source(rel_str, content));
    }
    rule_forbid_unsafe_crates(&sources, &mut findings);
    findings.sort_by(|a, b| (a.path.as_str(), a.line).cmp(&(b.path.as_str(), b.line)));
    Ok(findings)
}

/// Reads every lintable `.rs` file under `root` in one pass, returning
/// `(repo-relative path with '/' separators, content)` pairs sorted by
/// path. Shared by [`lint_tree`] and the deep call-graph layer
/// ([`crate::graph`]) so the whole-repo analyses stay single-pass over the
/// tree (the CI time budget).
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut sources = Vec::new();
    for rel in &files {
        let content = std::fs::read_to_string(root.join(rel))?;
        let rel_str = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        sources.push((rel_str, content));
    }
    Ok(sources)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let rel_str = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let ty = entry.file_type()?;
        if ty.is_dir() {
            let with_slash = format!("{rel_str}/");
            if EXCLUDED_PREFIXES.iter().any(|p| with_slash.starts_with(p)) {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if ty.is_file()
            && path.extension().is_some_and(|e| e == "rs")
            && !EXCLUDED_PREFIXES.iter().any(|p| rel_str.starts_with(p))
        {
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}

/// Tree-level rule: crates listed in [`UNSAFE_FREE_CRATES`] must carry
/// `#![forbid(unsafe_code)]` in their `lib.rs` and contain no `unsafe`
/// keyword in any source file (belt and braces — the attribute makes the
/// compiler enforce it, the lint catches the attribute being deleted).
fn rule_forbid_unsafe_crates(sources: &[(String, String)], out: &mut Vec<Finding>) {
    for krate in UNSAFE_FREE_CRATES {
        let src = if *krate == "." {
            "src/".to_string()
        } else {
            format!("{krate}/src/")
        };
        let lib = format!("{src}lib.rs");
        match sources.iter().find(|(p, _)| *p == lib) {
            None => out.push(Finding {
                rule: "forbid-unsafe",
                path: lib.clone(),
                line: 1,
                message: format!("unsafe-free crate `{krate}` has no src/lib.rs to certify"),
            }),
            Some((_, content)) => {
                if !content.contains("#![forbid(unsafe_code)]") {
                    out.push(Finding {
                        rule: "forbid-unsafe",
                        path: lib.clone(),
                        line: 1,
                        message: format!(
                            "crate `{krate}` is certified unsafe-free; its lib.rs must carry \
                             `#![forbid(unsafe_code)]`"
                        ),
                    });
                }
            }
        }
        for (path, content) in sources.iter().filter(|(p, _)| p.starts_with(&src)) {
            for (i, line) in classify(content).iter().enumerate() {
                if has_word(&line.code, "unsafe") {
                    out.push(Finding {
                        rule: "forbid-unsafe",
                        path: path.clone(),
                        line: i + 1,
                        message: format!(
                            "`unsafe` in certified unsafe-free crate `{krate}`; unsafe code \
                             is confined to gaurast-render and gaurast-bench"
                        ),
                    });
                }
            }
        }
    }
}
