//! Happens-before data-race detection over the shadow scheduler: vector
//! clocks, the shadow memory map, and the instrumentation entry points
//! `gaurast_render`'s `race_read!`/`race_write!` macros call into.
//!
//! # Model
//!
//! Every shadow thread carries a `VClock`; the scheduler
//! ([`crate::sched`]) maintains the clocks along the release/acquire edges
//! the program actually requested — `Acquire` loads, `Release` stores,
//! RMWs per their ordering, `spawn`/`join`, and `park`/`unpark`. A
//! `Relaxed` operation contributes no edge.
//!
//! Instrumented shared-memory accesses are recorded on a `ShadowMemory`
//! map at **address-range granularity**: each record is a half-open byte
//! range `[start, start + len)` with its kind (read/write), owning shadow
//! thread, and — the FastTrack epoch optimization — the single clock
//! component `C_t[t]` of the accessing thread `t` at access time, instead
//! of a full vector clock per access. A later access by thread `u` is
//! ordered after a prior access `(t, c)` iff `C_u[t] >= c`, which is one
//! integer comparison per candidate record.
//!
//! Two accesses **race** when their ranges overlap, at least one is a
//! write, they come from different shadow threads, and neither is ordered
//! before the other under happens-before. Because the relation is derived
//! from the clocks and not from the particular interleaving, a single
//! explored schedule suffices to expose a race — the report still carries
//! the reproduction schedule string so the failing execution can be
//! replayed.
//!
//! # Reporting
//!
//! A detected race poisons the execution (first failure wins) with a
//! message naming **both access sites** (`file:line`, as stamped by the
//! instrumentation macros) and kinds; [`crate::model::Model::check`]
//! surfaces it as a [`crate::model::Violation`] whose `schedule` field is
//! the reproduction trace.
//!
//! Outside a model run (`sched::current` is `None`) the entry
//! points are no-ops, so instrumented code in a `--cfg gaurast_model_check`
//! build still runs its ordinary test suites at full speed.

use crate::sched;

/// A vector clock: component `t` counts thread `t`'s release points.
/// Missing components read as 0, so clocks grow lazily as threads spawn.
#[derive(Clone, Debug, Default)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    /// Advances this clock's own component for thread `tid` — called at
    /// each release point, after publishing, so accesses between releases
    /// share one epoch.
    pub(crate) fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    /// Component `tid` (0 when the clock never saw that thread).
    pub(crate) fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Pointwise maximum — the join at every acquire edge.
    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (d, s) in self.0.iter_mut().zip(&other.0) {
            *d = (*d).max(*s);
        }
    }
}

/// One recorded shared-memory access: a byte range, its kind, and the
/// accessing thread's FastTrack epoch at access time.
#[derive(Clone, Copy, Debug)]
struct Access {
    start: usize,
    len: usize,
    write: bool,
    tid: usize,
    /// `clock[tid]` of the accessing thread when the access happened.
    epoch: u32,
    /// `file:line` of the instrumentation site.
    site: &'static str,
}

/// The shadow memory map of one execution: every instrumented access so
/// far, race-checked pairwise against each newcomer (records of the same
/// thread/kind/range/site collapse into one, keeping the map proportional
/// to the number of *distinct* instrumented sites, not loop iterations).
#[derive(Debug, Default)]
pub(crate) struct ShadowMemory {
    records: Vec<Access>,
}

fn kind(write: bool) -> &'static str {
    if write {
        "write"
    } else {
        "read"
    }
}

impl ShadowMemory {
    /// Records one access and returns the race message if it conflicts
    /// with an earlier access it is not happens-before ordered with.
    pub(crate) fn record(
        &mut self,
        me: usize,
        clock: &VClock,
        start: usize,
        len: usize,
        write: bool,
        site: &'static str,
    ) -> Option<String> {
        if len == 0 {
            return None;
        }
        for r in &self.records {
            if r.tid == me || !(r.write || write) {
                continue;
            }
            let overlaps = start < r.start + r.len && r.start < start + len;
            if !overlaps {
                continue;
            }
            if clock.get(r.tid) >= r.epoch {
                continue; // ordered: the prior access happens before us
            }
            return Some(format!(
                "data race: {} of {} byte(s) at {} (T{}) is unordered with {} of {} byte(s) \
                 at {} (T{}); ranges overlap at address {:#x}",
                kind(r.write),
                r.len,
                r.site,
                r.tid,
                kind(write),
                len,
                site,
                me,
                start.max(r.start),
            ));
        }
        let epoch = clock.get(me);
        if let Some(r) = self
            .records
            .iter_mut()
            .find(|r| r.tid == me && r.write == write && r.start == start && r.len == len)
        {
            r.epoch = epoch;
            r.site = site;
        } else {
            self.records.push(Access {
                start,
                len,
                write,
                tid: me,
                epoch,
                site,
            });
        }
        None
    }
}

/// Registers an instrumented **write** of the byte range
/// `[start, start + len)` by the calling shadow thread, poisoning the
/// execution with a race report if it conflicts with an unordered earlier
/// access. `site` should be the `file:line` of the write (the
/// `race_write!` macro stamps it). No-op outside a model run.
pub fn write_range(start: usize, len: usize, site: &'static str) {
    if let Some((exec, tid)) = sched::current() {
        exec.record_access(tid, start, len, true, site);
    }
}

/// Registers an instrumented **read** — see [`write_range`]. Reads never
/// race with other reads; only a write on an overlapping, unordered range
/// reports. No-op outside a model run.
pub fn read_range(start: usize, len: usize, site: &'static str) {
    if let Some((exec, tid)) = sched::current() {
        exec.record_access(tid, start, len, false, site);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vclock_join_is_pointwise_max_with_growth() {
        let mut a = VClock::default();
        a.tick(0);
        a.tick(0);
        let mut b = VClock::default();
        b.tick(2);
        a.join(&b);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 0);
        assert_eq!(a.get(2), 1);
    }

    #[test]
    fn unordered_overlapping_writes_race() {
        let mut mem = ShadowMemory::default();
        let mut c0 = VClock::default();
        c0.tick(0);
        let mut c1 = VClock::default();
        c1.tick(1);
        assert!(mem.record(0, &c0, 100, 8, true, "a.rs:1").is_none());
        let msg = mem.record(1, &c1, 104, 8, true, "b.rs:2").unwrap();
        assert!(msg.contains("a.rs:1"), "{msg}");
        assert!(msg.contains("b.rs:2"), "{msg}");
        assert!(msg.contains("data race"), "{msg}");
    }

    #[test]
    fn happens_before_ordered_accesses_do_not_race() {
        let mut mem = ShadowMemory::default();
        let mut c0 = VClock::default();
        c0.tick(0);
        assert!(mem.record(0, &c0, 100, 8, true, "a.rs:1").is_none());
        // Thread 1 acquired thread 0's release: its clock covers epoch 1.
        let mut c1 = VClock::default();
        c1.tick(1);
        c1.join(&c0);
        assert!(mem.record(1, &c1, 100, 8, true, "b.rs:2").is_none());
    }

    #[test]
    fn disjoint_ranges_and_read_read_do_not_race() {
        let mut mem = ShadowMemory::default();
        let mut c0 = VClock::default();
        c0.tick(0);
        let mut c1 = VClock::default();
        c1.tick(1);
        assert!(mem.record(0, &c0, 0, 8, true, "a.rs:1").is_none());
        assert!(mem.record(1, &c1, 8, 8, true, "b.rs:2").is_none());
        assert!(mem.record(0, &c0, 64, 4, false, "a.rs:3").is_none());
        assert!(mem.record(1, &c1, 64, 4, false, "b.rs:4").is_none());
    }

    #[test]
    fn read_write_conflicts_race_both_ways() {
        let mut mem = ShadowMemory::default();
        let mut c0 = VClock::default();
        c0.tick(0);
        let mut c1 = VClock::default();
        c1.tick(1);
        assert!(mem.record(0, &c0, 0, 8, false, "a.rs:1").is_none());
        assert!(mem.record(1, &c1, 0, 8, true, "b.rs:2").is_some());
        let mut mem = ShadowMemory::default();
        assert!(mem.record(0, &c0, 0, 8, true, "a.rs:1").is_none());
        assert!(mem.record(1, &c1, 4, 8, false, "b.rs:2").is_some());
    }

    #[test]
    fn same_thread_never_races_and_records_collapse() {
        let mut mem = ShadowMemory::default();
        let mut c0 = VClock::default();
        c0.tick(0);
        for _ in 0..100 {
            assert!(mem.record(0, &c0, 0, 8, true, "a.rs:1").is_none());
        }
        assert_eq!(mem.records.len(), 1);
    }
}
