//! Unsafe-site instrumentation coverage: every raw-pointer write
//! reachable from a `// gaurast-check: hot-path` root must lexically sit
//! inside a `race_region!` block (or carry a
//! `// gaurast-check: allow(race): reason` annotation naming where the
//! range *is* registered).
//!
//! This is the static half of the race story. The dynamic half — the
//! happens-before detector in [`crate::races`] — only sees accesses the
//! `race_write!`/`race_read!` macros register; an unsafe write nobody
//! instrumented is invisible to it, and "the detector found nothing"
//! would be vacuous. This rule closes that loop: the graph layer emits an
//! [`EventKind::UnsafeWrite`] for every store-shaped line inside an
//! `unsafe` block that no `race_region!` covers, and any such event
//! transitively reachable from the hot roots fails here with the full
//! witness chain, e.g.
//! `render::graph::execute → render::pipeline::FrameRunner::emit → *… = … (crates/render/src/pipeline.rs:569)`.
//!
//! Roots are the hot-marked functions — the same roots as hot-path
//! purity, because those subtrees are exactly the code the pool runs
//! concurrently.

use super::{run_reachability, EventMatch, RuleOutcome};
use crate::graph::{CallGraph, EventKind};
use crate::resolve::Resolution;

/// Kinds this rule fails on.
pub const KINDS: &[EventKind] = &[EventKind::UnsafeWrite];

/// Runs the rule: roots are the hot-marked functions.
pub fn run(graph: &CallGraph, res: &Resolution) -> RuleOutcome {
    let roots = graph.hot_roots();
    run_reachability(
        graph,
        res,
        "unsafe-instrumentation-coverage",
        &roots,
        |_, ev| {
            if KINDS.contains(&ev.kind) {
                EventMatch::Violation
            } else {
                EventMatch::Ignore
            }
        },
        KINDS,
    )
}
