//! Hot-path purity: everything reachable from a `// gaurast-check:
//! hot-path` root must be transitively free of heap allocation, locking,
//! and I/O.
//!
//! The line lint already polices the *bodies* of the marked functions;
//! this rule is why the marker means something two calls deep: a hot
//! function calling a helper that calls `Vec::push` on a growing vector
//! fails here with the full witness chain. Steady-state frames reuse
//! arena storage (ROADMAP item 1's whole premise) — an allocation an
//! `allow(alloc)` annotation has not justified is a per-frame cost the
//! paper's speedups silently pay for.

use super::{run_reachability, EventMatch, RuleOutcome};
use crate::graph::{CallGraph, EventKind};
use crate::resolve::Resolution;

/// Kinds this rule fails on.
pub const KINDS: &[EventKind] = &[EventKind::Alloc, EventKind::Lock, EventKind::Io];

/// Runs the rule: roots are the hot-marked functions.
pub fn run(graph: &CallGraph, res: &Resolution) -> RuleOutcome {
    let roots = graph.hot_roots();
    run_reachability(
        graph,
        res,
        "hot-path-purity",
        &roots,
        |_, ev| {
            if KINDS.contains(&ev.kind) {
                EventMatch::Violation
            } else {
                EventMatch::Ignore
            }
        },
        KINDS,
    )
}
