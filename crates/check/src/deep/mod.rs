//! Transitive fixpoint rules over the workspace call graph.
//!
//! Four rules run over the graph built by [`crate::graph`] and resolved
//! by [`crate::resolve`], all instances of one reachability engine:
//!
//! * [`purity`] — **hot-path purity**: everything reachable from the
//!   `// gaurast-check: hot-path` roots must be transitively free of
//!   heap allocation, locking, and I/O.
//! * [`taint`] — **determinism taint**: no path from a pipeline entry
//!   point to a clock, env read, default hasher, or thread-count query.
//! * [`panics`] — **serving panic-freedom**: no `unwrap`/`expect`/
//!   `panic!`-family construct (and, inside the service crate's own
//!   sources, no unguarded indexing) reachable from the serving entry
//!   points.
//! * [`races`] — **unsafe-instrumentation-coverage**: every raw-pointer
//!   write reachable from the hot roots must lexically sit inside a
//!   `race_region!` block, so the shadow race detector actually sees the
//!   access ranges it claims to check.
//!
//! Every violation carries a *witness path* — the call chain from a root
//! to the offending token, e.g.
//! `render::tile::bin_splats_pooled → render::sort::RadixSorter::sort_pairs → Vec::with_capacity (crates/render/src/sort.rs:88)`
//! — so a failure is a readable story, not a bare line number. The
//! `// gaurast-check: allow(…): reason` escape hatches are honored at any
//! depth (the graph records suppressed events separately and the report
//! counts them), and calls the resolver could not map are listed in the
//! report rather than silently dropped.
//!
//! [`analyze`] runs everything and returns a [`DeepReport`], which
//! renders both human-readable ([`DeepReport::human`]) and as the
//! machine-readable `CHECK_report.json` ([`DeepReport::json`]).

pub mod panics;
pub mod purity;
pub mod races;
pub mod taint;

use crate::graph::{CallGraph, Event, EventKind, FnNode};
use crate::resolve::{resolve, CrateDeps, Resolution};
use std::collections::VecDeque;
use std::path::Path;

/// Identifier of the report schema emitted by [`DeepReport::json`].
/// `v2` added the `unsafe-instrumentation-coverage` rule block and the
/// per-rule `advisory_top` function tallies.
pub const REPORT_SCHEMA: &str = "gaurast-check/deep/v2";

/// One transitive rule violation with its witness path.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Node ids from a rule root (first) to the offending function
    /// (last); length 1 when the root itself offends.
    pub witness: Vec<String>,
    /// The matched effect token (`Vec::new`, `Instant::now`, `.expect(`).
    pub token: String,
    /// Repo-relative file of the offending token.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: usize,
}

impl Violation {
    /// Renders `a → b → c → token (file:line)`.
    pub fn render(&self) -> String {
        format!(
            "{} → {} ({}:{})",
            self.witness.join(" → "),
            self.token,
            self.file,
            self.line
        )
    }
}

/// The outcome of one rule over the whole graph.
#[derive(Clone, Debug)]
pub struct RuleOutcome {
    /// Stable rule name (`hot-path-purity`, `determinism-taint`,
    /// `serving-panic-freedom`).
    pub rule: &'static str,
    /// Node ids of the rule's roots, in graph order.
    pub roots: Vec<String>,
    /// Violations found, in graph order.
    pub violations: Vec<Violation>,
    /// Events of the rule's kinds inside reachable functions that an
    /// `allow(…)` annotation suppressed — counted so escapes stay
    /// visible in the report.
    pub suppressed: usize,
    /// Reachable indexing sites outside the rule's enforced file set
    /// (only the panic-freedom rule populates this): advisory, not
    /// failing — full-pipeline indexing enforcement would demand
    /// hundreds of annotations for no proof value.
    pub advisory_index_sites: usize,
    /// The functions contributing the most advisory sites, as
    /// `(node id, count)` sorted descending — the worklist a future
    /// tightening of the enforced set would start from.
    pub advisory_top: Vec<(String, usize)>,
}

/// One call site the resolver could not map, with the caller's identity
/// attached for the report.
#[derive(Clone, Debug)]
pub struct UnresolvedReport {
    /// Node id of the calling function.
    pub caller: String,
    /// Callee name as written.
    pub name: String,
    /// Repo-relative file of the call site.
    pub file: String,
    /// 1-based line of the call site.
    pub line: usize,
}

/// Full deep-analysis result: graph statistics plus every rule outcome.
#[derive(Clone, Debug)]
pub struct DeepReport {
    /// Files parsed into the graph.
    pub files: usize,
    /// Functions in the graph.
    pub nodes: usize,
    /// Resolved call edges.
    pub edges: usize,
    /// Call sites mapped to the known-external vocabulary.
    pub external_calls: usize,
    /// Call sites the resolver could not map (conservatively reported).
    pub unresolved: Vec<UnresolvedReport>,
    /// Per-rule outcomes.
    pub rules: Vec<RuleOutcome>,
}

impl DeepReport {
    /// Total violation count across all rules.
    pub fn total_violations(&self) -> usize {
        self.rules.iter().map(|r| r.violations.len()).sum()
    }

    /// Human-readable report, one witness path per violation.
    pub fn human(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "deep: {} files, {} functions, {} edges ({} external calls, {} unresolved)\n",
            self.files,
            self.nodes,
            self.edges,
            self.external_calls,
            self.unresolved.len(),
        ));
        for rule in &self.rules {
            out.push_str(&format!(
                "rule {}: {} roots, {} violations, {} suppressed by allow(…)",
                rule.rule,
                rule.roots.len(),
                rule.violations.len(),
                rule.suppressed,
            ));
            if rule.advisory_index_sites > 0 {
                out.push_str(&format!(
                    ", {} advisory indexing sites",
                    rule.advisory_index_sites
                ));
            }
            out.push('\n');
            if !rule.advisory_top.is_empty() {
                out.push_str("  top advisory-site functions:\n");
                for (id, count) in &rule.advisory_top {
                    out.push_str(&format!("    {count:4}  {id}\n"));
                }
            }
            for v in &rule.violations {
                out.push_str(&format!("  {}\n", v.render()));
            }
        }
        if !self.unresolved.is_empty() {
            // The JSON report carries the full list; the console shows a
            // digest (closures and fn pointers dominate it).
            const SHOWN: usize = 20;
            out.push_str(&format!(
                "unresolved calls (counted conservatively, not dropped): {}\n",
                self.unresolved.len()
            ));
            for u in self.unresolved.iter().take(SHOWN) {
                out.push_str(&format!(
                    "  {} calls `{}` ({}:{})\n",
                    u.caller, u.name, u.file, u.line
                ));
            }
            if self.unresolved.len() > SHOWN {
                out.push_str(&format!(
                    "  … and {} more (see CHECK_report.json)\n",
                    self.unresolved.len() - SHOWN
                ));
            }
        }
        out
    }

    /// Machine-readable `CHECK_report.json` body (hand-rolled — the
    /// workspace builds dependency-free, same approach as
    /// `BENCH_sort.json`).
    pub fn json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", json_str(REPORT_SCHEMA)));
        out.push_str(&format!(
            "  \"graph\": {{ \"files\": {}, \"nodes\": {}, \"edges\": {}, \
             \"external_calls\": {}, \"unresolved_calls\": {} }},\n",
            self.files,
            self.nodes,
            self.edges,
            self.external_calls,
            self.unresolved.len(),
        ));
        out.push_str(&format!(
            "  \"total_violations\": {},\n",
            self.total_violations()
        ));
        out.push_str("  \"rules\": [\n");
        for (ri, rule) in self.rules.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"rule\": {},\n", json_str(rule.rule)));
            out.push_str(&format!(
                "      \"roots\": [{}],\n",
                rule.roots
                    .iter()
                    .map(|r| json_str(r))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            out.push_str(&format!("      \"suppressed\": {},\n", rule.suppressed));
            out.push_str(&format!(
                "      \"advisory_index_sites\": {},\n",
                rule.advisory_index_sites
            ));
            out.push_str(&format!(
                "      \"advisory_top\": [{}],\n",
                rule.advisory_top
                    .iter()
                    .map(|(id, c)| format!("{{ \"fn\": {}, \"sites\": {} }}", json_str(id), c))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            out.push_str("      \"violations\": [\n");
            for (vi, v) in rule.violations.iter().enumerate() {
                out.push_str(&format!(
                    "        {{ \"witness\": [{}], \"token\": {}, \"file\": {}, \"line\": {} }}{}\n",
                    v.witness
                        .iter()
                        .map(|w| json_str(w))
                        .collect::<Vec<_>>()
                        .join(", "),
                    json_str(&v.token),
                    json_str(&v.file),
                    v.line,
                    if vi + 1 == rule.violations.len() { "" } else { "," },
                ));
            }
            out.push_str("      ]\n");
            out.push_str(&format!(
                "    }}{}\n",
                if ri + 1 == self.rules.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"unresolved\": [\n");
        for (ui, u) in self.unresolved.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"caller\": {}, \"name\": {}, \"file\": {}, \"line\": {} }}{}\n",
                json_str(&u.caller),
                json_str(&u.name),
                json_str(&u.file),
                u.line,
                if ui + 1 == self.unresolved.len() {
                    ""
                } else {
                    ","
                },
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

/// Minimal JSON string escaping (paths and identifiers only).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Builds the graph under `root`, resolves it, and runs all three rules.
///
/// # Errors
/// Propagates I/O errors from the tree walk.
pub fn analyze(root: &Path) -> std::io::Result<DeepReport> {
    let graph = CallGraph::build(root)?;
    let deps = CrateDeps::discover(root);
    let res = resolve(&graph, &deps);
    Ok(analyze_graph(&graph, &res))
}

/// Runs the rules over an already-built graph (tests run this directly
/// on fixture trees).
pub fn analyze_graph(graph: &CallGraph, res: &Resolution) -> DeepReport {
    let rules = vec![
        purity::run(graph, res),
        taint::run(graph, res),
        panics::run(graph, res),
        races::run(graph, res),
    ];
    let unresolved = res
        .unresolved
        .iter()
        .map(|u| {
            let n = &graph.nodes[u.caller];
            UnresolvedReport {
                caller: n.id(),
                name: u.name.clone(),
                file: n.file.clone(),
                line: u.line,
            }
        })
        .collect();
    DeepReport {
        files: graph.files,
        nodes: graph.nodes.len(),
        edges: res.edge_count(),
        external_calls: res.external_calls,
        unresolved,
        rules,
    }
}

/// Reachability engine shared by the three rules: BFS from `roots` over
/// the resolved edges, recording a parent pointer per first discovery,
/// then one violation per matching event inside a reachable node, with
/// the witness path reconstructed from the parent chain.
pub(crate) fn run_reachability(
    graph: &CallGraph,
    res: &Resolution,
    rule: &'static str,
    roots: &[usize],
    matches: impl Fn(&FnNode, &Event) -> EventMatch,
    kinds: &[EventKind],
) -> RuleOutcome {
    let n = graph.nodes.len();
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    for &r in roots {
        if !seen[r] {
            seen[r] = true;
            queue.push_back(r);
        }
    }
    let mut order = Vec::new();
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &(v, _) in &res.edges[u] {
            if !seen[v] {
                seen[v] = true;
                parent[v] = Some(u);
                queue.push_back(v);
            }
        }
    }

    let witness_to = |node: usize| {
        let mut path = vec![graph.nodes[node].id()];
        let mut cur = node;
        while let Some(p) = parent[cur] {
            path.push(graph.nodes[p].id());
            cur = p;
        }
        path.reverse();
        path
    };

    let mut violations = Vec::new();
    let mut suppressed = 0;
    let mut advisory = 0;
    let mut advisory_by_fn: Vec<(usize, usize)> = Vec::new(); // (node, count)
    for &u in &order {
        let node = &graph.nodes[u];
        let mut node_advisory = 0;
        for ev in &node.events {
            match matches(node, ev) {
                EventMatch::Violation => violations.push(Violation {
                    witness: witness_to(u),
                    token: ev.token.clone(),
                    file: node.file.clone(),
                    line: ev.line,
                }),
                EventMatch::Advisory => {
                    advisory += 1;
                    node_advisory += 1;
                }
                EventMatch::Ignore => {}
            }
        }
        if node_advisory > 0 {
            advisory_by_fn.push((u, node_advisory));
        }
        suppressed += node
            .suppressed
            .iter()
            .filter(|e| kinds.contains(&e.kind))
            .count();
    }
    // Largest offenders first; node order breaks ties deterministically.
    advisory_by_fn.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    advisory_by_fn.truncate(ADVISORY_TOP);

    RuleOutcome {
        rule,
        roots: roots.iter().map(|&r| graph.nodes[r].id()).collect(),
        violations,
        suppressed,
        advisory_index_sites: advisory,
        advisory_top: advisory_by_fn
            .into_iter()
            .map(|(u, c)| (graph.nodes[u].id(), c))
            .collect(),
    }
}

/// How many top advisory-site functions a rule outcome retains.
const ADVISORY_TOP: usize = 8;

/// What a rule's event predicate decides about one event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum EventMatch {
    /// A failing finding with a witness path.
    Violation,
    /// Counted in [`RuleOutcome::advisory_index_sites`], not failing.
    Advisory,
    /// Not this rule's concern.
    Ignore,
}
