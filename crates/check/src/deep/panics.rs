//! Serving panic-freedom: no `unwrap`/`expect`/`panic!`-family construct
//! reachable from the serving entry points.
//!
//! A panic in a worker takes the whole batch (or, across an FFI
//! boundary, the process) with it; production serving must degrade to
//! typed [`ServiceError`]s instead. Roots are `RenderService::submit`
//! and `RenderService::render_batch`. Reachable panic constructs are
//! violations anywhere; an invariant that genuinely holds is stated with
//! `// gaurast-check: allow(panic): <proof>` at the site.
//!
//! Unguarded indexing (`xs[i]`) is enforced as a violation only inside
//! `crates/core/src/service/` — the service's own request-handling code,
//! where every index comes from client input. Elsewhere in the reachable
//! pipeline, indexing sites are *counted* as advisory
//! ([`super::RuleOutcome::advisory_index_sites`]): the math and raster
//! kernels index bound-checked arena slices on every line, and demanding
//! hundreds of annotations there would bury the signal without adding
//! proof.
//!
//! [`ServiceError`]: ../../../gaurast_core/service/enum.ServiceError.html

use super::{run_reachability, EventMatch, RuleOutcome};
use crate::graph::{CallGraph, EventKind};
use crate::resolve::Resolution;

/// Kinds this rule inspects (indexing is advisory outside the service).
pub const KINDS: &[EventKind] = &[EventKind::Panic, EventKind::Index];

/// Owner type rooting the analysis.
pub const ROOT_OWNER: &str = "RenderService";

/// Method names rooting the analysis.
pub const ROOT_METHODS: &[&str] = &["submit", "render_batch"];

/// File prefix inside which indexing is a violation, not advisory.
pub const ENFORCED_INDEX_PREFIX: &str = "crates/core/src/service/";

/// Runs the rule: roots are the serving entry methods.
pub fn run(graph: &CallGraph, res: &Resolution) -> RuleOutcome {
    let roots: Vec<usize> = (0..graph.nodes.len())
        .filter(|&i| {
            let n = &graph.nodes[i];
            n.owner.as_deref() == Some(ROOT_OWNER) && ROOT_METHODS.contains(&n.name.as_str())
        })
        .collect();
    run_reachability(
        graph,
        res,
        "serving-panic-freedom",
        &roots,
        |node, ev| match ev.kind {
            EventKind::Panic => EventMatch::Violation,
            EventKind::Index if node.file.starts_with(ENFORCED_INDEX_PREFIX) => {
                EventMatch::Violation
            }
            EventKind::Index => EventMatch::Advisory,
            _ => EventMatch::Ignore,
        },
        KINDS,
    )
}
