//! Determinism taint: no path from a pipeline entry point to a source of
//! run-to-run variation.
//!
//! The software reference must be bit-identical across runs and machines
//! — it is the oracle every backend (`hw`, `gpu`, `gscore`) is diffed
//! against. Taint sources are wall clocks (`Instant::now`, `SystemTime`),
//! environment reads, the default hasher's ambient randomness
//! (`RandomState`, `HashMap::new`), and thread-count queries
//! (`available_parallelism`): same binary, different machine, different
//! answer. Entry points are the frame renderers, the reference pass, the
//! pooled binner, and every backend `simulate*` function. Timing
//! *measurement* that provably cannot feed back into outputs carries
//! `// gaurast-check: allow(nondet): …` at the source line.

use super::{run_reachability, EventMatch, RuleOutcome};
use crate::graph::{CallGraph, EventKind};
use crate::resolve::Resolution;

/// Kinds this rule fails on.
pub const KINDS: &[EventKind] = &[EventKind::Nondet];

/// Entry-point function names rooting the taint analysis.
pub const ENTRY_NAMES: &[&str] = &["render_frame", "reference_pass", "bin_splats_pooled"];

/// Runs the rule: roots are the named entry points plus every backend
/// `simulate*` function.
pub fn run(graph: &CallGraph, res: &Resolution) -> RuleOutcome {
    let roots: Vec<usize> = (0..graph.nodes.len())
        .filter(|&i| {
            let name = graph.nodes[i].name.as_str();
            ENTRY_NAMES.contains(&name) || name.starts_with("simulate")
        })
        .collect();
    run_reachability(
        graph,
        res,
        "determinism-taint",
        &roots,
        |_, ev| {
            if KINDS.contains(&ev.kind) {
                EventMatch::Violation
            } else {
                EventMatch::Ignore
            }
        },
        KINDS,
    )
}
