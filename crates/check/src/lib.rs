//! `gaurast-check`: correctness tooling for the GauRast workspace — a
//! deterministic-interleaving concurrency model checker and a
//! repo-invariant lint pass.
//!
//! # Model checker
//!
//! [`model::Model`] runs a closure under every (or a seeded sample of)
//! sequentially consistent interleaving of its shadow-atomic operations.
//! The primitives live in [`shadow`]; production code reaches them through
//! the `gaurast_render::sync` facade, which re-exports `std` by default
//! and these shadows under `--cfg gaurast_model_check` — so the renderer's
//! release codegen is untouched while its worker-pool cursor and radix
//! scatter protocols get exhaustively interleaved in
//! `crates/check/tests/model.rs`.
//!
//! The scheduler ([`sched`]) serializes real OS threads: exactly one
//! shadow thread runs at a time, every shadow atomic operation is a
//! context-switch decision point, and depth-first enumeration with replay
//! (falling back to seeded random sampling) drives the exploration. No
//! external dependencies — the whole checker is this crate plus `std`.
//!
//! # Race detection
//!
//! Layered on the scheduler, [`races`] is a FastTrack-style happens-before
//! race detector: per-thread vector clocks follow the release/acquire
//! edges the code actually requested (plus spawn/join/park/unpark), and a
//! shadow memory map of instrumented address ranges (`race_read!` /
//! `race_write!` in `gaurast_render::sync`) flags write–write and
//! read–write pairs unordered by happens-before, reporting both access
//! sites and the reproduction schedule. `cargo run -p gaurast-check --
//! races` runs the detector's self-diagnostics plus the static
//! `unsafe-instrumentation-coverage` closure rule.
//!
//! # Lint pass
//!
//! [`lint`] enforces the invariants the compiler cannot: `SAFETY:`
//! comments on every `unsafe` site, total float ordering in the renderer,
//! allocation-free hot paths, clock/env-free deterministic pipeline code,
//! debug-only full-scan asserts, and crate-wide `unsafe` bans. Run it with
//! `cargo run -p gaurast-check -- lint`; CI fails on any finding.
//!
//! # Deep layer
//!
//! The line lint sees one call deep; the deep layer follows edges.
//! [`graph`] parses every library source into a module-qualified
//! function/method call graph, [`resolve`] turns textual call sites into
//! graph edges (counting what it cannot resolve instead of dropping it),
//! and [`deep`] runs the transitive fixpoint rules over the result:
//! hot-path purity, determinism taint, and serving panic-freedom, each
//! violation reported with a multi-hop witness path. Run it with
//! `cargo run -p gaurast-check -- deep`; CI asserts a clean
//! `CHECK_report.json`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod deep;
pub mod graph;
pub mod lint;
pub mod model;
pub mod races;
pub mod resolve;
pub mod rng;
pub mod sched;
pub mod shadow;
