//! Shadow concurrency primitives: drop-in stand-ins for the `std` atomics
//! and scoped threads that `gaurast_render::sync` re-exports when built
//! with `--cfg gaurast_model_check`.
//!
//! Outside a [`crate::model::Model::check`] run (no execution registered on
//! the calling thread), every operation falls through to plain `std`
//! behavior, so a `gaurast_model_check` build still runs its ordinary test
//! suites correctly — only slower by one thread-local lookup per atomic
//! operation. Inside a run, every operation is a scheduling yield point of
//! the virtual scheduler ([`crate::sched`]), and spawned scoped threads are
//! registered as shadow threads whose interleaving the checker controls.
//!
//! Only the primitives the renderer's protocols use are shadowed:
//! [`AtomicUsize`], [`scope`]/[`Scope::spawn`], and the persistent-pool
//! set — [`spawn`]/[`JoinHandle`], [`park`], [`current`] and
//! [`Thread::unpark`]. Execution is sequentially consistent (one atomic
//! operation is one indivisible scheduling step), but each operation's
//! `Ordering` argument decides the happens-before edges it contributes to
//! the race detector's vector clocks: `Acquire`-or-stronger loads join
//! the object's release clock, `Release`-or-stronger stores publish the
//! thread's clock, RMWs do both per their ordering, and `Relaxed`
//! contributes no edge — so [`crate::races`] checks the orderings the
//! protocols actually wrote down instead of trusting a hand audit.

use crate::sched::{self, Execution};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

/// Extracts a human-readable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Whether an ordering carries an acquire edge.
fn acquires(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

/// Whether an ordering carries a release edge.
fn releases(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

/// One shadow atomic operation on the object at address `obj`: a yield
/// point of the virtual scheduler followed by the vector-clock edge the
/// requested ordering carries. No-op outside a model run.
#[inline]
fn sync_op(obj: usize, acquire: bool, release: bool) {
    if let Some((exec, tid)) = sched::current() {
        exec.yield_point(tid);
        exec.atomic_edge(tid, obj, acquire, release);
    }
}

/// Shadow [`std::sync::atomic::AtomicUsize`]: same API surface (the subset
/// the renderer uses), backed by a real atomic — the virtual scheduler
/// serializes execution, so the real atomicity is only needed for the
/// fall-through mode — with a scheduler yield point before every
/// operation.
#[derive(Debug, Default)]
pub struct AtomicUsize {
    inner: std::sync::atomic::AtomicUsize,
}

impl AtomicUsize {
    /// A new shadow atomic holding `value`.
    pub const fn new(value: usize) -> Self {
        Self {
            inner: std::sync::atomic::AtomicUsize::new(value),
        }
    }

    /// This atomic's identity on the scheduler's release-clock map.
    #[inline]
    fn obj(&self) -> usize {
        self as *const Self as usize
    }

    /// Loads the value. Executed SC; the `Ordering` decides the acquire
    /// edge (`Acquire`/`SeqCst` join the object's release clock,
    /// `Relaxed` does not).
    #[inline]
    pub fn load(&self, order: Ordering) -> usize {
        sync_op(self.obj(), acquires(order), false);
        self.inner.load(Ordering::SeqCst)
    }

    /// Stores `value`. Executed SC; the `Ordering` decides the release
    /// edge (`Release`/`SeqCst` publish the thread's clock, `Relaxed`
    /// does not).
    #[inline]
    pub fn store(&self, value: usize, order: Ordering) {
        sync_op(self.obj(), false, releases(order));
        self.inner.store(value, Ordering::SeqCst);
    }

    /// Atomically adds `value`, returning the previous value. One
    /// indivisible scheduling step, like the hardware operation it models,
    /// with acquire/release edges per the requested `Ordering`.
    #[inline]
    pub fn fetch_add(&self, value: usize, order: Ordering) -> usize {
        sync_op(self.obj(), acquires(order), releases(order));
        self.inner.fetch_add(value, Ordering::SeqCst)
    }

    /// Atomically subtracts `value`, returning the previous value.
    #[inline]
    pub fn fetch_sub(&self, value: usize, order: Ordering) -> usize {
        sync_op(self.obj(), acquires(order), releases(order));
        self.inner.fetch_sub(value, Ordering::SeqCst)
    }

    /// Atomically swaps in `value`, returning the previous value.
    #[inline]
    pub fn swap(&self, value: usize, order: Ordering) -> usize {
        sync_op(self.obj(), acquires(order), releases(order));
        self.inner.swap(value, Ordering::SeqCst)
    }

    /// Compare-and-exchange, one indivisible scheduling step. A successful
    /// exchange carries the `success` ordering's edges; a failed one only
    /// the `failure` ordering's acquire edge (it does not write).
    #[inline]
    pub fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        match sched::current() {
            None => self
                .inner
                .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst),
            Some((exec, tid)) => {
                exec.yield_point(tid);
                let result =
                    self.inner
                        .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst);
                let order = if result.is_ok() { success } else { failure };
                exec.atomic_edge(
                    tid,
                    self.obj(),
                    acquires(order),
                    result.is_ok() && releases(order),
                );
                result
            }
        }
    }

    /// Consumes the atomic and returns the contained value (no yield: the
    /// value is exclusively owned).
    #[inline]
    pub fn into_inner(self) -> usize {
        self.inner.into_inner()
    }

    /// Exclusive access to the contained value (no yield: `&mut self`
    /// proves no concurrent access exists).
    #[inline]
    pub fn get_mut(&mut self) -> &mut usize {
        self.inner.get_mut()
    }
}

/// Shadow [`std::thread::Thread`]: an unpark-capable handle to a shadow
/// (or, outside model runs, a plain OS) thread.
#[derive(Clone, Debug)]
pub struct Thread {
    inner: std::thread::Thread,
    shadow: Option<(Arc<Execution>, usize)>,
}

impl Thread {
    /// Wakes the thread from [`park`], or banks a token its next `park`
    /// consumes — [`std::thread::Thread::unpark`] semantics (tokens do not
    /// accumulate), enumerated by the scheduler inside a model run.
    pub fn unpark(&self) {
        match &self.shadow {
            Some((exec, tid)) => {
                // The unparker's clock rides along as the release side of
                // the park/unpark edge — when it is a shadow thread of the
                // same execution.
                let who =
                    sched::current().and_then(|(cur, me)| Arc::ptr_eq(&cur, exec).then_some(me));
                exec.unpark(*tid, who);
            }
            None => self.inner.unpark(),
        }
    }
}

/// Shadow [`std::thread::current`]: a handle to the calling thread carrying
/// its shadow identity, so `unpark` through it reaches the scheduler.
pub fn current() -> Thread {
    Thread {
        inner: std::thread::current(),
        shadow: sched::current(),
    }
}

/// Shadow [`std::thread::park`]: inside a model run, a scheduling point
/// that blocks the shadow thread until some other thread unparks it (or
/// returns immediately on a banked token). Falls through to the real
/// `park` outside model runs.
pub fn park() {
    match sched::current() {
        Some((exec, tid)) => exec.park(tid),
        None => std::thread::park(),
    }
}

/// `true` when the calling thread belongs to a model run whose execution
/// has already recorded a failure. Shutdown paths (`Drop` impls that join
/// worker threads) consult this to avoid re-entering a poisoned schedule —
/// the poison unwinds every shadow thread on its own, so skipping the
/// orderly shutdown is safe. Always `false` outside model runs.
pub fn poisoned() -> bool {
    match sched::current() {
        Some((exec, _)) => exec.poisoned(),
        None => false,
    }
}

/// Shadow non-scoped [`std::thread::spawn`]: inside a model run the child
/// becomes a shadow thread of the active execution (registered before this
/// returns, parked until first scheduled); outside, a plain OS thread.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match sched::current() {
        None => {
            let inner = std::thread::spawn(f);
            let thread = Thread {
                inner: inner.thread().clone(),
                shadow: None,
            };
            JoinHandle { inner, thread }
        }
        Some((exec, parent)) => {
            let tid = exec.register_child(parent);
            let exec2 = Arc::clone(&exec);
            let inner = std::thread::spawn(move || {
                sched::set_current(Arc::clone(&exec2), tid);
                let result = catch_unwind(AssertUnwindSafe(|| {
                    exec2.start_child(tid);
                    f()
                }));
                sched::clear_current();
                match result {
                    Ok(value) => {
                        exec2.finish_thread(tid, None);
                        value
                    }
                    Err(payload) => {
                        exec2.finish_thread(tid, Some(panic_message(payload.as_ref())));
                        resume_unwind(payload)
                    }
                }
            });
            let thread = Thread {
                inner: inner.thread().clone(),
                shadow: Some((exec, tid)),
            };
            JoinHandle { inner, thread }
        }
    }
}

/// Shadow [`std::thread::JoinHandle`] for [`spawn`]ed threads.
#[derive(Debug)]
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    thread: Thread,
}

impl<T> JoinHandle<T> {
    /// Handle to the underlying thread (for [`Thread::unpark`]).
    pub fn thread(&self) -> &Thread {
        &self.thread
    }

    /// Joins the thread, mirroring [`std::thread::JoinHandle::join`].
    ///
    /// Inside a model run the block is modeled as a scheduler join *first*
    /// (so the schedule keeps driving the child while the caller logically
    /// blocks); by the time the real join runs the child has finished. On
    /// a poisoned execution the shadow join is skipped — the poison
    /// unwinds every shadow thread, so the real join still completes.
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((exec, me)) = sched::current() {
            if let Some((_, child)) = &self.thread.shadow {
                if !exec.poisoned() {
                    exec.join_children(me, &[*child]);
                }
            }
        }
        self.inner.join()
    }
}

/// Shadow scoped-thread handle mirroring [`std::thread::Scope`]: spawned
/// closures become shadow threads of the active execution (or plain scoped
/// threads outside a model run).
#[derive(Debug)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    exec: Option<(Arc<Execution>, usize)>,
    children: Mutex<Vec<usize>>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread, mirroring [`std::thread::Scope::spawn`].
    ///
    /// Inside a model run the child is registered with the execution
    /// before this returns (so the scheduler can already pick it), parks
    /// until first activated, and reports back on completion — carrying
    /// any panic message into the execution as a violation.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        match &self.exec {
            None => self.inner.spawn(f),
            Some((exec, parent)) => {
                let tid = exec.register_child(*parent);
                self.children.lock().unwrap().push(tid);
                let exec = Arc::clone(exec);
                self.inner.spawn(move || {
                    sched::set_current(Arc::clone(&exec), tid);
                    exec.start_child(tid);
                    let result = catch_unwind(AssertUnwindSafe(f));
                    sched::clear_current();
                    match result {
                        Ok(value) => {
                            exec.finish_thread(tid, None);
                            value
                        }
                        Err(payload) => {
                            exec.finish_thread(tid, Some(panic_message(payload.as_ref())));
                            resume_unwind(payload)
                        }
                    }
                })
            }
        }
    }
}

/// Shadow [`std::thread::scope`]: creates a scope whose spawned threads
/// participate in the active execution's schedule. The implicit
/// join-at-scope-exit is modeled as a blocking scheduler operation
/// (`join_children`) *before* the real `std` join, so the scheduler keeps
/// driving the children while the creating thread logically blocks — by
/// the time the real join runs, every child has already finished.
pub fn scope<'env, F, T>(f: F) -> T
where
    // Unlike `std::thread::scope`, the borrow of the shadow scope handle is
    // a lifetime of its own rather than `'scope` itself: the handle is a
    // local wrapping `&'scope std::thread::Scope`, so it cannot be borrowed
    // for all of `'scope`. `spawn(&self, …)` still enforces `F: 'scope` on
    // the spawned closures, which is what scoped soundness needs.
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    let exec = sched::current();
    std::thread::scope(|inner| {
        let shadow = Scope {
            inner,
            exec,
            children: Mutex::new(Vec::new()),
        };
        let out = f(&shadow);
        if let Some((exec, me)) = &shadow.exec {
            let children = shadow.children.lock().unwrap().clone();
            exec.join_children(*me, &children);
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn falls_through_to_std_outside_model_runs() {
        // No execution registered: the shadow primitives behave exactly
        // like std and real threads run truly concurrently.
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(counter.into_inner(), 400);
    }

    #[test]
    fn park_spawn_fall_through_to_std_outside_model_runs() {
        // No execution registered: spawn creates a real thread, park/unpark
        // are the real token protocol, join returns the closure's value.
        let handle = spawn(|| {
            park(); // consumes the token banked below (or blocks until it)
            21 * 2
        });
        handle.thread().unpark();
        assert_eq!(handle.join().unwrap(), 42);
        assert!(!poisoned());
        let me = current();
        me.unpark(); // bank a token…
        park(); // …and consume it: returns immediately instead of blocking
    }

    #[test]
    fn atomic_api_surface_matches_std() {
        let a = AtomicUsize::new(5);
        assert_eq!(a.load(Ordering::SeqCst), 5);
        a.store(7, Ordering::SeqCst);
        assert_eq!(a.fetch_add(3, Ordering::SeqCst), 7);
        assert_eq!(a.swap(1, Ordering::SeqCst), 10);
        assert_eq!(
            a.compare_exchange(1, 2, Ordering::SeqCst, Ordering::SeqCst),
            Ok(1)
        );
        let mut a = a;
        *a.get_mut() = 9;
        assert_eq!(a.into_inner(), 9);
    }
}
