//! The virtual scheduler: serialized execution of shadow threads with an
//! explored (or sampled) context-switch decision at every shared-memory
//! operation.
//!
//! # Model
//!
//! An [`Execution`] owns a set of *shadow threads* — the controlling test
//! thread (id 0) plus every thread spawned through
//! [`crate::shadow::Scope::spawn`]. At any instant exactly one shadow
//! thread is *active*; all others are parked on a condvar. Every shadow
//! atomic operation calls `Execution::yield_point`, which consults the
//! schedule strategy to pick the next active thread among the runnable
//! ones. Because only one thread ever executes at a time, even *buggy*
//! protocols corrupt values deterministically instead of invoking
//! undefined behavior — the checker observes the corruption safely.
//!
//! The explored semantics are **sequentially consistent** interleavings:
//! one atomic operation is one indivisible scheduling step. Weaker
//! `Ordering`s execute as SC, but they are **not** ignored: each
//! operation's requested ordering decides which vector-clock edges it
//! contributes to the happens-before relation (see below), so the race
//! detector checks the orderings the code actually wrote down. What the
//! checker proves is protocol logic — exactly-once claims, disjoint
//! writes, termination, data-race freedom of the instrumented ranges —
//! over every (or a sampled set of) SC interleavings.
//!
//! # Exploration
//!
//! A schedule is the sequence of decisions taken at points where more than
//! one thread was runnable. [`Strategy::Replay`] drives depth-first
//! enumeration: follow a forced prefix of choices, then always pick the
//! first candidate, and record `(chosen, options)` pairs so the driver in
//! [`crate::model`] can backtrack to the last non-exhausted decision.
//! [`Strategy::Random`] replaces the choice with a seeded
//! [`XorShift64`] draw — the sampling mode for
//! interleavings too large to enumerate.
//!
//! # Happens-before tracking
//!
//! On top of the SC interleaving, every execution maintains per-thread
//! **vector clocks** (`races::VClock`) and builds the
//! happens-before relation from the orderings the program actually wrote
//! down: an `Acquire` load joins the loading thread's clock with the
//! atomic object's release clock, a `Release` store publishes the storing
//! thread's clock into it, RMWs do both sides per their ordering, and
//! `spawn`/`join`/`park`/`unpark` contribute their standard edges. A
//! `Relaxed` operation contributes **no** edge — so a protocol that relies
//! on an ordering it never requested shows up as a data race on the
//! shadow memory map ([`crate::races`]), not as a silent pass.

use crate::races::{ShadowMemory, VClock};
use crate::rng::XorShift64;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Panic payload used to unwind shadow threads once an execution is
/// poisoned by a first failure; the original failure message is preserved
/// in the execution state, not in this payload.
pub(crate) const ABORT_MSG: &str = "gaurast-check: execution aborted after violation";

/// One recorded scheduling decision (only points with ≥ 2 runnable
/// candidates are recorded).
#[derive(Clone, Copy, Debug)]
pub struct Decision {
    /// Index chosen among the sorted runnable candidates.
    pub chosen: usize,
    /// Number of runnable candidates at this point.
    pub options: usize,
    /// Shadow thread id the choice activated.
    pub tid: usize,
}

/// How the scheduler resolves decision points (see module docs).
#[derive(Clone, Debug)]
pub enum Strategy {
    /// Follow `prefix` choice-by-choice, then always pick candidate 0 —
    /// the depth-first enumeration mode.
    Replay {
        /// Forced choices for the first `prefix.len()` decision points.
        prefix: Vec<usize>,
    },
    /// Pick uniformly among candidates with a seeded PRNG — the sampling
    /// mode for state spaces too large to enumerate.
    Random {
        /// The per-schedule generator.
        rng: XorShift64,
    },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ThreadState {
    Runnable,
    /// Parked until every thread in its wait set finishes (scope join).
    Blocked,
    /// Parked via `thread::park` until another thread unparks it.
    Parked,
    Finished,
}

#[derive(Debug)]
struct State {
    threads: Vec<ThreadState>,
    /// Join wait set per thread (`Some` iff the thread is `Blocked`).
    waiting: Vec<Option<Vec<usize>>>,
    /// Pending `unpark` token per thread ([`std::thread::park`] semantics:
    /// tokens do not accumulate, and a `Parked` thread never holds one —
    /// `unpark` wakes it instead).
    tokens: Vec<bool>,
    active: usize,
    /// First failure observed in this execution, if any.
    poisoned: Option<String>,
    decisions: Vec<Decision>,
    strategy: Strategy,
    /// Yield points executed — a livelock guard.
    ops: u64,
    /// Per-thread vector clocks (the happens-before relation).
    clocks: Vec<VClock>,
    /// Per-atomic-object release clocks, keyed by the shadow atomic's
    /// address: the join of every clock published into the object by a
    /// `Release`-or-stronger operation.
    released: HashMap<usize, VClock>,
    /// Pending release clock delivered by `unpark`, joined into the target
    /// thread's clock when its `park` returns (park/unpark synchronize).
    unpark_clocks: Vec<VClock>,
    /// The shadow memory map race-checked by [`crate::races`].
    mem: ShadowMemory,
}

/// One serialized run of the program under test (see module docs).
#[derive(Debug)]
pub struct Execution {
    state: Mutex<State>,
    turn: Condvar,
    max_ops: u64,
}

thread_local! {
    /// The execution this OS thread is currently acting in, plus its
    /// shadow thread id. `None` outside model runs, in which case every
    /// shadow primitive falls through to plain `std` behavior.
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// The calling OS thread's shadow identity, if it is part of a model run.
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(exec: Arc<Execution>, tid: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((exec, tid)));
}

pub(crate) fn clear_current() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

impl Execution {
    /// A fresh execution whose controlling thread is shadow thread 0
    /// (runnable and active).
    pub(crate) fn new(strategy: Strategy, max_ops: u64) -> Arc<Self> {
        let mut clock0 = VClock::default();
        clock0.tick(0);
        Arc::new(Self {
            state: Mutex::new(State {
                threads: vec![ThreadState::Runnable],
                waiting: vec![None],
                tokens: vec![false],
                active: 0,
                poisoned: None,
                decisions: Vec::new(),
                strategy,
                ops: 0,
                clocks: vec![clock0],
                released: HashMap::new(),
                unpark_clocks: vec![VClock::default()],
                mem: ShadowMemory::default(),
            }),
            turn: Condvar::new(),
            max_ops,
        })
    }

    /// Consumes the run's results: recorded decisions and the failure
    /// message, if the execution was poisoned.
    pub(crate) fn take_results(&self) -> (Vec<Decision>, Option<String>) {
        let mut st = self.state.lock().unwrap();
        (std::mem::take(&mut st.decisions), st.poisoned.take())
    }

    /// Picks the next active thread among the runnable ones, recording the
    /// decision when there is a real choice. Panics (poisons) if replay
    /// diverges, which would mean the program under test is not
    /// deterministic given the schedule.
    fn choose_locked(&self, st: &mut State) -> usize {
        let candidates: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == ThreadState::Runnable)
            .map(|(i, _)| i)
            .collect();
        debug_assert!(
            !candidates.is_empty(),
            "choose called with no runnable thread"
        );
        if candidates.len() == 1 {
            return candidates[0];
        }
        let idx = match &mut st.strategy {
            Strategy::Replay { prefix } => {
                let at = st.decisions.len();
                if at < prefix.len() {
                    assert!(
                        prefix[at] < candidates.len(),
                        "schedule replay diverged: the program under test must be \
                         deterministic given the decision sequence"
                    );
                    prefix[at]
                } else {
                    0
                }
            }
            Strategy::Random { rng } => rng.index(candidates.len()),
        };
        st.decisions.push(Decision {
            chosen: idx,
            options: candidates.len(),
            tid: candidates[idx],
        });
        candidates[idx]
    }

    /// Parks the calling shadow thread until it is the active one (or the
    /// execution is poisoned, in which case it unwinds with [`ABORT_MSG`]).
    fn wait_for_turn<'a>(
        &'a self,
        mut st: MutexGuard<'a, State>,
        me: usize,
    ) -> MutexGuard<'a, State> {
        loop {
            if st.poisoned.is_some() {
                drop(st);
                std::panic::panic_any(ABORT_MSG);
            }
            if st.active == me && st.threads[me] == ThreadState::Runnable {
                return st;
            }
            st = self.turn.wait(st).unwrap();
        }
    }

    /// The context-switch point every shadow atomic operation passes
    /// through: pick the next active thread and, if it is someone else,
    /// hand over and park until re-activated.
    pub(crate) fn yield_point(&self, me: usize) {
        let mut st = self.state.lock().unwrap();
        if st.poisoned.is_some() {
            drop(st);
            std::panic::panic_any(ABORT_MSG);
        }
        st.ops += 1;
        if st.ops > self.max_ops {
            st.poisoned = Some(format!(
                "operation budget exceeded ({} yield points): livelock or runaway loop",
                self.max_ops
            ));
            self.turn.notify_all();
            drop(st);
            std::panic::panic_any(ABORT_MSG);
        }
        let next = self.choose_locked(&mut st);
        if next != me {
            st.active = next;
            self.turn.notify_all();
            let _st = self.wait_for_turn(st, me);
        }
    }

    /// Applies the release/acquire vector-clock edge of one shadow atomic
    /// operation on the object at address `obj`. Called by the shadow
    /// atomics *after* their [`Execution::yield_point`] — the scheduler is
    /// serialized, so nothing runs between the two. `acquire` joins the
    /// object's release clock into the thread's; `release` publishes the
    /// thread's clock into the object's and then advances the thread's own
    /// epoch. A `Relaxed` operation passes `false` for both and leaves the
    /// happens-before relation untouched.
    pub(crate) fn atomic_edge(&self, me: usize, obj: usize, acquire: bool, release: bool) {
        if !acquire && !release {
            return;
        }
        let mut st = self.state.lock().unwrap();
        let st = &mut *st;
        if acquire {
            if let Some(rel) = st.released.get(&obj) {
                st.clocks[me].join(rel);
            }
        }
        if release {
            st.released.entry(obj).or_default().join(&st.clocks[me]);
            st.clocks[me].tick(me);
        }
    }

    /// Records one instrumented shared-memory access on the shadow memory
    /// map and poisons the execution (first failure wins, unwinding the
    /// caller) if it is unordered, under happens-before, with a conflicting
    /// earlier access. See [`crate::races`].
    pub(crate) fn record_access(
        &self,
        me: usize,
        start: usize,
        len: usize,
        write: bool,
        site: &'static str,
    ) {
        let mut st = self.state.lock().unwrap();
        if st.poisoned.is_some() {
            drop(st);
            std::panic::panic_any(ABORT_MSG);
        }
        let stm = &mut *st;
        if let Some(msg) = stm.mem.record(me, &stm.clocks[me], start, len, write, site) {
            stm.poisoned = Some(msg);
            self.turn.notify_all();
            drop(st);
            std::panic::panic_any(ABORT_MSG);
        }
    }

    /// Shadow [`std::thread::park`]: a scheduling point that either
    /// consumes a pending unpark token (and keeps running) or parks the
    /// calling thread until [`Execution::unpark`] wakes it. Parking when no
    /// runnable thread remains poisons the execution as a deadlock — the
    /// real program would hang here (a lost wakeup, for protocols built on
    /// park/unpark).
    pub(crate) fn park(&self, me: usize) {
        let mut st = self.state.lock().unwrap();
        if st.poisoned.is_some() {
            drop(st);
            std::panic::panic_any(ABORT_MSG);
        }
        st.ops += 1;
        if st.ops > self.max_ops {
            st.poisoned = Some(format!(
                "operation budget exceeded ({} yield points): livelock or runaway loop",
                self.max_ops
            ));
            self.turn.notify_all();
            drop(st);
            std::panic::panic_any(ABORT_MSG);
        }
        if st.tokens[me] {
            // A banked unpark: consume it (and the unparker's release
            // clock — park/unpark synchronize) and return immediately,
            // yielding the schedule like any other operation.
            st.tokens[me] = false;
            let pending = std::mem::take(&mut st.unpark_clocks[me]);
            st.clocks[me].join(&pending);
            let next = self.choose_locked(&mut st);
            if next != me {
                st.active = next;
                self.turn.notify_all();
                let _st = self.wait_for_turn(st, me);
            }
            return;
        }
        st.threads[me] = ThreadState::Parked;
        if st.threads.contains(&ThreadState::Runnable) {
            let next = self.choose_locked(&mut st);
            st.active = next;
            self.turn.notify_all();
        } else {
            st.poisoned = Some(
                "deadlock: every live shadow thread is parked or blocked (lost wakeup?)"
                    .to_string(),
            );
            self.turn.notify_all();
            drop(st);
            std::panic::panic_any(ABORT_MSG);
        }
        let mut st = self.wait_for_turn(st, me);
        // The wakeup synchronizes: everything the unparker did before its
        // `unpark` happens before anything we do after this `park`.
        let pending = std::mem::take(&mut st.unpark_clocks[me]);
        st.clocks[me].join(&pending);
    }

    /// Shadow [`std::thread::Thread::unpark`]: wakes a parked shadow thread
    /// (making it runnable again) or banks a token its next `park`
    /// consumes. Not itself a yield point — the caller keeps running, and
    /// the woken thread competes at the next decision point, exactly like
    /// the real primitive. `who` is the unparking thread's shadow id when
    /// it belongs to this execution: its clock is published as the release
    /// side of the park/unpark synchronization edge.
    pub(crate) fn unpark(&self, tid: usize, who: Option<usize>) {
        let mut st = self.state.lock().unwrap();
        if let Some(w) = who {
            let clock = st.clocks[w].clone();
            st.unpark_clocks[tid].join(&clock);
            st.clocks[w].tick(w);
        }
        if st.threads[tid] == ThreadState::Parked {
            st.threads[tid] = ThreadState::Runnable;
            st.tokens[tid] = false;
        } else if st.threads[tid] != ThreadState::Finished {
            st.tokens[tid] = true;
        }
    }

    /// Whether this execution has recorded a failure. Not a yield point —
    /// drop paths use it to avoid re-entering a poisoned schedule.
    pub(crate) fn poisoned(&self) -> bool {
        self.state.lock().unwrap().poisoned.is_some()
    }

    /// Registers a newly spawned shadow thread as runnable and returns its
    /// id. The spawner keeps running: spawning is not itself a yield point
    /// (the child cannot touch shared state before its first scheduled
    /// activation, and the parent yields at its own next atomic operation
    /// or join, where the schedule may switch to the child). The spawn is
    /// a release edge: the child's clock starts as a copy of `parent`'s,
    /// so everything the parent did so far happens before the child.
    pub(crate) fn register_child(&self, parent: usize) -> usize {
        let mut st = self.state.lock().unwrap();
        st.threads.push(ThreadState::Runnable);
        st.waiting.push(None);
        st.tokens.push(false);
        let child = st.threads.len() - 1;
        let mut clock = st.clocks[parent].clone();
        clock.tick(child);
        st.clocks.push(clock);
        st.clocks[parent].tick(parent);
        st.unpark_clocks.push(VClock::default());
        child
    }

    /// First park of a freshly spawned shadow thread: wait to be scheduled
    /// for the first time before running any of its closure.
    pub(crate) fn start_child(&self, me: usize) {
        let st = self.state.lock().unwrap();
        let _st = self.wait_for_turn(st, me);
    }

    /// Marks a shadow thread finished. A `panic_msg` poisons the execution
    /// (first failure wins) and wakes everyone so they can unwind;
    /// otherwise threads whose join sets completed become runnable again
    /// and the schedule picks the next active thread.
    pub(crate) fn finish_thread(&self, me: usize, panic_msg: Option<String>) {
        let mut st = self.state.lock().unwrap();
        st.threads[me] = ThreadState::Finished;
        st.waiting[me] = None;
        if let Some(msg) = panic_msg {
            if st.poisoned.is_none() {
                st.poisoned = Some(msg);
            }
            self.turn.notify_all();
            return;
        }
        if st.poisoned.is_some() {
            self.turn.notify_all();
            return;
        }
        for t in 0..st.threads.len() {
            if st.threads[t] == ThreadState::Blocked {
                let done = st.waiting[t]
                    .as_ref()
                    .is_some_and(|w| w.iter().all(|&c| st.threads[c] == ThreadState::Finished));
                if done {
                    st.threads[t] = ThreadState::Runnable;
                    st.waiting[t] = None;
                }
            }
        }
        if st.threads.contains(&ThreadState::Runnable) {
            let next = self.choose_locked(&mut st);
            st.active = next;
            self.turn.notify_all();
        } else if st
            .threads
            .iter()
            .any(|&t| t == ThreadState::Blocked || t == ThreadState::Parked)
        {
            st.poisoned = Some("deadlock: every live shadow thread is blocked".to_string());
            self.turn.notify_all();
        }
        // All finished: nothing left to schedule — the controller has (or
        // is about to) run to completion.
    }

    /// Join: parks the calling thread until every thread in `children` has
    /// finished (used for both the scope-exit join and single
    /// `JoinHandle::join`s).
    pub(crate) fn join_children(&self, me: usize, children: &[usize]) {
        let mut st = self.state.lock().unwrap();
        if st.poisoned.is_some() {
            drop(st);
            std::panic::panic_any(ABORT_MSG);
        }
        if children
            .iter()
            .all(|&c| st.threads[c] == ThreadState::Finished)
        {
            Self::join_clocks(&mut st, me, children);
            return;
        }
        st.threads[me] = ThreadState::Blocked;
        st.waiting[me] = Some(children.to_vec());
        if st.threads.contains(&ThreadState::Runnable) {
            let next = self.choose_locked(&mut st);
            st.active = next;
            self.turn.notify_all();
        } else {
            st.poisoned = Some("deadlock: join with no runnable thread".to_string());
            self.turn.notify_all();
            drop(st);
            std::panic::panic_any(ABORT_MSG);
        }
        let mut st = self.wait_for_turn(st, me);
        Self::join_clocks(&mut st, me, children);
    }

    /// The acquire side of a thread join: everything each finished child
    /// did happens before anything the joiner does next.
    fn join_clocks(st: &mut State, me: usize, children: &[usize]) {
        for &c in children {
            let clock = st.clocks[c].clone();
            st.clocks[me].join(&clock);
        }
    }
}

/// Renders a decision list as a compact schedule string (`T0→T1→T1`),
/// the reproduction trace attached to violations.
pub(crate) fn format_schedule(decisions: &[Decision]) -> String {
    if decisions.is_empty() {
        return "(no decision points: single-threaded schedule)".to_string();
    }
    let mut s = String::new();
    for (i, d) in decisions.iter().enumerate() {
        if i > 0 {
            s.push('→');
        }
        s.push('T');
        s.push_str(&d.tid.to_string());
    }
    s
}
