//! Tiny seeded PRNG for the sampling scheduler.
//!
//! The model checker must be dependency-free (the shadow atomics are
//! imported by `gaurast-render` itself), so it carries its own xorshift64*
//! generator instead of using the vendored `rand`. Determinism is the only
//! requirement: the same seed always replays the same schedule sequence.

/// A xorshift64* generator (Vigna 2016): tiny, fast, and plenty for
/// choosing among a handful of runnable threads.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// A generator seeded with `seed` (a zero seed is remapped — xorshift
    /// has an all-zero fixed point).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniformly-enough distributed index in `0..n` (`n > 0`).
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn index_stays_in_range() {
        let mut r = XorShift64::new(7);
        for n in 1..20 {
            for _ in 0..50 {
                assert!(r.index(n) < n);
            }
        }
    }
}
