//! Execution timelines for the Fig. 8 visualization.

/// The two execution units of the CUDA-collaborative schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Unit {
    /// CUDA cores (Stages 1–2: preprocessing + sorting).
    CudaCores,
    /// The GauRast enhanced rasterizer (Stage 3).
    Rasterizer,
}

impl Unit {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Unit::CudaCores => "CUDA cores",
            Unit::Rasterizer => "rasterizer",
        }
    }
}

/// One stage execution of one frame on one unit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StageSpan {
    /// Frame index.
    pub frame: usize,
    /// Executing unit.
    pub unit: Unit,
    /// Start time, s.
    pub start_s: f64,
    /// End time, s.
    pub end_s: f64,
}

impl StageSpan {
    /// Span duration, s.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// A full multi-frame schedule.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Timeline {
    spans: Vec<StageSpan>,
}

impl Timeline {
    /// Timeline from spans.
    pub fn new(spans: Vec<StageSpan>) -> Self {
        Self { spans }
    }

    /// All spans.
    pub fn spans(&self) -> &[StageSpan] {
        &self.spans
    }

    /// Span of `frame` on `unit`, if present.
    pub fn span(&self, frame: usize, unit: Unit) -> Option<&StageSpan> {
        self.spans
            .iter()
            .find(|s| s.frame == frame && s.unit == unit)
    }

    /// Completion time of the whole schedule, s.
    pub fn makespan_s(&self) -> f64 {
        self.spans.iter().map(|s| s.end_s).fold(0.0, f64::max)
    }

    /// Busy fraction of a unit over the makespan.
    pub fn utilization(&self, unit: Unit) -> f64 {
        let makespan = self.makespan_s();
        if makespan <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .spans
            .iter()
            .filter(|s| s.unit == unit)
            .map(StageSpan::duration_s)
            .sum();
        busy / makespan
    }

    /// Renders an ASCII Gantt chart (one row per unit), the textual Fig. 8.
    pub fn ascii_gantt(&self, columns: usize) -> String {
        let makespan = self.makespan_s();
        if makespan <= 0.0 || columns == 0 {
            return String::new();
        }
        let mut out = String::new();
        for unit in [Unit::CudaCores, Unit::Rasterizer] {
            let mut row = vec![b'.'; columns];
            for s in self.spans.iter().filter(|s| s.unit == unit) {
                let a = ((s.start_s / makespan) * columns as f64) as usize;
                let b = (((s.end_s / makespan) * columns as f64).ceil() as usize).min(columns);
                let glyph = b'0' + (s.frame % 10) as u8;
                for cell in &mut row[a.min(columns - 1)..b] {
                    *cell = glyph;
                }
            }
            out.push_str(&format!("{:>11} |", unit.label()));
            out.push_str(std::str::from_utf8(&row).expect("ascii"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline() -> Timeline {
        Timeline::new(vec![
            StageSpan {
                frame: 0,
                unit: Unit::CudaCores,
                start_s: 0.0,
                end_s: 1.0,
            },
            StageSpan {
                frame: 0,
                unit: Unit::Rasterizer,
                start_s: 1.0,
                end_s: 3.0,
            },
            StageSpan {
                frame: 1,
                unit: Unit::CudaCores,
                start_s: 1.0,
                end_s: 2.0,
            },
            StageSpan {
                frame: 1,
                unit: Unit::Rasterizer,
                start_s: 3.0,
                end_s: 5.0,
            },
        ])
    }

    #[test]
    fn makespan_is_last_end() {
        assert_eq!(timeline().makespan_s(), 5.0);
    }

    #[test]
    fn utilization_per_unit() {
        let tl = timeline();
        assert!((tl.utilization(Unit::CudaCores) - 2.0 / 5.0).abs() < 1e-12);
        assert!((tl.utilization(Unit::Rasterizer) - 4.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn span_lookup() {
        let tl = timeline();
        assert_eq!(tl.span(1, Unit::Rasterizer).unwrap().start_s, 3.0);
        assert!(tl.span(2, Unit::Rasterizer).is_none());
    }

    #[test]
    fn gantt_has_two_rows_and_digits() {
        let g = timeline().ascii_gantt(40);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('0') && lines[0].contains('1'));
        assert!(lines[1].contains('0') && lines[1].contains('1'));
    }

    #[test]
    fn empty_timeline_is_harmless() {
        let tl = Timeline::default();
        assert_eq!(tl.makespan_s(), 0.0);
        assert_eq!(tl.utilization(Unit::CudaCores), 0.0);
        assert_eq!(tl.ascii_gantt(10), "");
    }
}
