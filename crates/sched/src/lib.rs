//! CUDA-collaborative scheduling (paper §IV-C, Fig. 8).
//!
//! GauRast keeps the non-dominant pipeline stages — preprocessing and
//! sorting (Stages 1–2) — on the CUDA cores and offloads the dominant
//! Gaussian rasterization (Stage 3) to the enhanced rasterizer. Because the
//! two units are independent, frame `i+1`'s Stages 1–2 run while frame
//! `i`'s Stage 3 rasterizes: a classic two-stage software pipeline whose
//! steady-state period is `max(t₁₂, t₃)` instead of `t₁₂ + t₃`.
//!
//! This crate is dependency-free: it consumes plain per-stage times and
//! produces timelines ([`Timeline`]), steady-state throughput
//! ([`PipelineSchedule`]) and end-to-end comparisons ([`EndToEnd`]).
//!
//! # Example
//!
//! ```
//! use gaurast_sched::PipelineSchedule;
//!
//! // Stages 1-2 take 20 ms on CUDA, Stage 3 takes 15 ms on GauRast.
//! let sched = PipelineSchedule::new(0.020, 0.015)?;
//! assert!((sched.steady_state_fps() - 50.0).abs() < 1e-9);
//! # Ok::<(), gaurast_sched::ScheduleError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod endtoend;
mod pipeline;
pub mod sequence;
mod timeline;

pub use endtoend::EndToEnd;
pub use pipeline::{PipelineSchedule, ScheduleError};
pub use sequence::{replay, FrameCost, SequenceReport};
pub use timeline::{StageSpan, Timeline, Unit};
