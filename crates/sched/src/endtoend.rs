//! End-to-end FPS comparison: baseline (all on CUDA, serial) versus the
//! CUDA-collaborative schedule (Stage 3 on GauRast, pipelined).

use crate::pipeline::{PipelineSchedule, ScheduleError};

/// End-to-end comparison for one scene.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EndToEnd {
    /// Stages 1–2 time on CUDA, s (same in both systems).
    pub stages12_s: f64,
    /// Stage 3 on the CUDA baseline, s.
    pub raster_cuda_s: f64,
    /// Stage 3 on GauRast, s.
    pub raster_gaurast_s: f64,
}

impl EndToEnd {
    /// Validates and constructs.
    ///
    /// # Errors
    /// Returns [`ScheduleError`] for non-positive or non-finite times.
    pub fn new(
        stages12_s: f64,
        raster_cuda_s: f64,
        raster_gaurast_s: f64,
    ) -> Result<Self, ScheduleError> {
        // Reuse the schedule validation for each pair.
        PipelineSchedule::new(stages12_s, raster_cuda_s)?;
        PipelineSchedule::new(stages12_s, raster_gaurast_s)?;
        Ok(Self {
            stages12_s,
            raster_cuda_s,
            raster_gaurast_s,
        })
    }

    /// Baseline frame time: everything on the CUDA cores, serial.
    pub fn baseline_period_s(&self) -> f64 {
        self.stages12_s + self.raster_cuda_s
    }

    /// Baseline FPS (the paper's "w/o GauRast" bars in Fig. 11).
    pub fn baseline_fps(&self) -> f64 {
        1.0 / self.baseline_period_s()
    }

    /// GauRast schedule (Stage 3 offloaded, pipelined with Stages 1–2).
    pub fn gaurast_schedule(&self) -> PipelineSchedule {
        PipelineSchedule::new(self.stages12_s, self.raster_gaurast_s)
            .expect("validated at construction")
    }

    /// GauRast steady-state FPS (the "w/ GauRast" bars).
    pub fn gaurast_fps(&self) -> f64 {
        self.gaurast_schedule().steady_state_fps()
    }

    /// GauRast FPS without pipelining (ablation): serial Stages 1–2 then
    /// Stage 3.
    pub fn gaurast_serial_fps(&self) -> f64 {
        1.0 / (self.stages12_s + self.raster_gaurast_s)
    }

    /// End-to-end speedup (the paper's headline 6× / 4×).
    pub fn speedup(&self) -> f64 {
        self.gaurast_fps() / self.baseline_fps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bicycle-like numbers: 57 ms Stages 1–2, 321 ms CUDA raster, 15 ms
    /// GauRast raster.
    fn bicycle() -> EndToEnd {
        EndToEnd::new(0.057, 0.321, 0.015).unwrap()
    }

    #[test]
    fn baseline_fps_in_fig4_band() {
        let e = bicycle();
        let fps = e.baseline_fps();
        assert!((2.0..5.0).contains(&fps), "baseline {fps}");
    }

    #[test]
    fn speedup_is_large_and_bounded_by_stage12() {
        let e = bicycle();
        let s = e.speedup();
        // 378 ms -> 57 ms steady state = 6.6x; Amdahl-limited by stages 1-2.
        assert!((5.0..8.0).contains(&s), "speedup {s}");
        assert_eq!(e.gaurast_schedule().steady_state_period(), 0.057);
    }

    #[test]
    fn pipelining_beats_serial() {
        let e = bicycle();
        assert!(e.gaurast_fps() > e.gaurast_serial_fps());
        // Serial: 72 ms -> 13.9 FPS; pipelined: 57 ms -> 17.5 FPS.
        assert!((e.gaurast_fps() - 1.0 / 0.057).abs() < 1e-9);
        assert!((e.gaurast_serial_fps() - 1.0 / 0.072).abs() < 1e-9);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(EndToEnd::new(0.0, 1.0, 1.0).is_err());
        assert!(EndToEnd::new(0.1, -1.0, 1.0).is_err());
        assert!(EndToEnd::new(0.1, 1.0, f64::NAN).is_err());
    }

    #[test]
    fn raster_bound_case() {
        // If GauRast raster still dominates stages 1-2, it is the bottleneck.
        let e = EndToEnd::new(0.005, 0.3, 0.02).unwrap();
        assert!((e.gaurast_fps() - 50.0).abs() < 1e-9);
    }
}
