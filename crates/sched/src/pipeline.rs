//! Two-stage pipeline arithmetic.

use crate::timeline::{StageSpan, Timeline, Unit};
use std::error::Error;
use std::fmt;

/// Error for invalid schedule parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleError(String);

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid schedule: {}", self.0)
    }
}

impl Error for ScheduleError {}

/// The CUDA-collaborative two-stage pipeline for one scene.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PipelineSchedule {
    stages12_s: f64,
    stage3_s: f64,
}

impl PipelineSchedule {
    /// Schedule with Stages 1–2 time (CUDA) and Stage 3 time (rasterizer).
    ///
    /// # Errors
    /// Returns [`ScheduleError`] for non-finite or non-positive times.
    pub fn new(stages12_s: f64, stage3_s: f64) -> Result<Self, ScheduleError> {
        for (name, v) in [("stages 1-2", stages12_s), ("stage 3", stage3_s)] {
            if !v.is_finite() || v <= 0.0 {
                return Err(ScheduleError(format!(
                    "{name} time must be positive, got {v}"
                )));
            }
        }
        Ok(Self {
            stages12_s,
            stage3_s,
        })
    }

    /// Stages 1–2 time, s.
    pub fn stages12_s(&self) -> f64 {
        self.stages12_s
    }

    /// Stage 3 time, s.
    pub fn stage3_s(&self) -> f64 {
        self.stage3_s
    }

    /// Steady-state frame period: `max(t₁₂, t₃)`.
    pub fn steady_state_period(&self) -> f64 {
        self.stages12_s.max(self.stage3_s)
    }

    /// Steady-state throughput in frames per second.
    pub fn steady_state_fps(&self) -> f64 {
        1.0 / self.steady_state_period()
    }

    /// Serial (unpipelined) frame time: `t₁₂ + t₃` — the ablation of
    /// DESIGN.md §6.4.
    pub fn serial_period(&self) -> f64 {
        self.stages12_s + self.stage3_s
    }

    /// Throughput gain of pipelining over serial execution (≥ 1, ≤ 2).
    pub fn pipelining_gain(&self) -> f64 {
        self.serial_period() / self.steady_state_period()
    }

    /// Which unit bounds throughput.
    pub fn bottleneck(&self) -> Unit {
        if self.stage3_s >= self.stages12_s {
            Unit::Rasterizer
        } else {
            Unit::CudaCores
        }
    }

    /// Simulates `frames` frames and returns the Fig. 8 timeline. Frame
    /// `i`'s Stage 3 starts once its Stages 1–2 finished *and* the
    /// rasterizer is free; Stages 1–2 of frame `i+1` start as soon as the
    /// CUDA cores are free.
    pub fn timeline(&self, frames: usize) -> Timeline {
        let mut spans = Vec::with_capacity(frames * 2);
        let mut cuda_free = 0.0f64;
        let mut raster_free = 0.0f64;
        for frame in 0..frames {
            let s12_start = cuda_free;
            let s12_end = s12_start + self.stages12_s;
            cuda_free = s12_end;
            spans.push(StageSpan {
                frame,
                unit: Unit::CudaCores,
                start_s: s12_start,
                end_s: s12_end,
            });

            let s3_start = s12_end.max(raster_free);
            let s3_end = s3_start + self.stage3_s;
            raster_free = s3_end;
            spans.push(StageSpan {
                frame,
                unit: Unit::Rasterizer,
                start_s: s3_start,
                end_s: s3_end,
            });
        }
        Timeline::new(spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_is_max() {
        let s = PipelineSchedule::new(0.02, 0.015).unwrap();
        assert_eq!(s.steady_state_period(), 0.02);
        assert_eq!(s.bottleneck(), Unit::CudaCores);
        let s = PipelineSchedule::new(0.01, 0.03).unwrap();
        assert_eq!(s.steady_state_period(), 0.03);
        assert_eq!(s.bottleneck(), Unit::Rasterizer);
    }

    #[test]
    fn pipelining_gain_bounds() {
        let balanced = PipelineSchedule::new(0.02, 0.02).unwrap();
        assert!((balanced.pipelining_gain() - 2.0).abs() < 1e-12);
        let skewed = PipelineSchedule::new(0.001, 0.1).unwrap();
        assert!(skewed.pipelining_gain() < 1.02);
    }

    #[test]
    fn invalid_times_rejected() {
        assert!(PipelineSchedule::new(0.0, 1.0).is_err());
        assert!(PipelineSchedule::new(1.0, -1.0).is_err());
        assert!(PipelineSchedule::new(f64::NAN, 1.0).is_err());
        assert!(PipelineSchedule::new(1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn timeline_respects_dependencies() {
        let s = PipelineSchedule::new(0.01, 0.03).unwrap();
        let tl = s.timeline(4);
        for frame in 0..4 {
            let s12 = tl.span(frame, Unit::CudaCores).unwrap();
            let s3 = tl.span(frame, Unit::Rasterizer).unwrap();
            assert!(
                s3.start_s >= s12.end_s - 1e-12,
                "frame {frame} raster before prep"
            );
        }
        // Rasterizer spans must not overlap each other.
        for frame in 1..4 {
            let prev = tl.span(frame - 1, Unit::Rasterizer).unwrap();
            let cur = tl.span(frame, Unit::Rasterizer).unwrap();
            assert!(cur.start_s >= prev.end_s - 1e-12);
        }
    }

    #[test]
    fn timeline_reaches_steady_state() {
        let s = PipelineSchedule::new(0.012, 0.02).unwrap();
        let tl = s.timeline(10);
        // Frame completion spacing converges to the steady-state period.
        let e8 = tl.span(8, Unit::Rasterizer).unwrap().end_s;
        let e9 = tl.span(9, Unit::Rasterizer).unwrap().end_s;
        assert!((e9 - e8 - s.steady_state_period()).abs() < 1e-12);
    }

    #[test]
    fn cuda_overlaps_raster_when_pipelined() {
        // Fig. 8's whole point: stage 1-2 of frame i+1 runs during stage 3
        // of frame i.
        let s = PipelineSchedule::new(0.02, 0.02).unwrap();
        let tl = s.timeline(3);
        let s12_f1 = tl.span(1, Unit::CudaCores).unwrap();
        let s3_f0 = tl.span(0, Unit::Rasterizer).unwrap();
        let overlap = s12_f1.end_s.min(s3_f0.end_s) - s12_f1.start_s.max(s3_f0.start_s);
        assert!(overlap > 0.015, "overlap {overlap}");
    }
}
