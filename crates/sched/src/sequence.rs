//! Multi-frame sequence simulation with per-frame varying stage times.
//!
//! The steady-state analysis in [`crate::PipelineSchedule`] assumes every
//! frame costs the same. Real orbits do not: the visible Gaussian count and
//! tile occupancy change with the viewpoint, so both stages jitter. This
//! module replays a *sequence* of per-frame `(stages 1–2, stage 3)` costs
//! through the CUDA-collaborative pipeline and reports throughput, latency,
//! and jitter — the numbers an AR/VR integrator actually cares about
//! (frame-time percentiles, not just averages).

use crate::timeline::{StageSpan, Timeline, Unit};

/// Per-frame cost pair, seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FrameCost {
    /// Stages 1–2 on the CUDA cores.
    pub stages12_s: f64,
    /// Stage 3 on the rasterizer.
    pub stage3_s: f64,
}

/// Result of replaying a frame sequence.
#[derive(Clone, Debug, PartialEq)]
pub struct SequenceReport {
    /// Completion time of each frame, seconds from sequence start.
    pub completion_s: Vec<f64>,
    /// Per-frame latency (completion − earliest possible start, i.e. the
    /// time from when the frame *could* begin on an idle machine).
    pub latency_s: Vec<f64>,
    /// Full timeline (for Gantt rendering).
    pub timeline: Timeline,
}

impl SequenceReport {
    /// Number of frames replayed.
    pub fn len(&self) -> usize {
        self.completion_s.len()
    }

    /// `true` for an empty sequence.
    pub fn is_empty(&self) -> bool {
        self.completion_s.is_empty()
    }

    /// Average throughput over the sequence, frames per second.
    pub fn throughput_fps(&self) -> f64 {
        match self.completion_s.last() {
            Some(&end) if end > 0.0 => self.len() as f64 / end,
            _ => 0.0,
        }
    }

    /// Inter-frame interval percentile (`p` in `[0, 1]`) — the frame-pacing
    /// metric; `p = 0.99` is the conventional stutter indicator.
    ///
    /// Returns 0 for sequences shorter than two frames.
    ///
    /// # Panics
    /// Panics when `p` is outside `[0, 1]`.
    pub fn interval_percentile_s(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "percentile out of range");
        if self.completion_s.len() < 2 {
            return 0.0;
        }
        let mut intervals: Vec<f64> = self.completion_s.windows(2).map(|w| w[1] - w[0]).collect();
        intervals.sort_by(|a, b| a.partial_cmp(b).expect("finite intervals"));
        let idx = ((intervals.len() - 1) as f64 * p).round() as usize;
        intervals[idx]
    }

    /// Worst-case frame latency.
    pub fn max_latency_s(&self) -> f64 {
        self.latency_s.iter().copied().fold(0.0, f64::max)
    }
}

/// Replays a sequence of frame costs through the two-stage pipeline.
///
/// Frame `i`'s Stage 3 starts when both its own Stages 1–2 finished and the
/// rasterizer is free. The handoff between the units is a single staging
/// slot (as in Fig. 8): the CUDA cores may run exactly one frame ahead and
/// stall otherwise, so the rasterizer backlog — and hence frame latency —
/// stays bounded.
///
/// # Panics
/// Panics when any cost is non-positive or non-finite.
pub fn replay(frames: &[FrameCost]) -> SequenceReport {
    let mut spans = Vec::with_capacity(frames.len() * 2);
    let mut completion = Vec::with_capacity(frames.len());
    let mut latency = Vec::with_capacity(frames.len());
    let mut cuda_free = 0.0f64;
    let mut raster_free = 0.0f64;
    // Time at which the staging slot frees (the rasterizer accepted the
    // previous frame).
    let mut slot_free = 0.0f64;

    for (i, f) in frames.iter().enumerate() {
        assert!(
            f.stages12_s.is_finite() && f.stages12_s > 0.0,
            "frame {i}: stages 1-2 cost must be positive"
        );
        assert!(
            f.stage3_s.is_finite() && f.stage3_s > 0.0,
            "frame {i}: stage 3 cost must be positive"
        );
        let s12_start = cuda_free.max(slot_free);
        let s12_end = s12_start + f.stages12_s;
        cuda_free = s12_end;
        spans.push(StageSpan {
            frame: i,
            unit: Unit::CudaCores,
            start_s: s12_start,
            end_s: s12_end,
        });

        let s3_start = s12_end.max(raster_free);
        let s3_end = s3_start + f.stage3_s;
        raster_free = s3_end;
        slot_free = s3_start;
        spans.push(StageSpan {
            frame: i,
            unit: Unit::Rasterizer,
            start_s: s3_start,
            end_s: s3_end,
        });

        completion.push(s3_end);
        latency.push(s3_end - s12_start);
    }

    SequenceReport {
        completion_s: completion,
        latency_s: latency,
        timeline: Timeline::new(spans),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, s12: f64, s3: f64) -> Vec<FrameCost> {
        vec![
            FrameCost {
                stages12_s: s12,
                stage3_s: s3
            };
            n
        ]
    }

    #[test]
    fn uniform_sequence_matches_steady_state() {
        let report = replay(&uniform(50, 0.02, 0.03));
        // Throughput converges to 1/max(t12, t3).
        let fps = report.throughput_fps();
        assert!((fps - 1.0 / 0.03).abs() < 2.0, "fps {fps}");
        // All steady-state intervals equal the bottleneck period.
        assert!((report.interval_percentile_s(0.5) - 0.03).abs() < 1e-12);
        assert!((report.interval_percentile_s(0.99) - 0.03).abs() < 1e-12);
    }

    #[test]
    fn latency_bounded_by_sum_plus_queueing() {
        let report = replay(&uniform(10, 0.02, 0.03));
        for (i, &l) in report.latency_s.iter().enumerate() {
            assert!(l >= 0.05 - 1e-12, "frame {i}: latency {l}");
        }
        // Queueing grows until steady state, then stabilizes: the last two
        // latencies must match.
        let n = report.latency_s.len();
        assert!((report.latency_s[n - 1] - report.latency_s[n - 2]).abs() < 1e-9);
    }

    #[test]
    fn spike_creates_jitter_visible_in_worst_interval() {
        let mut frames = uniform(100, 0.010, 0.012);
        frames[50].stage3_s = 0.060; // one heavy viewpoint
        let report = replay(&frames);
        let p50 = report.interval_percentile_s(0.5);
        let worst = report.interval_percentile_s(1.0);
        assert!(worst > 3.0 * p50, "worst {worst} vs p50 {p50}");
        // The stall is localized: the median interval stays the bottleneck.
        assert!((p50 - 0.012).abs() < 1e-9);
    }

    #[test]
    fn rasterizer_never_overlaps_itself() {
        let frames: Vec<FrameCost> = (0..30)
            .map(|i| FrameCost {
                stages12_s: 0.005 + 0.001 * f64::from(i % 7),
                stage3_s: 0.008 + 0.002 * f64::from(i % 5),
            })
            .collect();
        let report = replay(&frames);
        let mut prev_end = 0.0;
        for i in 0..frames.len() {
            let s3 = report
                .timeline
                .span(i, Unit::Rasterizer)
                .expect("span exists");
            assert!(s3.start_s >= prev_end - 1e-12);
            prev_end = s3.end_s;
        }
    }

    #[test]
    fn completion_is_monotone() {
        let frames: Vec<FrameCost> = (0..20)
            .map(|i| FrameCost {
                stages12_s: 0.004 + 0.003 * f64::from(i % 3),
                stage3_s: 0.010 - 0.002 * f64::from(i % 4),
            })
            .collect();
        let report = replay(&frames);
        for w in report.completion_s.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert_eq!(report.len(), 20);
        assert!(!report.is_empty());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_cost_rejected() {
        let _ = replay(&[FrameCost {
            stages12_s: 0.0,
            stage3_s: 0.01,
        }]);
    }

    #[test]
    fn empty_sequence_is_harmless() {
        let report = replay(&[]);
        assert_eq!(report.throughput_fps(), 0.0);
        assert_eq!(report.interval_percentile_s(0.99), 0.0);
        assert_eq!(report.max_latency_s(), 0.0);
    }
}
