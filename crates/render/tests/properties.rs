//! Property-based tests for the software rendering pipeline.

use gaurast_math::{Vec2, Vec3};
use gaurast_render::preprocess::preprocess;
use gaurast_render::rasterize::rasterize;
use gaurast_render::sort::{depth_order, is_depth_sorted};
use gaurast_render::tile::{bin_splats, tile_range};
use gaurast_render::Splat2D;
use gaurast_scene::{Camera, Gaussian3, GaussianScene};
use proptest::prelude::*;

fn splat_strategy() -> impl Strategy<Value = Splat2D> {
    (
        -20.0f32..84.0,
        -20.0f32..84.0,
        0.01f32..1.0,
        0.1f32..100.0,
        0.05f32..0.99,
        1.0f32..40.0,
    )
        .prop_map(|(mx, my, conic, depth, opacity, radius)| Splat2D {
            mean: Vec2::new(mx, my),
            conic: [conic, 0.0, conic],
            depth,
            color: Vec3::new(0.6, 0.3, 0.8),
            opacity,
            radius,
            source: 0,
        })
}

fn gaussian_strategy() -> impl Strategy<Value = Gaussian3> {
    (
        -8.0f32..8.0,
        -8.0f32..8.0,
        -8.0f32..8.0,
        0.01f32..1.5,
        0.05f32..1.0,
    )
        .prop_map(|(x, y, z, sigma, opacity)| {
            Gaussian3::isotropic(Vec3::new(x, y, z), sigma, opacity, Vec3::new(0.9, 0.4, 0.1))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn depth_order_is_a_permutation(splats in prop::collection::vec(splat_strategy(), 0..50)) {
        let order = depth_order(&splats);
        prop_assert!(is_depth_sorted(&order, &splats));
        let mut seen = vec![false; splats.len()];
        for &i in &order {
            prop_assert!(!seen[i as usize], "duplicate index {i}");
            seen[i as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn every_tile_list_entry_overlaps_its_tile(splats in prop::collection::vec(splat_strategy(), 0..40)) {
        let w = bin_splats(splats, 64, 64, 16);
        for ty in 0..w.tiles_y() {
            for tx in 0..w.tiles_x() {
                for &si in w.tile_list(tx, ty) {
                    let s = &w.splats()[si as usize];
                    let range = tile_range(s, 64, 64, 16).expect("binned splat must be on image");
                    let (x0, y0, x1, y1) = range;
                    prop_assert!(tx >= x0 && tx <= x1 && ty >= y0 && ty <= y1);
                }
            }
        }
    }

    #[test]
    fn binning_covers_all_overlapped_tiles(s in splat_strategy()) {
        // A splat reported in tile_range must appear in exactly those lists.
        let w = bin_splats(vec![s], 64, 64, 16);
        match tile_range(&s, 64, 64, 16) {
            None => prop_assert_eq!(w.total_pairs(), 0),
            Some((x0, y0, x1, y1)) => {
                let expected = u64::from(x1 - x0 + 1) * u64::from(y1 - y0 + 1);
                prop_assert_eq!(w.total_pairs(), expected);
            }
        }
    }

    #[test]
    fn transmittance_invariant_under_any_splat_set(
        splats in prop::collection::vec(splat_strategy(), 1..40)
    ) {
        let mut w = bin_splats(splats, 48, 48, 16);
        let (img, stats) = rasterize(&mut w);
        // Color channels bounded by 1 (transmittance-weighted convex sums).
        for y in 0..48 {
            for x in 0..48 {
                prop_assert!(img.color_at(x, y).max_component() <= 1.0 + 1e-4);
            }
        }
        prop_assert!(stats.blends_committed <= stats.pairs_evaluated);
        prop_assert!(w.blend_work() <= w.total_pairs() * 256);
    }

    #[test]
    fn preprocess_never_produces_invalid_splats(
        gaussians in prop::collection::vec(gaussian_strategy(), 1..60)
    ) {
        let scene = GaussianScene::from_gaussians(gaussians).expect("strategy is valid");
        let cam = Camera::look_at(
            Vec3::new(0.0, 0.0, -20.0),
            Vec3::zero(),
            Vec3::new(0.0, 1.0, 0.0),
            96,
            96,
            1.0,
        ).expect("camera valid");
        let out = preprocess(&scene, &cam);
        prop_assert_eq!(out.splats.len() + out.culled, scene.len());
        for s in &out.splats {
            prop_assert!(s.depth > 0.0 && s.depth.is_finite());
            prop_assert!(s.radius >= 1.0);
            prop_assert!(s.opacity > 0.0 && s.opacity <= 1.0);
            prop_assert!(s.conic.iter().all(|c| c.is_finite()));
            // Conic must be positive definite: a > 0, c > 0, ac - b² > 0.
            prop_assert!(s.conic[0] > 0.0 && s.conic[2] > 0.0);
            prop_assert!(s.conic[0] * s.conic[2] - s.conic[1] * s.conic[1] > 0.0);
            prop_assert!(s.color.is_finite());
        }
    }

    #[test]
    fn splitting_a_scene_preserves_total_visibility(
        gaussians in prop::collection::vec(gaussian_strategy(), 2..40),
        cut in 1usize..39,
    ) {
        // Preprocessing a scene equals preprocessing its two halves:
        // culling is per-Gaussian.
        let cut = cut.min(gaussians.len() - 1);
        let cam = Camera::look_at(
            Vec3::new(0.0, 0.0, -20.0),
            Vec3::zero(),
            Vec3::new(0.0, 1.0, 0.0),
            64,
            64,
            1.0,
        ).expect("camera valid");
        let all = GaussianScene::from_gaussians(gaussians.clone()).expect("valid");
        let first = GaussianScene::from_gaussians(gaussians[..cut].to_vec()).expect("valid");
        let second = GaussianScene::from_gaussians(gaussians[cut..].to_vec()).expect("valid");
        let v_all = preprocess(&all, &cam).splats.len();
        let v_split = preprocess(&first, &cam).splats.len() + preprocess(&second, &cam).splats.len();
        prop_assert_eq!(v_all, v_split);
    }
}
