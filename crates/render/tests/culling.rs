//! Bit-identity of the frustum-culled visible-set path.
//!
//! The hard invariant of the visibility subsystem: culling may only drop
//! Gaussians Stage 1 would have culled anyway, so for **any** scene,
//! camera, and worker count, rendering over a
//! [`gaurast_scene::VisibleSet`] must be bit-identical to rendering the
//! whole scene — splats, order, `source` ids, cull counts, FP-op
//! tallies, images, and rasterization statistics. These proptests
//! randomize all three axes; the fixed large-scene test at the bottom
//! checks the subsystem actually removes Stage-1 work for off-center
//! views.

use gaurast_math::{Quat, Vec3};
use gaurast_render::pool::WorkerPool;
use gaurast_render::preprocess::{
    preprocess_prepared_pooled, preprocess_prepared_visible_pooled, PreprocessOutput,
};
use gaurast_render::rasterize::rasterize_with;
use gaurast_render::tile::bin_splats_pooled;
use gaurast_render::FrameArena;
use gaurast_render::Framebuffer;
use gaurast_scene::{Camera, Gaussian3, GaussianScene, PreparedScene};
use proptest::prelude::*;

fn gaussian_strategy() -> impl Strategy<Value = Gaussian3> {
    (
        -12.0f32..12.0,
        -8.0f32..8.0,
        -12.0f32..12.0,
        0.02f32..1.5,
        0.05f32..15.0,
        0.05f32..0.99,
        0.0f32..std::f32::consts::TAU,
    )
        .prop_map(|(x, y, z, sigma, stretch, opacity, angle)| {
            let mut g =
                Gaussian3::isotropic(Vec3::new(x, y, z), sigma, opacity, Vec3::new(0.8, 0.4, 0.2));
            // Anisotropy + rotation so the projected footprints are not
            // axis-aligned circles.
            g.scale = Vec3::new(sigma, (sigma / stretch).max(1e-3), sigma * 0.7);
            g.rotation = Quat::from_axis_angle(Vec3::new(0.0, 1.0, 0.0), angle);
            g
        })
}

/// Cameras including strongly off-center and outward-facing views, so the
/// frustum regularly culls both laterally and by depth.
fn camera_strategy() -> impl Strategy<Value = Camera> {
    (
        0.0f32..std::f32::consts::TAU,
        2.0f32..35.0,
        -6.0f32..10.0,
        -20.0f32..20.0,
        -20.0f32..20.0,
    )
        .prop_map(|(theta, dist, height, tx, tz)| {
            let eye = Vec3::new(dist * theta.sin(), height, -dist * theta.cos());
            let target = Vec3::new(tx, 0.0, tz);
            let target = if (eye - target).length_squared() < 1.0 {
                target + Vec3::new(0.0, 0.0, 40.0)
            } else {
                target
            };
            Camera::look_at(eye, target, Vec3::new(0.0, 1.0, 0.0), 96, 80, 1.05)
                .expect("valid random camera")
        })
}

/// Renders a Stage-1 output through binning and tile-major rasterization.
fn raster_from(
    pre: PreprocessOutput,
    camera: &Camera,
    pool: &WorkerPool,
) -> (
    Framebuffer,
    gaurast_render::rasterize::RasterStats,
    gaurast_render::RasterWorkload,
) {
    let mut workload = bin_splats_pooled(
        pre.splats,
        camera.width(),
        camera.height(),
        16,
        &mut FrameArena::new(),
        pool,
    );
    let mut fb = Framebuffer::new(camera.width(), camera.height());
    let stats = rasterize_with(&mut workload, Some(&mut fb), pool);
    (fb, stats, workload)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn visible_set_stage1_is_bit_identical(
        gaussians in prop::collection::vec(gaussian_strategy(), 1..300),
        camera in camera_strategy(),
        workers in 1usize..5,
    ) {
        let scene = GaussianScene::from_gaussians(gaussians).expect("validated");
        let prepared = PreparedScene::prepare(scene);
        let pool = WorkerPool::new(workers);
        let full = preprocess_prepared_pooled(&prepared, &camera, &pool);
        let set = prepared.visible_set(&camera);
        prop_assert_eq!(set.len() + set.culled_total(), prepared.len());
        let culled = preprocess_prepared_visible_pooled(&prepared, &camera, &set, &pool);
        // Everything: splats (bit-exact fields), order, source ids, cull
        // counts, op tallies.
        prop_assert_eq!(&culled, &full);
        for w in culled.splats.windows(2) {
            prop_assert!(w[0].source < w[1].source, "splat order drifted");
        }
    }

    #[test]
    fn culled_render_matches_full_render(
        gaussians in prop::collection::vec(gaussian_strategy(), 1..200),
        camera in camera_strategy(),
        workers in 1usize..5,
    ) {
        let scene = GaussianScene::from_gaussians(gaussians).expect("validated");
        let prepared = PreparedScene::prepare(scene);
        let pool = WorkerPool::new(workers);
        let full = preprocess_prepared_pooled(&prepared, &camera, &pool);
        let set = prepared.visible_set(&camera);
        let culled = preprocess_prepared_visible_pooled(&prepared, &camera, &set, &pool);
        let (img_full, stats_full, work_full) = raster_from(full, &camera, &pool);
        let (img_culled, stats_culled, work_culled) = raster_from(culled, &camera, &pool);
        prop_assert_eq!(img_culled, img_full, "image bytes must match");
        prop_assert_eq!(stats_culled, stats_full, "raster stats must match");
        prop_assert_eq!(work_culled, work_full, "workloads must match");
    }

    #[test]
    fn cached_quantized_set_is_safe_for_jittered_cameras(
        gaussians in prop::collection::vec(gaussian_strategy(), 1..150),
        theta in 0.0f32..std::f32::consts::TAU,
        dist in 3.0f32..30.0,
        height in -5.0f32..8.0,
        jitter in -4.0e-4f32..4.0e-4,
    ) {
        // A set built for one camera must stay bit-identity-safe for any
        // camera sharing its pose key (sub-quantum pose deltas) — the
        // property the VisibilityCache relies on.
        let scene = GaussianScene::from_gaussians(gaussians).expect("validated");
        let prepared = PreparedScene::prepare(scene);
        let eye = Vec3::new(dist * theta.sin(), height, -dist * theta.cos());
        let look = |e: Vec3| {
            Camera::look_at(e, Vec3::zero(), Vec3::new(0.0, 1.0, 0.0), 96, 80, 1.05)
                .expect("valid orbit camera")
        };
        let camera = look(eye);
        let set = prepared.visible_set(&camera);
        let jittered = look(eye + Vec3::splat(jitter));
        if gaurast_scene::visibility::pose_key(&jittered)
            != gaurast_scene::visibility::pose_key(&camera)
        {
            return Ok(()); // jitter crossed a quantization cell: no reuse
        }
        let pool = WorkerPool::serial();
        let full = preprocess_prepared_pooled(&prepared, &jittered, &pool);
        let reused = preprocess_prepared_visible_pooled(&prepared, &jittered, &set, &pool);
        prop_assert_eq!(&reused, &full);
    }
}

/// Regression (code review): a finite Gaussian far beside the frustum
/// with a huge anisotropic scale is *certain* to be off-image, but its
/// Stage-1 projection overflows (eigenvalue midpoint² → ∞) into the
/// non-finite cull branch — whose accounting differs from the off-screen
/// bundle a lateral certification would bill. The frustum must refuse to
/// certify it (its magnitude-scaled float padding already denies depth
/// certainty at such coordinates, with the overflow-headroom guard as
/// backstop), even through a zero-slack frustum, so the visible-set path
/// stays bit-identical.
#[test]
fn overflow_prone_side_gaussian_is_kept_not_lateral_certified() {
    let mut g = Gaussian3::isotropic(Vec3::new(-1.0e12, 0.0, 45.0), 1.0, 0.9, Vec3::one());
    g.scale = Vec3::new(1.0e10, 1.0e-3, 1.0e-3);
    let anchor = Gaussian3::isotropic(Vec3::zero(), 0.3, 0.8, Vec3::one());
    let scene = GaussianScene::from_gaussians(vec![g, anchor]).unwrap();
    let prepared = PreparedScene::prepare(scene);
    let camera = Camera::look_at(
        Vec3::new(0.0, 0.0, -5.0),
        Vec3::zero(),
        Vec3::new(0.0, 1.0, 0.0),
        96,
        80,
        1.05,
    )
    .unwrap();
    // Zero-slack frustum: the exact-camera path with the least padding.
    let set = prepared.visible_set_with(&camera.frustum());
    let full = preprocess_prepared_pooled(&prepared, &camera, &WorkerPool::serial());
    let culled =
        preprocess_prepared_visible_pooled(&prepared, &camera, &set, &WorkerPool::serial());
    assert_eq!(
        full.culled_non_finite, 1,
        "the side Gaussian must overflow in the full pass"
    );
    assert_eq!(culled, full, "accounting diverged for the overflow case");
    // The quantized-cache path must agree as well.
    let set = prepared.visible_set(&camera);
    let culled =
        preprocess_prepared_visible_pooled(&prepared, &camera, &set, &WorkerPool::serial());
    assert_eq!(culled, full);
}

/// Acceptance: on a ≥50k-Gaussian scene, an off-center view must let the
/// frustum drop a substantial fraction of Stage-1 work — while remaining
/// bit-identical — and a centered view must not be degraded.
#[test]
fn off_center_camera_cuts_stage1_work_on_large_scene() {
    use gaurast_scene::generator::SceneParams;
    let scene = SceneParams::new(60_000).seed(17).generate().unwrap();
    let prepared = PreparedScene::prepare(scene);

    // Eye inside the cloud looking outward: most of the scene is behind
    // the camera (depth culls), much of the rest beside it (lateral).
    let off_center = Camera::look_at(
        Vec3::new(0.0, 2.0, 2.0),
        Vec3::new(0.0, 2.0, 60.0),
        Vec3::new(0.0, 1.0, 0.0),
        160,
        120,
        1.05,
    )
    .unwrap();
    let set = prepared.visible_set(&off_center);
    assert!(
        set.coverage() < 0.7,
        "expected >=30% Stage-1 reduction, kept {:.1}%",
        set.coverage() * 100.0
    );
    assert!(set.culled_depth() > 0, "outward view must depth-cull");

    let pool = WorkerPool::serial();
    let full = preprocess_prepared_pooled(&prepared, &off_center, &pool);
    let culled = preprocess_prepared_visible_pooled(&prepared, &off_center, &set, &pool);
    assert_eq!(culled, full, "large-scene bit-identity");

    // Centered view: whatever the frustum drops must still match.
    let centered = Camera::look_at(
        Vec3::new(0.0, 6.0, -40.0),
        Vec3::zero(),
        Vec3::new(0.0, 1.0, 0.0),
        160,
        120,
        1.05,
    )
    .unwrap();
    let set = prepared.visible_set(&centered);
    let full = preprocess_prepared_pooled(&prepared, &centered, &pool);
    let culled = preprocess_prepared_visible_pooled(&prepared, &centered, &set, &pool);
    assert_eq!(culled, full);
}
