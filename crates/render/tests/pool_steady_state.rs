//! Steady-state counters of the persistent pool: a long-lived session
//! rendering 100+ consecutive frames must construct **zero** new pools
//! and spawn **zero** new threads after warm-up — dispatches wake the
//! resident, parked workers instead.
//!
//! This file holds a single `#[test]` on purpose: the spawn/construction
//! counters are process-global, so the measurement must not race another
//! test creating pools in the same binary.

use gaurast_math::Vec3;
use gaurast_render::pipeline::{render_with_pool, RenderConfig};
use gaurast_render::pool::{construction_count, spawned_thread_count, WorkerPool};
use gaurast_render::FrameArena;
use gaurast_scene::Camera;

#[test]
fn hundred_frame_session_spawns_nothing_in_steady_state() {
    let scene = gaurast_scene::generator::SceneParams::new(5000)
        .seed(23)
        .generate()
        .expect("generator scene");
    let camera = Camera::look_at(
        Vec3::new(0.0, 6.0, -28.0),
        Vec3::zero(),
        Vec3::new(0.0, 1.0, 0.0),
        128,
        96,
        1.05,
    )
    .expect("fixed camera");
    let config = RenderConfig::default().with_workers(4);

    // Session setup: the one pool construction (3 spawned workers for
    // width 4) and one arena for the whole session.
    let pool = WorkerPool::new(4);
    let mut arena = FrameArena::new();

    // Warm-up frame grows the arena buffers and the plan cache.
    let first = render_with_pool(&scene, &camera, &config, &mut arena, &pool);
    let reference = first.clone();
    first.workload.recycle_into(&mut arena);

    let constructions_before = construction_count();
    let spawned_before = spawned_thread_count();

    let mut last = None;
    for _ in 0..100 {
        if let Some(prev) = last.take() {
            let prev: gaurast_render::pipeline::RenderOutput = prev;
            prev.workload.recycle_into(&mut arena);
        }
        last = Some(render_with_pool(
            &scene, &camera, &config, &mut arena, &pool,
        ));
    }

    assert_eq!(
        construction_count(),
        constructions_before,
        "steady-state frames must not construct pools"
    );
    assert_eq!(
        spawned_thread_count(),
        spawned_before,
        "steady-state frames must not spawn threads"
    );

    // And the 101st frame is still bit-identical to the first.
    let last = last.expect("frames ran");
    assert_eq!(last.image, reference.image);
    assert_eq!(last.workload, reference.workload);
    assert_eq!(last.preprocess, reference.preprocess);
    assert_eq!(last.raster, reference.raster);
}
