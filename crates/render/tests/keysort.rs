//! Key-sorted Stage-2 equivalence suite: the packed-key radix/CSR path
//! must be **bit-identical** to the legacy per-tile comparison-sort path —
//! workloads, processed counts, statistics and rendered images — for
//! random scenes, cameras, tie-heavy depth distributions, boundary-exact
//! tile boxes, and every worker count.

use gaurast_math::{Vec2, Vec3};
use gaurast_render::pipeline::{render, RenderConfig, Stage2Mode};
use gaurast_render::sort::{depth_key_bits, is_depth_sorted, pack_key, RadixSorter};
use gaurast_render::tile::{bin_splats_legacy, bin_splats_pooled};
use gaurast_render::{FrameArena, Splat2D, WorkerPool};
use gaurast_scene::{Camera, Gaussian3, GaussianScene};
use proptest::prelude::*;

/// Random splats with deliberately nasty Stage-2 shapes: quantized depths
/// (many exact ties), radii that can land the 3σ box exactly on tile
/// boundaries, and means both on and off the image.
fn splat_strategy() -> impl Strategy<Value = Splat2D> {
    (
        -20.0f32..84.0,
        -20.0f32..84.0,
        // Quantized radii: integer and half-integer values produce
        // boundary-exact boxes (e.g. mean 8, radius 8 → box [0, 16]).
        0u32..32,
        // Quantized depths: at most 8 distinct values over dozens of
        // splats → guaranteed equal-depth runs per tile.
        0u32..8,
    )
        .prop_map(|(x, y, r2, d)| Splat2D {
            mean: Vec2::new(x, y),
            conic: [0.05, 0.0, 0.05],
            depth: 0.5 + d as f32 * 0.25,
            color: Vec3::new(0.8, 0.4, 0.2),
            opacity: 0.7,
            radius: r2 as f32 * 0.5,
            source: 0,
        })
}

fn gaussian_strategy() -> impl Strategy<Value = Gaussian3> {
    (
        -8.0f32..8.0,
        -8.0f32..8.0,
        -8.0f32..8.0,
        0.02f32..1.2,
        0.05f32..0.99,
        0.0f32..1.0,
    )
        .prop_map(|(x, y, z, sigma, opacity, hue)| {
            Gaussian3::isotropic(
                Vec3::new(x, y, z),
                sigma,
                opacity,
                Vec3::new(hue, 1.0 - hue, 0.5),
            )
        })
}

fn camera_strategy() -> impl Strategy<Value = Camera> {
    (0.0f32..std::f32::consts::TAU, 2.0f32..10.0, -4.0f32..6.0).prop_map(|(theta, dist, height)| {
        Camera::look_at(
            Vec3::new(dist * 2.5 * theta.sin(), height, -dist * 2.5 * theta.cos()),
            Vec3::zero(),
            Vec3::new(0.0, 1.0, 0.0),
            96,
            80,
            1.05,
        )
        .expect("valid orbit camera")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole acceptance: full pipeline, radix/CSR Stage 2 vs the
    /// legacy escape hatch, across worker counts — image bytes, workload
    /// (splats + CSR + processed), and every statistic must be equal.
    #[test]
    fn full_pipeline_keyed_equals_legacy(
        gaussians in prop::collection::vec(gaussian_strategy(), 1..300),
        camera in camera_strategy(),
        workers in 1usize..5,
    ) {
        let scene = GaussianScene::from_gaussians(gaussians).expect("non-empty scene");
        let keyed_cfg = RenderConfig::default()
            .with_workers(workers)
            .with_stage2(Stage2Mode::KeySorted);
        let legacy_cfg = keyed_cfg.with_stage2(Stage2Mode::LegacyPerTile);
        let keyed = render(&scene, &camera, &keyed_cfg);
        let legacy = render(&scene, &camera, &legacy_cfg);
        prop_assert_eq!(&keyed.image, &legacy.image, "image planes must be bit-identical");
        prop_assert_eq!(&keyed.workload, &legacy.workload, "workloads must be bit-identical");
        prop_assert_eq!(keyed.preprocess, legacy.preprocess);
        prop_assert_eq!(keyed.raster, legacy.raster);
    }

    /// Raw-splat binning equivalence, including equal-depth stability and
    /// boundary-exact boxes: the keyed CSR table must equal the flattened,
    /// comparison-sorted legacy lists entry for entry.
    #[test]
    fn binning_keyed_equals_legacy_on_adversarial_splats(
        mut splats in prop::collection::vec(splat_strategy(), 0..120),
        workers in 1usize..5,
    ) {
        for (i, s) in splats.iter_mut().enumerate() {
            s.source = i as u32;
        }
        let pool = WorkerPool::new(workers);
        let keyed = bin_splats_pooled(splats.clone(), 64, 64, 16, &mut FrameArena::new(), &pool);
        let legacy = bin_splats_legacy(splats, 64, 64, 16, &mut FrameArena::new(), &pool);
        prop_assert_eq!(&keyed, &legacy);
        // Equal-depth runs must preserve submission order (stability):
        // within a tile, ties are ordered by ascending splat index.
        let s = keyed.splats();
        for tile in keyed.tiles() {
            prop_assert!(is_depth_sorted(tile.list, s));
            for w in tile.list.windows(2) {
                if s[w[0] as usize].depth == s[w[1] as usize].depth {
                    prop_assert!(w[0] < w[1], "tie broke submission order");
                }
            }
        }
    }

    /// CSR structural invariants on arbitrary binned input.
    #[test]
    fn csr_offsets_are_a_monotone_cover(
        splats in prop::collection::vec(splat_strategy(), 0..100),
    ) {
        let w = bin_splats_pooled(splats, 96, 48, 16, &mut FrameArena::new(), &WorkerPool::serial());
        let offsets = w.offsets();
        prop_assert_eq!(offsets.len(), w.tile_count() + 1);
        prop_assert_eq!(offsets[0], 0);
        prop_assert_eq!(*offsets.last().unwrap() as usize, w.values().len());
        prop_assert!(offsets.windows(2).all(|x| x[0] <= x[1]));
        prop_assert_eq!(w.total_pairs(), w.values().len() as u64);
        // Per-tile slices tile the value buffer exactly.
        let mut reassembled = Vec::new();
        for t in w.tiles() {
            prop_assert_eq!(t.list, w.tile_list(t.tx, t.ty));
            reassembled.extend_from_slice(t.list);
        }
        prop_assert_eq!(reassembled.as_slice(), w.values());
    }

    /// The ordered-u32 depth mapping is exactly total_cmp order — over
    /// arbitrary bit patterns, so NaNs, infinities, subnormals and both
    /// zeros are all drawn.
    #[test]
    fn depth_key_bits_matches_total_cmp(a_bits in any::<u32>(), b_bits in any::<u32>()) {
        let (a, b) = (f32::from_bits(a_bits), f32::from_bits(b_bits));
        prop_assert_eq!(
            depth_key_bits(a).cmp(&depth_key_bits(b)),
            a.total_cmp(&b),
            "{} vs {}", a, b
        );
    }

    /// The radix sorter is bit-identical at widths 1–8 and equal to the
    /// stable comparison sort, across multiple chunks.
    #[test]
    fn radix_sort_is_width_invariant_and_stable(
        seed in 0u64..1000,
        n in 1usize..200_000,
    ) {
        // xorshift keys with a narrow active-digit mask so several radix
        // passes are skipped and ties are common.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let keys: Vec<u64> = (0..n).map(|_| next() & 0x3F_0000_FFFF).collect();
        let vals: Vec<u32> = (0..n as u32).collect();
        let mut expected: Vec<(u64, u32)> =
            keys.iter().copied().zip(vals.iter().copied()).collect();
        expected.sort_by_key(|&(k, _)| k); // stable

        for workers in 1..=8usize {
            let mut k = keys.clone();
            let mut v = vals.clone();
            RadixSorter::new().sort_pairs(&mut k, &mut v, &WorkerPool::new(workers));
            let got: Vec<(u64, u32)> = k.into_iter().zip(v).collect();
            prop_assert_eq!(&got, &expected, "width {} diverged", workers);
        }
    }
}

/// Packed keys order tile-major, then front-to-back, with the depth half
/// strictly monotone over positive depths.
#[test]
fn packed_key_ordering_unit_cases() {
    // Tile dominates depth.
    assert!(pack_key(0, 1e9) < pack_key(1, 1e-9));
    // Depth ordering inside one tile, including denormal and huge values.
    let depths = [1e-40f32, 1e-9, 0.25, 0.5, 1.0, 3.0, 1e9, 3.5e37];
    for w in depths.windows(2) {
        assert!(
            pack_key(7, w[0]) < pack_key(7, w[1]),
            "{} vs {}",
            w[0],
            w[1]
        );
    }
    // Equal depths pack equal keys (ties resolved by sort stability).
    assert_eq!(pack_key(3, 2.0), pack_key(3, 2.0));
}

/// Steady-state Stage 2 must not allocate: after the first frame warms the
/// arena, identical frames reuse every buffer (observable as identical
/// capacities and pointer-stable CSR buffers).
#[test]
fn arena_reuse_is_pointer_stable_across_frames() {
    let splats: Vec<Splat2D> = (0..500)
        .map(|i| Splat2D {
            mean: Vec2::new((i * 13 % 96) as f32, (i * 29 % 48) as f32),
            conic: [0.05, 0.0, 0.05],
            depth: 1.0 + (i % 17) as f32 * 0.125,
            color: Vec3::one(),
            opacity: 0.6,
            radius: 4.0,
            source: i as u32,
        })
        .collect();
    let pool = WorkerPool::serial();
    let mut arena = FrameArena::new();

    // Two warm-up frames size every buffer and reveal both ping-pong
    // identities of the value buffer (the radix sort may hand back the
    // scratch buffer on odd pass counts — that is reuse, not allocation).
    let mut value_ptrs = Vec::new();
    let mut offset_ptrs = Vec::new();
    for _ in 0..2 {
        let w = bin_splats_pooled(splats.clone(), 96, 48, 16, &mut arena, &pool);
        value_ptrs.push(w.values().as_ptr());
        offset_ptrs.push(w.offsets().as_ptr());
        w.recycle_into(&mut arena);
    }

    // Steady-state frames must only ever hand back those same buffers.
    for _ in 0..4 {
        let w = bin_splats_pooled(splats.clone(), 96, 48, 16, &mut arena, &pool);
        assert!(
            value_ptrs.contains(&w.values().as_ptr()),
            "steady-state Stage 2 allocated a new value buffer"
        );
        assert!(
            offset_ptrs.contains(&w.offsets().as_ptr()),
            "steady-state Stage 2 allocated a new offset buffer"
        );
        w.recycle_into(&mut arena);
    }
}
