//! Adversarial-scene robustness of the preprocess → bin → rasterize
//! pipeline: extreme scales and positions, tiny and non-tile-multiple
//! framebuffers, empty visible sets, and non-finite inputs at the
//! validation boundary. Every case must complete without panicking, keep
//! non-finite values out of the framebuffer, and stay bit-identical
//! between the serial and parallel paths.

use gaurast_math::Vec3;
use gaurast_render::pipeline::{render, render_record_only, RenderConfig};
use gaurast_render::pool::WorkerPool;
use gaurast_render::preprocess::{preprocess_prepared_pooled, preprocess_prepared_visible_pooled};
use gaurast_render::VectorMode;
use gaurast_scene::{Camera, Gaussian3, GaussianScene, PreparedScene};
use proptest::prelude::*;

/// Gaussians spanning ten orders of magnitude in scale and far-flung
/// positions — the covariance-overflow and footprint-explosion regime.
fn hostile_gaussian_strategy() -> impl Strategy<Value = Gaussian3> {
    (
        -1.0e4f32..1.0e4,
        -1.0e3f32..1.0e3,
        -1.0e4f32..1.0e4,
        -4.0f32..8.0, // log10 sigma: 1e-4 .. 1e8
        0.05f32..1.0,
    )
        .prop_map(|(x, y, z, log_sigma, opacity)| {
            Gaussian3::isotropic(
                Vec3::new(x, y, z),
                10.0f32.powf(log_sigma),
                opacity,
                Vec3::new(0.9, 0.5, 0.1),
            )
        })
}

fn small_camera(width: u32, height: u32) -> Camera {
    Camera::look_at(
        Vec3::new(0.0, 40.0, -220.0),
        Vec3::zero(),
        Vec3::new(0.0, 1.0, 0.0),
        width,
        height,
        1.05,
    )
    .expect("valid camera")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hostile_scenes_render_without_panic_and_stay_finite(
        gaussians in prop::collection::vec(hostile_gaussian_strategy(), 1..60),
        width in 1u32..70,
        height in 1u32..70,
        workers in 1usize..5,
    ) {
        let scene = GaussianScene::from_gaussians(gaussians).expect("validated");
        let camera = small_camera(width, height);
        let cfg = RenderConfig::default().with_workers(workers);
        let out = render(&scene, &camera, &cfg);
        prop_assert_eq!(
            out.preprocess.visible + out.preprocess.culled,
            scene.len(),
            "every Gaussian accounted for"
        );
        // Nothing non-finite may reach the image.
        for c in out.image.colors() {
            prop_assert!(c.is_finite(), "non-finite pixel {c:?}");
        }
        // Serial and parallel agree even on hostile input.
        let serial = render(&scene, &camera, &RenderConfig::default().with_workers(1));
        prop_assert_eq!(&out.image, &serial.image);
        prop_assert_eq!(out.preprocess, serial.preprocess);
        prop_assert_eq!(out.raster, serial.raster);
    }

    /// The SIMD lane-group kernels on the same hostile regime: every
    /// vector mode must take the identical cull branches (per-lane masks
    /// replicate the scalar branch priority, including NaN comparisons)
    /// and blend the identical pixels.
    #[test]
    fn hostile_scenes_vector_modes_are_bit_identical(
        gaussians in prop::collection::vec(hostile_gaussian_strategy(), 1..60),
        width in 1u32..70,
        height in 1u32..70,
        workers in 1usize..5,
    ) {
        let scene = GaussianScene::from_gaussians(gaussians).expect("validated");
        let camera = small_camera(width, height);
        let base = RenderConfig::default().with_workers(workers);
        let reference = render(&scene, &camera, &base.with_vector_mode(VectorMode::Scalar));
        for mode in [VectorMode::ForceSse, VectorMode::ForceAvx2] {
            let out = render(&scene, &camera, &base.with_vector_mode(mode));
            prop_assert_eq!(&reference.image, &out.image, "image under {:?}", mode);
            prop_assert_eq!(&reference.workload, &out.workload, "workload under {:?}", mode);
            prop_assert_eq!(reference.preprocess, out.preprocess, "stage-1 stats under {:?}", mode);
            prop_assert_eq!(reference.raster, out.raster, "stage-3 stats under {:?}", mode);
        }
    }

    #[test]
    fn hostile_scenes_culled_path_is_bit_identical(
        gaussians in prop::collection::vec(hostile_gaussian_strategy(), 1..60),
        workers in 1usize..5,
    ) {
        // Giant scene extents inflate the conservative slack; the visible
        // set may then cull little — but never wrongly.
        let scene = GaussianScene::from_gaussians(gaussians).expect("validated");
        let prepared = PreparedScene::prepare(scene);
        let camera = small_camera(64, 48);
        let pool = WorkerPool::new(workers);
        let full = preprocess_prepared_pooled(&prepared, &camera, &pool);
        let set = prepared.visible_set(&camera);
        let culled = preprocess_prepared_visible_pooled(&prepared, &camera, &set, &pool);
        prop_assert_eq!(&culled, &full);
    }
}

#[test]
fn nan_and_inf_parameters_rejected_at_validation() {
    let good = || Gaussian3::isotropic(Vec3::zero(), 0.3, 0.8, Vec3::one());
    let mut nan_pos = good();
    nan_pos.position = Vec3::new(f32::NAN, 0.0, 0.0);
    assert!(GaussianScene::from_gaussians(vec![nan_pos]).is_err());
    let mut inf_pos = good();
    inf_pos.position = Vec3::new(0.0, f32::INFINITY, 0.0);
    assert!(GaussianScene::from_gaussians(vec![inf_pos]).is_err());
    let mut nan_scale = good();
    nan_scale.scale = Vec3::new(0.1, f32::NAN, 0.1);
    assert!(GaussianScene::from_gaussians(vec![nan_scale]).is_err());
    let mut inf_scale = good();
    inf_scale.scale = Vec3::splat(f32::INFINITY);
    assert!(GaussianScene::from_gaussians(vec![inf_scale]).is_err());
    // A scene mixing one bad Gaussian into good ones reports the index.
    let mut bad = good();
    bad.position = Vec3::splat(f32::NAN);
    let err = GaussianScene::from_gaussians(vec![good(), bad]).unwrap_err();
    assert!(err.to_string().contains('1'), "offending index in {err}");
}

#[test]
fn covariance_overflow_is_culled_as_non_finite_not_binned() {
    // Extreme anisotropy whose eigenvalue computation overflows: without
    // the non-finite cull this splat would be binned with an infinite
    // radius and blend into every tile.
    let mut g = Gaussian3::isotropic(Vec3::zero(), 1.0, 0.9, Vec3::one());
    g.scale = Vec3::new(5.0e16, 1.0e-3, 1.0e-3);
    let scene = GaussianScene::from_gaussians(vec![g]).unwrap();
    let camera = Camera::look_at(
        Vec3::new(0.0, 0.0, -5.0),
        Vec3::zero(),
        Vec3::new(0.0, 1.0, 0.0),
        64,
        64,
        1.0,
    )
    .unwrap();
    let out = render_record_only(&scene, &camera, &RenderConfig::default());
    assert_eq!(out.preprocess.visible, 0);
    assert_eq!(out.preprocess.culled, 1);
    assert_eq!(out.preprocess.non_finite, 1, "counted cull reason");
    assert_eq!(out.workload.total_pairs(), 0, "nothing may be binned");
}

#[test]
fn one_by_one_framebuffer_renders() {
    let scene = GaussianScene::from_gaussians(vec![Gaussian3::isotropic(
        Vec3::zero(),
        0.5,
        0.9,
        Vec3::new(1.0, 0.0, 0.0),
    )])
    .unwrap();
    let camera = Camera::look_at(
        Vec3::new(0.0, 0.0, -4.0),
        Vec3::zero(),
        Vec3::new(0.0, 1.0, 0.0),
        1,
        1,
        1.0,
    )
    .unwrap();
    let out = render(&scene, &camera, &RenderConfig::default());
    assert_eq!(out.workload.tile_count(), 1);
    assert!(out.image.coverage() > 0.0, "the single pixel must be hit");
}

#[test]
fn non_tile_multiple_framebuffer_matches_serial() {
    use gaurast_scene::generator::SceneParams;
    let scene = SceneParams::new(500).seed(4).generate().unwrap();
    let camera = Camera::look_at(
        Vec3::new(0.0, 5.0, -25.0),
        Vec3::zero(),
        Vec3::new(0.0, 1.0, 0.0),
        33,
        17,
        1.05,
    )
    .unwrap();
    let serial = render(&scene, &camera, &RenderConfig::default().with_workers(1));
    let parallel = render(&scene, &camera, &RenderConfig::default().with_workers(4));
    assert_eq!(serial.workload.tiles_x(), 3);
    assert_eq!(serial.workload.tiles_y(), 2);
    assert_eq!(serial.image, parallel.image);
    assert_eq!(serial.raster, parallel.raster);
}

#[test]
fn empty_visible_set_renders_empty_frame() {
    use gaurast_scene::generator::SceneParams;
    let scene = SceneParams::new(300).seed(6).generate().unwrap();
    let prepared = PreparedScene::prepare(scene);
    // Camera facing directly away: the set is empty, and the pipeline
    // over it must agree with the full pipeline (which culls everything).
    let camera = Camera::look_at(
        Vec3::new(0.0, 0.0, -90.0),
        Vec3::new(0.0, 0.0, -180.0),
        Vec3::new(0.0, 1.0, 0.0),
        48,
        32,
        1.0,
    )
    .unwrap();
    let set = prepared.visible_set(&camera);
    assert!(set.is_empty());
    let pool = WorkerPool::new(4);
    let pre = preprocess_prepared_visible_pooled(&prepared, &camera, &set, &pool);
    assert!(pre.splats.is_empty());
    assert_eq!(pre.culled, prepared.len());
    let mut workload = gaurast_render::tile::bin_splats_pooled(
        pre.splats,
        camera.width(),
        camera.height(),
        16,
        &mut gaurast_render::FrameArena::new(),
        &pool,
    );
    let mut fb = gaurast_render::Framebuffer::new(camera.width(), camera.height());
    let stats = gaurast_render::rasterize::rasterize_with(&mut workload, Some(&mut fb), &pool);
    assert_eq!(stats.blends_committed, 0);
    assert_eq!(fb.coverage(), 0.0);
}
