//! Determinism of the intra-frame parallel pipeline: for random scenes and
//! cameras, a parallel render (`workers = 4`) must be **bit-identical** to
//! the serial path (`workers = 1`) — image bytes, preprocess op counts,
//! cull statistics, rasterization statistics, and per-tile processed
//! counts — and the record-only path must agree with the imaging path.

use gaurast_math::Vec3;
use gaurast_render::pipeline::{render, render_record_only, RenderConfig};
use gaurast_render::pool::WorkerPool;
use gaurast_render::preprocess::{preprocess_pooled, PREPROCESS_CHUNK};
use gaurast_scene::{Camera, Gaussian3, GaussianScene};
use proptest::prelude::*;

fn gaussian_strategy() -> impl Strategy<Value = Gaussian3> {
    (
        -8.0f32..8.0,
        -8.0f32..8.0,
        -8.0f32..8.0,
        0.02f32..1.2,
        0.05f32..0.99,
        0.0f32..1.0,
    )
        .prop_map(|(x, y, z, sigma, opacity, hue)| {
            Gaussian3::isotropic(
                Vec3::new(x, y, z),
                sigma,
                opacity,
                Vec3::new(hue, 1.0 - hue, 0.5),
            )
        })
}

fn camera_strategy() -> impl Strategy<Value = Camera> {
    (0.0f32..std::f32::consts::TAU, 2.0f32..10.0, -4.0f32..6.0).prop_map(|(theta, dist, height)| {
        Camera::look_at(
            Vec3::new(dist * 2.5 * theta.sin(), height, -dist * 2.5 * theta.cos()),
            Vec3::zero(),
            Vec3::new(0.0, 1.0, 0.0),
            96,
            80,
            1.05,
        )
        .expect("valid orbit camera")
    })
}

fn scene_of(gaussians: Vec<Gaussian3>) -> GaussianScene {
    GaussianScene::from_gaussians(gaussians).expect("non-empty random scene")
}

/// Asserts every observable of two render outputs is bit-identical.
fn assert_bit_identical(
    a: &gaurast_render::pipeline::RenderOutput,
    b: &gaurast_render::pipeline::RenderOutput,
) {
    assert_eq!(a.image, b.image, "image planes must be bit-identical");
    assert_eq!(a.preprocess, b.preprocess, "stage-1 stats must match");
    assert_eq!(a.raster, b.raster, "stage-3 stats must match");
    assert_eq!(a.workload, b.workload, "workloads must match");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_render_is_bit_identical_to_serial(
        gaussians in prop::collection::vec(gaussian_strategy(), 1..400),
        camera in camera_strategy(),
    ) {
        let scene = scene_of(gaussians);
        let serial = render(&scene, &camera, &RenderConfig::default().with_workers(1));
        let parallel = render(&scene, &camera, &RenderConfig::default().with_workers(4));
        assert_bit_identical(&serial, &parallel);
    }

    #[test]
    fn record_only_matches_imaging_path_at_any_width(
        gaussians in prop::collection::vec(gaussian_strategy(), 1..200),
        camera in camera_strategy(),
        workers in 1usize..5,
    ) {
        let scene = scene_of(gaussians);
        let cfg = RenderConfig::default().with_workers(workers);
        let full = render(&scene, &camera, &cfg);
        let counts = render_record_only(&scene, &camera, &cfg);
        prop_assert_eq!(counts.preprocess, full.preprocess);
        prop_assert_eq!(counts.raster, full.raster);
        prop_assert_eq!(counts.workload.blend_work(), full.workload.blend_work());
        for ty in 0..full.workload.tiles_y() {
            for tx in 0..full.workload.tiles_x() {
                prop_assert_eq!(
                    counts.workload.processed_count(tx, ty),
                    full.workload.processed_count(tx, ty)
                );
            }
        }
    }

    #[test]
    fn chunked_preprocess_stitches_in_index_order(
        gaussians in prop::collection::vec(gaussian_strategy(), 1..120),
        camera in camera_strategy(),
    ) {
        // Repeat the random scene until it spans several chunks, so the
        // chunked path actually splits.
        let n = gaussians.len();
        let copies = PREPROCESS_CHUNK / n + 2;
        let mut all = Vec::with_capacity(n * copies);
        for _ in 0..copies {
            all.extend(gaussians.iter().cloned());
        }
        let scene = scene_of(all);
        let serial = preprocess_pooled(&scene, &camera, &WorkerPool::serial());
        let parallel = preprocess_pooled(&scene, &camera, &WorkerPool::new(4));
        prop_assert_eq!(&serial, &parallel);
        // Source ids must be globally indexed and strictly increasing
        // (stitching in chunk order preserves the serial emission order).
        for w in serial.splats.windows(2) {
            prop_assert!(w[0].source < w[1].source);
        }
    }
}

/// A fixed mid-size scene rendered at every pool width 1..=8: all outputs
/// must equal the serial frame bit for bit (the golden cross-check the
/// proptests randomize).
#[test]
fn all_pool_widths_agree_on_fixed_scene() {
    use gaurast_scene::generator::SceneParams;
    let scene = SceneParams::new(3000).seed(7).generate().unwrap();
    let camera = Camera::look_at(
        Vec3::new(0.0, 6.0, -28.0),
        Vec3::zero(),
        Vec3::new(0.0, 1.0, 0.0),
        160,
        112,
        1.05,
    )
    .unwrap();
    let serial = render(&scene, &camera, &RenderConfig::default().with_workers(1));
    assert!(serial.image.coverage() > 0.02);
    for workers in 2..=8 {
        let out = render(
            &scene,
            &camera,
            &RenderConfig::default().with_workers(workers),
        );
        assert_eq!(out.image, serial.image, "workers={workers}");
        assert_eq!(out.raster, serial.raster, "workers={workers}");
        assert_eq!(out.preprocess, serial.preprocess, "workers={workers}");
        assert_eq!(out.workload, serial.workload, "workers={workers}");
    }
}

/// The ≥2× intra-frame scaling acceptance check: skipped (not failed) on
/// machines without at least 4 cores, asserted on capable multi-core
/// runners. Uses a raster-heavy frame so the parallel tile jobs dominate.
///
/// Ignored by default: wall-clock measurement is only meaningful without
/// concurrent harness neighbors stealing the cores mid-window. CI runs it
/// as a dedicated step:
/// `cargo test --release -p gaurast-render --test parallel -- --ignored
/// --test-threads=1`.
#[test]
#[ignore = "timing assertion; run dedicated with --ignored --test-threads=1"]
fn four_workers_reach_2x_on_multicore() {
    use gaurast_scene::generator::SceneParams;
    use std::time::Instant;

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    if cores < 4 {
        eprintln!("skipping intra-frame scaling check: only {cores} core(s) available");
        return;
    }
    let scene = SceneParams::new(20_000).seed(42).generate().unwrap();
    let camera = Camera::look_at(
        Vec3::new(0.0, 6.0, -28.0),
        Vec3::zero(),
        Vec3::new(0.0, 1.0, 0.0),
        320,
        208,
        1.05,
    )
    .unwrap();
    let time_with = |workers: usize| {
        let cfg = RenderConfig::default().with_workers(workers);
        let _warmup = render(&scene, &camera, &cfg);
        let started = Instant::now();
        let frames = 3;
        for _ in 0..frames {
            let out = render(&scene, &camera, &cfg);
            assert!(out.raster.blends_committed > 0);
        }
        started.elapsed().as_secs_f64() / frames as f64
    };
    let serial = time_with(1);
    let parallel = time_with(4);
    let speedup = serial / parallel;
    assert!(
        speedup >= 2.0,
        "4-worker frame must be ≥2x serial on a {cores}-core host, got {speedup:.2}x \
         ({serial:.4}s vs {parallel:.4}s)"
    );
}
