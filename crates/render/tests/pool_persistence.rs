//! The persistent-pool and frame-graph contracts: a long-lived
//! [`WorkerPool`] reused across frames must be **bit-identical** to
//! constructing a fresh pool per frame at every width 1–8; the overlapped
//! frame-graph schedule must be bit-identical to the strict sequential
//! A/B reference; and a panicking job must surface as a typed error
//! without tearing the pool down.

use gaurast_math::Vec3;
use gaurast_render::graph::GraphMode;
use gaurast_render::pipeline::{
    render_record_only_with_pool, render_with_arena, render_with_pool, RenderConfig, RenderOutput,
    Stage2Mode,
};
use gaurast_render::pool::{JobPanicked, WorkerPool};
use gaurast_render::FrameArena;
use gaurast_scene::{Camera, Gaussian3, GaussianScene};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

fn gaussian_strategy() -> impl Strategy<Value = Gaussian3> {
    (
        -8.0f32..8.0,
        -8.0f32..8.0,
        -8.0f32..8.0,
        0.02f32..1.2,
        0.05f32..0.99,
        0.0f32..1.0,
    )
        .prop_map(|(x, y, z, sigma, opacity, hue)| {
            Gaussian3::isotropic(
                Vec3::new(x, y, z),
                sigma,
                opacity,
                Vec3::new(hue, 1.0 - hue, 0.5),
            )
        })
}

fn camera_strategy() -> impl Strategy<Value = Camera> {
    (0.0f32..std::f32::consts::TAU, 2.0f32..10.0, -4.0f32..6.0).prop_map(|(theta, dist, height)| {
        Camera::look_at(
            Vec3::new(dist * 2.5 * theta.sin(), height, -dist * 2.5 * theta.cos()),
            Vec3::zero(),
            Vec3::new(0.0, 1.0, 0.0),
            96,
            80,
            1.05,
        )
        .expect("valid orbit camera")
    })
}

fn scene_of(gaussians: Vec<Gaussian3>) -> GaussianScene {
    GaussianScene::from_gaussians(gaussians).expect("non-empty random scene")
}

fn fixed_scene(n: usize) -> GaussianScene {
    gaurast_scene::generator::SceneParams::new(n)
        .seed(17)
        .generate()
        .expect("generator scene")
}

fn fixed_camera() -> Camera {
    Camera::look_at(
        Vec3::new(0.0, 6.0, -28.0),
        Vec3::zero(),
        Vec3::new(0.0, 1.0, 0.0),
        128,
        96,
        1.05,
    )
    .expect("fixed camera")
}

/// Asserts every observable of two render outputs is bit-identical.
fn assert_bit_identical(a: &RenderOutput, b: &RenderOutput, what: &str) {
    assert_eq!(a.image, b.image, "{what}: image planes must be identical");
    assert_eq!(a.preprocess, b.preprocess, "{what}: stage-1 stats");
    assert_eq!(a.raster, b.raster, "{what}: stage-3 stats");
    assert_eq!(a.workload, b.workload, "{what}: workloads");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole bit-identity gate: one long-lived pool rendering many
    /// frames equals a fresh pool per frame, at a random width 1–8, on
    /// random scenes — including arena reuse across the persistent
    /// frames.
    #[test]
    fn persistent_pool_is_bit_identical_to_fresh_pool_per_frame(
        gaussians in prop::collection::vec(gaussian_strategy(), 1..400),
        camera in camera_strategy(),
        workers in 1usize..9,
    ) {
        let scene = scene_of(gaussians);
        let config = RenderConfig::default().with_workers(workers);
        // A/B baseline: a fresh pool constructed for each frame.
        let fresh = render_with_arena(&scene, &camera, &config, &mut FrameArena::new());
        // Persistent: one pool, one arena, three consecutive frames.
        let pool = WorkerPool::new(workers);
        let mut arena = FrameArena::new();
        let mut last = None;
        for _ in 0..3 {
            if let Some(prev) = last.take() {
                let prev: RenderOutput = prev;
                prev.workload.recycle_into(&mut arena);
            }
            last = Some(render_with_pool(&scene, &camera, &config, &mut arena, &pool));
        }
        let persistent = last.expect("three frames ran");
        assert_bit_identical(&fresh, &persistent, "fresh-vs-persistent");
    }

    /// The frame-graph A/B gate: the overlapped schedule (Stage-1 chunks
    /// fused with Stage-2 histogramming) is bit-identical to the strict
    /// sequential reference.
    #[test]
    fn overlapped_graph_is_bit_identical_to_sequential(
        gaussians in prop::collection::vec(gaussian_strategy(), 1..400),
        camera in camera_strategy(),
        workers in 1usize..9,
    ) {
        let scene = scene_of(gaussians);
        let pool = WorkerPool::new(workers);
        let base = RenderConfig::default().with_workers(workers);
        let seq = render_with_pool(
            &scene, &camera, &base.with_graph(GraphMode::Sequential),
            &mut FrameArena::new(), &pool,
        );
        let ovl = render_with_pool(
            &scene, &camera, &base.with_graph(GraphMode::Overlapped),
            &mut FrameArena::new(), &pool,
        );
        assert_bit_identical(&seq, &ovl, "sequential-vs-overlapped");
    }
}

/// Deterministic sweep: every width 1–8, both graph modes, and the staged
/// legacy-Stage-2 path all agree bit for bit on a fixed multi-chunk scene
/// (5000 Gaussians → 5 Stage-1 chunks).
#[test]
fn all_widths_and_graph_modes_agree_on_fixed_scene() {
    let scene = fixed_scene(5000);
    let camera = fixed_camera();
    let reference = render_with_arena(
        &scene,
        &camera,
        &RenderConfig::default().with_workers(1),
        &mut FrameArena::new(),
    );
    for workers in 1..=8 {
        let pool = WorkerPool::new(workers);
        let base = RenderConfig::default().with_workers(workers);
        for mode in [GraphMode::Overlapped, GraphMode::Sequential] {
            let out = render_with_pool(
                &scene,
                &camera,
                &base.with_graph(mode),
                &mut FrameArena::new(),
                &pool,
            );
            assert_bit_identical(&reference, &out, "width/mode sweep");
        }
        let legacy = render_with_pool(
            &scene,
            &camera,
            &base.with_stage2(Stage2Mode::LegacyPerTile),
            &mut FrameArena::new(),
            &pool,
        );
        assert_bit_identical(&reference, &legacy, "legacy stage-2");
    }
}

/// Record-only frames through the persistent-pool entry agree with the
/// imaging path on every shared observable.
#[test]
fn record_only_with_pool_matches_imaging_path() {
    let scene = fixed_scene(3000);
    let camera = fixed_camera();
    let pool = WorkerPool::new(4);
    let config = RenderConfig::default().with_workers(4);
    let imaged = render_with_pool(&scene, &camera, &config, &mut FrameArena::new(), &pool);
    let recorded =
        render_record_only_with_pool(&scene, &camera, &config, &mut FrameArena::new(), &pool);
    assert_eq!(imaged.workload, recorded.workload);
    assert_eq!(imaged.preprocess, recorded.preprocess);
    assert_eq!(imaged.raster, recorded.raster);
}

/// A panicking job surfaces as the typed [`JobPanicked`] error — and the
/// pool survives: its resident threads keep serving dispatches, including
/// a full render, afterwards.
#[test]
fn job_panic_is_typed_and_pool_stays_usable() {
    let pool = WorkerPool::new(4);
    let err = pool
        .try_run(16, |i| {
            if i == 11 {
                panic!("deliberate test panic");
            }
        })
        .expect_err("job 11 panicked");
    assert_eq!(err, JobPanicked { job: 11 });

    // The pool still dispatches: every job of a follow-up run executes
    // exactly once.
    let hits = AtomicUsize::new(0);
    pool.run(32, |_| {
        hits.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(hits.load(Ordering::Relaxed), 32);

    // And a whole frame still renders through it, bit-identical to a
    // never-panicked pool.
    let scene = fixed_scene(2000);
    let camera = fixed_camera();
    let config = RenderConfig::default().with_workers(4);
    let survivor = render_with_pool(&scene, &camera, &config, &mut FrameArena::new(), &pool);
    let clean = render_with_pool(
        &scene,
        &camera,
        &config,
        &mut FrameArena::new(),
        &WorkerPool::new(4),
    );
    assert_bit_identical(&survivor, &clean, "post-panic render");
}

/// `run` (as opposed to `try_run`) re-raises a worker-side job panic as
/// the typed payload, and the pool survives that too.
#[test]
fn run_reraises_worker_panic_as_typed_payload() {
    let pool = WorkerPool::new(3);
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.run(8, |i| {
            if i == 5 {
                panic!("boom");
            }
        });
    }))
    .expect_err("panic must propagate to the dispatching caller");
    // Worker-side panics cross as the typed JobPanicked; a caller-side
    // panic would carry the original payload. Both are acceptable here —
    // which thread claims job 5 is scheduling-dependent — but a typed one
    // must name job 5.
    if let Some(p) = payload.downcast_ref::<JobPanicked>() {
        assert_eq!(*p, JobPanicked { job: 5 });
    }
    let hits = AtomicUsize::new(0);
    pool.run(8, |_| {
        hits.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(hits.load(Ordering::Relaxed), 8);
}
