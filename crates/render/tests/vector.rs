//! Scalar ≡ SIMD bit-identity: the [`gaurast_render::simd`] kernels must
//! reproduce the scalar reference *exactly* — every pixel bit, every
//! statistic, every FP-op tally — at every worker width, in both
//! frame-graph modes, for hostile scene content.
//!
//! On hosts without AVX2/SSE4.1 the forced modes resolve downward, so the
//! comparisons degrade to scalar-vs-scalar and stay trivially green; CI
//! runs on x86-64 where all three levels are exercised.

use gaurast_math::Vec3;
use gaurast_render::pipeline::{render, render_record_only, RenderConfig};
use gaurast_render::pool::WorkerPool;
use gaurast_render::preprocess::{preprocess_pooled, preprocess_pooled_level};
use gaurast_render::VectorMode;
use gaurast_scene::generator::SceneParams;
use gaurast_scene::{Camera, Gaussian3, GaussianScene};
use proptest::prelude::*;

const MODES: [VectorMode; 3] = [
    VectorMode::Scalar,
    VectorMode::ForceSse,
    VectorMode::ForceAvx2,
];

fn camera(width: u32, height: u32) -> Camera {
    Camera::look_at(
        Vec3::new(0.0, 6.0, -28.0),
        Vec3::zero(),
        Vec3::new(0.0, 1.0, 0.0),
        width,
        height,
        1.05,
    )
    .expect("valid camera")
}

/// Renders one scene under every vector mode and asserts the complete
/// output — image, workload, stats, op tallies — is bit-identical to the
/// scalar reference.
fn assert_modes_identical(scene: &GaussianScene, cam: &Camera, base: RenderConfig) {
    let reference = render(scene, cam, &base.with_vector_mode(VectorMode::Scalar));
    for mode in [
        VectorMode::ForceSse,
        VectorMode::ForceAvx2,
        VectorMode::Auto,
    ] {
        let out = render(scene, cam, &base.with_vector_mode(mode));
        assert_eq!(
            reference.image, out.image,
            "image diverged under {mode:?} (workers {})",
            base.workers
        );
        assert_eq!(reference.workload, out.workload, "workload under {mode:?}");
        assert_eq!(
            reference.preprocess, out.preprocess,
            "stage-1 stats under {mode:?}"
        );
        assert_eq!(reference.raster, out.raster, "stage-3 stats under {mode:?}");
    }
}

/// Gaussians spanning extreme scales and positions, exercising every cull
/// branch (depth, degenerate conic, non-finite, sub-pixel, off-screen).
fn hostile_gaussian() -> impl Strategy<Value = Gaussian3> {
    (
        -1.0e4f32..1.0e4,
        -1.0e3f32..1.0e3,
        -1.0e4f32..1.0e4,
        -4.0f32..8.0,
        0.05f32..1.0,
    )
        .prop_map(|(x, y, z, log_sigma, opacity)| {
            Gaussian3::isotropic(
                Vec3::new(x, y, z),
                10.0f32.powf(log_sigma),
                opacity,
                Vec3::new(0.9, 0.5, 0.1),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random well-formed scenes: full pipeline equality at random worker
    /// widths in the default (overlapped) graph mode.
    #[test]
    fn simd_matches_scalar_on_random_scenes(
        n in 1usize..700,
        seed in 0u64..u64::MAX,
        workers in 1usize..9,
    ) {
        let scene = SceneParams::new(n).seed(seed).generate().expect("valid scene");
        let cam = camera(96, 64);
        assert_modes_identical(&scene, &cam, RenderConfig::default().with_workers(workers));
    }

    /// Hostile scenes (covariance overflow, NaN-adjacent math, every cull
    /// class) on small odd framebuffers.
    #[test]
    fn simd_matches_scalar_on_hostile_scenes(
        gaussians in prop::collection::vec(hostile_gaussian(), 1..64),
        width in 1u32..70,
        height in 1u32..70,
        workers in 1usize..5,
    ) {
        let scene = GaussianScene::from_gaussians(gaussians).expect("validated");
        let cam = Camera::look_at(
            Vec3::new(0.0, 40.0, -220.0),
            Vec3::zero(),
            Vec3::new(0.0, 1.0, 0.0),
            width,
            height,
            1.05,
        ).expect("valid camera");
        assert_modes_identical(&scene, &cam, RenderConfig::default().with_workers(workers));
    }

    /// Stage 1 in isolation: the pooled preprocess entry point must agree
    /// across levels on splats, cull counts, and op tallies.
    #[test]
    fn preprocess_levels_agree(
        n in 1usize..900,
        seed in 0u64..u64::MAX,
        workers in 1usize..5,
    ) {
        let scene = SceneParams::new(n).seed(seed).generate().expect("valid scene");
        let cam = camera(128, 96);
        let pool = WorkerPool::new(workers);
        let reference = preprocess_pooled(&scene, &cam, &pool);
        for mode in MODES {
            let out = preprocess_pooled_level(&scene, &cam, &pool, mode.resolve());
            prop_assert_eq!(&reference, &out, "level {:?}", mode.resolve());
        }
    }
}

/// Every worker width 1..=8 in both graph modes — the full cross-product
/// the bit-identity contract names.
#[test]
fn all_worker_widths_and_graph_modes_are_bit_identical() {
    use gaurast_render::graph::GraphMode;
    let scene = SceneParams::new(1500)
        .seed(7)
        .generate()
        .expect("valid scene");
    let cam = camera(128, 96);
    for graph in [GraphMode::Overlapped, GraphMode::Sequential] {
        for workers in 1..=8 {
            let base = RenderConfig::default()
                .with_workers(workers)
                .with_graph(graph);
            assert_modes_identical(&scene, &cam, base);
        }
    }
}

/// Splat counts congruent to 1..7 (mod 8) exercise every partial-tail lane
/// count of both the 4-wide and 8-wide kernels.
#[test]
fn lane_tail_counts_are_bit_identical() {
    let cam = camera(64, 48);
    for extra in 0usize..8 {
        let n = 8 + extra; // 8..=15 covers n % 8 ∈ {0..7} and n % 4 ∈ {0..3}
        let scene = SceneParams::new(n)
            .seed(extra as u64)
            .generate()
            .expect("valid scene");
        assert_modes_identical(&scene, &cam, RenderConfig::default().with_workers(1));
    }
}

/// Non-finite splat parameters at the validation boundary must take the
/// same cull branches in every mode.
#[test]
fn non_finite_projection_is_bit_identical() {
    // Huge scale → covariance overflow → non-finite radius cull.
    let scene = GaussianScene::from_gaussians(vec![
        Gaussian3::isotropic(
            Vec3::new(0.0, 0.0, 0.0),
            5.0e16,
            0.9,
            Vec3::new(1.0, 0.0, 0.0),
        ),
        Gaussian3::isotropic(Vec3::new(1.0, 0.5, 2.0), 0.3, 0.8, Vec3::new(0.0, 1.0, 0.0)),
        Gaussian3::isotropic(
            Vec3::new(-2.0, 1.0, -3.0),
            1.0e-6,
            0.7,
            Vec3::new(0.0, 0.0, 1.0),
        ),
    ])
    .expect("validated");
    let cam = camera(48, 32);
    assert_modes_identical(&scene, &cam, RenderConfig::default().with_workers(2));
}

/// Degenerate framebuffer shapes: a single pixel and a non-tile-multiple
/// odd size.
#[test]
fn tiny_and_odd_framebuffers_are_bit_identical() {
    let scene = SceneParams::new(300)
        .seed(3)
        .generate()
        .expect("valid scene");
    for (w, h) in [(1, 1), (33, 17)] {
        assert_modes_identical(
            &scene,
            &camera(w, h),
            RenderConfig::default().with_workers(2),
        );
    }
}

/// An empty scene (no visible splats anywhere) must produce identical
/// empty outputs.
#[test]
fn empty_visible_set_is_bit_identical() {
    // Everything far behind the camera: depth-culled wholesale.
    let scene = GaussianScene::from_gaussians(vec![Gaussian3::isotropic(
        Vec3::new(0.0, 0.0, -1.0e4),
        0.2,
        0.9,
        Vec3::new(1.0, 1.0, 1.0),
    )])
    .expect("validated");
    let cam = camera(32, 32);
    assert_modes_identical(&scene, &cam, RenderConfig::default().with_workers(2));
    for mode in MODES {
        let out = render_record_only(
            &scene,
            &cam,
            &RenderConfig::default().with_vector_mode(mode),
        );
        assert_eq!(out.workload.splats().len(), 0, "mode {mode:?}");
    }
}
