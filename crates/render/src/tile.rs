//! Tile binning: assign splats to the 16×16-pixel tiles they may touch.
//!
//! The reference rasterizer duplicates each splat key into every tile its
//! 3σ bounding square overlaps, then sorts per tile by depth. This module
//! reproduces that exactly and emits the [`RasterWorkload`].

use crate::preprocess::Splat2D;
use crate::sort::sort_indices_by_depth;
use crate::workload::RasterWorkload;
use gaurast_math::{Aabb2, Vec2};

/// Tile index range `(x0, y0, x1, y1)` (inclusive bounds) overlapped by a
/// splat's 3σ square, or `None` when it misses the image entirely.
///
/// The upper bound follows the reference rasterizer's *exclusive-max*
/// convention (`rect_max = ceil(max / tile)`, tiles `[x0, x1e)`): a box
/// ending exactly on a tile boundary does **not** enter the next tile.
/// Splats with a non-finite mean or radius are never binned (upstream
/// Stage 1 culls them; this is defense in depth for direct callers —
/// without it, `floor() as u32` would saturate a NaN to 0 and silently
/// bin the splat into tile (0, 0)).
pub fn tile_range(
    splat: &Splat2D,
    width: u32,
    height: u32,
    tile_size: u32,
) -> Option<(u32, u32, u32, u32)> {
    if !(splat.mean.is_finite() && splat.radius.is_finite()) {
        return None;
    }
    let bbox = Aabb2::from_center_radius(splat.mean, splat.radius);
    let img = Aabb2::new(Vec2::zero(), Vec2::new(width as f32, height as f32));
    if !bbox.intersects(&img) {
        return None;
    }
    let clipped = bbox.intersection(&img);
    let ts = tile_size as f32;
    let x0 = (clipped.min.x / ts).floor().max(0.0) as u32;
    let y0 = (clipped.min.y / ts).floor().max(0.0) as u32;
    let tiles_x = width.div_ceil(tile_size);
    let tiles_y = height.div_ceil(tile_size);
    // Exclusive upper tile bound, then back to the inclusive API. A box
    // whose clipped extent is empty (touching an image edge from outside)
    // covers no tile.
    let x1e = ((clipped.max.x / ts).ceil() as u32).min(tiles_x);
    let y1e = ((clipped.max.y / ts).ceil() as u32).min(tiles_y);
    if x1e <= x0 || y1e <= y0 {
        return None;
    }
    Some((x0, y0, x1e - 1, y1e - 1))
}

/// Bins depth-sortable splats into per-tile lists and returns the workload.
///
/// Each tile's list is sorted front-to-back. The input order of `splats` is
/// irrelevant; determinism comes from the stable depth sort.
///
/// # Panics
/// Panics when `tile_size` is zero or the image is empty.
pub fn bin_splats(splats: Vec<Splat2D>, width: u32, height: u32, tile_size: u32) -> RasterWorkload {
    bin_splats_into(splats, width, height, tile_size, Vec::new())
}

/// [`bin_splats`] with caller-recycled tile-list buffers: `lists` is
/// resized to the grid and each list cleared (keeping its allocation)
/// before binning. Engine sessions thread the buffers returned by
/// [`RasterWorkload::into_buffers`] back through here so steady-state
/// frames allocate nothing for binning.
///
/// # Panics
/// Panics when `tile_size` is zero or the image is empty.
pub fn bin_splats_into(
    splats: Vec<Splat2D>,
    width: u32,
    height: u32,
    tile_size: u32,
    lists: Vec<Vec<u32>>,
) -> RasterWorkload {
    let mut workload = bin_splats_deferred_into(splats, width, height, tile_size, lists);
    let (splats, lists) = workload.splats_and_lists_mut();
    for list in lists {
        sort_indices_by_depth(list, splats);
    }
    workload.mark_sorted();
    workload
}

/// [`bin_splats_into`] with the per-tile depth sort *deferred*: each tile's
/// list holds its splat indices in submission order, to be sorted by the
/// consumer — the tile-major rasterization path
/// ([`crate::rasterize::rasterize_with`]) sorts every tile inside its own
/// parallel tile job, so there is no serial sort stage at all. The stable
/// per-tile sort produces bit-identical lists wherever it runs.
///
/// # Panics
/// Panics when `tile_size` is zero or the image is empty.
pub fn bin_splats_deferred_into(
    splats: Vec<Splat2D>,
    width: u32,
    height: u32,
    tile_size: u32,
    mut lists: Vec<Vec<u32>>,
) -> RasterWorkload {
    assert!(tile_size > 0 && width > 0 && height > 0);
    let tiles_x = width.div_ceil(tile_size);
    let tiles_y = height.div_ceil(tile_size);
    lists.resize((tiles_x * tiles_y) as usize, Vec::new());
    for list in &mut lists {
        list.clear();
    }

    for (i, s) in splats.iter().enumerate() {
        if let Some((x0, y0, x1, y1)) = tile_range(s, width, height, tile_size) {
            for ty in y0..=y1 {
                for tx in x0..=x1 {
                    lists[(ty * tiles_x + tx) as usize].push(i as u32);
                }
            }
        }
    }
    RasterWorkload::new(width, height, tile_size, splats, lists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaurast_math::Vec3;

    fn splat_at(x: f32, y: f32, radius: f32, depth: f32) -> Splat2D {
        Splat2D {
            mean: Vec2::new(x, y),
            conic: [0.05, 0.0, 0.05],
            depth,
            color: Vec3::one(),
            opacity: 0.9,
            radius,
            source: 0,
        }
    }

    #[test]
    fn small_splat_lands_in_one_tile() {
        let w = bin_splats(vec![splat_at(8.0, 8.0, 3.0, 1.0)], 64, 64, 16);
        assert_eq!(w.tile_list(0, 0), &[0]);
        assert!(w.tile_list(1, 0).is_empty());
        assert!(w.tile_list(0, 1).is_empty());
        assert_eq!(w.total_pairs(), 1);
    }

    #[test]
    fn splat_on_tile_border_lands_in_both() {
        let w = bin_splats(vec![splat_at(16.0, 8.0, 3.0, 1.0)], 64, 64, 16);
        assert_eq!(w.tile_list(0, 0), &[0]);
        assert_eq!(w.tile_list(1, 0), &[0]);
        assert_eq!(w.total_pairs(), 2);
    }

    #[test]
    fn huge_splat_covers_all_tiles() {
        let w = bin_splats(vec![splat_at(32.0, 32.0, 100.0, 1.0)], 64, 64, 16);
        assert_eq!(w.total_pairs(), 16);
    }

    #[test]
    fn off_image_splat_binned_nowhere() {
        let w = bin_splats(vec![splat_at(-50.0, -50.0, 3.0, 1.0)], 64, 64, 16);
        assert_eq!(w.total_pairs(), 0);
    }

    #[test]
    fn tile_lists_are_depth_sorted() {
        let splats = vec![
            splat_at(8.0, 8.0, 3.0, 5.0),
            splat_at(9.0, 9.0, 3.0, 1.0),
            splat_at(7.0, 7.0, 3.0, 3.0),
        ];
        let w = bin_splats(splats, 32, 32, 16);
        assert_eq!(w.tile_list(0, 0), &[1, 2, 0]);
    }

    #[test]
    fn tile_range_clamps_to_grid() {
        let s = splat_at(63.0, 63.0, 10.0, 1.0);
        let (x0, y0, x1, y1) = tile_range(&s, 64, 64, 16).unwrap();
        assert!(x1 <= 3 && y1 <= 3);
        assert!(x0 <= x1 && y0 <= y1);
    }

    #[test]
    fn partial_edge_tile_binning() {
        // 20x20 image with 16px tiles: 2x2 grid with partial edges.
        let w = bin_splats(vec![splat_at(18.0, 18.0, 1.5, 1.0)], 20, 20, 16);
        assert_eq!(w.tile_list(1, 1), &[0]);
        assert_eq!(w.total_pairs(), 1);
    }

    #[test]
    fn boundary_exact_box_stays_out_of_next_tile() {
        // 3σ box [8-8, 8+8] = [0, 16]: ends exactly on the x=16 tile
        // boundary, so under the exclusive-max convention it must cover
        // only tile column 0 (the bug binned it into column 1 too).
        let (x0, y0, x1, y1) = tile_range(&splat_at(8.0, 8.0, 8.0, 1.0), 64, 64, 16).unwrap();
        assert_eq!((x0, y0, x1, y1), (0, 0, 0, 0));
        let w = bin_splats(vec![splat_at(8.0, 8.0, 8.0, 1.0)], 64, 64, 16);
        assert_eq!(w.total_pairs(), 1);
        assert!(w.tile_list(1, 0).is_empty());
        assert!(w.tile_list(0, 1).is_empty());
    }

    #[test]
    fn box_starting_on_boundary_skips_previous_tile() {
        // Box [16, 22] starts exactly on the boundary: tile column 1 only.
        let (x0, _, x1, _) = tile_range(&splat_at(19.0, 8.0, 3.0, 1.0), 64, 64, 16).unwrap();
        assert_eq!((x0, x1), (1, 1));
    }

    #[test]
    fn degenerate_box_touching_image_edge_is_not_binned() {
        // Box [-6, 0]: touches the image's left edge with an empty clipped
        // extent — the reference's empty rect [0, 0) — so no tile.
        assert!(tile_range(&splat_at(-3.0, 8.0, 3.0, 1.0), 64, 64, 16).is_none());
    }

    #[test]
    fn non_finite_splats_are_never_binned() {
        // A NaN mean used to saturate `floor() as u32` to 0 and silently
        // land the splat in tile (0, 0); now it is not binned at all.
        let mut nan_mean = splat_at(8.0, 8.0, 3.0, 1.0);
        nan_mean.mean = Vec2::new(f32::NAN, 8.0);
        assert!(tile_range(&nan_mean, 64, 64, 16).is_none());
        let mut inf_radius = splat_at(8.0, 8.0, 3.0, 1.0);
        inf_radius.radius = f32::INFINITY;
        assert!(tile_range(&inf_radius, 64, 64, 16).is_none());
        let mut nan_radius = splat_at(8.0, 8.0, 3.0, 1.0);
        nan_radius.radius = f32::NAN;
        assert!(tile_range(&nan_radius, 64, 64, 16).is_none());
    }

    #[test]
    fn recycled_buffers_produce_identical_workloads() {
        let splats = vec![
            splat_at(8.0, 8.0, 3.0, 2.0),
            splat_at(40.0, 40.0, 5.0, 1.0),
            splat_at(16.0, 16.0, 4.0, 3.0),
        ];
        let fresh = bin_splats(splats.clone(), 64, 64, 16);
        // Recycle through a stale buffer set from a differently sized grid.
        let (recycled_splats, stale_lists) = bin_splats(splats.clone(), 128, 96, 16).into_buffers();
        drop(recycled_splats);
        let reused = super::bin_splats_into(splats, 64, 64, 16, stale_lists);
        assert_eq!(fresh, reused);
    }
}
