//! Tile binning: assign splats to the 16×16-pixel tiles they may touch.
//!
//! The reference rasterizer duplicates each splat into one packed
//! `(tile, depth)` key per tile its 3σ bounding square overlaps
//! ([`crate::sort::pack_key`]), radix-sorts the whole key array once, and
//! reads the result back as a flat CSR workload. This module reproduces
//! that exactly and emits the [`RasterWorkload`]; the historical
//! per-tile-list + comparison-sort path survives as
//! [`bin_splats_legacy`] (the [`Stage2Mode::LegacyPerTile`] escape hatch
//! and the proptest oracle).
//!
//! [`Stage2Mode::LegacyPerTile`]: crate::pipeline::Stage2Mode::LegacyPerTile

use crate::pool::WorkerPool;
use crate::preprocess::Splat2D;
use crate::sort::{key_tile, pack_key, sort_indices_by_depth};
use crate::workload::{FrameArena, RasterWorkload};
use gaurast_math::{Aabb2, Vec2};

/// Tile index range `(x0, y0, x1, y1)` (inclusive bounds) overlapped by a
/// splat's 3σ square, or `None` when it misses the image entirely.
///
/// The upper bound follows the reference rasterizer's *exclusive-max*
/// convention (`rect_max = ceil(max / tile)`, tiles `[x0, x1e)`): a box
/// ending exactly on a tile boundary does **not** enter the next tile.
/// Splats with a non-finite mean or radius are never binned (upstream
/// Stage 1 culls them; this is defense in depth for direct callers —
/// without it, `floor() as u32` would saturate a NaN to 0 and silently
/// bin the splat into tile (0, 0)).
pub fn tile_range(
    splat: &Splat2D,
    width: u32,
    height: u32,
    tile_size: u32,
) -> Option<(u32, u32, u32, u32)> {
    if !(splat.mean.is_finite() && splat.radius.is_finite()) {
        return None;
    }
    let bbox = Aabb2::from_center_radius(splat.mean, splat.radius);
    let img = Aabb2::new(Vec2::zero(), Vec2::new(width as f32, height as f32));
    if !bbox.intersects(&img) {
        return None;
    }
    let clipped = bbox.intersection(&img);
    let ts = tile_size as f32;
    let x0 = (clipped.min.x / ts).floor().max(0.0) as u32;
    let y0 = (clipped.min.y / ts).floor().max(0.0) as u32;
    let tiles_x = width.div_ceil(tile_size);
    let tiles_y = height.div_ceil(tile_size);
    // Exclusive upper tile bound, then back to the inclusive API. A box
    // whose clipped extent is empty (touching an image edge from outside)
    // covers no tile.
    let x1e = ((clipped.max.x / ts).ceil() as u32).min(tiles_x);
    let y1e = ((clipped.max.y / ts).ceil() as u32).min(tiles_y);
    if x1e <= x0 || y1e <= y0 {
        return None;
    }
    Some((x0, y0, x1e - 1, y1e - 1))
}

/// Bins depth-sortable splats into a CSR workload through the key-sorted
/// path with a fresh arena and the serial pool — the convenience entry for
/// tests and one-off frames.
///
/// Each tile's CSR range is sorted front-to-back. The input order of
/// `splats` is irrelevant; determinism comes from the stable radix sort on
/// packed `(tile, depth)` keys.
///
/// # Panics
/// Panics when `tile_size` is zero or the image is empty.
pub fn bin_splats(splats: Vec<Splat2D>, width: u32, height: u32, tile_size: u32) -> RasterWorkload {
    bin_splats_pooled(
        splats,
        width,
        height,
        tile_size,
        &mut FrameArena::new(),
        &WorkerPool::serial(),
    )
}

/// The key-sorted Stage-2 hot path: emits one packed `(tile, depth)` key
/// per covered tile, radix-sorts the key/value pairs in one pass over
/// `pool` ([`crate::sort::RadixSorter`]), and builds the CSR offset table
/// from the sorted runs. All scratch comes from `arena`, so steady-state
/// frames make no data-path allocations (and the persistent pool's
/// workers are parked, not respawned, between `run`s); give the buffers
/// back with [`RasterWorkload::recycle_into`].
///
/// The output is **bit-identical** to [`bin_splats_legacy`] for every
/// worker count: the stable radix order on
/// [`crate::sort::depth_key_bits`] equals the stable comparison order on
/// [`f32::total_cmp`], key for key.
///
/// # Panics
/// Panics when `tile_size` is zero or the image is empty.
// gaurast-check: hot-path
pub fn bin_splats_pooled(
    splats: Vec<Splat2D>,
    width: u32,
    height: u32,
    tile_size: u32,
    arena: &mut FrameArena,
    pool: &WorkerPool,
) -> RasterWorkload {
    assert!(tile_size > 0 && width > 0 && height > 0);
    let tiles_x = width.div_ceil(tile_size);
    let tiles_y = height.div_ceil(tile_size);
    let tile_count = (tiles_x * tiles_y) as usize;

    // Key emission: one (packed key, splat index) pair per covered tile,
    // in splat submission order — the order stability preserves for equal
    // depths.
    let mut keys = std::mem::take(&mut arena.keys);
    let mut values = std::mem::take(&mut arena.values);
    keys.clear();
    values.clear();
    for (i, s) in splats.iter().enumerate() {
        if let Some((x0, y0, x1, y1)) = tile_range(s, width, height, tile_size) {
            for ty in y0..=y1 {
                for tx in x0..=x1 {
                    keys.push(pack_key(ty * tiles_x + tx, s.depth));
                    values.push(i as u32);
                }
            }
        }
    }

    // One stable LSD radix sort orders every tile's run front-to-back.
    arena.sorter.sort_pairs(&mut keys, &mut values, pool);

    // CSR offsets from the sorted keys: count per tile, then prefix-sum.
    let mut offsets = std::mem::take(&mut arena.offsets);
    offsets.clear();
    offsets.resize(tile_count + 1, 0);
    for &k in &keys {
        offsets[key_tile(k) as usize + 1] += 1;
    }
    for i in 0..tile_count {
        offsets[i + 1] += offsets[i];
    }

    arena.keys = keys;
    RasterWorkload::from_csr(
        width,
        height,
        tile_size,
        splats,
        values,
        offsets,
        std::mem::take(&mut arena.processed),
        std::mem::take(&mut arena.soa),
    )
}

/// The historical Stage-2 path, kept for one release as the
/// [`Stage2Mode::LegacyPerTile`](crate::pipeline::Stage2Mode) escape hatch
/// and as the proptest oracle: bins splat indices into per-tile `Vec`s in
/// submission order, stably comparison-sorts each list by depth
/// ([`sort_indices_by_depth`]) — one pool job per tile, exactly where the
/// pre-CSR pipeline ran its in-job sorts — and flattens the lists into the
/// same CSR workload the key-sorted path produces.
///
/// # Panics
/// Panics when `tile_size` is zero or the image is empty.
pub fn bin_splats_legacy(
    splats: Vec<Splat2D>,
    width: u32,
    height: u32,
    tile_size: u32,
    arena: &mut FrameArena,
    pool: &WorkerPool,
) -> RasterWorkload {
    assert!(tile_size > 0 && width > 0 && height > 0);
    let tiles_x = width.div_ceil(tile_size);
    let tiles_y = height.div_ceil(tile_size);
    let tile_count = (tiles_x * tiles_y) as usize;

    let mut lists = std::mem::take(&mut arena.lists);
    lists.resize(tile_count, Vec::new());
    for list in &mut lists {
        list.clear();
    }
    for (i, s) in splats.iter().enumerate() {
        if let Some((x0, y0, x1, y1)) = tile_range(s, width, height, tile_size) {
            for ty in y0..=y1 {
                for tx in x0..=x1 {
                    lists[(ty * tiles_x + tx) as usize].push(i as u32);
                }
            }
        }
    }
    pool.run_mut(&mut lists, |_, list| sort_indices_by_depth(list, &splats));

    let mut values = std::mem::take(&mut arena.values);
    let mut offsets = std::mem::take(&mut arena.offsets);
    values.clear();
    offsets.clear();
    offsets.push(0);
    for list in &lists {
        values.extend_from_slice(list);
        offsets.push(values.len() as u32);
    }
    arena.lists = lists;
    RasterWorkload::from_csr(
        width,
        height,
        tile_size,
        splats,
        values,
        offsets,
        std::mem::take(&mut arena.processed),
        std::mem::take(&mut arena.soa),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaurast_math::Vec3;

    fn splat_at(x: f32, y: f32, radius: f32, depth: f32) -> Splat2D {
        Splat2D {
            mean: Vec2::new(x, y),
            conic: [0.05, 0.0, 0.05],
            depth,
            color: Vec3::one(),
            opacity: 0.9,
            radius,
            source: 0,
        }
    }

    #[test]
    fn small_splat_lands_in_one_tile() {
        let w = bin_splats(vec![splat_at(8.0, 8.0, 3.0, 1.0)], 64, 64, 16);
        assert_eq!(w.tile_list(0, 0), &[0]);
        assert!(w.tile_list(1, 0).is_empty());
        assert!(w.tile_list(0, 1).is_empty());
        assert_eq!(w.total_pairs(), 1);
    }

    #[test]
    fn splat_on_tile_border_lands_in_both() {
        let w = bin_splats(vec![splat_at(16.0, 8.0, 3.0, 1.0)], 64, 64, 16);
        assert_eq!(w.tile_list(0, 0), &[0]);
        assert_eq!(w.tile_list(1, 0), &[0]);
        assert_eq!(w.total_pairs(), 2);
    }

    #[test]
    fn huge_splat_covers_all_tiles() {
        let w = bin_splats(vec![splat_at(32.0, 32.0, 100.0, 1.0)], 64, 64, 16);
        assert_eq!(w.total_pairs(), 16);
    }

    #[test]
    fn off_image_splat_binned_nowhere() {
        let w = bin_splats(vec![splat_at(-50.0, -50.0, 3.0, 1.0)], 64, 64, 16);
        assert_eq!(w.total_pairs(), 0);
    }

    #[test]
    fn tile_lists_are_depth_sorted() {
        let splats = vec![
            splat_at(8.0, 8.0, 3.0, 5.0),
            splat_at(9.0, 9.0, 3.0, 1.0),
            splat_at(7.0, 7.0, 3.0, 3.0),
        ];
        let w = bin_splats(splats, 32, 32, 16);
        assert_eq!(w.tile_list(0, 0), &[1, 2, 0]);
    }

    #[test]
    fn keyed_path_matches_legacy_path() {
        let splats: Vec<Splat2D> = (0..60)
            .map(|i| {
                splat_at(
                    (i * 13 % 64) as f32,
                    (i * 29 % 64) as f32,
                    2.0 + (i % 7) as f32,
                    // Repeating depths exercise tie stability.
                    1.0 + (i % 5) as f32,
                )
            })
            .collect();
        let keyed = bin_splats(splats.clone(), 64, 64, 16);
        let legacy = bin_splats_legacy(
            splats,
            64,
            64,
            16,
            &mut FrameArena::new(),
            &WorkerPool::serial(),
        );
        assert_eq!(keyed, legacy);
    }

    #[test]
    fn tile_range_clamps_to_grid() {
        let s = splat_at(63.0, 63.0, 10.0, 1.0);
        let (x0, y0, x1, y1) = tile_range(&s, 64, 64, 16).unwrap();
        assert!(x1 <= 3 && y1 <= 3);
        assert!(x0 <= x1 && y0 <= y1);
    }

    #[test]
    fn partial_edge_tile_binning() {
        // 20x20 image with 16px tiles: 2x2 grid with partial edges.
        let w = bin_splats(vec![splat_at(18.0, 18.0, 1.5, 1.0)], 20, 20, 16);
        assert_eq!(w.tile_list(1, 1), &[0]);
        assert_eq!(w.total_pairs(), 1);
    }

    #[test]
    fn boundary_exact_box_stays_out_of_next_tile() {
        // 3σ box [8-8, 8+8] = [0, 16]: ends exactly on the x=16 tile
        // boundary, so under the exclusive-max convention it must cover
        // only tile column 0 (the bug binned it into column 1 too).
        let (x0, y0, x1, y1) = tile_range(&splat_at(8.0, 8.0, 8.0, 1.0), 64, 64, 16).unwrap();
        assert_eq!((x0, y0, x1, y1), (0, 0, 0, 0));
        let w = bin_splats(vec![splat_at(8.0, 8.0, 8.0, 1.0)], 64, 64, 16);
        assert_eq!(w.total_pairs(), 1);
        assert!(w.tile_list(1, 0).is_empty());
        assert!(w.tile_list(0, 1).is_empty());
    }

    #[test]
    fn box_starting_on_boundary_skips_previous_tile() {
        // Box [16, 22] starts exactly on the boundary: tile column 1 only.
        let (x0, _, x1, _) = tile_range(&splat_at(19.0, 8.0, 3.0, 1.0), 64, 64, 16).unwrap();
        assert_eq!((x0, x1), (1, 1));
    }

    #[test]
    fn degenerate_box_touching_image_edge_is_not_binned() {
        // Box [-6, 0]: touches the image's left edge with an empty clipped
        // extent — the reference's empty rect [0, 0) — so no tile.
        assert!(tile_range(&splat_at(-3.0, 8.0, 3.0, 1.0), 64, 64, 16).is_none());
    }

    #[test]
    fn non_finite_splats_are_never_binned() {
        // A NaN mean used to saturate `floor() as u32` to 0 and silently
        // land the splat in tile (0, 0); now it is not binned at all.
        let mut nan_mean = splat_at(8.0, 8.0, 3.0, 1.0);
        nan_mean.mean = Vec2::new(f32::NAN, 8.0);
        assert!(tile_range(&nan_mean, 64, 64, 16).is_none());
        let mut inf_radius = splat_at(8.0, 8.0, 3.0, 1.0);
        inf_radius.radius = f32::INFINITY;
        assert!(tile_range(&inf_radius, 64, 64, 16).is_none());
        let mut nan_radius = splat_at(8.0, 8.0, 3.0, 1.0);
        nan_radius.radius = f32::NAN;
        assert!(tile_range(&nan_radius, 64, 64, 16).is_none());
    }

    #[test]
    fn recycled_arena_produces_identical_workloads() {
        let splats = vec![
            splat_at(8.0, 8.0, 3.0, 2.0),
            splat_at(40.0, 40.0, 5.0, 1.0),
            splat_at(16.0, 16.0, 4.0, 3.0),
        ];
        let fresh = bin_splats(splats.clone(), 64, 64, 16);
        // Recycle through a stale arena from a differently sized grid.
        let mut arena = FrameArena::new();
        let pool = WorkerPool::serial();
        let stale = bin_splats_pooled(splats.clone(), 128, 96, 16, &mut arena, &pool);
        stale.recycle_into(&mut arena);
        let reused = bin_splats_pooled(splats, 64, 64, 16, &mut arena, &pool);
        assert_eq!(fresh, reused);
    }
}
