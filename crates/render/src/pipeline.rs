//! End-to-end orchestration of the three-stage 3DGS pipeline.

use crate::framebuffer::Framebuffer;
use crate::ops::OpCounts;
use crate::preprocess::{preprocess, PreprocessOutput};
use crate::rasterize::{rasterize, rasterize_counts, RasterStats};
use crate::tile::bin_splats;
use crate::workload::RasterWorkload;
use crate::DEFAULT_TILE_SIZE;
use gaurast_scene::{Camera, GaussianScene};

/// Pipeline configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RenderConfig {
    /// Tile edge in pixels (16 in the reference and in GauRast).
    pub tile_size: u32,
}

impl Default for RenderConfig {
    fn default() -> Self {
        Self {
            tile_size: DEFAULT_TILE_SIZE,
        }
    }
}

/// Everything one frame produces: the image, the workload (with processed
/// counts filled in), and per-stage statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct RenderOutput {
    /// Rendered image.
    pub image: Framebuffer,
    /// The Stage-1/2 product consumed by the architecture models.
    pub workload: RasterWorkload,
    /// Stage-1 statistics (culling, FP ops).
    pub preprocess: PreprocessStats,
    /// Stage-3 statistics (pairs, blends, per-subtask ops).
    pub raster: RasterStats,
}

/// Stage-1 summary retained in [`RenderOutput`] (the splats themselves live
/// in the workload).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PreprocessStats {
    /// Gaussians surviving culling.
    pub visible: usize,
    /// Gaussians culled.
    pub culled: usize,
    /// FP operations spent in Stage 1.
    pub ops: OpCounts,
}

impl From<&PreprocessOutput> for PreprocessStats {
    fn from(p: &PreprocessOutput) -> Self {
        Self {
            visible: p.splats.len(),
            culled: p.culled,
            ops: p.ops,
        }
    }
}

/// Runs Stages 1–3 for one frame.
///
/// # Example
/// ```
/// use gaurast_render::pipeline::{render, RenderConfig};
/// use gaurast_scene::generator::SceneParams;
/// use gaurast_scene::Camera;
/// use gaurast_math::Vec3;
///
/// let scene = SceneParams::new(200).generate()?;
/// let cam = Camera::look_at(Vec3::new(0.0, 5.0, -25.0), Vec3::zero(),
///                           Vec3::new(0.0, 1.0, 0.0), 64, 64, 1.0)?;
/// let out = render(&scene, &cam, &RenderConfig::default());
/// assert!(out.workload.blend_work() > 0);
/// # Ok::<(), gaurast_scene::SceneError>(())
/// ```
pub fn render(scene: &GaussianScene, camera: &Camera, config: &RenderConfig) -> RenderOutput {
    // Stage 1: preprocessing.
    let pre = preprocess(scene, camera);
    let pre_stats = PreprocessStats::from(&pre);

    // Stage 2: sorting + tiling.
    let mut workload = bin_splats(
        pre.splats,
        camera.width(),
        camera.height(),
        config.tile_size,
    );

    // Stage 3: Gaussian rasterization (fills processed counts).
    let (image, raster) = rasterize(&mut workload);

    RenderOutput {
        image,
        workload,
        preprocess: pre_stats,
        raster,
    }
}

/// Everything one record-only frame produces: the workload with processed
/// counts filled in, plus per-stage statistics — [`RenderOutput`] minus the
/// image.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadOutput {
    /// The Stage-1/2 product consumed by the architecture models, with the
    /// reference pass's processed counts recorded.
    pub workload: RasterWorkload,
    /// Stage-1 statistics (culling, FP ops).
    pub preprocess: PreprocessStats,
    /// Stage-3 statistics (pairs, blends, per-subtask ops).
    pub raster: RasterStats,
}

/// Runs Stages 1–3 in record-only mode: the reference Stage-3 pass fills
/// the per-tile processed counts and statistics, but no framebuffer is
/// allocated or written. This is the entry point for workload construction
/// when the image would be discarded (the architecture-model path).
pub fn render_record_only(
    scene: &GaussianScene,
    camera: &Camera,
    config: &RenderConfig,
) -> WorkloadOutput {
    let pre = preprocess(scene, camera);
    let pre_stats = PreprocessStats::from(&pre);
    let mut workload = bin_splats(
        pre.splats,
        camera.width(),
        camera.height(),
        config.tile_size,
    );
    let raster = rasterize_counts(&mut workload);
    WorkloadOutput {
        workload,
        preprocess: pre_stats,
        raster,
    }
}

/// Builds only the workload (Stages 1–2 plus a record-only reference
/// Stage-3 pass for the processed counts) — the common entry point for the
/// architecture models. Unlike a full [`render`], no framebuffer is
/// allocated or filled.
pub fn build_workload(
    scene: &GaussianScene,
    camera: &Camera,
    config: &RenderConfig,
) -> RasterWorkload {
    render_record_only(scene, camera, config).workload
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaurast_math::Vec3;
    use gaurast_scene::generator::SceneParams;
    use gaurast_scene::nerf360::{Nerf360Scene, SceneScale};

    fn camera(w: u32, h: u32) -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 6.0, -28.0),
            Vec3::zero(),
            Vec3::new(0.0, 1.0, 0.0),
            w,
            h,
            1.05,
        )
        .unwrap()
    }

    #[test]
    fn full_frame_has_work_and_coverage() {
        let scene = SceneParams::new(3000).seed(11).generate().unwrap();
        let out = render(&scene, &camera(128, 96), &RenderConfig::default());
        assert!(out.preprocess.visible > 100);
        assert!(out.workload.blend_work() > 0);
        assert!(
            out.image.coverage() > 0.05,
            "coverage {}",
            out.image.coverage()
        );
        assert!(out.raster.blends_committed > 0);
    }

    #[test]
    fn nerf360_scene_renders() {
        let desc = Nerf360Scene::Bonsai.descriptor();
        let scene = desc.synthesize(SceneScale::UNIT_TEST);
        let cam = desc.camera(SceneScale::UNIT_TEST, 0.3).unwrap();
        let out = render(&scene, &cam, &RenderConfig::default());
        assert!(out.image.coverage() > 0.01);
        assert!(out.workload.total_pairs() > 0);
    }

    #[test]
    fn tile_size_changes_grid_not_image() {
        let scene = SceneParams::new(500).generate().unwrap();
        let cam = camera(64, 64);
        let a = render(&scene, &cam, &RenderConfig { tile_size: 16 });
        let b = render(&scene, &cam, &RenderConfig { tile_size: 8 });
        assert_eq!(a.workload.tile_count(), 16);
        assert_eq!(b.workload.tile_count(), 64);
        // Rendered images agree except for tile-level early-termination
        // differences, which only suppress invisible (saturated) tails.
        assert!(a.image.mean_abs_diff(&b.image) < 1e-3);
    }

    #[test]
    fn build_workload_matches_render() {
        let scene = SceneParams::new(400).generate().unwrap();
        let cam = camera(64, 64);
        let cfg = RenderConfig::default();
        let w = build_workload(&scene, &cam, &cfg);
        let out = render(&scene, &cam, &cfg);
        assert_eq!(w.blend_work(), out.workload.blend_work());
    }

    #[test]
    fn mini_splatting_reduces_blend_work() {
        let scene = SceneParams::new(4000).seed(3).generate().unwrap();
        let simplified = gaurast_scene::mini_splatting::simplify(
            &scene,
            gaurast_scene::mini_splatting::MiniSplatConfig::PAPER,
        )
        .unwrap();
        let cam = camera(128, 128);
        let cfg = RenderConfig::default();
        let full = build_workload(&scene, &cam, &cfg);
        let mini = build_workload(&simplified, &cam, &cfg);
        let ratio = mini.blend_work() as f64 / full.blend_work() as f64;
        assert!(ratio < 0.7, "mini-splatting work ratio {ratio}");
        assert!(ratio > 0.02);
    }
}
