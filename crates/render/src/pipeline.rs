//! End-to-end orchestration of the three-stage 3DGS pipeline.

use crate::framebuffer::Framebuffer;
use crate::graph::{self, frame, GraphMode, GraphRunner, NodeId};
use crate::ops::OpCounts;
use crate::pool::WorkerPool;
use crate::preprocess::{
    preprocess_pooled_level, preprocess_range_level, PreprocessOutput, Splat2D, PREPROCESS_CHUNK,
};
use crate::rasterize::{rasterize_with_level, RasterStats};
use crate::simd::{SimdLevel, VectorMode};
use crate::sort::{key_tile, pack_key};
use crate::tile::{bin_splats_legacy, bin_splats_pooled, tile_range};
use crate::workload::{FrameArena, RasterWorkload};
use crate::DEFAULT_TILE_SIZE;
use gaurast_scene::{Camera, GaussianScene};
use std::cell::UnsafeCell;

/// Which Stage-2 implementation a pipeline runs.
///
/// Both modes produce **bit-identical** workloads (proven by proptest in
/// `tests/keysort.rs`): the stable radix order on packed keys equals the
/// stable per-tile comparison order. The legacy mode exists for one
/// release as an escape hatch and A/B baseline, then goes away.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Stage2Mode {
    /// Packed `(tile, depth)` keys + one parallel LSD radix sort into a
    /// flat CSR workload ([`crate::tile::bin_splats_pooled`]) — the
    /// default and the architecture the hw/gscore models simulate.
    #[default]
    KeySorted,
    /// The historical per-tile `Vec` lists with a comparison sort per tile
    /// ([`crate::tile::bin_splats_legacy`]).
    LegacyPerTile,
}

impl Stage2Mode {
    /// Runs this mode's Stage 2 out of `arena` — the one dispatch point
    /// shared by the pipeline, the engine's reference pass, and the
    /// benchmark harness.
    pub fn bin(
        self,
        splats: Vec<crate::Splat2D>,
        width: u32,
        height: u32,
        tile_size: u32,
        arena: &mut FrameArena,
        pool: &WorkerPool,
    ) -> RasterWorkload {
        match self {
            Stage2Mode::KeySorted => {
                bin_splats_pooled(splats, width, height, tile_size, arena, pool)
            }
            Stage2Mode::LegacyPerTile => {
                bin_splats_legacy(splats, width, height, tile_size, arena, pool)
            }
        }
    }
}

/// Pipeline configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RenderConfig {
    /// Tile edge in pixels (16 in the reference and in GauRast).
    pub tile_size: u32,
    /// Intra-frame worker threads: Stage 1 runs in Gaussian chunks,
    /// Stage 2's radix sort in key chunks, and Stage 3 as per-tile jobs
    /// over a pool this wide. `0` (the default) resolves to the
    /// `GAURAST_WORKERS` environment variable or the machine's available
    /// parallelism ([`crate::pool::resolve_workers`]); `1` is exactly the
    /// historical serial path. Output is bit-identical for every value.
    pub workers: usize,
    /// Stage-2 implementation (key-sorted radix/CSR by default).
    pub stage2: Stage2Mode,
    /// Frame-graph scheduling mode ([`GraphMode::Overlapped`] by default;
    /// [`GraphMode::Sequential`] is the strict one-barrier-per-stage A/B
    /// reference). Both modes are bit-identical; ignored by the legacy
    /// Stage-2 path, which predates the graph.
    pub graph: GraphMode,
    /// Vector data path for the Stage-1/Stage-3 hot loops
    /// ([`VectorMode::Auto`] by default — widest supported SIMD level,
    /// scalar where unsupported). Resolved once per frame; every mode is
    /// bit-identical (see [`crate::simd`]), overridable process-wide via
    /// the [`crate::simd::VECTOR_ENV`] environment variable.
    pub vector_mode: VectorMode,
}

impl Default for RenderConfig {
    fn default() -> Self {
        Self {
            tile_size: DEFAULT_TILE_SIZE,
            workers: 0,
            stage2: Stage2Mode::default(),
            graph: GraphMode::default(),
            vector_mode: VectorMode::default(),
        }
    }
}

impl RenderConfig {
    /// The worker pool this configuration selects (see
    /// [`RenderConfig::workers`]).
    pub fn worker_pool(&self) -> WorkerPool {
        WorkerPool::new(self.workers)
    }

    /// A configuration identical to this one but with an explicit worker
    /// count.
    pub fn with_workers(self, workers: usize) -> Self {
        Self { workers, ..self }
    }

    /// A configuration identical to this one but with an explicit Stage-2
    /// mode.
    pub fn with_stage2(self, stage2: Stage2Mode) -> Self {
        Self { stage2, ..self }
    }

    /// A configuration identical to this one but with an explicit
    /// frame-graph mode.
    pub fn with_graph(self, graph: GraphMode) -> Self {
        Self { graph, ..self }
    }

    /// A configuration identical to this one but with an explicit vector
    /// mode.
    pub fn with_vector_mode(self, vector_mode: VectorMode) -> Self {
        Self {
            vector_mode,
            ..self
        }
    }
}

/// Everything one frame produces: the image, the workload (with processed
/// counts filled in), and per-stage statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct RenderOutput {
    /// Rendered image.
    pub image: Framebuffer,
    /// The Stage-1/2 product consumed by the architecture models.
    pub workload: RasterWorkload,
    /// Stage-1 statistics (culling, FP ops).
    pub preprocess: PreprocessStats,
    /// Stage-3 statistics (pairs, blends, per-subtask ops).
    pub raster: RasterStats,
}

/// Stage-1 summary retained in [`RenderOutput`] (the splats themselves live
/// in the workload).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PreprocessStats {
    /// Gaussians surviving culling.
    pub visible: usize,
    /// Gaussians culled.
    pub culled: usize,
    /// Of `culled`, Gaussians dropped for a non-finite projection
    /// (overflowed covariance) — see
    /// [`PreprocessOutput::culled_non_finite`].
    pub non_finite: usize,
    /// FP operations spent in Stage 1.
    pub ops: OpCounts,
}

impl From<&PreprocessOutput> for PreprocessStats {
    fn from(p: &PreprocessOutput) -> Self {
        Self {
            visible: p.splats.len(),
            culled: p.culled,
            non_finite: p.culled_non_finite,
            ops: p.ops,
        }
    }
}

/// Runs Stages 1–3 for one frame.
///
/// # Example
/// ```
/// use gaurast_render::pipeline::{render, RenderConfig};
/// use gaurast_scene::generator::SceneParams;
/// use gaurast_scene::Camera;
/// use gaurast_math::Vec3;
///
/// let scene = SceneParams::new(200).generate()?;
/// let cam = Camera::look_at(Vec3::new(0.0, 5.0, -25.0), Vec3::zero(),
///                           Vec3::new(0.0, 1.0, 0.0), 64, 64, 1.0)?;
/// let out = render(&scene, &cam, &RenderConfig::default());
/// assert!(out.workload.blend_work() > 0);
/// # Ok::<(), gaurast_scene::SceneError>(())
/// ```
pub fn render(scene: &GaussianScene, camera: &Camera, config: &RenderConfig) -> RenderOutput {
    render_with_arena(scene, camera, config, &mut FrameArena::new())
}

/// [`render`] with a caller-held [`FrameArena`] and a pool built from the
/// config — a convenience over [`render_with_pool`] for callers without a
/// long-lived pool. Recycle the workload back into the arena after the
/// frame ([`RasterWorkload::recycle_into`]) and steady-state Stage 2 —
/// key emission, radix sort, CSR assembly, processed counts — makes no
/// data-path allocations. Sessions should hold a persistent pool and call
/// [`render_with_pool`] instead, which is also spawn-free per frame.
pub fn render_with_arena(
    scene: &GaussianScene,
    camera: &Camera,
    config: &RenderConfig,
    arena: &mut FrameArena,
) -> RenderOutput {
    let pool = config.worker_pool();
    render_with_pool(scene, camera, config, arena, &pool)
}

/// [`render`] with a caller-held [`FrameArena`] **and** a caller-held
/// persistent [`WorkerPool`] — the session hot path the engine uses.
/// Steady-state frames neither spawn threads (the pool's workers are
/// parked between dispatches) nor allocate in the Stage-2 data path (the
/// arena recycles every buffer, including the cached frame-graph plan).
///
/// Stages are scheduled by the static frame graph
/// ([`graph::FrameGraph::standard`]) under [`RenderConfig::graph`]: the
/// overlapped mode fuses Stage-1 chunk preprocessing with Stage-2 key
/// histogramming in one dispatch, the sequential mode runs every node as
/// its own barrier. Output is **bit-identical** across modes, worker
/// counts, and against the historical staged path.
pub fn render_with_pool(
    scene: &GaussianScene,
    camera: &Camera,
    config: &RenderConfig,
    arena: &mut FrameArena,
    pool: &WorkerPool,
) -> RenderOutput {
    let mut image = Framebuffer::new(camera.width(), camera.height());
    let (workload, preprocess, raster) =
        run_frame(scene, camera, config, arena, pool, Some(&mut image));
    RenderOutput {
        image,
        workload,
        preprocess,
        raster,
    }
}

/// Everything one record-only frame produces: the workload with processed
/// counts filled in, plus per-stage statistics — [`RenderOutput`] minus the
/// image.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadOutput {
    /// The Stage-1/2 product consumed by the architecture models, with the
    /// reference pass's processed counts recorded.
    pub workload: RasterWorkload,
    /// Stage-1 statistics (culling, FP ops).
    pub preprocess: PreprocessStats,
    /// Stage-3 statistics (pairs, blends, per-subtask ops).
    pub raster: RasterStats,
}

/// Runs Stages 1–3 in record-only mode: the reference Stage-3 pass fills
/// the per-tile processed counts and statistics, but no framebuffer is
/// allocated or written. This is the entry point for workload construction
/// when the image would be discarded (the architecture-model path).
///
/// Record-only frames run the *same* chunked-preprocess and tile-job
/// decomposition as [`render`] — the only difference is that the tile
/// jobs get no framebuffer views — so all counts stay bit-identical with
/// the imaging path at every worker count.
pub fn render_record_only(
    scene: &GaussianScene,
    camera: &Camera,
    config: &RenderConfig,
) -> WorkloadOutput {
    let pool = config.worker_pool();
    render_record_only_with_pool(scene, camera, config, &mut FrameArena::new(), &pool)
}

/// [`render_record_only`] with a caller-held [`FrameArena`] and persistent
/// [`WorkerPool`] — the record-only analogue of [`render_with_pool`], with
/// the same spawn-free, steady-state-allocation-free contract.
pub fn render_record_only_with_pool(
    scene: &GaussianScene,
    camera: &Camera,
    config: &RenderConfig,
    arena: &mut FrameArena,
    pool: &WorkerPool,
) -> WorkloadOutput {
    let (workload, preprocess, raster) = run_frame(scene, camera, config, arena, pool, None);
    WorkloadOutput {
        workload,
        preprocess,
        raster,
    }
}

/// Runs one frame — Stage 1 through the reference Stage-3 pass — over the
/// frame graph (or the staged legacy-Stage-2 path), writing pixels only
/// when `image` is provided.
fn run_frame(
    scene: &GaussianScene,
    camera: &Camera,
    config: &RenderConfig,
    arena: &mut FrameArena,
    pool: &WorkerPool,
    image: Option<&mut Framebuffer>,
) -> (RasterWorkload, PreprocessStats, RasterStats) {
    // One resolution per frame: CPUID probe and env override are cached
    // process-wide, so this is a pair of cheap enum reads.
    let level = config.vector_mode.resolve();
    if config.stage2 == Stage2Mode::LegacyPerTile {
        // The escape-hatch path predates the frame graph: classic staged
        // execution, one barrier per stage.
        let pre = preprocess_pooled_level(scene, camera, pool, level);
        let pre_stats = PreprocessStats::from(&pre);
        let mut workload = config.stage2.bin(
            pre.splats,
            camera.width(),
            camera.height(),
            config.tile_size,
            arena,
            pool,
        );
        let raster = rasterize_with_level(&mut workload, image, pool, level);
        return (workload, pre_stats, raster);
    }

    // A serial pool gets a single chunk: the graph collapses to exactly
    // the historical in-thread pass (chunking only exists to feed the
    // pool, and stitching in index order makes the output independent of
    // the chunk count anyway).
    let n_chunks = if pool.is_serial() {
        1
    } else {
        scene.len().div_ceil(PREPROCESS_CHUNK).max(1)
    };
    let plan = arena.plan.take(n_chunks, config.graph);
    let mut runner = FrameRunner::new(
        scene,
        camera,
        config.tile_size,
        pool,
        arena,
        image,
        n_chunks,
        level,
    );
    graph::execute(&plan, pool, &mut runner);
    let out = runner.finish();
    arena.plan.restore(n_chunks, config.graph, plan);
    out
}

/// Fixed-size per-chunk output slots shared with pool workers.
///
/// Each pooled graph job `c` owns slot `c` exclusively (jobs are claimed
/// exactly once by the pool's cursor protocol), so handing out `&mut`
/// access through `&self` is race-free by construction — the same
/// disjointness argument as the sorter's scatter ranges.
struct ChunkSlots<T> {
    slots: Vec<UnsafeCell<T>>,
}

// SAFETY: slots are only accessed per-index with exclusive job ownership
// (see `ChunkSlots::slot`); `T: Send` moves values across the worker
// threads that fill them.
unsafe impl<T: Send> Sync for ChunkSlots<T> {}

impl<T: Default> ChunkSlots<T> {
    fn new(n: usize) -> Self {
        let mut slots = Vec::new();
        slots.resize_with(n, || UnsafeCell::new(T::default()));
        Self { slots }
    }
}

impl<T> ChunkSlots<T> {
    /// Exclusive access to slot `i` from a pooled job.
    ///
    /// # Safety
    /// The caller must be the sole accessor of slot `i` for the duration
    /// of the borrow (the frame graph guarantees this: each pooled job
    /// index is claimed exactly once per dispatch, and the runner only
    /// touches slot `i` from job `i`).
    #[allow(clippy::mut_from_ref)]
    // SAFETY: the caller is slot `i`'s sole accessor (contract above).
    unsafe fn slot(&self, i: usize) -> &mut T {
        // SAFETY: exclusivity is the caller's contract, stated above.
        // gaurast-check: allow(race): every call site sits in a
        // race_region! that registers this slot's range first
        unsafe { &mut *self.slots[i].get() }
    }

    /// Exclusive access through an exclusive borrow (inline nodes).
    fn get_mut(&mut self, i: usize) -> &mut T {
        self.slots[i].get_mut()
    }
}

/// The [`GraphRunner`] for the standard frame graph: all per-frame state
/// of one render, with each pooled node confined to per-job disjoint
/// slices of it.
struct FrameRunner<'a> {
    scene: &'a GaussianScene,
    camera: &'a Camera,
    tile_size: u32,
    pool: &'a WorkerPool,
    arena: &'a mut FrameArena,
    image: Option<&'a mut Framebuffer>,
    n_chunks: usize,
    /// Resolved SIMD level for this frame's Stage-1/Stage-3 kernels.
    level: SimdLevel,
    /// Per-chunk Stage-1 outputs (S1 job `c` writes slot `c`).
    chunks: ChunkSlots<PreprocessOutput>,
    /// Per-chunk key counts (COUNT job `c` writes slot `c`).
    counts: ChunkSlots<usize>,
    /// Stitched-splat index of each chunk's first splat (`n_chunks + 1`
    /// entries, filled by STITCH).
    splat_base: Vec<usize>,
    /// Key-buffer start of each chunk's emission range (`n_chunks + 1`
    /// entries, filled by PREFIX).
    key_base: Vec<usize>,
    /// The stitched splats, in serial-pass order.
    splats: Vec<Splat2D>,
    pre_stats: PreprocessStats,
    /// Raw bases of the arena's key/value buffers, set by PREFIX after
    /// sizing; EMIT job `c` writes only `key_base[c]..key_base[c + 1]`.
    keys_ptr: *mut u64,
    values_ptr: *mut u32,
    workload: Option<RasterWorkload>,
    raster: RasterStats,
}

// SAFETY: pooled jobs (`pooled_job`, taking `&self`) only touch per-job
// disjoint state — `chunks`/`counts` slot `c` and the half-open key range
// `key_base[c]..key_base[c + 1]` behind `keys_ptr`/`values_ptr` — while
// every `&mut`-reachable field (`arena`, `image`, the stat fields) is
// used exclusively by inline nodes on the calling thread, separated from
// dispatches by the pool's full barriers.
unsafe impl Sync for FrameRunner<'_> {}

impl<'a> FrameRunner<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        scene: &'a GaussianScene,
        camera: &'a Camera,
        tile_size: u32,
        pool: &'a WorkerPool,
        arena: &'a mut FrameArena,
        image: Option<&'a mut Framebuffer>,
        n_chunks: usize,
        level: SimdLevel,
    ) -> Self {
        assert!(tile_size > 0, "tile size must be positive");
        Self {
            scene,
            camera,
            tile_size,
            pool,
            arena,
            image,
            n_chunks,
            level,
            chunks: ChunkSlots::new(n_chunks),
            counts: ChunkSlots::new(n_chunks),
            splat_base: Vec::with_capacity(n_chunks + 1),
            key_base: Vec::with_capacity(n_chunks + 1),
            splats: Vec::new(),
            pre_stats: PreprocessStats::default(),
            keys_ptr: std::ptr::null_mut(),
            values_ptr: std::ptr::null_mut(),
            workload: None,
            raster: RasterStats::default(),
        }
    }

    /// The chunk's Gaussian index range (the fixed [`PREPROCESS_CHUNK`]
    /// decomposition; a single-chunk frame covers the whole scene).
    fn chunk_range(&self, c: usize) -> std::ops::Range<usize> {
        if self.n_chunks == 1 {
            return 0..self.scene.len();
        }
        let start = c * PREPROCESS_CHUNK;
        start..(start + PREPROCESS_CHUNK).min(self.scene.len())
    }

    /// S1 job `c`: preprocess the chunk's Gaussians into slot `c`.
    fn stage1(&self, c: usize) {
        let slot = crate::race_region!("per-chunk S1 slot", {
            crate::race_write!(self.chunks.slots[c].get(), 1);
            // SAFETY: job `c` is this slot's sole accessor (pool jobs are
            // claimed exactly once; only `stage1(c)` touches `chunks[c]`
            // during the dispatch).
            unsafe { self.chunks.slot(c) }
        });
        *slot = preprocess_range_level(
            self.scene,
            self.camera,
            &|_, g| g.covariance(),
            self.chunk_range(c),
            self.level,
        );
    }

    /// COUNT job `c`: count the packed keys chunk `c`'s splats will emit
    /// (its covered-tile total). Element-wise on S1: reads only slot `c`.
    fn count(&self, c: usize) {
        let (w, h, ts) = (self.camera.width(), self.camera.height(), self.tile_size);
        let chunk = crate::race_region!("per-chunk S1 slot readback", {
            crate::race_read!(self.chunks.slots[c].get(), 1);
            // SAFETY: job `c` is the sole accessor of both slots during
            // this dispatch; in the fused dispatch S1's write of
            // `chunks[c]` happens earlier on this same thread.
            unsafe { self.chunks.slot(c) }
        });
        let mut n = 0usize;
        for s in &chunk.splats {
            if let Some((x0, y0, x1, y1)) = tile_range(s, w, h, ts) {
                n += (x1 - x0 + 1) as usize * (y1 - y0 + 1) as usize;
            }
        }
        crate::race_region!("per-chunk COUNT slot", {
            crate::race_write!(self.counts.slots[c].get(), 1);
            // SAFETY: as above — only `count(c)` writes `counts[c]`.
            *unsafe { self.counts.slot(c) } = n;
        });
    }

    /// STITCH: concatenate chunk splats in index order (bit-identical to
    /// the serial pass) and accumulate the Stage-1 statistics.
    fn stitch(&mut self) {
        let mut total = 0;
        for c in 0..self.n_chunks {
            total += self.chunks.get_mut(c).splats.len();
        }
        self.splats.clear();
        self.splats.reserve(total);
        self.splat_base.clear();
        self.splat_base.push(0);
        let mut culled = 0;
        let mut non_finite = 0;
        let mut ops = OpCounts::default();
        for c in 0..self.n_chunks {
            let chunk = self.chunks.get_mut(c);
            self.splats.append(&mut chunk.splats);
            self.splat_base.push(self.splats.len());
            culled += chunk.culled;
            non_finite += chunk.culled_non_finite;
            ops += chunk.ops;
        }
        self.pre_stats = PreprocessStats {
            visible: self.splats.len(),
            culled,
            non_finite,
            ops,
        };
    }

    /// PREFIX: prefix-sum the per-chunk key counts into emission ranges
    /// and size the arena's key/value buffers.
    fn prefix(&mut self) {
        self.key_base.clear();
        self.key_base.push(0);
        let mut total = 0;
        for c in 0..self.n_chunks {
            total += *self.counts.get_mut(c);
            self.key_base.push(total);
        }
        let FrameArena { keys, values, .. } = &mut *self.arena;
        keys.clear();
        keys.resize(total, 0);
        values.clear();
        values.resize(total, 0);
        self.keys_ptr = keys.as_mut_ptr();
        self.values_ptr = values.as_mut_ptr();
    }

    /// EMIT job `c`: write chunk `c`'s packed `(tile, depth)` keys and
    /// stitched-splat values into its disjoint buffer range, in the same
    /// splat-major order the serial emission produces — concatenated over
    /// chunks, the buffers equal the serial pass byte for byte.
    fn emit(&self, c: usize) {
        let (w, h, ts) = (self.camera.width(), self.camera.height(), self.tile_size);
        let tiles_x = w.div_ceil(ts);
        let mut pos = self.key_base[c];
        let chunk_len = self.key_base[c + 1] - pos;
        crate::race_write!(self.keys_ptr.wrapping_add(pos), chunk_len);
        crate::race_write!(self.values_ptr.wrapping_add(pos), chunk_len);
        for gi in self.splat_base[c]..self.splat_base[c + 1] {
            let s = &self.splats[gi];
            if let Some((x0, y0, x1, y1)) = tile_range(s, w, h, ts) {
                for ty in y0..=y1 {
                    for tx in x0..=x1 {
                        debug_assert!(pos < self.key_base[c + 1]);
                        crate::race_region!("per-chunk EMIT range", {
                            // SAFETY: COUNT sized this chunk's range with
                            // the identical `tile_range` traversal, so
                            // `pos < key_base[c + 1] <= buffer len`, and
                            // the per-chunk ranges are disjoint — no other
                            // job writes these elements.
                            unsafe {
                                *self.keys_ptr.add(pos) = pack_key(ty * tiles_x + tx, s.depth);
                                *self.values_ptr.add(pos) = gi as u32;
                            }
                        });
                        pos += 1;
                    }
                }
            }
        }
        debug_assert_eq!(
            pos,
            self.key_base[c + 1],
            "COUNT/EMIT disagree on chunk {c}"
        );
    }

    /// SORT: the stable parallel LSD radix sort over the emitted pairs.
    fn sort(&mut self) {
        let FrameArena {
            keys,
            values,
            sorter,
            ..
        } = &mut *self.arena;
        sorter.sort_pairs(keys, values, self.pool);
    }

    /// CSR: per-tile offsets from the sorted keys, then assemble the
    /// workload (the arena keeps the key buffer; values/offsets move into
    /// the workload exactly as in the staged path).
    fn csr(&mut self) {
        let (w, h, ts) = (self.camera.width(), self.camera.height(), self.tile_size);
        let tile_count = (w.div_ceil(ts) * h.div_ceil(ts)) as usize;
        let FrameArena {
            keys,
            values,
            offsets,
            processed,
            soa,
            ..
        } = &mut *self.arena;
        offsets.clear();
        offsets.resize(tile_count + 1, 0);
        for &k in keys.iter() {
            offsets[key_tile(k) as usize + 1] += 1;
        }
        for i in 0..tile_count {
            offsets[i + 1] += offsets[i];
        }
        self.keys_ptr = std::ptr::null_mut();
        self.values_ptr = std::ptr::null_mut();
        self.workload = Some(RasterWorkload::from_csr(
            w,
            h,
            ts,
            std::mem::take(&mut self.splats),
            std::mem::take(values),
            std::mem::take(offsets),
            std::mem::take(processed),
            std::mem::take(soa),
        ));
    }

    /// RASTER: the reference Stage-3 pass over the CSR workload
    /// (per-tile pool jobs; writes pixels only when an image is held).
    fn raster(&mut self) {
        if let Some(workload) = self.workload.as_mut() {
            self.raster =
                rasterize_with_level(workload, self.image.as_deref_mut(), self.pool, self.level);
        }
    }

    /// Extracts the frame products after the plan ran.
    fn finish(self) -> (RasterWorkload, PreprocessStats, RasterStats) {
        let workload = self
            .workload
            .expect("frame graph must run the CSR node before finish");
        (workload, self.pre_stats, self.raster)
    }
}

impl GraphRunner for FrameRunner<'_> {
    fn pooled_job(&self, node: NodeId, job: usize) {
        match node {
            frame::S1 => self.stage1(job),
            frame::COUNT => self.count(job),
            frame::EMIT => self.emit(job),
            _ => debug_assert!(false, "node {node} is not pooled"),
        }
    }

    fn inline_node(&mut self, node: NodeId) {
        match node {
            frame::STITCH => self.stitch(),
            frame::PREFIX => self.prefix(),
            frame::SORT => self.sort(),
            frame::CSR => self.csr(),
            frame::RASTER => self.raster(),
            _ => debug_assert!(false, "node {node} is not inline"),
        }
    }
}

/// Builds only the workload (Stages 1–2 plus a record-only reference
/// Stage-3 pass for the processed counts) — the common entry point for the
/// architecture models. Unlike a full [`render`], no framebuffer is
/// allocated or filled.
pub fn build_workload(
    scene: &GaussianScene,
    camera: &Camera,
    config: &RenderConfig,
) -> RasterWorkload {
    render_record_only(scene, camera, config).workload
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaurast_math::Vec3;
    use gaurast_scene::generator::SceneParams;
    use gaurast_scene::nerf360::{Nerf360Scene, SceneScale};

    fn camera(w: u32, h: u32) -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 6.0, -28.0),
            Vec3::zero(),
            Vec3::new(0.0, 1.0, 0.0),
            w,
            h,
            1.05,
        )
        .unwrap()
    }

    #[test]
    fn full_frame_has_work_and_coverage() {
        let scene = SceneParams::new(3000).seed(11).generate().unwrap();
        let out = render(&scene, &camera(128, 96), &RenderConfig::default());
        assert!(out.preprocess.visible > 100);
        assert!(out.workload.blend_work() > 0);
        assert!(
            out.image.coverage() > 0.05,
            "coverage {}",
            out.image.coverage()
        );
        assert!(out.raster.blends_committed > 0);
    }

    #[test]
    fn nerf360_scene_renders() {
        let desc = Nerf360Scene::Bonsai.descriptor();
        let scene = desc.synthesize(SceneScale::UNIT_TEST);
        let cam = desc.camera(SceneScale::UNIT_TEST, 0.3).unwrap();
        let out = render(&scene, &cam, &RenderConfig::default());
        assert!(out.image.coverage() > 0.01);
        assert!(out.workload.total_pairs() > 0);
    }

    #[test]
    fn tile_size_changes_grid_not_image() {
        let scene = SceneParams::new(500).generate().unwrap();
        let cam = camera(64, 64);
        let a = render(
            &scene,
            &cam,
            &RenderConfig {
                tile_size: 16,
                ..RenderConfig::default()
            },
        );
        let b = render(
            &scene,
            &cam,
            &RenderConfig {
                tile_size: 8,
                ..RenderConfig::default()
            },
        );
        assert_eq!(a.workload.tile_count(), 16);
        assert_eq!(b.workload.tile_count(), 64);
        // Rendered images agree except for tile-level early-termination
        // differences, which only suppress invisible (saturated) tails.
        assert!(a.image.mean_abs_diff(&b.image) < 1e-3);
    }

    #[test]
    fn build_workload_matches_render() {
        let scene = SceneParams::new(400).generate().unwrap();
        let cam = camera(64, 64);
        let cfg = RenderConfig::default();
        let w = build_workload(&scene, &cam, &cfg);
        let out = render(&scene, &cam, &cfg);
        assert_eq!(w.blend_work(), out.workload.blend_work());
    }

    #[test]
    fn mini_splatting_reduces_blend_work() {
        let scene = SceneParams::new(4000).seed(3).generate().unwrap();
        let simplified = gaurast_scene::mini_splatting::simplify(
            &scene,
            gaurast_scene::mini_splatting::MiniSplatConfig::PAPER,
        )
        .unwrap();
        let cam = camera(128, 128);
        let cfg = RenderConfig::default();
        let full = build_workload(&scene, &cam, &cfg);
        let mini = build_workload(&simplified, &cam, &cfg);
        let ratio = mini.blend_work() as f64 / full.blend_work() as f64;
        assert!(ratio < 0.7, "mini-splatting work ratio {ratio}");
        assert!(ratio > 0.02);
    }
}
