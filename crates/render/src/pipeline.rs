//! End-to-end orchestration of the three-stage 3DGS pipeline.

use crate::framebuffer::Framebuffer;
use crate::ops::OpCounts;
use crate::pool::WorkerPool;
use crate::preprocess::{preprocess_pooled, PreprocessOutput};
use crate::rasterize::{rasterize_with, RasterStats};
use crate::tile::{bin_splats_legacy, bin_splats_pooled};
use crate::workload::{FrameArena, RasterWorkload};
use crate::DEFAULT_TILE_SIZE;
use gaurast_scene::{Camera, GaussianScene};

/// Which Stage-2 implementation a pipeline runs.
///
/// Both modes produce **bit-identical** workloads (proven by proptest in
/// `tests/keysort.rs`): the stable radix order on packed keys equals the
/// stable per-tile comparison order. The legacy mode exists for one
/// release as an escape hatch and A/B baseline, then goes away.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Stage2Mode {
    /// Packed `(tile, depth)` keys + one parallel LSD radix sort into a
    /// flat CSR workload ([`crate::tile::bin_splats_pooled`]) — the
    /// default and the architecture the hw/gscore models simulate.
    #[default]
    KeySorted,
    /// The historical per-tile `Vec` lists with a comparison sort per tile
    /// ([`crate::tile::bin_splats_legacy`]).
    LegacyPerTile,
}

impl Stage2Mode {
    /// Runs this mode's Stage 2 out of `arena` — the one dispatch point
    /// shared by the pipeline, the engine's reference pass, and the
    /// benchmark harness.
    pub fn bin(
        self,
        splats: Vec<crate::Splat2D>,
        width: u32,
        height: u32,
        tile_size: u32,
        arena: &mut FrameArena,
        pool: &WorkerPool,
    ) -> RasterWorkload {
        match self {
            Stage2Mode::KeySorted => {
                bin_splats_pooled(splats, width, height, tile_size, arena, pool)
            }
            Stage2Mode::LegacyPerTile => {
                bin_splats_legacy(splats, width, height, tile_size, arena, pool)
            }
        }
    }
}

/// Pipeline configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RenderConfig {
    /// Tile edge in pixels (16 in the reference and in GauRast).
    pub tile_size: u32,
    /// Intra-frame worker threads: Stage 1 runs in Gaussian chunks,
    /// Stage 2's radix sort in key chunks, and Stage 3 as per-tile jobs
    /// over a pool this wide. `0` (the default) resolves to the
    /// `GAURAST_WORKERS` environment variable or the machine's available
    /// parallelism ([`crate::pool::resolve_workers`]); `1` is exactly the
    /// historical serial path. Output is bit-identical for every value.
    pub workers: usize,
    /// Stage-2 implementation (key-sorted radix/CSR by default).
    pub stage2: Stage2Mode,
}

impl Default for RenderConfig {
    fn default() -> Self {
        Self {
            tile_size: DEFAULT_TILE_SIZE,
            workers: 0,
            stage2: Stage2Mode::default(),
        }
    }
}

impl RenderConfig {
    /// The worker pool this configuration selects (see
    /// [`RenderConfig::workers`]).
    pub fn worker_pool(&self) -> WorkerPool {
        WorkerPool::new(self.workers)
    }

    /// A configuration identical to this one but with an explicit worker
    /// count.
    pub fn with_workers(self, workers: usize) -> Self {
        Self { workers, ..self }
    }

    /// A configuration identical to this one but with an explicit Stage-2
    /// mode.
    pub fn with_stage2(self, stage2: Stage2Mode) -> Self {
        Self { stage2, ..self }
    }
}

/// Everything one frame produces: the image, the workload (with processed
/// counts filled in), and per-stage statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct RenderOutput {
    /// Rendered image.
    pub image: Framebuffer,
    /// The Stage-1/2 product consumed by the architecture models.
    pub workload: RasterWorkload,
    /// Stage-1 statistics (culling, FP ops).
    pub preprocess: PreprocessStats,
    /// Stage-3 statistics (pairs, blends, per-subtask ops).
    pub raster: RasterStats,
}

/// Stage-1 summary retained in [`RenderOutput`] (the splats themselves live
/// in the workload).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PreprocessStats {
    /// Gaussians surviving culling.
    pub visible: usize,
    /// Gaussians culled.
    pub culled: usize,
    /// Of `culled`, Gaussians dropped for a non-finite projection
    /// (overflowed covariance) — see
    /// [`PreprocessOutput::culled_non_finite`].
    pub non_finite: usize,
    /// FP operations spent in Stage 1.
    pub ops: OpCounts,
}

impl From<&PreprocessOutput> for PreprocessStats {
    fn from(p: &PreprocessOutput) -> Self {
        Self {
            visible: p.splats.len(),
            culled: p.culled,
            non_finite: p.culled_non_finite,
            ops: p.ops,
        }
    }
}

/// Runs Stages 1–3 for one frame.
///
/// # Example
/// ```
/// use gaurast_render::pipeline::{render, RenderConfig};
/// use gaurast_scene::generator::SceneParams;
/// use gaurast_scene::Camera;
/// use gaurast_math::Vec3;
///
/// let scene = SceneParams::new(200).generate()?;
/// let cam = Camera::look_at(Vec3::new(0.0, 5.0, -25.0), Vec3::zero(),
///                           Vec3::new(0.0, 1.0, 0.0), 64, 64, 1.0)?;
/// let out = render(&scene, &cam, &RenderConfig::default());
/// assert!(out.workload.blend_work() > 0);
/// # Ok::<(), gaurast_scene::SceneError>(())
/// ```
pub fn render(scene: &GaussianScene, camera: &Camera, config: &RenderConfig) -> RenderOutput {
    render_with_arena(scene, camera, config, &mut FrameArena::new())
}

/// [`render`] with a caller-held [`FrameArena`]: recycle the workload back
/// into the arena after the frame
/// ([`RasterWorkload::recycle_into`]) and steady-state Stage 2 —
/// key emission, radix sort, CSR assembly, processed counts — makes no
/// data-path allocations (a multi-worker pool still pays its scoped
/// thread spawns). This is the session hot path the engine uses.
pub fn render_with_arena(
    scene: &GaussianScene,
    camera: &Camera,
    config: &RenderConfig,
    arena: &mut FrameArena,
) -> RenderOutput {
    let pool = config.worker_pool();

    // Stage 1: preprocessing, in parallel Gaussian chunks.
    let pre = preprocess_pooled(scene, camera, &pool);
    let pre_stats = PreprocessStats::from(&pre);

    // Stage 2: packed-key radix sort into the flat CSR workload (or the
    // legacy per-tile path behind the escape hatch).
    let mut workload = config.stage2.bin(
        pre.splats,
        camera.width(),
        camera.height(),
        config.tile_size,
        arena,
        &pool,
    );

    // Stage 3: Gaussian rasterization over the sorted CSR ranges as
    // independent tile jobs (fills processed counts).
    let mut image = Framebuffer::new(camera.width(), camera.height());
    let raster = rasterize_with(&mut workload, Some(&mut image), &pool);

    RenderOutput {
        image,
        workload,
        preprocess: pre_stats,
        raster,
    }
}

/// Everything one record-only frame produces: the workload with processed
/// counts filled in, plus per-stage statistics — [`RenderOutput`] minus the
/// image.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadOutput {
    /// The Stage-1/2 product consumed by the architecture models, with the
    /// reference pass's processed counts recorded.
    pub workload: RasterWorkload,
    /// Stage-1 statistics (culling, FP ops).
    pub preprocess: PreprocessStats,
    /// Stage-3 statistics (pairs, blends, per-subtask ops).
    pub raster: RasterStats,
}

/// Runs Stages 1–3 in record-only mode: the reference Stage-3 pass fills
/// the per-tile processed counts and statistics, but no framebuffer is
/// allocated or written. This is the entry point for workload construction
/// when the image would be discarded (the architecture-model path).
///
/// Record-only frames run the *same* chunked-preprocess and tile-job
/// decomposition as [`render`] — the only difference is that the tile
/// jobs get no framebuffer views — so all counts stay bit-identical with
/// the imaging path at every worker count.
pub fn render_record_only(
    scene: &GaussianScene,
    camera: &Camera,
    config: &RenderConfig,
) -> WorkloadOutput {
    let pool = config.worker_pool();
    let pre = preprocess_pooled(scene, camera, &pool);
    let pre_stats = PreprocessStats::from(&pre);
    let mut workload = config.stage2.bin(
        pre.splats,
        camera.width(),
        camera.height(),
        config.tile_size,
        &mut FrameArena::new(),
        &pool,
    );
    let raster = rasterize_with(&mut workload, None, &pool);
    WorkloadOutput {
        workload,
        preprocess: pre_stats,
        raster,
    }
}

/// Builds only the workload (Stages 1–2 plus a record-only reference
/// Stage-3 pass for the processed counts) — the common entry point for the
/// architecture models. Unlike a full [`render`], no framebuffer is
/// allocated or filled.
pub fn build_workload(
    scene: &GaussianScene,
    camera: &Camera,
    config: &RenderConfig,
) -> RasterWorkload {
    render_record_only(scene, camera, config).workload
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaurast_math::Vec3;
    use gaurast_scene::generator::SceneParams;
    use gaurast_scene::nerf360::{Nerf360Scene, SceneScale};

    fn camera(w: u32, h: u32) -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 6.0, -28.0),
            Vec3::zero(),
            Vec3::new(0.0, 1.0, 0.0),
            w,
            h,
            1.05,
        )
        .unwrap()
    }

    #[test]
    fn full_frame_has_work_and_coverage() {
        let scene = SceneParams::new(3000).seed(11).generate().unwrap();
        let out = render(&scene, &camera(128, 96), &RenderConfig::default());
        assert!(out.preprocess.visible > 100);
        assert!(out.workload.blend_work() > 0);
        assert!(
            out.image.coverage() > 0.05,
            "coverage {}",
            out.image.coverage()
        );
        assert!(out.raster.blends_committed > 0);
    }

    #[test]
    fn nerf360_scene_renders() {
        let desc = Nerf360Scene::Bonsai.descriptor();
        let scene = desc.synthesize(SceneScale::UNIT_TEST);
        let cam = desc.camera(SceneScale::UNIT_TEST, 0.3).unwrap();
        let out = render(&scene, &cam, &RenderConfig::default());
        assert!(out.image.coverage() > 0.01);
        assert!(out.workload.total_pairs() > 0);
    }

    #[test]
    fn tile_size_changes_grid_not_image() {
        let scene = SceneParams::new(500).generate().unwrap();
        let cam = camera(64, 64);
        let a = render(
            &scene,
            &cam,
            &RenderConfig {
                tile_size: 16,
                ..RenderConfig::default()
            },
        );
        let b = render(
            &scene,
            &cam,
            &RenderConfig {
                tile_size: 8,
                ..RenderConfig::default()
            },
        );
        assert_eq!(a.workload.tile_count(), 16);
        assert_eq!(b.workload.tile_count(), 64);
        // Rendered images agree except for tile-level early-termination
        // differences, which only suppress invisible (saturated) tails.
        assert!(a.image.mean_abs_diff(&b.image) < 1e-3);
    }

    #[test]
    fn build_workload_matches_render() {
        let scene = SceneParams::new(400).generate().unwrap();
        let cam = camera(64, 64);
        let cfg = RenderConfig::default();
        let w = build_workload(&scene, &cam, &cfg);
        let out = render(&scene, &cam, &cfg);
        assert_eq!(w.blend_work(), out.workload.blend_work());
    }

    #[test]
    fn mini_splatting_reduces_blend_work() {
        let scene = SceneParams::new(4000).seed(3).generate().unwrap();
        let simplified = gaurast_scene::mini_splatting::simplify(
            &scene,
            gaurast_scene::mini_splatting::MiniSplatConfig::PAPER,
        )
        .unwrap();
        let cam = camera(128, 128);
        let cfg = RenderConfig::default();
        let full = build_workload(&scene, &cam, &cfg);
        let mini = build_workload(&simplified, &cam, &cfg);
        let ratio = mini.blend_work() as f64 / full.blend_work() as f64;
        assert!(ratio < 0.7, "mini-splatting work ratio {ratio}");
        assert!(ratio > 0.02);
    }
}
