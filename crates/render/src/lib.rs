//! Software reference implementation of the 3D Gaussian Splatting rendering
//! pipeline and of classic triangle rasterization.
//!
//! This crate is the *algorithmic ground truth* of the workspace. It
//! implements the three-stage 3DGS pipeline exactly as described in §II of
//! the GauRast paper:
//!
//! 1. **Preprocessing** ([`preprocess`]) — project every 3D Gaussian to a 2D
//!    splat (EWA covariance projection), convert spherical harmonics to RGB,
//!    compute depth;
//! 2. **Sorting** ([`sort`], [`tile`]) — duplicate every splat into one
//!    packed 64-bit `(tile, depth)` key per covered tile and order the
//!    whole key array with a single stable LSD radix sort, yielding a flat
//!    CSR workload (one value buffer + per-tile offsets) whose buffers
//!    live in a per-session [`FrameArena`];
//! 3. **Gaussian rasterization** ([`rasterize`]) — per pixel, front-to-back
//!    alpha blending of the covering splats, one job per sorted CSR range.
//!
//! It also implements the triangle pipeline ([`triangle`]) that the original
//! rasterizer hardware supports, with the same four subtasks the paper's
//! Table II contrasts, and full operation counting ([`ops`]) so that table
//! can be regenerated from measurements instead of by inspection.
//!
//! The output of stages 1–2 — a [`RasterWorkload`] — is the interface
//! consumed by both architecture models (`gaurast-hw` cycle simulator and
//! `gaurast-gpu` CUDA model), guaranteeing both see identical work.
//!
//! The pipeline is data-parallel *within* a frame: Stage 1 runs in fixed
//! Gaussian chunks, Stage 2's radix sort in fixed key chunks
//! ([`sort::RADIX_CHUNK`]), and Stage 3 as independent per-tile jobs (each
//! tile reads its sorted CSR range and writes its own disjoint framebuffer
//! view) over a persistent [`pool::WorkerPool`] whose threads are spawned
//! once and parked between dispatches. The stages themselves are scheduled
//! by a static frame [`graph`] that overlaps Stage-1 chunks with Stage-2
//! histogramming where the dependency edges allow. Output is bit-identical
//! for every worker count and either graph mode — `workers = 1` is exactly
//! the serial reference path; see [`pool`] for the determinism recipe and
//! [`pipeline::RenderConfig::workers`] for the knob.
//!
//! # Example
//!
//! ```
//! use gaurast_render::pipeline::{render, RenderConfig};
//! use gaurast_scene::nerf360::{Nerf360Scene, SceneScale};
//!
//! let desc = Nerf360Scene::Bonsai.descriptor();
//! let scene = desc.synthesize(SceneScale::UNIT_TEST);
//! let camera = desc.camera(SceneScale::UNIT_TEST, 0.0)?;
//! let out = render(&scene, &camera, &RenderConfig::default());
//! assert_eq!(out.image.width(), camera.width());
//! # Ok::<(), gaurast_scene::SceneError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]
// The unsafe in this crate is confined to the disjoint-access handouts:
// the worker pool's job-slot publication (`pool`), the sorter's scatter
// ranges (`sort`), and the frame runner's per-chunk slots and key ranges
// (`pipeline`); every unsafe operation must sit in an explicit block with
// its own SAFETY comment (enforced by `gaurast-check lint`).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod compose;
mod framebuffer;
pub mod graph;
pub mod ops;
pub mod pipeline;
pub mod pool;
pub mod preprocess;
pub mod rasterize;
pub mod simd;
pub mod sort;
pub mod sync;
pub mod tile;
pub mod trace;
pub mod triangle;
mod workload;

pub use framebuffer::{Framebuffer, TileViewMut};
pub use pool::WorkerPool;
pub use preprocess::Splat2D;
pub use simd::{SimdLevel, VectorMode};
pub use workload::{FrameArena, RasterWorkload, SplatSoA, TileRef};

/// Default tile edge in pixels — the 16×16 tiling of the reference 3DGS
/// rasterizer, also the granularity of GauRast's tile buffers.
pub const DEFAULT_TILE_SIZE: u32 = 16;

/// Alpha threshold below which a splat contributes nothing to a pixel
/// (1/255, as in the reference implementation).
pub const ALPHA_CUTOFF: f32 = 1.0 / 255.0;

/// Transmittance threshold at which a pixel is saturated and blending
/// stops (matches the reference implementation's `T < 0.0001`).
pub const TRANSMITTANCE_EPS: f32 = 1.0e-4;
