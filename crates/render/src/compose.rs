//! Compositing of Gaussian-splat layers over conventionally rendered
//! content.
//!
//! GauRast's dual-mode design makes mixed frames natural: a triangle pass
//! renders meshes (UI, avatars, CAD geometry), a Gaussian pass renders the
//! photoreal environment, and the two composite with the splat layer's
//! remaining transmittance: `C = C_gauss + T_gauss · C_mesh`. This is
//! exactly the reference rasterizer's background-color term, generalized
//! from a constant to an image.

use crate::framebuffer::Framebuffer;

/// Composites a Gaussian layer over a background layer:
/// `out = gaussian.color + gaussian.T × background.color` per pixel.
///
/// The background's depth plane is carried through (the splat layer has no
/// meaningful Z-buffer).
///
/// # Panics
/// Panics when the layer dimensions differ.
pub fn over(gaussian: &Framebuffer, background: &Framebuffer) -> Framebuffer {
    assert_eq!(
        (gaussian.width(), gaussian.height()),
        (background.width(), background.height()),
        "layer dimensions differ"
    );
    let mut out = Framebuffer::new(gaussian.width(), gaussian.height());
    for y in 0..gaussian.height() {
        for x in 0..gaussian.width() {
            let t = gaussian.transmittance_at(x, y);
            let c = gaussian.color_at(x, y) + background.color_at(x, y) * t;
            out.set_color(x, y, c.clamp(0.0, 1.0));
            out.set_depth(x, y, background.depth_at(x, y));
            out.set_transmittance(x, y, t);
        }
    }
    out
}

/// Composites over a constant background color — the reference
/// implementation's `background` parameter.
pub fn over_color(gaussian: &Framebuffer, rgb: gaurast_math::Vec3) -> Framebuffer {
    let mut bg = Framebuffer::new(gaussian.width(), gaussian.height());
    for y in 0..gaussian.height() {
        for x in 0..gaussian.width() {
            bg.set_color(x, y, rgb);
        }
    }
    over(gaussian, &bg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rasterize::rasterize;
    use crate::tile::bin_splats;
    use crate::Splat2D;
    use gaurast_math::{Vec2, Vec3};

    fn gaussian_layer(opacity: f32) -> Framebuffer {
        let s = Splat2D {
            mean: Vec2::new(8.5, 8.5),
            conic: [0.3, 0.0, 0.3],
            depth: 1.0,
            color: Vec3::new(1.0, 0.0, 0.0),
            opacity,
            radius: 8.0,
            source: 0,
        };
        let mut w = bin_splats(vec![s], 16, 16, 16);
        rasterize(&mut w).0
    }

    fn solid(rgb: Vec3) -> Framebuffer {
        let mut fb = Framebuffer::new(16, 16);
        for y in 0..16 {
            for x in 0..16 {
                fb.set_color(x, y, rgb);
            }
        }
        fb
    }

    #[test]
    fn empty_layer_passes_background_through() {
        let empty = Framebuffer::new(16, 16); // T = 1 everywhere
        let bg = solid(Vec3::new(0.2, 0.4, 0.6));
        let out = over(&empty, &bg);
        assert_eq!(out.color_at(7, 7), Vec3::new(0.2, 0.4, 0.6));
    }

    #[test]
    fn opaque_splat_hides_background() {
        let layer = gaussian_layer(0.99);
        let bg = solid(Vec3::one());
        let out = over(&layer, &bg);
        let center = out.color_at(8, 8);
        // T at the mean is 0.01: background contributes at most 1 %.
        assert!(center.x > 0.98, "{center:?}");
        assert!(center.y < 0.02 && center.z < 0.02, "{center:?}");
    }

    #[test]
    fn translucent_splat_blends_linearly() {
        let layer = gaussian_layer(0.5);
        let bg = solid(Vec3::new(0.0, 1.0, 0.0));
        let out = over(&layer, &bg);
        let center = out.color_at(8, 8);
        // 0.5 red over green: 0.5 red + 0.5 green.
        assert!((center.x - 0.5).abs() < 1e-3, "{center:?}");
        assert!((center.y - 0.5).abs() < 1e-3, "{center:?}");
    }

    #[test]
    fn over_color_matches_over_with_solid() {
        let layer = gaussian_layer(0.7);
        let rgb = Vec3::new(0.3, 0.3, 0.9);
        let a = over_color(&layer, rgb);
        let b = over(&layer, &solid(rgb));
        assert_eq!(a.mean_abs_diff(&b), 0.0);
    }

    #[test]
    fn depth_comes_from_background() {
        let layer = gaussian_layer(0.5);
        let mut bg = solid(Vec3::one());
        bg.set_depth(3, 3, 7.5);
        let out = over(&layer, &bg);
        assert_eq!(out.depth_at(3, 3), 7.5);
    }

    #[test]
    #[should_panic(expected = "dimensions differ")]
    fn size_mismatch_panics() {
        let a = Framebuffer::new(16, 16);
        let b = Framebuffer::new(8, 8);
        let _ = over(&a, &b);
    }
}
