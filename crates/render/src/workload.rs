//! The rasterization workload — the interface between the software pipeline
//! and the architecture models.
//!
//! Stages 1–2 produce a [`RasterWorkload`]: the preprocessed splats plus a
//! flat **CSR** (compressed sparse row) table of depth-sorted splat indices
//! — one contiguous `values` buffer holding every (splat, tile) pair
//! tile-major, and an `offsets` table with one entry per tile plus a
//! terminator, so tile `i`'s list is `values[offsets[i]..offsets[i + 1]]`.
//! Both the CUDA baseline model and the GauRast cycle-accurate simulator
//! consume this same structure, so the speedups compare identical work
//! (DESIGN.md §6, decision 1).
//!
//! The CSR buffers (and the packed 64-bit sort keys that produce them —
//! see [`crate::sort::pack_key`]) live in a per-session [`FrameArena`], so
//! steady-state frames run Stage 2 without allocating.

use crate::preprocess::Splat2D;
use crate::sort::RadixSorter;

/// Structure-of-arrays view of the frame's splat list — the lane-friendly
/// memory the SIMD Stage-3 kernels read (`crate::simd::stage3`).
///
/// Every field is one contiguous `f32` array, index-aligned with the
/// [`RasterWorkload::splats`] slice it is derived from:
///
/// ```text
/// x:       [ mean.x  | mean.x  | ... ]   splat center, pixels
/// y:       [ mean.y  | mean.y  | ... ]
/// depth:   [ depth   | depth   | ... ]   camera-space z
/// conic_a: [ conic[0]| conic[0]| ... ]   inverse-covariance terms
/// conic_b: [ conic[1]| conic[1]| ... ]
/// conic_c: [ conic[2]| conic[2]| ... ]
/// alpha:   [ opacity | opacity | ... ]
/// r/g/b:   [ color   | color   | ... ]   evaluated SH color
/// ```
///
/// A gather that would cost one strided `Splat2D` load per lane becomes a
/// single broadcast per field. The buffers live in the session
/// [`FrameArena`] and are refilled during CSR construction
/// (`RasterWorkload::from_csr`), so steady-state frames do not allocate.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct SplatSoA {
    /// Splat center x (`Splat2D::mean.x`).
    pub(crate) x: Vec<f32>,
    /// Splat center y (`Splat2D::mean.y`).
    pub(crate) y: Vec<f32>,
    /// Camera-space depth (`Splat2D::depth`).
    pub(crate) depth: Vec<f32>,
    /// Inverse-covariance term `conic[0]`.
    pub(crate) conic_a: Vec<f32>,
    /// Inverse-covariance term `conic[1]`.
    pub(crate) conic_b: Vec<f32>,
    /// Inverse-covariance term `conic[2]`.
    pub(crate) conic_c: Vec<f32>,
    /// Splat opacity (`Splat2D::opacity`).
    pub(crate) alpha: Vec<f32>,
    /// Red channel of the evaluated color.
    pub(crate) r: Vec<f32>,
    /// Green channel of the evaluated color.
    pub(crate) g: Vec<f32>,
    /// Blue channel of the evaluated color.
    pub(crate) b: Vec<f32>,
}

impl SplatSoA {
    /// Number of splats in the view.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` when the view holds no splats.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Refills every column from `splats`, reusing the existing buffer
    /// capacity (steady-state frames stay allocation-free).
    pub(crate) fn fill(&mut self, splats: &[Splat2D]) {
        self.x.clear();
        self.y.clear();
        self.depth.clear();
        self.conic_a.clear();
        self.conic_b.clear();
        self.conic_c.clear();
        self.alpha.clear();
        self.r.clear();
        self.g.clear();
        self.b.clear();
        self.x.reserve(splats.len());
        self.y.reserve(splats.len());
        self.depth.reserve(splats.len());
        self.conic_a.reserve(splats.len());
        self.conic_b.reserve(splats.len());
        self.conic_c.reserve(splats.len());
        self.alpha.reserve(splats.len());
        self.r.reserve(splats.len());
        self.g.reserve(splats.len());
        self.b.reserve(splats.len());
        for s in splats {
            self.x.push(s.mean.x);
            self.y.push(s.mean.y);
            self.depth.push(s.depth);
            self.conic_a.push(s.conic[0]);
            self.conic_b.push(s.conic[1]);
            self.conic_c.push(s.conic[2]);
            self.alpha.push(s.opacity);
            self.r.push(s.color.x);
            self.g.push(s.color.y);
            self.b.push(s.color.z);
        }
    }
}

/// Per-tile, depth-ordered rasterization work for one frame, in CSR form.
#[derive(Clone, Debug)]
pub struct RasterWorkload {
    width: u32,
    height: u32,
    tile_size: u32,
    tiles_x: u32,
    tiles_y: u32,
    splats: Vec<Splat2D>,
    /// Flat, tile-major splat-index buffer: every (splat, tile) pair once,
    /// each tile's run depth-sorted.
    values: Vec<u32>,
    /// CSR offset table, `tile_count() + 1` entries: tile `i` owns
    /// `values[offsets[i]..offsets[i + 1]]`.
    offsets: Vec<u32>,
    /// Per-tile processed counts recorded by the reference rasterizer;
    /// empty until [`RasterWorkload::set_processed`] runs.
    processed: Vec<u32>,
    /// Structure-of-arrays view of `splats`, derived during CSR
    /// construction for the SIMD Stage-3 kernels.
    soa: SplatSoA,
}

impl PartialEq for RasterWorkload {
    /// Equality over the semantic content: grid, splats, CSR table, and
    /// processed counts. The SoA view is excluded — it is derived
    /// column-for-column from `splats`, so it carries no extra state.
    fn eq(&self, other: &Self) -> bool {
        (
            self.width,
            self.height,
            self.tile_size,
            &self.splats,
            &self.values,
            &self.offsets,
            &self.processed,
        ) == (
            other.width,
            other.height,
            other.tile_size,
            &other.splats,
            &other.values,
            &other.offsets,
            &other.processed,
        )
    }
}

impl RasterWorkload {
    /// Assembles a workload from per-tile index lists, stably
    /// depth-sorting each list (the Stage-2 invariant every consumer
    /// relies on — Stage 3 no longer sorts in its tile jobs, so the
    /// constructor establishes the order; already-sorted lists pass
    /// through bit-identically). This is the compatibility entry for
    /// tests, custom tilers and trace replay ([`crate::trace`]); the
    /// reference pipeline builds workloads through the key-sorted CSR
    /// path ([`crate::tile::bin_splats_pooled`]).
    ///
    /// # Panics
    /// Panics when the tile-list count does not match the grid, when the
    /// tile size is zero, or when any index is out of bounds.
    pub fn new(
        width: u32,
        height: u32,
        tile_size: u32,
        splats: Vec<Splat2D>,
        tile_lists: Vec<Vec<u32>>,
    ) -> Self {
        assert!(tile_size > 0, "tile size must be positive");
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        let tiles_x = width.div_ceil(tile_size);
        let tiles_y = height.div_ceil(tile_size);
        assert_eq!(
            tile_lists.len(),
            (tiles_x * tiles_y) as usize,
            "tile list count must match the grid"
        );
        let total: usize = tile_lists.iter().map(Vec::len).sum();
        let mut values = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(tile_lists.len() + 1);
        offsets.push(0u32);
        for list in &tile_lists {
            let start = values.len();
            for &i in list {
                assert!((i as usize) < splats.len(), "splat index {i} out of bounds");
                values.push(i);
            }
            crate::sort::sort_indices_by_depth(&mut values[start..], &splats);
            offsets.push(values.len() as u32);
        }
        Self::from_csr(
            width,
            height,
            tile_size,
            splats,
            values,
            offsets,
            Vec::new(),
            SplatSoA::default(),
        )
    }

    /// Assembles a workload directly from CSR buffers (the arena-backed
    /// binning path). `processed` may carry a recycled (cleared) counts
    /// buffer whose capacity is reused by the next
    /// [`RasterWorkload::set_processed`].
    ///
    /// `soa` may carry recycled structure-of-arrays buffers (usually
    /// `mem::take`n from [`FrameArena::soa`]); it is refilled from
    /// `splats` here so every workload leaves construction with an
    /// index-aligned [`SplatSoA`] view.
    ///
    /// # Panics
    /// Panics when the offset table does not match the grid or is not a
    /// monotone cover of `values`. Index bounds are a `debug_assert` — the
    /// binning paths emit indices straight from the splat iteration, and
    /// this constructor is on the per-frame hot path.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_csr(
        width: u32,
        height: u32,
        tile_size: u32,
        splats: Vec<Splat2D>,
        values: Vec<u32>,
        offsets: Vec<u32>,
        mut processed: Vec<u32>,
        mut soa: SplatSoA,
    ) -> Self {
        assert!(tile_size > 0, "tile size must be positive");
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        let tiles_x = width.div_ceil(tile_size);
        let tiles_y = height.div_ceil(tile_size);
        assert_eq!(
            offsets.len(),
            (tiles_x * tiles_y) as usize + 1,
            "offset table must have one entry per tile plus a terminator"
        );
        assert_eq!(offsets[0], 0, "offset table must start at zero");
        assert_eq!(
            offsets.last().map(|&n| n as usize),
            Some(values.len()),
            "offset table must end at the value count"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offset table must be monotone"
        );
        debug_assert!(
            values.iter().all(|&i| (i as usize) < splats.len()),
            "splat index out of bounds in CSR values"
        );
        // Debug-only finiteness gate: Stage 1 culls non-finite splats and
        // `tile_range` refuses to bin them, so a non-finite mean, radius,
        // or depth here means an upstream guard was bypassed (NaN depths
        // would also poison the depth keys).
        debug_assert!(
            splats
                .iter()
                .all(|s| s.mean.is_finite() && s.radius.is_finite() && s.depth.is_finite()),
            "non-finite splat reached RasterWorkload"
        );
        processed.clear();
        soa.fill(&splats);
        Self {
            width,
            height,
            tile_size,
            tiles_x,
            tiles_y,
            splats,
            values,
            offsets,
            processed,
            soa,
        }
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Tile edge in pixels.
    #[inline]
    pub fn tile_size(&self) -> u32 {
        self.tile_size
    }

    /// Number of tile columns.
    #[inline]
    pub fn tiles_x(&self) -> u32 {
        self.tiles_x
    }

    /// Number of tile rows.
    #[inline]
    pub fn tiles_y(&self) -> u32 {
        self.tiles_y
    }

    /// Total tiles.
    #[inline]
    pub fn tile_count(&self) -> usize {
        (self.tiles_x * self.tiles_y) as usize
    }

    /// All preprocessed splats.
    #[inline]
    pub fn splats(&self) -> &[Splat2D] {
        &self.splats
    }

    /// Structure-of-arrays view of [`RasterWorkload::splats`], column
    /// arrays index-aligned with the slice (the memory layout the SIMD
    /// Stage-3 kernels read).
    #[inline]
    pub fn soa(&self) -> &SplatSoA {
        &self.soa
    }

    /// The flat CSR value buffer: every (splat, tile) pair, tile-major,
    /// depth-sorted within each tile's run.
    #[inline]
    pub fn values(&self) -> &[u32] {
        &self.values
    }

    /// The CSR offset table (`tile_count() + 1` entries).
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Depth-sorted splat indices for the linear tile index
    /// (`ty * tiles_x + tx`) — a zero-copy slice of the CSR value buffer.
    ///
    /// # Panics
    /// Panics when the index is out of range.
    #[inline]
    pub fn tile_list_at(&self, tile: usize) -> &[u32] {
        &self.values[self.offsets[tile] as usize..self.offsets[tile + 1] as usize]
    }

    /// Depth-sorted splat indices for tile `(tx, ty)`.
    ///
    /// # Panics
    /// Panics when the tile coordinate is out of range.
    #[inline]
    pub fn tile_list(&self, tx: u32, ty: u32) -> &[u32] {
        assert!(tx < self.tiles_x && ty < self.tiles_y, "tile out of range");
        self.tile_list_at((ty * self.tiles_x + tx) as usize)
    }

    /// Iterates the tiles in linear (tile-major) order, yielding each
    /// tile's CSR range, rectangle, and processed count — the one traversal
    /// every architecture model shares.
    pub fn tiles(&self) -> impl Iterator<Item = TileRef<'_>> + '_ {
        (0..self.tile_count()).map(move |i| {
            let (tx, ty) = (i as u32 % self.tiles_x, i as u32 / self.tiles_x);
            TileRef {
                index: i,
                tx,
                ty,
                list: self.tile_list_at(i),
                processed: self.processed_count(tx, ty),
                rect: self.tile_rect(tx, ty),
            }
        })
    }

    /// Pixel rectangle of tile `(tx, ty)`: `(x0, y0, x1, y1)`, exclusive
    /// upper bounds, clipped to the image.
    pub fn tile_rect(&self, tx: u32, ty: u32) -> (u32, u32, u32, u32) {
        let x0 = tx * self.tile_size;
        let y0 = ty * self.tile_size;
        (
            x0,
            y0,
            (x0 + self.tile_size).min(self.width),
            (y0 + self.tile_size).min(self.height),
        )
    }

    /// Number of pixels in tile `(tx, ty)` (edge tiles may be partial).
    pub fn tile_pixels(&self, tx: u32, ty: u32) -> u64 {
        let (x0, y0, x1, y1) = self.tile_rect(tx, ty);
        u64::from(x1 - x0) * u64::from(y1 - y0)
    }

    /// Total (splat, tile) pairs — the CSR value count, i.e. the
    /// sort/binning workload of Stage 2.
    pub fn total_pairs(&self) -> u64 {
        self.values.len() as u64
    }

    /// Records how many splats of each tile's list were actually processed
    /// before the whole tile saturated (filled in by the reference
    /// rasterizer; both architecture models bill exactly this much work).
    ///
    /// # Panics
    /// Panics when the vector length does not match the tile count or when
    /// any count exceeds the corresponding CSR range length.
    pub fn set_processed(&mut self, processed: Vec<u32>) {
        assert_eq!(processed.len(), self.tile_count(), "one count per tile");
        for (i, p) in processed.iter().enumerate() {
            let len = self.offsets[i + 1] - self.offsets[i];
            assert!(*p <= len, "processed count {p} exceeds list length {len}");
        }
        self.processed = processed;
    }

    /// Hands out the (cleared) processed-count buffer so the reference
    /// rasterization pass can refill it without allocating; the pass gives
    /// it back through [`RasterWorkload::set_processed`].
    pub(crate) fn take_processed_scratch(&mut self) -> Vec<u32> {
        let mut p = std::mem::take(&mut self.processed);
        p.clear();
        p
    }

    /// Processed splat count for tile `(tx, ty)`: the recorded count if the
    /// reference rasterizer ran, otherwise the full list length.
    pub fn processed_count(&self, tx: u32, ty: u32) -> u32 {
        let idx = (ty * self.tiles_x + tx) as usize;
        if self.processed.is_empty() {
            self.offsets[idx + 1] - self.offsets[idx]
        } else {
            self.processed[idx]
        }
    }

    /// Total Gaussian-pixel blend operations for the frame:
    /// `Σ_tiles processed(tile) × pixels(tile)`. This is the `W` that both
    /// architecture models divide by their respective throughputs.
    pub fn blend_work(&self) -> u64 {
        self.tiles()
            .map(|t| u64::from(t.processed) * t.pixels())
            .sum()
    }

    /// Moves this workload's CSR and processed-count buffers back into a
    /// session arena so the next frame reuses the allocations
    /// ([`FrameArena`] is the steady-state zero-allocation contract of
    /// Stage 2's data path). The splats are dropped — their allocation
    /// belongs to Stage 1, which produces a fresh `Vec` per frame.
    pub fn recycle_into(self, arena: &mut FrameArena) {
        arena.values = self.values;
        arena.offsets = self.offsets;
        arena.processed = self.processed;
        arena.soa = self.soa;
    }

    /// Length of the longest tile list (load-imbalance metric).
    pub fn max_list_len(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Mean tile-list length.
    pub fn mean_list_len(&self) -> f64 {
        if self.tile_count() == 0 {
            return 0.0;
        }
        self.total_pairs() as f64 / self.tile_count() as f64
    }
}

/// One tile's view of a CSR workload (see [`RasterWorkload::tiles`]).
#[derive(Clone, Copy, Debug)]
pub struct TileRef<'a> {
    /// Linear tile index (`ty * tiles_x + tx`).
    pub index: usize,
    /// Tile column.
    pub tx: u32,
    /// Tile row.
    pub ty: u32,
    /// The tile's depth-sorted CSR range of splat indices.
    pub list: &'a [u32],
    /// Processed count (list length when no reference pass recorded one).
    pub processed: u32,
    /// Pixel rectangle `(x0, y0, x1, y1)`, exclusive upper bounds.
    pub rect: (u32, u32, u32, u32),
}

impl TileRef<'_> {
    /// Pixels in the tile (edge tiles may be partial).
    #[inline]
    pub fn pixels(&self) -> u64 {
        let (x0, y0, x1, y1) = self.rect;
        u64::from(x1 - x0) * u64::from(y1 - y0)
    }
}

/// Per-session Stage-2 scratch: the packed-key, CSR, sorter and
/// processed-count buffers a frame needs, recycled across frames so
/// steady-state Stage 2 allocates nothing.
///
/// Thread one arena through [`crate::tile::bin_splats_pooled`] (or the
/// legacy [`crate::tile::bin_splats_legacy`]) and give the buffers back
/// with [`RasterWorkload::recycle_into`] after the frame.
#[derive(Debug, Default)]
pub struct FrameArena {
    /// Packed `(tile, depth)` sort keys ([`crate::sort::pack_key`]); only
    /// live during binning — the finished workload keeps values/offsets.
    pub(crate) keys: Vec<u64>,
    /// CSR value buffer under construction.
    pub(crate) values: Vec<u32>,
    /// CSR offset table under construction.
    pub(crate) offsets: Vec<u32>,
    /// The radix sorter and its ping-pong/histogram scratch.
    pub(crate) sorter: RadixSorter,
    /// Recycled processed-count buffer.
    pub(crate) processed: Vec<u32>,
    /// Legacy-path per-tile lists ([`crate::tile::bin_splats_legacy`]).
    pub(crate) lists: Vec<Vec<u32>>,
    /// Recycled structure-of-arrays splat buffers ([`SplatSoA`]).
    pub(crate) soa: SplatSoA,
    /// Cached frame-graph execution plan, reused while the chunk count and
    /// graph mode stay put ([`crate::graph::PlanCache`]).
    pub(crate) plan: crate::graph::PlanCache,
}

impl FrameArena {
    /// An empty arena; buffers grow on first use and are retained.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaurast_math::{Vec2, Vec3};

    fn splat() -> Splat2D {
        Splat2D {
            mean: Vec2::new(8.0, 8.0),
            conic: [0.1, 0.0, 0.1],
            depth: 1.0,
            color: Vec3::one(),
            opacity: 0.9,
            radius: 4.0,
            source: 0,
        }
    }

    fn workload_2x2() -> RasterWorkload {
        // 32x32 image, 16px tiles -> 2x2 grid.
        RasterWorkload::new(
            32,
            32,
            16,
            vec![splat(), splat()],
            vec![vec![0, 1], vec![0], vec![], vec![1]],
        )
    }

    #[test]
    fn grid_dimensions() {
        let w = workload_2x2();
        assert_eq!((w.tiles_x(), w.tiles_y()), (2, 2));
        assert_eq!(w.tile_count(), 4);
        assert_eq!(w.tile_pixels(0, 0), 256);
    }

    #[test]
    fn csr_layout_matches_lists() {
        let w = workload_2x2();
        assert_eq!(w.values(), &[0, 1, 0, 1]);
        assert_eq!(w.offsets(), &[0, 2, 3, 3, 4]);
        assert_eq!(w.tile_list(0, 0), &[0, 1]);
        assert_eq!(w.tile_list(1, 0), &[0]);
        assert!(w.tile_list(0, 1).is_empty());
        assert_eq!(w.tile_list(1, 1), &[1]);
        assert_eq!(w.tile_list_at(3), &[1]);
    }

    #[test]
    fn tiles_iterator_covers_grid_in_order() {
        let w = workload_2x2();
        let tiles: Vec<_> = w.tiles().collect();
        assert_eq!(tiles.len(), 4);
        for (i, t) in tiles.iter().enumerate() {
            assert_eq!(t.index, i);
            assert_eq!((t.tx, t.ty), (i as u32 % 2, i as u32 / 2));
            assert_eq!(t.list, w.tile_list(t.tx, t.ty));
            assert_eq!(t.pixels(), w.tile_pixels(t.tx, t.ty));
            assert_eq!(t.processed, t.list.len() as u32);
        }
    }

    #[test]
    fn new_establishes_depth_order_for_unsorted_lists() {
        // Stage 3 no longer sorts in its tile jobs, so the compatibility
        // constructor (custom tilers, trace replay) must establish the
        // front-to-back invariant itself — stably, so already-sorted
        // lists pass through bit-identically.
        let mk = |depth: f32| Splat2D { depth, ..splat() };
        let splats = vec![mk(3.0), mk(1.0), mk(2.0), mk(1.0)];
        let w = RasterWorkload::new(
            32,
            32,
            16,
            splats,
            vec![vec![0, 1, 2, 3], vec![], vec![], vec![]],
        );
        // Sorted by depth; the two depth-1.0 entries keep submission order.
        assert_eq!(w.tile_list(0, 0), &[1, 3, 2, 0]);
        assert!(crate::sort::is_depth_sorted(w.tile_list(0, 0), w.splats()));
    }

    #[test]
    fn partial_edge_tiles() {
        let w = RasterWorkload::new(20, 18, 16, vec![], vec![vec![], vec![], vec![], vec![]]);
        assert_eq!(w.tile_rect(1, 1), (16, 16, 20, 18));
        assert_eq!(w.tile_pixels(1, 1), 4 * 2);
    }

    #[test]
    fn total_pairs_sums_lists() {
        assert_eq!(workload_2x2().total_pairs(), 4);
    }

    #[test]
    fn blend_work_without_processed_uses_full_lists() {
        let w = workload_2x2();
        assert_eq!(w.blend_work(), ((2 + 1) + 1) * 256);
    }

    #[test]
    fn blend_work_with_processed() {
        let mut w = workload_2x2();
        w.set_processed(vec![1, 1, 0, 0]);
        assert_eq!(w.blend_work(), 2 * 256);
        assert_eq!(w.processed_count(0, 0), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds list length")]
    fn processed_cannot_exceed_list() {
        let mut w = workload_2x2();
        w.set_processed(vec![3, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn dangling_index_rejected() {
        let _ = RasterWorkload::new(16, 16, 16, vec![splat()], vec![vec![1]]);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_offsets_rejected() {
        let _ = RasterWorkload::from_csr(
            32,
            32,
            16,
            vec![splat()],
            vec![0, 0],
            vec![0, 2, 1, 1, 2],
            Vec::new(),
            SplatSoA::default(),
        );
    }

    #[test]
    #[should_panic(expected = "end at the value count")]
    fn short_offsets_rejected() {
        let _ = RasterWorkload::from_csr(
            32,
            32,
            16,
            vec![splat()],
            vec![0, 0],
            vec![0, 1, 1, 1, 1],
            Vec::new(),
            SplatSoA::default(),
        );
    }

    #[test]
    fn recycle_roundtrip_preserves_capacity() {
        let mut arena = FrameArena::new();
        let w = workload_2x2();
        let values_cap = w.values.capacity();
        let soa_cap = w.soa.x.capacity();
        w.recycle_into(&mut arena);
        assert!(arena.values.capacity() >= values_cap);
        assert!(arena.soa.x.capacity() >= soa_cap);
        assert_eq!(arena.offsets.len(), 5);
    }

    #[test]
    fn soa_columns_align_with_splats() {
        let w = workload_2x2();
        let soa = w.soa();
        assert_eq!(soa.len(), w.splats().len());
        assert!(!soa.is_empty());
        for (i, s) in w.splats().iter().enumerate() {
            assert_eq!(soa.x[i].to_bits(), s.mean.x.to_bits());
            assert_eq!(soa.y[i].to_bits(), s.mean.y.to_bits());
            assert_eq!(soa.depth[i].to_bits(), s.depth.to_bits());
            assert_eq!(soa.conic_a[i].to_bits(), s.conic[0].to_bits());
            assert_eq!(soa.conic_b[i].to_bits(), s.conic[1].to_bits());
            assert_eq!(soa.conic_c[i].to_bits(), s.conic[2].to_bits());
            assert_eq!(soa.alpha[i].to_bits(), s.opacity.to_bits());
            assert_eq!(soa.r[i].to_bits(), s.color.x.to_bits());
            assert_eq!(soa.g[i].to_bits(), s.color.y.to_bits());
            assert_eq!(soa.b[i].to_bits(), s.color.z.to_bits());
        }
    }

    #[test]
    fn list_stats() {
        let w = workload_2x2();
        assert_eq!(w.max_list_len(), 2);
        assert!((w.mean_list_len() - 1.0).abs() < 1e-9);
    }
}
