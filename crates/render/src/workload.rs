//! The rasterization workload — the interface between the software pipeline
//! and the architecture models.
//!
//! Stages 1–2 produce a [`RasterWorkload`]: the preprocessed splats plus a
//! depth-sorted index list per 16×16 tile. Both the CUDA baseline model and
//! the GauRast cycle-accurate simulator consume this same structure, so the
//! speedups compare identical work (DESIGN.md §6, decision 1).

use crate::preprocess::Splat2D;

/// Per-tile, depth-ordered rasterization work for one frame.
#[derive(Clone, Debug)]
pub struct RasterWorkload {
    width: u32,
    height: u32,
    tile_size: u32,
    tiles_x: u32,
    tiles_y: u32,
    splats: Vec<Splat2D>,
    tile_lists: Vec<Vec<u32>>,
    processed: Option<Vec<u32>>,
    /// Whether every tile list is already depth-sorted — a cache flag
    /// (excluded from equality) letting the tile-major rasterization pass
    /// skip its in-job sort for workloads from the sorted binning entry
    /// points.
    sorted: bool,
}

impl PartialEq for RasterWorkload {
    /// Equality over the semantic content (grid, splats, lists, processed
    /// counts); the `sorted` cache flag is deliberately excluded — a
    /// sorted-binned workload and a deferred-binned one whose tile jobs
    /// sorted it describe identical work.
    fn eq(&self, other: &Self) -> bool {
        (
            self.width,
            self.height,
            self.tile_size,
            &self.splats,
            &self.tile_lists,
            &self.processed,
        ) == (
            other.width,
            other.height,
            other.tile_size,
            &other.splats,
            &other.tile_lists,
            &other.processed,
        )
    }
}

impl RasterWorkload {
    /// Assembles a workload. Intended to be called by
    /// [`crate::tile::bin_splats`]; exposed for tests and custom tilers.
    ///
    /// # Panics
    /// Panics when the tile-list count does not match the grid, when the
    /// tile size is zero, or when any index is out of bounds.
    pub fn new(
        width: u32,
        height: u32,
        tile_size: u32,
        splats: Vec<Splat2D>,
        tile_lists: Vec<Vec<u32>>,
    ) -> Self {
        assert!(tile_size > 0, "tile size must be positive");
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        let tiles_x = width.div_ceil(tile_size);
        let tiles_y = height.div_ceil(tile_size);
        assert_eq!(
            tile_lists.len(),
            (tiles_x * tiles_y) as usize,
            "tile list count must match the grid"
        );
        for list in &tile_lists {
            for &i in list {
                assert!((i as usize) < splats.len(), "splat index {i} out of bounds");
            }
        }
        // Debug-only finiteness gate: Stage 1 culls non-finite splats and
        // `tile_range` refuses to bin them, so a non-finite mean, radius,
        // or depth here means an upstream guard was bypassed (NaN depths
        // would also poison the per-tile sort).
        debug_assert!(
            splats
                .iter()
                .all(|s| s.mean.is_finite() && s.radius.is_finite() && s.depth.is_finite()),
            "non-finite splat reached RasterWorkload::new"
        );
        Self {
            width,
            height,
            tile_size,
            tiles_x,
            tiles_y,
            splats,
            tile_lists,
            processed: None,
            sorted: false,
        }
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Tile edge in pixels.
    #[inline]
    pub fn tile_size(&self) -> u32 {
        self.tile_size
    }

    /// Number of tile columns.
    #[inline]
    pub fn tiles_x(&self) -> u32 {
        self.tiles_x
    }

    /// Number of tile rows.
    #[inline]
    pub fn tiles_y(&self) -> u32 {
        self.tiles_y
    }

    /// Total tiles.
    #[inline]
    pub fn tile_count(&self) -> usize {
        (self.tiles_x * self.tiles_y) as usize
    }

    /// All preprocessed splats.
    #[inline]
    pub fn splats(&self) -> &[Splat2D] {
        &self.splats
    }

    /// Depth-sorted splat indices for tile `(tx, ty)`.
    ///
    /// # Panics
    /// Panics when the tile coordinate is out of range.
    #[inline]
    pub fn tile_list(&self, tx: u32, ty: u32) -> &[u32] {
        assert!(tx < self.tiles_x && ty < self.tiles_y, "tile out of range");
        &self.tile_lists[(ty * self.tiles_x + tx) as usize]
    }

    /// Pixel rectangle of tile `(tx, ty)`: `(x0, y0, x1, y1)`, exclusive
    /// upper bounds, clipped to the image.
    pub fn tile_rect(&self, tx: u32, ty: u32) -> (u32, u32, u32, u32) {
        let x0 = tx * self.tile_size;
        let y0 = ty * self.tile_size;
        (
            x0,
            y0,
            (x0 + self.tile_size).min(self.width),
            (y0 + self.tile_size).min(self.height),
        )
    }

    /// Number of pixels in tile `(tx, ty)` (edge tiles may be partial).
    pub fn tile_pixels(&self, tx: u32, ty: u32) -> u64 {
        let (x0, y0, x1, y1) = self.tile_rect(tx, ty);
        u64::from(x1 - x0) * u64::from(y1 - y0)
    }

    /// Total (splat, tile) pairs — the length sum of all tile lists, i.e.
    /// the sort/binning workload of Stage 2.
    pub fn total_pairs(&self) -> u64 {
        self.tile_lists.iter().map(|l| l.len() as u64).sum()
    }

    /// Records how many splats of each tile's list were actually processed
    /// before the whole tile saturated (filled in by the reference
    /// rasterizer; both architecture models bill exactly this much work).
    ///
    /// # Panics
    /// Panics when the vector length does not match the tile count or when
    /// any count exceeds the corresponding list length.
    pub fn set_processed(&mut self, processed: Vec<u32>) {
        assert_eq!(processed.len(), self.tile_count(), "one count per tile");
        for (p, list) in processed.iter().zip(&self.tile_lists) {
            assert!(
                *p as usize <= list.len(),
                "processed count {p} exceeds list length {}",
                list.len()
            );
        }
        self.processed = Some(processed);
    }

    /// Processed splat count for tile `(tx, ty)`: the recorded count if the
    /// reference rasterizer ran, otherwise the full list length.
    pub fn processed_count(&self, tx: u32, ty: u32) -> u32 {
        let idx = (ty * self.tiles_x + tx) as usize;
        match &self.processed {
            Some(p) => p[idx],
            None => self.tile_lists[idx].len() as u32,
        }
    }

    /// Total Gaussian-pixel blend operations for the frame:
    /// `Σ_tiles processed(tile) × pixels(tile)`. This is the `W` that both
    /// architecture models divide by their respective throughputs.
    pub fn blend_work(&self) -> u64 {
        let mut total = 0u64;
        for ty in 0..self.tiles_y {
            for tx in 0..self.tiles_x {
                total += u64::from(self.processed_count(tx, ty)) * self.tile_pixels(tx, ty);
            }
        }
        total
    }

    /// Splits the workload into its shared splat slice and exclusive
    /// per-tile lists — what a tile-major rasterization pass needs: every
    /// tile job reads the splats and sorts/consumes its own list. Crate
    /// internal so list contents can only be permuted, never given
    /// out-of-bounds indices.
    pub(crate) fn splats_and_lists_mut(&mut self) -> (&[Splat2D], &mut [Vec<u32>]) {
        (&self.splats, &mut self.tile_lists)
    }

    /// `true` when every tile list is known depth-sorted (see the
    /// `sorted` field).
    pub(crate) fn is_sorted(&self) -> bool {
        self.sorted
    }

    /// Records that every tile list is depth-sorted (set by the sorted
    /// binning entry points and by the tile-major pass after its in-job
    /// sorts).
    pub(crate) fn mark_sorted(&mut self) {
        self.sorted = true;
    }

    /// Disassembles the workload into its splat and tile-list buffers so a
    /// session can recycle the allocations for the next frame (see
    /// [`crate::tile::bin_splats_into`]). Any recorded processed counts are
    /// dropped.
    pub fn into_buffers(self) -> (Vec<Splat2D>, Vec<Vec<u32>>) {
        (self.splats, self.tile_lists)
    }

    /// Length of the longest tile list (load-imbalance metric).
    pub fn max_list_len(&self) -> usize {
        self.tile_lists.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Mean tile-list length.
    pub fn mean_list_len(&self) -> f64 {
        if self.tile_lists.is_empty() {
            return 0.0;
        }
        self.total_pairs() as f64 / self.tile_lists.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaurast_math::{Vec2, Vec3};

    fn splat() -> Splat2D {
        Splat2D {
            mean: Vec2::new(8.0, 8.0),
            conic: [0.1, 0.0, 0.1],
            depth: 1.0,
            color: Vec3::one(),
            opacity: 0.9,
            radius: 4.0,
            source: 0,
        }
    }

    fn workload_2x2() -> RasterWorkload {
        // 32x32 image, 16px tiles -> 2x2 grid.
        RasterWorkload::new(
            32,
            32,
            16,
            vec![splat(), splat()],
            vec![vec![0, 1], vec![0], vec![], vec![1]],
        )
    }

    #[test]
    fn grid_dimensions() {
        let w = workload_2x2();
        assert_eq!((w.tiles_x(), w.tiles_y()), (2, 2));
        assert_eq!(w.tile_count(), 4);
        assert_eq!(w.tile_pixels(0, 0), 256);
    }

    #[test]
    fn partial_edge_tiles() {
        let w = RasterWorkload::new(20, 18, 16, vec![], vec![vec![], vec![], vec![], vec![]]);
        assert_eq!(w.tile_rect(1, 1), (16, 16, 20, 18));
        assert_eq!(w.tile_pixels(1, 1), 4 * 2);
    }

    #[test]
    fn total_pairs_sums_lists() {
        assert_eq!(workload_2x2().total_pairs(), 4);
    }

    #[test]
    fn blend_work_without_processed_uses_full_lists() {
        let w = workload_2x2();
        assert_eq!(w.blend_work(), ((2 + 1) + 1) * 256);
    }

    #[test]
    fn blend_work_with_processed() {
        let mut w = workload_2x2();
        w.set_processed(vec![1, 1, 0, 0]);
        assert_eq!(w.blend_work(), 2 * 256);
        assert_eq!(w.processed_count(0, 0), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds list length")]
    fn processed_cannot_exceed_list() {
        let mut w = workload_2x2();
        w.set_processed(vec![3, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn dangling_index_rejected() {
        let _ = RasterWorkload::new(16, 16, 16, vec![splat()], vec![vec![1]]);
    }

    #[test]
    fn list_stats() {
        let w = workload_2x2();
        assert_eq!(w.max_list_len(), 2);
        assert!((w.mean_list_len() - 1.0).abs() < 1e-9);
    }
}
