//! Floating-point operation accounting.
//!
//! Table II of the paper contrasts triangle and Gaussian rasterization by
//! the computational primitives of their four shared subtasks. Rather than
//! asserting those counts, the kernels in this crate are instrumented: every
//! FP operation in the per-(primitive, pixel) inner loops increments a
//! counter, and the Table II harness prints the measured averages.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Counts of floating-point operations by kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Additions and subtractions.
    pub add: u64,
    /// Multiplications.
    pub mul: u64,
    /// Divisions and reciprocals.
    pub div: u64,
    /// Exponentials (`e^x`).
    pub exp: u64,
    /// Comparisons (min/max/predicates).
    pub cmp: u64,
}

impl OpCounts {
    /// Zero counts.
    pub const fn new() -> Self {
        Self {
            add: 0,
            mul: 0,
            div: 0,
            exp: 0,
            cmp: 0,
        }
    }

    /// Total operations of all kinds.
    pub const fn total(&self) -> u64 {
        self.add + self.mul + self.div + self.exp + self.cmp
    }

    /// Every count multiplied by `n` — bulk-billing `n` identical events
    /// (e.g. the fixed off-screen cull bundle for every Gaussian a
    /// visible set dropped laterally).
    pub const fn scaled(&self, n: u64) -> OpCounts {
        OpCounts {
            add: self.add * n,
            mul: self.mul * n,
            div: self.div * n,
            exp: self.exp * n,
            cmp: self.cmp * n,
        }
    }

    /// Scales every count by an integer factor (for per-N averages).
    pub fn saturating_div(&self, n: u64) -> OpCounts {
        if n == 0 {
            return *self;
        }
        OpCounts {
            add: self.add / n,
            mul: self.mul / n,
            div: self.div / n,
            exp: self.exp / n,
            cmp: self.cmp / n,
        }
    }
}

impl Add for OpCounts {
    type Output = OpCounts;
    fn add(self, rhs: OpCounts) -> OpCounts {
        OpCounts {
            add: self.add + rhs.add,
            mul: self.mul + rhs.mul,
            div: self.div + rhs.div,
            exp: self.exp + rhs.exp,
            cmp: self.cmp + rhs.cmp,
        }
    }
}

impl AddAssign for OpCounts {
    fn add_assign(&mut self, rhs: OpCounts) {
        *self = *self + rhs;
    }
}

impl fmt::Display for OpCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ADD {} MUL {} DIV {} EXP {} CMP {}",
            self.add, self.mul, self.div, self.exp, self.cmp
        )
    }
}

/// The four subtasks shared by both rasterization modes (Table II rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Subtask {
    /// Subtask 1: translate the pixel into the primitive's frame.
    CoordinateShift,
    /// Subtask 2: intersection detection (triangles) / Gaussian probability
    /// computation (splats).
    Detection,
    /// Subtask 3: UV weight (triangles) / color weight (splats).
    WeightComputation,
    /// Subtask 4: min-depth color hold (triangles) / color accumulation
    /// (splats).
    Reduction,
}

impl Subtask {
    /// All subtasks in Table II order.
    pub const ALL: [Subtask; 4] = [
        Subtask::CoordinateShift,
        Subtask::Detection,
        Subtask::WeightComputation,
        Subtask::Reduction,
    ];

    /// Row label as printed in Table II.
    pub fn label(self) -> &'static str {
        match self {
            Subtask::CoordinateShift => "coordinate shift",
            Subtask::Detection => "detection / probability",
            Subtask::WeightComputation => "weight computation",
            Subtask::Reduction => "reduction",
        }
    }
}

/// Per-subtask operation tally for one rasterization mode.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubtaskCounts {
    counts: [OpCounts; 4],
    /// Number of (primitive, pixel) pairs the counts cover.
    pub pairs: u64,
}

impl SubtaskCounts {
    /// Zero counts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mutable tally for one subtask.
    #[inline]
    pub fn at(&mut self, s: Subtask) -> &mut OpCounts {
        &mut self.counts[s as usize]
    }

    /// Tally for one subtask.
    #[inline]
    pub fn of(&self, s: Subtask) -> OpCounts {
        self.counts[s as usize]
    }

    /// Sum across subtasks.
    pub fn total(&self) -> OpCounts {
        self.counts.iter().fold(OpCounts::new(), |acc, &c| acc + c)
    }

    /// Average ops per (primitive, pixel) pair, per subtask, rounded down.
    pub fn per_pair(&self, s: Subtask) -> OpCounts {
        self.of(s).saturating_div(self.pairs)
    }
}

impl AddAssign for SubtaskCounts {
    fn add_assign(&mut self, rhs: SubtaskCounts) {
        for i in 0..4 {
            self.counts[i] += rhs.counts[i];
        }
        self.pairs += rhs.pairs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let mut c = OpCounts::new();
        c += OpCounts {
            add: 2,
            mul: 3,
            div: 0,
            exp: 1,
            cmp: 4,
        };
        c += OpCounts {
            add: 1,
            mul: 1,
            div: 1,
            exp: 0,
            cmp: 0,
        };
        assert_eq!(c.total(), 13);
        assert_eq!(c.add, 3);
        assert_eq!(c.div, 1);
    }

    #[test]
    fn per_pair_average() {
        let mut s = SubtaskCounts::new();
        s.at(Subtask::Detection).add = 30;
        s.at(Subtask::Detection).exp = 10;
        s.pairs = 10;
        let avg = s.per_pair(Subtask::Detection);
        assert_eq!(avg.add, 3);
        assert_eq!(avg.exp, 1);
    }

    #[test]
    fn zero_pairs_divide_is_identity() {
        let c = OpCounts {
            add: 5,
            mul: 0,
            div: 0,
            exp: 0,
            cmp: 0,
        };
        assert_eq!(c.saturating_div(0), c);
    }

    #[test]
    fn subtask_labels_are_distinct() {
        let labels: std::collections::HashSet<_> = Subtask::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn subtask_counts_add_assign() {
        let mut a = SubtaskCounts::new();
        a.at(Subtask::Reduction).mul = 4;
        a.pairs = 2;
        let mut b = SubtaskCounts::new();
        b.at(Subtask::Reduction).mul = 6;
        b.pairs = 3;
        a += b;
        assert_eq!(a.of(Subtask::Reduction).mul, 10);
        assert_eq!(a.pairs, 5);
    }
}
