//! The static frame graph: the pipeline's stages as nodes with explicit
//! dependency edges, executed over the persistent [`WorkerPool`].
//!
//! # Why a graph
//!
//! A frame is not one monolithic pass but a short chain of heterogeneous
//! steps — parallel Stage-1 chunk batches, per-chunk key counting, serial
//! stitching and prefix sums, parallel key emission, the radix sort, CSR
//! assembly, tile rasterization. Written as straight-line code, every step
//! is a full barrier even where the data dependencies are narrower.
//! Modeling the steps as graph nodes makes the real dependencies explicit
//! and lets the planner *fuse* consecutive parallel nodes whose dependency
//! is element-wise (job `j` of the successor reads only job `j` of the
//! predecessor): both nodes run inside one pool dispatch, so a worker
//! finishing Stage-1 chunk 0 starts Stage-2 histogramming of chunk 0
//! while other workers are still preprocessing later chunks.
//!
//! # Node taxonomy
//!
//! * [`NodeKind::Pooled`] — `jobs` independent jobs fanned over the
//!   worker pool (one pool dispatch; the pool's fixed job boundaries keep
//!   the decomposition independent of the worker count).
//! * [`NodeKind::Inline`] — one serial step on the calling thread. A step
//!   that parallelizes *internally* (the radix sort, the tile pass) is
//!   still an `Inline` node: it issues its own pool dispatches from the
//!   calling thread, which a pooled job must never do (the caller holds
//!   the pool's dispatch slot for the duration of a `run`).
//!
//! Edges are declared at [`FrameGraph::add_node`] time and must point backward
//! (nodes are inserted in a topological order); an element-wise edge is
//! declared with [`FrameGraph::add_elementwise`] and is the planner's
//! only license to fuse.
//!
//! # The two modes
//!
//! [`GraphMode::Overlapped`] (default) fuses where element-wise edges
//! allow; [`GraphMode::Sequential`] runs every node as its own barrier in
//! insertion order — the strict A/B reference. Both modes execute the
//! same jobs with the same job boundaries in a deterministic order per
//! job index, so frames are **bit-identical** across modes and worker
//! counts ([`FrameGraph::standard`] documents the standard frame's
//! argument; `tests/graph_identity.rs` pins it).

use crate::pool::WorkerPool;

/// Index of a node in its [`FrameGraph`] (insertion order).
pub type NodeId = usize;

/// How a node executes — see the [module docs](self) for the taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// `jobs` independent jobs fanned over the worker pool.
    Pooled {
        /// Number of jobs in the dispatch (fixed, width-independent).
        jobs: usize,
    },
    /// One serial step on the calling thread (may itself dispatch pool
    /// work internally, e.g. the radix sort).
    Inline,
}

/// Execution strategy selected when compiling a graph into an
/// [`ExecutionPlan`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GraphMode {
    /// Fuse consecutive pooled nodes joined by element-wise edges into
    /// single dispatches, overlapping their jobs across workers. The
    /// default.
    #[default]
    Overlapped,
    /// Every node is its own barrier, in insertion order — the strict
    /// A/B reference for the overlapped mode.
    Sequential,
}

#[derive(Debug)]
struct NodeSpec {
    label: &'static str,
    kind: NodeKind,
    deps: Vec<NodeId>,
    /// `true` when this node's single dependency is element-wise: job
    /// `j` reads only job `j` of the predecessor, so the planner may run
    /// both inside one dispatch.
    elementwise: bool,
}

/// A static dependency graph of frame steps. Build one with
/// [`FrameGraph::add_node`] / [`FrameGraph::add_elementwise`] (nodes must be
/// inserted in a topological order), compile it with
/// [`FrameGraph::plan`], run the plan with [`execute`].
#[derive(Debug, Default)]
pub struct FrameGraph {
    nodes: Vec<NodeSpec>,
}

impl FrameGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The label a node was added with.
    pub fn label(&self, node: NodeId) -> &'static str {
        self.nodes[node].label
    }

    /// A node's kind.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.nodes[node].kind
    }

    /// A node's dependencies (node-level: the node runs only after every
    /// listed node has fully completed).
    pub fn deps(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node].deps
    }

    /// Adds a node depending (node-level) on `deps` and returns its id.
    ///
    /// # Panics
    /// Panics when a dependency does not point backward (nodes must be
    /// inserted in a topological order — an edge to a later node would
    /// make the insertion-order schedule invalid).
    pub fn add_node(&mut self, label: &'static str, kind: NodeKind, deps: &[NodeId]) -> NodeId {
        let id = self.nodes.len();
        for &d in deps {
            assert!(d < id, "dependency {d} of node {id} must point backward");
        }
        self.nodes.push(NodeSpec {
            label,
            kind,
            deps: deps.to_vec(),
            elementwise: false,
        });
        id
    }

    /// Adds a pooled node whose **single** dependency `dep` is
    /// element-wise: job `j` of the new node reads only job `j` of
    /// `dep`'s output. This is the planner's license to fuse the two
    /// nodes into one dispatch in [`GraphMode::Overlapped`].
    ///
    /// # Panics
    /// Panics when `dep` is not an earlier pooled node with exactly
    /// `jobs` jobs (element-wise fusion requires matching job spaces).
    pub fn add_elementwise(&mut self, label: &'static str, jobs: usize, dep: NodeId) -> NodeId {
        let id = self.nodes.len();
        assert!(d_is_pooled_with(&self.nodes, dep, jobs), "element-wise dependency {dep} of node {id} must be an earlier pooled node with {jobs} jobs");
        self.nodes.push(NodeSpec {
            label,
            kind: NodeKind::Pooled { jobs },
            deps: [dep].to_vec(),
            elementwise: true,
        });
        id
    }

    /// Compiles the graph into an [`ExecutionPlan`] for `mode`.
    ///
    /// Steps run in node-insertion order (which is topological by
    /// construction), each step a full barrier. In
    /// [`GraphMode::Overlapped`], a pooled node whose element-wise
    /// dependency is already part of the immediately preceding pooled
    /// step (and whose job count matches) is fused into that step
    /// instead of opening a new one: within the fused dispatch, job `j`
    /// runs every chained node at index `j` in chain order, so the
    /// element-wise dependency is honored per job while jobs of
    /// different nodes overlap across workers. Node-level dependencies
    /// of later nodes stay satisfied because the fused dispatch still
    /// completes *all* chained nodes before the next step starts.
    pub fn plan(&self, mode: GraphMode) -> ExecutionPlan {
        let mut steps: Vec<Step> = Vec::new();
        for (id, node) in self.nodes.iter().enumerate() {
            match node.kind {
                NodeKind::Inline => steps.push(Step::Inline(id)),
                NodeKind::Pooled { jobs } => {
                    if mode == GraphMode::Overlapped && node.elementwise {
                        if let Some(Step::Pooled {
                            nodes,
                            jobs: chain_jobs,
                        }) = steps.last_mut()
                        {
                            if *chain_jobs == jobs && nodes.contains(&node.deps[0]) {
                                nodes.push(id);
                                continue;
                            }
                        }
                    }
                    steps.push(Step::Pooled {
                        nodes: [id].to_vec(),
                        jobs,
                    });
                }
            }
        }
        ExecutionPlan { steps }
    }

    /// The standard frame graph over `n_chunks` Stage-1 chunks — the
    /// graph [`crate::pipeline::render_with_pool`] executes. Node ids
    /// are the [`frame`] constants, stable for every `n_chunks`:
    ///
    /// ```text
    /// S1 ═(element-wise)═> COUNT ──> PREFIX ─┐
    ///  │                                     ├─> EMIT ─> SORT ─> CSR ─> RASTER
    ///  └────────────────────> STITCH ────────┘
    /// ```
    ///
    /// * `S1` (pooled, `n_chunks` jobs) — preprocess one Gaussian chunk;
    /// * `COUNT` (pooled, element-wise on `S1`) — count the packed keys
    ///   the chunk's splats will emit (fused into `S1`'s dispatch in
    ///   overlapped mode: Stage-1 chunks overlap Stage-2 histogramming);
    /// * `STITCH` (inline) — concatenate chunk splats in index order and
    ///   accumulate the Stage-1 statistics;
    /// * `PREFIX` (inline) — prefix-sum the counts into per-chunk key
    ///   ranges and size the key/value buffers;
    /// * `EMIT` (pooled) — write each chunk's packed keys into its
    ///   disjoint range, in the same splat-major order as a serial pass;
    /// * `SORT` (inline) — the parallel LSD radix sort;
    /// * `CSR` (inline) — per-tile offsets from the sorted keys;
    /// * `RASTER` (inline) — the per-tile Stage-3 pass.
    pub fn standard(n_chunks: usize) -> FrameGraph {
        let mut g = FrameGraph::new();
        let s1 = g.add_node("stage1", NodeKind::Pooled { jobs: n_chunks }, &[]);
        let count = g.add_elementwise("count", n_chunks, s1);
        let stitch = g.add_node("stitch", NodeKind::Inline, &[s1]);
        let prefix = g.add_node("prefix", NodeKind::Inline, &[count]);
        let emit = g.add_node(
            "emit",
            NodeKind::Pooled { jobs: n_chunks },
            &[stitch, prefix],
        );
        let sort = g.add_node("sort", NodeKind::Inline, &[emit]);
        let csr = g.add_node("csr", NodeKind::Inline, &[sort]);
        let raster = g.add_node("raster", NodeKind::Inline, &[csr]);
        debug_assert_eq!(
            [s1, count, stitch, prefix, emit, sort, csr, raster],
            [
                frame::S1,
                frame::COUNT,
                frame::STITCH,
                frame::PREFIX,
                frame::EMIT,
                frame::SORT,
                frame::CSR,
                frame::RASTER
            ]
        );
        g
    }
}

/// `true` when `dep` is a pooled node with exactly `jobs` jobs.
fn d_is_pooled_with(nodes: &[NodeSpec], dep: NodeId, jobs: usize) -> bool {
    matches!(
        nodes.get(dep),
        Some(NodeSpec {
            kind: NodeKind::Pooled { jobs: j },
            ..
        }) if *j == jobs
    )
}

/// Node ids of [`FrameGraph::standard`], stable across frames and chunk
/// counts. [`crate::pipeline`]'s frame runner matches on these.
pub mod frame {
    use super::NodeId;

    /// Stage-1 chunk preprocessing (pooled).
    pub const S1: NodeId = 0;
    /// Per-chunk key counting (pooled, element-wise on [`S1`]).
    pub const COUNT: NodeId = 1;
    /// Chunk-output stitching (inline).
    pub const STITCH: NodeId = 2;
    /// Key-range prefix sums + buffer sizing (inline).
    pub const PREFIX: NodeId = 3;
    /// Parallel packed-key emission (pooled).
    pub const EMIT: NodeId = 4;
    /// The radix sort (inline; internally pooled).
    pub const SORT: NodeId = 5;
    /// CSR offset assembly (inline).
    pub const CSR: NodeId = 6;
    /// The per-tile Stage-3 pass (inline; internally pooled).
    pub const RASTER: NodeId = 7;
}

/// One step of an [`ExecutionPlan`].
#[derive(Clone, Debug, PartialEq, Eq)]
enum Step {
    /// One pool dispatch of `jobs` jobs; job `j` runs every node in
    /// `nodes` (a fused chain) at index `j`, in chain order.
    Pooled { nodes: Vec<NodeId>, jobs: usize },
    /// One serial node on the calling thread.
    Inline(NodeId),
}

/// A compiled, immediately executable schedule for a [`FrameGraph`] —
/// the product of [`FrameGraph::plan`], consumed by [`execute`].
/// Reusable across frames (cache it per `(n_chunks, mode)`; see
/// [`PlanCache`]) so steady-state execution does not rebuild it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecutionPlan {
    steps: Vec<Step>,
}

impl ExecutionPlan {
    /// Number of steps (= barriers) the plan executes.
    pub fn barriers(&self) -> usize {
        self.steps.len()
    }

    /// Number of pool dispatches the plan issues directly (inline nodes
    /// may add their own internally).
    pub fn dispatches(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, Step::Pooled { .. }))
            .count()
    }
}

/// The frame state a plan executes against: pooled jobs run on pool
/// workers and must confine themselves to per-job disjoint state (hence
/// `&self`); inline nodes run on the calling thread with full mutable
/// access.
pub trait GraphRunner {
    /// Runs job `job` of pooled node `node`. Called concurrently from
    /// pool workers; implementations must only touch state owned by
    /// `(node, job)`.
    fn pooled_job(&self, node: NodeId, job: usize);

    /// Runs inline node `node` on the calling thread.
    fn inline_node(&mut self, node: NodeId);
}

/// Executes a compiled plan over `pool`: steps in order, each a full
/// barrier; pooled steps as one `pool.run` dispatch each (fused chains
/// run all their nodes per job index, in chain order). Allocation-free —
/// steady-state frames pay dispatches, not heap traffic — and spawn-free:
/// the persistent pool's workers are parked between dispatches, never
/// respawned (re-introducing a per-frame spawn here fails the deep
/// checker's hot-path purity rule).
// gaurast-check: hot-path
pub fn execute<R: GraphRunner + Sync>(plan: &ExecutionPlan, pool: &WorkerPool, runner: &mut R) {
    for step in &plan.steps {
        match step {
            Step::Inline(node) => runner.inline_node(*node),
            Step::Pooled { nodes, jobs } => {
                let r: &R = &*runner;
                pool.run(*jobs, |job| {
                    for &node in nodes {
                        r.pooled_job(node, job);
                    }
                });
            }
        }
    }
}

/// A one-slot cache of the last compiled [`ExecutionPlan`], keyed by
/// `(n_chunks, mode)` — steady-state frames over a fixed scene reuse the
/// plan instead of reallocating it ([`crate::FrameArena`] holds one).
#[derive(Debug, Default)]
pub struct PlanCache {
    key: Option<(usize, GraphMode)>,
    plan: ExecutionPlan,
}

impl PlanCache {
    /// A fresh, empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The plan for [`FrameGraph::standard`]`(n_chunks)` under `mode`,
    /// moved out of the cache — rebuilt only when the key changed. Hand
    /// it back with [`PlanCache::restore`] after the frame.
    pub fn take(&mut self, n_chunks: usize, mode: GraphMode) -> ExecutionPlan {
        if self.key.take() != Some((n_chunks, mode)) {
            self.plan = FrameGraph::standard(n_chunks).plan(mode);
        }
        std::mem::take(&mut self.plan)
    }

    /// Returns a plan taken with [`PlanCache::take`] for reuse by the
    /// next frame.
    pub fn restore(&mut self, n_chunks: usize, mode: GraphMode, plan: ExecutionPlan) {
        self.key = Some((n_chunks, mode));
        self.plan = plan;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn standard_graph_shape_and_labels() {
        let g = FrameGraph::standard(5);
        assert_eq!(g.len(), 8);
        assert_eq!(g.label(frame::S1), "stage1");
        assert_eq!(g.label(frame::RASTER), "raster");
        assert_eq!(g.kind(frame::S1), NodeKind::Pooled { jobs: 5 });
        assert_eq!(g.kind(frame::SORT), NodeKind::Inline);
        assert_eq!(g.deps(frame::EMIT), &[frame::STITCH, frame::PREFIX]);
        assert_eq!(g.deps(frame::COUNT), &[frame::S1]);
    }

    #[test]
    fn overlapped_plan_fuses_s1_and_count() {
        let plan = FrameGraph::standard(7).plan(GraphMode::Overlapped);
        // S1+COUNT fused, EMIT on its own: 2 dispatches, 7 barriers.
        assert_eq!(plan.dispatches(), 2);
        assert_eq!(plan.barriers(), 7);
        assert_eq!(
            plan.steps[0],
            Step::Pooled {
                nodes: [frame::S1, frame::COUNT].to_vec(),
                jobs: 7
            }
        );
    }

    #[test]
    fn sequential_plan_is_one_barrier_per_node() {
        let plan = FrameGraph::standard(7).plan(GraphMode::Sequential);
        assert_eq!(plan.barriers(), 8);
        assert_eq!(plan.dispatches(), 3);
        assert_eq!(
            plan.steps[0],
            Step::Pooled {
                nodes: [frame::S1].to_vec(),
                jobs: 7
            }
        );
    }

    #[test]
    fn fusion_requires_matching_job_counts() {
        // An elementwise node always matches its dep's job count (the
        // constructor enforces it), but an intervening inline node must
        // break the chain.
        let mut g = FrameGraph::new();
        let a = g.add_node("a", NodeKind::Pooled { jobs: 4 }, &[]);
        g.add_node("mid", NodeKind::Inline, &[a]);
        let mut g2 = FrameGraph::new();
        let a2 = g2.add_node("a", NodeKind::Pooled { jobs: 4 }, &[]);
        g2.add_node("mid", NodeKind::Inline, &[a2]);
        g2.add_elementwise("b", 4, a2);
        let plan = g2.plan(GraphMode::Overlapped);
        assert_eq!(plan.dispatches(), 2, "inline step must break the chain");
        assert_eq!(plan.barriers(), 3);
    }

    #[test]
    fn three_node_chains_fuse_into_one_dispatch() {
        let mut g = FrameGraph::new();
        let a = g.add_node("a", NodeKind::Pooled { jobs: 3 }, &[]);
        let b = g.add_elementwise("b", 3, a);
        let _c = g.add_elementwise("c", 3, b);
        let plan = g.plan(GraphMode::Overlapped);
        assert_eq!(plan.dispatches(), 1);
        assert_eq!(plan.barriers(), 1);
    }

    #[test]
    #[should_panic(expected = "must point backward")]
    fn forward_edges_are_rejected() {
        let mut g = FrameGraph::new();
        g.add_node("bad", NodeKind::Inline, &[3]);
    }

    #[test]
    #[should_panic(expected = "element-wise dependency")]
    fn elementwise_edge_to_inline_node_is_rejected() {
        let mut g = FrameGraph::new();
        let a = g.add_node("a", NodeKind::Inline, &[]);
        g.add_elementwise("b", 4, a);
    }

    /// Execution-order recorder: proves barriers and per-job chain order.
    struct Recorder {
        /// (node, job) pairs in pooled completion order (atomic slot per
        /// event; order across workers is not asserted).
        pooled: Vec<AtomicUsize>,
        cursor: AtomicUsize,
        inline_seen: Vec<NodeId>,
    }

    impl GraphRunner for Recorder {
        fn pooled_job(&self, node: NodeId, job: usize) {
            let at = self.cursor.fetch_add(1, Ordering::Relaxed);
            self.pooled[at].store(node * 100 + job, Ordering::Relaxed);
        }
        fn inline_node(&mut self, node: NodeId) {
            self.inline_seen.push(node);
        }
    }

    #[test]
    fn execute_runs_every_job_and_honors_barriers() {
        let mut g = FrameGraph::new();
        let a = g.add_node("a", NodeKind::Pooled { jobs: 4 }, &[]);
        let b = g.add_elementwise("b", 4, a);
        let c = g.add_node("c", NodeKind::Inline, &[b]);
        let d = g.add_node("d", NodeKind::Pooled { jobs: 2 }, &[c]);
        for mode in [GraphMode::Sequential, GraphMode::Overlapped] {
            let plan = g.plan(mode);
            let pool = WorkerPool::new(3);
            let mut rec = Recorder {
                pooled: (0..10).map(|_| AtomicUsize::new(usize::MAX)).collect(),
                cursor: AtomicUsize::new(0),
                inline_seen: Vec::new(),
            };
            execute(&plan, &pool, &mut rec);
            assert_eq!(rec.cursor.load(Ordering::Relaxed), 10);
            assert_eq!(rec.inline_seen, vec![c]);
            let mut events: Vec<usize> = rec
                .pooled
                .iter()
                .map(|e| e.load(Ordering::Relaxed))
                .collect();
            // d's jobs (ids 300, 301) come after the c barrier, hence
            // after every a/b job in the recording.
            assert!(events[8] >= 300 && events[9] >= 300);
            events.sort_unstable();
            let expected: Vec<usize> = (0..4)
                .map(|j| a * 100 + j)
                .chain((0..4).map(|j| b * 100 + j))
                .chain((0..2).map(|j| d * 100 + j))
                .collect();
            assert_eq!(events, expected, "every job exactly once ({mode:?})");
        }
    }

    #[test]
    fn plan_cache_rebuilds_only_on_key_change() {
        let mut cache = PlanCache::new();
        let p1 = cache.take(6, GraphMode::Overlapped);
        assert_eq!(p1.dispatches(), 2);
        cache.restore(6, GraphMode::Overlapped, p1.clone());
        let p2 = cache.take(6, GraphMode::Overlapped);
        assert_eq!(p1, p2);
        cache.restore(6, GraphMode::Overlapped, p2);
        let p3 = cache.take(6, GraphMode::Sequential);
        assert_eq!(p3.barriers(), 8, "mode change must rebuild");
        // Taking twice without restoring must rebuild, not hand out the
        // emptied slot.
        let p4 = cache.take(6, GraphMode::Sequential);
        assert_eq!(p4.barriers(), 8);
    }
}
