//! Stage 2 — depth sorting.
//!
//! The reference pipeline sorts (tile, depth) keys with a GPU radix sort so
//! that every tile sees its splats front-to-back. This module provides the
//! depth ordering; [`crate::tile`] combines it with tile binning.
//!
//! In the tile-major parallel pipeline
//! ([`crate::rasterize::rasterize_with`]) each per-tile list is sorted by
//! [`sort_indices_by_depth`] *inside its own tile job* rather than in a
//! serial Stage-2 loop; the sort is stable, so the order — and therefore
//! the blended image — is identical wherever it runs.

use crate::preprocess::Splat2D;

/// Returns the indices of `splats` ordered by ascending depth (front to
/// back). The sort is stable: equal depths keep their original order, which
/// matches the reference implementation's radix sort on biased-float keys.
///
/// # Example
/// ```
/// use gaurast_render::sort::depth_order;
/// use gaurast_render::Splat2D;
/// use gaurast_math::{Vec2, Vec3};
///
/// let mk = |d: f32| Splat2D {
///     mean: Vec2::zero(), conic: [1.0, 0.0, 1.0], depth: d,
///     color: Vec3::one(), opacity: 0.5, radius: 1.0, source: 0,
/// };
/// let splats = vec![mk(3.0), mk(1.0), mk(2.0)];
/// assert_eq!(depth_order(&splats), vec![1, 2, 0]);
/// ```
pub fn depth_order(splats: &[Splat2D]) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..splats.len() as u32).collect();
    sort_indices_by_depth(&mut idx, splats);
    idx
}

/// Stably sorts an index list in place by the depth of the referenced
/// splats. Shared by the global order and the per-tile lists.
///
/// # Panics
/// Panics when an index is out of bounds for `splats`.
pub fn sort_indices_by_depth(indices: &mut [u32], splats: &[Splat2D]) {
    // Depths are finite and positive by construction (near-plane cull), so
    // total_cmp on the raw float is a strict weak order.
    indices.sort_by(|&a, &b| {
        splats[a as usize]
            .depth
            .total_cmp(&splats[b as usize].depth)
    });
}

/// `true` when `indices` references `splats` in non-decreasing depth order —
/// the invariant Stage 3 and the hardware dispatcher rely on.
pub fn is_depth_sorted(indices: &[u32], splats: &[Splat2D]) -> bool {
    indices
        .windows(2)
        .all(|w| splats[w[0] as usize].depth <= splats[w[1] as usize].depth)
}

/// Statistics of an incremental re-sort.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResortStats {
    /// Elements whose position changed relative to the previous order.
    pub moved: usize,
    /// Elements total.
    pub total: usize,
}

impl ResortStats {
    /// Fraction of elements that kept their position — the temporal
    /// coherence the incremental sorter exploits.
    pub fn coherence(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        1.0 - self.moved as f64 / self.total as f64
    }
}

/// Re-sorts splats of a *new* frame starting from the previous frame's
/// order — an extension beyond the paper exploiting temporal coherence:
/// consecutive viewpoints move smoothly, so the previous depth order is
/// almost sorted and an adaptive pass (insertion-style) finishes in near
/// linear time instead of `N log N`.
///
/// `prev_order` must be a permutation of splat indices of the *same* splat
/// set (matched by `source` ids in practice; here by index). Splats absent
/// from `prev_order` are appended before sorting.
///
/// Returns the new order plus movement statistics.
pub fn incremental_depth_order(prev_order: &[u32], splats: &[Splat2D]) -> (Vec<u32>, ResortStats) {
    let mut order: Vec<u32> = prev_order
        .iter()
        .copied()
        .filter(|&i| (i as usize) < splats.len())
        .collect();
    let mut seen = vec![false; splats.len()];
    for &i in &order {
        seen[i as usize] = true;
    }
    for (i, s) in seen.iter().enumerate() {
        if !s {
            order.push(i as u32);
        }
    }

    // Adaptive binary-insertion pass: for nearly sorted input this does
    // O(N) comparisons plus short moves.
    let before = order.clone();
    for i in 1..order.len() {
        let key = order[i];
        let key_depth = splats[key as usize].depth;
        // Fast path: already in place (the common, coherent case).
        if splats[order[i - 1] as usize].depth <= key_depth {
            continue;
        }
        let pos = order[..i].partition_point(|&j| splats[j as usize].depth <= key_depth);
        order.copy_within(pos..i, pos + 1);
        order[pos] = key;
    }

    let moved = before.iter().zip(&order).filter(|(a, b)| a != b).count()
        + order.len().saturating_sub(before.len());
    let stats = ResortStats {
        moved,
        total: order.len(),
    };
    (order, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaurast_math::{Vec2, Vec3};

    fn splat(depth: f32, source: u32) -> Splat2D {
        Splat2D {
            mean: Vec2::zero(),
            conic: [1.0, 0.0, 1.0],
            depth,
            color: Vec3::one(),
            opacity: 0.5,
            radius: 1.0,
            source,
        }
    }

    #[test]
    fn orders_by_depth() {
        let splats = vec![splat(5.0, 0), splat(1.0, 1), splat(3.0, 2)];
        let order = depth_order(&splats);
        assert_eq!(order, vec![1, 2, 0]);
        assert!(is_depth_sorted(&order, &splats));
    }

    #[test]
    fn stable_for_equal_depths() {
        let splats = vec![splat(2.0, 0), splat(2.0, 1), splat(1.0, 2), splat(2.0, 3)];
        let order = depth_order(&splats);
        assert_eq!(order, vec![2, 0, 1, 3]);
    }

    #[test]
    fn empty_input() {
        let order = depth_order(&[]);
        assert!(order.is_empty());
        assert!(is_depth_sorted(&order, &[]));
    }

    #[test]
    fn detects_unsorted() {
        let splats = vec![splat(1.0, 0), splat(2.0, 1)];
        assert!(!is_depth_sorted(&[1, 0], &splats));
        assert!(is_depth_sorted(&[0, 1], &splats));
    }

    #[test]
    fn subset_sort() {
        let splats = vec![splat(9.0, 0), splat(1.0, 1), splat(5.0, 2), splat(3.0, 3)];
        let mut subset = vec![0u32, 2, 3];
        sort_indices_by_depth(&mut subset, &splats);
        assert_eq!(subset, vec![3, 2, 0]);
    }

    #[test]
    fn incremental_sort_from_scratch_matches_full_sort() {
        let splats: Vec<Splat2D> = (0..50).map(|i| splat(((i * 37) % 50) as f32, i)).collect();
        let (order, stats) = incremental_depth_order(&[], &splats);
        assert!(is_depth_sorted(&order, &splats));
        assert_eq!(order.len(), 50);
        assert_eq!(stats.total, 50);
    }

    #[test]
    fn incremental_sort_exploits_coherence() {
        // Perturb depths slightly (a small camera move): almost nothing
        // moves, coherence is high.
        let mut splats: Vec<Splat2D> = (0..200).map(|i| splat(i as f32, i)).collect();
        let (prev, _) = incremental_depth_order(&[], &splats);
        for (i, s) in splats.iter_mut().enumerate() {
            s.depth += ((i * 7919) % 13) as f32 * 1e-4; // << inter-splat gap
        }
        let (order, stats) = incremental_depth_order(&prev, &splats);
        assert!(is_depth_sorted(&order, &splats));
        assert!(stats.coherence() > 0.95, "coherence {}", stats.coherence());
    }

    #[test]
    fn incremental_sort_handles_large_moves() {
        let mut splats: Vec<Splat2D> = (0..100).map(|i| splat(i as f32, i)).collect();
        let (prev, _) = incremental_depth_order(&[], &splats);
        // One splat jumps from the back to the front.
        splats[99].depth = -1.0;
        let (order, stats) = incremental_depth_order(&prev, &splats);
        assert!(is_depth_sorted(&order, &splats));
        assert_eq!(order[0], 99);
        assert!(stats.moved >= 1);
    }

    #[test]
    fn incremental_sort_absorbs_new_splats() {
        let splats: Vec<Splat2D> = (0..30).map(|i| splat((30 - i) as f32, i)).collect();
        // Previous order only knew the first 10.
        let (prev, _) = incremental_depth_order(&[], &splats[..10]);
        let (order, _) = incremental_depth_order(&prev, &splats);
        assert!(is_depth_sorted(&order, &splats));
        assert_eq!(order.len(), 30);
    }

    #[test]
    fn incremental_sort_drops_stale_indices() {
        let splats: Vec<Splat2D> = (0..5).map(|i| splat(i as f32, i)).collect();
        // Previous order references splats that no longer exist.
        let prev = vec![9u32, 2, 0, 7, 1];
        let (order, _) = incremental_depth_order(&prev, &splats);
        assert!(is_depth_sorted(&order, &splats));
        assert_eq!(order.len(), 5);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }
}
