//! Stage 2 — depth sorting.
//!
//! The reference pipeline duplicates every splat into one packed
//! `(tile, depth)` key per covered tile and orders the whole key array with
//! a single stable radix sort, so every tile sees its splats front-to-back.
//! This module provides both halves of that machinery:
//!
//! * **key packing** — [`pack_key`] builds the 64-bit sort key
//!   `tile_id << 32 | depth_bits`, where [`depth_key_bits`] is the
//!   monotonic ordered-`u32` mapping of the camera depth (bit-compatible
//!   with [`f32::total_cmp`], so radix order equals comparison order
//!   exactly);
//! * **the sorter** — [`RadixSorter`], a reusable least-significant-digit
//!   radix sorter over `(u64 key, u32 value)` pairs with a serial exact
//!   path and a [`WorkerPool`]-parallel histogram/scatter path that are
//!   bit-identical at every worker count.
//!
//! The comparison-based helpers ([`sort_indices_by_depth`] and friends)
//! remain as the legacy Stage-2 escape hatch
//! ([`crate::pipeline::Stage2Mode::LegacyPerTile`]) and as the oracle the
//! radix path is proptested against.

use crate::pool::WorkerPool;
use crate::preprocess::Splat2D;

/// Maps a depth to the ordered-`u32` key fragment: `a < b` under
/// [`f32::total_cmp`] **iff** `depth_key_bits(a) < depth_key_bits(b)`, for
/// every bit pattern including negatives, zeros, subnormals, infinities and
/// NaNs. Camera depths are finite and positive by construction (near-plane
/// cull), for which the mapping reduces to `bits | 0x8000_0000` — but the
/// full total-order flip keeps the radix order equal to the comparison
/// order even for adversarial inputs.
#[inline]
pub fn depth_key_bits(depth: f32) -> u32 {
    let b = depth.to_bits();
    if b & 0x8000_0000 != 0 {
        !b
    } else {
        b | 0x8000_0000
    }
}

/// Packs a linear tile index and a depth into the 64-bit Stage-2 sort key
/// `tile_id << 32 | depth_bits`. Sorting the packed keys groups duplicates
/// tile-major and orders each tile's run front-to-back in one pass.
#[inline]
pub fn pack_key(tile: u32, depth: f32) -> u64 {
    (u64::from(tile) << 32) | u64::from(depth_key_bits(depth))
}

/// The linear tile index a packed key belongs to.
#[inline]
pub fn key_tile(key: u64) -> u32 {
    (key >> 32) as u32
}

/// Keys per parallel radix chunk. The chunking is *fixed-size* (like
/// [`crate::preprocess::PREPROCESS_CHUNK`]): per-chunk histograms and
/// scatter regions depend only on the data, never on the worker count, so
/// the sorted output is bit-identical for every pool width — and identical
/// to the serial path, which runs the same chunks in index order.
pub const RADIX_CHUNK: usize = 1 << 15;

/// Digit width of the LSD radix sort (one byte per pass).
const RADIX_BITS: u32 = 8;
const RADIX_BUCKETS: usize = 1 << RADIX_BITS;

/// A reusable least-significant-digit radix sorter over
/// `(u64 key, u32 value)` pairs.
///
/// The sorter owns its scratch (ping-pong buffers plus per-chunk
/// histograms), so a session-held instance makes steady-state sorts
/// allocation-free. Each byte digit runs as:
///
/// 1. **histogram** — every [`RADIX_CHUNK`]-sized chunk counts its digit
///    occurrences independently (one pool job per chunk);
/// 2. **placement** — an exclusive prefix sum over `(bucket, chunk)` on the
///    calling thread assigns every chunk a contiguous, disjoint output
///    range per bucket;
/// 3. **scatter** — each chunk writes its pairs into its own ranges (one
///    pool job per chunk). Equal keys land by (chunk index, offset in
///    chunk) = original position, so every pass — and the whole sort — is
///    stable.
///
/// Digits on which all keys agree are detected from the histogram and
/// skipped without moving data; packed frame keys typically activate four
/// to five of the eight passes.
#[derive(Clone, Debug, Default)]
pub struct RadixSorter {
    tmp_keys: Vec<u64>,
    tmp_vals: Vec<u32>,
    /// Per-chunk histograms, `chunks × RADIX_BUCKETS`, reused as the
    /// placement table in step 2.
    hist: Vec<u32>,
}

/// Raw-pointer pair handing scatter jobs disjoint write slots of the
/// output buffers (see the safety argument in [`RadixSorter::sort_pairs`]).
struct ScatterOut {
    keys: *mut u64,
    vals: *mut u32,
}
// SAFETY: shared across workers only to write disjoint index sets — the
// placement table assigns every (chunk, bucket) a contiguous output range
// no other chunk receives, and each chunk job writes only its own ranges.
unsafe impl Sync for ScatterOut {}

/// Raw pointer into the per-chunk histogram table; chunk job `c`
/// exclusively owns rows `[c * RADIX_BUCKETS, (c + 1) * RADIX_BUCKETS)`.
struct HistOut(*mut u32);
// SAFETY: shared across workers only to hand out disjoint per-chunk rows.
unsafe impl Sync for HistOut {}

impl RadixSorter {
    /// A sorter with empty scratch (buffers grow on first use and are
    /// retained afterwards).
    pub fn new() -> Self {
        Self::default()
    }

    /// Stably sorts the `(keys, values)` pairs in place by ascending key.
    ///
    /// The serial pool runs the exact same chunk decomposition on the
    /// calling thread, so the result is bit-identical for every pool
    /// width.
    ///
    /// # Panics
    /// Panics when `keys` and `values` have different lengths.
    pub fn sort_pairs(&mut self, keys: &mut Vec<u64>, values: &mut Vec<u32>, pool: &WorkerPool) {
        self.sort_pairs_chunked(keys, values, pool, RADIX_CHUNK);
    }

    /// [`RadixSorter::sort_pairs`] with an explicit chunk size.
    ///
    /// Production always passes [`RADIX_CHUNK`] (the determinism contract
    /// fixes the chunking independently of the worker count); the explicit
    /// parameter exists so the `gaurast-check` model tests can shrink the
    /// histogram/scatter protocol to a handful of chunks and exhaustively
    /// interleave the *same code* that runs in production
    /// (`crates/check/tests/model.rs`).
    ///
    /// # Panics
    /// Panics when `keys` and `values` have different lengths or when
    /// `chunk` is zero.
    // gaurast-check: hot-path
    pub fn sort_pairs_chunked(
        &mut self,
        keys: &mut Vec<u64>,
        values: &mut Vec<u32>,
        pool: &WorkerPool,
        chunk: usize,
    ) {
        assert_eq!(keys.len(), values.len(), "one value per key");
        assert!(chunk > 0, "chunk size must be positive");
        let n = keys.len();
        if n <= 1 {
            return;
        }
        assert!(
            n <= u32::MAX as usize,
            "radix placement offsets are u32: at most 2^32-1 pairs"
        );
        let chunks = n.div_ceil(chunk);
        self.tmp_keys.resize(n, 0);
        self.tmp_vals.resize(n, 0);
        self.hist.resize(chunks * RADIX_BUCKETS, 0);

        // One read pass finds the bits that actually vary across keys:
        // a digit whose byte never varies needs no histogram and no
        // scatter. Packed frame keys (narrow tile range, clustered depth
        // exponents, zero high bytes) typically activate 4–5 of the 8
        // digits.
        let first = keys[0];
        let mut varying = 0u64;
        for &k in keys.iter() {
            varying |= k ^ first;
        }

        // Ping-pong state: `flipped` tracks whether the live data currently
        // sits in the scratch buffers.
        let mut flipped = false;
        for pass in 0..(u64::BITS / RADIX_BITS) {
            let shift = pass * RADIX_BITS;
            if (varying >> shift) & 0xFF == 0 {
                // Every key agrees on this digit: nothing to move.
                continue;
            }
            let (src_keys, src_vals, dst_keys, dst_vals) = if flipped {
                (
                    &mut self.tmp_keys,
                    &mut self.tmp_vals,
                    &mut *keys,
                    &mut *values,
                )
            } else {
                (
                    &mut *keys,
                    &mut *values,
                    &mut self.tmp_keys,
                    &mut self.tmp_vals,
                )
            };

            // 1. Per-chunk histograms of this digit (each chunk job owns
            // its own RADIX_BUCKETS-row of the table — no allocation).
            let hist = &mut self.hist;
            hist.fill(0);
            {
                let src = &src_keys[..];
                let out = HistOut(hist.as_mut_ptr());
                let out = &out;
                pool.run(chunks, |c| {
                    let h = crate::race_region!("per-chunk histogram row", {
                        crate::race_write!(out.0.wrapping_add(c * RADIX_BUCKETS), RADIX_BUCKETS);
                        // SAFETY: chunk `c` exclusively owns its histogram
                        // row (`run` yields each chunk index exactly once),
                        // and the table was resized to
                        // `chunks * RADIX_BUCKETS` above.
                        unsafe {
                            std::slice::from_raw_parts_mut(
                                out.0.add(c * RADIX_BUCKETS),
                                RADIX_BUCKETS,
                            )
                        }
                    });
                    let lo = c * chunk;
                    let hi = (lo + chunk).min(n);
                    for &k in &src[lo..hi] {
                        h[((k >> shift) & 0xFF) as usize] += 1;
                    }
                });
            }

            // 2. Exclusive prefix over (bucket, chunk): hist[c][b] becomes
            // chunk c's first output index for digit b.
            let mut running = 0u32;
            for b in 0..RADIX_BUCKETS {
                for c in 0..chunks {
                    let slot = &mut hist[c * RADIX_BUCKETS + b];
                    let count = *slot;
                    *slot = running;
                    running += count;
                }
            }

            // 3. Stable parallel scatter: chunk c writes pair i to
            // cursor[digit]++, starting from its placement offsets.
            {
                let src_k = &src_keys[..];
                let src_v = &src_vals[..];
                let hist = &hist[..];
                let out = ScatterOut {
                    keys: dst_keys.as_mut_ptr(),
                    vals: dst_vals.as_mut_ptr(),
                };
                let out = &out;
                pool.run(chunks, |c| {
                    let lo = c * chunk;
                    let hi = (lo + chunk).min(n);
                    let mut cursor = [0u32; RADIX_BUCKETS];
                    cursor.copy_from_slice(&hist[c * RADIX_BUCKETS..(c + 1) * RADIX_BUCKETS]);
                    for i in lo..hi {
                        let k = src_k[i];
                        let b = ((k >> shift) & 0xFF) as usize;
                        let at = cursor[b] as usize;
                        cursor[b] += 1;
                        debug_assert!(at < n);
                        crate::race_region!("disjoint scatter slots", {
                            crate::race_write!(out.keys.wrapping_add(at), 1);
                            crate::race_write!(out.vals.wrapping_add(at), 1);
                            // SAFETY: the placement table gives every
                            // (chunk, bucket) a contiguous range disjoint
                            // from all others (exclusive prefix over exact
                            // counts), the cursor stays inside that range,
                            // and `at < n` bounds both destination buffers,
                            // which were resized to `n` above.
                            unsafe {
                                *out.keys.add(at) = k;
                                *out.vals.add(at) = src_v[i];
                            }
                        });
                    }
                });
            }
            flipped = !flipped;
        }

        if flipped {
            std::mem::swap(keys, &mut self.tmp_keys);
            std::mem::swap(values, &mut self.tmp_vals);
        }
        debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }
}

/// Returns the indices of `splats` ordered by ascending depth (front to
/// back). The sort is stable: equal depths keep their original order, which
/// matches the reference implementation's radix sort on biased-float keys.
///
/// # Example
/// ```
/// use gaurast_render::sort::depth_order;
/// use gaurast_render::Splat2D;
/// use gaurast_math::{Vec2, Vec3};
///
/// let mk = |d: f32| Splat2D {
///     mean: Vec2::zero(), conic: [1.0, 0.0, 1.0], depth: d,
///     color: Vec3::one(), opacity: 0.5, radius: 1.0, source: 0,
/// };
/// let splats = vec![mk(3.0), mk(1.0), mk(2.0)];
/// assert_eq!(depth_order(&splats), vec![1, 2, 0]);
/// ```
pub fn depth_order(splats: &[Splat2D]) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..splats.len() as u32).collect();
    sort_indices_by_depth(&mut idx, splats);
    idx
}

/// Stably sorts an index list in place by the depth of the referenced
/// splats. Shared by the global order and the per-tile lists.
///
/// # Panics
/// Panics when an index is out of bounds for `splats`.
pub fn sort_indices_by_depth(indices: &mut [u32], splats: &[Splat2D]) {
    // Depths are finite and positive by construction (near-plane cull), so
    // total_cmp on the raw float is a strict weak order.
    indices.sort_by(|&a, &b| {
        splats[a as usize]
            .depth
            .total_cmp(&splats[b as usize].depth)
    });
}

/// `true` when `indices` references `splats` in non-decreasing depth order —
/// the invariant Stage 3 and the hardware dispatcher rely on.
pub fn is_depth_sorted(indices: &[u32], splats: &[Splat2D]) -> bool {
    indices
        .windows(2)
        .all(|w| splats[w[0] as usize].depth <= splats[w[1] as usize].depth)
}

/// Statistics of an incremental re-sort.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResortStats {
    /// Elements whose position changed relative to the previous order.
    pub moved: usize,
    /// Elements total.
    pub total: usize,
}

impl ResortStats {
    /// Fraction of elements that kept their position — the temporal
    /// coherence the incremental sorter exploits.
    pub fn coherence(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        1.0 - self.moved as f64 / self.total as f64
    }
}

/// Re-sorts splats of a *new* frame starting from the previous frame's
/// order — an extension beyond the paper exploiting temporal coherence:
/// consecutive viewpoints move smoothly, so the previous depth order is
/// almost sorted and an adaptive pass (insertion-style) finishes in near
/// linear time instead of `N log N`.
///
/// `prev_order` must be a permutation of splat indices of the *same* splat
/// set (matched by `source` ids in practice; here by index). Splats absent
/// from `prev_order` are appended before sorting.
///
/// Returns the new order plus movement statistics.
pub fn incremental_depth_order(prev_order: &[u32], splats: &[Splat2D]) -> (Vec<u32>, ResortStats) {
    let mut order: Vec<u32> = prev_order
        .iter()
        .copied()
        .filter(|&i| (i as usize) < splats.len())
        .collect();
    let mut seen = vec![false; splats.len()];
    for &i in &order {
        seen[i as usize] = true;
    }
    for (i, s) in seen.iter().enumerate() {
        if !s {
            order.push(i as u32);
        }
    }

    // Adaptive binary-insertion pass: for nearly sorted input this does
    // O(N) comparisons plus short moves.
    let before = order.clone();
    for i in 1..order.len() {
        let key = order[i];
        let key_depth = splats[key as usize].depth;
        // Fast path: already in place (the common, coherent case).
        if splats[order[i - 1] as usize].depth <= key_depth {
            continue;
        }
        let pos = order[..i].partition_point(|&j| splats[j as usize].depth <= key_depth);
        order.copy_within(pos..i, pos + 1);
        order[pos] = key;
    }

    let moved = before.iter().zip(&order).filter(|(a, b)| a != b).count()
        + order.len().saturating_sub(before.len());
    let stats = ResortStats {
        moved,
        total: order.len(),
    };
    (order, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaurast_math::{Vec2, Vec3};

    fn splat(depth: f32, source: u32) -> Splat2D {
        Splat2D {
            mean: Vec2::zero(),
            conic: [1.0, 0.0, 1.0],
            depth,
            color: Vec3::one(),
            opacity: 0.5,
            radius: 1.0,
            source,
        }
    }

    #[test]
    fn orders_by_depth() {
        let splats = vec![splat(5.0, 0), splat(1.0, 1), splat(3.0, 2)];
        let order = depth_order(&splats);
        assert_eq!(order, vec![1, 2, 0]);
        assert!(is_depth_sorted(&order, &splats));
    }

    #[test]
    fn stable_for_equal_depths() {
        let splats = vec![splat(2.0, 0), splat(2.0, 1), splat(1.0, 2), splat(2.0, 3)];
        let order = depth_order(&splats);
        assert_eq!(order, vec![2, 0, 1, 3]);
    }

    #[test]
    fn empty_input() {
        let order = depth_order(&[]);
        assert!(order.is_empty());
        assert!(is_depth_sorted(&order, &[]));
    }

    #[test]
    fn detects_unsorted() {
        let splats = vec![splat(1.0, 0), splat(2.0, 1)];
        assert!(!is_depth_sorted(&[1, 0], &splats));
        assert!(is_depth_sorted(&[0, 1], &splats));
    }

    #[test]
    fn subset_sort() {
        let splats = vec![splat(9.0, 0), splat(1.0, 1), splat(5.0, 2), splat(3.0, 3)];
        let mut subset = vec![0u32, 2, 3];
        sort_indices_by_depth(&mut subset, &splats);
        assert_eq!(subset, vec![3, 2, 0]);
    }

    #[test]
    fn incremental_sort_from_scratch_matches_full_sort() {
        let splats: Vec<Splat2D> = (0..50).map(|i| splat(((i * 37) % 50) as f32, i)).collect();
        let (order, stats) = incremental_depth_order(&[], &splats);
        assert!(is_depth_sorted(&order, &splats));
        assert_eq!(order.len(), 50);
        assert_eq!(stats.total, 50);
    }

    #[test]
    fn incremental_sort_exploits_coherence() {
        // Perturb depths slightly (a small camera move): almost nothing
        // moves, coherence is high.
        let mut splats: Vec<Splat2D> = (0..200).map(|i| splat(i as f32, i)).collect();
        let (prev, _) = incremental_depth_order(&[], &splats);
        for (i, s) in splats.iter_mut().enumerate() {
            s.depth += ((i * 7919) % 13) as f32 * 1e-4; // << inter-splat gap
        }
        let (order, stats) = incremental_depth_order(&prev, &splats);
        assert!(is_depth_sorted(&order, &splats));
        assert!(stats.coherence() > 0.95, "coherence {}", stats.coherence());
    }

    #[test]
    fn incremental_sort_handles_large_moves() {
        let mut splats: Vec<Splat2D> = (0..100).map(|i| splat(i as f32, i)).collect();
        let (prev, _) = incremental_depth_order(&[], &splats);
        // One splat jumps from the back to the front.
        splats[99].depth = -1.0;
        let (order, stats) = incremental_depth_order(&prev, &splats);
        assert!(is_depth_sorted(&order, &splats));
        assert_eq!(order[0], 99);
        assert!(stats.moved >= 1);
    }

    #[test]
    fn incremental_sort_absorbs_new_splats() {
        let splats: Vec<Splat2D> = (0..30).map(|i| splat((30 - i) as f32, i)).collect();
        // Previous order only knew the first 10.
        let (prev, _) = incremental_depth_order(&[], &splats[..10]);
        let (order, _) = incremental_depth_order(&prev, &splats);
        assert!(is_depth_sorted(&order, &splats));
        assert_eq!(order.len(), 30);
    }

    #[test]
    fn depth_key_bits_is_total_cmp_order() {
        let samples = [
            f32::NEG_INFINITY,
            -3.5,
            -1.0e-40, // subnormal
            -0.0,
            0.0,
            1.0e-40, // subnormal
            f32::MIN_POSITIVE,
            0.1,
            1.0,
            1.0 + f32::EPSILON,
            3.5e37,
            f32::MAX,
            f32::INFINITY,
        ];
        for a in samples {
            for b in samples {
                assert_eq!(
                    depth_key_bits(a).cmp(&depth_key_bits(b)),
                    a.total_cmp(&b),
                    "ordering mismatch for {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn pack_key_orders_tile_major_then_depth() {
        assert!(pack_key(0, 9.0) < pack_key(1, 1.0), "tile dominates depth");
        assert!(pack_key(3, 1.0) < pack_key(3, 2.0));
        assert_eq!(key_tile(pack_key(77, 1.5)), 77);
    }

    #[test]
    fn radix_sort_matches_comparison_sort_at_every_width() {
        // Deterministic pseudo-random keys (LCG), several sizes spanning
        // multiple chunks is covered by the integration suite; here cover
        // in-chunk behavior and tie stability.
        let n = 4000;
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let keys: Vec<u64> = (0..n)
            .map(|_| next() & 0xFF_0000_FF00) // few active digits, many ties
            .collect();
        let vals: Vec<u32> = (0..n as u32).collect();
        let mut expected: Vec<(u64, u32)> =
            keys.iter().copied().zip(vals.iter().copied()).collect();
        expected.sort_by_key(|&(k, _)| k); // sort_by_key is stable

        let mut reference: Option<(Vec<u64>, Vec<u32>)> = None;
        for workers in 1..=8 {
            let mut k = keys.clone();
            let mut v = vals.clone();
            RadixSorter::new().sort_pairs(&mut k, &mut v, &WorkerPool::new(workers));
            let flat: Vec<(u64, u32)> = k.iter().copied().zip(v.iter().copied()).collect();
            assert_eq!(
                flat, expected,
                "{workers} workers diverged from stable sort"
            );
            match &reference {
                None => reference = Some((k, v)),
                Some((rk, rv)) => {
                    assert_eq!(&k, rk, "{workers} workers: keys differ");
                    assert_eq!(&v, rv, "{workers} workers: values differ");
                }
            }
        }
    }

    #[test]
    fn radix_sorter_scratch_is_reusable() {
        let mut sorter = RadixSorter::new();
        let pool = WorkerPool::serial();
        for round in 0..3u32 {
            let mut keys: Vec<u64> = (0..100)
                .map(|i| ((i * 37 + u64::from(round)) % 100) << 8)
                .collect();
            let mut vals: Vec<u32> = (0..100).collect();
            sorter.sort_pairs(&mut keys, &mut vals, &pool);
            assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn radix_sort_empty_and_single() {
        let pool = WorkerPool::serial();
        let mut sorter = RadixSorter::new();
        let (mut k, mut v) = (Vec::new(), Vec::new());
        sorter.sort_pairs(&mut k, &mut v, &pool);
        assert!(k.is_empty());
        let (mut k, mut v) = (vec![42u64], vec![7u32]);
        sorter.sort_pairs(&mut k, &mut v, &pool);
        assert_eq!((k, v), (vec![42], vec![7]));
    }

    #[test]
    fn incremental_sort_drops_stale_indices() {
        let splats: Vec<Splat2D> = (0..5).map(|i| splat(i as f32, i)).collect();
        // Previous order references splats that no longer exist.
        let prev = vec![9u32, 2, 0, 7, 1];
        let (order, _) = incremental_depth_order(&prev, &splats);
        assert!(is_depth_sorted(&order, &splats));
        assert_eq!(order.len(), 5);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }
}
