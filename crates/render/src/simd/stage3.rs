//! Stage-3 SIMD kernels: per-pixel conic evaluation + front-to-back
//! blending over 4/8-pixel lane groups along tile rows.
//!
//! [`rasterize_tile_simd`] is the lane-group counterpart of the verbatim
//! scalar reference `rasterize_tile` (crate::rasterize). The restructuring
//! rule that preserves bit-identity:
//!
//! * Pixels are independent: every per-pixel quantity (`d`, `power`,
//!   `alpha`, the blended color and transmittance) depends only on that
//!   pixel's own state, so evaluating a row in groups of `W` pixels
//!   instead of one-by-one cannot change any value — only the order in
//!   which identical, independent computations happen.
//! * Every scalar FP operation maps to the per-lane-exact vector
//!   instruction with the *same operand order* (`addps`/`subps`/`mulps`/
//!   `minps` are IEEE-754 correctly rounded per lane; no FMA, no
//!   reassociation). `exp` has no exact vector form, so it is extracted
//!   and computed per active lane with the very same `f32::exp` the
//!   reference calls.
//! * Branches become lane masks built with the *complement-aware*
//!   predicates (`NLT`, `NGT`) so NaN falls on the same side of every
//!   gate as in the scalar `if` chain; op-count tallies become popcounts
//!   of those masks scaled by the constant per-branch op bundle.
//! * The whole-tile saturation exit moves from mid-splat to end-of-splat
//!   granularity: once `alive == 0` every pixel has `t <` the epsilon, so
//!   any remaining pixel visits of the current splat would take the dead
//!   gate and tally nothing — observationally identical to the reference
//!   kernel's immediate `break`.
//!
//! The scalar row kernel ([`blend_pixel`] driven by `row_scalar`) *is*
//! the restructured reference — always compiled, used for lane-group
//! tails and proven bit-identical to `rasterize_tile` by the
//! `vector_modes` proptests; the SSE4.1/AVX2 kernels are proven identical
//! to it (and therefore to the verbatim kernel) on every supported host.

use crate::framebuffer::TileViewMut;
use crate::ops::Subtask;
use crate::rasterize::RasterStats;
use crate::simd::SimdLevel;
use crate::workload::SplatSoA;
use crate::{ALPHA_CUTOFF, TRANSMITTANCE_EPS};
use gaurast_math::Vec3;

/// `power` threshold below which the serial `exp` extraction may be
/// skipped: for `power < -5.6` and `opacity <= 1`,
/// `opacity · exp(power) < exp(-5.6)·(1 + 2⁻²¹) ≈ 0.003699`, strictly
/// below `ALPHA_CUTOFF = 1/255 ≈ 0.003922` for *any* faithfully rounded
/// `exp` — so the scalar kernel's `alpha < ALPHA_CUTOFF` branch is taken
/// with certainty and the lane may substitute `exp = 0` (yielding
/// `alpha = 0`, the same branch, the same tallies, no output change).
/// Splats with `opacity > 1` (impossible via Stage 1, but constructible
/// by hand) disable the shortcut.
const EXP_SKIP_THRESHOLD: f32 = -5.6;

/// One splat's fields, broadcast-ready (gathered once per splat from the
/// [`SplatSoA`] columns).
#[derive(Clone, Copy)]
struct SplatIn {
    mx: f32,
    my: f32,
    a: f32,
    b: f32,
    c: f32,
    opacity: f32,
    cr: f32,
    cg: f32,
    cb: f32,
    /// `opacity <= 1.0` — precondition of the [`EXP_SKIP_THRESHOLD`]
    /// shortcut.
    exp_skip_ok: bool,
}

/// Tile-local op tallies, folded into [`RasterStats`] once per tile
/// exactly like the scalar kernel's local counters.
#[derive(Default)]
struct Tallies {
    pairs: u64,
    shift_add: u64,
    det_add: u64,
    det_mul: u64,
    det_exp: u64,
    det_cmp: u64,
    wgt_mul: u64,
    red_add: u64,
    red_mul: u64,
    red_cmp: u64,
    blends: u64,
}

/// The restructured scalar per-pixel body — operation-for-operation the
/// inner loop of the verbatim `rasterize_tile`, reading the SoA pixel
/// planes. Used for lane-group tails, for whole rows at the scalar
/// fallback, and as the bit-identity reference the vector kernels are
/// tested against.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn blend_pixel(
    s: &SplatIn,
    xc: f32,
    yc: f32,
    red: &mut f32,
    grn: &mut f32,
    blu: &mut f32,
    trans: &mut f32,
    t: &mut Tallies,
    alive: &mut u32,
) {
    if *trans < TRANSMITTANCE_EPS {
        return;
    }
    t.pairs += 1;

    // Subtask 1: coordinate shift (pixel center convention).
    let dx = xc - s.mx;
    let dy = yc - s.my;
    t.shift_add += 2;

    // Subtask 2: Gaussian probability and alpha.
    let power = -0.5 * (s.a * dx * dx + s.c * dy * dy) - s.b * dx * dy;
    t.det_mul += 7;
    t.det_add += 3;
    t.det_cmp += 1;
    if power > 0.0 {
        return;
    }
    let alpha = (s.opacity * power.exp()).min(0.99);
    t.det_exp += 1;
    t.det_mul += 1;
    t.det_cmp += 2;
    if alpha < ALPHA_CUTOFF {
        return;
    }

    // Subtask 3: color weight.
    let weight = *trans * alpha;
    t.wgt_mul += 4;

    // Subtask 4: accumulate and update transmittance.
    *red += s.cr * weight;
    *grn += s.cg * weight;
    *blu += s.cb * weight;
    *trans *= 1.0 - alpha;
    t.red_add += 4;
    t.red_mul += 1;
    t.red_cmp += 1;
    t.blends += 1;

    if *trans < TRANSMITTANCE_EPS {
        *alive -= 1;
    }
}

/// One splat across one full tile row, restructured scalar form.
#[allow(clippy::too_many_arguments)]
fn row_scalar(
    s: &SplatIn,
    xc: &[f32],
    yc: f32,
    red: &mut [f32],
    grn: &mut [f32],
    blu: &mut [f32],
    trans: &mut [f32],
    t: &mut Tallies,
    alive: &mut u32,
) {
    for px in 0..trans.len() {
        blend_pixel(
            s,
            xc[px],
            yc,
            &mut red[px],
            &mut grn[px],
            &mut blu[px],
            &mut trans[px],
            t,
            alive,
        );
    }
}

/// One splat across one tile row: 4-wide SSE4.1 lane groups plus a
/// restructured-scalar tail. Safe to call only in an SSE4.1-enabled
/// context (enforced by the dispatch in [`rasterize_tile_simd`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.1")]
#[allow(clippy::too_many_arguments)]
fn row_sse(
    s: &SplatIn,
    xc: &[f32],
    yc: f32,
    red: &mut [f32],
    grn: &mut [f32],
    blu: &mut [f32],
    trans: &mut [f32],
    t: &mut Tallies,
    alive: &mut u32,
) {
    use core::arch::x86_64::{
        _mm_add_ps, _mm_and_ps, _mm_blendv_ps, _mm_cmplt_ps, _mm_cmpngt_ps, _mm_cmpnlt_ps,
        _mm_loadu_ps, _mm_min_ps, _mm_movemask_ps, _mm_mul_ps, _mm_set1_ps, _mm_storeu_ps,
        _mm_sub_ps,
    };
    const W: usize = 4;
    let w = trans.len();
    let dy = yc - s.my;
    // Row-invariant scalars, computed once with the exact scalar ops the
    // reference repeats per pixel (same operands -> same bits).
    let cdy2 = s.c * dy * dy;

    let eps = _mm_set1_ps(TRANSMITTANCE_EPS);
    let zero = _mm_set1_ps(0.0);
    let neg_half = _mm_set1_ps(-0.5);
    let one = _mm_set1_ps(1.0);
    let cutoff = _mm_set1_ps(ALPHA_CUTOFF);
    let cap = _mm_set1_ps(0.99);
    let mxv = _mm_set1_ps(s.mx);
    let av = _mm_set1_ps(s.a);
    let bv = _mm_set1_ps(s.b);
    let dyv = _mm_set1_ps(dy);
    let cdy2v = _mm_set1_ps(cdy2);
    let opv = _mm_set1_ps(s.opacity);
    let crv = _mm_set1_ps(s.cr);
    let cgv = _mm_set1_ps(s.cg);
    let cbv = _mm_set1_ps(s.cb);

    let mut px = 0usize;
    while px + W <= w {
        // SAFETY: `px + W <= w` and every slice has length `w`, so all
        // W-lane loads/stores below stay in bounds of their slices.
        // gaurast-check: allow(race): all accesses go through this tile
        // job's exclusive `&mut` row slices — no cross-thread sharing.
        let tv = unsafe { _mm_loadu_ps(trans.as_ptr().add(px)) };
        // Dead-pixel gate: scalar `if t < EPS continue` == keep iff
        // NOT(t < EPS); NLT sends NaN to the kept side like the scalar.
        let m_t = _mm_cmpnlt_ps(tv, eps);
        let bits_t = _mm_movemask_ps(m_t) as u32;
        if bits_t == 0 {
            px += W;
            continue;
        }
        let n0 = u64::from(bits_t.count_ones());
        t.pairs += n0;
        t.shift_add += 2 * n0;
        t.det_mul += 7 * n0;
        t.det_add += 3 * n0;
        t.det_cmp += n0;

        // SAFETY: as above — `xc` also has length `w`.
        let xv = unsafe { _mm_loadu_ps(xc.as_ptr().add(px)) };
        let dx = _mm_sub_ps(xv, mxv);
        let adx2 = _mm_mul_ps(_mm_mul_ps(av, dx), dx);
        let quad = _mm_add_ps(adx2, cdy2v);
        let lead = _mm_mul_ps(neg_half, quad);
        let cross = _mm_mul_ps(_mm_mul_ps(bv, dx), dyv);
        let power = _mm_sub_ps(lead, cross);
        // Scalar `if power > 0 continue` == keep iff NOT(power > 0).
        let m1 = _mm_and_ps(m_t, _mm_cmpngt_ps(power, zero));
        let bits1 = _mm_movemask_ps(m1) as u32;
        if bits1 == 0 {
            px += W;
            continue;
        }
        let n1 = u64::from(bits1.count_ones());
        t.det_exp += n1;
        t.det_mul += n1;
        t.det_cmp += 2 * n1;

        // Serial exp extraction: the same `f32::exp` the scalar calls,
        // per active lane, skipped only when provably below the cutoff
        // (see EXP_SKIP_THRESHOLD — the substituted 0 takes the same
        // branch with the same tallies).
        let mut pbuf = [0.0f32; W];
        let mut ebuf = [0.0f32; W];
        // SAFETY: `pbuf` is a W-long stack array.
        unsafe { _mm_storeu_ps(pbuf.as_mut_ptr(), power) };
        for (lane, e) in ebuf.iter_mut().enumerate() {
            if bits1 & (1 << lane) != 0 && !(s.exp_skip_ok && pbuf[lane] < EXP_SKIP_THRESHOLD) {
                *e = pbuf[lane].exp();
            }
        }
        // SAFETY: `ebuf` is a W-long stack array.
        let ev = unsafe { _mm_loadu_ps(ebuf.as_ptr()) };
        // minps(x, 0.99) returns 0.99 for NaN x, matching f32::min.
        let alpha = _mm_min_ps(_mm_mul_ps(opv, ev), cap);
        // Scalar `if alpha < CUTOFF continue` == keep iff NOT(alpha < CUTOFF).
        let m2 = _mm_and_ps(m1, _mm_cmpnlt_ps(alpha, cutoff));
        let bits2 = _mm_movemask_ps(m2) as u32;
        if bits2 == 0 {
            px += W;
            continue;
        }
        let n2 = u64::from(bits2.count_ones());
        t.wgt_mul += 4 * n2;
        t.red_add += 4 * n2;
        t.red_mul += n2;
        t.red_cmp += n2;
        t.blends += n2;

        let weight = _mm_mul_ps(tv, alpha);
        // SAFETY: in-bounds W-lane loads as established above.
        let rv = unsafe { _mm_loadu_ps(red.as_ptr().add(px)) };
        // SAFETY: as above.
        let gv = unsafe { _mm_loadu_ps(grn.as_ptr().add(px)) };
        // SAFETY: as above.
        let bv3 = unsafe { _mm_loadu_ps(blu.as_ptr().add(px)) };
        let nr = _mm_add_ps(rv, _mm_mul_ps(crv, weight));
        let ng = _mm_add_ps(gv, _mm_mul_ps(cgv, weight));
        let nb = _mm_add_ps(bv3, _mm_mul_ps(cbv, weight));
        let nt = _mm_mul_ps(tv, _mm_sub_ps(one, alpha));
        // SAFETY: in-bounds W-lane stores through the exclusive &mut
        // slices (see the loop-top SAFETY note).
        // gaurast-check: allow(race): exclusive &mut row slices.
        unsafe {
            _mm_storeu_ps(red.as_mut_ptr().add(px), _mm_blendv_ps(rv, nr, m2));
            _mm_storeu_ps(grn.as_mut_ptr().add(px), _mm_blendv_ps(gv, ng, m2));
            _mm_storeu_ps(blu.as_mut_ptr().add(px), _mm_blendv_ps(bv3, nb, m2));
            _mm_storeu_ps(trans.as_mut_ptr().add(px), _mm_blendv_ps(tv, nt, m2));
        }
        let died = _mm_movemask_ps(_mm_and_ps(m2, _mm_cmplt_ps(nt, eps))) as u32;
        *alive -= died.count_ones();
        px += W;
    }
    for tail in px..w {
        blend_pixel(
            s,
            xc[tail],
            yc,
            &mut red[tail],
            &mut grn[tail],
            &mut blu[tail],
            &mut trans[tail],
            t,
            alive,
        );
    }
}

/// One splat across one tile row: 8-wide AVX2 lane groups plus a
/// restructured-scalar tail. Safe to call only in an AVX2-enabled context
/// (enforced by the dispatch in [`rasterize_tile_simd`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
fn row_avx2(
    s: &SplatIn,
    xc: &[f32],
    yc: f32,
    red: &mut [f32],
    grn: &mut [f32],
    blu: &mut [f32],
    trans: &mut [f32],
    t: &mut Tallies,
    alive: &mut u32,
) {
    use core::arch::x86_64::{
        _mm256_add_ps, _mm256_and_ps, _mm256_blendv_ps, _mm256_cmp_ps, _mm256_loadu_ps,
        _mm256_min_ps, _mm256_movemask_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_storeu_ps,
        _mm256_sub_ps, _CMP_LT_OQ, _CMP_NGT_UQ, _CMP_NLT_UQ,
    };
    const W: usize = 8;
    let w = trans.len();
    let dy = yc - s.my;
    let cdy2 = s.c * dy * dy;

    let eps = _mm256_set1_ps(TRANSMITTANCE_EPS);
    let zero = _mm256_set1_ps(0.0);
    let neg_half = _mm256_set1_ps(-0.5);
    let one = _mm256_set1_ps(1.0);
    let cutoff = _mm256_set1_ps(ALPHA_CUTOFF);
    let cap = _mm256_set1_ps(0.99);
    let mxv = _mm256_set1_ps(s.mx);
    let av = _mm256_set1_ps(s.a);
    let bv = _mm256_set1_ps(s.b);
    let dyv = _mm256_set1_ps(dy);
    let cdy2v = _mm256_set1_ps(cdy2);
    let opv = _mm256_set1_ps(s.opacity);
    let crv = _mm256_set1_ps(s.cr);
    let cgv = _mm256_set1_ps(s.cg);
    let cbv = _mm256_set1_ps(s.cb);

    let mut px = 0usize;
    while px + W <= w {
        // SAFETY: `px + W <= w` and every slice has length `w`, so all
        // W-lane loads/stores below stay in bounds of their slices.
        // gaurast-check: allow(race): all accesses go through this tile
        // job's exclusive `&mut` row slices — no cross-thread sharing.
        let tv = unsafe { _mm256_loadu_ps(trans.as_ptr().add(px)) };
        let m_t = _mm256_cmp_ps::<_CMP_NLT_UQ>(tv, eps);
        let bits_t = _mm256_movemask_ps(m_t) as u32;
        if bits_t == 0 {
            px += W;
            continue;
        }
        let n0 = u64::from(bits_t.count_ones());
        t.pairs += n0;
        t.shift_add += 2 * n0;
        t.det_mul += 7 * n0;
        t.det_add += 3 * n0;
        t.det_cmp += n0;

        // SAFETY: as above — `xc` also has length `w`.
        let xv = unsafe { _mm256_loadu_ps(xc.as_ptr().add(px)) };
        let dx = _mm256_sub_ps(xv, mxv);
        let adx2 = _mm256_mul_ps(_mm256_mul_ps(av, dx), dx);
        let quad = _mm256_add_ps(adx2, cdy2v);
        let lead = _mm256_mul_ps(neg_half, quad);
        let cross = _mm256_mul_ps(_mm256_mul_ps(bv, dx), dyv);
        let power = _mm256_sub_ps(lead, cross);
        let m1 = _mm256_and_ps(m_t, _mm256_cmp_ps::<_CMP_NGT_UQ>(power, zero));
        let bits1 = _mm256_movemask_ps(m1) as u32;
        if bits1 == 0 {
            px += W;
            continue;
        }
        let n1 = u64::from(bits1.count_ones());
        t.det_exp += n1;
        t.det_mul += n1;
        t.det_cmp += 2 * n1;

        let mut pbuf = [0.0f32; W];
        let mut ebuf = [0.0f32; W];
        // SAFETY: `pbuf` is a W-long stack array.
        unsafe { _mm256_storeu_ps(pbuf.as_mut_ptr(), power) };
        for (lane, e) in ebuf.iter_mut().enumerate() {
            if bits1 & (1 << lane) != 0 && !(s.exp_skip_ok && pbuf[lane] < EXP_SKIP_THRESHOLD) {
                *e = pbuf[lane].exp();
            }
        }
        // SAFETY: `ebuf` is a W-long stack array.
        let ev = unsafe { _mm256_loadu_ps(ebuf.as_ptr()) };
        let alpha = _mm256_min_ps(_mm256_mul_ps(opv, ev), cap);
        let m2 = _mm256_and_ps(m1, _mm256_cmp_ps::<_CMP_NLT_UQ>(alpha, cutoff));
        let bits2 = _mm256_movemask_ps(m2) as u32;
        if bits2 == 0 {
            px += W;
            continue;
        }
        let n2 = u64::from(bits2.count_ones());
        t.wgt_mul += 4 * n2;
        t.red_add += 4 * n2;
        t.red_mul += n2;
        t.red_cmp += n2;
        t.blends += n2;

        let weight = _mm256_mul_ps(tv, alpha);
        // SAFETY: in-bounds W-lane loads as established above.
        let rv = unsafe { _mm256_loadu_ps(red.as_ptr().add(px)) };
        // SAFETY: as above.
        let gv = unsafe { _mm256_loadu_ps(grn.as_ptr().add(px)) };
        // SAFETY: as above.
        let bv3 = unsafe { _mm256_loadu_ps(blu.as_ptr().add(px)) };
        let nr = _mm256_add_ps(rv, _mm256_mul_ps(crv, weight));
        let ng = _mm256_add_ps(gv, _mm256_mul_ps(cgv, weight));
        let nb = _mm256_add_ps(bv3, _mm256_mul_ps(cbv, weight));
        let nt = _mm256_mul_ps(tv, _mm256_sub_ps(one, alpha));
        // SAFETY: in-bounds W-lane stores through the exclusive &mut
        // slices (see the loop-top SAFETY note).
        // gaurast-check: allow(race): exclusive &mut row slices.
        unsafe {
            _mm256_storeu_ps(red.as_mut_ptr().add(px), _mm256_blendv_ps(rv, nr, m2));
            _mm256_storeu_ps(grn.as_mut_ptr().add(px), _mm256_blendv_ps(gv, ng, m2));
            _mm256_storeu_ps(blu.as_mut_ptr().add(px), _mm256_blendv_ps(bv3, nb, m2));
            _mm256_storeu_ps(trans.as_mut_ptr().add(px), _mm256_blendv_ps(tv, nt, m2));
        }
        let died =
            _mm256_movemask_ps(_mm256_and_ps(m2, _mm256_cmp_ps::<_CMP_LT_OQ>(nt, eps))) as u32;
        *alive -= died.count_ones();
        px += W;
    }
    for tail in px..w {
        blend_pixel(
            s,
            xc[tail],
            yc,
            &mut red[tail],
            &mut grn[tail],
            &mut blu[tail],
            &mut trans[tail],
            t,
            alive,
        );
    }
}

/// Rasterizes one tile through the SoA lane-group data path; the drop-in
/// counterpart of the scalar `rasterize_tile` with bit-identical outputs
/// (image, processed count, every statistic) at every [`SimdLevel`].
///
/// `level` must not exceed [`crate::simd::detected_level`] — the public
/// dispatch (`rasterize_with_level`) clamps it.
// gaurast-check: hot-path
pub(crate) fn rasterize_tile_simd(
    soa: &SplatSoA,
    list: &[u32],
    rect: (u32, u32, u32, u32),
    view: Option<&mut TileViewMut<'_>>,
    level: SimdLevel,
) -> (u32, RasterStats) {
    debug_assert!(
        level <= crate::simd::detected_level(),
        "SIMD level above host capability reached the tile kernel"
    );
    let mut stats = RasterStats::default();
    if list.is_empty() {
        return (0, stats);
    }
    let (x0, y0, x1, y1) = rect;
    let w = (x1 - x0) as usize;
    let h = (y1 - y0) as usize;
    let n_px = w * h;

    // Tile-local pixel planes: the same per-pixel state as the scalar
    // kernel's `Vec<Vec3>` color + `Vec<f32>` transmittance, transposed
    // into channel planes so a lane group loads/stores contiguously.
    // gaurast-check: allow(alloc): tile-local pixel buffers, one bounded
    // (tile_size²) allocation per tile job — ROADMAP item: move into a
    // per-worker arena.
    let mut red = vec![0.0f32; n_px];
    // gaurast-check: allow(alloc): same tile-local buffer as above.
    let mut grn = vec![0.0f32; n_px];
    // gaurast-check: allow(alloc): same tile-local buffer as above.
    let mut blu = vec![0.0f32; n_px];
    // gaurast-check: allow(alloc): same tile-local buffer as above.
    let mut trans = vec![1.0f32; n_px];
    // Pixel-center x coordinates, precomputed with the scalar kernel's
    // exact expression (same bits, hoisted out of the splat loop).
    // gaurast-check: allow(alloc): tile-local buffer, O(tile_size).
    let mut xc = vec![0.0f32; w];
    for (px, x) in xc.iter_mut().enumerate() {
        *x = (x0 + px as u32) as f32 + 0.5;
    }

    let mut alive = n_px as u32;
    let mut processed = 0u32;
    let mut t = Tallies::default();

    'list: for &si in list {
        processed += 1;
        let i = si as usize;
        let s = SplatIn {
            mx: soa.x[i],
            my: soa.y[i],
            a: soa.conic_a[i],
            b: soa.conic_b[i],
            c: soa.conic_c[i],
            opacity: soa.alpha[i],
            cr: soa.r[i],
            cg: soa.g[i],
            cb: soa.b[i],
            exp_skip_ok: soa.alpha[i] <= 1.0,
        };
        for py in 0..h {
            let yc = (y0 + py as u32) as f32 + 0.5;
            let row = py * w;
            let red_row = &mut red[row..row + w];
            let grn_row = &mut grn[row..row + w];
            let blu_row = &mut blu[row..row + w];
            let trans_row = &mut trans[row..row + w];
            match level {
                SimdLevel::Scalar => row_scalar(
                    &s, &xc, yc, red_row, grn_row, blu_row, trans_row, &mut t, &mut alive,
                ),
                #[cfg(target_arch = "x86_64")]
                // SAFETY: the debug assertion above and the dispatch-level
                // clamp guarantee the host supports the requested feature
                // set, making the target_feature fns sound to call.
                SimdLevel::Sse => unsafe {
                    row_sse(
                        &s, &xc, yc, red_row, grn_row, blu_row, trans_row, &mut t, &mut alive,
                    );
                },
                #[cfg(target_arch = "x86_64")]
                // SAFETY: as above — AVX2 was detected before this level
                // could be selected.
                SimdLevel::Avx2 => unsafe {
                    row_avx2(
                        &s, &xc, yc, red_row, grn_row, blu_row, trans_row, &mut t, &mut alive,
                    );
                },
                #[cfg(not(target_arch = "x86_64"))]
                SimdLevel::Sse | SimdLevel::Avx2 => row_scalar(
                    &s, &xc, yc, red_row, grn_row, blu_row, trans_row, &mut t, &mut alive,
                ),
            }
            if alive == 0 {
                break;
            }
        }
        if alive == 0 {
            // Whole tile saturated. The scalar kernel breaks at the exact
            // pixel where `alive` hit zero; every pixel this end-of-splat
            // check "skips" is dead and would have tallied nothing.
            if processed < list.len() as u32 {
                stats.tiles_early_terminated += 1;
            }
            break 'list;
        }
    }

    if let Some(view) = view {
        for py in 0..h {
            for px in 0..w {
                let i = py * w + px;
                view.write(
                    px as u32,
                    py as u32,
                    Vec3::new(red[i], grn[i], blu[i]),
                    trans[i],
                );
            }
        }
    }

    stats.pairs_evaluated += t.pairs;
    stats.blends_committed += t.blends;
    stats.ops.pairs += t.pairs;
    stats.ops.at(Subtask::CoordinateShift).add += t.shift_add;
    let det = stats.ops.at(Subtask::Detection);
    det.add += t.det_add;
    det.mul += t.det_mul;
    det.exp += t.det_exp;
    det.cmp += t.det_cmp;
    stats.ops.at(Subtask::WeightComputation).mul += t.wgt_mul;
    let red_ops = stats.ops.at(Subtask::Reduction);
    red_ops.add += t.red_add;
    red_ops.mul += t.red_mul;
    red_ops.cmp += t.red_cmp;

    (processed, stats)
}
