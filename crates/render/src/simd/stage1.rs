//! Stage-1 SIMD kernels: 4/8-wide EWA projection over lane groups of
//! Gaussians.
//!
//! The vector kernels replicate `preprocess::preprocess_over`'s per-Gaussian
//! arithmetic **operation for operation** — same operand order, same
//! association, same comparison semantics — so the projected splats, cull
//! decisions, and op tallies are bit-identical to the scalar reference at
//! every [`SimdLevel`]. The restructuring rules:
//!
//! * Gaussians are processed in lane groups of 4 (SSE) or 8 (AVX2); the
//!   partial tail group of an index range runs through [`lane_scalar`], a
//!   restructured-but-textually-verbatim copy of the scalar kernel.
//! * The scalar kernel culls with early `continue`s; the vector kernels
//!   compute every stage unconditionally and then classify each lane by the
//!   *first* cull it would have hit (`CODE_*`, in scalar branch order).
//!   Values computed past a lane's cull point are garbage and never read.
//! * Per-lane op tallies depend only on the cull class, so
//!   [`finalize_lane`] charges a constant bundle per class — the same
//!   running totals the scalar kernel accumulates in place.
//! * Culling, SH color, normalization, and the `Splat2D` push happen
//!   serially per lane in index order, exactly like the scalar loop.
//!
//! Per-lane IEEE exactness of the x86-64 packed add/sub/mul/div/sqrt/min/
//! max/ceil instructions (each lane is the correctly rounded scalar result)
//! is what makes the vector arithmetic identical; no FMA contraction or
//! reassociation is ever introduced.

use crate::ops::OpCounts;
use crate::preprocess::{PreprocessOutput, Splat2D, COV2D_LOW_PASS};
use crate::simd::SimdLevel;
#[cfg(target_arch = "x86_64")]
use core::arch::x86_64::{
    _mm256_add_ps, _mm256_and_ps, _mm256_andnot_ps, _mm256_blendv_ps, _mm256_castsi256_ps,
    _mm256_ceil_ps, _mm256_div_ps, _mm256_loadu_ps, _mm256_max_ps, _mm256_min_ps,
    _mm256_movemask_ps, _mm256_mul_ps, _mm256_or_ps, _mm256_set1_epi32, _mm256_set1_ps,
    _mm256_sqrt_ps, _mm256_storeu_ps, _mm256_sub_ps, _mm256_xor_ps, _mm_add_ps, _mm_and_ps,
    _mm_andnot_ps, _mm_blendv_ps, _mm_castsi128_ps, _mm_ceil_ps, _mm_div_ps, _mm_loadu_ps,
    _mm_max_ps, _mm_min_ps, _mm_movemask_ps, _mm_mul_ps, _mm_or_ps, _mm_set1_epi32, _mm_set1_ps,
    _mm_sqrt_ps, _mm_storeu_ps, _mm_sub_ps, _mm_xor_ps,
};
use gaurast_math::{Mat2, Mat3, Vec2, Vec3};
use gaurast_scene::{Camera, Gaussian3, GaussianScene};

/// Widest lane group any kernel uses (AVX2, 8 × f32).
const LANES_MAX: usize = 8;

/// Cull classes, in the scalar kernel's branch order (smaller = earlier).
const CODE_DEPTH: u8 = 0;
const CODE_CONIC: u8 = 1;
const CODE_NON_FINITE: u8 = 2;
const CODE_RADIUS: u8 = 3;
const CODE_OFFSCREEN: u8 = 4;
const CODE_SURVIVOR: u8 = 5;

/// Per-lane projection result: the cull class plus the values a surviving
/// splat needs. Value fields are meaningful only for lanes whose `code`
/// reached the stage that produces them (all of them for survivors).
#[derive(Clone, Copy, Debug, Default)]
struct LaneOut {
    code: u8,
    mean_x: f32,
    mean_y: f32,
    depth: f32,
    conic_a: f32,
    conic_b: f32,
    conic_c: f32,
    radius: f32,
}

/// Vector-kernel output: [`LaneOut`] transposed into lane arrays.
#[cfg(target_arch = "x86_64")]
#[derive(Debug, Default)]
struct GroupOut {
    code: [u8; LANES_MAX],
    mean_x: [f32; LANES_MAX],
    mean_y: [f32; LANES_MAX],
    depth: [f32; LANES_MAX],
    conic_a: [f32; LANES_MAX],
    conic_b: [f32; LANES_MAX],
    conic_c: [f32; LANES_MAX],
    radius: [f32; LANES_MAX],
}

/// Per-frame camera constants, precomputed once per Stage-1 call and
/// broadcast into lanes by the kernels. Every value is the bitwise result
/// of the exact scalar expression the reference kernel evaluates (the
/// reference recomputes some of them per Gaussian; the inputs are
/// loop-invariant so the results are identical).
#[derive(Debug)]
#[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
struct FrameConsts {
    /// Rows 0..2 of the view matrix (`vm[r][c] = view.at(r, c)`).
    vm: [[f32; 4]; 3],
    /// Rotation block columns: `r3[k] = (view_rot.at(0,k), at(1,k), at(2,k))`.
    r3: [[f32; 3]; 3],
    /// Rotation block as a matrix, for the scalar lane path.
    view_rot: Mat3,
    fx: f32,
    fy: f32,
    /// `-focal` — the scalar kernel's literal unary negations.
    neg_fx: f32,
    neg_fy: f32,
    cx: f32,
    cy: f32,
    near: f32,
    far: f32,
    w: f32,
    h: f32,
    tan_half_x: f32,
    tan_half_y: f32,
    /// Clamp bounds `∓1.3 · tan_half` (scalar computes them per Gaussian
    /// from loop-invariant inputs — same bits).
    lo_x: f32,
    hi_x: f32,
    lo_y: f32,
    hi_y: f32,
}

impl FrameConsts {
    fn new(camera: &Camera) -> Self {
        let focal = camera.focal();
        let principal = camera.principal();
        let w = camera.width() as f32;
        let h = camera.height() as f32;
        let tan_half_x = 0.5 * w / focal.x;
        let tan_half_y = 0.5 * h / focal.y;
        let view = camera.view();
        let mut vm = [[0.0f32; 4]; 3];
        for (r, row) in vm.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v = view.at(r, c);
            }
        }
        let view_rot = view.upper_left_3x3();
        let mut r3 = [[0.0f32; 3]; 3];
        for (k, col) in r3.iter_mut().enumerate() {
            *col = [view_rot.at(0, k), view_rot.at(1, k), view_rot.at(2, k)];
        }
        Self {
            vm,
            r3,
            view_rot,
            fx: focal.x,
            fy: focal.y,
            neg_fx: -focal.x,
            neg_fy: -focal.y,
            cx: principal.x,
            cy: principal.y,
            near: camera.near(),
            far: camera.far(),
            w,
            h,
            tan_half_x,
            tan_half_y,
            lo_x: -1.3 * tan_half_x,
            hi_x: 1.3 * tan_half_x,
            lo_y: -1.3 * tan_half_y,
            hi_y: 1.3 * tan_half_y,
        }
    }
}

/// SIMD twin of `preprocess::preprocess_over`: projects `indices` in lane
/// groups of `level.lanes()` Gaussians, scalar-lane tail for the remainder.
///
/// `level` must not exceed `simd::detected_level()` (callers clamp).
// gaurast-check: hot-path
pub(crate) fn preprocess_over_simd(
    scene: &GaussianScene,
    camera: &Camera,
    covariance_of: &(impl Fn(usize, &Gaussian3) -> Mat3 + Sync),
    count: usize,
    indices: impl Iterator<Item = usize>,
    level: SimdLevel,
) -> PreprocessOutput {
    debug_assert!(level <= crate::simd::detected_level());
    let mut out = PreprocessOutput::default();
    out.splats.reserve(count);
    let fc = FrameConsts::new(camera);
    let cam_pos = camera.position();
    let width = level.lanes();

    let mut idx = [0usize; LANES_MAX];
    let mut n = 0;
    for i in indices {
        idx[n] = i;
        n += 1;
        if n < width {
            continue;
        }
        n = 0;
        match level {
            SimdLevel::Scalar => {
                run_lanes_scalar(
                    &mut out,
                    scene,
                    camera,
                    covariance_of,
                    &idx[..width],
                    &fc,
                    cam_pos,
                );
            }
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Sse | SimdLevel::Avx2 => {
                run_group_x86(
                    &mut out,
                    scene,
                    covariance_of,
                    &idx[..width],
                    level,
                    &fc,
                    cam_pos,
                );
            }
            #[cfg(not(target_arch = "x86_64"))]
            _ => {
                run_lanes_scalar(
                    &mut out,
                    scene,
                    camera,
                    covariance_of,
                    &idx[..width],
                    &fc,
                    cam_pos,
                );
            }
        }
    }
    // Partial tail group: restructured scalar lanes (bit-identical to the
    // vector kernels by construction, and to the reference by inspection).
    run_lanes_scalar(
        &mut out,
        scene,
        camera,
        covariance_of,
        &idx[..n],
        &fc,
        cam_pos,
    );
    out
}

/// Runs `idx` through the restructured scalar kernel, one lane at a time.
#[allow(clippy::too_many_arguments)]
fn run_lanes_scalar(
    out: &mut PreprocessOutput,
    scene: &GaussianScene,
    camera: &Camera,
    covariance_of: &(impl Fn(usize, &Gaussian3) -> Mat3 + Sync),
    idx: &[usize],
    fc: &FrameConsts,
    cam_pos: Vec3,
) {
    for &i in idx {
        // gaurast-check: allow(panic): indices come from an in-bounds range
        // or a validated `VisibleSet`; out-of-range is a constructor bug.
        let g = scene.get(i).expect("index within scene");
        // Hoisted ahead of the depth cull (the reference evaluates it
        // after); `covariance_of` is pure, so the extra evaluation on
        // depth-culled lanes changes no output. The vector path needs the
        // hoist to gather whole lane groups.
        let cov3 = covariance_of(i, g);
        let lane = lane_scalar(camera, g, cov3, fc);
        finalize_lane(out, i, g, &lane, cam_pos);
    }
}

/// Gathers a full lane group, runs the vector kernel, finalizes in lane
/// order. `idx.len()` must equal `level.lanes()` and `level` must be a
/// vector level no wider than the detected one.
#[cfg(target_arch = "x86_64")]
fn run_group_x86(
    out: &mut PreprocessOutput,
    scene: &GaussianScene,
    covariance_of: &(impl Fn(usize, &Gaussian3) -> Mat3 + Sync),
    idx: &[usize],
    level: SimdLevel,
    fc: &FrameConsts,
    cam_pos: Vec3,
) {
    debug_assert!(level != SimdLevel::Scalar && idx.len() == level.lanes());
    let mut pos = [[0.0f32; LANES_MAX]; 3];
    // Column-major 3×3 covariance, one lane row per element:
    // `cov[c * 3 + r][lane] = cov3.at(r, c)`.
    let mut cov = [[0.0f32; LANES_MAX]; 9];
    let mut gs: [Option<&Gaussian3>; LANES_MAX] = [None; LANES_MAX];
    for (lane, &i) in idx.iter().enumerate() {
        // gaurast-check: allow(panic): indices come from an in-bounds range
        // or a validated `VisibleSet`; out-of-range is a constructor bug.
        let g = scene.get(i).expect("index within scene");
        // Pure, so hoisting it ahead of the depth cull (the reference
        // evaluates it after) changes no output — see `run_lanes_scalar`.
        let cov3 = covariance_of(i, g);
        pos[0][lane] = g.position.x;
        pos[1][lane] = g.position.y;
        pos[2][lane] = g.position.z;
        for (c, cols) in cov.chunks_exact_mut(3).enumerate() {
            cols[0][lane] = cov3.at(0, c);
            cols[1][lane] = cov3.at(1, c);
            cols[2][lane] = cov3.at(2, c);
        }
        gs[lane] = Some(g);
    }

    let mut group = GroupOut::default();
    if level == SimdLevel::Avx2 {
        // SAFETY: callers clamp `level` to `simd::detected_level()`, so the
        // AVX2 feature is present on this CPU.
        unsafe { group_avx2(fc, &pos, &cov, &mut group) }
    } else {
        // SAFETY: as above — `Sse` is only resolved when SSE4.1 is present.
        unsafe { group_sse(fc, &pos, &cov, &mut group) }
    }

    for (lane, &i) in idx.iter().enumerate() {
        // gaurast-check: allow(panic): filled by the gather loop above for
        // every lane of the (full) group.
        let g = gs[lane].expect("lane gathered above");
        let lane_out = LaneOut {
            code: group.code[lane],
            mean_x: group.mean_x[lane],
            mean_y: group.mean_y[lane],
            depth: group.depth[lane],
            conic_a: group.conic_a[lane],
            conic_b: group.conic_b[lane],
            conic_c: group.conic_c[lane],
            radius: group.radius[lane],
        };
        finalize_lane(out, i, g, &lane_out, cam_pos);
    }
}

/// The reference Stage-1 kernel for one Gaussian, restructured to *return*
/// its cull class and splat values instead of tallying/pushing in place.
/// Every expression is textually the one `preprocess::preprocess_over`
/// evaluates, in the same order.
fn lane_scalar(camera: &Camera, g: &Gaussian3, cov3: Mat3, fc: &FrameConsts) -> LaneOut {
    let p_cam = camera.world_to_camera(g.position);
    if p_cam.z < camera.near() || p_cam.z > camera.far() {
        return LaneOut {
            code: CODE_DEPTH,
            ..LaneOut::default()
        };
    }
    let focal = camera.focal();
    let inv_z = 1.0 / p_cam.z;
    let mean = Vec2::new(
        focal.x * p_cam.x * inv_z + camera.principal().x,
        focal.y * p_cam.y * inv_z + camera.principal().y,
    );
    let tx = (p_cam.x * inv_z).clamp(-1.3 * fc.tan_half_x, 1.3 * fc.tan_half_x) * p_cam.z;
    let ty = (p_cam.y * inv_z).clamp(-1.3 * fc.tan_half_y, 1.3 * fc.tan_half_y) * p_cam.z;
    let j = Mat3::from_rows(
        focal.x * inv_z,
        0.0,
        -focal.x * tx * inv_z * inv_z,
        0.0,
        focal.y * inv_z,
        -focal.y * ty * inv_z * inv_z,
        0.0,
        0.0,
        0.0,
    );
    let t = j * fc.view_rot;
    let cov2_full = t * cov3 * t.transposed();
    let mut cov2 = cov2_full.upper_left_2x2();
    cov2 = cov2 + Mat2::from_rows(COV2D_LOW_PASS, 0.0, 0.0, COV2D_LOW_PASS);
    let Some(inv) = cov2.inverse() else {
        return LaneOut {
            code: CODE_CONIC,
            ..LaneOut::default()
        };
    };
    let (l1, _l2) = cov2.symmetric_eigenvalues();
    let radius = (3.0 * l1.max(0.0).sqrt()).ceil();
    let vals = LaneOut {
        code: CODE_SURVIVOR,
        mean_x: mean.x,
        mean_y: mean.y,
        depth: p_cam.z,
        conic_a: inv.at(0, 0),
        conic_b: inv.at(0, 1),
        conic_c: inv.at(1, 1),
        radius,
    };
    if !(mean.is_finite() && radius.is_finite()) {
        return LaneOut {
            code: CODE_NON_FINITE,
            ..vals
        };
    }
    if radius < 1.0 {
        return LaneOut {
            code: CODE_RADIUS,
            ..vals
        };
    }
    if mean.x + radius < 0.0
        || mean.x - radius > fc.w
        || mean.y + radius < 0.0
        || mean.y - radius > fc.h
    {
        return LaneOut {
            code: CODE_OFFSCREEN,
            ..vals
        };
    }
    vals
}

/// Op bundle for everything from the depth-cull comparisons through the
/// low-pass filter — what the reference tallies before attempting the
/// conic inversion: depth cmp (2), mean (1 div, 4 mul, 2 add), Jacobian
/// (8 mul, 2 cmp), both 3×3 covariance products (54+36 mul, 36+24 add),
/// low-pass (2 add).
fn charge_through_low_pass(ops: &mut OpCounts) {
    ops.add += 64;
    ops.mul += 102;
    ops.div += 1;
    ops.cmp += 4;
}

/// Op bundle for the conic inversion (3 mul, 1 div, 1 add) and the
/// eigenvalue/radius computation (3 mul, 2 add, 1 cmp) — tallied by every
/// Gaussian whose inversion succeeds.
fn charge_inverse_and_radius(ops: &mut OpCounts) {
    ops.mul += 6;
    ops.div += 1;
    ops.add += 3;
    ops.cmp += 1;
}

/// Applies one projected lane to the output: charges the constant op
/// bundle for its cull class, then (for survivors) evaluates SH color and
/// pushes the splat — the serial part of the scalar kernel, unchanged.
fn finalize_lane(
    out: &mut PreprocessOutput,
    i: usize,
    g: &Gaussian3,
    lane: &LaneOut,
    cam_pos: Vec3,
) {
    match lane.code {
        CODE_DEPTH => {
            out.culled += 1;
        }
        CODE_CONIC => {
            charge_through_low_pass(&mut out.ops);
            out.culled += 1;
        }
        CODE_NON_FINITE | CODE_RADIUS | CODE_OFFSCREEN => {
            // Identical to `preprocess::OFFSCREEN_CULL_OPS` — the late cull
            // branches all charge the full pre-cull bundle.
            charge_through_low_pass(&mut out.ops);
            charge_inverse_and_radius(&mut out.ops);
            out.culled += 1;
            if lane.code == CODE_NON_FINITE {
                out.culled_non_finite += 1;
            }
        }
        _ => {
            charge_through_low_pass(&mut out.ops);
            charge_inverse_and_radius(&mut out.ops);
            // The four screen-bounds comparisons, tallied only on survival.
            out.ops.cmp += 4;
            let dir = (g.position - cam_pos)
                .try_normalized()
                .unwrap_or(Vec3::new(0.0, 0.0, 1.0));
            let color = g.color.eval(dir);
            let n_coeff = g.color.coeffs().len() as u64;
            out.ops.mul += 3 * n_coeff + 9;
            out.ops.add += 3 * n_coeff;
            out.splats.push(Splat2D {
                mean: Vec2::new(lane.mean_x, lane.mean_y),
                conic: [lane.conic_a, lane.conic_b, lane.conic_c],
                depth: lane.depth,
                color,
                opacity: g.opacity,
                radius: lane.radius,
                source: i as u32,
            });
        }
    }
}

/// Emits one vector projection kernel. The two instantiations (SSE4.1 ×4,
/// AVX2 ×8) share this single body so they cannot drift apart; only the
/// intrinsic names and lane count differ. `$lt`/`$gt`/`$unord` are the
/// ordered less-than / ordered greater-than / unordered comparisons —
/// exactly the predicates the scalar `<`, `>`, and `is_nan` checks lower
/// to (NaN compares false under the ordered predicates).
#[cfg(target_arch = "x86_64")]
macro_rules! stage1_kernel {
    (
        $name:ident, $feat:literal, $lanes:expr,
        $loadu:ident, $storeu:ident, $set1:ident, $castsi:ident, $set1_epi32:ident,
        $add:ident, $sub:ident, $mul:ident, $div:ident, $sqrt:ident,
        $min:ident, $max:ident, $ceil:ident,
        $and:ident, $or:ident, $andnot:ident, $xor:ident, $blendv:ident, $movemask:ident,
        $lt:ident, $gt:ident, $unord:ident
    ) => {
        #[target_feature(enable = $feat)]
        #[allow(clippy::too_many_lines, clippy::similar_names)]
        fn $name(
            fc: &FrameConsts,
            pos: &[[f32; LANES_MAX]; 3],
            cov: &[[f32; LANES_MAX]; 9],
            out: &mut GroupOut,
        ) {
            let zero = $set1(0.0);
            let one = $set1(1.0);

            // SAFETY: every source is a stack array of `LANES_MAX` (8) f32s
            // and the widest load reads 8 lanes, so all reads are in bounds.
            let (gx, gy, gz) = unsafe {
                (
                    $loadu(pos[0].as_ptr()),
                    $loadu(pos[1].as_ptr()),
                    $loadu(pos[2].as_ptr()),
                )
            };
            // SAFETY: as above — nine `LANES_MAX`-float stack arrays.
            let (c0x, c0y, c0z, c1x, c1y, c1z, c2x, c2y, c2z) = unsafe {
                (
                    $loadu(cov[0].as_ptr()),
                    $loadu(cov[1].as_ptr()),
                    $loadu(cov[2].as_ptr()),
                    $loadu(cov[3].as_ptr()),
                    $loadu(cov[4].as_ptr()),
                    $loadu(cov[5].as_ptr()),
                    $loadu(cov[6].as_ptr()),
                    $loadu(cov[7].as_ptr()),
                    $loadu(cov[8].as_ptr()),
                )
            };

            // world_to_camera: rows 0..2 of `view * [p, 1]`. The scalar
            // path's trailing `cols[3][r] * 1.0` is bitwise `cols[3][r]`
            // (IEEE multiplication by one is exact), so the translation
            // column is added directly.
            let pcx = $add(
                $add(
                    $add($mul($set1(fc.vm[0][0]), gx), $mul($set1(fc.vm[0][1]), gy)),
                    $mul($set1(fc.vm[0][2]), gz),
                ),
                $set1(fc.vm[0][3]),
            );
            let pcy = $add(
                $add(
                    $add($mul($set1(fc.vm[1][0]), gx), $mul($set1(fc.vm[1][1]), gy)),
                    $mul($set1(fc.vm[1][2]), gz),
                ),
                $set1(fc.vm[1][3]),
            );
            let pcz = $add(
                $add(
                    $add($mul($set1(fc.vm[2][0]), gx), $mul($set1(fc.vm[2][1]), gy)),
                    $mul($set1(fc.vm[2][2]), gz),
                ),
                $set1(fc.vm[2][3]),
            );

            // Depth cull: `z < near || z > far` (ordered — NaN z falls
            // through exactly like the scalar comparisons and is caught by
            // the non-finite cull).
            let m_depth = $or($lt(pcz, $set1(fc.near)), $gt(pcz, $set1(fc.far)));

            let inv_z = $div(one, pcz);
            let mean_x = $add($mul($mul($set1(fc.fx), pcx), inv_z), $set1(fc.cx));
            let mean_y = $add($mul($mul($set1(fc.fy), pcy), inv_z), $set1(fc.cy));

            // `f32::clamp` via min/max. The packed min/max return the
            // *second* operand on NaN, which would pin a NaN ratio to the
            // bound where the scalar clamp propagates it — restore NaN
            // lanes explicitly (reachable when the view transform
            // overflows to `inf - inf`).
            let t0x = $mul(pcx, inv_z);
            let clx = $min($max(t0x, $set1(fc.lo_x)), $set1(fc.hi_x));
            let clx = $blendv(clx, t0x, $unord(t0x, t0x));
            let tx = $mul(clx, pcz);
            let t0y = $mul(pcy, inv_z);
            let cly = $min($max(t0y, $set1(fc.lo_y)), $set1(fc.hi_y));
            let cly = $blendv(cly, t0y, $unord(t0y, t0y));
            let ty = $mul(cly, pcz);

            // EWA Jacobian `j` (row 2 is all zero and never materialized).
            let jxx = $mul($set1(fc.fx), inv_z);
            let jyy = $mul($set1(fc.fy), inv_z);
            let jxz = $mul($mul($mul($set1(fc.neg_fx), tx), inv_z), inv_z);
            let jyz = $mul($mul($mul($set1(fc.neg_fy), ty), inv_z), inv_z);

            // t = j * view_rot, rows 0..1 (`t<r><k>` = row r, column k).
            // The literal `0.0 * r` terms reproduce the scalar kernel's
            // signed-zero products from `j`'s structural zeros.
            let r00 = $set1(fc.r3[0][0]);
            let r01 = $set1(fc.r3[0][1]);
            let r02 = $set1(fc.r3[0][2]);
            let r10 = $set1(fc.r3[1][0]);
            let r11 = $set1(fc.r3[1][1]);
            let r12 = $set1(fc.r3[1][2]);
            let r20 = $set1(fc.r3[2][0]);
            let r21 = $set1(fc.r3[2][1]);
            let r22 = $set1(fc.r3[2][2]);
            let t00 = $add($add($mul(jxx, r00), $mul(zero, r01)), $mul(jxz, r02));
            let t01 = $add($add($mul(jxx, r10), $mul(zero, r11)), $mul(jxz, r12));
            let t02 = $add($add($mul(jxx, r20), $mul(zero, r21)), $mul(jxz, r22));
            let t10 = $add($add($mul(zero, r00), $mul(jyy, r01)), $mul(jyz, r02));
            let t11 = $add($add($mul(zero, r10), $mul(jyy, r11)), $mul(jyz, r12));
            let t12 = $add($add($mul(zero, r20), $mul(jyy, r21)), $mul(jyz, r22));

            // m1 = t * cov3, rows 0..1 (`m<r><c>` = row r, column c).
            let m00 = $add($add($mul(t00, c0x), $mul(t01, c0y)), $mul(t02, c0z));
            let m01 = $add($add($mul(t00, c1x), $mul(t01, c1y)), $mul(t02, c1z));
            let m02 = $add($add($mul(t00, c2x), $mul(t01, c2y)), $mul(t02, c2z));
            let m10 = $add($add($mul(t10, c0x), $mul(t11, c0y)), $mul(t12, c0z));
            let m11 = $add($add($mul(t10, c1x), $mul(t11, c1y)), $mul(t12, c1z));
            let m12 = $add($add($mul(t10, c2x), $mul(t11, c2y)), $mul(t12, c2z));

            // Upper-left 2×2 of m1 * tᵀ (`e<r><c>`), then the low-pass
            // filter — the scalar path adds a `from_rows(0.3, 0, 0, 0.3)`
            // matrix component-wise, so the off-diagonals add literal zero.
            let e00 = $add($add($mul(m00, t00), $mul(m01, t01)), $mul(m02, t02));
            let e01 = $add($add($mul(m00, t10), $mul(m01, t11)), $mul(m02, t12));
            let e10 = $add($add($mul(m10, t00), $mul(m11, t01)), $mul(m12, t02));
            let e11 = $add($add($mul(m10, t10), $mul(m11, t11)), $mul(m12, t12));
            let lp = $set1(COV2D_LOW_PASS);
            let c00 = $add(e00, lp);
            let c01 = $add(e01, zero);
            let c10 = $add(e10, zero);
            let c11 = $add(e11, lp);

            // Conic inversion. Cull mask is `Mat2::inverse`'s None
            // condition: `!det.is_finite() || det.abs() < 1e-20`.
            let det = $sub($mul(c00, c11), $mul(c01, c10));
            let abs_mask = $castsi($set1_epi32(0x7fff_ffff));
            let sign_mask = $castsi($set1_epi32(i32::MIN));
            let all_ones = $castsi($set1_epi32(-1));
            let inf = $set1(f32::INFINITY);
            let abs_det = $and(det, abs_mask);
            let m_conic = $or(
                $andnot($lt(abs_det, inf), all_ones),
                $lt(abs_det, $set1(1e-20)),
            );
            let inv_det = $div(one, det);
            let conic_a = $mul(c11, inv_det);
            let conic_b = $mul($xor(c01, sign_mask), inv_det);
            let conic_c = $mul(c00, inv_det);

            // Eigenvalues and the 3σ radius. `f32::max(x, 0.0)` returns the
            // second operand (0.0) on NaN — exactly the packed-max rule.
            let mid = $mul($set1(0.5), $add(c00, c11));
            let disc = $sqrt($max($sub($mul(mid, mid), det), zero));
            let l1 = $add(mid, disc);
            let radius = $ceil($mul($set1(3.0), $sqrt($max(l1, zero))));

            // Non-finite cull: `!(mean.is_finite() && radius.is_finite())`.
            let fin = $and(
                $and(
                    $lt($and(mean_x, abs_mask), inf),
                    $lt($and(mean_y, abs_mask), inf),
                ),
                $lt($and(radius, abs_mask), inf),
            );
            let m_nf = $andnot(fin, all_ones);
            let m_rad = $lt(radius, one);
            let m_off = $or(
                $or(
                    $lt($add(mean_x, radius), zero),
                    $gt($sub(mean_x, radius), $set1(fc.w)),
                ),
                $or(
                    $lt($add(mean_y, radius), zero),
                    $gt($sub(mean_y, radius), $set1(fc.h)),
                ),
            );

            // Classify every lane by the first cull it hit, in the scalar
            // kernel's branch order.
            let bd = $movemask(m_depth);
            let bc = $movemask(m_conic);
            let bn = $movemask(m_nf);
            let br = $movemask(m_rad);
            let bo = $movemask(m_off);
            for (lane, code) in out.code.iter_mut().take($lanes).enumerate() {
                let bit = 1i32 << lane;
                *code = if bd & bit != 0 {
                    CODE_DEPTH
                } else if bc & bit != 0 {
                    CODE_CONIC
                } else if bn & bit != 0 {
                    CODE_NON_FINITE
                } else if br & bit != 0 {
                    CODE_RADIUS
                } else if bo & bit != 0 {
                    CODE_OFFSCREEN
                } else {
                    CODE_SURVIVOR
                };
            }

            // SAFETY: every destination is a stack array of `LANES_MAX` (8)
            // f32s and the widest store writes 8 lanes — all in bounds.
            unsafe {
                $storeu(out.mean_x.as_mut_ptr(), mean_x);
                $storeu(out.mean_y.as_mut_ptr(), mean_y);
                $storeu(out.depth.as_mut_ptr(), pcz);
                $storeu(out.conic_a.as_mut_ptr(), conic_a);
                $storeu(out.conic_b.as_mut_ptr(), conic_b);
                $storeu(out.conic_c.as_mut_ptr(), conic_c);
                $storeu(out.radius.as_mut_ptr(), radius);
            }
        }
    };
}

/// Ordered `<` / `>` and unordered (NaN) comparison wrappers — the SSE
/// legacy predicates and the AVX immediate-predicate form spelled the same
/// way so [`stage1_kernel!`] can name them uniformly.
#[cfg(target_arch = "x86_64")]
mod cmp {
    use core::arch::x86_64::*;

    #[target_feature(enable = "sse4.1")]
    pub(super) fn lt_128(a: __m128, b: __m128) -> __m128 {
        _mm_cmplt_ps(a, b)
    }
    #[target_feature(enable = "sse4.1")]
    pub(super) fn gt_128(a: __m128, b: __m128) -> __m128 {
        _mm_cmpgt_ps(a, b)
    }
    #[target_feature(enable = "sse4.1")]
    pub(super) fn unord_128(a: __m128, b: __m128) -> __m128 {
        _mm_cmpunord_ps(a, b)
    }
    #[target_feature(enable = "avx2")]
    pub(super) fn lt_256(a: __m256, b: __m256) -> __m256 {
        _mm256_cmp_ps::<_CMP_LT_OQ>(a, b)
    }
    #[target_feature(enable = "avx2")]
    pub(super) fn gt_256(a: __m256, b: __m256) -> __m256 {
        _mm256_cmp_ps::<_CMP_GT_OQ>(a, b)
    }
    #[target_feature(enable = "avx2")]
    pub(super) fn unord_256(a: __m256, b: __m256) -> __m256 {
        _mm256_cmp_ps::<_CMP_UNORD_Q>(a, b)
    }
}

#[cfg(target_arch = "x86_64")]
use cmp::{gt_128, gt_256, lt_128, lt_256, unord_128, unord_256};

#[cfg(target_arch = "x86_64")]
stage1_kernel!(
    group_sse,
    "sse4.1",
    4,
    _mm_loadu_ps,
    _mm_storeu_ps,
    _mm_set1_ps,
    _mm_castsi128_ps,
    _mm_set1_epi32,
    _mm_add_ps,
    _mm_sub_ps,
    _mm_mul_ps,
    _mm_div_ps,
    _mm_sqrt_ps,
    _mm_min_ps,
    _mm_max_ps,
    _mm_ceil_ps,
    _mm_and_ps,
    _mm_or_ps,
    _mm_andnot_ps,
    _mm_xor_ps,
    _mm_blendv_ps,
    _mm_movemask_ps,
    lt_128,
    gt_128,
    unord_128
);

#[cfg(target_arch = "x86_64")]
stage1_kernel!(
    group_avx2,
    "avx2",
    8,
    _mm256_loadu_ps,
    _mm256_storeu_ps,
    _mm256_set1_ps,
    _mm256_castsi256_ps,
    _mm256_set1_epi32,
    _mm256_add_ps,
    _mm256_sub_ps,
    _mm256_mul_ps,
    _mm256_div_ps,
    _mm256_sqrt_ps,
    _mm256_min_ps,
    _mm256_max_ps,
    _mm256_ceil_ps,
    _mm256_and_ps,
    _mm256_or_ps,
    _mm256_andnot_ps,
    _mm256_xor_ps,
    _mm256_blendv_ps,
    _mm256_movemask_ps,
    lt_256,
    gt_256,
    unord_256
);
