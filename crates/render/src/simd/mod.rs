//! Runtime-selected SIMD data path for the Stage-1 and Stage-3 hot loops.
//!
//! The GauRast thesis is that 3DGS rendering is rasterizer-style
//! *data-parallel* work; this module demonstrates the same parallelism on
//! host vector units. Stage 1's per-Gaussian EWA projection + conic math
//! (`stage1`) runs over 4/8-Gaussian lane groups, and Stage 3's
//! per-pixel conic evaluation + front-to-back blending (`stage3`) runs
//! over 4/8-pixel groups along tile rows, using `core::arch` x86-64
//! SSE4.1 / AVX2 intrinsics.
//!
//! # Bit-identity contract
//!
//! The SIMD kernels are **not** allowed to change a single output bit
//! relative to the scalar reference (`preprocess_over`, `rasterize_tile`),
//! at any worker width, in either frame-graph mode. The recipe:
//!
//! 1. The scalar kernels were first *restructured* into lane-group form
//!    (gather inputs, evaluate per lane in the exact original operation
//!    order, finalize in lane order) without vectorizing — proven
//!    bit-identical to the verbatim kernels by proptest.
//! 2. The SSE/AVX2 kernels then replace each per-lane scalar operation
//!    with the corresponding *per-lane-exact* vector instruction:
//!    IEEE-754 add/sub/mul/div/sqrt/min/max/round are correctly rounded
//!    per lane, so `addps` ≡ 4 × `addss` bit-for-bit. No FMA contraction,
//!    no reassociation, no approximate reciprocal/rsqrt instructions.
//! 3. Transcendentals stay scalar: `exp` is extracted per active lane and
//!    computed with the very same `f32::exp` the reference calls.
//!
//! Branches become lane masks; operation-count tallies become mask
//! popcounts (each scalar branch tallies a constant op bundle, so a
//! popcount-scaled bundle reproduces the counts exactly).
//!
//! # Level selection
//!
//! [`VectorMode`] is the user-facing knob
//! ([`crate::pipeline::RenderConfig::vector_mode`]); [`VectorMode::resolve`]
//! collapses it to a concrete [`SimdLevel`] exactly once per configuration
//! read, using CPU-feature detection that is probed a single time per
//! process and cached in a `OnceLock` behind the [`crate::sync`] facade —
//! no `is_x86_feature_detected!` ever runs inside per-frame code. The
//! [`VECTOR_ENV`] environment variable overrides the configured mode
//! (that is how CI forces the scalar path globally), and `Force*` modes
//! degrade to the best *supported* level at or below the forced one —
//! sound because every level renders bit-identical frames.

use crate::sync::lazy::OnceLock;

pub(crate) mod stage1;
pub(crate) mod stage3;

/// Environment variable overriding the configured [`VectorMode`]
/// (`scalar`, `auto`, `sse`, `avx2`). Unrecognized values are ignored.
/// Read once per process and cached; see [`VectorMode::resolve`].
pub const VECTOR_ENV: &str = "GAURAST_VECTOR";

/// User-facing selection of the vector data path, carried by
/// [`crate::pipeline::RenderConfig::vector_mode`] and the engine/service
/// builders. Every mode renders bit-identical frames — the knob trades
/// speed, never output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VectorMode {
    /// Always run the verbatim scalar reference kernels.
    Scalar,
    /// Pick the widest supported level at runtime (AVX2 → SSE4.1 →
    /// scalar). The default.
    #[default]
    Auto,
    /// Request the 4-wide SSE4.1 kernels; falls back to scalar when
    /// SSE4.1 is unsupported.
    ForceSse,
    /// Request the 8-wide AVX2 kernels; falls back to SSE4.1 or scalar
    /// when AVX2 is unsupported.
    ForceAvx2,
}

/// Concrete kernel set chosen for a session/frame — the result of
/// resolving a [`VectorMode`] against the host CPU (and the [`VECTOR_ENV`]
/// override). Ordered by lane width so `min` picks the narrower of a
/// requested and a supported level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum SimdLevel {
    /// Verbatim scalar reference kernels.
    #[default]
    Scalar,
    /// 4-wide SSE4.1 kernels.
    Sse,
    /// 8-wide AVX2 kernels.
    Avx2,
}

impl SimdLevel {
    /// Lane-group width of this level's kernels (1, 4, or 8 `f32` lanes).
    #[must_use]
    pub fn lanes(self) -> usize {
        match self {
            SimdLevel::Scalar => 1,
            SimdLevel::Sse => 4,
            SimdLevel::Avx2 => 8,
        }
    }
}

impl VectorMode {
    /// Resolves this mode to the concrete [`SimdLevel`] the kernels will
    /// run at on this host.
    ///
    /// The [`VECTOR_ENV`] override (if set and parseable) replaces the
    /// configured mode first; then `Auto` takes the detected level and
    /// `Force*` takes the minimum of the requested and detected levels
    /// (falling back is sound — all levels are bit-identical). Both the
    /// environment read and the CPUID probe are performed once per
    /// process and cached.
    #[must_use]
    pub fn resolve(self) -> SimdLevel {
        let mode = env_mode_override().unwrap_or(self);
        match mode {
            VectorMode::Scalar => SimdLevel::Scalar,
            VectorMode::Auto => detected_level(),
            VectorMode::ForceSse => SimdLevel::Sse.min(detected_level()),
            VectorMode::ForceAvx2 => SimdLevel::Avx2.min(detected_level()),
        }
    }
}

/// The widest [`SimdLevel`] the host CPU supports, probed once per
/// process and cached. Non-x86-64 hosts always report
/// [`SimdLevel::Scalar`].
#[must_use]
pub fn detected_level() -> SimdLevel {
    static DETECTED: OnceLock<SimdLevel> = OnceLock::new();
    *DETECTED.get_or_init(probe_level)
}

#[cfg(target_arch = "x86_64")]
fn probe_level() -> SimdLevel {
    if is_x86_feature_detected!("avx2") {
        SimdLevel::Avx2
    } else if is_x86_feature_detected!("sse4.1") {
        SimdLevel::Sse
    } else {
        SimdLevel::Scalar
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn probe_level() -> SimdLevel {
    SimdLevel::Scalar
}

/// The [`VECTOR_ENV`] override, read and parsed once per process.
/// `None` when the variable is unset or unparseable.
fn env_mode_override() -> Option<VectorMode> {
    static ENV_MODE: OnceLock<Option<VectorMode>> = OnceLock::new();
    *ENV_MODE.get_or_init(|| {
        // gaurast-check: allow(nondet): documented config knob, resolved once
        // per process and cached — never re-read inside the per-frame pipeline.
        let raw = std::env::var(VECTOR_ENV).ok()?;
        match raw.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(VectorMode::Scalar),
            "auto" => Some(VectorMode::Auto),
            "sse" | "force_sse" => Some(VectorMode::ForceSse),
            "avx2" | "force_avx2" => Some(VectorMode::ForceAvx2),
            _ => None,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_mode_always_resolves_scalar_unless_env_overrides() {
        if std::env::var(VECTOR_ENV).is_err() {
            assert_eq!(VectorMode::Scalar.resolve(), SimdLevel::Scalar);
        }
    }

    #[test]
    fn force_modes_never_exceed_detection() {
        let detected = detected_level();
        assert!(VectorMode::ForceSse.resolve() <= SimdLevel::Sse.min(detected).max(detected));
        assert!(VectorMode::ForceAvx2.resolve() <= detected.max(SimdLevel::Avx2));
        assert!(VectorMode::Auto.resolve() <= detected);
    }

    #[test]
    fn level_ordering_is_by_lane_width() {
        assert!(SimdLevel::Scalar < SimdLevel::Sse);
        assert!(SimdLevel::Sse < SimdLevel::Avx2);
    }
}
