//! RGB framebuffer with an optional depth plane.

use gaurast_math::Vec3;

/// A `width × height` RGB image (row-major, f32 channels in `[0, 1]`) with
/// a depth plane for the triangle path.
#[derive(Clone, Debug, PartialEq)]
pub struct Framebuffer {
    width: u32,
    height: u32,
    color: Vec<Vec3>,
    depth: Vec<f32>,
    transmittance: Vec<f32>,
}

impl Framebuffer {
    /// Black framebuffer with depth cleared to `+inf` and transmittance
    /// to 1 (fully see-through — nothing blended yet).
    ///
    /// # Panics
    /// Panics when either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(
            width > 0 && height > 0,
            "framebuffer dimensions must be positive"
        );
        let n = (width as usize) * (height as usize);
        Self {
            width,
            height,
            color: vec![Vec3::zero(); n],
            depth: vec![f32::INFINITY; n],
            transmittance: vec![1.0; n],
        }
    }

    /// Resets the framebuffer to its freshly constructed state (black,
    /// depth `+inf`, transmittance 1) without reallocating — the scratch
    /// path engine sessions use to reuse one buffer across frames.
    pub fn clear(&mut self) {
        self.color.fill(Vec3::zero());
        self.depth.fill(f32::INFINITY);
        self.transmittance.fill(1.0);
    }

    /// Width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    #[inline]
    fn index(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height);
        (y as usize) * (self.width as usize) + (x as usize)
    }

    /// Color at `(x, y)`.
    ///
    /// # Panics
    /// Panics in debug builds when out of bounds.
    #[inline]
    pub fn color_at(&self, x: u32, y: u32) -> Vec3 {
        self.color[self.index(x, y)]
    }

    /// Sets the color at `(x, y)`.
    #[inline]
    pub fn set_color(&mut self, x: u32, y: u32, c: Vec3) {
        let i = self.index(x, y);
        self.color[i] = c;
    }

    /// Depth at `(x, y)` (`+inf` where nothing was drawn).
    #[inline]
    pub fn depth_at(&self, x: u32, y: u32) -> f32 {
        self.depth[self.index(x, y)]
    }

    /// Sets the depth at `(x, y)`.
    #[inline]
    pub fn set_depth(&mut self, x: u32, y: u32, d: f32) {
        let i = self.index(x, y);
        self.depth[i] = d;
    }

    /// Remaining transmittance `T` at `(x, y)` (1 where nothing blended,
    /// → 0 where the pixel saturated). Only the Gaussian path writes it.
    #[inline]
    pub fn transmittance_at(&self, x: u32, y: u32) -> f32 {
        self.transmittance[self.index(x, y)]
    }

    /// Sets the transmittance at `(x, y)`.
    #[inline]
    pub fn set_transmittance(&mut self, x: u32, y: u32, t: f32) {
        let i = self.index(x, y);
        self.transmittance[i] = t;
    }

    /// Raw color plane (row-major).
    #[inline]
    pub fn colors(&self) -> &[Vec3] {
        &self.color
    }

    /// Mean absolute per-channel difference against another framebuffer —
    /// the metric used to validate the hardware model against this software
    /// reference.
    ///
    /// # Panics
    /// Panics when dimensions differ.
    pub fn mean_abs_diff(&self, other: &Framebuffer) -> f32 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "framebuffer dimensions differ"
        );
        let mut sum = 0.0f64;
        for (a, b) in self.color.iter().zip(&other.color) {
            let d = (*a - *b).abs();
            sum += f64::from(d.x + d.y + d.z);
        }
        (sum / (self.color.len() as f64 * 3.0)) as f32
    }

    /// Peak signal-to-noise ratio in dB against a reference image (per-channel
    /// MSE over a peak of 1.0). Returns `f32::INFINITY` for identical images.
    ///
    /// # Panics
    /// Panics when dimensions differ.
    pub fn psnr(&self, reference: &Framebuffer) -> f32 {
        assert_eq!(
            (self.width, self.height),
            (reference.width, reference.height),
            "framebuffer dimensions differ"
        );
        let mut mse = 0.0f64;
        for (a, b) in self.color.iter().zip(&reference.color) {
            let d = *a - *b;
            mse += f64::from(d.x * d.x + d.y * d.y + d.z * d.z);
        }
        mse /= self.color.len() as f64 * 3.0;
        if mse <= 0.0 {
            return f32::INFINITY;
        }
        (10.0 * (1.0 / mse).log10()) as f32
    }

    /// Fraction of pixels with any color (non-black), a cheap coverage
    /// metric for tests.
    pub fn coverage(&self) -> f32 {
        let lit = self
            .color
            .iter()
            .filter(|c| c.x > 0.0 || c.y > 0.0 || c.z > 0.0)
            .count();
        lit as f32 / self.color.len() as f32
    }

    /// Iterates over the image rows top to bottom, yielding each row's
    /// color and transmittance planes as disjoint mutable slices — the
    /// safe chunking primitive [`Framebuffer::tile_views_mut`] builds its
    /// per-tile views from.
    pub fn rows_mut(&mut self) -> impl Iterator<Item = (&mut [Vec3], &mut [f32])> {
        let w = self.width as usize;
        self.color
            .chunks_mut(w)
            .zip(self.transmittance.chunks_mut(w))
    }

    /// Splits the framebuffer into disjoint mutable tile views on a
    /// `tile_size` grid, in row-major tile order — the same grid and order
    /// as [`RasterWorkload`](crate::RasterWorkload) tile lists, so view
    /// `ty * tiles_x + tx` is exactly tile `(tx, ty)`.
    ///
    /// Each [`TileViewMut`] owns its tile's pixels and nothing else; the
    /// views can therefore be written by concurrent per-tile jobs with no
    /// locking and no aliasing (the split is pure `chunks_mut` /
    /// `split_at_mut`, no `unsafe`). The depth plane is not part of the
    /// view: the Gaussian path never writes it.
    ///
    /// # Panics
    /// Panics when `tile_size` is zero.
    pub fn tile_views_mut(&mut self, tile_size: u32) -> Vec<TileViewMut<'_>> {
        assert!(tile_size > 0, "tile size must be positive");
        let (width, height) = (self.width, self.height);
        let tiles_x = width.div_ceil(tile_size) as usize;
        let tiles_y = height.div_ceil(tile_size) as usize;
        let ts = tile_size as usize;

        let mut views: Vec<TileViewMut<'_>> = (0..tiles_y * tiles_x)
            .map(|i| {
                let (tx, ty) = ((i % tiles_x) as u32, (i / tiles_x) as u32);
                let x0 = tx * tile_size;
                let y0 = ty * tile_size;
                TileViewMut {
                    x0,
                    y0,
                    width: (x0 + tile_size).min(width) - x0,
                    height: (y0 + tile_size).min(height) - y0,
                    // gaurast-check: allow(alloc): row-pointer holders for
                    // the borrowed tile views; O(tiles × tile_rows) tiny
                    // Vecs that cannot outlive the framebuffer borrow.
                    color: Vec::with_capacity(ts),
                    transmittance: Vec::with_capacity(ts), // gaurast-check: allow(alloc): see above
                }
            })
            // gaurast-check: allow(alloc): per-frame view list, O(tiles).
            .collect();

        for (y, (mut color_row, mut trans_row)) in self.rows_mut().enumerate() {
            let band = y / ts;
            for tx in 0..tiles_x {
                let view = &mut views[band * tiles_x + tx];
                let w = view.width as usize;
                let (c, c_rest) = color_row.split_at_mut(w);
                let (t, t_rest) = trans_row.split_at_mut(w);
                view.color.push(c);
                view.transmittance.push(t);
                color_row = c_rest;
                trans_row = t_rest;
            }
        }
        views
    }

    /// Serializes to a binary PPM (P6) byte vector, for eyeballing example
    /// output. Channels are clamped to `[0, 1]` and quantized to 8 bits.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        for c in &self.color {
            let q = c.clamp(0.0, 1.0) * 255.0;
            out.push(q.x.round() as u8);
            out.push(q.y.round() as u8);
            out.push(q.z.round() as u8);
        }
        out
    }
}

/// An exclusive view of one tile's pixels inside a [`Framebuffer`],
/// produced by [`Framebuffer::tile_views_mut`]. Rows are borrowed
/// mutably and disjointly from the parent buffer, so one view per tile
/// job gives lock-free parallel writeback.
#[derive(Debug)]
pub struct TileViewMut<'a> {
    x0: u32,
    y0: u32,
    width: u32,
    height: u32,
    /// One color slice per tile row, `width` pixels each.
    color: Vec<&'a mut [Vec3]>,
    /// One transmittance slice per tile row, matching `color`.
    transmittance: Vec<&'a mut [f32]>,
}

impl TileViewMut<'_> {
    /// Leftmost image column covered by this view.
    #[inline]
    pub fn x0(&self) -> u32 {
        self.x0
    }

    /// Topmost image row covered by this view.
    #[inline]
    pub fn y0(&self) -> u32 {
        self.y0
    }

    /// View width in pixels (edge tiles may be partial).
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// View height in pixels (edge tiles may be partial).
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Writes the color and transmittance of the pixel at *tile-local*
    /// coordinates `(px, py)`.
    ///
    /// # Panics
    /// Panics when the coordinate is outside the view.
    #[inline]
    pub fn write(&mut self, px: u32, py: u32, color: Vec3, transmittance: f32) {
        self.color[py as usize][px as usize] = color;
        self.transmittance[py as usize][px as usize] = transmittance;
    }

    /// Registers this view's row ranges as written by the calling thread
    /// on the shadow race detector ([`crate::race_write!`]). The tile jobs
    /// call this on entry, so a binning bug that hands two jobs
    /// overlapping views fails a model run as a data race instead of
    /// silently corrupting pixels. Empty in ordinary builds.
    #[inline]
    pub fn race_register(&self) {
        #[cfg(gaurast_model_check)]
        {
            for row in &self.color {
                crate::race_write!(row.as_ptr(), row.len());
            }
            for row in &self.transmittance {
                crate::race_write!(row.as_ptr(), row.len());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_black_with_far_depth() {
        let fb = Framebuffer::new(4, 3);
        assert_eq!(fb.color_at(3, 2), Vec3::zero());
        assert_eq!(fb.depth_at(0, 0), f32::INFINITY);
        assert_eq!(fb.coverage(), 0.0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut fb = Framebuffer::new(8, 8);
        fb.set_color(5, 6, Vec3::new(0.1, 0.2, 0.3));
        fb.set_depth(5, 6, 2.5);
        assert_eq!(fb.color_at(5, 6), Vec3::new(0.1, 0.2, 0.3));
        assert_eq!(fb.depth_at(5, 6), 2.5);
        assert!(fb.coverage() > 0.0);
    }

    #[test]
    fn psnr_identical_is_infinite() {
        let fb = Framebuffer::new(4, 4);
        assert_eq!(fb.psnr(&fb.clone()), f32::INFINITY);
    }

    #[test]
    fn psnr_decreases_with_error() {
        let fb = Framebuffer::new(4, 4);
        let mut a = fb.clone();
        let mut b = fb.clone();
        a.set_color(0, 0, Vec3::splat(0.1));
        b.set_color(0, 0, Vec3::splat(0.5));
        assert!(a.psnr(&fb) > b.psnr(&fb));
    }

    #[test]
    fn mean_abs_diff_symmetry() {
        let mut a = Framebuffer::new(2, 2);
        let b = Framebuffer::new(2, 2);
        a.set_color(1, 1, Vec3::splat(0.6));
        assert_eq!(a.mean_abs_diff(&b), b.mean_abs_diff(&a));
        assert!((a.mean_abs_diff(&b) - 0.6 * 3.0 / 12.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "dimensions differ")]
    fn psnr_requires_same_dims() {
        let a = Framebuffer::new(2, 2);
        let b = Framebuffer::new(3, 2);
        let _ = a.psnr(&b);
    }

    #[test]
    fn ppm_header_and_size() {
        let fb = Framebuffer::new(5, 4);
        let ppm = fb.to_ppm();
        assert!(ppm.starts_with(b"P6\n5 4\n255\n"));
        assert_eq!(ppm.len(), 11 + 5 * 4 * 3);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dims_panic() {
        let _ = Framebuffer::new(0, 4);
    }

    #[test]
    fn rows_mut_covers_every_pixel_once() {
        let mut fb = Framebuffer::new(5, 3);
        let mut rows = 0;
        for (color, trans) in fb.rows_mut() {
            assert_eq!(color.len(), 5);
            assert_eq!(trans.len(), 5);
            for c in color.iter_mut() {
                *c = Vec3::one();
            }
            rows += 1;
        }
        assert_eq!(rows, 3);
        assert_eq!(fb.coverage(), 1.0);
    }

    #[test]
    fn tile_views_match_grid_and_write_through() {
        // 20x18 with 16px tiles: 2x2 grid with partial edge tiles.
        let mut fb = Framebuffer::new(20, 18);
        {
            let mut views = fb.tile_views_mut(16);
            assert_eq!(views.len(), 4);
            assert_eq!((views[0].width(), views[0].height()), (16, 16));
            assert_eq!((views[3].width(), views[3].height()), (4, 2));
            assert_eq!((views[3].x0(), views[3].y0()), (16, 16));
            views[3].write(1, 1, Vec3::new(0.2, 0.4, 0.6), 0.5);
            views[0].write(0, 0, Vec3::one(), 0.0);
        }
        assert_eq!(fb.color_at(17, 17), Vec3::new(0.2, 0.4, 0.6));
        assert_eq!(fb.transmittance_at(17, 17), 0.5);
        assert_eq!(fb.color_at(0, 0), Vec3::one());
        assert_eq!(fb.transmittance_at(0, 0), 0.0);
    }

    #[test]
    fn tile_views_are_disjoint_and_cover_everything() {
        let mut fb = Framebuffer::new(33, 17);
        let mut painted = 0u64;
        for view in &mut fb.tile_views_mut(16) {
            for py in 0..view.height() {
                for px in 0..view.width() {
                    view.write(px, py, Vec3::one(), 0.0);
                    painted += 1;
                }
            }
        }
        // Disjoint views that cover everything paint each pixel once.
        assert_eq!(painted, 33 * 17);
        assert_eq!(fb.coverage(), 1.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_tile_size_views_panic() {
        let _ = Framebuffer::new(4, 4).tile_views_mut(0);
    }
}
