//! RGB framebuffer with an optional depth plane.

use gaurast_math::Vec3;

/// A `width × height` RGB image (row-major, f32 channels in `[0, 1]`) with
/// a depth plane for the triangle path.
#[derive(Clone, Debug, PartialEq)]
pub struct Framebuffer {
    width: u32,
    height: u32,
    color: Vec<Vec3>,
    depth: Vec<f32>,
    transmittance: Vec<f32>,
}

impl Framebuffer {
    /// Black framebuffer with depth cleared to `+inf` and transmittance
    /// to 1 (fully see-through — nothing blended yet).
    ///
    /// # Panics
    /// Panics when either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(
            width > 0 && height > 0,
            "framebuffer dimensions must be positive"
        );
        let n = (width as usize) * (height as usize);
        Self {
            width,
            height,
            color: vec![Vec3::zero(); n],
            depth: vec![f32::INFINITY; n],
            transmittance: vec![1.0; n],
        }
    }

    /// Resets the framebuffer to its freshly constructed state (black,
    /// depth `+inf`, transmittance 1) without reallocating — the scratch
    /// path engine sessions use to reuse one buffer across frames.
    pub fn clear(&mut self) {
        self.color.fill(Vec3::zero());
        self.depth.fill(f32::INFINITY);
        self.transmittance.fill(1.0);
    }

    /// Width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    #[inline]
    fn index(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height);
        (y as usize) * (self.width as usize) + (x as usize)
    }

    /// Color at `(x, y)`.
    ///
    /// # Panics
    /// Panics in debug builds when out of bounds.
    #[inline]
    pub fn color_at(&self, x: u32, y: u32) -> Vec3 {
        self.color[self.index(x, y)]
    }

    /// Sets the color at `(x, y)`.
    #[inline]
    pub fn set_color(&mut self, x: u32, y: u32, c: Vec3) {
        let i = self.index(x, y);
        self.color[i] = c;
    }

    /// Depth at `(x, y)` (`+inf` where nothing was drawn).
    #[inline]
    pub fn depth_at(&self, x: u32, y: u32) -> f32 {
        self.depth[self.index(x, y)]
    }

    /// Sets the depth at `(x, y)`.
    #[inline]
    pub fn set_depth(&mut self, x: u32, y: u32, d: f32) {
        let i = self.index(x, y);
        self.depth[i] = d;
    }

    /// Remaining transmittance `T` at `(x, y)` (1 where nothing blended,
    /// → 0 where the pixel saturated). Only the Gaussian path writes it.
    #[inline]
    pub fn transmittance_at(&self, x: u32, y: u32) -> f32 {
        self.transmittance[self.index(x, y)]
    }

    /// Sets the transmittance at `(x, y)`.
    #[inline]
    pub fn set_transmittance(&mut self, x: u32, y: u32, t: f32) {
        let i = self.index(x, y);
        self.transmittance[i] = t;
    }

    /// Raw color plane (row-major).
    #[inline]
    pub fn colors(&self) -> &[Vec3] {
        &self.color
    }

    /// Mean absolute per-channel difference against another framebuffer —
    /// the metric used to validate the hardware model against this software
    /// reference.
    ///
    /// # Panics
    /// Panics when dimensions differ.
    pub fn mean_abs_diff(&self, other: &Framebuffer) -> f32 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "framebuffer dimensions differ"
        );
        let mut sum = 0.0f64;
        for (a, b) in self.color.iter().zip(&other.color) {
            let d = (*a - *b).abs();
            sum += f64::from(d.x + d.y + d.z);
        }
        (sum / (self.color.len() as f64 * 3.0)) as f32
    }

    /// Peak signal-to-noise ratio in dB against a reference image (per-channel
    /// MSE over a peak of 1.0). Returns `f32::INFINITY` for identical images.
    ///
    /// # Panics
    /// Panics when dimensions differ.
    pub fn psnr(&self, reference: &Framebuffer) -> f32 {
        assert_eq!(
            (self.width, self.height),
            (reference.width, reference.height),
            "framebuffer dimensions differ"
        );
        let mut mse = 0.0f64;
        for (a, b) in self.color.iter().zip(&reference.color) {
            let d = *a - *b;
            mse += f64::from(d.x * d.x + d.y * d.y + d.z * d.z);
        }
        mse /= self.color.len() as f64 * 3.0;
        if mse <= 0.0 {
            return f32::INFINITY;
        }
        (10.0 * (1.0 / mse).log10()) as f32
    }

    /// Fraction of pixels with any color (non-black), a cheap coverage
    /// metric for tests.
    pub fn coverage(&self) -> f32 {
        let lit = self
            .color
            .iter()
            .filter(|c| c.x > 0.0 || c.y > 0.0 || c.z > 0.0)
            .count();
        lit as f32 / self.color.len() as f32
    }

    /// Serializes to a binary PPM (P6) byte vector, for eyeballing example
    /// output. Channels are clamped to `[0, 1]` and quantized to 8 bits.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        for c in &self.color {
            let q = c.clamp(0.0, 1.0) * 255.0;
            out.push(q.x.round() as u8);
            out.push(q.y.round() as u8);
            out.push(q.z.round() as u8);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_black_with_far_depth() {
        let fb = Framebuffer::new(4, 3);
        assert_eq!(fb.color_at(3, 2), Vec3::zero());
        assert_eq!(fb.depth_at(0, 0), f32::INFINITY);
        assert_eq!(fb.coverage(), 0.0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut fb = Framebuffer::new(8, 8);
        fb.set_color(5, 6, Vec3::new(0.1, 0.2, 0.3));
        fb.set_depth(5, 6, 2.5);
        assert_eq!(fb.color_at(5, 6), Vec3::new(0.1, 0.2, 0.3));
        assert_eq!(fb.depth_at(5, 6), 2.5);
        assert!(fb.coverage() > 0.0);
    }

    #[test]
    fn psnr_identical_is_infinite() {
        let fb = Framebuffer::new(4, 4);
        assert_eq!(fb.psnr(&fb.clone()), f32::INFINITY);
    }

    #[test]
    fn psnr_decreases_with_error() {
        let fb = Framebuffer::new(4, 4);
        let mut a = fb.clone();
        let mut b = fb.clone();
        a.set_color(0, 0, Vec3::splat(0.1));
        b.set_color(0, 0, Vec3::splat(0.5));
        assert!(a.psnr(&fb) > b.psnr(&fb));
    }

    #[test]
    fn mean_abs_diff_symmetry() {
        let mut a = Framebuffer::new(2, 2);
        let b = Framebuffer::new(2, 2);
        a.set_color(1, 1, Vec3::splat(0.6));
        assert_eq!(a.mean_abs_diff(&b), b.mean_abs_diff(&a));
        assert!((a.mean_abs_diff(&b) - 0.6 * 3.0 / 12.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "dimensions differ")]
    fn psnr_requires_same_dims() {
        let a = Framebuffer::new(2, 2);
        let b = Framebuffer::new(3, 2);
        let _ = a.psnr(&b);
    }

    #[test]
    fn ppm_header_and_size() {
        let fb = Framebuffer::new(5, 4);
        let ppm = fb.to_ppm();
        assert!(ppm.starts_with(b"P6\n5 4\n255\n"));
        assert_eq!(ppm.len(), 11 + 5 * 4 * 3);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dims_panic() {
        let _ = Framebuffer::new(0, 4);
    }
}
