//! Binary serialization of rasterization workloads.
//!
//! A [`RasterWorkload`] is the exact interface between the software
//! pipeline and every architecture model, so being able to persist one —
//! a *workload trace* — makes hardware experiments reproducible without
//! re-running Stages 1–3: traces recorded on one machine replay bit-for-bit
//! on another, the same way architecture groups exchange trace files.
//!
//! Format: a fixed little-endian header (`magic, version, dims, counts`)
//! followed by the splat records, the per-tile index lists, and the
//! per-tile processed counts.

use crate::workload::RasterWorkload;
use crate::Splat2D;
use gaurast_math::{Vec2, Vec3};
use std::error::Error;
use std::fmt;

const MAGIC: &[u8; 8] = b"GAURWKL\0";
const VERSION: u32 = 1;
/// f32 words per serialized splat record.
const SPLAT_WORDS: usize = 11;

/// Errors raised when decoding a workload trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// Missing or wrong magic/version.
    BadHeader(String),
    /// The byte stream ended early or has trailing garbage.
    BadLength {
        /// Bytes expected.
        expected: usize,
        /// Bytes present.
        got: usize,
    },
    /// An index or count is inconsistent.
    Corrupt(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadHeader(m) => write!(f, "bad trace header: {m}"),
            TraceError::BadLength { expected, got } => {
                write!(f, "bad trace length: expected {expected} bytes, got {got}")
            }
            TraceError::Corrupt(m) => write!(f, "corrupt trace: {m}"),
        }
    }
}

impl Error for TraceError {}

/// Serializes a workload (with its processed counts) to bytes.
pub fn to_bytes(w: &RasterWorkload) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    let push_u32 = |v: u32, out: &mut Vec<u8>| out.extend_from_slice(&v.to_le_bytes());
    let push_f32 = |v: f32, out: &mut Vec<u8>| out.extend_from_slice(&v.to_le_bytes());
    push_u32(VERSION, &mut out);
    push_u32(w.width(), &mut out);
    push_u32(w.height(), &mut out);
    push_u32(w.tile_size(), &mut out);
    push_u32(w.splats().len() as u32, &mut out);

    for s in w.splats() {
        for v in [
            s.mean.x, s.mean.y, s.conic[0], s.conic[1], s.conic[2], s.depth, s.color.x, s.color.y,
            s.color.z, s.opacity, s.radius,
        ] {
            push_f32(v, &mut out);
        }
    }
    for ty in 0..w.tiles_y() {
        for tx in 0..w.tiles_x() {
            let list = w.tile_list(tx, ty);
            push_u32(list.len() as u32, &mut out);
            for &i in list {
                push_u32(i, &mut out);
            }
        }
    }
    for ty in 0..w.tiles_y() {
        for tx in 0..w.tiles_x() {
            push_u32(w.processed_count(tx, ty), &mut out);
        }
    }
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u32(&mut self) -> Result<u32, TraceError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(TraceError::BadLength {
                expected: end,
                got: self.bytes.len(),
            });
        }
        let v = u32::from_le_bytes(self.bytes[self.pos..end].try_into().expect("4 bytes"));
        self.pos = end;
        Ok(v)
    }

    fn f32(&mut self) -> Result<f32, TraceError> {
        Ok(f32::from_bits(self.u32()?))
    }
}

/// Decodes a workload trace.
///
/// # Errors
/// Returns a [`TraceError`] for malformed input; the decoded workload is
/// re-validated by [`RasterWorkload::new`]'s own invariants.
pub fn from_bytes(bytes: &[u8]) -> Result<RasterWorkload, TraceError> {
    if bytes.len() < 8 || &bytes[..8] != MAGIC {
        return Err(TraceError::BadHeader("magic mismatch".into()));
    }
    let mut r = Reader { bytes, pos: 8 };
    let version = r.u32()?;
    if version != VERSION {
        return Err(TraceError::BadHeader(format!(
            "unsupported version {version}"
        )));
    }
    let width = r.u32()?;
    let height = r.u32()?;
    let tile_size = r.u32()?;
    if width == 0 || height == 0 || tile_size == 0 {
        return Err(TraceError::Corrupt("zero dimension".into()));
    }
    let n_splats = r.u32()? as usize;
    if n_splats > bytes.len() / (SPLAT_WORDS * 4) + 1 {
        return Err(TraceError::Corrupt(format!(
            "splat count {n_splats} exceeds payload"
        )));
    }

    let mut splats = Vec::with_capacity(n_splats);
    for i in 0..n_splats {
        let mean = Vec2::new(r.f32()?, r.f32()?);
        let conic = [r.f32()?, r.f32()?, r.f32()?];
        let depth = r.f32()?;
        let color = Vec3::new(r.f32()?, r.f32()?, r.f32()?);
        let opacity = r.f32()?;
        let radius = r.f32()?;
        splats.push(Splat2D {
            mean,
            conic,
            depth,
            color,
            opacity,
            radius,
            source: i as u32,
        });
    }

    let tiles_x = width.div_ceil(tile_size);
    let tiles_y = height.div_ceil(tile_size);
    let tile_count = (tiles_x * tiles_y) as usize;
    let mut lists = Vec::with_capacity(tile_count);
    for t in 0..tile_count {
        let len = r.u32()? as usize;
        let mut list = Vec::with_capacity(len);
        for _ in 0..len {
            let idx = r.u32()?;
            if idx as usize >= n_splats {
                return Err(TraceError::Corrupt(format!("index {idx} out of bounds")));
            }
            list.push(idx);
        }
        // Processed counts are prefixes of the recorded order, so replay
        // must preserve that order exactly. `RasterWorkload::new`
        // re-establishes depth order (stably) — reject traces whose lists
        // are not already depth-sorted rather than silently replaying a
        // different processed set. Every trace this crate writes is
        // depth-sorted by construction.
        if !crate::sort::is_depth_sorted(&list, &splats) {
            return Err(TraceError::Corrupt(format!(
                "tile {t} list is not depth-sorted; processed prefixes \
                 would not survive replay"
            )));
        }
        lists.push(list);
    }

    let mut processed = Vec::with_capacity(tile_count);
    for (t, list) in lists.iter().enumerate() {
        let p = r.u32()?;
        if p as usize > list.len() {
            return Err(TraceError::Corrupt(format!(
                "processed count {p} exceeds tile {t} list"
            )));
        }
        processed.push(p);
    }
    if r.pos != bytes.len() {
        return Err(TraceError::BadLength {
            expected: r.pos,
            got: bytes.len(),
        });
    }

    let mut w = RasterWorkload::new(width, height, tile_size, splats, lists);
    w.set_processed(processed);
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rasterize::rasterize;
    use crate::tile::bin_splats;

    fn workload() -> RasterWorkload {
        let splats: Vec<Splat2D> = (0..80)
            .map(|i| Splat2D {
                mean: Vec2::new((i * 11 % 64) as f32, (i * 17 % 48) as f32),
                conic: [0.07, 0.01, 0.09],
                depth: 1.0 + i as f32 * 0.1,
                color: Vec3::new(0.2, 0.5, 0.8),
                opacity: 0.6,
                radius: 5.0,
                source: i,
            })
            .collect();
        let mut w = bin_splats(splats, 64, 48, 16);
        let _ = rasterize(&mut w);
        w
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let w = workload();
        let back = from_bytes(&to_bytes(&w)).expect("valid trace");
        assert_eq!(back.width(), w.width());
        assert_eq!(back.blend_work(), w.blend_work());
        assert_eq!(back.total_pairs(), w.total_pairs());
        // The replayed workload renders identically.
        let mut w2 = back.clone();
        let mut w1 = w.clone();
        let (a, _) = rasterize(&mut w1);
        let (b, _) = rasterize(&mut w2);
        assert_eq!(a.mean_abs_diff(&b), 0.0);
    }

    #[test]
    fn trace_replays_identically_on_hardware_model() {
        // Same cycles from the trace as from the original workload.
        let w = workload();
        let back = from_bytes(&to_bytes(&w)).expect("valid trace");
        // blend_work + per-tile counts determine the simulation; both equal.
        for ty in 0..w.tiles_y() {
            for tx in 0..w.tiles_x() {
                assert_eq!(w.processed_count(tx, ty), back.processed_count(tx, ty));
                assert_eq!(w.tile_list(tx, ty), back.tile_list(tx, ty));
            }
        }
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            from_bytes(b"NOTATRACE"),
            Err(TraceError::BadHeader(_))
        ));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = to_bytes(&workload());
        for cut in [9, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(from_bytes(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = to_bytes(&workload());
        bytes.push(0);
        assert!(matches!(
            from_bytes(&bytes),
            Err(TraceError::BadLength { .. })
        ));
    }

    #[test]
    fn corrupt_index_rejected() {
        let w = workload();
        let mut bytes = to_bytes(&w);
        // Corrupt the first tile-list entry (right after header + splats).
        let lists_start = 8 + 4 * 5 + w.splats().len() * SPLAT_WORDS * 4;
        // first u32 is the list length; next is the first index.
        let idx_pos = lists_start + 4;
        if bytes.len() > idx_pos + 4 {
            bytes[idx_pos..idx_pos + 4].copy_from_slice(&u32::MAX.to_le_bytes());
            assert!(from_bytes(&bytes).is_err());
        }
    }

    #[test]
    fn unsorted_trace_list_rejected() {
        // A hand-crafted (or pre-CSR) trace whose tile list is not
        // depth-sorted must fail to decode: its processed prefix counts
        // reference an order replay cannot reproduce.
        let splats: Vec<Splat2D> = [3.0f32, 1.0]
            .iter()
            .map(|&depth| Splat2D {
                mean: Vec2::new(8.0, 8.0),
                conic: [0.1, 0.0, 0.1],
                depth,
                color: Vec3::one(),
                opacity: 0.5,
                radius: 4.0,
                source: 0,
            })
            .collect();
        let mut w = RasterWorkload::new(16, 16, 16, splats, vec![vec![0, 1]]);
        w.set_processed(vec![1]);
        let mut bytes = to_bytes(&w);
        // The constructor sorted the list to [1, 0]; swap the two index
        // words back to the unsorted [0, 1] on the wire.
        let lists_start = 8 + 4 * 5 + w.splats().len() * SPLAT_WORDS * 4;
        let (a, b) = (lists_start + 4, lists_start + 8);
        bytes[a..a + 4].copy_from_slice(&0u32.to_le_bytes());
        bytes[b..b + 4].copy_from_slice(&1u32.to_le_bytes());
        match from_bytes(&bytes) {
            Err(TraceError::Corrupt(msg)) => assert!(msg.contains("depth-sorted"), "{msg}"),
            other => panic!("unsorted trace must be rejected, got {other:?}"),
        }
    }

    #[test]
    fn empty_workload_roundtrips() {
        let w = bin_splats(vec![], 32, 32, 16);
        let back = from_bytes(&to_bytes(&w)).expect("valid trace");
        assert_eq!(back.total_pairs(), 0);
    }
}
