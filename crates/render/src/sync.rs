//! The concurrency facade of the renderer: one import point for the
//! atomics and scoped threads its parallel protocols are built on.
//!
//! # Why a facade
//!
//! The worker pool's claim cursor ([`crate::pool::WorkerPool::run`]) and
//! the radix sorter's histogram→prefix→scatter protocol
//! ([`crate::sort::RadixSorter`]) are lock-free by construction; their
//! correctness arguments (exactly-once claims, disjoint scatter ranges)
//! are stated in comments, not checked by the compiler. Routing every
//! atomic operation and thread spawn through this module makes those
//! protocols *model-checkable*: the `gaurast-check` crate can substitute
//! instrumented shadow primitives and exhaustively interleave them.
//!
//! # The two builds
//!
//! * **Default** (any ordinary `cargo build`/`test`): pure re-exports of
//!   `std::sync::atomic` and `std::thread::scope`. Zero-cost — release
//!   codegen is byte-for-byte what it would be importing `std` directly.
//! * **`--cfg gaurast_model_check`** (set via `RUSTFLAGS`, never a cargo
//!   feature, so feature unification can't turn it on by accident): the
//!   same names resolve to [`gaurast_check::shadow`] types. Every atomic
//!   operation becomes a yield point of a virtual scheduler and
//!   `thread::scope` registers shadow threads, letting
//!   `cargo test -p gaurast-check` (with the cfg) drive the *real*
//!   `WorkerPool` and `RadixSorter` code through every small interleaving
//!   — see `crates/check/tests/model.rs`.
//!
//! Outside a model run the shadow primitives fall through to plain `std`
//! behavior, so a model-check build still passes the ordinary suites.
//!
//! `Ordering` is always the real `std` enum; the shadow checker accepts
//! and ignores it (it explores sequentially consistent interleavings —
//! the weaker orderings used by the protocols are audited by hand at each
//! call site).

/// Atomic types used by the renderer's lock-free protocols.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    #[cfg(not(gaurast_model_check))]
    pub use std::sync::atomic::AtomicUsize;

    #[cfg(gaurast_model_check)]
    pub use gaurast_check::shadow::AtomicUsize;
}

/// Scoped-thread spawning used by the worker pool.
pub mod thread {
    #[cfg(not(gaurast_model_check))]
    pub use std::thread::{scope, Scope};

    #[cfg(gaurast_model_check)]
    pub use gaurast_check::shadow::{scope, Scope};
}
