//! The concurrency facade of the renderer: one import point for the
//! atomics and thread primitives its parallel protocols are built on.
//!
//! # Why a facade
//!
//! The persistent worker pool's park/wake generation handoff and claim
//! cursor ([`crate::pool::WorkerPool::run`]) and the radix sorter's
//! histogram→prefix→scatter protocol ([`crate::sort::RadixSorter`]) are
//! lock-free by construction; their correctness arguments (exactly-once
//! claims, no lost wakeups, disjoint scatter ranges) are stated in
//! comments, not checked by the compiler. Routing every atomic operation,
//! thread spawn, and park/unpark through this module makes those
//! protocols *model-checkable*: the `gaurast-check` crate can substitute
//! instrumented shadow primitives and exhaustively interleave them.
//!
//! # The two builds
//!
//! * **Default** (any ordinary `cargo build`/`test`): pure re-exports of
//!   `std::sync::atomic` and `std::thread`. Zero-cost — release
//!   codegen is byte-for-byte what it would be importing `std` directly.
//! * **`--cfg gaurast_model_check`** (set via `RUSTFLAGS`, never a cargo
//!   feature, so feature unification can't turn it on by accident): the
//!   same names resolve to [`gaurast_check::shadow`] types. Every atomic
//!   operation becomes a yield point of a virtual scheduler and
//!   `thread::spawn`/`thread::scope` register shadow threads, letting
//!   `cargo test -p gaurast-check` (with the cfg) drive the *real*
//!   `WorkerPool` and `RadixSorter` code through every small interleaving
//!   — see `crates/check/tests/model.rs`.
//!
//! Outside a model run the shadow primitives fall through to plain `std`
//! behavior, so a model-check build still passes the ordinary suites.
//!
//! `Ordering` is always the real `std` enum. The shadow checker executes
//! sequentially consistently, but the ordering each call site requests is
//! **machine-checked**, not hand-audited: it decides which happens-before
//! edges the operation contributes to the race detector's vector clocks
//! (`Relaxed` contributes none), so a protocol that under-orders a
//! publication shows up as a data race on the instrumented ranges below.
//!
//! # Race instrumentation
//!
//! The renderer's `unsafe` disjoint-write sites (radix scatter ranges,
//! pool job-slot publication, frame-graph `UnsafeCell` slots, framebuffer
//! tile rows) are annotated with three macros:
//!
//! * [`race_region!`](crate::race_region) — a purely lexical marker
//!   wrapping the unsafe block; the static
//!   `unsafe-instrumentation-coverage` rule of `gaurast-check deep`
//!   requires every hot-path-reachable unsafe write to sit inside one (or
//!   carry `// gaurast-check: allow(race): reason`). Expands to its body
//!   in every build.
//! * [`race_write!`](crate::race_write) / [`race_read!`](crate::race_read)
//!   — register the accessed address range with the happens-before race
//!   detector ([`gaurast_check::races`]). In ordinary builds they expand
//!   to `()` — zero codegen. Under `--cfg gaurast_model_check` they
//!   record `[ptr, ptr + len·size_of::<T>())` for the calling shadow
//!   thread, and an overlapping access unordered by happens-before fails
//!   the model run with both sites and the reproduction schedule.

/// Pointer-range registration helpers behind the instrumentation macros.
/// Model-check builds forward to [`gaurast_check::races`]; ordinary builds
/// compile them to empty `#[inline(always)]` bodies, so `race_read!` /
/// `race_write!` cost nothing while still type-checking their arguments.
pub mod races {
    /// Registers `len` elements starting at `ptr` as written by the
    /// calling shadow thread (no-op outside a model run).
    #[cfg(gaurast_model_check)]
    pub fn write_range<T>(ptr: *const T, len: usize, site: &'static str) {
        gaurast_check::races::write_range(ptr as usize, len * core::mem::size_of::<T>(), site);
    }

    /// Registers `len` elements starting at `ptr` as read by the calling
    /// shadow thread (no-op outside a model run).
    #[cfg(gaurast_model_check)]
    pub fn read_range<T>(ptr: *const T, len: usize, site: &'static str) {
        gaurast_check::races::read_range(ptr as usize, len * core::mem::size_of::<T>(), site);
    }

    /// Ordinary build: compiles to nothing.
    #[cfg(not(gaurast_model_check))]
    #[inline(always)]
    pub fn write_range<T>(_ptr: *const T, _len: usize, _site: &'static str) {}

    /// Ordinary build: compiles to nothing.
    #[cfg(not(gaurast_model_check))]
    #[inline(always)]
    pub fn read_range<T>(_ptr: *const T, _len: usize, _site: &'static str) {}
}

/// Lexically marks a region of unsafe shared-memory access for the static
/// `unsafe-instrumentation-coverage` rule (`gaurast-check deep`): every
/// unsafe write reachable from a hot root must sit inside a `race_region!`
/// (or carry an explicit `allow(race)` justification). Expands to its body
/// unchanged in **every** build — the label is documentation, the macro is
/// the machine-visible marker.
#[macro_export]
macro_rules! race_region {
    ($label:expr, $body:block) => {
        $body
    };
}

/// Registers a write of `$len` elements starting at pointer `$ptr` with
/// the shadow race detector, stamped with the call site's `file:line`. In
/// ordinary builds the helper it calls is an empty `#[inline(always)]`
/// function — zero codegen; under `--cfg gaurast_model_check` the byte
/// range is recorded on the shadow memory map and checked for
/// happens-before ordering against every conflicting access (see
/// [`sync`](crate::sync) module docs).
#[macro_export]
macro_rules! race_write {
    ($ptr:expr, $len:expr) => {
        $crate::sync::races::write_range($ptr, $len, concat!(file!(), ":", line!()))
    };
}

/// Registers a read of `$len` elements starting at pointer `$ptr` with
/// the shadow race detector — the read side of
/// [`race_write!`](crate::race_write), with the same zero-cost ordinary
/// build.
#[macro_export]
macro_rules! race_read {
    ($ptr:expr, $len:expr) => {
        $crate::sync::races::read_range($ptr, $len, concat!(file!(), ":", line!()))
    };
}

/// Atomic types used by the renderer's lock-free protocols.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    #[cfg(not(gaurast_model_check))]
    pub use std::sync::atomic::AtomicUsize;

    #[cfg(gaurast_model_check)]
    pub use gaurast_check::shadow::AtomicUsize;
}

/// One-time initialization primitives used for process-wide caches that
/// must be resolved **outside** the per-frame hot path (CPU-feature
/// detection, environment-variable overrides). `OnceLock` is plain `std`
/// in every build — its `get_or_init` is not a yield point of the shadow
/// scheduler because the values cached behind it are set once before any
/// frame work and then only read, so no interleaving can observe an
/// intermediate state the real `std` implementation would not produce.
pub mod lazy {
    pub use std::sync::OnceLock;
}

/// Thread spawning, parking and handles used by the worker pool: the
/// scoped primitives (legacy protocols) plus the non-scoped
/// `spawn`/`park`/`unpark` set the persistent [`crate::pool::WorkerPool`]
/// is built on.
pub mod thread {
    #[cfg(not(gaurast_model_check))]
    pub use std::thread::{current, park, scope, spawn, JoinHandle, Scope, Thread};

    #[cfg(gaurast_model_check)]
    pub use gaurast_check::shadow::{current, park, scope, spawn, JoinHandle, Scope, Thread};

    /// `true` when the calling thread is inside a poisoned model-check
    /// execution. Shutdown paths (the pool's `Drop`) consult this to skip
    /// the orderly park/unpark shutdown when the checker is already
    /// unwinding every shadow thread. Always `false` in ordinary builds.
    #[cfg(not(gaurast_model_check))]
    pub fn poisoned() -> bool {
        false
    }

    #[cfg(gaurast_model_check)]
    pub use gaurast_check::shadow::poisoned;
}
