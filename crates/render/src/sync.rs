//! The concurrency facade of the renderer: one import point for the
//! atomics and thread primitives its parallel protocols are built on.
//!
//! # Why a facade
//!
//! The persistent worker pool's park/wake generation handoff and claim
//! cursor ([`crate::pool::WorkerPool::run`]) and the radix sorter's
//! histogram→prefix→scatter protocol ([`crate::sort::RadixSorter`]) are
//! lock-free by construction; their correctness arguments (exactly-once
//! claims, no lost wakeups, disjoint scatter ranges) are stated in
//! comments, not checked by the compiler. Routing every atomic operation,
//! thread spawn, and park/unpark through this module makes those
//! protocols *model-checkable*: the `gaurast-check` crate can substitute
//! instrumented shadow primitives and exhaustively interleave them.
//!
//! # The two builds
//!
//! * **Default** (any ordinary `cargo build`/`test`): pure re-exports of
//!   `std::sync::atomic` and `std::thread`. Zero-cost — release
//!   codegen is byte-for-byte what it would be importing `std` directly.
//! * **`--cfg gaurast_model_check`** (set via `RUSTFLAGS`, never a cargo
//!   feature, so feature unification can't turn it on by accident): the
//!   same names resolve to [`gaurast_check::shadow`] types. Every atomic
//!   operation becomes a yield point of a virtual scheduler and
//!   `thread::spawn`/`thread::scope` register shadow threads, letting
//!   `cargo test -p gaurast-check` (with the cfg) drive the *real*
//!   `WorkerPool` and `RadixSorter` code through every small interleaving
//!   — see `crates/check/tests/model.rs`.
//!
//! Outside a model run the shadow primitives fall through to plain `std`
//! behavior, so a model-check build still passes the ordinary suites.
//!
//! `Ordering` is always the real `std` enum; the shadow checker accepts
//! and ignores it (it explores sequentially consistent interleavings —
//! the weaker orderings used by the protocols are audited by hand at each
//! call site).

/// Atomic types used by the renderer's lock-free protocols.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    #[cfg(not(gaurast_model_check))]
    pub use std::sync::atomic::AtomicUsize;

    #[cfg(gaurast_model_check)]
    pub use gaurast_check::shadow::AtomicUsize;
}

/// Thread spawning, parking and handles used by the worker pool: the
/// scoped primitives (legacy protocols) plus the non-scoped
/// `spawn`/`park`/`unpark` set the persistent [`crate::pool::WorkerPool`]
/// is built on.
pub mod thread {
    #[cfg(not(gaurast_model_check))]
    pub use std::thread::{current, park, scope, spawn, JoinHandle, Scope, Thread};

    #[cfg(gaurast_model_check)]
    pub use gaurast_check::shadow::{current, park, scope, spawn, JoinHandle, Scope, Thread};

    /// `true` when the calling thread is inside a poisoned model-check
    /// execution. Shutdown paths (the pool's `Drop`) consult this to skip
    /// the orderly park/unpark shutdown when the checker is already
    /// unwinding every shadow thread. Always `false` in ordinary builds.
    #[cfg(not(gaurast_model_check))]
    pub fn poisoned() -> bool {
        false
    }

    #[cfg(gaurast_model_check)]
    pub use gaurast_check::shadow::poisoned;
}
