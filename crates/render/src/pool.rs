//! A persistent worker pool for deterministic intra-frame data
//! parallelism.
//!
//! The three-stage pipeline decomposes into jobs that are *independent by
//! construction* — Stage 1 processes disjoint Gaussian chunks, Stage 3
//! processes disjoint tiles — so the pool's only contract is to run `n`
//! jobs, each exactly once, on up to `workers` threads. Work is claimed
//! from an atomic cursor (dynamic load balancing: an expensive tile on one
//! worker never stalls the others), and results are written into
//! per-job slots, so the *assignment* of jobs to threads is free to vary
//! while the *output* is bit-identical run to run and identical to the
//! serial schedule.
//!
//! # Lifecycle
//!
//! Worker threads are spawned **once**, at pool construction, and live
//! until the pool is dropped; between dispatches they are parked. A
//! [`WorkerPool::run`] call is therefore a wakeup, not a spawn — steady-state
//! frames pay zero thread spawns and zero allocations in the pool
//! (asserted by [`spawned_thread_count`] regression tests and the bench
//! crate's counting allocator). With `workers == 1` no thread exists at
//! all and the jobs run in index order on the calling thread — exactly the
//! historical serial path.
//!
//! # Wakeup protocol
//!
//! One dispatch is one bump of a generation atomic, park/unpark for the
//! edges, and the same claim cursor as ever:
//!
//! ```text
//! caller                                   worker (×  workers−1, resident)
//! ──────                                   ──────────────────────────────
//! acquire `busy` (one dispatch at a time)  loop:
//! publish job ptr, caller handle, n_jobs     g = generation.load(Acquire)
//! cursor ← 0, remaining ← workers−1          g odd?        → exit thread
//! generation += 2          (Release)  ───▶   g == last?    → park(), retry
//! unpark every worker                        last = g
//! claim jobs from cursor too                 claim jobs: cursor.fetch_add
//! park until remaining == 0          ◀───    remaining.fetch_sub == 1?
//! release `busy`                                 → unpark(caller)
//! ```
//!
//! Unpark tokens do not accumulate but never get lost either
//! (park/unpark is acquire/release synchronized), and both park loops
//! re-check their condition after every return, so stale tokens and
//! spurious wakeups are harmless and lost wakeups are impossible. The
//! final `generation += 1` (odd = shutdown) comes from `Drop`, so workers
//! watch a single atomic for both "new work" and "exit". The whole
//! protocol runs through the [`crate::sync`] facade and is enumerated by
//! the `gaurast-check` model checker (`crates/check/tests/model.rs`),
//! including a lost-wakeup mutant the checker must catch.
//!
//! A panicking job is caught *inside* the worker loop: the dispatch still
//! converges, the pool stays usable, and the failure surfaces as the typed
//! [`JobPanicked`] — as a `Result` from [`WorkerPool::try_run`], or as a
//! typed panic payload from [`WorkerPool::run`] (which feeds the existing
//! `ServiceError::WorkerPanicked` path in the serving layer).
//!
//! # Determinism
//!
//! Every parallel entry point in this crate follows the same recipe:
//!
//! 1. split the frame into jobs along boundaries the serial code already
//!    had (Gaussian index ranges, tiles);
//! 2. give each job its own output slot (a chunk result, a disjoint
//!    framebuffer tile view);
//! 3. merge the slots **in job-index order** on the calling thread.
//!
//! Because no job reads another job's output and the merge order is fixed,
//! images, op counts, and statistics are bit-identical for every worker
//! count — and identical between a long-lived pool and a
//! fresh-pool-per-frame, since the job boundaries never depend on either.
//!
//! # Example
//! ```
//! use gaurast_render::pool::WorkerPool;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let pool = WorkerPool::new(4);
//! let sum = AtomicU64::new(0);
//! pool.run(100, |i| {
//!     sum.fetch_add(i as u64, Ordering::Relaxed);
//! });
//! assert_eq!(sum.into_inner(), 99 * 100 / 2);
//! ```

// All pool concurrency goes through the `sync` facade so the protocol can
// be model-checked (`crates/check`); by default these are plain `std`
// re-exports.
use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::thread;
use std::cell::UnsafeCell;
use std::sync::Arc;

/// Environment variable overriding the automatic worker count (used by CI
/// to force the serial path: `GAURAST_WORKERS=1 cargo test`).
pub const WORKERS_ENV: &str = "GAURAST_WORKERS";

/// Resolves a requested worker count: a positive request wins, otherwise
/// the [`WORKERS_ENV`] environment variable, otherwise the machine's
/// available parallelism. The result is always at least 1.
pub fn resolve_workers(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    // gaurast-check: allow(nondet): documented config knob, resolved once
    // at pool construction — never inside the per-frame pipeline.
    if let Ok(v) = std::env::var(WORKERS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1)
}

/// Pools constructed through [`WorkerPool::new`] since process start
/// (process-wide, diagnostics only — plain `std` atomics, not the model
/// facade, so the counters add no scheduling points).
static CONSTRUCTIONS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
/// Worker threads ever spawned by pools since process start.
static SPAWNED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Total [`WorkerPool::new`] constructions since process start — the
/// regression counter pinning "sessions build their pool once, not per
/// frame" (the `const` [`WorkerPool::serial`] is not counted).
pub fn construction_count() -> u64 {
    CONSTRUCTIONS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Total worker threads ever spawned by pools since process start. Flat
/// across steady-state frames: dispatches wake resident threads instead of
/// spawning — the zero-spawns-per-frame acceptance gate.
pub fn spawned_thread_count() -> u64 {
    SPAWNED.load(std::sync::atomic::Ordering::Relaxed)
}

/// Typed error for a job that panicked inside [`WorkerPool::try_run`] —
/// and the typed panic payload [`WorkerPool::run`] re-raises for a
/// worker-side job panic. The panic's own payload stays on the worker
/// (caught there so the pool survives); only the job index crosses
/// threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobPanicked {
    /// Index of the first job observed to panic.
    pub job: usize,
}

impl std::fmt::Display for JobPanicked {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker-pool job {} panicked", self.job)
    }
}

impl std::error::Error for JobPanicked {}

/// Type-erased pointer to the dispatched job closure. The `'static` in the
/// type is a lie told to the type system only — see the safety argument at
/// the publication site in [`WorkerPool::run`]'s dispatch.
type Job = *const (dyn Fn(usize) + Sync + 'static);

/// Initial content of the job slot: never dispatched, present so reading
/// the slot needs no `Option` unwrap on the hot path.
fn job_noop(_: usize) {}

/// The dispatch mailbox shared by the caller and the resident workers.
struct Shared {
    /// Dispatch generation: steps by 2 per dispatch (even while alive);
    /// the final `+1` from `Drop` makes it odd — the shutdown signal — so
    /// the worker loop watches one atomic for both work and exit.
    generation: AtomicUsize,
    /// The job-claim cursor — byte-for-byte the cursor of the historical
    /// spawn-per-run pool, reset to 0 per dispatch.
    cursor: AtomicUsize,
    /// Workers that have not yet finished draining the current dispatch;
    /// the last one to check in unparks the caller.
    remaining: AtomicUsize,
    /// `job index + 1` of the first worker-side job panic of the current
    /// dispatch (0 = none); first writer wins via compare-exchange.
    panic_flag: AtomicUsize,
    /// Dispatch mutual exclusion: a pool runs one job set at a time.
    /// Callers contend here only if `run` is invoked concurrently from
    /// several threads on one pool (never on the render paths).
    busy: AtomicUsize,
    /// The dispatched closure; valid from the generation bump until
    /// `remaining` reaches zero.
    job: UnsafeCell<Job>,
    /// Job count of the current dispatch; published by the generation
    /// bump like the job pointer (not an atomic: fewer scheduling points
    /// for the model checker, no synchronization lost).
    n_jobs: UnsafeCell<usize>,
    /// Unpark handle of the dispatching thread.
    caller: UnsafeCell<thread::Thread>,
}

// SAFETY: the `UnsafeCell` slots are written only by the dispatching
// thread while it holds `busy`, before the Release generation bump, and
// read by workers only after the Acquire load that observes the bump;
// workers stop touching them before the final `remaining` decrement the
// caller waits on. The atomics are `Sync` by nature. The raw job pointer
// is `Send`-safe to workers because the closure it points to is `Sync`
// (shared by reference across threads, exactly like the scoped borrow the
// old pool used).
unsafe impl Send for Shared {}
// SAFETY: see the `Send` argument above — all mutation of the cells is
// ordered before all cross-thread reads by the generation/`remaining`
// protocol.
unsafe impl Sync for Shared {}

/// The resident half of a multi-worker pool: the shared mailbox plus the
/// spawned threads' unpark and join handles.
struct PoolCore {
    shared: Arc<Shared>,
    /// Unpark handles, one per resident worker.
    threads: Vec<thread::Thread>,
    /// Join handles, consumed by `Drop`.
    handles: Vec<thread::JoinHandle<()>>,
}

impl PoolCore {
    /// Spawns the `workers - 1` resident threads (the caller is always the
    /// remaining worker). The only thread spawns in the pool's lifetime.
    fn launch(workers: usize) -> Self {
        debug_assert!(workers >= 2, "serial pools have no core");
        let shared = Arc::new(Shared {
            generation: AtomicUsize::new(0),
            cursor: AtomicUsize::new(0),
            remaining: AtomicUsize::new(0),
            panic_flag: AtomicUsize::new(0),
            busy: AtomicUsize::new(0),
            job: UnsafeCell::new(&job_noop as &(dyn Fn(usize) + Sync) as Job),
            n_jobs: UnsafeCell::new(0),
            caller: UnsafeCell::new(thread::current()),
        });
        let mut handles = Vec::with_capacity(workers - 1);
        for _ in 0..workers - 1 {
            let shared = Arc::clone(&shared);
            handles.push(thread::spawn(move || worker_loop(&shared)));
            SPAWNED.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        let threads = handles.iter().map(|h| h.thread().clone()).collect();
        Self {
            shared,
            threads,
            handles,
        }
    }
}

impl Drop for PoolCore {
    fn drop(&mut self) {
        // Inside a poisoned model-check run the scheduler is already
        // unwinding every shadow thread; re-entering it would double
        // panic. Outside model runs `poisoned()` is constant `false`.
        if !thread::poisoned() {
            // Odd generation = shutdown; wake everyone to observe it.
            self.shared.generation.fetch_add(1, Ordering::Release);
            for t in &self.threads {
                t.unpark();
            }
        }
        for h in self.handles.drain(..) {
            // Err only if a worker unwound from a poisoned model run;
            // shutdown is best-effort there.
            let _ = h.join();
        }
    }
}

/// The resident worker body: park between dispatches, drain the claim
/// cursor on a generation bump, unpark the caller when last to check in.
fn worker_loop(shared: &Shared) {
    let mut last_gen = 0usize;
    loop {
        let g = shared.generation.load(Ordering::Acquire);
        if g & 1 == 1 {
            // Odd: the pool is shutting down.
            return;
        }
        if g == last_gen {
            // No new dispatch. Stale tokens and spurious returns are
            // harmless — the loop re-reads the generation; a token banked
            // by a dispatch's unpark happens-after its generation bump, so
            // consuming it here means the re-read observes the bump (park
            // consumes tokens with an acquire RMW paired with unpark's
            // release).
            thread::park();
            continue;
        }
        last_gen = g;
        // The Acquire generation load synchronizes with the caller's
        // Release bump: the job pointer, caller handle, job count and
        // cursor reset published before the bump are visible now.
        let (job, n_jobs) = crate::race_region!("job-slot consumption", {
            crate::race_read!(shared.job.get(), 1);
            crate::race_read!(shared.n_jobs.get(), 1);
            // SAFETY: the dispatching thread keeps the closure alive until
            // `remaining` reaches zero, which happens only after this
            // worker's check-in below — after its last use of the pointer.
            // The job count is published and kept valid the same way.
            unsafe { (&*(*shared.job.get()), *shared.n_jobs.get()) }
        });
        loop {
            // Ordering audit: `Relaxed` is sufficient. Exactly-once needs
            // only the *atomicity* of fetch_add (two workers can never
            // observe the same index); no data is published through the
            // cursor. Job outputs are published to the caller by the
            // `remaining` AcqRel check-in below, paired with the caller's
            // Acquire wait — the persistent-pool replacement for the old
            // scope-join edge. Model-checked in
            // crates/check/tests/model.rs (`pool_cursor_claims_*`).
            let i = shared.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n_jobs {
                break;
            }
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(i))).is_err() {
                // First panicking job wins; keep draining so the dispatch
                // converges and the pool stays usable. The payload dies
                // here (it may not be `Send`-able past the pool's
                // lifetime); only the index crosses threads.
                let _ = shared.panic_flag.compare_exchange(
                    0,
                    i + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
            }
        }
        // Read the caller handle *before* the check-in: once `remaining`
        // hits zero the caller may start the next dispatch and overwrite
        // the slot.
        let caller = crate::race_region!("caller-handle consumption", {
            crate::race_read!(shared.caller.get(), 1);
            // SAFETY: written before the generation bump (visible via the
            // Acquire load above), not rewritten until after `remaining`
            // reaches zero.
            unsafe { (*shared.caller.get()).clone() }
        });
        if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            caller.unpark();
        }
    }
}

/// How a dispatch ended (internal).
enum DispatchOutcome {
    /// Every job ran without panicking.
    Done,
    /// A job running on the *calling* thread panicked; the original
    /// payload is preserved so [`WorkerPool::run`] can re-raise it intact.
    CallerPanic {
        job: usize,
        payload: Box<dyn std::any::Any + Send>,
    },
    /// A job on a resident worker panicked (payload consumed there).
    WorkerPanic { job: usize },
}

/// A worker pool of a fixed width with resident, parked threads.
///
/// Construction spawns `workers - 1` threads ([`WorkerPool::serial`] and
/// width-1 pools spawn none); every [`WorkerPool::run`] is a park/unpark
/// round-trip, not a spawn/join. Dropping the pool shuts the threads down.
/// See the [module docs](self) for the wakeup protocol and the determinism
/// contract.
pub struct WorkerPool {
    workers: usize,
    /// `None` for width-1 pools: the serial path has no threads at all.
    core: Option<PoolCore>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .field("resident", &self.core.is_some())
            .finish()
    }
}

impl Default for WorkerPool {
    /// The automatic pool: [`resolve_workers`]`(0)` threads.
    fn default() -> Self {
        Self::new(0)
    }
}

impl WorkerPool {
    /// A pool of `workers` threads; `0` selects the automatic width
    /// ([`resolve_workers`]). Spawns the resident worker threads — hold
    /// the pool in a session and reuse it across frames rather than
    /// constructing one per frame.
    pub fn new(workers: usize) -> Self {
        let workers = resolve_workers(workers);
        CONSTRUCTIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let core = if workers > 1 {
            Some(PoolCore::launch(workers))
        } else {
            None
        };
        Self { workers, core }
    }

    /// The single-threaded pool — every job runs on the calling thread in
    /// index order (the historical serial pipeline). Spawns nothing.
    pub const fn serial() -> Self {
        Self {
            workers: 1,
            core: None,
        }
    }

    /// Number of workers (calling thread included) `run` may use.
    #[inline]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// `true` when this pool owns no threads and runs every job inline.
    #[inline]
    pub fn is_serial(&self) -> bool {
        self.workers == 1
    }

    /// Runs `n_jobs` jobs, each exactly once. Jobs are claimed from an
    /// atomic cursor by the resident workers plus the calling thread; with
    /// one worker (or at most one job) they run in index order on the
    /// calling thread with no cross-thread traffic at all.
    ///
    /// A panicking job does **not** tear down the pool: the dispatch
    /// drains, then the panic is re-raised here — the original payload for
    /// a caller-side job, the typed [`JobPanicked`] for a worker-side one.
    /// Use [`WorkerPool::try_run`] for the non-panicking variant.
    pub fn run<F>(&self, n_jobs: usize, job: F)
    where
        F: Fn(usize) + Sync,
    {
        let Some(core) = &self.core else {
            // The exact historical serial path: inline, in order, no
            // catch — a panic propagates as the job's own.
            for i in 0..n_jobs {
                job(i);
            }
            return;
        };
        if n_jobs <= 1 {
            // A wakeup round-trip costs more than the job; this also keeps
            // single-job dispatches bit-identical to the serial pool.
            for i in 0..n_jobs {
                job(i);
            }
            return;
        }
        match self.dispatch(core, n_jobs, &job) {
            DispatchOutcome::Done => {}
            DispatchOutcome::CallerPanic { payload, .. } => std::panic::resume_unwind(payload),
            DispatchOutcome::WorkerPanic { job: at } => {
                std::panic::panic_any(JobPanicked { job: at })
            }
        }
    }

    /// [`WorkerPool::run`] returning the first job panic as a typed error
    /// instead of re-raising it. All jobs still run (the cursor drains
    /// fully) and the pool remains usable afterwards.
    pub fn try_run<F>(&self, n_jobs: usize, job: F) -> Result<(), JobPanicked>
    where
        F: Fn(usize) + Sync,
    {
        let Some(core) = &self.core else {
            return run_serial_caught(n_jobs, &job);
        };
        if n_jobs <= 1 {
            return run_serial_caught(n_jobs, &job);
        }
        match self.dispatch(core, n_jobs, &job) {
            DispatchOutcome::Done => Ok(()),
            DispatchOutcome::CallerPanic { job: at, .. }
            | DispatchOutcome::WorkerPanic { job: at } => Err(JobPanicked { job: at }),
        }
    }

    /// One wakeup round-trip: publish the job set, bump the generation,
    /// claim jobs alongside the workers, wait for every check-in.
    fn dispatch<F>(&self, core: &PoolCore, n_jobs: usize, job: &F) -> DispatchOutcome
    where
        F: Fn(usize) + Sync,
    {
        let shared = &*core.shared;
        // One dispatch at a time. Uncontended on every render path (a
        // session's pool is dispatched from one thread); concurrent
        // callers of a shared pool serialize here.
        while shared
            .busy
            .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
        crate::race_region!("job-slot publication", {
            crate::race_write!(shared.job.get(), 1);
            crate::race_write!(shared.n_jobs.get(), 1);
            crate::race_write!(shared.caller.get(), 1);
            // SAFETY: `busy` is held, so no other dispatch writes the
            // slots, and no worker reads them until the generation bump
            // below. The lifetime erasure to `'static` is sound because
            // this function does not return until `remaining` reaches zero
            // — every worker is done with the pointer — so the borrow of
            // `job` outlives all uses.
            unsafe {
                *shared.job.get() = std::mem::transmute::<
                    &(dyn Fn(usize) + Sync),
                    &'static (dyn Fn(usize) + Sync),
                >(job as &(dyn Fn(usize) + Sync)) as Job;
                *shared.n_jobs.get() = n_jobs;
                *shared.caller.get() = thread::current();
            }
        });
        shared.cursor.store(0, Ordering::Relaxed);
        shared
            .remaining
            .store(core.threads.len(), Ordering::Relaxed);
        // Publish: everything above happens-before a worker's Acquire
        // load of the bumped generation.
        shared.generation.fetch_add(2, Ordering::Release);
        for t in &core.threads {
            t.unpark();
        }
        // The calling thread is a worker too — same cursor, same claims
        // (see the ordering audit in `worker_loop`). Its job panics are
        // caught so the dispatch always converges and `busy` is always
        // released.
        let mut caught: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
        loop {
            let i = shared.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n_jobs {
                break;
            }
            if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(i)))
            {
                if caught.is_none() {
                    caught = Some((i, payload));
                }
            }
        }
        // Wait for every worker's AcqRel check-in; the Acquire load pairs
        // with it, publishing the jobs' writes to this thread (the
        // replacement for the old scope-join edge). A stale unpark token
        // makes `park` return spuriously; the loop re-checks.
        while shared.remaining.load(Ordering::Acquire) != 0 {
            thread::park();
        }
        // Lazy reset keeps the no-panic dispatch one load cheaper (and one
        // scheduling point smaller in the model): the flag is nonzero only
        // after a worker-side panic, and cleared here before reuse.
        let flag = shared.panic_flag.load(Ordering::Relaxed);
        if flag != 0 {
            shared.panic_flag.store(0, Ordering::Relaxed);
        }
        shared.busy.store(0, Ordering::Release);
        if let Some((job_index, payload)) = caught {
            return DispatchOutcome::CallerPanic {
                job: job_index,
                payload,
            };
        }
        if flag != 0 {
            return DispatchOutcome::WorkerPanic { job: flag - 1 };
        }
        DispatchOutcome::Done
    }

    /// Runs one job per element of `items`, handing each job exclusive
    /// mutable access to its element — the slot pattern Stage 1 chunks and
    /// Stage 3 tile jobs use for their outputs.
    ///
    /// Soundness: the atomic cursor in [`WorkerPool::run`] yields every index in
    /// `0..items.len()` exactly once, so each element is mutably borrowed
    /// by exactly one job and the raw-pointer access below never aliases.
    pub fn run_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        struct Slots<T>(*mut T);
        // SAFETY: shared across workers only to hand out disjoint
        // `&mut` elements (one per job index); `T: Send` lets the
        // references cross threads.
        unsafe impl<T: Send> Sync for Slots<T> {}

        impl<T> Slots<T> {
            /// SAFETY: caller must ensure `i` is in bounds of the slice
            /// this pointer was taken from.
            unsafe fn slot(&self, i: usize) -> *mut T {
                // SAFETY: forwarding the caller's in-bounds obligation to
                // `pointer::add` — `i` is within the slice allocation.
                unsafe { self.0.add(i) }
            }
        }

        let slots = Slots(items.as_mut_ptr());
        let n = items.len();
        self.run(n, |i| {
            debug_assert!(i < n);
            let item = crate::race_region!("exclusive job slot", {
                crate::race_write!(slots.0.wrapping_add(i), 1);
                // SAFETY: `i < n` is in bounds and the cursor in `run`
                // claims each index exactly once, so this is the only live
                // reference to element `i`.
                unsafe { &mut *slots.slot(i) }
            });
            f(i, item);
        });
    }
}

/// Serial job loop with per-job catch: the [`WorkerPool::try_run`] path
/// for pools (or job sets) that never leave the calling thread.
fn run_serial_caught<F>(n_jobs: usize, job: &F) -> Result<(), JobPanicked>
where
    F: Fn(usize) + Sync,
{
    let mut first: Option<usize> = None;
    for i in 0..n_jobs {
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(i))).is_err()
            && first.is_none()
        {
            first = Some(i);
        }
    }
    match first {
        None => Ok(()),
        Some(job) => Err(JobPanicked { job }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn serial_pool_runs_in_order_without_threads() {
        let pool = WorkerPool::serial();
        assert!(pool.is_serial());
        let main = std::thread::current().id();
        let mut order = Vec::new();
        // A serial pool may capture &mut state: prove it runs inline.
        let seen = std::sync::Mutex::new(&mut order);
        pool.run(5, |i| {
            assert_eq!(std::thread::current().id(), main);
            seen.lock().unwrap().push(i);
        });
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        for workers in [1, 2, 4, 7] {
            let pool = WorkerPool::new(workers);
            let n = 123;
            let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            pool.run(n, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, c) in counts.iter().enumerate() {
                assert_eq!(
                    c.load(Ordering::Relaxed),
                    1,
                    "job {i} with {workers} workers"
                );
            }
        }
    }

    #[test]
    fn run_mut_gives_each_job_its_slot() {
        for workers in [1, 3, 8] {
            let pool = WorkerPool::new(workers);
            let mut slots = vec![0usize; 50];
            pool.run_mut(&mut slots, |i, slot| *slot = i * i);
            for (i, s) in slots.iter().enumerate() {
                assert_eq!(*s, i * i, "{workers} workers");
            }
        }
    }

    #[test]
    fn zero_jobs_is_harmless() {
        WorkerPool::new(4).run(0, |_| panic!("no job to run"));
        WorkerPool::new(4).run_mut(&mut [] as &mut [u8], |_, _| panic!("no slot"));
    }

    #[test]
    fn requested_width_wins_over_auto() {
        assert_eq!(WorkerPool::new(3).workers(), 3);
        assert_eq!(resolve_workers(5), 5);
        assert!(resolve_workers(0) >= 1);
        assert!(WorkerPool::default().workers() >= 1);
    }

    #[test]
    fn never_more_claims_than_jobs() {
        // 2 jobs on an 8-wide pool: both must still run exactly once, even
        // though every resident worker races for the cursor.
        let pool = WorkerPool::new(8);
        let counts = [AtomicUsize::new(0), AtomicUsize::new(0)];
        pool.run(2, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counts[0].load(Ordering::Relaxed), 1);
        assert_eq!(counts[1].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn single_job_runs_inline_even_on_wide_pools() {
        let pool = WorkerPool::new(4);
        let main = std::thread::current().id();
        pool.run(1, |i| {
            assert_eq!(i, 0);
            assert_eq!(
                std::thread::current().id(),
                main,
                "1 job must not wake workers"
            );
        });
    }

    #[test]
    fn reuse_spawns_no_new_threads() {
        // The zero-spawns-per-frame contract: all spawning happens at
        // construction; 100 dispatches add none.
        let pool = WorkerPool::new(4);
        let before = spawned_thread_count();
        for round in 0..100 {
            let sum = AtomicUsize::new(0);
            pool.run(32, |i| {
                sum.fetch_add(i, Ordering::Relaxed);
            });
            assert_eq!(sum.into_inner(), 31 * 32 / 2, "round {round}");
        }
        assert_eq!(
            spawned_thread_count(),
            before,
            "a dispatch spawned a thread"
        );
    }

    #[test]
    fn construction_is_counted() {
        let before = construction_count();
        let _p = WorkerPool::new(2);
        let _q = WorkerPool::new(1);
        assert_eq!(construction_count(), before + 2);
    }

    #[test]
    fn try_run_returns_typed_error_and_pool_survives() {
        for workers in [1, 2, 4] {
            let pool = WorkerPool::new(workers);
            let err = pool
                .try_run(8, |i| {
                    if i == 3 {
                        panic!("job 3 exploded");
                    }
                })
                .unwrap_err();
            assert_eq!(err, JobPanicked { job: 3 }, "{workers} workers");
            assert_eq!(err.to_string(), "worker-pool job 3 panicked");
            // The pool must remain fully usable after the panic.
            let counts: Vec<AtomicUsize> = (0..16).map(|_| AtomicUsize::new(0)).collect();
            pool.run(16, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, c) in counts.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), 1, "post-panic job {i}");
            }
        }
    }

    #[test]
    fn run_reraises_job_panics_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(4, |i| {
                if i == 1 {
                    panic!("original payload");
                }
            });
        }));
        let payload = result.expect_err("run must re-raise the panic");
        // Depending on which side claimed job 1, the payload is either the
        // original one (caller-side) or the typed JobPanicked marker
        // (worker-side) — both carry enough to identify the failure.
        let identified = payload
            .downcast_ref::<&str>()
            .is_some_and(|s| *s == "original payload")
            || payload
                .downcast_ref::<JobPanicked>()
                .is_some_and(|j| j.job == 1);
        assert!(identified, "unexpected panic payload");
        // And the pool still works.
        let sum = AtomicUsize::new(0);
        pool.run(10, |i| {
            sum.fetch_add(i + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 55);
    }

    #[test]
    fn drop_shuts_workers_down() {
        let pool = WorkerPool::new(4);
        pool.run(8, |_| {});
        drop(pool); // must not hang or leak: Drop joins every worker
    }
}
