//! A reusable scoped worker pool for deterministic intra-frame data
//! parallelism.
//!
//! The three-stage pipeline decomposes into jobs that are *independent by
//! construction* — Stage 1 processes disjoint Gaussian chunks, Stage 3
//! processes disjoint tiles — so the pool's only contract is to run `n`
//! jobs, each exactly once, on up to `workers` threads. Work is claimed
//! from an atomic cursor (dynamic load balancing: an expensive tile on one
//! worker never stalls the others), and results are written into
//! per-job slots, so the *assignment* of jobs to threads is free to vary
//! while the *output* is bit-identical run to run and identical to the
//! serial schedule.
//!
//! With `workers == 1` no thread is spawned and the jobs run in index
//! order on the calling thread — exactly the historical serial path.
//!
//! # Determinism
//!
//! Every parallel entry point in this crate follows the same recipe:
//!
//! 1. split the frame into jobs along boundaries the serial code already
//!    had (Gaussian index ranges, tiles);
//! 2. give each job its own output slot (a chunk result, a disjoint
//!    framebuffer tile view);
//! 3. merge the slots **in job-index order** on the calling thread.
//!
//! Because no job reads another job's output and the merge order is fixed,
//! images, op counts, and statistics are bit-identical for every worker
//! count.
//!
//! # Example
//! ```
//! use gaurast_render::pool::WorkerPool;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let pool = WorkerPool::new(4);
//! let sum = AtomicU64::new(0);
//! pool.run(100, |i| {
//!     sum.fetch_add(i as u64, Ordering::Relaxed);
//! });
//! assert_eq!(sum.into_inner(), 99 * 100 / 2);
//! ```

// All pool concurrency goes through the `sync` facade so the protocol can
// be model-checked (`crates/check`); by default these are plain `std`
// re-exports.
use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::thread;

/// Environment variable overriding the automatic worker count (used by CI
/// to force the serial path: `GAURAST_WORKERS=1 cargo test`).
pub const WORKERS_ENV: &str = "GAURAST_WORKERS";

/// Resolves a requested worker count: a positive request wins, otherwise
/// the [`WORKERS_ENV`] environment variable, otherwise the machine's
/// available parallelism. The result is always at least 1.
pub fn resolve_workers(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    // gaurast-check: allow(nondet): documented config knob, resolved once
    // at pool construction — never inside the per-frame pipeline.
    if let Ok(v) = std::env::var(WORKERS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1)
}

/// A scoped worker pool of a fixed width.
///
/// The pool is a *policy*, not a set of live threads: each [`WorkerPool::run`] call
/// spawns scoped workers for its own job set and joins them before
/// returning, so a pool can be held in a session and reused across frames
/// without keeping idle threads alive. See the [module docs](self) for the
/// determinism contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerPool {
    workers: usize,
}

impl Default for WorkerPool {
    /// The automatic pool: [`resolve_workers`]`(0)` threads.
    fn default() -> Self {
        Self::new(0)
    }
}

impl WorkerPool {
    /// A pool of `workers` threads; `0` selects the automatic width
    /// ([`resolve_workers`]).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: resolve_workers(workers),
        }
    }

    /// The single-threaded pool — every job runs on the calling thread in
    /// index order (the historical serial pipeline).
    pub const fn serial() -> Self {
        Self { workers: 1 }
    }

    /// Number of worker threads `run` may use.
    #[inline]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// `true` when this pool never spawns a thread.
    #[inline]
    pub fn is_serial(&self) -> bool {
        self.workers == 1
    }

    /// Runs `n_jobs` jobs, each exactly once. Jobs are claimed from an
    /// atomic cursor by up to `workers` scoped threads (never more threads
    /// than jobs); with one worker they run in index order on the calling
    /// thread without spawning. A panicking job propagates to the caller.
    pub fn run<F>(&self, n_jobs: usize, job: F)
    where
        F: Fn(usize) + Sync,
    {
        let threads = self.workers.min(n_jobs);
        if threads <= 1 {
            for i in 0..n_jobs {
                job(i);
            }
            return;
        }
        let cursor = AtomicUsize::new(0);
        // gaurast-check: allow(alloc): scoped threads are spawned per
        // `run` call today; replacing this with a persistent worker pool
        // (parked threads, zero per-frame spawns) is ROADMAP item 1.
        thread::scope(|scope| {
            for _ in 0..threads {
                // gaurast-check: allow(alloc): per-run scoped spawn — see
                // the `thread::scope` note above (ROADMAP item 1).
                scope.spawn(|| loop {
                    // Ordering audit: `Relaxed` is sufficient here. The
                    // exactly-once property needs only the *atomicity* of
                    // fetch_add (two workers can never observe the same
                    // index); no data is published through the cursor, so
                    // no acquire/release edge is required. The jobs' own
                    // writes are made visible to the caller by the
                    // spawn/join synchronization of the enclosing scope,
                    // which is a full happens-before edge. Model-checked in
                    // crates/check/tests/model.rs (`pool_cursor_claims_*`).
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n_jobs {
                        break;
                    }
                    job(i);
                });
            }
        });
    }

    /// Runs one job per element of `items`, handing each job exclusive
    /// mutable access to its element — the slot pattern Stage 1 chunks and
    /// Stage 3 tile jobs use for their outputs.
    ///
    /// Soundness: the atomic cursor in [`WorkerPool::run`] yields every index in
    /// `0..items.len()` exactly once, so each element is mutably borrowed
    /// by exactly one job and the raw-pointer access below never aliases.
    pub fn run_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        struct Slots<T>(*mut T);
        // SAFETY: shared across workers only to hand out disjoint
        // `&mut` elements (one per job index); `T: Send` lets the
        // references cross threads.
        unsafe impl<T: Send> Sync for Slots<T> {}

        impl<T> Slots<T> {
            /// SAFETY: caller must ensure `i` is in bounds of the slice
            /// this pointer was taken from.
            unsafe fn slot(&self, i: usize) -> *mut T {
                // SAFETY: forwarding the caller's in-bounds obligation to
                // `pointer::add` — `i` is within the slice allocation.
                unsafe { self.0.add(i) }
            }
        }

        let slots = Slots(items.as_mut_ptr());
        let n = items.len();
        self.run(n, |i| {
            debug_assert!(i < n);
            // SAFETY: `i < n` is in bounds and the cursor in `run` claims
            // each index exactly once, so this is the only live reference
            // to element `i`.
            let item = unsafe { &mut *slots.slot(i) };
            f(i, item);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn serial_pool_runs_in_order_without_threads() {
        let pool = WorkerPool::serial();
        assert!(pool.is_serial());
        let main = std::thread::current().id();
        let mut order = Vec::new();
        // A serial pool may capture &mut state: prove it runs inline.
        let seen = std::sync::Mutex::new(&mut order);
        pool.run(5, |i| {
            assert_eq!(std::thread::current().id(), main);
            seen.lock().unwrap().push(i);
        });
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        for workers in [1, 2, 4, 7] {
            let pool = WorkerPool::new(workers);
            let n = 123;
            let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            pool.run(n, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, c) in counts.iter().enumerate() {
                assert_eq!(
                    c.load(Ordering::Relaxed),
                    1,
                    "job {i} with {workers} workers"
                );
            }
        }
    }

    #[test]
    fn run_mut_gives_each_job_its_slot() {
        for workers in [1, 3, 8] {
            let pool = WorkerPool::new(workers);
            let mut slots = vec![0usize; 50];
            pool.run_mut(&mut slots, |i, slot| *slot = i * i);
            for (i, s) in slots.iter().enumerate() {
                assert_eq!(*s, i * i, "{workers} workers");
            }
        }
    }

    #[test]
    fn zero_jobs_is_harmless() {
        WorkerPool::new(4).run(0, |_| panic!("no job to run"));
        WorkerPool::new(4).run_mut(&mut [] as &mut [u8], |_, _| panic!("no slot"));
    }

    #[test]
    fn requested_width_wins_over_auto() {
        assert_eq!(WorkerPool::new(3).workers(), 3);
        assert_eq!(resolve_workers(5), 5);
        assert!(resolve_workers(0) >= 1);
        assert!(WorkerPool::default().workers() >= 1);
    }

    #[test]
    fn never_more_threads_than_jobs() {
        // 2 jobs on an 8-wide pool: both must still run exactly once.
        let pool = WorkerPool::new(8);
        let counts = [AtomicUsize::new(0), AtomicUsize::new(0)];
        pool.run(2, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counts[0].load(Ordering::Relaxed), 1);
        assert_eq!(counts[1].load(Ordering::Relaxed), 1);
    }
}
