//! Classic triangle rasterization — the workload the original hardware
//! rasterizer supports and GauRast must keep supporting.
//!
//! The implementation mirrors Table II's four subtasks:
//!
//! 1. coordinate shift of the pixel into the triangle's frame,
//! 2. intersection detection via three edge functions plus the barycentric
//!    reciprocal (the `DIV` that triangles need and Gaussians do not),
//! 3. UV weight computation (barycentric attribute interpolation),
//! 4. min-depth color hold (Z-test reduction).

use crate::framebuffer::Framebuffer;
use crate::ops::{Subtask, SubtaskCounts};
use gaurast_math::{Vec2, Vec3};
use gaurast_scene::{Camera, TriangleMesh};

/// A triangle after projection to screen space, ready for rasterization.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScreenTriangle {
    /// Vertex positions in pixel coordinates.
    pub v: [Vec2; 3],
    /// Per-vertex camera-space depths.
    pub depth: [f32; 3],
    /// Per-vertex texture coordinates.
    pub uv: [Vec2; 3],
    /// Per-vertex colors (shaded by the "CUDA side" after rasterization;
    /// carried here so the software path can produce an image).
    pub color: [Vec3; 3],
    /// Twice the signed area (from the edge function of the full triangle).
    pub area2: f32,
}

impl ScreenTriangle {
    /// Axis-aligned pixel bounding box `(x0, y0, x1, y1)` (inclusive),
    /// clipped to the image; `None` when fully outside.
    pub fn bbox(&self, width: u32, height: u32) -> Option<(u32, u32, u32, u32)> {
        let min_x = self.v.iter().map(|p| p.x).fold(f32::INFINITY, f32::min);
        let max_x = self.v.iter().map(|p| p.x).fold(f32::NEG_INFINITY, f32::max);
        let min_y = self.v.iter().map(|p| p.y).fold(f32::INFINITY, f32::min);
        let max_y = self.v.iter().map(|p| p.y).fold(f32::NEG_INFINITY, f32::max);
        if max_x < 0.0 || max_y < 0.0 || min_x >= width as f32 || min_y >= height as f32 {
            return None;
        }
        Some((
            min_x.max(0.0) as u32,
            min_y.max(0.0) as u32,
            (max_x.min(width as f32 - 1.0)) as u32,
            (max_y.min(height as f32 - 1.0)) as u32,
        ))
    }
}

/// Statistics of one triangle rasterization pass.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TriangleStats {
    /// (triangle, pixel) pairs evaluated.
    pub pairs_evaluated: u64,
    /// Pixels that passed the inside test and the depth test.
    pub fragments_written: u64,
    /// Triangles culled before per-pixel work (off-screen or degenerate).
    pub culled: u64,
    /// Per-subtask FP operation tallies.
    pub ops: SubtaskCounts,
}

/// Projects a mesh through a camera into screen triangles.
///
/// Back-facing and degenerate (zero-area) triangles are dropped, as are
/// triangles with any vertex behind the near plane (no clipping — the
/// synthetic meshes keep safely inside the frustum, and clipping is
/// orthogonal to the rasterizer datapath being studied).
pub fn project_mesh(mesh: &TriangleMesh, camera: &Camera) -> Vec<ScreenTriangle> {
    let mut out = Vec::with_capacity(mesh.len());
    'tri: for i in 0..mesh.len() {
        let verts = mesh.triangle_vertices(i);
        let mut v = [Vec2::zero(); 3];
        let mut depth = [0.0f32; 3];
        let mut uv = [Vec2::zero(); 3];
        let mut color = [Vec3::zero(); 3];
        for (k, vert) in verts.iter().enumerate() {
            let cam = camera.world_to_camera(vert.position);
            if cam.z < camera.near() || cam.z > camera.far() {
                continue 'tri;
            }
            let Some(px) = camera.camera_to_pixel(cam) else {
                continue 'tri;
            };
            v[k] = px;
            depth[k] = cam.z;
            uv[k] = vert.uv;
            color[k] = vert.color;
        }
        let area2 = (v[1] - v[0]).perp_dot(v[2] - v[0]);
        // Cull degenerate and back-facing (negative-area) triangles.
        if area2 <= 1e-6 {
            continue;
        }
        out.push(ScreenTriangle {
            v,
            depth,
            uv,
            color,
            area2,
        });
    }
    out
}

/// Rasterizes screen triangles with a Z-buffer; returns the shaded image
/// and statistics. The G-buffer the fixed-function unit would emit (UV +
/// depth) is also materialized in the framebuffer depth plane.
pub fn rasterize_mesh(
    triangles: &[ScreenTriangle],
    width: u32,
    height: u32,
) -> (Framebuffer, TriangleStats) {
    let mut fb = Framebuffer::new(width, height);
    let mut stats = TriangleStats::default();

    for tri in triangles {
        let Some((x0, y0, x1, y1)) = tri.bbox(width, height) else {
            stats.culled += 1;
            continue;
        };
        let inv_area = 1.0 / tri.area2;
        // One reciprocal per triangle, amortized into the detection subtask.
        stats.ops.at(Subtask::Detection).div += 1;

        let (mut pairs, mut frags) = (0u64, 0u64);
        let (mut shift_add, mut det_mul, mut det_add, mut det_cmp) = (0u64, 0u64, 0u64, 0u64);
        let (mut wgt_mul, mut wgt_add) = (0u64, 0u64);
        let (mut red_mul, mut red_add, mut red_cmp) = (0u64, 0u64, 0u64);

        for py in y0..=y1 {
            for px in x0..=x1 {
                pairs += 1;
                let p = Vec2::new(px as f32 + 0.5, py as f32 + 0.5);

                // Subtask 1: coordinate shift into the triangle frame.
                let d0 = p - tri.v[0];
                let d1 = p - tri.v[1];
                let d2 = p - tri.v[2];
                shift_add += 6;

                // Subtask 2: inside test via edge functions, then
                // barycentric weights with the per-triangle reciprocal.
                let e0 = (tri.v[2] - tri.v[1]).perp_dot(d1);
                let e1 = (tri.v[0] - tri.v[2]).perp_dot(d2);
                let e2 = (tri.v[1] - tri.v[0]).perp_dot(d0);
                det_mul += 6;
                det_add += 3;
                det_cmp += 3;
                if e0 < 0.0 || e1 < 0.0 || e2 < 0.0 {
                    continue;
                }
                let w0 = e0 * inv_area;
                let w1 = e1 * inv_area;
                let w2 = e2 * inv_area;
                det_mul += 3;

                // Subtask 3: UV weight computation.
                let uv = tri.uv[0] * w0 + tri.uv[1] * w1 + tri.uv[2] * w2;
                wgt_mul += 6;
                wgt_add += 4;

                // Subtask 4: depth interpolation and min-depth hold.
                let z = tri.depth[0] * w0 + tri.depth[1] * w1 + tri.depth[2] * w2;
                red_mul += 3;
                red_add += 2;
                red_cmp += 1;
                if z >= fb.depth_at(px, py) {
                    continue;
                }
                // Shading (outside the fixed-function subtasks): barycentric
                // vertex-color interpolation, modulated by UV for a cheap
                // texture-like pattern.
                let base = tri.color[0] * w0 + tri.color[1] * w1 + tri.color[2] * w2;
                let texture = 0.75 + 0.25 * ((uv.x * 8.0).fract() - 0.5).abs() * 2.0;
                fb.set_depth(px, py, z);
                fb.set_color(px, py, base * texture);
                frags += 1;
            }
        }

        stats.pairs_evaluated += pairs;
        stats.fragments_written += frags;
        stats.ops.pairs += pairs;
        stats.ops.at(Subtask::CoordinateShift).add += shift_add;
        let det = stats.ops.at(Subtask::Detection);
        det.mul += det_mul;
        det.add += det_add;
        det.cmp += det_cmp;
        let wgt = stats.ops.at(Subtask::WeightComputation);
        wgt.mul += wgt_mul;
        wgt.add += wgt_add;
        let red = stats.ops.at(Subtask::Reduction);
        red.mul += red_mul;
        red.add += red_add;
        red.cmp += red_cmp;
    }

    (fb, stats)
}

/// Renders a mesh end to end (projection + rasterization).
pub fn render_mesh(mesh: &TriangleMesh, camera: &Camera) -> (Framebuffer, TriangleStats) {
    let tris = project_mesh(mesh, camera);
    rasterize_mesh(&tris, camera.width(), camera.height())
}

/// Screen triangles binned into tiles — the triangle-mode input of the
/// GauRast hardware (mirrors [`crate::RasterWorkload`] for splats).
#[derive(Clone, Debug, PartialEq)]
pub struct TriangleWorkload {
    width: u32,
    height: u32,
    tile_size: u32,
    tiles_x: u32,
    tiles_y: u32,
    triangles: Vec<ScreenTriangle>,
    tile_lists: Vec<Vec<u32>>,
}

impl TriangleWorkload {
    /// Bins screen triangles by bounding-box overlap into `tile_size`-pixel
    /// tiles.
    ///
    /// # Panics
    /// Panics when `tile_size` is zero or the image is empty.
    pub fn bin(triangles: Vec<ScreenTriangle>, width: u32, height: u32, tile_size: u32) -> Self {
        assert!(tile_size > 0 && width > 0 && height > 0);
        let tiles_x = width.div_ceil(tile_size);
        let tiles_y = height.div_ceil(tile_size);
        let mut tile_lists: Vec<Vec<u32>> = vec![Vec::new(); (tiles_x * tiles_y) as usize];
        for (i, t) in triangles.iter().enumerate() {
            if let Some((x0, y0, x1, y1)) = t.bbox(width, height) {
                for ty in (y0 / tile_size)..=(y1 / tile_size) {
                    for tx in (x0 / tile_size)..=(x1 / tile_size) {
                        tile_lists[(ty * tiles_x + tx) as usize].push(i as u32);
                    }
                }
            }
        }
        Self {
            width,
            height,
            tile_size,
            tiles_x,
            tiles_y,
            triangles,
            tile_lists,
        }
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Tile edge in pixels.
    #[inline]
    pub fn tile_size(&self) -> u32 {
        self.tile_size
    }

    /// Number of tile columns.
    #[inline]
    pub fn tiles_x(&self) -> u32 {
        self.tiles_x
    }

    /// Number of tile rows.
    #[inline]
    pub fn tiles_y(&self) -> u32 {
        self.tiles_y
    }

    /// All screen triangles.
    #[inline]
    pub fn triangles(&self) -> &[ScreenTriangle] {
        &self.triangles
    }

    /// Triangle indices overlapping tile `(tx, ty)`.
    ///
    /// # Panics
    /// Panics when the tile coordinate is out of range.
    #[inline]
    pub fn tile_list(&self, tx: u32, ty: u32) -> &[u32] {
        assert!(tx < self.tiles_x && ty < self.tiles_y, "tile out of range");
        &self.tile_lists[(ty * self.tiles_x + tx) as usize]
    }

    /// Pixel rectangle of tile `(tx, ty)` (exclusive upper bounds, clipped).
    pub fn tile_rect(&self, tx: u32, ty: u32) -> (u32, u32, u32, u32) {
        let x0 = tx * self.tile_size;
        let y0 = ty * self.tile_size;
        (
            x0,
            y0,
            (x0 + self.tile_size).min(self.width),
            (y0 + self.tile_size).min(self.height),
        )
    }

    /// Pixels in tile `(tx, ty)`.
    pub fn tile_pixels(&self, tx: u32, ty: u32) -> u64 {
        let (x0, y0, x1, y1) = self.tile_rect(tx, ty);
        u64::from(x1 - x0) * u64::from(y1 - y0)
    }

    /// Total (triangle, tile) pairs.
    pub fn total_pairs(&self) -> u64 {
        self.tile_lists.iter().map(|l| l.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaurast_math::Vec3;
    use gaurast_scene::TriangleMesh;

    fn camera() -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 0.0, -5.0),
            Vec3::zero(),
            Vec3::new(0.0, 1.0, 0.0),
            128,
            128,
            1.0,
        )
        .unwrap()
    }

    fn full_screen_triangle(z: f32, color: Vec3) -> ScreenTriangle {
        // Positive-area winding: (v1-v0) × (v2-v0) > 0 in pixel coordinates.
        ScreenTriangle {
            v: [
                Vec2::new(-200.0, -200.0),
                Vec2::new(600.0, -200.0),
                Vec2::new(-200.0, 600.0),
            ],
            depth: [z; 3],
            uv: [Vec2::zero(), Vec2::new(1.0, 0.0), Vec2::new(0.0, 1.0)],
            color: [color; 3],
            area2: 800.0 * 800.0,
        }
    }

    #[test]
    fn cube_renders_with_coverage() {
        let mesh = TriangleMesh::cube(Vec3::zero(), 2.0);
        let (fb, stats) = render_mesh(&mesh, &camera());
        assert!(fb.coverage() > 0.02, "coverage {}", fb.coverage());
        assert!(stats.fragments_written > 0);
    }

    #[test]
    fn backfaces_are_culled() {
        let mesh = TriangleMesh::cube(Vec3::zero(), 2.0);
        let tris = project_mesh(&mesh, &camera());
        // Half of the cube's 12 faces are back-facing from any generic view.
        assert!(tris.len() < 12 && tris.len() >= 3, "visible {}", tris.len());
    }

    #[test]
    fn depth_test_keeps_nearest() {
        let far = full_screen_triangle(10.0, Vec3::new(1.0, 0.0, 0.0));
        let near = full_screen_triangle(2.0, Vec3::new(0.0, 1.0, 0.0));
        // Submit far-then-near and near-then-far: same result.
        let (fb1, _) = rasterize_mesh(&[far, near], 64, 64);
        let (fb2, _) = rasterize_mesh(&[near, far], 64, 64);
        assert_eq!(fb1.mean_abs_diff(&fb2), 0.0);
        let c = fb1.color_at(32, 32);
        assert!(c.y > c.x, "near green triangle must win: {c:?}");
        assert!((fb1.depth_at(32, 32) - 2.0).abs() < 1e-3);
    }

    #[test]
    fn pixels_outside_triangle_untouched() {
        let tri = ScreenTriangle {
            v: [
                Vec2::new(2.0, 2.0),
                Vec2::new(10.0, 2.0),
                Vec2::new(2.0, 10.0),
            ],
            depth: [1.0; 3],
            uv: [Vec2::zero(); 3],
            color: [Vec3::one(); 3],
            area2: 64.0,
        };
        let (fb, _) = rasterize_mesh(&[tri], 32, 32);
        assert_eq!(fb.color_at(31, 31), Vec3::zero());
        assert!(fb.color_at(4, 4).max_component() > 0.0);
    }

    #[test]
    fn behind_camera_triangle_dropped() {
        let mesh = TriangleMesh::cube(Vec3::new(0.0, 0.0, -20.0), 2.0);
        let tris = project_mesh(&mesh, &camera());
        assert!(tris.is_empty());
    }

    #[test]
    fn division_counted_for_triangles() {
        let mesh = TriangleMesh::cube(Vec3::zero(), 2.0);
        let (_, stats) = render_mesh(&mesh, &camera());
        // The divider is the triangle-only unit (Table II).
        assert!(stats.ops.of(Subtask::Detection).div > 0);
        // Triangles never use the exponential unit.
        let total_exp: u64 = Subtask::ALL.iter().map(|&s| stats.ops.of(s).exp).sum();
        assert_eq!(total_exp, 0);
    }

    #[test]
    fn barycentric_interpolation_center() {
        // Equilateral-ish triangle: at the centroid all weights are 1/3 so
        // the interpolated depth is the average.
        let tri = ScreenTriangle {
            v: [
                Vec2::new(10.0, 10.0),
                Vec2::new(50.0, 10.0),
                Vec2::new(30.0, 50.0),
            ],
            depth: [3.0, 6.0, 9.0],
            uv: [Vec2::zero(); 3],
            color: [Vec3::one(); 3],
            area2: (Vec2::new(40.0, 0.0)).perp_dot(Vec2::new(20.0, 40.0)),
        };
        let (fb, _) = rasterize_mesh(&[tri], 64, 64);
        let centroid_depth = fb.depth_at(30, 23);
        assert!((centroid_depth - 6.0).abs() < 0.3, "depth {centroid_depth}");
    }

    #[test]
    fn stats_pairs_bound_by_bboxes() {
        let mesh = TriangleMesh::cube(Vec3::zero(), 1.0);
        let (_, stats) = render_mesh(&mesh, &camera());
        assert!(stats.pairs_evaluated >= stats.fragments_written);
    }

    #[test]
    fn triangle_workload_binning() {
        let tri = ScreenTriangle {
            v: [
                Vec2::new(2.0, 2.0),
                Vec2::new(14.0, 2.0),
                Vec2::new(2.0, 14.0),
            ],
            depth: [1.0; 3],
            uv: [Vec2::zero(); 3],
            color: [Vec3::one(); 3],
            area2: 144.0,
        };
        let w = TriangleWorkload::bin(vec![tri], 64, 64, 16);
        assert_eq!(w.tile_list(0, 0), &[0]);
        assert!(w.tile_list(1, 0).is_empty());
        assert_eq!(w.total_pairs(), 1);
        assert_eq!((w.tiles_x(), w.tiles_y()), (4, 4));
    }

    #[test]
    fn triangle_workload_spanning_tiles() {
        let tri = full_screen_triangle(1.0, Vec3::one());
        let w = TriangleWorkload::bin(vec![tri], 64, 64, 16);
        assert_eq!(w.total_pairs(), 16);
        assert_eq!(w.tile_pixels(0, 0), 256);
    }
}
