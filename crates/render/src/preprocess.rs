//! Stage 1 — preprocessing: project 3D Gaussians to 2D screen-space splats.
//!
//! For each Gaussian this computes, exactly as in the 3DGS reference
//! implementation (`preprocessCUDA`):
//!
//! * camera-space depth (culling behind the near plane),
//! * the 2D mean in pixel coordinates,
//! * the 2D covariance via the local-affine (EWA) approximation
//!   `Σ' = J W Σ Wᵀ Jᵀ` with a 0.3-pixel low-pass filter,
//! * the *conic* (inverse 2D covariance) used by the rasterizer,
//! * the 3σ screen-space radius,
//! * the RGB color from spherical harmonics for the current view direction.

use crate::ops::OpCounts;
use crate::pool::WorkerPool;
use crate::simd::SimdLevel;
use gaurast_math::{Mat2, Mat3, Vec2, Vec3};
use gaurast_scene::{Camera, GaussianScene, PreparedScene, VisibleSet};
use std::ops::Range;

/// Gaussians per parallel Stage-1 job. The chunking is *fixed-size*, not
/// per-worker, so the decomposition — and therefore every chunk's locally
/// accumulated output — is independent of the worker count; stitching the
/// chunks back in index order reproduces the serial pass bit for bit.
pub const PREPROCESS_CHUNK: usize = 1024;

/// Low-pass filter added to the diagonal of every projected covariance,
/// guaranteeing each splat spans at least ~one pixel (reference value).
pub const COV2D_LOW_PASS: f32 = 0.3;

/// A preprocessed 2D splat — the per-primitive record Stage 3 consumes.
///
/// Together with the pixel coordinate this is exactly the "9 FP numbers"
/// input of Table II: conic (3), mean (2), color (3), opacity (1) = 9
/// (depth is consumed by the sorter, not the rasterizer inner loop).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Splat2D {
    /// Center in pixel coordinates.
    pub mean: Vec2,
    /// Conic `(a, b, c)`: the inverse 2D covariance `[[a, b], [b, c]]`.
    pub conic: [f32; 3],
    /// Camera-space depth (sorting key).
    pub depth: f32,
    /// RGB color for this view.
    pub color: Vec3,
    /// Opacity `o`.
    pub opacity: f32,
    /// Conservative screen-space radius (3σ), in pixels.
    pub radius: f32,
    /// Index of the source Gaussian in the scene.
    pub source: u32,
}

impl Splat2D {
    /// Gaussian density `exp(-½ dᵀ Σ'⁻¹ d)` at pixel offset `d` from the
    /// mean (no opacity applied).
    #[inline]
    pub fn density_at(&self, p: Vec2) -> f32 {
        let d = p - self.mean;
        let power = -0.5 * (self.conic[0] * d.x * d.x + self.conic[2] * d.y * d.y)
            - self.conic[1] * d.x * d.y;
        if power > 0.0 {
            // Numerical guard from the reference implementation.
            return 0.0;
        }
        power.exp()
    }
}

/// Result of Stage 1 for a whole scene.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PreprocessOutput {
    /// Visible splats (culled Gaussians are absent).
    pub splats: Vec<Splat2D>,
    /// Number of Gaussians culled for any reason (depth clip, degenerate
    /// covariance, vanishing or off-screen footprint, non-finite
    /// projection).
    pub culled: usize,
    /// Of [`PreprocessOutput::culled`], the Gaussians dropped because
    /// their projected mean or radius came out non-finite (covariance
    /// overflow). Without this cull a NaN mean would slip every
    /// sign-based Stage-1 guard and reach tile binning.
    pub culled_non_finite: usize,
    /// FP operations spent (Stage 1 contributes to the end-to-end model).
    pub ops: OpCounts,
}

/// The exact Stage-1 op tally charged for a Gaussian that survives the
/// depth clip but is culled at the sub-pixel-radius or off-screen branch:
/// projection of the mean, the EWA Jacobian, both 3×3 covariance
/// products, the low-pass filter, the conic inversion, and the
/// eigenvalue/radius computation — everything before the cull that ends
/// it. Both late branches charge identically (the `radius < 1` and
/// screen-bounds tests tally nothing before `continue`).
///
/// A [`VisibleSet`] bills this bundle for every Gaussian it culled
/// laterally, which is what keeps visible-set Stage 1 bit-identical in
/// `ops` to the full pass (`tests::offscreen_cull_bundle_matches_kernel`
/// pins it to the kernel).
pub const OFFSCREEN_CULL_OPS: OpCounts = OpCounts {
    add: 67,
    mul: 108,
    div: 2,
    exp: 0,
    cmp: 5,
};

/// Runs Stage 1 over a scene.
///
/// # Example
/// ```
/// use gaurast_render::preprocess::preprocess;
/// use gaurast_scene::{Camera, GaussianScene, Gaussian3};
/// use gaurast_math::Vec3;
///
/// let scene = GaussianScene::from_gaussians(vec![
///     Gaussian3::isotropic(Vec3::zero(), 0.2, 0.9, Vec3::new(1.0, 0.0, 0.0)),
/// ])?;
/// let cam = Camera::look_at(Vec3::new(0.0, 0.0, -4.0), Vec3::zero(),
///                           Vec3::new(0.0, 1.0, 0.0), 128, 128, 1.0)?;
/// let out = preprocess(&scene, &cam);
/// assert_eq!(out.splats.len(), 1);
/// # Ok::<(), gaurast_scene::SceneError>(())
/// ```
pub fn preprocess(scene: &GaussianScene, camera: &Camera) -> PreprocessOutput {
    preprocess_pooled(scene, camera, &WorkerPool::serial())
}

/// [`preprocess`] with the per-Gaussian loop split into
/// [`PREPROCESS_CHUNK`]-sized chunks fanned over `pool`. Chunk outputs are
/// stitched back in index order, so splat order, `source` ids, cull
/// counts, and FP-op tallies are bit-identical to the serial pass for
/// every worker count.
pub fn preprocess_pooled(
    scene: &GaussianScene,
    camera: &Camera,
    pool: &WorkerPool,
) -> PreprocessOutput {
    preprocess_pooled_level(scene, camera, pool, SimdLevel::Scalar)
}

/// [`preprocess_pooled`] running the kernels of the given [`SimdLevel`].
/// Bit-identical to the scalar pass at every level (see [`crate::simd`]);
/// `level` must not exceed [`crate::simd::detected_level`] — callers obtain
/// it from [`crate::simd::VectorMode::resolve`], which clamps.
pub fn preprocess_pooled_level(
    scene: &GaussianScene,
    camera: &Camera,
    pool: &WorkerPool,
    level: SimdLevel,
) -> PreprocessOutput {
    preprocess_chunked(scene, camera, |_, g| g.covariance(), pool, level)
}

/// Runs Stage 1 over a [`PreparedScene`], reusing its precomputed
/// world-space covariances instead of rebuilding `R diag(s²) Rᵀ` from the
/// quaternion for every Gaussian on every frame. Output is bit-identical
/// with [`preprocess`] over the same scene.
///
/// # Example
/// ```
/// use gaurast_render::preprocess::{preprocess, preprocess_prepared};
/// use gaurast_scene::{Camera, GaussianScene, Gaussian3, PreparedScene};
/// use gaurast_math::Vec3;
///
/// let scene = GaussianScene::from_gaussians(vec![
///     Gaussian3::isotropic(Vec3::zero(), 0.2, 0.9, Vec3::new(1.0, 0.0, 0.0)),
/// ])?;
/// let cam = Camera::look_at(Vec3::new(0.0, 0.0, -4.0), Vec3::zero(),
///                           Vec3::new(0.0, 1.0, 0.0), 128, 128, 1.0)?;
/// let raw = preprocess(&scene, &cam);
/// let prepared = PreparedScene::prepare(scene);
/// assert_eq!(preprocess_prepared(&prepared, &cam), raw);
/// # Ok::<(), gaurast_scene::SceneError>(())
/// ```
pub fn preprocess_prepared(prepared: &PreparedScene, camera: &Camera) -> PreprocessOutput {
    preprocess_prepared_pooled(prepared, camera, &WorkerPool::serial())
}

/// [`preprocess_prepared`] with the chunked parallel decomposition of
/// [`preprocess_pooled`]. Bit-identical to both serial paths.
pub fn preprocess_prepared_pooled(
    prepared: &PreparedScene,
    camera: &Camera,
    pool: &WorkerPool,
) -> PreprocessOutput {
    preprocess_prepared_pooled_level(prepared, camera, pool, SimdLevel::Scalar)
}

/// [`preprocess_prepared_pooled`] running the kernels of the given
/// [`SimdLevel`]. Bit-identical to the scalar pass at every level.
pub fn preprocess_prepared_pooled_level(
    prepared: &PreparedScene,
    camera: &Camera,
    pool: &WorkerPool,
    level: SimdLevel,
) -> PreprocessOutput {
    let covariances = prepared.covariances();
    preprocess_chunked(prepared.scene(), camera, |i, _| covariances[i], pool, level)
}

/// [`preprocess_prepared`] restricted to a [`VisibleSet`]: Stage 1 only
/// iterates the set's surviving indices, then accounts for the
/// frustum-dropped remainder exactly as the full pass would have —
/// depth-culled Gaussians add to the cull count with zero ops,
/// laterally-culled ones add the fixed [`OFFSCREEN_CULL_OPS`] bundle each.
/// The output is therefore **bit-identical** (splats, order, `source`
/// ids, cull counts, op tallies) to [`preprocess_prepared`] over the whole
/// scene; only the wall-clock time shrinks.
///
/// # Panics
/// Panics when the set's generation tag does not match `prepared` (the
/// set was built from a different scene).
pub fn preprocess_prepared_visible(
    prepared: &PreparedScene,
    camera: &Camera,
    visible: &VisibleSet,
) -> PreprocessOutput {
    preprocess_prepared_visible_pooled(prepared, camera, visible, &WorkerPool::serial())
}

/// [`preprocess_prepared_visible`] with the chunked parallel decomposition
/// (fixed [`PREPROCESS_CHUNK`]-sized chunks of the *visible index list*,
/// stitched in order). Bit-identical at every worker count.
///
/// # Panics
/// Panics when the set's generation tag does not match `prepared`.
pub fn preprocess_prepared_visible_pooled(
    prepared: &PreparedScene,
    camera: &Camera,
    visible: &VisibleSet,
    pool: &WorkerPool,
) -> PreprocessOutput {
    preprocess_prepared_visible_pooled_level(prepared, camera, visible, pool, SimdLevel::Scalar)
}

/// [`preprocess_prepared_visible_pooled`] running the kernels of the given
/// [`SimdLevel`]. Bit-identical to the scalar pass at every level.
///
/// # Panics
/// Panics when the set's generation tag does not match `prepared`.
pub fn preprocess_prepared_visible_pooled_level(
    prepared: &PreparedScene,
    camera: &Camera,
    visible: &VisibleSet,
    pool: &WorkerPool,
    level: SimdLevel,
) -> PreprocessOutput {
    assert_eq!(
        visible.scene_generation(),
        prepared.generation(),
        "visible set belongs to a different prepared scene"
    );
    let covariances = prepared.covariances();
    let covariance_of = |i: usize, _: &gaurast_scene::Gaussian3| covariances[i];
    let scene = prepared.scene();
    let idx = visible.indices();
    let mut out = if pool.is_serial() || idx.len() <= PREPROCESS_CHUNK {
        preprocess_indices(scene, camera, &covariance_of, idx, level)
    } else {
        let n_chunks = idx.len().div_ceil(PREPROCESS_CHUNK);
        let mut chunks: Vec<PreprocessOutput> = vec![PreprocessOutput::default(); n_chunks];
        pool.run_mut(&mut chunks, |c, chunk| {
            let start = c * PREPROCESS_CHUNK;
            let end = (start + PREPROCESS_CHUNK).min(idx.len());
            *chunk = preprocess_indices(scene, camera, &covariance_of, &idx[start..end], level);
        });
        stitch(chunks)
    };
    // The frustum only drops Gaussians Stage 1 would have culled; bill
    // them exactly as the skipped branches would have.
    out.culled += visible.culled_total();
    out.ops += OFFSCREEN_CULL_OPS.scaled(visible.culled_lateral() as u64);
    out
}

/// The shared chunked Stage-1 driver: splits the Gaussian index space into
/// [`PREPROCESS_CHUNK`]-sized jobs, runs them over `pool`, and stitches
/// the chunk outputs back in index order. A serial pool (or a scene that
/// fits one chunk) runs the historical single loop on the calling thread.
fn preprocess_chunked(
    scene: &GaussianScene,
    camera: &Camera,
    covariance_of: impl Fn(usize, &gaurast_scene::Gaussian3) -> Mat3 + Sync,
    pool: &WorkerPool,
    level: SimdLevel,
) -> PreprocessOutput {
    if pool.is_serial() || scene.len() <= PREPROCESS_CHUNK {
        return preprocess_range_level(scene, camera, &covariance_of, 0..scene.len(), level);
    }
    let n_chunks = scene.len().div_ceil(PREPROCESS_CHUNK);
    let mut chunks: Vec<PreprocessOutput> = vec![PreprocessOutput::default(); n_chunks];
    pool.run_mut(&mut chunks, |i, chunk| {
        let start = i * PREPROCESS_CHUNK;
        let end = (start + PREPROCESS_CHUNK).min(scene.len());
        *chunk = preprocess_range_level(scene, camera, &covariance_of, start..end, level);
    });
    stitch(chunks)
}

/// Merges chunk outputs in index order: splat order and `source` ids match
/// the serial pass exactly; cull counts and op tallies are integer sums.
fn stitch(chunks: Vec<PreprocessOutput>) -> PreprocessOutput {
    let mut out = PreprocessOutput::default();
    out.splats
        .reserve(chunks.iter().map(|c| c.splats.len()).sum());
    for chunk in chunks {
        out.splats.extend(chunk.splats);
        out.culled += chunk.culled;
        out.culled_non_finite += chunk.culled_non_finite;
        out.ops += chunk.ops;
    }
    out
}

/// The Stage-1 loop over one contiguous Gaussian index range (see
/// [`preprocess_over`]). Exposed crate-wide as the per-chunk job of the
/// frame graph's Stage-1 node ([`crate::pipeline::render_with_pool`]).
pub(crate) fn preprocess_range_level(
    scene: &GaussianScene,
    camera: &Camera,
    covariance_of: &(impl Fn(usize, &gaurast_scene::Gaussian3) -> Mat3 + Sync),
    range: Range<usize>,
    level: SimdLevel,
) -> PreprocessOutput {
    let len = range.len();
    preprocess_over_level(scene, camera, covariance_of, len, range, level)
}

/// The Stage-1 loop over an explicit ascending index list (the visible-set
/// path; see [`preprocess_over`]).
fn preprocess_indices(
    scene: &GaussianScene,
    camera: &Camera,
    covariance_of: &(impl Fn(usize, &gaurast_scene::Gaussian3) -> Mat3 + Sync),
    indices: &[u32],
    level: SimdLevel,
) -> PreprocessOutput {
    preprocess_over_level(
        scene,
        camera,
        covariance_of,
        indices.len(),
        indices.iter().map(|&i| i as usize),
        level,
    )
}

/// Dispatches one Stage-1 index sequence to the scalar reference kernel or
/// the SIMD lane-group kernels (`crate::simd::stage1`) — bit-identical
/// either way.
fn preprocess_over_level(
    scene: &GaussianScene,
    camera: &Camera,
    covariance_of: &(impl Fn(usize, &gaurast_scene::Gaussian3) -> Mat3 + Sync),
    count: usize,
    indices: impl Iterator<Item = usize>,
    level: SimdLevel,
) -> PreprocessOutput {
    match level {
        SimdLevel::Scalar => preprocess_over(scene, camera, covariance_of, count, indices),
        simd => crate::simd::stage1::preprocess_over_simd(
            scene,
            camera,
            covariance_of,
            count,
            indices,
            simd,
        ),
    }
}

/// The Stage-1 loop over an arbitrary ascending Gaussian index sequence,
/// parameterised over where each Gaussian's world-space covariance comes
/// from (computed on the fly for a raw scene, read back for a prepared
/// one). One code path serves the full-range and visible-set entry points,
/// so their per-Gaussian arithmetic — and therefore their outputs — are
/// identical by construction. Emitted `source` ids are global scene
/// indices regardless of the sequence.
fn preprocess_over(
    scene: &GaussianScene,
    camera: &Camera,
    covariance_of: &(impl Fn(usize, &gaurast_scene::Gaussian3) -> Mat3 + Sync),
    count: usize,
    indices: impl Iterator<Item = usize>,
) -> PreprocessOutput {
    let mut out = PreprocessOutput::default();
    out.splats.reserve(count);
    let cam_pos = camera.position();
    let view_rot = camera.view().upper_left_3x3();
    let focal = camera.focal();
    let (w, h) = (camera.width() as f32, camera.height() as f32);
    // Frustum clamp bound from the reference implementation: points are
    // clamped to 1.3× the tangent of the half-FOV before the Jacobian.
    let tan_half_x = 0.5 * w / focal.x;
    let tan_half_y = 0.5 * h / focal.y;

    for i in indices {
        // gaurast-check: allow(panic): visible-set indices are drawn from
        // `0..scene.len()` over this same scene when the set is built.
        let g = scene.get(i).expect("index within scene");
        let p_cam = camera.world_to_camera(g.position);
        // Near-plane cull (reference: z <= 0.2 in scene units scaled; we use
        // the camera's configured near plane).
        if p_cam.z < camera.near() || p_cam.z > camera.far() {
            out.culled += 1;
            continue;
        }
        out.ops.cmp += 2;

        // 2D mean.
        let inv_z = 1.0 / p_cam.z;
        let mean = Vec2::new(
            focal.x * p_cam.x * inv_z + camera.principal().x,
            focal.y * p_cam.y * inv_z + camera.principal().y,
        );
        out.ops.div += 1;
        out.ops.mul += 4;
        out.ops.add += 2;

        // EWA Jacobian of the perspective projection, with the reference
        // clamp to avoid exploding covariances at the frustum edge.
        let tx = (p_cam.x * inv_z).clamp(-1.3 * tan_half_x, 1.3 * tan_half_x) * p_cam.z;
        let ty = (p_cam.y * inv_z).clamp(-1.3 * tan_half_y, 1.3 * tan_half_y) * p_cam.z;
        let j = Mat3::from_rows(
            focal.x * inv_z,
            0.0,
            -focal.x * tx * inv_z * inv_z,
            0.0,
            focal.y * inv_z,
            -focal.y * ty * inv_z * inv_z,
            0.0,
            0.0,
            0.0,
        );
        out.ops.mul += 8;
        out.ops.cmp += 2;

        // Σ' = J W Σ Wᵀ Jᵀ (take the 2×2 block), plus the low-pass filter.
        let cov3 = covariance_of(i, g);
        let t = j * view_rot;
        let cov2_full = t * cov3 * t.transposed();
        // Two 3×3 matrix products ≈ 2 × 27 mul + 2 × 18 add, plus covariance
        // construction; tallied as the reference kernel's FLOP estimate.
        out.ops.mul += 54 + 36;
        out.ops.add += 36 + 24;
        let mut cov2 = cov2_full.upper_left_2x2();
        cov2 = cov2 + Mat2::from_rows(COV2D_LOW_PASS, 0.0, 0.0, COV2D_LOW_PASS);
        out.ops.add += 2;

        let Some(inv) = cov2.inverse() else {
            out.culled += 1;
            continue;
        };
        out.ops.mul += 3;
        out.ops.div += 1;
        out.ops.add += 1;

        // 3σ radius from the largest eigenvalue (reference formula).
        let (l1, _l2) = cov2.symmetric_eigenvalues();
        let radius = (3.0 * l1.max(0.0).sqrt()).ceil();
        out.ops.mul += 3;
        out.ops.add += 2;
        out.ops.cmp += 1;
        // Covariance overflow can make the mean or radius non-finite while
        // slipping every sign-based guard below (`NaN < 1.0` is false), so
        // the splat would be silently binned into tile (0, 0). Cull it
        // with its own counted reason. The guard is diagnostic, not part
        // of the reference kernel's modeled FP work — nothing is tallied.
        if !(mean.is_finite() && radius.is_finite()) {
            out.culled += 1;
            out.culled_non_finite += 1;
            continue;
        }
        if radius < 1.0 {
            out.culled += 1;
            continue;
        }
        // Cull splats entirely off screen.
        if mean.x + radius < 0.0
            || mean.x - radius > w
            || mean.y + radius < 0.0
            || mean.y - radius > h
        {
            out.culled += 1;
            continue;
        }
        out.ops.cmp += 4;

        // View-dependent color.
        let dir = (g.position - cam_pos)
            .try_normalized()
            .unwrap_or(Vec3::new(0.0, 0.0, 1.0));
        let color = g.color.eval(dir);
        // SH evaluation cost grows with degree; tally the dominant terms.
        let n_coeff = g.color.coeffs().len() as u64;
        out.ops.mul += 3 * n_coeff + 9;
        out.ops.add += 3 * n_coeff;

        out.splats.push(Splat2D {
            mean,
            conic: [inv.at(0, 0), inv.at(0, 1), inv.at(1, 1)],
            depth: p_cam.z,
            color,
            opacity: g.opacity,
            radius,
            source: i as u32,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaurast_scene::{Gaussian3, GaussianScene};

    fn camera() -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 0.0, -5.0),
            Vec3::zero(),
            Vec3::new(0.0, 1.0, 0.0),
            256,
            256,
            1.0,
        )
        .unwrap()
    }

    fn single(g: Gaussian3) -> GaussianScene {
        GaussianScene::from_gaussians(vec![g]).unwrap()
    }

    #[test]
    fn centered_gaussian_projects_to_image_center() {
        let scene = single(Gaussian3::isotropic(Vec3::zero(), 0.2, 0.9, Vec3::one()));
        let out = preprocess(&scene, &camera());
        assert_eq!(out.splats.len(), 1);
        let s = &out.splats[0];
        assert!((s.mean - Vec2::new(128.0, 128.0)).length() < 0.5);
        assert!((s.depth - 5.0).abs() < 1e-4);
    }

    #[test]
    fn behind_camera_is_culled() {
        let scene = single(Gaussian3::isotropic(
            Vec3::new(0.0, 0.0, -10.0),
            0.2,
            0.9,
            Vec3::one(),
        ));
        let out = preprocess(&scene, &camera());
        assert!(out.splats.is_empty());
        assert_eq!(out.culled, 1);
    }

    #[test]
    fn off_screen_is_culled() {
        let scene = single(Gaussian3::isotropic(
            Vec3::new(100.0, 0.0, 0.0),
            0.01,
            0.9,
            Vec3::one(),
        ));
        let out = preprocess(&scene, &camera());
        assert_eq!(out.culled, 1);
    }

    #[test]
    fn conic_is_inverse_of_projected_covariance() {
        // Isotropic gaussian seen head-on: cov2d ≈ (f σ / z)² I + lowpass;
        // conic diagonal ≈ 1 / that.
        let sigma = 0.5f32;
        let scene = single(Gaussian3::isotropic(Vec3::zero(), sigma, 0.9, Vec3::one()));
        let cam = camera();
        let out = preprocess(&scene, &cam);
        let s = &out.splats[0];
        let f = cam.focal().x;
        let expected = (f * sigma / 5.0).powi(2) + COV2D_LOW_PASS;
        assert!(
            (s.conic[0] - 1.0 / expected).abs() < 0.05 / expected,
            "conic {}",
            s.conic[0]
        );
        assert!(s.conic[1].abs() < 1e-3);
        assert!((s.conic[0] - s.conic[2]).abs() < 1e-2 * s.conic[0]);
    }

    #[test]
    fn radius_tracks_scale() {
        let cam = camera();
        let small = preprocess(
            &single(Gaussian3::isotropic(Vec3::zero(), 0.05, 0.9, Vec3::one())),
            &cam,
        );
        let large = preprocess(
            &single(Gaussian3::isotropic(Vec3::zero(), 0.5, 0.9, Vec3::one())),
            &cam,
        );
        assert!(large.splats[0].radius > 5.0 * small.splats[0].radius);
    }

    #[test]
    fn density_peaks_at_mean() {
        let scene = single(Gaussian3::isotropic(Vec3::zero(), 0.3, 0.9, Vec3::one()));
        let out = preprocess(&scene, &camera());
        let s = &out.splats[0];
        let at_mean = s.density_at(s.mean);
        let off = s.density_at(s.mean + Vec2::new(s.radius / 2.0, 0.0));
        assert!((at_mean - 1.0).abs() < 1e-5);
        assert!(off < at_mean);
        // 3 sigma out, density must be tiny.
        let far = s.density_at(s.mean + Vec2::new(s.radius, 0.0));
        assert!(far < 0.02, "density at 3 sigma = {far}");
    }

    #[test]
    fn nearer_gaussian_has_smaller_depth() {
        let scene = GaussianScene::from_gaussians(vec![
            Gaussian3::isotropic(Vec3::new(0.0, 0.0, -2.0), 0.2, 0.9, Vec3::one()),
            Gaussian3::isotropic(Vec3::new(0.0, 0.0, 2.0), 0.2, 0.9, Vec3::one()),
        ])
        .unwrap();
        let out = preprocess(&scene, &camera());
        assert_eq!(out.splats.len(), 2);
        assert!(out.splats[0].depth < out.splats[1].depth);
        assert_eq!(out.splats[0].source, 0);
    }

    #[test]
    fn ops_are_counted() {
        let scene = single(Gaussian3::isotropic(Vec3::zero(), 0.2, 0.9, Vec3::one()));
        let out = preprocess(&scene, &camera());
        assert!(out.ops.mul > 50);
        assert!(out.ops.div >= 2);
    }

    #[test]
    fn prepared_path_is_bit_identical() {
        use gaurast_math::Quat;
        use gaurast_scene::PreparedScene;
        let mut a = Gaussian3::isotropic(Vec3::zero(), 0.3, 0.9, Vec3::one());
        a.scale = Vec3::new(0.8, 0.1, 0.3);
        a.rotation = Quat::from_axis_angle(Vec3::new(0.0, 1.0, 0.0), 0.7);
        let b = Gaussian3::isotropic(Vec3::new(1.0, 0.5, 1.0), 0.2, 0.5, Vec3::one());
        let scene = GaussianScene::from_gaussians(vec![a, b]).unwrap();
        let cam = camera();
        let raw = preprocess(&scene, &cam);
        let prepared = PreparedScene::prepare(scene);
        assert_eq!(preprocess_prepared(&prepared, &cam), raw);
    }

    #[test]
    fn offscreen_cull_bundle_matches_kernel() {
        // A Gaussian that passes the depth clip but is culled at the
        // screen-bounds branch must charge exactly OFFSCREEN_CULL_OPS —
        // the constant a VisibleSet bills per laterally-dropped Gaussian.
        let scene = single(Gaussian3::isotropic(
            Vec3::new(100.0, 0.0, 0.0),
            0.01,
            0.9,
            Vec3::one(),
        ));
        let out = preprocess(&scene, &camera());
        assert!(out.splats.is_empty());
        assert_eq!(out.culled, 1);
        assert_eq!(out.culled_non_finite, 0);
        assert_eq!(out.ops, OFFSCREEN_CULL_OPS, "bundle drifted from kernel");
    }

    #[test]
    fn non_finite_projection_is_culled_with_reason() {
        // Extreme anisotropy: the projected x-variance stays finite but
        // its square overflows inside the eigenvalue computation, so the
        // 3σ radius comes out infinite. Without the dedicated cull this
        // splat would slip every sign-based guard and reach binning as a
        // full-screen primitive.
        let mut g = Gaussian3::isotropic(Vec3::zero(), 1.0, 0.9, Vec3::one());
        g.scale = Vec3::new(5.0e16, 1.0e-3, 1.0e-3);
        let out = preprocess(&single(g), &camera());
        assert!(out.splats.is_empty(), "non-finite splat reached output");
        assert_eq!(out.culled, 1);
        assert_eq!(out.culled_non_finite, 1);
    }

    #[test]
    fn visible_set_path_is_bit_identical() {
        use gaurast_scene::generator::SceneParams;
        use gaurast_scene::PreparedScene;
        let scene = SceneParams::new(3000).seed(13).generate().unwrap();
        let cam = Camera::look_at(
            Vec3::new(20.0, 4.0, -18.0),
            Vec3::new(8.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            96,
            64,
            1.05,
        )
        .unwrap();
        let prepared = PreparedScene::prepare(scene);
        let full = preprocess_prepared(&prepared, &cam);
        let visible = prepared.visible_set(&cam);
        for workers in [1usize, 4] {
            let pool = WorkerPool::new(workers);
            let culled = preprocess_prepared_visible_pooled(&prepared, &cam, &visible, &pool);
            assert_eq!(
                culled, full,
                "visible-set Stage 1 diverged ({workers} workers)"
            );
        }
    }

    #[test]
    fn empty_visible_set_reproduces_full_cull_accounting() {
        use gaurast_scene::generator::SceneParams;
        use gaurast_scene::PreparedScene;
        let scene = SceneParams::new(400).seed(2).generate().unwrap();
        // Looking straight away from the scene: every Gaussian is behind.
        let cam = Camera::look_at(
            Vec3::new(0.0, 0.0, -80.0),
            Vec3::new(0.0, 0.0, -160.0),
            Vec3::new(0.0, 1.0, 0.0),
            64,
            64,
            1.0,
        )
        .unwrap();
        let prepared = PreparedScene::prepare(scene);
        let visible = prepared.visible_set(&cam);
        assert!(visible.is_empty());
        let culled = preprocess_prepared_visible(&prepared, &cam, &visible);
        let full = preprocess_prepared(&prepared, &cam);
        assert_eq!(culled, full);
        assert_eq!(culled.culled, 400);
    }

    #[test]
    #[should_panic(expected = "different prepared scene")]
    fn visible_set_generation_mismatch_panics() {
        use gaurast_scene::generator::SceneParams;
        use gaurast_scene::PreparedScene;
        let a = PreparedScene::prepare(SceneParams::new(10).seed(1).generate().unwrap());
        let b = PreparedScene::prepare(SceneParams::new(10).seed(1).generate().unwrap());
        let cam = camera();
        let set = a.visible_set(&cam);
        let _ = preprocess_prepared_visible(&b, &cam, &set);
    }

    #[test]
    fn anisotropic_gaussian_elliptical_conic() {
        let mut g = Gaussian3::isotropic(Vec3::zero(), 0.1, 0.9, Vec3::one());
        g.scale = Vec3::new(1.0, 0.05, 0.05);
        let out = preprocess(&single(g), &camera());
        let s = &out.splats[0];
        // Much tighter along y than x: conic c >> conic a.
        assert!(s.conic[2] > 10.0 * s.conic[0], "conic {:?}", s.conic);
    }
}
