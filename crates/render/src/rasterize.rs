//! Stage 3 — Gaussian rasterization (the operator GauRast accelerates).
//!
//! Per tile, per pixel, splats arrive front-to-back; each contributes
//! `α = o · exp(-½ dᵀΣ'⁻¹d)` and colors blend as `C += T·α·c`,
//! `T ← T·(1-α)` until the transmittance saturates. This is a faithful port
//! of `renderCUDA` from the reference implementation, with two additions:
//!
//! * full FP-operation accounting per Table II subtask ([`crate::ops`]),
//! * per-tile *processed counts* written back into the workload so the
//!   architecture models bill exactly the work this reference performed.

use crate::framebuffer::{Framebuffer, TileViewMut};
use crate::ops::{Subtask, SubtaskCounts};
use crate::pool::WorkerPool;
use crate::preprocess::Splat2D;
use crate::simd::SimdLevel;
use crate::workload::RasterWorkload;
use crate::{ALPHA_CUTOFF, TRANSMITTANCE_EPS};
use gaurast_math::{Vec2, Vec3};

/// Statistics of one rasterization pass.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RasterStats {
    /// (splat, pixel) pairs evaluated (before any cutoff).
    pub pairs_evaluated: u64,
    /// Blends actually committed (alpha above cutoff, pixel not saturated).
    pub blends_committed: u64,
    /// Tiles whose every pixel saturated before the list was exhausted.
    pub tiles_early_terminated: u64,
    /// Per-subtask FP operation tallies.
    pub ops: SubtaskCounts,
}

impl std::ops::AddAssign for RasterStats {
    /// Merges another pass's tallies (used to fold per-tile statistics in
    /// tile order; every field is an integer counter, so the merged totals
    /// equal the serial pass's).
    fn add_assign(&mut self, rhs: RasterStats) {
        self.pairs_evaluated += rhs.pairs_evaluated;
        self.blends_committed += rhs.blends_committed;
        self.tiles_early_terminated += rhs.tiles_early_terminated;
        self.ops += rhs.ops;
    }
}

/// Rasterizes a workload, returning the image and statistics, and recording
/// per-tile processed counts into `workload`.
///
/// # Example
/// ```
/// use gaurast_render::{rasterize::rasterize, tile::bin_splats, Splat2D};
/// use gaurast_math::{Vec2, Vec3};
///
/// let splat = Splat2D {
///     mean: Vec2::new(8.0, 8.0), conic: [0.08, 0.0, 0.08], depth: 1.0,
///     color: Vec3::new(1.0, 0.0, 0.0), opacity: 0.9, radius: 6.0, source: 0,
/// };
/// let mut workload = bin_splats(vec![splat], 16, 16, 16);
/// let (image, stats) = rasterize(&mut workload);
/// assert!(image.color_at(8, 8).x > 0.5);
/// assert!(stats.blends_committed > 0);
/// ```
pub fn rasterize(workload: &mut RasterWorkload) -> (Framebuffer, RasterStats) {
    let mut fb = Framebuffer::new(workload.width(), workload.height());
    let stats = rasterize_into(workload, Some(&mut fb));
    (fb, stats)
}

/// Rasterizes a workload without producing an image: per-tile processed
/// counts and statistics are recorded exactly as in [`rasterize`] (the
/// blending math runs identically, so every tally is bit-for-bit the same),
/// but no framebuffer is allocated or written. This is the record-only mode
/// workload construction uses when the image would be thrown away.
pub fn rasterize_counts(workload: &mut RasterWorkload) -> RasterStats {
    rasterize_into(workload, None)
}

/// Rasterizes a workload into an optional caller-owned framebuffer,
/// enabling per-session scratch reuse: the buffer is cleared in place and
/// refilled instead of reallocated. Passing `None` selects the no-image
/// record-only mode of [`rasterize_counts`].
///
/// # Panics
/// Panics when a provided framebuffer's dimensions do not match the
/// workload.
pub fn rasterize_into(workload: &mut RasterWorkload, fb: Option<&mut Framebuffer>) -> RasterStats {
    rasterize_with(workload, fb, &WorkerPool::serial())
}

/// One tile's rasterization job: its depth-sorted CSR slice, its exclusive
/// framebuffer view (absent in record-only mode), and its output slot.
struct TileJob<'l, 'fb> {
    list: &'l [u32],
    view: Option<TileViewMut<'fb>>,
    processed: u32,
    stats: RasterStats,
}

/// The tile-major rasterization pass — the single Stage-3 code path behind
/// [`rasterize`], [`rasterize_counts`], and [`rasterize_into`].
///
/// Each tile is an independent job over its own depth-sorted CSR range of
/// the workload (Stage 2 sorted every range up front via the packed-key
/// radix sort — there is no in-job sort), rasterizing into its own
/// disjoint framebuffer view ([`Framebuffer::tile_views_mut`]) with no
/// locking. Jobs are fanned over `pool`; per-tile statistics and processed
/// counts are merged in tile order on the calling thread, so every output
/// — image bytes, op tallies, processed counts — is bit-identical for
/// every worker count, including the serial pool.
///
/// The front-to-back invariant is checked only in debug builds
/// ([`crate::sort::is_depth_sorted`] is a full scan — too expensive for
/// the hot path); both binning entry points establish it by construction.
///
/// The framebuffer is cleared once up front (only the depth plane actually
/// needs it for the Gaussian path: tile views cover and overwrite every
/// color/transmittance pixel), never inside the per-tile hot loop.
///
/// # Panics
/// Panics when a provided framebuffer's dimensions do not match the
/// workload.
pub fn rasterize_with(
    workload: &mut RasterWorkload,
    fb: Option<&mut Framebuffer>,
    pool: &WorkerPool,
) -> RasterStats {
    rasterize_with_level(workload, fb, pool, SimdLevel::Scalar)
}

/// [`rasterize_with`] with an explicit SIMD data path: tiles run the
/// verbatim scalar kernel at [`SimdLevel::Scalar`] and the SoA lane-group
/// kernels (`crate::simd::stage3`) at `Sse`/`Avx2` — with bit-identical
/// outputs (image bytes, op tallies, processed counts) at every level, on
/// every worker count. A `level` above the host's detected capability is
/// clamped down (sound, because all levels agree bit-for-bit).
///
/// # Panics
/// Panics when a provided framebuffer's dimensions do not match the
/// workload.
pub fn rasterize_with_level(
    workload: &mut RasterWorkload,
    mut fb: Option<&mut Framebuffer>,
    pool: &WorkerPool,
    level: SimdLevel,
) -> RasterStats {
    let level = level.min(crate::simd::detected_level());
    if let Some(fb) = fb.as_deref_mut() {
        assert_eq!(
            (fb.width(), fb.height()),
            (workload.width(), workload.height()),
            "framebuffer dimensions must match the workload"
        );
        fb.clear();
    }
    let (tiles_x, tile_size) = (workload.tiles_x(), workload.tile_size());
    let n_tiles = workload.tile_count();
    // Recycled counts buffer: refilled below, handed back via
    // `set_processed` (no per-frame allocation in steady state).
    let mut processed = workload.take_processed_scratch();

    // One grid authority: the same tile_rect the workload exposes to the
    // architecture models also shapes the jobs (and matches the views
    // `tile_views_mut` builds on the identical grid).
    let rects: Vec<(u32, u32, u32, u32)> = (0..n_tiles as u32)
        .map(|i| workload.tile_rect(i % tiles_x, i / tiles_x))
        // gaurast-check: allow(alloc): per-frame tile-job staging, O(tiles)
        // not O(pairs); the Stage-2 data path stays arena-recycled.
        .collect();

    let mut views: Vec<Option<TileViewMut<'_>>> = match fb {
        // gaurast-check: allow(alloc): borrowed per-frame tile views cannot
        // outlive the framebuffer borrow, so they cannot be arena-cached.
        Some(fb) => fb.tile_views_mut(tile_size).into_iter().map(Some).collect(),
        None => (0..n_tiles).map(|_| None).collect(), // gaurast-check: allow(alloc): same staging list, record-only shape
    };
    let splats = workload.splats();
    let soa = workload.soa();
    let mut jobs: Vec<TileJob<'_, '_>> = (0..n_tiles)
        .zip(views.drain(..))
        .map(|(i, view)| TileJob {
            list: workload.tile_list_at(i),
            view,
            processed: 0,
            stats: RasterStats::default(),
        })
        // gaurast-check: allow(alloc): per-frame job list, O(tiles); holds
        // the borrowed views above and dies with the frame.
        .collect();

    pool.run_mut(&mut jobs, |i, job| {
        // Full-scan front-to-back check, debug builds only (demoted from
        // the hot path; `is_depth_sorted` stays public for tests).
        debug_assert!(
            crate::sort::is_depth_sorted(job.list, splats),
            "tile {i} list reached Stage 3 unsorted"
        );
        let rect = rects[i];
        if let Some(view) = &job.view {
            // Shadow race detection: claim this job's disjoint pixel rows.
            view.race_register();
            debug_assert_eq!(
                (rect.0, rect.1, rect.2 - rect.0, rect.3 - rect.1),
                (view.x0(), view.y0(), view.width(), view.height()),
                "tile view must cover exactly the workload's tile rect"
            );
        }
        (job.processed, job.stats) = match level {
            SimdLevel::Scalar => rasterize_tile(splats, job.list, rect, job.view.as_mut()),
            simd => crate::simd::stage3::rasterize_tile_simd(
                soa,
                job.list,
                rect,
                job.view.as_mut(),
                simd,
            ),
        };
    });

    let mut stats = RasterStats::default();
    processed.reserve(n_tiles);
    for job in jobs {
        stats += job.stats;
        processed.push(job.processed);
    }
    workload.set_processed(processed);
    stats
}

/// Rasterizes one tile; returns how many splats of its list were processed
/// before every pixel saturated, plus the tile-local statistics.
// gaurast-check: hot-path
fn rasterize_tile(
    splats: &[Splat2D],
    list: &[u32],
    rect: (u32, u32, u32, u32),
    view: Option<&mut TileViewMut<'_>>,
) -> (u32, RasterStats) {
    let mut stats = RasterStats::default();
    if list.is_empty() {
        return (0, stats);
    }
    let (x0, y0, x1, y1) = rect;
    let w = (x1 - x0) as usize;
    let h = (y1 - y0) as usize;
    let n_px = w * h;

    // Per-pixel accumulation state, tile-local (this is the pixel data held
    // in GauRast's tile buffers).
    // gaurast-check: allow(alloc): tile-local pixel buffers, one bounded
    // (tile_size²) allocation per tile job — ROADMAP item: move into a
    // per-worker arena.
    let mut color = vec![Vec3::zero(); n_px];
    // gaurast-check: allow(alloc): same tile-local buffer as above.
    let mut transmittance = vec![1.0f32; n_px];
    let mut alive = n_px as u32;

    let mut processed = 0u32;

    // Local op tallies; folded into stats once per tile to keep the inner
    // loop lean.
    let (mut shift_add, mut det_add, mut det_mul, mut det_exp, mut det_cmp) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    let (mut wgt_mul, mut red_add, mut red_mul, mut red_cmp) = (0u64, 0u64, 0u64, 0u64);
    let mut pairs = 0u64;

    'list: for &si in list {
        processed += 1;
        let s = &splats[si as usize];
        let (a, b, c) = (s.conic[0], s.conic[1], s.conic[2]);

        for py in 0..h {
            for px in 0..w {
                let i = py * w + px;
                if transmittance[i] < TRANSMITTANCE_EPS {
                    continue;
                }
                pairs += 1;

                // Subtask 1: coordinate shift (pixel center convention).
                let p = Vec2::new((x0 + px as u32) as f32 + 0.5, (y0 + py as u32) as f32 + 0.5);
                let d = p - s.mean;
                shift_add += 2;

                // Subtask 2: Gaussian probability and alpha.
                let power = -0.5 * (a * d.x * d.x + c * d.y * d.y) - b * d.x * d.y;
                det_mul += 7; // dx², dy², dx·dy, a·, c·, b·, ½·
                det_add += 3;
                det_cmp += 1;
                if power > 0.0 {
                    continue;
                }
                let alpha = (s.opacity * power.exp()).min(0.99);
                det_exp += 1;
                det_mul += 1;
                det_cmp += 2;
                if alpha < ALPHA_CUTOFF {
                    continue;
                }

                // Subtask 3: color weight.
                let weight = transmittance[i] * alpha;
                let contribution = s.color * weight;
                wgt_mul += 4;

                // Subtask 4: accumulate and update transmittance.
                color[i] += contribution;
                transmittance[i] *= 1.0 - alpha;
                red_add += 4;
                red_mul += 1;
                red_cmp += 1;
                stats.blends_committed += 1;

                if transmittance[i] < TRANSMITTANCE_EPS {
                    alive -= 1;
                    if alive == 0 {
                        // Whole tile saturated: the reference kernel's warps
                        // all exit; later splats cost nothing.
                        if processed < list.len() as u32 {
                            stats.tiles_early_terminated += 1;
                        }
                        break 'list;
                    }
                }
            }
        }
    }

    // Write the tile back through its exclusive framebuffer view
    // (background stays black, as in the reference with a black background
    // color). The remaining transmittance is kept for downstream
    // compositing (see `compose`). In record-only mode there is no view
    // and the writeback is skipped.
    if let Some(view) = view {
        for py in 0..h {
            for px in 0..w {
                let i = py * w + px;
                view.write(px as u32, py as u32, color[i], transmittance[i]);
            }
        }
    }

    stats.pairs_evaluated += pairs;
    stats.ops.pairs += pairs;
    stats.ops.at(Subtask::CoordinateShift).add += shift_add;
    let det = stats.ops.at(Subtask::Detection);
    det.add += det_add;
    det.mul += det_mul;
    det.exp += det_exp;
    det.cmp += det_cmp;
    stats.ops.at(Subtask::WeightComputation).mul += wgt_mul;
    let red = stats.ops.at(Subtask::Reduction);
    red.add += red_add;
    red.mul += red_mul;
    red.cmp += red_cmp;

    (processed, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::bin_splats;
    use crate::Splat2D;

    fn splat(x: f32, y: f32, opacity: f32, color: Vec3, depth: f32) -> Splat2D {
        Splat2D {
            mean: Vec2::new(x, y),
            conic: [0.05, 0.0, 0.05],
            depth,
            color,
            opacity,
            radius: 12.0,
            source: 0,
        }
    }

    #[test]
    fn single_splat_peak_color() {
        // Mean exactly on the pixel-center grid so density there is 1.
        let s = splat(8.5, 8.5, 0.9, Vec3::new(1.0, 0.0, 0.0), 1.0);
        let mut w = bin_splats(vec![s], 16, 16, 16);
        let (fb, stats) = rasterize(&mut w);
        let c = fb.color_at(8, 8);
        // At the mean the density is 1 so color = opacity × red.
        assert!((c.x - 0.9).abs() < 1e-5, "got {c:?}");
        assert!(c.y < 1e-6 && c.z < 1e-6);
        assert!(stats.blends_committed > 0);
        assert_eq!(stats.tiles_early_terminated, 0);
    }

    #[test]
    fn color_decays_away_from_mean() {
        let s = splat(8.0, 8.0, 0.9, Vec3::one(), 1.0);
        let mut w = bin_splats(vec![s], 16, 16, 16);
        let (fb, _) = rasterize(&mut w);
        let center = fb.color_at(8, 8).x;
        let edge = fb.color_at(15, 8).x;
        assert!(center > edge);
    }

    #[test]
    fn front_to_back_occlusion() {
        // An opaque near-white splat in front of a red one: red barely shows.
        let front = Splat2D {
            opacity: 0.99,
            ..splat(8.0, 8.0, 0.99, Vec3::one(), 1.0)
        };
        let back = splat(8.0, 8.0, 0.99, Vec3::new(1.0, 0.0, 0.0), 2.0);
        let mut w = bin_splats(vec![back, front], 16, 16, 16);
        let (fb, _) = rasterize(&mut w);
        let c = fb.color_at(8, 8);
        // Front is white; back contributes at most (1-0.99) of its color.
        assert!(c.y > 0.9);
        assert!(c.x - c.y < 0.05);
    }

    #[test]
    fn order_independence_of_binning_depth_sort() {
        // Same two splats in either submission order must render identically
        // because the tiler depth-sorts.
        let a = splat(8.0, 8.0, 0.8, Vec3::new(1.0, 0.0, 0.0), 1.0);
        let b = splat(8.0, 8.0, 0.8, Vec3::new(0.0, 1.0, 0.0), 2.0);
        let mut w1 = bin_splats(vec![a, b], 16, 16, 16);
        let mut w2 = bin_splats(vec![b, a], 16, 16, 16);
        let (fb1, _) = rasterize(&mut w1);
        let (fb2, _) = rasterize(&mut w2);
        assert_eq!(fb1.mean_abs_diff(&fb2), 0.0);
    }

    #[test]
    fn transmittance_never_negative_color_bounded() {
        // Stack many opaque splats; accumulated color must stay <= 1 + eps.
        let splats: Vec<Splat2D> = (0..50)
            .map(|i| splat(8.0, 8.0, 0.95, Vec3::one(), 1.0 + i as f32))
            .collect();
        let mut w = bin_splats(splats, 16, 16, 16);
        let (fb, _) = rasterize(&mut w);
        let c = fb.color_at(8, 8);
        assert!(c.max_component() <= 1.0 + 1e-4, "got {c:?}");
    }

    #[test]
    fn saturated_tile_terminates_early() {
        // Wide, nearly opaque splats saturate the whole 16x16 tile quickly;
        // the tail of the list must not be processed.
        let splats: Vec<Splat2D> = (0..200)
            .map(|i| Splat2D {
                conic: [1e-4, 0.0, 1e-4], // essentially flat across the tile
                ..splat(8.0, 8.0, 0.99, Vec3::one(), 1.0 + i as f32)
            })
            .collect();
        let mut w = bin_splats(splats, 16, 16, 16);
        let (_, stats) = rasterize(&mut w);
        assert_eq!(stats.tiles_early_terminated, 1);
        assert!(w.processed_count(0, 0) < 200);
        assert!(w.blend_work() < 200 * 256);
    }

    #[test]
    fn alpha_cutoff_skips_blend() {
        // A splat with tiny opacity commits no blends.
        let s = splat(8.0, 8.0, 0.003, Vec3::one(), 1.0);
        let mut w = bin_splats(vec![s], 16, 16, 16);
        let (fb, stats) = rasterize(&mut w);
        assert_eq!(stats.blends_committed, 0);
        assert_eq!(fb.coverage(), 0.0);
    }

    #[test]
    fn ops_tally_matches_pairs() {
        let s = splat(8.0, 8.0, 0.9, Vec3::one(), 1.0);
        let mut w = bin_splats(vec![s], 16, 16, 16);
        let (_, stats) = rasterize(&mut w);
        assert_eq!(stats.ops.pairs, stats.pairs_evaluated);
        // Every evaluated pair costs exactly 2 shift adds.
        assert_eq!(
            stats.ops.of(Subtask::CoordinateShift).add,
            2 * stats.pairs_evaluated
        );
        // Detection uses the exponential; weight/reduction do not.
        assert!(stats.ops.of(Subtask::Detection).exp > 0);
        assert_eq!(stats.ops.of(Subtask::WeightComputation).exp, 0);
        assert_eq!(stats.ops.of(Subtask::Reduction).exp, 0);
        assert_eq!(stats.ops.of(Subtask::Reduction).div, 0);
    }

    #[test]
    fn empty_workload_renders_black() {
        let mut w = bin_splats(vec![], 32, 32, 16);
        let (fb, stats) = rasterize(&mut w);
        assert_eq!(fb.coverage(), 0.0);
        assert_eq!(stats.pairs_evaluated, 0);
        assert_eq!(w.blend_work(), 0);
    }

    #[test]
    fn record_only_matches_full_rasterization() {
        let splats: Vec<Splat2D> = (0..40)
            .map(|i| splat(4.0 + i as f32, 9.0, 0.7, Vec3::one(), 1.0 + i as f32))
            .collect();
        let mut full = bin_splats(splats.clone(), 48, 48, 16);
        let mut counts_only = bin_splats(splats, 48, 48, 16);
        let (_, full_stats) = rasterize(&mut full);
        let counts_stats = super::rasterize_counts(&mut counts_only);
        assert_eq!(full_stats, counts_stats);
        assert_eq!(full.blend_work(), counts_only.blend_work());
        for ty in 0..full.tiles_y() {
            for tx in 0..full.tiles_x() {
                assert_eq!(
                    full.processed_count(tx, ty),
                    counts_only.processed_count(tx, ty)
                );
            }
        }
    }

    #[test]
    fn rasterize_into_reuses_and_clears_scratch() {
        let s = splat(8.5, 8.5, 0.9, Vec3::new(0.0, 1.0, 0.0), 1.0);
        let mut w = bin_splats(vec![s], 16, 16, 16);
        let mut fb = Framebuffer::new(16, 16);
        // Dirty the scratch buffer, then rasterize into it twice.
        fb.set_color(0, 0, Vec3::one());
        let _ = super::rasterize_into(&mut w, Some(&mut fb));
        let first = fb.clone();
        let _ = super::rasterize_into(&mut w, Some(&mut fb));
        assert_eq!(fb.mean_abs_diff(&first), 0.0, "reuse must be idempotent");
        let (fresh, _) = rasterize(&mut w.clone());
        assert_eq!(
            fb.mean_abs_diff(&fresh),
            0.0,
            "scratch must equal a fresh buffer"
        );
    }

    #[test]
    #[should_panic(expected = "dimensions must match")]
    fn rasterize_into_rejects_mismatched_framebuffer() {
        let mut w = bin_splats(vec![], 32, 32, 16);
        let mut fb = Framebuffer::new(16, 16);
        let _ = super::rasterize_into(&mut w, Some(&mut fb));
    }
}
