//! Dispatch controller: tile-to-instance assignment and per-tile PE-block
//! occupancy arithmetic (Fig. 7b, "Dispatch Controller").

/// Assigns tile indices to rasterizer instances round-robin — the top
/// controller's static schedule. Returns one queue per instance.
///
/// # Panics
/// Panics when `instances` is zero.
pub fn assign_tiles(tile_count: usize, instances: u32) -> Vec<Vec<usize>> {
    assert!(instances > 0, "need at least one instance");
    let mut queues = vec![Vec::new(); instances as usize];
    for t in 0..tile_count {
        queues[t % instances as usize].push(t);
    }
    queues
}

/// Cycles the PE block needs to process `primitives` over a `pixels`-pixel
/// tile with `pes` lanes: the dispatcher walks each primitive across the
/// tile's pixels in groups of `pes`, one group per cycle, fully pipelined
/// across primitives.
///
/// # Panics
/// Panics when `pes` is zero.
pub fn processing_cycles(primitives: u32, pixels: u32, pes: u32) -> u64 {
    assert!(pes > 0, "need at least one PE");
    let groups = u64::from(pixels.div_ceil(pes));
    u64::from(primitives) * groups
}

/// PE-cycle product actually used (for utilization accounting): issued
/// pairs, which may be fewer than `cycles × pes` on partial pixel groups.
pub fn issued_pairs(primitives: u32, pixels: u32) -> u64 {
    u64::from(primitives) * u64::from(pixels)
}

/// Per-instance (splat, tile) key totals of the round-robin schedule,
/// read directly off a CSR offset table (`tile_count + 1` entries,
/// [`gaurast_render::RasterWorkload::offsets`]): instance `i` streams the
/// key ranges of tiles `i, i + instances, …`. This is the load-imbalance
/// diagnostic of the dispatcher's static schedule over the key-sorted
/// Stage-2 output.
///
/// # Panics
/// Panics when `instances` is zero or `offsets` is empty.
pub fn csr_queue_loads(offsets: &[u32], instances: u32) -> Vec<u64> {
    assert!(instances > 0, "need at least one instance");
    assert!(!offsets.is_empty(), "offset table must have a terminator");
    let mut loads = vec![0u64; instances as usize];
    for t in 0..offsets.len() - 1 {
        loads[t % instances as usize] += u64::from(offsets[t + 1] - offsets[t]);
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_balances() {
        let q = assign_tiles(10, 3);
        assert_eq!(q[0], vec![0, 3, 6, 9]);
        assert_eq!(q[1], vec![1, 4, 7]);
        assert_eq!(q[2], vec![2, 5, 8]);
    }

    #[test]
    fn all_tiles_assigned_exactly_once() {
        let q = assign_tiles(100, 7);
        let mut seen: Vec<usize> = q.into_iter().flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn processing_cycles_exact() {
        // 256 pixels / 16 PEs = 16 cycles per primitive.
        assert_eq!(processing_cycles(10, 256, 16), 160);
        // Partial group rounds up.
        assert_eq!(processing_cycles(1, 17, 16), 2);
        assert_eq!(processing_cycles(0, 256, 16), 0);
    }

    #[test]
    fn issued_pairs_counts_real_work() {
        assert_eq!(issued_pairs(10, 17), 170);
        assert!(issued_pairs(1, 17) < processing_cycles(1, 17, 16) * 16);
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn zero_instances_panics() {
        let _ = assign_tiles(4, 0);
    }

    #[test]
    fn csr_queue_loads_follow_round_robin() {
        // Offsets for 4 tiles with lengths 5, 0, 2, 3.
        let offsets = [0u32, 5, 5, 7, 10];
        assert_eq!(csr_queue_loads(&offsets, 2), vec![5 + 2, 3]);
        assert_eq!(csr_queue_loads(&offsets, 1), vec![10]);
        let total: u64 = csr_queue_loads(&offsets, 3).iter().sum();
        assert_eq!(total, 10, "every key assigned exactly once");
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn csr_queue_loads_zero_instances_panics() {
        let _ = csr_queue_loads(&[0, 1], 0);
    }
}
