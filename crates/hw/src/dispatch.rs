//! Dispatch controller: tile-to-instance assignment and per-tile PE-block
//! occupancy arithmetic (Fig. 7b, "Dispatch Controller").

/// Assigns tile indices to rasterizer instances round-robin — the top
/// controller's static schedule. Returns one queue per instance.
///
/// # Panics
/// Panics when `instances` is zero.
pub fn assign_tiles(tile_count: usize, instances: u32) -> Vec<Vec<usize>> {
    assert!(instances > 0, "need at least one instance");
    let mut queues = vec![Vec::new(); instances as usize];
    for t in 0..tile_count {
        queues[t % instances as usize].push(t);
    }
    queues
}

/// Cycles the PE block needs to process `primitives` over a `pixels`-pixel
/// tile with `pes` lanes: the dispatcher walks each primitive across the
/// tile's pixels in groups of `pes`, one group per cycle, fully pipelined
/// across primitives.
///
/// # Panics
/// Panics when `pes` is zero.
pub fn processing_cycles(primitives: u32, pixels: u32, pes: u32) -> u64 {
    assert!(pes > 0, "need at least one PE");
    let groups = u64::from(pixels.div_ceil(pes));
    u64::from(primitives) * groups
}

/// PE-cycle product actually used (for utilization accounting): issued
/// pairs, which may be fewer than `cycles × pes` on partial pixel groups.
pub fn issued_pairs(primitives: u32, pixels: u32) -> u64 {
    u64::from(primitives) * u64::from(pixels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_balances() {
        let q = assign_tiles(10, 3);
        assert_eq!(q[0], vec![0, 3, 6, 9]);
        assert_eq!(q[1], vec![1, 4, 7]);
        assert_eq!(q[2], vec![2, 5, 8]);
    }

    #[test]
    fn all_tiles_assigned_exactly_once() {
        let q = assign_tiles(100, 7);
        let mut seen: Vec<usize> = q.into_iter().flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn processing_cycles_exact() {
        // 256 pixels / 16 PEs = 16 cycles per primitive.
        assert_eq!(processing_cycles(10, 256, 16), 160);
        // Partial group rounds up.
        assert_eq!(processing_cycles(1, 17, 16), 2);
        assert_eq!(processing_cycles(0, 256, 16), 0);
    }

    #[test]
    fn issued_pairs_counts_real_work() {
        assert_eq!(issued_pairs(10, 17), 170);
        assert!(issued_pairs(1, 17) < processing_cycles(1, 17, 16) * 16);
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn zero_instances_panics() {
        let _ = assign_tiles(4, 0);
    }
}
