//! GauRast hardware model: a cycle-accurate simulator, area model and power
//! model of the enhanced GPU rasterizer proposed by the paper.
//!
//! The paper's flow is: C++ → HLS → RTL → place-and-route for a 16-PE
//! prototype (28 nm, 1 GHz, FP32), then a cycle-accurate simulator —
//! validated against the RTL — evaluates a 300-PE scaled configuration on
//! full scenes. This crate reproduces the *simulator layer* of that flow:
//!
//! * [`pe`] — the Processing Element datapath, functionally **bit-exact**
//!   with the software reference in FP32 (the paper's RTL-vs-software
//!   validation), with the shared / triangle-only / Gaussian-only unit
//!   split of Fig. 7(c);
//! * [`tile_buffer`] + [`dispatch`] — ping-pong tile staging and PE-block
//!   occupancy (Fig. 7b);
//! * [`rasterizer`] — the frame-level cycle simulation for both Gaussian
//!   and triangle modes;
//! * [`area`] — the 28 nm floorplan model reproducing Fig. 9's breakdown
//!   and the §V-C GSCore comparison;
//! * [`power`] — activity-based energy calibrated to the prototype's 1.7 W.
//!
//! # Example
//!
//! ```
//! use gaurast_hw::{EnhancedRasterizer, RasterizerConfig};
//! use gaurast_render::pipeline::{render, RenderConfig};
//! use gaurast_scene::nerf360::{Nerf360Scene, SceneScale};
//!
//! let desc = Nerf360Scene::Bonsai.descriptor();
//! let scene = desc.synthesize(SceneScale::UNIT_TEST);
//! let cam = desc.camera(SceneScale::UNIT_TEST, 0.0)?;
//! let out = render(&scene, &cam, &RenderConfig::default());
//!
//! let hw = EnhancedRasterizer::new(RasterizerConfig::scaled());
//! let report = hw.simulate_gaussian(&out.workload);
//! assert!(report.time_s > 0.0);
//! # Ok::<(), gaurast_scene::SceneError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod area;
pub mod command;
pub mod config;
pub mod dispatch;
pub mod fpu;
pub mod microarch;
pub mod pe;
pub mod power;
pub mod rasterizer;
pub mod tile_buffer;

pub use config::{Precision, RasterizerConfig};
pub use rasterizer::{EnhancedRasterizer, FrameReport, RasterMode};
