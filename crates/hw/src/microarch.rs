//! Cycle-stepped microarchitecture model of one rasterizer module.
//!
//! The paper's evaluation flow synthesizes RTL for the 16-PE module and
//! then validates a *fast* cycle-accurate simulator against it before using
//! the simulator for scene-level numbers (§V-A, "Simulator Setup"). This
//! module reproduces that two-level methodology inside the repository:
//!
//! * [`crate::rasterizer::EnhancedRasterizer`] is the fast event-driven
//!   model (per-tile interval arithmetic) used by all experiments;
//! * [`ModuleMicroArch`] below advances explicit per-cycle state machines —
//!   memory interface, ping-pong tile buffers, dispatcher, PE pipeline,
//!   result collector — one clock edge at a time, the way the RTL behaves.
//!
//! The equivalence tests at the bottom play the role of the paper's
//! RTL-vs-simulator validation: for the same tile stream, the cycle-stepped
//! machine and the fast model must agree on total cycles.

use crate::config::RasterizerConfig;
use crate::tile_buffer::{TileBufferModel, WORDS_PER_PIXEL, WORDS_PER_SPLAT};

/// Work description for one tile fed to the module: how many primitives
/// its (already depth-sorted, already truncated-at-saturation) list holds
/// and how many pixels it covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileJob {
    /// Primitives to stream and process.
    pub primitives: u32,
    /// Pixels in the tile (≤ tile_size², edge tiles are partial).
    pub pixels: u32,
}

/// What a tile buffer currently holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BufferState {
    /// Nothing staged.
    Empty,
    /// The memory interface is filling it; `remaining` words to go.
    Loading { job: TileJob, remaining_words: u64 },
    /// Staged and ready for the PE block.
    Ready { job: TileJob },
    /// The PE block is consuming it; `issued` primitive-groups so far.
    Processing {
        job: TileJob,
        issued_groups: u64,
        total_groups: u64,
    },
    /// Finished processing; results drain through the collector;
    /// `remaining` words to write back.
    Draining { remaining_words: u64 },
}

/// Per-cycle stall attribution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Cycles the PE block idled waiting for a buffer to finish loading.
    pub load_stall: u64,
    /// Cycles the PE block idled waiting for writeback to free a buffer.
    pub drain_stall: u64,
    /// Cycles spent covering pipeline fill/drain between tiles.
    pub pipeline_fill: u64,
}

/// Result of a cycle-stepped run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MicroArchReport {
    /// Total clock cycles from first fetch to last writeback.
    pub cycles: u64,
    /// Primitive-pixel pairs issued.
    pub pairs: u64,
    /// Stall attribution.
    pub stalls: StallBreakdown,
    /// Cycles the PE block spent actively issuing groups.
    pub busy_cycles: u64,
}

/// The cycle-stepped model of one module (one memory interface, two tile
/// buffers, one PE block, one collector).
#[derive(Clone, Debug)]
pub struct ModuleMicroArch {
    config: RasterizerConfig,
    buffer_model: TileBufferModel,
}

impl ModuleMicroArch {
    /// Builds the machine for one module of `config`.
    ///
    /// # Panics
    /// Panics for invalid configurations.
    pub fn new(config: RasterizerConfig) -> Self {
        // gaurast-check: allow(panic): documented `# Panics` constructor
        // contract; every serving path validates the config first
        // (`RenderServiceBuilder::build` → `RasterizerConfig::validate`).
        config.validate().expect("invalid rasterizer configuration");
        Self {
            config,
            buffer_model: TileBufferModel::new(config.bus_words_per_cycle),
        }
    }

    /// Words the memory interface must stream to stage a job (primitive
    /// records + pixel-state initialization).
    fn load_words(&self, job: TileJob) -> u64 {
        u64::from(job.primitives) * u64::from(WORDS_PER_SPLAT)
            + u64::from(job.pixels) * u64::from(WORDS_PER_PIXEL)
    }

    /// Words the collector writes back per tile (RGB per pixel).
    fn writeback_words(&self, job: TileJob) -> u64 {
        u64::from(job.pixels) * 3
    }

    /// Runs the module over a tile stream, one clock edge at a time.
    ///
    /// Semantics (matching the fast model's schedule exactly):
    /// * the memory interface serves one transfer at a time, writeback of
    ///   the previous tile before the load of the next;
    /// * the PE block processes one staged tile at a time, issuing one
    ///   `pes_per_module`-wide pixel group per cycle per primitive, plus a
    ///   fixed pipeline fill charge per tile;
    /// * ping-pong mode loads tile `k+1` while tile `k` processes; with a
    ///   single buffer every phase serializes.
    ///
    /// Jobs larger than the buffer capacity must be pre-chunked by the
    /// caller ([`chunk_jobs`] does this).
    pub fn run(&self, jobs: &[TileJob]) -> MicroArchReport {
        let pes = u64::from(self.config.pes_per_module);
        let bus = u64::from(self.config.bus_words_per_cycle);
        let fill = u64::from(self.config.pipeline_latency);
        let cap = self.buffer_model.capacity_primitives;
        for (i, j) in jobs.iter().enumerate() {
            assert!(
                j.primitives <= cap,
                "job {i} exceeds buffer capacity; chunk first"
            );
        }

        let mut pairs = 0u64;
        for j in jobs {
            pairs += u64::from(j.primitives) * u64::from(j.pixels);
        }

        // Machine state.
        let mut buffers: [BufferState; 2] = [BufferState::Empty, BufferState::Empty];
        let mut next_job = 0usize; // next tile to start loading
        let mut load_target: Option<usize> = None; // buffer being filled
        let mut drain_target: Option<usize> = None; // buffer being drained
        let mut pe_target: Option<usize> = None; // buffer being processed
        let mut pe_fill_left = 0u64; // pipeline fill countdown for current tile
        let mut cycles = 0u64;
        let mut busy = 0u64;
        let mut stalls = StallBreakdown::default();
        let usable_buffers: usize = if self.config.ping_pong { 2 } else { 1 };

        let done = |buffers: &[BufferState; 2], next_job: usize| {
            next_job >= jobs.len() && buffers.iter().all(|b| matches!(b, BufferState::Empty))
        };

        // Safety valve: the machine must terminate well within this bound.
        let cycle_limit = 1_000_000_000u64;
        while !done(&buffers, next_job) {
            cycles += 1;
            assert!(cycles < cycle_limit, "microarchitecture wedged");

            // --- Memory interface: one transfer per cycle, drain first. ---
            if drain_target.is_none() && load_target.is_none() {
                // Prefer starting a drain (frees a buffer soonest).
                if let Some(i) = buffers
                    .iter()
                    .position(|b| matches!(b, BufferState::Draining { .. }))
                {
                    drain_target = Some(i);
                } else if next_job < jobs.len() {
                    // Start loading into an empty usable buffer.
                    if let Some(i) = buffers[..usable_buffers]
                        .iter()
                        .position(|b| matches!(b, BufferState::Empty))
                    {
                        let job = jobs[next_job];
                        buffers[i] = BufferState::Loading {
                            job,
                            remaining_words: self.load_words(job),
                        };
                        load_target = Some(i);
                        next_job += 1;
                    }
                }
            }
            if let Some(i) = drain_target {
                if let BufferState::Draining { remaining_words } = &mut buffers[i] {
                    *remaining_words = remaining_words.saturating_sub(bus);
                    if *remaining_words == 0 {
                        buffers[i] = BufferState::Empty;
                        drain_target = None;
                    }
                }
            } else if let Some(i) = load_target {
                if let BufferState::Loading {
                    job,
                    remaining_words,
                } = &mut buffers[i]
                {
                    *remaining_words = remaining_words.saturating_sub(bus);
                    if *remaining_words == 0 {
                        buffers[i] = BufferState::Ready { job: *job };
                        load_target = None;
                    }
                }
            }

            // --- PE block: one pixel group per cycle. ---
            match pe_target {
                None => {
                    // Claim a ready buffer (in-order: lowest staged job).
                    if let Some(i) = buffers
                        .iter()
                        .position(|b| matches!(b, BufferState::Ready { .. }))
                    {
                        let BufferState::Ready { job } = buffers[i] else {
                            // gaurast-check: allow(panic): locally proven
                            // — `i` came from `position(Ready)` above.
                            unreachable!()
                        };
                        let groups =
                            u64::from(job.primitives) * u64::from(job.pixels.div_ceil(pes as u32));
                        buffers[i] = BufferState::Processing {
                            job,
                            issued_groups: 0,
                            total_groups: groups,
                        };
                        pe_target = Some(i);
                        pe_fill_left = fill;
                        // The claim itself happens this cycle; issuing starts
                        // with the fill charge below.
                    } else if next_job < jobs.len()
                        || buffers.iter().any(|b| !matches!(b, BufferState::Empty))
                    {
                        // Idle with work outstanding: attribute the stall.
                        if buffers
                            .iter()
                            .any(|b| matches!(b, BufferState::Loading { .. }))
                        {
                            stalls.load_stall += 1;
                        } else {
                            stalls.drain_stall += 1;
                        }
                    }
                }
                Some(i) => {
                    if pe_fill_left > 0 {
                        pe_fill_left -= 1;
                        stalls.pipeline_fill += 1;
                    } else if let BufferState::Processing {
                        job,
                        issued_groups,
                        total_groups,
                    } = &mut buffers[i]
                    {
                        if *issued_groups < *total_groups {
                            *issued_groups += 1;
                            busy += 1;
                        }
                        if issued_groups == total_groups {
                            buffers[i] = BufferState::Draining {
                                remaining_words: self.writeback_words(*job),
                            };
                            pe_target = None;
                        }
                    }
                }
            }
        }

        MicroArchReport {
            cycles,
            pairs,
            stalls,
            busy_cycles: busy,
        }
    }
}

/// Splits oversized tile lists into buffer-capacity chunks, mirroring the
/// fast model's chunking (pixel state streams once per tile: first chunk
/// carries the pixels, later chunks only primitives — approximated here by
/// full-pixel chunks, which the equivalence tests account for).
pub fn chunk_jobs(jobs: &[TileJob], capacity: u32) -> Vec<TileJob> {
    let mut out = Vec::with_capacity(jobs.len());
    for j in jobs {
        if j.primitives <= capacity {
            out.push(*j);
            continue;
        }
        let mut remaining = j.primitives;
        while remaining > 0 {
            let chunk = remaining.min(capacity);
            out.push(TileJob {
                primitives: chunk,
                pixels: j.pixels,
            });
            remaining -= chunk;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rasterizer::EnhancedRasterizer;
    use gaurast_render::rasterize::rasterize;
    use gaurast_render::tile::bin_splats;
    use gaurast_render::RasterWorkload;

    fn single_module() -> RasterizerConfig {
        RasterizerConfig::prototype()
    }

    /// Fast-model cycles for a synthetic workload with one module.
    fn fast_cycles(workload: &RasterWorkload) -> u64 {
        EnhancedRasterizer::new(single_module())
            .simulate_gaussian(workload)
            .cycles
    }

    /// Jobs equivalent to a workload's tiles (processed counts).
    fn jobs_of(workload: &RasterWorkload) -> Vec<TileJob> {
        let mut jobs = Vec::new();
        for ty in 0..workload.tiles_y() {
            for tx in 0..workload.tiles_x() {
                jobs.push(TileJob {
                    primitives: workload.processed_count(tx, ty),
                    pixels: workload.tile_pixels(tx, ty) as u32,
                });
            }
        }
        jobs
    }

    fn synthetic_workload(n: u32, w: u32, h: u32) -> RasterWorkload {
        use gaurast_math::{Vec2, Vec3};
        use gaurast_render::Splat2D;
        let splats: Vec<Splat2D> = (0..n)
            .map(|i| Splat2D {
                mean: Vec2::new((i * 37 % w) as f32 + 0.5, (i * 53 % h) as f32 + 0.5),
                conic: [0.08, 0.0, 0.08],
                depth: 1.0 + i as f32 * 0.01,
                color: Vec3::new(0.5, 0.3, 0.2),
                opacity: 0.4,
                radius: 6.0,
                source: i,
            })
            .collect();
        let mut workload = bin_splats(splats, w, h, 16);
        let _ = rasterize(&mut workload);
        workload
    }

    #[test]
    fn microarch_validates_fast_model_on_real_workloads() {
        // The paper's RTL-vs-simulator validation, replayed: both models
        // must agree on total cycles within a small tolerance (the fast
        // model folds the interface serialization slightly differently).
        for (n, w, h) in [(50u32, 64u32, 64u32), (300, 96, 64), (1200, 128, 96)] {
            let workload = synthetic_workload(n, w, h);
            let fast = fast_cycles(&workload);
            let ua = ModuleMicroArch::new(single_module()).run(&jobs_of(&workload));
            let err = (ua.cycles as f64 - fast as f64).abs() / fast as f64;
            assert!(
                err < 0.05,
                "n={n}: microarch {} vs fast {} ({:.1}% apart)",
                ua.cycles,
                fast,
                err * 100.0
            );
        }
    }

    #[test]
    fn empty_stream_terminates_immediately() {
        let r = ModuleMicroArch::new(single_module()).run(&[]);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.pairs, 0);
    }

    #[test]
    fn single_tile_cycle_count_is_exact() {
        // One 256-pixel tile with 10 primitives on 16 PEs:
        // load = (10*9 + 256*4) / 16 = 70 cycles (ceil), fill = 24,
        // process = 10 * 16 = 160, writeback = 768/16 = 48.
        let job = TileJob {
            primitives: 10,
            pixels: 256,
        };
        let r = ModuleMicroArch::new(single_module()).run(&[job]);
        let expected = 70 + 24 + 160 + 48;
        assert_eq!(r.cycles, expected, "got {}", r.cycles);
        assert_eq!(r.pairs, 2560);
        assert_eq!(r.busy_cycles, 160);
    }

    #[test]
    fn ping_pong_overlaps_next_load() {
        let jobs = vec![
            TileJob {
                primitives: 64,
                pixels: 256
            };
            6
        ];
        let pp = ModuleMicroArch::new(single_module()).run(&jobs);
        let single = ModuleMicroArch::new(RasterizerConfig {
            ping_pong: false,
            ..single_module()
        })
        .run(&jobs);
        assert!(
            pp.cycles < single.cycles,
            "{} !< {}",
            pp.cycles,
            single.cycles
        );
        assert_eq!(pp.pairs, single.pairs);
        // With compute-bound tiles the overlapped machine barely stalls.
        assert!(pp.stalls.load_stall < single.cycles - pp.cycles);
    }

    #[test]
    fn stall_attribution_accounts_for_idle() {
        let jobs = vec![
            TileJob {
                primitives: 2,
                pixels: 256
            };
            8
        ];
        // Tiny lists: memory-bound, the PE block must report load stalls.
        let r = ModuleMicroArch::new(single_module()).run(&jobs);
        assert!(
            r.stalls.load_stall > 0,
            "memory-bound run must stall on loads"
        );
        // Busy + fill + stalls bound the runtime.
        let accounted =
            r.busy_cycles + r.stalls.pipeline_fill + r.stalls.load_stall + r.stalls.drain_stall;
        assert!(accounted <= r.cycles);
        assert!(accounted as f64 > r.cycles as f64 * 0.8, "accounting hole");
    }

    #[test]
    #[should_panic(expected = "exceeds buffer capacity")]
    fn oversized_job_rejected() {
        let job = TileJob {
            primitives: 5000,
            pixels: 256,
        };
        let _ = ModuleMicroArch::new(single_module()).run(&[job]);
    }

    #[test]
    fn chunking_preserves_primitive_totals() {
        let jobs = vec![
            TileJob {
                primitives: 2500,
                pixels: 256,
            },
            TileJob {
                primitives: 100,
                pixels: 128,
            },
        ];
        let chunked = chunk_jobs(&jobs, 1024);
        assert_eq!(chunked.len(), 4);
        let total: u32 = chunked.iter().map(|j| j.primitives).sum();
        assert_eq!(total, 2600);
        assert!(chunked.iter().all(|j| j.primitives <= 1024));
    }
}
