//! The enhanced rasterizer: top controller + tile buffers + PE block +
//! result collector, simulated cycle-accurately at tile granularity.
//!
//! The simulator follows the paper's evaluation methodology (§V-A): the
//! functional datapath was validated against the software reference
//! (bit-exact in FP32 — see `pe`), and frame-level runtime/power come from
//! this fast cycle model. Timing per instance is an exact event calculation
//! of the ping-pong schedule: while the PE block processes the tile staged
//! in buffer A, the memory interface fills buffer B with the next tile and
//! drains the previous tile's results; whichever takes longer bounds the
//! step.

use crate::config::RasterizerConfig;
use crate::dispatch::{assign_tiles, issued_pairs, processing_cycles};
use crate::pe::{GaussianPixel, Pe, PeActivity, TrianglePixel};
use crate::tile_buffer::{TileBufferModel, WORDS_PER_SPLAT, WORDS_PER_TRIANGLE};
use gaurast_math::Vec2;
use gaurast_render::triangle::TriangleWorkload;
use gaurast_render::{Framebuffer, RasterWorkload};

/// Which datapath a frame ran on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RasterMode {
    /// 3DGS splatting (the enhanced path).
    Gaussian,
    /// Classic triangle rasterization (the pre-existing path).
    Triangle,
}

/// Cycle-accurate result of simulating one frame.
#[derive(Clone, Debug, PartialEq)]
pub struct FrameReport {
    /// Datapath mode.
    pub mode: RasterMode,
    /// Total cycles (maximum over instances — they run concurrently).
    pub cycles: u64,
    /// Wall-clock seconds at the configured clock.
    pub time_s: f64,
    /// (primitive, pixel) pairs issued to PEs.
    pub pairs: u64,
    /// PE utilization: issued pairs / (cycles × total PEs).
    pub utilization: f64,
    /// Cycles lost to the memory interface (load/writeback longer than
    /// compute), summed over instances.
    pub stall_cycles: u64,
    /// Per-instance completion cycles (load imbalance diagnostic).
    pub instance_cycles: Vec<u64>,
    /// Arithmetic-unit activations (power-model input).
    pub activity: PeActivity,
    /// Tile-buffer words moved (power-model input).
    pub buffer_traffic_words: u64,
}

impl FrameReport {
    /// Frames per second this rasterization rate alone would sustain.
    pub fn raster_fps(&self) -> f64 {
        1.0 / self.time_s
    }
}

/// One per-instance work item: a chunk of a tile's primitive list.
#[derive(Clone, Copy, Debug)]
struct WorkItem {
    load: u64,
    process: u64,
    writeback: u64,
}

/// The GauRast enhanced rasterizer.
#[derive(Clone, Debug)]
pub struct EnhancedRasterizer {
    config: RasterizerConfig,
    buffer: TileBufferModel,
}

impl EnhancedRasterizer {
    /// Rasterizer with the given configuration.
    ///
    /// # Panics
    /// Panics when the configuration is invalid; use
    /// [`RasterizerConfig::validate`] to check first.
    pub fn new(config: RasterizerConfig) -> Self {
        // gaurast-check: allow(panic): documented `# Panics` constructor
        // contract; every serving path validates the config first
        // (`RenderServiceBuilder::build` → `RasterizerConfig::validate`).
        config.validate().expect("invalid rasterizer configuration");
        Self {
            config,
            buffer: TileBufferModel::new(config.bus_words_per_cycle),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RasterizerConfig {
        &self.config
    }

    /// Simulates Gaussian-mode timing for a workload (no image).
    pub fn simulate_gaussian(&self, workload: &RasterWorkload) -> FrameReport {
        let tiles = self.gaussian_items(workload);
        let mut report = self.run_timing(tiles, RasterMode::Gaussian);
        report.activity = PeActivity::GAUSSIAN_PER_PAIR.scaled(report.pairs);
        report
    }

    /// Simulates triangle-mode timing for a workload (no image).
    pub fn simulate_triangles(&self, workload: &TriangleWorkload) -> FrameReport {
        let (items, prim_dispatches) = self.triangle_items(workload);
        let mut report = self.run_timing(items, RasterMode::Triangle);
        report.activity = PeActivity::TRIANGLE_PER_PAIR.scaled(report.pairs);
        // One divider activation per primitive dispatch.
        report.activity.div += prim_dispatches;
        report
    }

    /// Functionally renders a Gaussian workload through the PE datapath and
    /// returns the image with the timing report. In FP32 the image is
    /// bit-exact with the software reference.
    pub fn render_gaussian(&self, workload: &RasterWorkload) -> (Framebuffer, FrameReport) {
        let report = self.simulate_gaussian(workload);
        let mut fb = Framebuffer::new(workload.width(), workload.height());
        let mut pe = Pe::new(self.config.precision);
        let splats = workload.splats();
        // One pass over the CSR tile ranges: each tile's saturation-
        // truncated prefix of its sorted slice streams through the PE.
        for tile in workload.tiles() {
            let (x0, y0, x1, y1) = tile.rect;
            let w = (x1 - x0) as usize;
            let h = (y1 - y0) as usize;
            let mut px_state = vec![GaussianPixel::default(); w * h];
            for &si in &tile.list[..tile.processed as usize] {
                let s = &splats[si as usize];
                for py in 0..h {
                    for px in 0..w {
                        let p =
                            Vec2::new((x0 + px as u32) as f32 + 0.5, (y0 + py as u32) as f32 + 0.5);
                        pe.blend_gaussian(s, p, &mut px_state[py * w + px]);
                    }
                }
            }
            for py in 0..h {
                for px in 0..w {
                    let s = &px_state[py * w + px];
                    fb.set_color(x0 + px as u32, y0 + py as u32, s.color);
                    fb.set_transmittance(x0 + px as u32, y0 + py as u32, s.transmittance);
                }
            }
        }
        (fb, report)
    }

    /// Functionally renders a triangle workload through the PE datapath.
    /// In FP32 the image is bit-exact with the software reference.
    pub fn render_triangles(&self, workload: &TriangleWorkload) -> (Framebuffer, FrameReport) {
        let report = self.simulate_triangles(workload);
        let mut fb = Framebuffer::new(workload.width(), workload.height());
        let mut pe = Pe::new(self.config.precision);
        let tris = workload.triangles();
        for ty in 0..workload.tiles_y() {
            for tx in 0..workload.tiles_x() {
                let list = workload.tile_list(tx, ty);
                if list.is_empty() {
                    continue;
                }
                let (x0, y0, x1, y1) = workload.tile_rect(tx, ty);
                let w = (x1 - x0) as usize;
                let h = (y1 - y0) as usize;
                let mut px_state = vec![TrianglePixel::default(); w * h];
                for &tidx in list {
                    let tri = &tris[tidx as usize];
                    let inv_area = pe.reciprocal(tri.area2);
                    for py in 0..h {
                        for px in 0..w {
                            let p = Vec2::new(
                                (x0 + px as u32) as f32 + 0.5,
                                (y0 + py as u32) as f32 + 0.5,
                            );
                            pe.shade_triangle(tri, inv_area, p, &mut px_state[py * w + px]);
                        }
                    }
                }
                for py in 0..h {
                    for px in 0..w {
                        let s = &px_state[py * w + px];
                        if s.depth.is_finite() {
                            fb.set_color(x0 + px as u32, y0 + py as u32, s.color);
                            fb.set_depth(x0 + px as u32, y0 + py as u32, s.depth);
                        }
                    }
                }
            }
        }
        (fb, report)
    }

    /// Builds per-tile work items for Gaussian mode straight off the CSR
    /// tile ranges, honoring buffer capacity chunking. Returns items
    /// indexed by tile.
    fn gaussian_items(&self, w: &RasterWorkload) -> Vec<(u64, Vec<WorkItem>)> {
        w.tiles()
            .map(|tile| {
                let pixels = tile.pixels() as u32;
                (
                    issued_pairs(tile.processed, pixels),
                    self.chunked_items(tile.processed, WORDS_PER_SPLAT, pixels),
                )
            })
            .collect()
    }

    /// Builds per-tile work items for triangle mode; also returns the total
    /// primitive dispatch count (divider activations).
    fn triangle_items(&self, w: &TriangleWorkload) -> (Vec<(u64, Vec<WorkItem>)>, u64) {
        let mut tiles = Vec::with_capacity((w.tiles_x() * w.tiles_y()) as usize);
        let mut dispatches = 0u64;
        for ty in 0..w.tiles_y() {
            for tx in 0..w.tiles_x() {
                let n = w.tile_list(tx, ty).len() as u32;
                dispatches += u64::from(n);
                let pixels = w.tile_pixels(tx, ty) as u32;
                tiles.push((
                    issued_pairs(n, pixels),
                    self.chunked_items(n, WORDS_PER_TRIANGLE, pixels),
                ));
            }
        }
        (tiles, dispatches)
    }

    /// Splits one tile into buffer-capacity chunks of work.
    fn chunked_items(&self, n: u32, words_each: u32, pixels: u32) -> Vec<WorkItem> {
        let cap = self.buffer.capacity_primitives;
        let passes = self.buffer.passes(n);
        let mut items = Vec::with_capacity(passes as usize);
        let mut remaining = n;
        for pass in 0..passes {
            let chunk = remaining.min(cap);
            remaining -= chunk;
            let first = pass == 0;
            let last = pass + 1 == passes;
            items.push(WorkItem {
                // Pixel state streams in once (first chunk) and out once
                // (last chunk).
                load: self
                    .buffer
                    .load_cycles(chunk, words_each, if first { pixels } else { 0 }),
                process: processing_cycles(chunk, pixels, self.config.pes_per_module)
                    + u64::from(self.config.pipeline_latency),
                writeback: if last {
                    self.buffer.writeback_cycles(pixels)
                } else {
                    0
                },
            });
        }
        items
    }

    /// Runs the ping-pong (or single-buffer) schedule over all instances.
    fn run_timing(&self, tiles: Vec<(u64, Vec<WorkItem>)>, mode: RasterMode) -> FrameReport {
        let queues = assign_tiles(tiles.len(), self.config.modules);
        let mut instance_cycles = Vec::with_capacity(queues.len());
        let mut stall_cycles = 0u64;
        let mut pairs = 0u64;
        let mut traffic = 0u64;

        for queue in &queues {
            // Flatten this instance's tiles into its chunk sequence.
            let items: Vec<WorkItem> = queue
                .iter()
                .flat_map(|&t| tiles[t].1.iter().copied())
                .collect();
            pairs += queue.iter().map(|&t| tiles[t].0).sum::<u64>();
            traffic += items.iter().map(|i| i.load + i.writeback).sum::<u64>()
                * u64::from(self.config.bus_words_per_cycle);

            let mut t = 0u64;
            if items.is_empty() {
                instance_cycles.push(0);
                continue;
            }
            if self.config.ping_pong {
                t += items[0].load;
                for k in 0..items.len() {
                    let next_load = if k + 1 < items.len() {
                        items[k + 1].load
                    } else {
                        0
                    };
                    let prev_wb = if k > 0 { items[k - 1].writeback } else { 0 };
                    let iface = next_load + prev_wb;
                    let step = items[k].process.max(iface);
                    stall_cycles += step - items[k].process;
                    t += step;
                }
                t += items[items.len() - 1].writeback;
            } else {
                for item in &items {
                    t += item.load + item.process + item.writeback;
                }
            }
            instance_cycles.push(t);
        }

        let cycles = instance_cycles.iter().copied().max().unwrap_or(0);
        let time_s = cycles as f64 / self.config.clock_hz;
        let capacity = cycles.saturating_mul(u64::from(self.config.total_pes()));
        let utilization = if capacity > 0 {
            pairs as f64 / capacity as f64
        } else {
            0.0
        };

        FrameReport {
            mode,
            cycles,
            time_s,
            pairs,
            utilization,
            stall_cycles,
            instance_cycles,
            activity: PeActivity::default(),
            buffer_traffic_words: traffic,
        }
    }
}

impl Default for EnhancedRasterizer {
    fn default() -> Self {
        Self::new(RasterizerConfig::prototype())
    }
}

/// Convenience: simulate a Gaussian workload on the paper's scaled
/// configuration, as used for all scene-level results.
#[deprecated(
    since = "0.1.0",
    note = "go through the session-based engine instead: \
            `gaurast::engine::EngineBuilder` with `BackendKind::Enhanced`"
)]
pub fn simulate_scaled(workload: &RasterWorkload) -> FrameReport {
    EnhancedRasterizer::new(RasterizerConfig::scaled()).simulate_gaussian(workload)
}

/// Cycles to switch the PE datapath mode: drain the pipelines, flip the
/// input muxes, reload mode state. One switch per mode change per frame.
pub const MODE_SWITCH_CYCLES: u64 = 64;

/// Result of a mixed triangle + Gaussian frame (an AR-style overlay frame:
/// mesh UI plus splat environment on the same hardware).
#[derive(Clone, Debug, PartialEq)]
pub struct MixedFrameReport {
    /// The triangle pass.
    pub triangle: FrameReport,
    /// The Gaussian pass.
    pub gaussian: FrameReport,
    /// Mode-switch overhead cycles charged between the passes.
    pub switch_cycles: u64,
}

impl MixedFrameReport {
    /// Total frame cycles (passes are serialized on the shared hardware).
    pub fn total_cycles(&self) -> u64 {
        self.triangle.cycles + self.gaussian.cycles + self.switch_cycles
    }

    /// Total frame time at the triangle pass's clock.
    pub fn total_time_s(&self, clock_hz: f64) -> f64 {
        self.total_cycles() as f64 / clock_hz
    }

    /// Fraction of the frame spent in Gaussian mode.
    pub fn gaussian_fraction(&self) -> f64 {
        self.gaussian.cycles as f64 / self.total_cycles() as f64
    }
}

impl EnhancedRasterizer {
    /// Simulates a mixed frame: the triangle pass, a mode switch, then the
    /// Gaussian pass — the dual-mode usage the paper's design preserves
    /// (§IV-A: "seamless switching between traditional triangle rendering
    /// and Gaussian rasterization").
    pub fn simulate_mixed(
        &self,
        triangles: &TriangleWorkload,
        gaussians: &RasterWorkload,
    ) -> MixedFrameReport {
        MixedFrameReport {
            triangle: self.simulate_triangles(triangles),
            gaussian: self.simulate_gaussian(gaussians),
            switch_cycles: MODE_SWITCH_CYCLES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Precision;
    use gaurast_math::Vec3;
    use gaurast_render::pipeline::{render, RenderConfig};
    use gaurast_render::triangle::{project_mesh, render_mesh};
    use gaurast_scene::generator::SceneParams;
    use gaurast_scene::{Camera, TriangleMesh};

    fn camera(w: u32, h: u32) -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 6.0, -28.0),
            Vec3::zero(),
            Vec3::new(0.0, 1.0, 0.0),
            w,
            h,
            1.05,
        )
        .unwrap()
    }

    fn gaussian_workload(n: usize, w: u32, h: u32) -> (RasterWorkload, Framebuffer) {
        let scene = SceneParams::new(n).seed(21).generate().unwrap();
        let out = render(&scene, &camera(w, h), &RenderConfig::default());
        (out.workload, out.image)
    }

    #[test]
    fn gaussian_image_bit_exact_with_reference() {
        let (workload, reference) = gaussian_workload(800, 96, 64);
        let hw = EnhancedRasterizer::new(RasterizerConfig::prototype());
        let (image, report) = hw.render_gaussian(&workload);
        assert_eq!(
            image.mean_abs_diff(&reference),
            0.0,
            "FP32 must match bit-for-bit"
        );
        assert_eq!(image.psnr(&reference), f32::INFINITY);
        assert!(report.cycles > 0);
    }

    /// The deprecated `simulate_scaled` shim has no callers left outside
    /// this test; the `#[allow(deprecated)]` gate lives here and nowhere
    /// else, and the shim must keep matching the session-equivalent direct
    /// path until it is removed.
    #[test]
    #[allow(deprecated)]
    fn deprecated_simulate_scaled_shim_matches_direct_path() {
        let (workload, _) = gaussian_workload(400, 64, 64);
        let via_shim = simulate_scaled(&workload);
        let direct =
            EnhancedRasterizer::new(RasterizerConfig::scaled()).simulate_gaussian(&workload);
        assert_eq!(via_shim, direct);
    }

    #[test]
    fn fp16_image_close_to_reference() {
        let (workload, reference) = gaussian_workload(400, 64, 64);
        let hw = EnhancedRasterizer::new(RasterizerConfig {
            precision: Precision::Fp16,
            ..RasterizerConfig::prototype()
        });
        let (image, _) = hw.render_gaussian(&workload);
        let psnr = image.psnr(&reference);
        assert!(psnr > 35.0, "fp16 PSNR {psnr}");
        assert!(psnr < f32::INFINITY, "fp16 must not be bit-exact");
    }

    #[test]
    fn triangle_image_bit_exact_with_reference() {
        let cam = camera(128, 128);
        let mesh = TriangleMesh::cube(Vec3::zero(), 8.0);
        let (reference, _) = render_mesh(&mesh, &cam);
        let tris = project_mesh(&mesh, &cam);
        let workload = TriangleWorkload::bin(tris, 128, 128, 16);
        let hw = EnhancedRasterizer::default();
        let (image, report) = hw.render_triangles(&workload);
        assert_eq!(image.mean_abs_diff(&reference), 0.0);
        assert_eq!(report.mode, RasterMode::Triangle);
        assert!(report.activity.div > 0, "triangles must use the divider");
        assert_eq!(
            report.activity.exp, 0,
            "triangles must not use the exp unit"
        );
    }

    #[test]
    fn gaussian_mode_never_uses_divider() {
        let (workload, _) = gaussian_workload(300, 64, 64);
        let report = EnhancedRasterizer::default().simulate_gaussian(&workload);
        assert_eq!(report.activity.div, 0);
        assert!(report.activity.exp > 0);
    }

    #[test]
    fn more_pes_make_it_faster() {
        let (workload, _) = gaussian_workload(1500, 128, 96);
        let t16 = EnhancedRasterizer::new(RasterizerConfig::prototype())
            .simulate_gaussian(&workload)
            .time_s;
        let t300 = EnhancedRasterizer::new(RasterizerConfig::scaled())
            .simulate_gaussian(&workload)
            .time_s;
        assert!(t300 < t16, "300 PEs must beat 16 ({t300} vs {t16})");
        // Not perfectly linear (load imbalance, memory), but substantial.
        assert!(t16 / t300 > 4.0, "speedup {}", t16 / t300);
    }

    #[test]
    fn ping_pong_beats_single_buffer() {
        let (workload, _) = gaussian_workload(1500, 128, 96);
        let pp =
            EnhancedRasterizer::new(RasterizerConfig::prototype()).simulate_gaussian(&workload);
        let single = EnhancedRasterizer::new(RasterizerConfig {
            ping_pong: false,
            ..RasterizerConfig::prototype()
        })
        .simulate_gaussian(&workload);
        assert!(pp.cycles < single.cycles);
        assert_eq!(pp.pairs, single.pairs);
    }

    #[test]
    fn utilization_in_unit_range_and_reasonable() {
        let (workload, _) = gaurast_workload_big();
        let report =
            EnhancedRasterizer::new(RasterizerConfig::scaled()).simulate_gaussian(&workload);
        assert!(report.utilization > 0.0 && report.utilization <= 1.0);
        assert_eq!(report.instance_cycles.len(), 15);
    }

    fn gaurast_workload_big() -> (RasterWorkload, Framebuffer) {
        gaussian_workload(3000, 192, 128)
    }

    #[test]
    fn empty_workload_costs_only_housekeeping() {
        let workload = gaurast_render::tile::bin_splats(vec![], 64, 64, 16);
        let report = EnhancedRasterizer::default().simulate_gaussian(&workload);
        assert_eq!(report.pairs, 0);
        assert!(report.cycles > 0, "pixel clear/writeback still cost cycles");
    }

    #[test]
    fn time_matches_cycles_and_clock() {
        let (workload, _) = gaussian_workload(200, 64, 64);
        let report = EnhancedRasterizer::default().simulate_gaussian(&workload);
        assert!((report.time_s - report.cycles as f64 / 1e9).abs() < 1e-15);
        assert!((report.raster_fps() - 1.0 / report.time_s).abs() < 1e-9);
    }

    #[test]
    fn mixed_frame_serializes_passes() {
        let cam = camera(64, 64);
        let mesh = TriangleMesh::cube(Vec3::zero(), 8.0);
        let tris = project_mesh(&mesh, &cam);
        let tri_w = TriangleWorkload::bin(tris, 64, 64, 16);
        let (gauss_w, _) = gaussian_workload(300, 64, 64);
        let hw = EnhancedRasterizer::default();
        let mixed = hw.simulate_mixed(&tri_w, &gauss_w);
        assert_eq!(
            mixed.total_cycles(),
            mixed.triangle.cycles + mixed.gaussian.cycles + MODE_SWITCH_CYCLES
        );
        assert!(mixed.gaussian_fraction() > 0.0 && mixed.gaussian_fraction() < 1.0);
        assert!(mixed.total_time_s(1e9) > 0.0);
    }

    #[test]
    fn hw_transmittance_matches_software() {
        let (workload, reference) = gaussian_workload(400, 64, 64);
        let hw = EnhancedRasterizer::default();
        let (image, _) = hw.render_gaussian(&workload);
        for y in 0..64 {
            for x in 0..64 {
                assert_eq!(
                    image.transmittance_at(x, y),
                    reference.transmittance_at(x, y),
                    "T bits differ at ({x},{y})"
                );
            }
        }
    }

    #[test]
    fn activity_profile_consistency() {
        // The timing path's activity (profile × pairs) must equal what the
        // functional path accumulates, pair for pair.
        let (workload, _) = gaussian_workload(200, 64, 64);
        let hw = EnhancedRasterizer::default();
        let report = hw.simulate_gaussian(&workload);
        let mut pe = Pe::new(Precision::Fp32);
        let splats = workload.splats();
        for ty in 0..workload.tiles_y() {
            for tx in 0..workload.tiles_x() {
                let list = workload.tile_list(tx, ty);
                let n = workload.processed_count(tx, ty) as usize;
                let (x0, y0, x1, y1) = workload.tile_rect(tx, ty);
                for &si in &list[..n] {
                    for py in y0..y1 {
                        for px in x0..x1 {
                            let mut st = GaussianPixel::default();
                            pe.blend_gaussian(
                                &splats[si as usize],
                                Vec2::new(px as f32 + 0.5, py as f32 + 0.5),
                                &mut st,
                            );
                        }
                    }
                }
            }
        }
        assert_eq!(pe.activity(), report.activity);
    }
}
