//! 28 nm area model of the enhanced rasterizer (Fig. 9).
//!
//! The model composes per-unit cell areas (see [`crate::fpu`]) into the
//! module floorplan the paper reports: a 1.57 mm × 1.55 mm macro whose area
//! splits into the PE block (89.2 %), the two tile buffers (10.1 %) and the
//! controller (0.1 %), with each PE splitting 79 % / 21 % between
//! pre-existing triangle logic and the Gaussian enhancement.
//!
//! Technology scaling to the baseline SoC's node (Orin NX, 8 nm-class) uses
//! a published-density-derived factor so the scaled 300-PE enhancement can
//! be expressed as a fraction of the SoC die (§V-A: ≈0.2 %).

use crate::config::{Precision, RasterizerConfig};
use crate::fpu::FpUnitKind;
use crate::pe::PeResources;

/// Per-PE staging flip-flops, muxes and local control, µm² at 28 nm FP32.
pub const PE_STAGING_UM2: f64 = 3_200.0;

/// SRAM density including periphery, µm² per bit at 28 nm.
pub const SRAM_UM2_PER_BIT: f64 = 0.938;

/// Tile-buffer capacity per buffer in KiB (two buffers per module).
pub const TILE_BUFFER_KIB: f64 = 16.0;

/// Controller area per module, µm².
pub const CONTROLLER_UM2: f64 = 2_430.0;

/// Routing/clock-tree overhead fraction of the module total.
pub const ROUTING_FRACTION: f64 = 0.006;

/// Area scale factor from 28 nm to the baseline SoC's 8 nm-class node.
pub const TECH_SCALE_AREA_28_TO_8: f64 = 0.12;

/// Die area of the baseline Jetson Orin NX SoC in mm².
pub const ORIN_NX_SOC_MM2: f64 = 450.0;

/// GSCore's published accelerator area (ASPLOS 2024): 3.95 mm², FP16.
pub const GSCORE_AREA_MM2: f64 = 3.95;

/// Area breakdown of one rasterizer module (all µm² unless noted).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AreaBreakdown {
    /// PE block (all PEs of one module).
    pub pe_block_um2: f64,
    /// Both tile buffers.
    pub tile_buffers_um2: f64,
    /// Top + dispatch controller and result collector.
    pub controller_um2: f64,
    /// Routing/clock overhead.
    pub routing_um2: f64,
    /// Triangle (pre-existing) portion of one PE.
    pub pe_triangle_um2: f64,
    /// Gaussian (enhancement) portion of one PE.
    pub pe_gaussian_um2: f64,
    /// Number of PEs in the module.
    pub pes: u32,
}

impl AreaBreakdown {
    /// Total module area in µm².
    pub fn total_um2(&self) -> f64 {
        self.pe_block_um2 + self.tile_buffers_um2 + self.controller_um2 + self.routing_um2
    }

    /// Total module area in mm².
    pub fn total_mm2(&self) -> f64 {
        self.total_um2() / 1.0e6
    }

    /// PE-block share of the module.
    pub fn pe_block_fraction(&self) -> f64 {
        self.pe_block_um2 / self.total_um2()
    }

    /// Tile-buffer share of the module.
    pub fn tile_buffer_fraction(&self) -> f64 {
        self.tile_buffers_um2 / self.total_um2()
    }

    /// Controller share of the module.
    pub fn controller_fraction(&self) -> f64 {
        self.controller_um2 / self.total_um2()
    }

    /// Gaussian-enhancement share of one PE (the paper's 21 %).
    pub fn enhancement_fraction(&self) -> f64 {
        self.pe_gaussian_um2 / (self.pe_gaussian_um2 + self.pe_triangle_um2)
    }
}

/// Area model for a rasterizer configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AreaModel {
    precision: Precision,
}

impl AreaModel {
    /// Model at the given datapath precision.
    pub const fn new(precision: Precision) -> Self {
        Self { precision }
    }

    /// Triangle-side area of one PE: the shared 9 ADD + 9 MUL, the divider,
    /// and staging.
    pub fn pe_triangle_um2(&self) -> f64 {
        let r = PeResources::PAPER;
        let p = self.precision;
        f64::from(r.shared_adders) * FpUnitKind::Add.area_um2(p)
            + f64::from(r.shared_multipliers) * FpUnitKind::Mul.area_um2(p)
            + f64::from(r.triangle_dividers) * FpUnitKind::Div.area_um2(p)
            + PE_STAGING_UM2 * staging_scale(p)
    }

    /// Gaussian-enhancement area of one PE: 2 ADD + 1 MUL + 1 EXP.
    pub fn pe_gaussian_um2(&self) -> f64 {
        let r = PeResources::PAPER;
        let p = self.precision;
        f64::from(r.gaussian_adders) * FpUnitKind::Add.area_um2(p)
            + f64::from(r.gaussian_multipliers) * FpUnitKind::Mul.area_um2(p)
            + f64::from(r.gaussian_exp_units) * FpUnitKind::Exp.area_um2(p)
    }

    /// Full breakdown of one module of `config`.
    pub fn module_breakdown(&self, config: &RasterizerConfig) -> AreaBreakdown {
        let pe_tri = self.pe_triangle_um2();
        let pe_gauss = self.pe_gaussian_um2();
        let pe_block = f64::from(config.pes_per_module) * (pe_tri + pe_gauss);
        let buffers =
            2.0 * TILE_BUFFER_KIB * 1024.0 * 8.0 * SRAM_UM2_PER_BIT * sram_scale(self.precision);
        let controller = CONTROLLER_UM2;
        let pre_routing = pe_block + buffers + controller;
        let routing = pre_routing * ROUTING_FRACTION / (1.0 - ROUTING_FRACTION);
        AreaBreakdown {
            pe_block_um2: pe_block,
            tile_buffers_um2: buffers,
            controller_um2: controller,
            routing_um2: routing,
            pe_triangle_um2: pe_tri,
            pe_gaussian_um2: pe_gauss,
            pes: config.pes_per_module,
        }
    }

    /// Total Gaussian-enhancement area across all instances of `config`, in
    /// mm² at 28 nm — the only *new* silicon GauRast adds.
    pub fn enhancement_mm2(&self, config: &RasterizerConfig) -> f64 {
        f64::from(config.total_pes()) * self.pe_gaussian_um2() / 1.0e6
    }

    /// The enhancement expressed as a fraction of the baseline SoC die,
    /// after technology scaling to the SoC's node.
    pub fn enhancement_soc_fraction(&self, config: &RasterizerConfig) -> f64 {
        self.enhancement_mm2(config) * TECH_SCALE_AREA_28_TO_8 / ORIN_NX_SOC_MM2
    }
}

fn staging_scale(p: Precision) -> f64 {
    match p {
        Precision::Fp32 => 1.0,
        Precision::Fp16 => 0.5,
    }
}

fn sram_scale(p: Precision) -> f64 {
    match p {
        Precision::Fp32 => 1.0,
        Precision::Fp16 => 0.5,
    }
}

/// §V-C comparison: FP16 GauRast sized for GSCore-equivalent throughput.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GscoreComparison {
    /// GauRast's added area (FP16 enhancement, 16-PE module), mm².
    pub gaurast_added_mm2: f64,
    /// GSCore's dedicated accelerator area, mm².
    pub gscore_mm2: f64,
    /// GSCore area / GauRast area (the paper's 24.7×).
    pub area_efficiency_ratio: f64,
}

/// Computes the §V-C iso-performance area comparison. GSCore reaches a 20×
/// rasterization speedup on the Xavier NX with 3.95 mm² of dedicated FP16
/// silicon; a 16-PE FP16 GauRast module matches that throughput (the Xavier
/// baseline is ~3× slower than the Orin's) while only *adding* the Gaussian
/// datapath to the existing triangle rasterizer.
pub fn gscore_comparison() -> GscoreComparison {
    let model = AreaModel::new(Precision::Fp16);
    let config = RasterizerConfig {
        precision: Precision::Fp16,
        ..RasterizerConfig::prototype()
    };
    let added = model.enhancement_mm2(&config);
    GscoreComparison {
        gaurast_added_mm2: added,
        gscore_mm2: GSCORE_AREA_MM2,
        area_efficiency_ratio: GSCORE_AREA_MM2 / added,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp32_breakdown() -> AreaBreakdown {
        AreaModel::new(Precision::Fp32).module_breakdown(&RasterizerConfig::prototype())
    }

    #[test]
    fn module_total_matches_layout() {
        // Paper layout: 1.57 mm × 1.55 mm ≈ 2.43 mm².
        let total = fp32_breakdown().total_mm2();
        assert!((total - 2.43).abs() < 0.08, "module total {total} mm²");
    }

    #[test]
    fn breakdown_fractions_match_fig9() {
        let b = fp32_breakdown();
        assert!(
            (b.pe_block_fraction() - 0.892).abs() < 0.01,
            "PE {}",
            b.pe_block_fraction()
        );
        assert!(
            (b.tile_buffer_fraction() - 0.101).abs() < 0.01,
            "buf {}",
            b.tile_buffer_fraction()
        );
        assert!(
            (b.controller_fraction() - 0.001).abs() < 0.001,
            "ctl {}",
            b.controller_fraction()
        );
    }

    #[test]
    fn enhancement_is_21_percent_of_pe() {
        let b = fp32_breakdown();
        let f = b.enhancement_fraction();
        assert!((f - 0.21).abs() < 0.01, "enhancement fraction {f}");
    }

    #[test]
    fn scaled_enhancement_is_0_2_percent_of_soc() {
        let model = AreaModel::new(Precision::Fp32);
        let frac = model.enhancement_soc_fraction(&RasterizerConfig::scaled());
        assert!((frac - 0.002).abs() < 0.0005, "SoC fraction {frac}");
    }

    #[test]
    fn gscore_ratio_near_24_7() {
        let c = gscore_comparison();
        assert!(
            (c.gaurast_added_mm2 - 0.16).abs() < 0.01,
            "added {} mm²",
            c.gaurast_added_mm2
        );
        assert!(
            (c.area_efficiency_ratio - 24.7).abs() < 1.5,
            "ratio {}",
            c.area_efficiency_ratio
        );
    }

    #[test]
    fn fp16_module_smaller_than_fp32() {
        let fp32 = fp32_breakdown().total_um2();
        let fp16 = AreaModel::new(Precision::Fp16)
            .module_breakdown(&RasterizerConfig::prototype())
            .total_um2();
        assert!(fp16 < 0.6 * fp32);
    }

    #[test]
    fn fractions_sum_to_one() {
        let b = fp32_breakdown();
        let sum = b.pe_block_fraction()
            + b.tile_buffer_fraction()
            + b.controller_fraction()
            + b.routing_um2 / b.total_um2();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
