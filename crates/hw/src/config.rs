//! Hardware configuration of the enhanced rasterizer.

use std::fmt;

/// Numeric precision of the PE datapath.
///
/// The synthesized prototype uses FP32 (result-consistent with the software
/// reference); §V-C re-implements the datapath in FP16 for the GSCore
/// comparison.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Precision {
    /// IEEE 754 binary32 — bit-exact with the software pipeline.
    #[default]
    Fp32,
    /// IEEE 754 binary16 — every intermediate rounded through half.
    Fp16,
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Precision::Fp32 => "fp32",
            Precision::Fp16 => "fp16",
        })
    }
}

/// Configuration of one enhanced-rasterizer module and its replication.
///
/// The paper's two design points are provided as constructors:
/// [`RasterizerConfig::prototype`] (the synthesized 16-PE module) and
/// [`RasterizerConfig::scaled`] (15 instances of it, matching the area of
/// the Orin NX's triangle-raster hardware).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RasterizerConfig {
    /// PEs per rasterizer module (16 in the prototype).
    pub pes_per_module: u32,
    /// Number of rasterizer module instances operating on distinct tiles.
    pub modules: u32,
    /// Clock frequency in Hz (1 GHz, 28 nm typical corner, 0.9 V).
    pub clock_hz: f64,
    /// Datapath precision.
    pub precision: Precision,
    /// Ping-pong (double-buffered) tile buffers; `false` is the
    /// single-buffer ablation of DESIGN.md §6.2.
    pub ping_pong: bool,
    /// Input gating of mode-mismatched units (power ablation §6.3).
    pub input_gating: bool,
    /// Memory-interface words (FP values) transferred per cycle per module
    /// when filling a tile buffer.
    pub bus_words_per_cycle: u32,
    /// Extra pipeline-fill/drain cycles charged once per tile.
    pub pipeline_latency: u32,
}

impl RasterizerConfig {
    /// The synthesized 16-PE prototype (§V-A).
    pub fn prototype() -> Self {
        Self {
            pes_per_module: 16,
            modules: 1,
            clock_hz: 1.0e9,
            precision: Precision::Fp32,
            ping_pong: true,
            input_gating: true,
            bus_words_per_cycle: 16,
            pipeline_latency: 24,
        }
    }

    /// The scaled simulation target: 15 instances of the 16-PE module,
    /// area-matched to the baseline SoC's triangle rasterizer units (§V-A,
    /// "Simulator Setup").
    ///
    /// Note: the paper states this totals "300 PEs", but 15 × 16 = 240; we
    /// follow the structurally explicit reading (15 instances of the 16-PE
    /// module). All calibration constants in this workspace are derived for
    /// 240 PEs, which only rescales absolute times, not any speedup ratio.
    pub fn scaled() -> Self {
        Self {
            modules: 15,
            ..Self::prototype()
        }
    }

    /// Total PEs across all module instances.
    pub fn total_pes(&self) -> u32 {
        self.pes_per_module * self.modules
    }

    /// Peak Gaussian-pixel blend throughput (pairs per second): one pair
    /// per PE per cycle, fully pipelined.
    pub fn peak_pairs_per_second(&self) -> f64 {
        f64::from(self.total_pes()) * self.clock_hz
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.pes_per_module == 0 {
            return Err("pes_per_module must be positive".into());
        }
        if self.modules == 0 {
            return Err("modules must be positive".into());
        }
        if !self.clock_hz.is_finite() || self.clock_hz <= 0.0 {
            return Err(format!("clock must be positive, got {}", self.clock_hz));
        }
        if self.bus_words_per_cycle == 0 {
            return Err("bus width must be positive".into());
        }
        Ok(())
    }
}

impl Default for RasterizerConfig {
    fn default() -> Self {
        Self::prototype()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_matches_paper() {
        let c = RasterizerConfig::prototype();
        assert_eq!(c.total_pes(), 16);
        assert_eq!(c.clock_hz, 1.0e9);
        assert_eq!(c.precision, Precision::Fp32);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn scaled_is_15_modules_of_16_pes() {
        let c = RasterizerConfig::scaled();
        assert_eq!(c.modules, 15);
        assert_eq!(c.total_pes(), 240);
        assert_eq!(c.peak_pairs_per_second(), 240.0e9);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(RasterizerConfig {
            pes_per_module: 0,
            ..RasterizerConfig::prototype()
        }
        .validate()
        .is_err());
        assert!(RasterizerConfig {
            modules: 0,
            ..RasterizerConfig::prototype()
        }
        .validate()
        .is_err());
        assert!(RasterizerConfig {
            clock_hz: 0.0,
            ..RasterizerConfig::prototype()
        }
        .validate()
        .is_err());
        assert!(RasterizerConfig {
            bus_words_per_cycle: 0,
            ..RasterizerConfig::prototype()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn precision_displays() {
        assert_eq!(Precision::Fp32.to_string(), "fp32");
        assert_eq!(Precision::Fp16.to_string(), "fp16");
    }
}
