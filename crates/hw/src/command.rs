//! Command-stream (driver) interface to the enhanced rasterizer.
//!
//! One of the paper's central arguments for enhancing the existing
//! rasterizer — rather than bolting on an accelerator — is that the GPU's
//! programming interface survives: the driver keeps submitting tile work
//! through the same kind of command stream, with one new mode bit. This
//! module models that interface: a validated [`CommandBuffer`] of
//! register-level operations, an encoder from the workload types, and a
//! [`CommandProcessor`] that executes streams on the cycle-stepped
//! microarchitecture, charging mode switches.

use crate::config::RasterizerConfig;
use crate::microarch::{chunk_jobs, ModuleMicroArch, TileJob};
use crate::rasterizer::{RasterMode, MODE_SWITCH_CYCLES};
use crate::tile_buffer::TileBufferModel;
use gaurast_render::triangle::TriangleWorkload;
use gaurast_render::RasterWorkload;
use std::fmt;

/// One driver-visible command.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Command {
    /// Select the PE datapath mode (flips the input muxes).
    SetMode(RasterMode),
    /// Stage a tile: stream its primitive list and pixel state into a
    /// buffer.
    StageTile(TileJob),
    /// Rasterize the most recently staged tile and write its results back.
    Rasterize,
    /// Wait until every outstanding writeback retired (end-of-frame).
    Fence,
}

/// Errors a malformed command stream can raise at validation time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommandError {
    /// `Rasterize` or `StageTile` before any `SetMode`.
    ModeNotSet {
        /// Offending command index.
        at: usize,
    },
    /// `Rasterize` with no staged tile pending.
    NothingStaged {
        /// Offending command index.
        at: usize,
    },
    /// `StageTile` while a staged tile is still unconsumed.
    StageOverrun {
        /// Offending command index.
        at: usize,
    },
    /// A staged tile exceeds the buffer capacity.
    TileTooLarge {
        /// Offending command index.
        at: usize,
        /// The primitive count that did not fit.
        primitives: u32,
    },
    /// Stream ended with staged-but-unrasterized work or without a fence.
    UnterminatedStream,
}

impl fmt::Display for CommandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommandError::ModeNotSet { at } => write!(f, "command {at}: mode not set"),
            CommandError::NothingStaged { at } => {
                write!(f, "command {at}: rasterize with nothing staged")
            }
            CommandError::StageOverrun { at } => {
                write!(f, "command {at}: staging over an unconsumed tile")
            }
            CommandError::TileTooLarge { at, primitives } => {
                write!(
                    f,
                    "command {at}: {primitives} primitives exceed buffer capacity"
                )
            }
            CommandError::UnterminatedStream => write!(f, "stream not terminated by a fence"),
        }
    }
}

impl std::error::Error for CommandError {}

/// A validated sequence of commands.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CommandBuffer {
    commands: Vec<Command>,
}

impl CommandBuffer {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The raw command list.
    pub fn commands(&self) -> &[Command] {
        &self.commands
    }

    /// Number of commands.
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// Appends a command (validation happens at [`Self::validate`] /
    /// execution time, like a real driver's deferred validation).
    pub fn push(&mut self, c: Command) -> &mut Self {
        self.commands.push(c);
        self
    }

    /// Encodes a Gaussian frame: mode select, then stage/rasterize per
    /// tile chunk (saturation-truncated lists), terminated by a fence.
    pub fn encode_gaussian(workload: &RasterWorkload, config: &RasterizerConfig) -> Self {
        let cap = TileBufferModel::new(config.bus_words_per_cycle).capacity_primitives;
        // CSR traversal: one job per tile range, truncated at saturation.
        let jobs: Vec<TileJob> = workload
            .tiles()
            .map(|t| TileJob {
                primitives: t.processed,
                pixels: t.pixels() as u32,
            })
            .collect();
        Self::encode_jobs(RasterMode::Gaussian, &chunk_jobs(&jobs, cap))
    }

    /// Encodes a triangle frame.
    pub fn encode_triangles(workload: &TriangleWorkload, config: &RasterizerConfig) -> Self {
        let cap = TileBufferModel::new(config.bus_words_per_cycle).capacity_primitives;
        let mut jobs = Vec::new();
        for ty in 0..workload.tiles_y() {
            for tx in 0..workload.tiles_x() {
                jobs.push(TileJob {
                    primitives: workload.tile_list(tx, ty).len() as u32,
                    pixels: workload.tile_pixels(tx, ty) as u32,
                });
            }
        }
        Self::encode_jobs(RasterMode::Triangle, &chunk_jobs(&jobs, cap))
    }

    /// Concatenates two frames into one mixed stream (the second mode
    /// select is the switch the hardware pays for).
    pub fn then(mut self, mut other: CommandBuffer) -> Self {
        // Drop the intermediate fence so only one end-of-frame fence stays.
        if self.commands.last() == Some(&Command::Fence) {
            self.commands.pop();
        }
        self.commands.append(&mut other.commands);
        self
    }

    fn encode_jobs(mode: RasterMode, jobs: &[TileJob]) -> Self {
        let mut cb = Self::new();
        cb.push(Command::SetMode(mode));
        for &job in jobs {
            cb.push(Command::StageTile(job));
            cb.push(Command::Rasterize);
        }
        cb.push(Command::Fence);
        cb
    }

    /// Checks the stream's driver-level invariants.
    ///
    /// # Errors
    /// Returns the first [`CommandError`] found.
    pub fn validate(&self, config: &RasterizerConfig) -> Result<(), CommandError> {
        let cap = TileBufferModel::new(config.bus_words_per_cycle).capacity_primitives;
        let mut mode_set = false;
        let mut staged = false;
        let mut fenced = false;
        for (at, c) in self.commands.iter().enumerate() {
            fenced = false;
            match c {
                Command::SetMode(_) => mode_set = true,
                Command::StageTile(job) => {
                    if !mode_set {
                        return Err(CommandError::ModeNotSet { at });
                    }
                    if staged {
                        return Err(CommandError::StageOverrun { at });
                    }
                    if job.primitives > cap {
                        return Err(CommandError::TileTooLarge {
                            at,
                            primitives: job.primitives,
                        });
                    }
                    staged = true;
                }
                Command::Rasterize => {
                    if !mode_set {
                        return Err(CommandError::ModeNotSet { at });
                    }
                    if !staged {
                        return Err(CommandError::NothingStaged { at });
                    }
                    staged = false;
                }
                Command::Fence => fenced = true,
            }
        }
        if staged || (!self.commands.is_empty() && !fenced) {
            return Err(CommandError::UnterminatedStream);
        }
        Ok(())
    }
}

/// Execution result of a command stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecutionReport {
    /// Total cycles including mode switches.
    pub cycles: u64,
    /// Mode switches performed (first `SetMode` is free — the mux has no
    /// prior state to drain).
    pub mode_switches: u32,
    /// Primitive-pixel pairs issued.
    pub pairs: u64,
    /// Tiles rasterized.
    pub tiles: u64,
}

/// Executes command streams on one module's cycle-stepped model.
#[derive(Clone, Debug)]
pub struct CommandProcessor {
    config: RasterizerConfig,
}

impl CommandProcessor {
    /// Processor for one module of `config`.
    ///
    /// # Panics
    /// Panics for invalid configurations.
    pub fn new(config: RasterizerConfig) -> Self {
        config.validate().expect("invalid rasterizer configuration");
        Self { config }
    }

    /// Validates and executes a stream.
    ///
    /// Consecutive same-mode tile sequences run as one batch on the
    /// microarchitecture (ping-pong overlap applies within a batch); each
    /// mode change drains the pipeline and costs
    /// [`MODE_SWITCH_CYCLES`].
    ///
    /// # Errors
    /// Returns the stream's first validation error.
    pub fn execute(&self, stream: &CommandBuffer) -> Result<ExecutionReport, CommandError> {
        stream.validate(&self.config)?;
        let machine = ModuleMicroArch::new(self.config);

        let mut cycles = 0u64;
        let mut pairs = 0u64;
        let mut tiles = 0u64;
        let mut mode_switches = 0u32;
        let mut current_mode: Option<RasterMode> = None;
        let mut batch: Vec<TileJob> = Vec::new();
        let mut staged: Option<TileJob> = None;

        let flush = |batch: &mut Vec<TileJob>, cycles: &mut u64, pairs: &mut u64| {
            if !batch.is_empty() {
                let r = machine.run(batch);
                *cycles += r.cycles;
                *pairs += r.pairs;
                batch.clear();
            }
        };

        for c in stream.commands() {
            match c {
                Command::SetMode(m) => {
                    if current_mode.is_some() && current_mode != Some(*m) {
                        flush(&mut batch, &mut cycles, &mut pairs);
                        cycles += MODE_SWITCH_CYCLES;
                        mode_switches += 1;
                    }
                    current_mode = Some(*m);
                }
                Command::StageTile(job) => staged = Some(*job),
                Command::Rasterize => {
                    // gaurast-check: allow(panic): `validate` rejects any
                    // stream with a Rasterize not preceded by StageTile,
                    // and `execute` validates before dispatch.
                    batch.push(staged.take().expect("validated: staged"));
                    tiles += 1;
                }
                Command::Fence => flush(&mut batch, &mut cycles, &mut pairs),
            }
        }
        flush(&mut batch, &mut cycles, &mut pairs);

        Ok(ExecutionReport {
            cycles,
            mode_switches,
            pairs,
            tiles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaurast_math::{Vec2, Vec3};
    use gaurast_render::rasterize::rasterize;
    use gaurast_render::tile::bin_splats;
    use gaurast_render::Splat2D;

    fn config() -> RasterizerConfig {
        RasterizerConfig::prototype()
    }

    fn gaussian_workload() -> RasterWorkload {
        let splats: Vec<Splat2D> = (0..120)
            .map(|i| Splat2D {
                mean: Vec2::new((i * 13 % 64) as f32, (i * 29 % 64) as f32),
                conic: [0.1, 0.0, 0.1],
                depth: 1.0 + i as f32,
                color: Vec3::one(),
                opacity: 0.5,
                radius: 5.0,
                source: i,
            })
            .collect();
        let mut w = bin_splats(splats, 64, 64, 16);
        let _ = rasterize(&mut w);
        w
    }

    #[test]
    fn encoded_stream_validates_and_executes() {
        let w = gaussian_workload();
        let cb = CommandBuffer::encode_gaussian(&w, &config());
        assert!(cb.validate(&config()).is_ok());
        let report = CommandProcessor::new(config()).execute(&cb).unwrap();
        assert_eq!(report.tiles, 16);
        assert_eq!(report.mode_switches, 0, "single-mode stream");
        assert!(report.cycles > 0);
        assert_eq!(report.pairs, w.blend_work());
    }

    #[test]
    fn stream_cycles_close_to_direct_simulation() {
        // The driver layer adds no modeling error beyond batching: stream
        // execution must track the fast model.
        use crate::rasterizer::EnhancedRasterizer;
        let w = gaussian_workload();
        let cb = CommandBuffer::encode_gaussian(&w, &config());
        let stream_cycles = CommandProcessor::new(config()).execute(&cb).unwrap().cycles;
        let direct = EnhancedRasterizer::new(config())
            .simulate_gaussian(&w)
            .cycles;
        let err = (stream_cycles as f64 - direct as f64).abs() / direct as f64;
        assert!(err < 0.05, "stream {stream_cycles} vs direct {direct}");
    }

    #[test]
    fn mixed_stream_pays_one_switch() {
        use gaurast_render::triangle::{ScreenTriangle, TriangleWorkload};
        let tri = ScreenTriangle {
            v: [
                Vec2::new(1.0, 1.0),
                Vec2::new(60.0, 1.0),
                Vec2::new(1.0, 60.0),
            ],
            depth: [1.0; 3],
            uv: [Vec2::zero(); 3],
            color: [Vec3::one(); 3],
            area2: 59.0 * 59.0,
        };
        let tw = TriangleWorkload::bin(vec![tri], 64, 64, 16);
        let gw = gaussian_workload();
        let mixed = CommandBuffer::encode_triangles(&tw, &config())
            .then(CommandBuffer::encode_gaussian(&gw, &config()));
        assert!(mixed.validate(&config()).is_ok());
        let report = CommandProcessor::new(config()).execute(&mixed).unwrap();
        assert_eq!(report.mode_switches, 1);
        assert_eq!(report.tiles, 16 + 16);
    }

    #[test]
    fn rasterize_without_stage_rejected() {
        let mut cb = CommandBuffer::new();
        cb.push(Command::SetMode(RasterMode::Gaussian));
        cb.push(Command::Rasterize);
        cb.push(Command::Fence);
        assert_eq!(
            cb.validate(&config()),
            Err(CommandError::NothingStaged { at: 1 })
        );
        assert!(CommandProcessor::new(config()).execute(&cb).is_err());
    }

    #[test]
    fn stage_before_mode_rejected() {
        let mut cb = CommandBuffer::new();
        cb.push(Command::StageTile(TileJob {
            primitives: 1,
            pixels: 256,
        }));
        assert_eq!(
            cb.validate(&config()),
            Err(CommandError::ModeNotSet { at: 0 })
        );
    }

    #[test]
    fn double_stage_rejected() {
        let mut cb = CommandBuffer::new();
        cb.push(Command::SetMode(RasterMode::Gaussian));
        cb.push(Command::StageTile(TileJob {
            primitives: 1,
            pixels: 256,
        }));
        cb.push(Command::StageTile(TileJob {
            primitives: 1,
            pixels: 256,
        }));
        assert_eq!(
            cb.validate(&config()),
            Err(CommandError::StageOverrun { at: 2 })
        );
    }

    #[test]
    fn oversized_tile_rejected() {
        let mut cb = CommandBuffer::new();
        cb.push(Command::SetMode(RasterMode::Gaussian));
        cb.push(Command::StageTile(TileJob {
            primitives: 100_000,
            pixels: 256,
        }));
        cb.push(Command::Rasterize);
        cb.push(Command::Fence);
        assert!(matches!(
            cb.validate(&config()),
            Err(CommandError::TileTooLarge { at: 1, .. })
        ));
    }

    #[test]
    fn missing_fence_rejected() {
        let mut cb = CommandBuffer::new();
        cb.push(Command::SetMode(RasterMode::Gaussian));
        cb.push(Command::StageTile(TileJob {
            primitives: 1,
            pixels: 256,
        }));
        cb.push(Command::Rasterize);
        assert_eq!(
            cb.validate(&config()),
            Err(CommandError::UnterminatedStream)
        );
    }

    #[test]
    fn empty_stream_is_valid_and_free() {
        let cb = CommandBuffer::new();
        assert!(cb.validate(&config()).is_ok());
        let report = CommandProcessor::new(config()).execute(&cb).unwrap();
        assert_eq!(report.cycles, 0);
        assert!(cb.is_empty());
    }

    #[test]
    fn error_messages_are_informative() {
        let e = CommandError::TileTooLarge {
            at: 3,
            primitives: 9999,
        };
        assert!(e.to_string().contains("9999"));
        assert!(CommandError::UnterminatedStream
            .to_string()
            .contains("fence"));
    }
}
