//! Ping-pong tile buffer model (Fig. 7b, "Tile Buffer A/B").
//!
//! Each rasterizer instance owns two SRAM buffers. While the PE block
//! processes the tile staged in one buffer, the memory interface fills the
//! other with the next tile's primitive list and pixel state, hiding load
//! latency. The model tracks the load/writeback cycle costs and the SRAM
//! traffic for the power model.

/// FP words needed per staged Gaussian primitive: mean (2) + conic (3) +
/// color (3) + opacity (1) = the "9 FP numbers" of Table II.
pub const WORDS_PER_SPLAT: u32 = 9;

/// FP words per staged triangle: 3 vertices × (xy + depth) = 9, matching
/// Table II's "vertices' coordinates (9 FP numbers)". Attributes (UV,
/// color) stream separately but are charged to the same interface.
pub const WORDS_PER_TRIANGLE: u32 = 9;

/// FP words of pixel state per pixel (Gaussian mode): color (3) +
/// transmittance (1).
pub const WORDS_PER_PIXEL: u32 = 4;

/// Timing/traffic model of one instance's tile-buffer pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileBufferModel {
    /// Primitive capacity of one buffer (oversized lists load in chunks).
    pub capacity_primitives: u32,
    /// Memory-interface words transferred per cycle.
    pub bus_words_per_cycle: u32,
}

impl TileBufferModel {
    /// Buffer model with the given bus width and the default 1K-primitive
    /// capacity (16 KiB at 4 bytes × 4 banks, see `area`).
    pub fn new(bus_words_per_cycle: u32) -> Self {
        Self {
            capacity_primitives: 1024,
            bus_words_per_cycle,
        }
    }

    /// Cycles to load `n` primitives of `words_each` words plus the pixel
    /// state of a `pixels`-pixel tile.
    ///
    /// # Panics
    /// Panics in debug builds for a zero-width bus.
    pub fn load_cycles(&self, n: u32, words_each: u32, pixels: u32) -> u64 {
        debug_assert!(self.bus_words_per_cycle > 0);
        let words =
            u64::from(n) * u64::from(words_each) + u64::from(pixels) * u64::from(WORDS_PER_PIXEL);
        words.div_ceil(u64::from(self.bus_words_per_cycle))
    }

    /// Cycles to write a finished tile's pixel colors back.
    pub fn writeback_cycles(&self, pixels: u32) -> u64 {
        // 3 color words per pixel leave the collector.
        (u64::from(pixels) * 3).div_ceil(u64::from(self.bus_words_per_cycle))
    }

    /// Number of load passes an `n`-primitive list needs given the buffer
    /// capacity (each pass re-streams the pixel state between buffers
    /// internally, which is free; only primitive traffic repeats).
    pub fn passes(&self, n: u32) -> u32 {
        n.div_ceil(self.capacity_primitives).max(1)
    }

    /// SRAM words moved for a tile (load + writeback), for the power model.
    pub fn traffic_words(&self, n: u32, words_each: u32, pixels: u32) -> u64 {
        u64::from(n) * u64::from(words_each)
            + u64::from(pixels) * u64::from(WORDS_PER_PIXEL)
            + u64::from(pixels) * 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_cycles_scale_with_primitives() {
        let b = TileBufferModel::new(16);
        let small = b.load_cycles(10, WORDS_PER_SPLAT, 256);
        let large = b.load_cycles(1000, WORDS_PER_SPLAT, 256);
        assert!(large > small);
        // 1000 splats × 9 words + 256 px × 4 words = 10024 words / 16 = 627.
        assert_eq!(large, 627);
    }

    #[test]
    fn empty_tile_still_loads_pixels() {
        let b = TileBufferModel::new(16);
        assert_eq!(b.load_cycles(0, WORDS_PER_SPLAT, 256), (256 * 4) / 16);
    }

    #[test]
    fn writeback_rounds_up() {
        let b = TileBufferModel::new(16);
        assert_eq!(b.writeback_cycles(256), 48);
        assert_eq!(b.writeback_cycles(1), 1);
    }

    #[test]
    fn passes_chunk_oversized_lists() {
        let b = TileBufferModel::new(16);
        assert_eq!(b.passes(0), 1);
        assert_eq!(b.passes(1024), 1);
        assert_eq!(b.passes(1025), 2);
        assert_eq!(b.passes(5000), 5);
    }

    #[test]
    fn traffic_counts_both_directions() {
        let b = TileBufferModel::new(16);
        assert_eq!(
            b.traffic_words(2, WORDS_PER_SPLAT, 4),
            2 * 9 + 4 * 4 + 4 * 3
        );
    }
}
